(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   from full-system runs (the numbers EXPERIMENTS.md records). Part 2
   runs one Bechamel wall-clock microbenchmark per table/figure: a
   representative workload slice of that experiment executed end to
   end (translate + run) under the configuration it studies.

   Environment knobs:
     REPRO_BENCH_TARGET           guest insns per experiment run (default 120000)
     REPRO_BENCH_SKIP_WALLCLOCK   set to skip the Bechamel section
     REPRO_BENCH_METRICS_DIR      write per-slice machine-readable metrics
                                  (stats + coordination ledger JSON) here *)

open Bechamel
module H = Repro_harness.Harness
module D = Repro_dbt
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads

let target =
  match Sys.getenv_opt "REPRO_BENCH_TARGET" with
  | Some s -> int_of_string s
  | None -> 120_000

(* ---------- part 1: the paper's tables and figures ---------- *)

let tables () =
  let t = H.create ~target_insns:target () in
  List.iter
    (fun tb ->
      print_string (H.render tb);
      print_newline ())
    (H.all t)

(* ---------- part 2: wall-clock microbenches ---------- *)

let ruleset = lazy (Repro_rules.Builtin.ruleset ())
let metrics_dir = Sys.getenv_opt "REPRO_BENCH_METRICS_DIR"

let write_metrics name sys ledger =
  match metrics_dir with
  | None -> ()
  | Some dir ->
    let name = String.map (fun c -> if c = ':' then '-' else c) name in
    let oc = open_out (Filename.concat dir (name ^ ".json")) in
    output_string oc
      (Repro_observe.Jsonx.obj
         [
           ("stats", Repro_x86.Stats.to_json (D.System.stats sys));
           ("ledger", Repro_observe.Ledger.to_json ledger);
         ]);
    output_char oc '\n';
    close_out oc

let run_slice mode spec_name =
  let spec = W.find spec_name in
  let user = W.generate spec ~iterations:2 in
  let image = K.build ~timer_period:2_000 ~user_program:user () in
  let ledger = Repro_observe.Ledger.create () in
  let sys = D.System.create ~ruleset:(Lazy.force ruleset) ~ledger mode in
  K.load image (fun base words -> D.System.load_image sys base words);
  ignore (D.System.run ~max_guest_insns:400_000 sys);
  write_metrics (D.System.mode_name mode ^ "-" ^ spec_name) sys ledger

let wallclock_tests =
  (* one Test.make per table/figure: the configuration that experiment
     exercises, on a small slice *)
  [
    Test.make ~name:"table1-qemu-profile"
      (Staged.stage (fun () -> run_slice D.System.Qemu "gcc"));
    Test.make ~name:"fig8-coordination-base"
      (Staged.stage (fun () -> run_slice (D.System.Rules D.Opt.base) "perlbench"));
    Test.make ~name:"fig14-speedup-full"
      (Staged.stage (fun () -> run_slice (D.System.Rules D.Opt.full) "gcc"));
    Test.make ~name:"fig15-expansion-qemu"
      (Staged.stage (fun () -> run_slice D.System.Qemu "mcf"));
    Test.make ~name:"fig16-cumulative-reduction"
      (Staged.stage (fun () -> run_slice (D.System.Rules D.Opt.reduction_only) "gcc"));
    Test.make ~name:"fig17-sync-elimination"
      (Staged.stage (fun () -> run_slice (D.System.Rules D.Opt.with_elimination) "gcc"));
    Test.make ~name:"fig18-native-ratio"
      (Staged.stage (fun () -> run_slice (D.System.Rules D.Opt.full) "hmmer"));
    Test.make ~name:"fig19-app-memcached"
      (Staged.stage (fun () ->
           let app = List.hd W.apps in
           let user = W.generate_app app ~iterations:4 in
           let image = K.build ~timer_period:2_000 ~user_program:user () in
           let ledger = Repro_observe.Ledger.create () in
           let sys =
             D.System.create ~ruleset:(Lazy.force ruleset) ~ledger
               (D.System.Rules D.Opt.full)
           in
           K.load image (fun base words -> D.System.load_image sys base words);
           ignore (D.System.run ~max_guest_insns:400_000 sys);
           write_metrics "rules-full-memcached" sys ledger));
    Test.make ~name:"learning-pipeline"
      (Staged.stage (fun () -> ignore (Repro_learn.Learn.learn ())));
  ]

let wallclock () =
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  print_endline "== wall-clock microbenches (per end-to-end slice) ==";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let m = Benchmark.run cfg instances elt in
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
          in
          let results = Analyze.one ols Toolkit.Instance.monotonic_clock m in
          match Analyze.OLS.estimates results with
          | Some [ est ] ->
            Printf.printf "  %-28s %12.3f ms/run\n%!" (Test.Elt.name elt) (est /. 1e6)
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" (Test.Elt.name elt))
        (Test.elements test))
    wallclock_tests

let () =
  tables ();
  match Sys.getenv_opt "REPRO_BENCH_SKIP_WALLCLOCK" with
  | Some _ -> ()
  | None -> wallclock ()
