(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   from full-system runs (the numbers EXPERIMENTS.md records). Part 2
   writes the consolidated BENCH_<rev>.json the regression gate
   consumes: one deterministic full-system run per Fig. 14/15/17/18
   slice with its wall-clock and host-insn/guest-insn figures. Part 3
   runs one Bechamel wall-clock microbenchmark per table/figure: a
   representative workload slice of that experiment executed end to
   end (translate + run) under the configuration it studies.

   Environment knobs:
     REPRO_BENCH_TARGET           guest insns per experiment run (default 120000)
     REPRO_BENCH_SKIP_TABLES      set to skip the tables/figures section
     REPRO_BENCH_SKIP_WALLCLOCK   set to skip the Bechamel section
     REPRO_BENCH_SKIP_SCALING     set to skip the domain-scaling section
     REPRO_BENCH_METRICS_DIR      write per-slice machine-readable metrics
                                  (stats + coordination ledger JSON) here;
                                  created if missing
     REPRO_BENCH_JSON             path of the consolidated bench file
                                  (default BENCH_<rev>.json in the cwd)
     REPRO_BENCH_REV              revision stamp in the bench file (default dev)
     REPRO_BENCH_ABLATE           run the rule-enabled slices with every
                                  optimization pass off (rules:base) — a
                                  synthetic regression that must trip the
                                  gate against a full-opt baseline *)

open Bechamel
module H = Repro_harness.Harness
module D = Repro_dbt
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module Stats = Repro_x86.Stats
module Jsonx = Repro_observe.Jsonx
module Cov = Repro_covscope

let target =
  match Sys.getenv_opt "REPRO_BENCH_TARGET" with
  | Some s -> int_of_string s
  | None -> 120_000

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* Write [path] crash-atomically (temp + rename), creating parent
   directories; any refusal (unwritable parent, path is a directory,
   ...) fails with a clear message instead of an uncaught Sys_error.
   A bench process killed mid-write must never leave a truncated JSON
   for the dbt_analyze regression gate to misread as a regression. *)
let write_clearly ~what path content =
  try
    mkdir_p (Filename.dirname path);
    Repro_common.Atomicio.write path content
  with Sys_error e ->
    Printf.eprintf "bench: cannot write %s %s: %s\n%!" what path e;
    exit 1

(* ---------- part 1: the paper's tables and figures ---------- *)

let tables () =
  let t = H.create ~target_insns:target () in
  List.iter
    (fun tb ->
      print_string (H.render tb);
      print_newline ())
    (H.all t)

(* ---------- shared slice machinery ---------- *)

let ruleset = lazy (Repro_rules.Builtin.ruleset ())
let metrics_dir = Sys.getenv_opt "REPRO_BENCH_METRICS_DIR"

let write_metrics name sys ledger =
  match metrics_dir with
  | None -> ()
  | Some dir ->
    let name = String.map (fun c -> if c = ':' then '-' else c) name in
    write_clearly ~what:"metrics file"
      (Filename.concat dir (name ^ ".json"))
      (Jsonx.obj
         [
           ("stats", Stats.to_json (D.System.stats sys));
           ("ledger", Repro_observe.Ledger.to_json ledger);
         ]
      ^ "\n")

let run_slice mode spec_name =
  let spec = W.find spec_name in
  let user = W.generate spec ~iterations:2 in
  let image = K.build ~timer_period:2_000 ~user_program:user () in
  let ledger = Repro_observe.Ledger.create () in
  let sys = D.System.create ~ruleset:(Lazy.force ruleset) ~ledger mode in
  K.load image (fun base words -> D.System.load_image sys base words);
  ignore (D.System.run ~max_guest_insns:400_000 sys);
  write_metrics (D.System.mode_name mode ^ "-" ^ spec_name) sys ledger

(* ---------- part 2: the consolidated BENCH file ---------- *)

let rev = Option.value (Sys.getenv_opt "REPRO_BENCH_REV") ~default:"dev"
let ablate = Sys.getenv_opt "REPRO_BENCH_ABLATE" <> None

type bench_slice = {
  bs_name : string;
  bs_figure : string;
  bs_mode : D.System.mode;
  bs_bench : string;
  bs_rule_enabled : bool;
}

let slice name figure mode bench rule_enabled =
  {
    bs_name = name;
    bs_figure = figure;
    bs_mode = mode;
    bs_bench = bench;
    bs_rule_enabled = rule_enabled;
  }

(* One slice per bar the gate protects: the Fig. 14 speedup pair, the
   Fig. 15 expansion pair, the Fig. 17 optimization ladder, and the
   Fig. 18 native-ratio workload. The qemu slices are the reference
   the speedups are measured against — recorded, never gated. *)
let bench_slices =
  [
    slice "fig14-qemu-gcc" "fig14" D.System.Qemu "gcc" false;
    slice "fig14-full-gcc" "fig14" (D.System.Rules D.Opt.full) "gcc" true;
    slice "fig15-qemu-mcf" "fig15" D.System.Qemu "mcf" false;
    slice "fig15-full-mcf" "fig15" (D.System.Rules D.Opt.full) "mcf" true;
    slice "fig17-base-gcc" "fig17" (D.System.Rules D.Opt.base) "gcc" true;
    slice "fig17-reduction-gcc" "fig17"
      (D.System.Rules D.Opt.reduction_only) "gcc" true;
    slice "fig17-elimination-gcc" "fig17"
      (D.System.Rules D.Opt.with_elimination) "gcc" true;
    slice "fig17-regions-gcc" "fig17"
      (D.System.Rules D.Opt.with_regions) "gcc" true;
    slice "fig18-full-hmmer" "fig18" (D.System.Rules D.Opt.full) "hmmer" true;
    slice "fig18-regions-mcf" "fig18"
      (D.System.Rules D.Opt.with_regions) "mcf" true;
  ]

(* The ablation keeps each slice's name (so the gate matches it
   against the baseline) but strips every optimization pass: measured
   — not synthesized — regression numbers. *)
let effective_mode s =
  match (ablate && s.bs_rule_enabled, s.bs_mode) with
  | true, D.System.Rules _ -> D.System.Rules D.Opt.base
  | _ -> s.bs_mode

let run_bench_slice s =
  let mode = effective_mode s in
  let spec = W.find s.bs_bench in
  let iters = max 1 (target / W.insns_per_iteration spec) in
  let user = W.generate spec ~iterations:iters in
  let image = K.build ~timer_period:2_000 ~user_program:user () in
  let sys = D.System.create ~ruleset:(Lazy.force ruleset) mode in
  K.load image (fun base words -> D.System.load_image sys base words);
  let t0 = Sys.time () in
  ignore (D.System.run ~max_guest_insns:(60 * target) sys);
  let wall_ms = (Sys.time () -. t0) *. 1000. in
  let st = D.System.stats sys in
  (* Building the coverage report re-asserts the tier partition
     invariant (sum of tier retirements = retired guest insns) on
     every slice — the bench run doubles as its runtime check. *)
  let coverage = Cov.Report.coverage (Cov.Report.make (Cov.Report.of_stats st)) in
  Printf.printf
    "  %-24s %-18s guest %9d  host/guest %7.3f  cov %5.1f%%  %8.1f ms\n%!"
    s.bs_name (D.System.mode_name mode) st.Stats.guest_insns
    (Stats.host_per_guest st) (100. *. coverage) wall_ms;
  Jsonx.obj
    [
      ("name", Jsonx.str s.bs_name);
      ("figure", Jsonx.str s.bs_figure);
      ("mode", Jsonx.str (D.System.mode_name mode));
      ("bench", Jsonx.str s.bs_bench);
      ("rule_enabled", Jsonx.bool s.bs_rule_enabled);
      ("guest_insns", Jsonx.int st.Stats.guest_insns);
      ("host_insns", Jsonx.int st.Stats.host_insns);
      ("host_per_guest", Jsonx.float (Stats.host_per_guest st));
      ("sync_insns", Jsonx.int (Stats.tag_count st Repro_x86.Insn.Tag_sync));
      ("coverage", Jsonx.float coverage);
      ("wall_ms", Jsonx.float wall_ms);
    ]

(* ---------- part 2b: domain-scaling slice ----------

   One chaos drill served at 1, 2 and 4 domains. The report must come
   out byte-identical at every point (the determinism oracle — the
   bench re-checks it); only the wall clock may move. Wall time is
   [Unix.gettimeofday], not [Sys.time]: CPU time sums across domains,
   so a perfectly-scaling run would show no CPU-time change at all. *)

module Fi = Repro_faultinject.Faultinject
module Res = Repro_resilience
module Par = Repro_parallel

let scaling_points = [ 1; 2; 4 ]
let scaling_machines = 4
let scaling_requests = 16
let scaling_target = 60_000
let scaling_warm = 4_000

let scaling_base () =
  let spec = W.find "gcc" in
  let iters = max 1 (scaling_target / W.insns_per_iteration spec) in
  let user = W.generate spec ~iterations:iters in
  let image = K.build ~timer_period:5_000 ~user_program:user () in
  let inject = Fi.create ~seed:1 ~rate:0.0 ~behavior:Fi.Surface () in
  let sys =
    D.System.create ~inject ~shadow_depth:4 ~quarantine_threshold:2
      (D.System.Rules D.Opt.full)
  in
  K.load image (fun base words -> D.System.load_image sys base words);
  match
    (D.System.run ~max_guest_insns:scaling_warm ~checkpoint_every:scaling_warm
       sys)
      .Repro_tcg.Engine.reason
  with
  | `Insn_limit -> D.System.snapshot sys
  | _ -> failwith "bench: scaling warm boot failed"

let scaling_drill base ~domains =
  let policy =
    {
      Res.Supervisor.default_policy with
      Res.Supervisor.deadline = 10 * scaling_target;
      checkpoint_every = 2_000;
    }
  in
  let plan =
    Fi.Plan.make ~seed:7 ~machines:scaling_machines ~faulty:1
      [
        (Fi.Bus_read, 0.0002);
        (Fi.Bus_write, 0.0002);
        (Fi.Tb_flush, 0.0001);
        (Fi.Rule_corrupt, 0.05);
      ]
  in
  let fleet =
    Res.Fleet.create ~plan
      ~config:
        { Res.Fleet.machines = scaling_machines; min_healthy = 1; policy }
      base
  in
  let t0 = Unix.gettimeofday () in
  Par.Parfleet.run fleet ~domains ~requests:scaling_requests;
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (Res.Fleet.metrics_json fleet, wall_ms)

let scaling_json () =
  let recommended = Domain.recommended_domain_count () in
  Printf.printf
    "== domain-scaling drill (%d machines, %d requests, %d recommended \
     domain(s) on this host) ==\n%!"
    scaling_machines scaling_requests recommended;
  let base = scaling_base () in
  let runs =
    List.map (fun d -> (d, scaling_drill base ~domains:d)) scaling_points
  in
  let ref_report, wall1 =
    match runs with (1, r) :: _ -> r | _ -> assert false
  in
  let points =
    List.map
      (fun (d, (report, wall_ms)) ->
        if report <> ref_report then begin
          (* the oracle, enforced where the numbers are made: a
             scaling point that changes the report is not a speedup,
             it is a bug *)
          Printf.eprintf
            "bench: %d-domain drill report differs from 1-domain\n%!" d;
          exit 1
        end;
        let speedup = wall1 /. wall_ms in
        Printf.printf "  domains %d  %10.1f ms  speedup %5.2fx\n%!" d wall_ms
          speedup;
        Jsonx.obj
          [
            ("domains", Jsonx.int d);
            ("wall_ms", Jsonx.float wall_ms);
            ("speedup", Jsonx.float speedup);
          ])
      runs
  in
  Jsonx.obj
    [
      ("machines", Jsonx.int scaling_machines);
      ("requests", Jsonx.int scaling_requests);
      ("target", Jsonx.int scaling_target);
      ("recommended_domains", Jsonx.int recommended);
      ("report_identical", Jsonx.bool true);
      ("points", Jsonx.arr points);
    ]

let bench_json () =
  let path =
    match Sys.getenv_opt "REPRO_BENCH_JSON" with
    | Some p -> p
    | None -> Printf.sprintf "BENCH_%s.json" rev
  in
  Printf.printf "== consolidated bench slices (rev %s, target %d%s) ==\n%!" rev
    target
    (if ablate then ", ABLATED" else "");
  let slices = List.map run_bench_slice bench_slices in
  (* the scaling drill lives under its own top-level key, not in
     .slices: the regression gate compares slices by host/guest-insn
     figures, and wall-clock scaling is an environment fact, not a
     translation-quality one *)
  let scaling =
    match Sys.getenv_opt "REPRO_BENCH_SKIP_SCALING" with
    | Some _ -> []
    | None -> [ ("scaling", scaling_json ()) ]
  in
  write_clearly ~what:"bench file" path
    (Jsonx.obj
       ([
          ("meta", Jsonx.str "bench");
          ("rev", Jsonx.str rev);
          ("target", Jsonx.int target);
          ("slices", Jsonx.arr slices);
        ]
       @ scaling)
    ^ "\n");
  Printf.printf "consolidated bench file written to %s (%d slices)\n%!" path
    (List.length slices)

(* ---------- part 3: wall-clock microbenches ---------- *)

let wallclock_tests =
  (* one Test.make per table/figure: the configuration that experiment
     exercises, on a small slice *)
  [
    Test.make ~name:"table1-qemu-profile"
      (Staged.stage (fun () -> run_slice D.System.Qemu "gcc"));
    Test.make ~name:"fig8-coordination-base"
      (Staged.stage (fun () -> run_slice (D.System.Rules D.Opt.base) "perlbench"));
    Test.make ~name:"fig14-speedup-full"
      (Staged.stage (fun () -> run_slice (D.System.Rules D.Opt.full) "gcc"));
    Test.make ~name:"fig15-expansion-qemu"
      (Staged.stage (fun () -> run_slice D.System.Qemu "mcf"));
    Test.make ~name:"fig16-cumulative-reduction"
      (Staged.stage (fun () -> run_slice (D.System.Rules D.Opt.reduction_only) "gcc"));
    Test.make ~name:"fig17-sync-elimination"
      (Staged.stage (fun () -> run_slice (D.System.Rules D.Opt.with_elimination) "gcc"));
    Test.make ~name:"fig18-native-ratio"
      (Staged.stage (fun () -> run_slice (D.System.Rules D.Opt.full) "hmmer"));
    Test.make ~name:"fig19-app-memcached"
      (Staged.stage (fun () ->
           let app = List.hd W.apps in
           let user = W.generate_app app ~iterations:4 in
           let image = K.build ~timer_period:2_000 ~user_program:user () in
           let ledger = Repro_observe.Ledger.create () in
           let sys =
             D.System.create ~ruleset:(Lazy.force ruleset) ~ledger
               (D.System.Rules D.Opt.full)
           in
           K.load image (fun base words -> D.System.load_image sys base words);
           ignore (D.System.run ~max_guest_insns:400_000 sys);
           write_metrics "rules-full-memcached" sys ledger));
    Test.make ~name:"learning-pipeline"
      (Staged.stage (fun () -> ignore (Repro_learn.Learn.learn ())));
  ]

let wallclock () =
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  print_endline "== wall-clock microbenches (per end-to-end slice) ==";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let m = Benchmark.run cfg instances elt in
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
          in
          let results = Analyze.one ols Toolkit.Instance.monotonic_clock m in
          match Analyze.OLS.estimates results with
          | Some [ est ] ->
            Printf.printf "  %-28s %12.3f ms/run\n%!" (Test.Elt.name elt) (est /. 1e6)
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" (Test.Elt.name elt))
        (Test.elements test))
    wallclock_tests

let () =
  (match Sys.getenv_opt "REPRO_BENCH_SKIP_TABLES" with
  | Some _ -> ()
  | None -> tables ());
  bench_json ();
  match Sys.getenv_opt "REPRO_BENCH_SKIP_WALLCLOCK" with
  | Some _ -> ()
  | None -> wallclock ()
