module Mmu = Repro_mmu.Mmu
module Bus = Repro_machine.Bus
module Mem = Repro_arm.Mem

(* Direct unit tests of the page-table walker and the TLB structure
   shared with DBT-emitted code. *)

let make_bus () = Bus.create ~ram:(Bytes.make (1 lsl 20) '\000')

let write32 bus addr v =
  match Bus.write32 bus addr v with Ok () -> () | Error () -> Alcotest.fail "bus write"

(* identity-map the page containing [va] with the given permissions *)
let map bus ~ttbr ~va ~pa ~writable ~user =
  let l1_index = (va lsr 22) land 0x3FF in
  let l2_base = ttbr + 0x1000 + (l1_index * 0x1000) in
  write32 bus (ttbr + (4 * l1_index)) (Mmu.l1_entry ~l2_base);
  let l2_index = (va lsr 12) land 0x3FF in
  write32 bus (l2_base + (4 * l2_index)) (Mmu.l2_entry ~pa ~writable ~user)

let test_walk_success () =
  let bus = make_bus () in
  let ttbr = 0x40000 in
  map bus ~ttbr ~va:0x1234_5000 ~pa:0x0008_9000 ~writable:true ~user:false;
  match Mmu.walk bus ~ttbr 0x1234_5678 with
  | Ok e ->
    Alcotest.(check int) "physical page" 0x0008_9000 e.Mmu.page_pa;
    Alcotest.(check bool) "writable" true e.Mmu.writable;
    Alcotest.(check bool) "not user" false e.Mmu.user
  | Error _ -> Alcotest.fail "walk failed"

let test_walk_translation_fault () =
  let bus = make_bus () in
  match Mmu.walk bus ~ttbr:0x40000 0xDEAD0000 with
  | Error Mem.Translation -> ()
  | _ -> Alcotest.fail "expected translation fault"

let test_perms () =
  let e = { Mmu.page_pa = 0; writable = false; user = false } in
  (match Mmu.check_perms e ~access:Mem.Load ~privileged:true with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "kernel read must pass");
  (match Mmu.check_perms e ~access:Mem.Load ~privileged:false with
  | Error Mem.Permission -> ()
  | _ -> Alcotest.fail "user read of kernel page must fault");
  match Mmu.check_perms e ~access:Mem.Store ~privileged:true with
  | Error Mem.Permission -> ()
  | _ -> Alcotest.fail "store to read-only page must fault"

let test_tlb_fill_lookup_flush () =
  let tlb = Array.make Mmu.Tlb.words 0 in
  Mmu.Tlb.flush tlb;
  let entry = { Mmu.page_pa = 0x7000; writable = false; user = true } in
  Alcotest.(check (option int)) "miss before fill" None
    (Mmu.Tlb.lookup tlb ~privileged:false ~write:false 0x3456);
  Mmu.Tlb.fill tlb ~privileged:false ~vaddr:0x3456 entry;
  Alcotest.(check (option int)) "read hit" (Some 0x7456)
    (Mmu.Tlb.lookup tlb ~privileged:false ~write:false 0x3456);
  Alcotest.(check (option int)) "write miss (read-only)" None
    (Mmu.Tlb.lookup tlb ~privileged:false ~write:true 0x3456);
  Alcotest.(check (option int)) "other bank misses" None
    (Mmu.Tlb.lookup tlb ~privileged:true ~write:false 0x3456);
  Mmu.Tlb.flush tlb;
  Alcotest.(check (option int)) "flushed" None
    (Mmu.Tlb.lookup tlb ~privileged:false ~write:false 0x3456)

let test_tlb_non_user_page_not_filled_in_user_bank () =
  let tlb = Array.make Mmu.Tlb.words 0 in
  Mmu.Tlb.flush tlb;
  let entry = { Mmu.page_pa = 0x9000; writable = true; user = false } in
  Mmu.Tlb.fill tlb ~privileged:false ~vaddr:0x1000 entry;
  Alcotest.(check (option int)) "kernel page never user-visible" None
    (Mmu.Tlb.lookup tlb ~privileged:false ~write:false 0x1000)

let test_tlb_conflict_eviction () =
  let tlb = Array.make Mmu.Tlb.words 0 in
  Mmu.Tlb.flush tlb;
  let e1 = { Mmu.page_pa = 0x10000; writable = true; user = true } in
  let e2 = { Mmu.page_pa = 0x20000; writable = true; user = true } in
  (* same set: indexes 0x1000 and 0x1000 + entries*4096 *)
  let conflict = 0x1000 + (Mmu.Tlb.entries * 4096) in
  Mmu.Tlb.fill tlb ~privileged:true ~vaddr:0x1000 e1;
  Mmu.Tlb.fill tlb ~privileged:true ~vaddr:conflict e2;
  Alcotest.(check (option int)) "old entry evicted" None
    (Mmu.Tlb.lookup tlb ~privileged:true ~write:false 0x1000);
  Alcotest.(check (option int)) "new entry hits"
    (Some (0x20000 lor 0))
    (Mmu.Tlb.lookup tlb ~privileged:true ~write:false conflict)

let suite =
  [
    ( "mmu",
      [
        Alcotest.test_case "walk success" `Quick test_walk_success;
        Alcotest.test_case "walk translation fault" `Quick test_walk_translation_fault;
        Alcotest.test_case "permission checks" `Quick test_perms;
        Alcotest.test_case "tlb fill/lookup/flush" `Quick test_tlb_fill_lookup_flush;
        Alcotest.test_case "kernel pages invisible to user bank" `Quick
          test_tlb_non_user_page_not_filled_in_user_bank;
        Alcotest.test_case "direct-mapped eviction" `Quick test_tlb_conflict_eviction;
      ] );
  ]
