open Repro_common
open Repro_arm

let check_insn = Alcotest.testable Insn.pp Insn.equal

(* --- Encode/decode --- *)

let roundtrip insn =
  match Encode.decode (Encode.encode insn) with
  | Ok insn' -> Alcotest.check check_insn (Insn.to_string insn) insn insn'
  | Error e -> Alcotest.failf "decode failed for %a: %s" Insn.pp insn e

let test_roundtrip_basics () =
  List.iter roundtrip
    [
      Insn.make (Insn.Dp { op = Insn.ADD; s = false; rd = 0; rn = 1; op2 = Insn.Imm { imm8 = 4; rot = 0 } });
      Insn.make ~cond:Cond.EQ
        (Insn.Dp { op = Insn.ADD; s = true; rd = 3; rn = 3; op2 = Insn.Reg_shift_imm { rm = 5; kind = Insn.LSL; amount = 2 } });
      Insn.make (Insn.Dp { op = Insn.CMP; s = false; rd = 0; rn = 2; op2 = Insn.Imm { imm8 = 0; rot = 0 } });
      Insn.make (Insn.Mul { s = true; rd = 1; rn = 2; rm = 3; acc = None });
      Insn.make (Insn.Mul { s = false; rd = 1; rn = 2; rm = 3; acc = Some 4 });
      Insn.make (Insn.Mull { signed = false; s = false; rdlo = 1; rdhi = 2; rn = 3; rm = 4 });
      Insn.make (Insn.Mull { signed = true; s = true; rdlo = 5; rdhi = 6; rn = 7; rm = 8 });
      Insn.make (Insn.Ldr { width = Insn.Word; rd = 0; rn = 1; off = Insn.Imm_off (-8); index = Insn.Pre_indexed });
      Insn.make (Insn.Str { width = Insn.Byte; rd = 0; rn = 13; off = Insn.Imm_off 4; index = Insn.Post_indexed });
      Insn.make (Insn.Ldm { kind = Insn.IA; rn = 13; writeback = true; regs = 0x800F });
      Insn.make (Insn.Stm { kind = Insn.DB; rn = 13; writeback = true; regs = 0x4FF0 });
      Insn.make (Insn.B { link = true; offset = -2 });
      Insn.make (Insn.Bx 14);
      Insn.make (Insn.Movw { rd = 7; imm16 = 0xBEEF });
      Insn.make (Insn.Movt { rd = 7; imm16 = 0xDEAD });
      Insn.make (Insn.Mrs { rd = 0; spsr = true });
      Insn.make (Insn.Msr { spsr = false; write_flags = true; write_control = false; rm = 0 });
      Insn.make (Insn.Svc 42);
      Insn.make (Insn.Cps { disable = true });
      Insn.make (Insn.Cps { disable = false });
      Insn.make (Insn.Mcr { opc1 = 0; rt = 0; crn = 8; crm = 7; opc2 = 0 });
      Insn.make (Insn.Mrc { opc1 = 0; rt = 1; crn = 2; crm = 0; opc2 = 0 });
      Insn.make (Insn.Vmsr { rt = 0 });
      Insn.make (Insn.Vmrs { rt = 15 });
      Insn.make Insn.Nop;
      Insn.make (Insn.Udf 0xDEAD);
    ]

let prop_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"encode/decode roundtrip" Gen.arbitrary_insn
    (fun insn ->
      match Encode.decode (Encode.encode insn) with
      | Ok insn' -> Insn.equal insn insn'
      | Error _ -> false)

(* --- Operand2 evaluation --- *)

let test_operand2 () =
  let regs = function 1 -> 0x80000001 | 2 -> 4 | _ -> 0 in
  let eval op2 = Insn.operand2_value op2 regs ~carry:false in
  Alcotest.(check (pair int bool))
    "imm ror" (0x10000000, false)
    (eval (Insn.Imm { imm8 = 1; rot = 2 }));
  Alcotest.(check (pair int bool))
    "lsl 1 carries out bit31"
    (2, true)
    (eval (Insn.Reg_shift_imm { rm = 1; kind = Insn.LSL; amount = 1 }));
  Alcotest.(check (pair int bool))
    "lsr 1" (0x40000000, true)
    (eval (Insn.Reg_shift_imm { rm = 1; kind = Insn.LSR; amount = 1 }));
  Alcotest.(check (pair int bool))
    "asr 1 keeps sign" (0xC0000000, true)
    (eval (Insn.Reg_shift_imm { rm = 1; kind = Insn.ASR; amount = 1 }));
  Alcotest.(check (pair int bool))
    "ror 1" (0xC0000000, true)
    (eval (Insn.Reg_shift_imm { rm = 1; kind = Insn.ROR; amount = 1 }));
  Alcotest.(check (pair int bool))
    "reg shift by reg" (0x40, false)
    (eval (Insn.Reg_shift_reg { rm = 2; kind = Insn.LSL; rs = 2 }))

(* --- Interpreter helpers --- *)

let setup_flat program =
  let cpu = Cpu.create () in
  let _buf, mem = Mem.flat ~size:0x10000 in
  let asm = Asm.create () in
  program asm;
  let origin, words = Asm.assemble asm in
  Array.iteri
    (fun i w ->
      match mem.Mem.store Mem.W32 ~privileged:true (origin + (4 * i)) w with
      | Ok () -> ()
      | Error _ -> assert false)
    words;
  Cpu.set_pc cpu origin;
  (cpu, mem)

let run_steps cpu mem n =
  for _ = 1 to n do
    match Interp.step cpu mem ~irq:false with
    | Interp.Stepped | Interp.Took_exception _ -> ()
    | Interp.Decode_error e -> Alcotest.failf "decode error: %s" e
  done

let test_arith_flags () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov32 a 0 0xFFFFFFFF;
        Asm.add a ~s:true 1 0 1;
        (* 0xFFFFFFFF + 1 = 0, carry out, no overflow *)
        Asm.nop a)
  in
  run_steps cpu mem 3;
  Alcotest.(check int) "r1" 0 (Cpu.get_reg cpu 1);
  let f = Cpu.get_flags cpu in
  Alcotest.(check bool) "Z" true f.Cond.z;
  Alcotest.(check bool) "C" true f.Cond.c;
  Alcotest.(check bool) "V" false f.Cond.v;
  Alcotest.(check bool) "N" false f.Cond.n

let test_sub_carry_convention () =
  (* ARM: cmp r0, r1 with r0 >= r1 sets C (no borrow). *)
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov a 0 5;
        Asm.mov a 1 3;
        Asm.cmp_r a 0 1)
  in
  run_steps cpu mem 3;
  let f = Cpu.get_flags cpu in
  Alcotest.(check bool) "C set (no borrow)" true f.Cond.c;
  Alcotest.(check bool) "Z clear" false f.Cond.z

let test_overflow () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov32 a 0 0x7FFFFFFF;
        Asm.add a ~s:true 1 0 1)
  in
  run_steps cpu mem 3;
  let f = Cpu.get_flags cpu in
  Alcotest.(check bool) "V set" true f.Cond.v;
  Alcotest.(check bool) "N set" true f.Cond.n

let test_conditional_execution () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov a 0 1;
        Asm.cmp a 0 1;
        Asm.mov a ~cond:Cond.EQ 1 42;
        Asm.mov a ~cond:Cond.NE 2 99)
  in
  run_steps cpu mem 4;
  Alcotest.(check int) "eq taken" 42 (Cpu.get_reg cpu 1);
  Alcotest.(check int) "ne skipped" 0 (Cpu.get_reg cpu 2)

let test_adc_chain () =
  (* 64-bit add: 0xFFFFFFFF:0x00000001 + 0x00000000:0xFFFFFFFF *)
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov32 a 0 0x1;
        Asm.mov32 a 1 0xFFFFFFFF;
        Asm.mov32 a 2 0xFFFFFFFF;
        Asm.mov a 3 0;
        Asm.emit a
          (Insn.make
             (Insn.Dp
                { op = Insn.ADD; s = true; rd = 4; rn = 0;
                  op2 = Insn.Reg_shift_imm { rm = 2; kind = Insn.LSL; amount = 0 } }));
        Asm.emit a
          (Insn.make
             (Insn.Dp
                { op = Insn.ADC; s = false; rd = 5; rn = 1;
                  op2 = Insn.Reg_shift_imm { rm = 3; kind = Insn.LSL; amount = 0 } })))
  in
  run_steps cpu mem 8;
  Alcotest.(check int) "low" 0 (Cpu.get_reg cpu 4);
  Alcotest.(check int) "high" 0 (Cpu.get_reg cpu 5)

let test_memory_ops () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov32 a 0 0x1000;
        Asm.mov32 a 1 0xCAFEBABE;
        Asm.str a 1 0 0;
        Asm.ldr a 2 0 0;
        Asm.str a ~width:Insn.Byte 1 0 8;
        Asm.ldr a ~width:Insn.Byte 3 0 8)
  in
  run_steps cpu mem 8;
  Alcotest.(check int) "word roundtrip" 0xCAFEBABE (Cpu.get_reg cpu 2);
  Alcotest.(check int) "byte roundtrip" 0xBE (Cpu.get_reg cpu 3)

let test_clz () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov32 a 0 0x00010000;
        Asm.clz a 1 0;
        Asm.mov a 2 0;
        Asm.clz a 3 2;
        Asm.mov32 a 4 0x80000000;
        Asm.clz a 5 4;
        Asm.mov a 6 1;
        Asm.clz a 7 6)
  in
  run_steps cpu mem 12;
  Alcotest.(check int) "clz 0x10000" 15 (Cpu.get_reg cpu 1);
  Alcotest.(check int) "clz 0" 32 (Cpu.get_reg cpu 3);
  Alcotest.(check int) "clz msb" 0 (Cpu.get_reg cpu 5);
  Alcotest.(check int) "clz 1" 31 (Cpu.get_reg cpu 7)

let test_halfword_ops () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov32 a 0 0x1000;
        Asm.mov32 a 1 0xCAFEBABE;
        (* strh keeps the low half; ldrh zero-extends *)
        Asm.str a ~width:Insn.Half 1 0 0;
        Asm.ldr a ~width:Insn.Half 2 0 0;
        (* the upper half of the word is untouched by strh *)
        Asm.mov32 a 3 0x11223344;
        Asm.str a 3 0 4;
        Asm.str a ~width:Insn.Half 1 0 4;
        Asm.ldr a 4 0 4;
        (* halfword at an odd-but-2-aligned address *)
        Asm.str a ~width:Insn.Half 3 0 6;
        Asm.ldr a ~width:Insn.Half 5 0 6;
        (* writeback forms *)
        Asm.str a ~width:Insn.Half ~index:Insn.Pre_indexed 1 0 2;
        Asm.ldr a ~width:Insn.Half ~index:Insn.Post_indexed 6 0 2)
  in
  run_steps cpu mem 14;
  Alcotest.(check int) "halfword roundtrip" 0xBABE (Cpu.get_reg cpu 2);
  Alcotest.(check int) "upper half preserved" 0x1122BABE (Cpu.get_reg cpu 4);
  Alcotest.(check int) "2-aligned halfword" 0x3344 (Cpu.get_reg cpu 5);
  Alcotest.(check int) "writeback" 0x1004 (Cpu.get_reg cpu 0);
  Alcotest.(check int) "pre-indexed store read back" 0xBABE (Cpu.get_reg cpu 6)

let test_halfword_encode_roundtrip () =
  let i =
    Insn.make
      (Insn.Ldr { width = Insn.Half; rd = 3; rn = 7; off = Insn.Imm_off 0xFE;
                  index = Insn.Pre_indexed })
  in
  (match Encode.decode (Encode.encode i) with
  | Ok i' -> Alcotest.(check bool) "ldrh roundtrip" true (i = i')
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (* encoding constraints are enforced *)
  (match
     Encode.encode
       (Insn.make
          (Insn.Str { width = Insn.Half; rd = 0; rn = 1; off = Insn.Imm_off 256;
                      index = Insn.Offset }))
   with
  | _ -> Alcotest.fail "offset 256 must be rejected"
  | exception Invalid_argument _ -> ());
  match
    Encode.encode
      (Insn.make
         (Insn.Ldr
            { width = Insn.Half; rd = 0; rn = 1;
              off = Insn.Reg_off { rm = 2; kind = Insn.LSL; amount = 3; subtract = false };
              index = Insn.Offset }))
  with
  | _ -> Alcotest.fail "shifted register offset must be rejected"
  | exception Invalid_argument _ -> ()

let test_signed_loads () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov32 a 0 0x1000;
        Asm.mov32 a 1 0xFFFF8A90;
        Asm.str a 1 0 0;
        (* ldrsb of 0x90 -> 0xFFFFFF90; of 0x8A -> 0xFFFFFF8A *)
        Asm.ldrs a 2 0 0;
        Asm.ldrs a 3 0 1;
        (* ldrsh of 0x8A90 -> 0xFFFF8A90 *)
        Asm.ldrs a ~half:true 4 0 0;
        (* positive values stay positive *)
        Asm.mov32 a 1 0x00331234;
        Asm.str a 1 0 4;
        Asm.ldrs a ~half:true 5 0 4;
        Asm.ldrs a 6 0 6;
        (* pre-indexed writeback *)
        Asm.ldrs a ~half:true ~index:Insn.Pre_indexed 7 0 4)
  in
  run_steps cpu mem 14;
  Alcotest.(check int) "ldrsb negative" 0xFFFFFF90 (Cpu.get_reg cpu 2);
  Alcotest.(check int) "ldrsb offset 1" 0xFFFFFF8A (Cpu.get_reg cpu 3);
  Alcotest.(check int) "ldrsh negative" 0xFFFF8A90 (Cpu.get_reg cpu 4);
  Alcotest.(check int) "ldrsh positive" 0x1234 (Cpu.get_reg cpu 5);
  Alcotest.(check int) "ldrsb positive" 0x33 (Cpu.get_reg cpu 6);
  Alcotest.(check int) "writeback" 0x1004 (Cpu.get_reg cpu 0);
  Alcotest.(check int) "pre-indexed value" 0x1234 (Cpu.get_reg cpu 7)

let test_pre_post_index () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov32 a 0 0x1000;
        Asm.mov32 a 1 0x11;
        Asm.str a ~index:Insn.Pre_indexed 1 0 4;    (* [r0, #4]! => 0x1004, r0 = 0x1004 *)
        Asm.str a ~index:Insn.Post_indexed 1 0 4;   (* [r0], #4 => 0x1004, r0 = 0x1008 *)
        Asm.ldr a 2 0 (-4))
  in
  run_steps cpu mem 7;
  Alcotest.(check int) "writeback" 0x1008 (Cpu.get_reg cpu 0);
  Alcotest.(check int) "post store went to 0x1004" 0x11 (Cpu.get_reg cpu 2)

let test_push_pop () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov32 a Insn.sp 0x8000;
        Asm.mov a 0 1;
        Asm.mov a 1 2;
        Asm.mov a 2 3;
        Asm.push a (Asm.reg_mask [ 0; 1; 2 ]);
        Asm.mov a 0 0;
        Asm.mov a 1 0;
        Asm.mov a 2 0;
        Asm.pop a (Asm.reg_mask [ 0; 1; 2 ]))
  in
  run_steps cpu mem 10;
  Alcotest.(check int) "sp restored" 0x8000 (Cpu.get_reg cpu Insn.sp);
  Alcotest.(check (list int)) "regs restored" [ 1; 2; 3 ]
    [ Cpu.get_reg cpu 0; Cpu.get_reg cpu 1; Cpu.get_reg cpu 2 ]

let test_branch_and_link () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov a 0 0;
        Asm.branch_to a ~link:true "callee";
        Asm.mov a 1 7;
        Asm.udf a 0;
        Asm.label a "callee";
        Asm.mov a 0 9;
        Asm.bx a Insn.lr)
  in
  run_steps cpu mem 5;
  Alcotest.(check int) "callee ran" 9 (Cpu.get_reg cpu 0);
  Alcotest.(check int) "returned" 7 (Cpu.get_reg cpu 1)

let test_svc_exception_entry () =
  let cpu, mem =
    setup_flat (fun a ->
        (* Vector table: reset at 0 jumps to start; svc vector at 8. *)
        Asm.branch_to a "start";
        Asm.udf a 1;
        Asm.branch_to a "svc_handler";
        Asm.udf a 3;
        Asm.udf a 4;
        Asm.udf a 5;
        Asm.udf a 6;
        Asm.label a "start";
        (* Drop to user mode via cpsr write. *)
        Asm.mrs a 0;
        Asm.mov32 a 1 0xFFFFFFE0;
        Asm.and_r a 0 0 1;
        Asm.orr a 0 0 0x10;
        Asm.msr a ~flags:true ~control:true 0;
        Asm.mov a 2 5;
        Asm.svc a 7;
        Asm.mov a 3 11;
        Asm.udf a 9;
        Asm.label a "svc_handler";
        Asm.mov a 4 77;
        (* Return: movs pc, lr restores CPSR from SPSR. *)
        Asm.emit a
          (Insn.make
             (Insn.Dp
                { op = Insn.MOV; s = true; rd = 15; rn = 0;
                  op2 = Insn.Reg_shift_imm { rm = 14; kind = Insn.LSL; amount = 0 } })))
  in
  run_steps cpu mem 13;
  Alcotest.(check int) "handler ran" 77 (Cpu.get_reg cpu 4);
  Alcotest.(check int) "resumed after svc" 11 (Cpu.get_reg cpu 3);
  Alcotest.(check string) "back in user mode" "usr"
    (Format.asprintf "%a" Cpu.pp_mode (Cpu.mode cpu))

let test_irq_entry_and_banking () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.branch_to a "start";
        Asm.udf a 1;
        Asm.udf a 2;
        Asm.udf a 3;
        Asm.udf a 4;
        Asm.udf a 5;
        Asm.branch_to a "irq_handler";
        Asm.label a "start";
        Asm.mov32 a Insn.sp 0x8000;
        Asm.cps a ~disable:false;
        Asm.label a "spin";
        Asm.mov a 0 1;
        Asm.branch_to a "spin";
        Asm.label a "irq_handler";
        Asm.mov a 5 123;
        Asm.emit a
          (Insn.make
             (Insn.Dp
                { op = Insn.SUB; s = true; rd = 15; rn = 14;
                  op2 = Insn.imm_operand_exn 4 })))
  in
  (* Execute setup, then raise IRQ. *)
  run_steps cpu mem 4;
  let sp_before = Cpu.get_reg cpu Insn.sp in
  (match Interp.step cpu mem ~irq:true with
  | Interp.Took_exception Cpu.Irq -> ()
  | _ -> Alcotest.fail "expected IRQ");
  Alcotest.(check string) "irq mode" "irq"
    (Format.asprintf "%a" Cpu.pp_mode (Cpu.mode cpu));
  Alcotest.(check bool) "sp banked" true (Cpu.get_reg cpu Insn.sp <> sp_before || sp_before = 0);
  run_steps cpu mem 3;
  Alcotest.(check int) "handler ran" 123 (Cpu.get_reg cpu 5);
  Alcotest.(check string) "back to svc mode" "svc"
    (Format.asprintf "%a" Cpu.pp_mode (Cpu.mode cpu));
  (* IRQs are masked during the handler and unmasked on return. *)
  Alcotest.(check bool) "irq unmasked after return" false (Cpu.irq_masked cpu)

let test_vmsr_vmrs () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov32 a 0 0xF0000013;
        Asm.vmsr a 0;
        Asm.vmrs a 1;
        (* vmrs apsr_nzcv, fpscr: flags from FPSCR[31:28] = 0xF *)
        Asm.vmrs a 15)
  in
  run_steps cpu mem 5;
  Alcotest.(check int) "fpscr readback" 0xF0000013 (Cpu.get_reg cpu 1);
  let f = Cpu.get_flags cpu in
  Alcotest.(check bool) "N" true f.Cond.n;
  Alcotest.(check bool) "Z" true f.Cond.z;
  Alcotest.(check bool) "C" true f.Cond.c;
  Alcotest.(check bool) "V" true f.Cond.v

let test_mcr_mrc_ttbr () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov32 a 0 0x4000;
        Asm.mcr a ~crn:2 0;
        Asm.mrc a ~crn:2 1)
  in
  run_steps cpu mem 4;
  Alcotest.(check int) "ttbr readback" 0x4000 (Cpu.get_reg cpu 1);
  Alcotest.(check int) "cpu ttbr" 0x4000 (Cpu.get_ttbr cpu)

let test_udf_takes_undefined () =
  let cpu, mem = setup_flat (fun a -> Asm.udf a 0) in
  (match Interp.step cpu mem ~irq:false with
  | Interp.Took_exception Cpu.Undefined_insn -> ()
  | _ -> Alcotest.fail "expected undefined exception");
  Alcotest.(check int) "at undef vector" 0x4 (Cpu.get_pc cpu)

let test_umull_smull () =
  let cpu, mem =
    setup_flat (fun a ->
        Asm.mov32 a 0 0xFFFFFFFF;
        Asm.mov a 1 2;
        Asm.umull a 2 3 0 1;   (* 0xFFFFFFFF * 2 = 0x1_FFFF_FFFE *)
        Asm.smull a 4 5 0 1)   (* (-1) * 2 = -2 *)
  in
  run_steps cpu mem 5;
  Alcotest.(check int) "umull lo" 0xFFFFFFFE (Cpu.get_reg cpu 2);
  Alcotest.(check int) "umull hi" 1 (Cpu.get_reg cpu 3);
  Alcotest.(check int) "smull lo" 0xFFFFFFFE (Cpu.get_reg cpu 4);
  Alcotest.(check int) "smull hi" 0xFFFFFFFF (Cpu.get_reg cpu 5)

let test_pc_plus_8_view () =
  (* add r0, pc, #0 at address 0 reads PC+8. *)
  let cpu, mem = setup_flat (fun a -> Asm.add a 0 Insn.pc 0) in
  run_steps cpu mem 1;
  Alcotest.(check int) "pc+8" 8 (Cpu.get_reg cpu 0)

let prop_flags_word_roundtrip =
  QCheck.Test.make ~count:200 ~name:"flags pack/unpack"
    QCheck.(quad bool bool bool bool)
    (fun (n, z, c, v) ->
      let f = { Cond.n; z; c; v } in
      Cond.equal_flags f (Cond.flags_of_word (Cond.flags_to_word f)))

let prop_word32_ops =
  QCheck.Test.make ~count:1000 ~name:"word32 masked arithmetic"
    QCheck.(pair int int)
    (fun (a, b) ->
      let a = Word32.mask a and b = Word32.mask b in
      Word32.add a b = (a + b) land 0xFFFFFFFF
      && Word32.sub a b = (a - b) land 0xFFFFFFFF
      && Word32.mask (Word32.mul a b) = Word32.mul a b)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "arm.encode",
      [
        Alcotest.test_case "roundtrip basics" `Quick test_roundtrip_basics;
        q prop_roundtrip;
      ] );
    ( "arm.operand2",
      [ Alcotest.test_case "shifter values and carry" `Quick test_operand2 ] );
    ( "arm.interp",
      [
        Alcotest.test_case "add flags" `Quick test_arith_flags;
        Alcotest.test_case "sub carry convention" `Quick test_sub_carry_convention;
        Alcotest.test_case "signed overflow" `Quick test_overflow;
        Alcotest.test_case "conditional execution" `Quick test_conditional_execution;
        Alcotest.test_case "adc 64-bit chain" `Quick test_adc_chain;
        Alcotest.test_case "ldr/str word and byte" `Quick test_memory_ops;
        Alcotest.test_case "clz" `Quick test_clz;
        Alcotest.test_case "ldrh/strh halfword" `Quick test_halfword_ops;
        Alcotest.test_case "halfword encode constraints" `Quick
          test_halfword_encode_roundtrip;
        Alcotest.test_case "ldrsb/ldrsh signed loads" `Quick test_signed_loads;
        Alcotest.test_case "pre/post indexing" `Quick test_pre_post_index;
        Alcotest.test_case "push/pop" `Quick test_push_pop;
        Alcotest.test_case "bl/bx" `Quick test_branch_and_link;
        Alcotest.test_case "svc exception entry/return" `Quick test_svc_exception_entry;
        Alcotest.test_case "irq entry and register banking" `Quick test_irq_entry_and_banking;
        Alcotest.test_case "vmsr/vmrs" `Quick test_vmsr_vmrs;
        Alcotest.test_case "mcr/mrc ttbr" `Quick test_mcr_mrc_ttbr;
        Alcotest.test_case "udf raises undefined" `Quick test_udf_takes_undefined;
        Alcotest.test_case "umull/smull" `Quick test_umull_smull;
        Alcotest.test_case "pc reads as pc+8" `Quick test_pc_plus_8_view;
      ] );
    ( "arm.properties",
      [ q prop_flags_word_roundtrip; q prop_word32_ops ] );
  ]
