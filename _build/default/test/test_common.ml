open Repro_common

let test_word32_basics () =
  Alcotest.(check int) "mask" 0x2345_6789 (Word32.mask 0x1_2345_6789);
  Alcotest.(check int) "add wrap" 0 (Word32.add 0xFFFF_FFFF 1);
  Alcotest.(check int) "sub wrap" 0xFFFF_FFFF (Word32.sub 0 1);
  Alcotest.(check int) "signed min" (-0x8000_0000) (Word32.signed 0x8000_0000);
  Alcotest.(check int) "sign extend byte" 0xFFFF_FF80 (Word32.sign_extend ~width:8 0x80);
  Alcotest.(check int) "extract" 0xB (Word32.extract 0xAB_C ~lo:4 ~len:4);
  Alcotest.(check int) "insert" 0xA5C (Word32.insert 0xABC ~lo:4 ~len:4 5);
  Alcotest.(check int) "ror" 0x8000_0000 (Word32.rotate_right 1 1);
  Alcotest.(check int) "asr sign" 0xFFFF_FFFF (Word32.shift_right_arith 0x8000_0000 31)

let prop_rotate_inverse =
  QCheck.Test.make ~count:500 ~name:"ror n then ror (32-n) is identity"
    QCheck.(pair int (int_range 1 31))
    (fun (w, n) ->
      let w = Word32.mask w in
      Word32.rotate_right (Word32.rotate_right w n) (32 - n) = w)

let prop_carry_borrow_duality =
  QCheck.Test.make ~count:500 ~name:"carry/borrow match wide arithmetic"
    QCheck.(pair int int)
    (fun (a, b) ->
      let a = Word32.mask a and b = Word32.mask b in
      Word32.carry_of_add a b ~carry_in:false = (a + b > 0xFFFF_FFFF)
      && Word32.borrow_of_sub a b ~borrow_in:false = (a < b))

let test_prng_determinism () =
  let a = Prng.of_string "bench" and b = Prng.of_string "bench" in
  let xs = List.init 20 (fun _ -> Prng.word a) in
  let ys = List.init 20 (fun _ -> Prng.word b) in
  Alcotest.(check (list int)) "same stream" xs ys;
  let c = Prng.of_string "other" in
  let zs = List.init 20 (fun _ -> Prng.word c) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_prng_bounds () =
  let p = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Prng.int p 7 in
    if v < 0 || v >= 7 then Alcotest.fail "out of bounds"
  done

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yyy"; "22" ] ] in
  Alcotest.(check bool) "contains rule" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  (* all non-empty lines same width *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2. (Table.geomean [ 1.; 4. ]);
  Alcotest.(check (float 1e-9)) "singleton" 3. (Table.geomean [ 3. ]);
  (match Table.geomean [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty must raise");
  match Table.geomean [ 1.; 0. ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive must raise"

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "common",
      [
        Alcotest.test_case "word32 basics" `Quick test_word32_basics;
        q prop_rotate_inverse;
        q prop_carry_borrow_duality;
        Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
        Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
        Alcotest.test_case "table rendering" `Quick test_table_render;
        Alcotest.test_case "geomean" `Quick test_geomean;
      ] );
  ]
