open Repro_common
module S = Repro_symexec
module Term = S.Term
module A = Repro_arm.Insn
open Repro_arm

(* --- term language --- *)

let test_normalize_identities () =
  let open Term in
  let x = var "x" in
  let checks =
    [
      (add x (const 0), x);
      (bin Sub x (const 0), x);
      (bin Mul x (const 1), x);
      (bin And x (const 0xFFFFFFFF), x);
      (bin Xor x x, const 0);
      (bin Sub x x, const 0);
      (bin Or x x, x);
      (lnot (lnot x), x);
      (add (add x (const 3)) (const 4), add x (const 7));
      (ite (const 1) x (const 9), x);
      (ite (const 0) x (const 9), const 9);
    ]
  in
  List.iter
    (fun (a, b) ->
      if not (Term.equal a b) then
        Alcotest.failf "%a should normalize to %a" Term.pp a Term.pp b)
    checks

let prop_normalize_preserves_eval =
  (* random small terms: normalization must not change semantics *)
  let gen_term =
    let open QCheck.Gen in
    sized_size (int_range 1 12) @@ fix (fun self n ->
        if n <= 1 then
          oneof
            [ map (fun v -> Term.var (Printf.sprintf "v%d" v)) (int_range 0 3);
              map Term.const (int_range 0 0xFFFF) ]
        else
          let sub = self (n / 2) in
          oneof
            [
              (let* op =
                 oneofl
                   Term.[ Add; Sub; Mul; And; Or; Xor; Shl; Shr; Sar; Ror; Ltu; Lts; Eq ]
               in
               let* a = sub in
               let* b = sub in
               return (Term.bin op a b));
              map Term.lnot sub;
              (let* c = sub in
               let* a = sub in
               let* b = sub in
               return (Term.ite c a b));
            ])
  in
  QCheck.Test.make ~count:500 ~name:"normalize preserves evaluation"
    (QCheck.make ~print:(Format.asprintf "%a" Term.pp) gen_term)
    (fun t ->
      let prng = Prng.create ~seed:7 in
      let env = Array.init 4 (fun _ -> Prng.word prng) in
      let lookup v = env.(int_of_string (String.sub v 1 1)) in
      Word32.mask (Term.eval lookup t) = Word32.mask (Term.eval lookup (Term.normalize t)))

(* --- symbolic ARM vs the interpreter --- *)

let gen_al_plain =
  QCheck.Gen.map
    (List.map (fun (i : Insn.t) -> { i with Insn.cond = Cond.AL }))
    (QCheck.gen (Gen.arbitrary_plain_block 8))

let prop_sym_arm_matches_interp =
  QCheck.Test.make ~count:200 ~name:"symbolic ARM = interpreter on straight-line code"
    (QCheck.make
       ~print:(fun l -> String.concat "; " (List.map Insn.to_string l))
       gen_al_plain)
    (fun insns ->
      (* no pc-relative reads and registers restricted to r0-r12 by the
         generator; run both on a random initial state *)
      let sym0 = S.Sym_arm.initial () in
      match S.Sym_arm.exec sym0 insns with
      | exception S.Sym_arm.Unsupported _ -> QCheck.assume_fail ()
      | sym ->
        let prng = Prng.create ~seed:99 in
        let init = Array.init 16 (fun _ -> Prng.word prng) in
        let n0 = Prng.bool prng and z0 = Prng.bool prng in
        let c0 = Prng.bool prng and v0 = Prng.bool prng in
        let cpu = Cpu.create () in
        Array.iteri (fun r v -> if r < 15 then Cpu.set_reg cpu r v) init;
        Cpu.set_flags cpu { Cond.n = n0; z = z0; c = c0; v = v0 };
        let _buf, mem = Mem.flat ~size:64 in
        List.iter
          (fun insn ->
            match Interp.execute_insn cpu mem insn with
            | Interp.Stepped -> ()
            | _ -> Alcotest.fail "interp failed")
          insns;
        let lookup v =
          match v with
          | "n" -> if n0 then 1 else 0
          | "z" -> if z0 then 1 else 0
          | "c" -> if c0 then 1 else 0
          | "v" -> if v0 then 1 else 0
          | _ -> init.(int_of_string (String.sub v 1 (String.length v - 1)))
        in
        let ok = ref true in
        for r = 0 to 12 do
          if Word32.mask (Term.eval lookup sym.S.Sym_arm.regs.(r)) <> Cpu.get_reg cpu r
          then ok := false
        done;
        let f = Cpu.get_flags cpu in
        let flag t b = Word32.mask (Term.eval lookup t) = if b then 1 else 0 in
        !ok
        && flag sym.S.Sym_arm.n f.Cond.n
        && flag sym.S.Sym_arm.z f.Cond.z
        && flag sym.S.Sym_arm.c f.Cond.c
        && flag sym.S.Sym_arm.v f.Cond.v)

(* --- equivalence checker --- *)

let test_equiv_basics () =
  let open Term in
  let x = var "x" and y = var "y" in
  Alcotest.(check bool) "commutative add proved" true
    (S.Equiv.holds (S.Equiv.check (add x y) (add y x)));
  Alcotest.(check bool) "xor-swap residual probable/proved" true
    (S.Equiv.holds
       (S.Equiv.check (bin Xor (bin Xor x y) y) x));
  (match S.Equiv.check (add x y) (bin Sub x y) with
  | S.Equiv.Refuted -> ()
  | v -> Alcotest.failf "add vs sub should refute, got %s" (S.Equiv.verdict_name v));
  match S.Equiv.check (bin Mul x (const 2)) (bin Shl x (const 1)) with
  | S.Equiv.Refuted -> Alcotest.fail "x*2 == x<<1 refuted"
  | _ -> ()

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "symexec.term",
      [
        Alcotest.test_case "normalization identities" `Quick test_normalize_identities;
        q prop_normalize_preserves_eval;
      ] );
    ("symexec.arm", [ q prop_sym_arm_matches_interp ]);
    ("symexec.equiv", [ Alcotest.test_case "basics" `Quick test_equiv_basics ]);
  ]
