test/test_rules.ml: Alcotest Array Lazy List Printf Repro_arm Repro_rules Repro_x86 String
