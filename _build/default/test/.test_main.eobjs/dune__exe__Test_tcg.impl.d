test/test_tcg.ml: Alcotest Array Asm Cond Cpu Format Fun Gen Insn List Printf QCheck QCheck_alcotest Repro_arm Repro_machine Repro_tcg Repro_x86
