test/test_common.ml: Alcotest List Prng QCheck QCheck_alcotest Repro_common String Table Word32
