test/test_kernel.ml: Alcotest Asm Char Cond Float Gen Insn List Printf QCheck QCheck_alcotest Repro_arm Repro_dbt Repro_kernel Repro_machine Repro_tcg Repro_workloads Repro_x86 String
