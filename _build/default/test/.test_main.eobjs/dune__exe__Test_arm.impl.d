test/test_arm.ml: Alcotest Array Asm Cond Cpu Encode Format Gen Insn Interp List Mem QCheck QCheck_alcotest Repro_arm Repro_common Word32
