test/test_symexec.ml: Alcotest Array Cond Cpu Format Gen Insn Interp List Mem Printf Prng QCheck QCheck_alcotest Repro_arm Repro_common Repro_symexec String Word32
