test/test_main.ml: Alcotest Test_arm Test_common Test_dbt Test_emitter Test_kernel Test_learn Test_machine Test_mmu Test_rules Test_symexec Test_tcg Test_x86
