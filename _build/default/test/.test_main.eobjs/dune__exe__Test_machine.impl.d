test/test_machine.ml: Alcotest Bytes Char Repro_machine String
