test/gen.ml: Cond Insn List QCheck Repro_arm String
