test/test_learn.ml: Alcotest Cpu Insn Lazy List Option Printf Repro_arm Repro_dbt Repro_learn Repro_minic Repro_rules Repro_tcg Repro_x86
