test/test_emitter.ml: Alcotest Array Asm Cond Lazy Printf Repro_arm Repro_dbt Repro_rules Repro_tcg Repro_x86
