test/test_mmu.ml: Alcotest Array Bytes Repro_arm Repro_machine Repro_mmu
