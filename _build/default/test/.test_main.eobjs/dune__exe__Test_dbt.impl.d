test/test_dbt.ml: Alcotest Array Asm Cond Cpu Format Gen Insn List Printf QCheck QCheck_alcotest Repro_arm Repro_dbt Repro_machine Repro_tcg Repro_x86 String
