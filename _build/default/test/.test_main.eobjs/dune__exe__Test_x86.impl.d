test/test_x86.ml: Alcotest Array List Repro_x86
