module R = Repro_rules
module Rule = R.Rule
module Ruleset = R.Ruleset
module Flagconv = R.Flagconv
module A = Repro_arm.Insn
module X = Repro_x86.Insn
module Cond = Repro_arm.Cond

let rules = lazy (R.Builtin.all ())
let ruleset = lazy (R.Builtin.ruleset ())

let find_rule name = List.find (fun r -> r.Rule.name = name) (Lazy.force rules)

let dp ?(s = false) ?(cond = Cond.AL) op rd rn op2 =
  { A.cond; op = A.Dp { op; s; rd; rn; op2 } }

let reg r = A.Reg_shift_imm { rm = r; kind = A.LSL; amount = 0 }

let test_match_alias_vs_3op () =
  (* add r0, r0, r1 should prefer the 1-insn alias rule *)
  let insn = dp A.ADD 0 0 (reg 1) in
  match Ruleset.match_at (Lazy.force ruleset) [ insn ] with
  | Some (r, b) ->
    Alcotest.(check bool)
      ("rule " ^ r.Rule.name)
      true
      (r.Rule.name = "alu_alias_reg" || r.Rule.name = "add_reg_lea");
    Alcotest.(check int) "p0 bound" 0 b.Rule.regs.(0)
  | None -> Alcotest.fail "no match"

let test_param_consistency () =
  (* add r0, r1, r1: distinct params may bind the same register *)
  let insn = dp A.ADD 0 1 (reg 1) in
  (match Ruleset.match_at (Lazy.force ruleset) [ insn ] with
  | Some _ -> ()
  | None -> Alcotest.fail "same-reg operands must match");
  (* the alias rule (rd = rn shared param) must NOT match add r0, r1, r2 *)
  let alias = find_rule "alus_alias_reg" in
  let insn' = dp ~s:true A.ADD 0 1 (reg 2) in
  match Rule.match_sequence alias [ insn' ] with
  | Some _ -> Alcotest.fail "alias rule must not match distinct rd/rn"
  | None -> ()

let test_distinct_constraint_blocks_alias () =
  (* alus_3op_reg requires rd <> rm *)
  let r = find_rule "alus_3op_reg" in
  let ok = dp ~s:true A.SUB 0 1 (reg 2) in
  let bad = dp ~s:true A.SUB 0 1 (reg 0) in
  Alcotest.(check bool) "rd<>rm matches" true (Rule.match_sequence r [ ok ] <> None);
  Alcotest.(check bool) "rd=rm rejected" true (Rule.match_sequence r [ bad ] = None)

let test_opcode_class_matched_op () =
  let r = find_rule "alus_alias_imm" in
  let insn = dp ~s:true A.EOR 3 3 (A.imm_operand_exn 12) in
  match Rule.match_sequence r [ insn ] with
  | Some b ->
    Alcotest.(check bool) "matched EOR" true (b.Rule.matched = Some A.EOR);
    (match
       Rule.instantiate r b ~pin_of_guest_reg:R.Pinmap.pin ~scratch:R.Pinmap.scratch
     with
    | Some [ X.Alu { op = X.Xor; dst = X.Reg hr; src = X.Imm 12 } ] ->
      Alcotest.(check (option int)) "host reg is pin(r3)" (R.Pinmap.pin 3) (Some hr)
    | Some other ->
      Alcotest.failf "unexpected template: %s"
        (String.concat "; " (List.map X.to_string other))
    | None -> Alcotest.fail "instantiation failed");
    (match Rule.convention_after r b with
    | Some Flagconv.Logic_like -> ()
    | _ -> Alcotest.fail "EOR should leave logic convention")
  | None -> Alcotest.fail "no match"

let test_unpinned_instantiation_fails () =
  let r = find_rule "mov_reg" in
  let insn = dp A.MOV 9 0 (reg 1) in
  match Rule.match_sequence r [ insn ] with
  | Some b ->
    Alcotest.(check bool) "unpinned blocks instantiation" true
      (Rule.instantiate r b ~pin_of_guest_reg:R.Pinmap.pin ~scratch:R.Pinmap.scratch
      = None)
  | None -> Alcotest.fail "pattern should match structurally"

let test_imm_linking () =
  (* movt's template uses the matched imm16 shifted left 16 *)
  let r = find_rule "movt" in
  let insn = { A.cond = Cond.AL; op = A.Movt { rd = 2; imm16 = 0xBEEF } } in
  match Rule.match_sequence r [ insn ] with
  | Some b -> (
    match
      Rule.instantiate r b ~pin_of_guest_reg:R.Pinmap.pin ~scratch:R.Pinmap.scratch
    with
    | Some [ _; X.Alu { op = X.Or; src = X.Imm v; _ } ] ->
      Alcotest.(check int) "shifted immediate" (0xBEEF lsl 16) v
    | _ -> Alcotest.fail "unexpected movt template")
  | None -> Alcotest.fail "movt must match"

let test_longest_match_wins () =
  (* a synthetic 2-insn rule must win over 1-insn rules *)
  let two =
    {
      Rule.id = 9999;
      name = "two";
      guest =
        [
          Rule.G_dp { ops = [ A.MOV ]; s = false; rd = 0; rn = 0; op2 = Rule.G_imm (Rule.P_imm 0) };
          Rule.G_dp { ops = [ A.ADD ]; s = false; rd = 1; rn = 1; op2 = Rule.G_reg 0 };
        ];
      host = [ Rule.H_mov { dst = Rule.H_param 0; src = Rule.H_imm (Rule.P_imm 0) } ];
      n_reg_params = 2;
      n_imm_params = 1;
      flags = { Rule.guest_writes = false; host_clobbers = false; convention = None };
      carry_in = None;
      require_distinct = [];
      source = `Builtin;
    }
  in
  let rs = Ruleset.of_list (two :: Lazy.force rules) in
  let insns = [ dp A.MOV 0 0 (A.imm_operand_exn 1); dp A.ADD 1 1 (reg 0) ] in
  match Ruleset.match_at rs insns with
  | Some (r, _) -> Alcotest.(check string) "longest first" "two" r.Rule.name
  | None -> Alcotest.fail "no match"

let test_coverage_metric () =
  let insns =
    [
      dp A.MOV 0 0 (A.imm_operand_exn 1);
      dp A.ADD 1 0 (reg 0);
      { A.cond = Cond.AL; op = A.Svc 0 };  (* uncovered *)
      dp A.SUB 2 1 (A.imm_operand_exn 3);
    ]
  in
  Alcotest.(check int) "3 of 4 covered" 3 (Ruleset.coverage (Lazy.force ruleset) insns)

(* --- flag conventions --- *)

let test_flagconv_all_conditions_canonical () =
  List.iter
    (fun c ->
      match Flagconv.eval Flagconv.Canonical c with
      | Flagconv.Cc _ | Flagconv.Always -> ()
      | _ ->
        Alcotest.failf "canonical must express %s" (Cond.to_string c))
    Cond.all

let test_flagconv_add_needs_materialize () =
  (match Flagconv.eval Flagconv.Add_like Cond.HI with
  | Flagconv.Needs_materialize -> ()
  | _ -> Alcotest.fail "HI after add has no single cc");
  match Flagconv.eval Flagconv.Logic_like Cond.CS with
  | Flagconv.Never -> ()
  | _ -> Alcotest.fail "CS after logic is constant false"

let test_flagconv_sub_mappings () =
  let check c cc =
    match Flagconv.eval Flagconv.Sub_like c with
    | Flagconv.Cc got when got = cc -> ()
    | _ -> Alcotest.failf "wrong mapping for %s" (Cond.to_string c)
  in
  check Cond.CS X.AE;
  check Cond.CC X.B;
  check Cond.HI X.A;
  check Cond.LS X.BE;
  check Cond.EQ X.E;
  check Cond.GT X.G

(* --- flag conventions: exhaustive soundness on the real host --- *)

let test_flagconv_sound () =
  (* For every convention, ARM condition and NZCV value: encode the
     guest flags into host EFLAGS exactly as the convention promises,
     run a real [setcc] on the host model, and compare against the
     architectural {!Cond.holds}. This is the semantic contract every
     emitted conditional guard relies on. *)
  let module Exec = Repro_x86.Exec in
  let module FC = Flagconv in
  let run_setcc cc host_flags_word =
    let b = Repro_x86.Prog.builder () in
    Repro_x86.Prog.emit b
      (X.Mov { width = X.W32; dst = X.Reg X.rax; src = X.Imm host_flags_word });
    Repro_x86.Prog.emit b (X.Loadf X.rax);
    Repro_x86.Prog.emit b (X.Setcc { cc; dst = X.rbx });
    Repro_x86.Prog.emit b (X.Exit { slot = 0 });
    let ctx = Exec.create () in
    (match Exec.run ctx (Repro_x86.Prog.finalize b) ~fuel:100 with
    | Exec.Exited 0 -> ()
    | _ -> Alcotest.fail "setcc probe did not exit");
    ctx.Exec.regs.(X.rbx) = 1
  in
  List.iter
    (fun conv ->
      List.iter
        (fun cond ->
          for nzcv = 0 to 15 do
            let flags =
              {
                Cond.n = nzcv land 8 <> 0;
                z = nzcv land 4 <> 0;
                c = nzcv land 2 <> 0;
                v = nzcv land 1 <> 0;
              }
            in
            (* Logic_like only ever describes states with C = V = 0 *)
            if not (conv = FC.Logic_like && (flags.Cond.c || flags.Cond.v)) then begin
              let bit cond_ b = if cond_ then 1 lsl b else 0 in
              let host_cf =
                if FC.carry_inverted conv then not flags.Cond.c else flags.Cond.c
              in
              let w =
                bit flags.Cond.n 31 lor bit flags.Cond.z 30 lor bit host_cf 29
                lor bit flags.Cond.v 28
              in
              let expected = Cond.holds cond flags in
              match FC.eval conv cond with
              | FC.Cc cc ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s/nzcv=%x" (FC.name conv)
                     (Cond.to_string cond) nzcv)
                  expected (run_setcc cc w)
              | FC.Always ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s always" (FC.name conv) (Cond.to_string cond))
                  true expected
              | FC.Never ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s never" (FC.name conv) (Cond.to_string cond))
                  false expected
              | FC.Needs_materialize ->
                (* legal: the emitter re-installs Canonical first, whose
                   own entries are checked in this same sweep *)
                ()
            end
          done)
        Cond.all)
    [ FC.Add_like; FC.Sub_like; FC.Logic_like; FC.Canonical ];
  (* Canonical must express every condition without materialization *)
  List.iter
    (fun cond ->
      match FC.eval FC.Canonical cond with
      | FC.Needs_materialize ->
        Alcotest.failf "Canonical cannot express %s" (Cond.to_string cond)
      | FC.Cc _ | FC.Always | FC.Never -> ())
    Cond.all


let suite =
  [
    ( "rules.match",
      [
        Alcotest.test_case "alias preferred" `Quick test_match_alias_vs_3op;
        Alcotest.test_case "param consistency" `Quick test_param_consistency;
        Alcotest.test_case "distinct constraints" `Quick test_distinct_constraint_blocks_alias;
        Alcotest.test_case "opcode class + instantiation" `Quick test_opcode_class_matched_op;
        Alcotest.test_case "unpinned instantiation fails" `Quick
          test_unpinned_instantiation_fails;
        Alcotest.test_case "movt immediate shifting" `Quick test_imm_linking;
        Alcotest.test_case "longest match wins" `Quick test_longest_match_wins;
        Alcotest.test_case "static coverage metric" `Quick test_coverage_metric;
      ] );
    ( "rules.flagconv",
      [
        Alcotest.test_case "canonical covers all conditions" `Quick
          test_flagconv_all_conditions_canonical;
        Alcotest.test_case "add/logic corner cases" `Quick test_flagconv_add_needs_materialize;
        Alcotest.test_case "sub-convention mappings" `Quick test_flagconv_sub_mappings;
        Alcotest.test_case "convention soundness (exhaustive)" `Quick
          test_flagconv_sound;
      ] );
  ]

(* --- serialization --- *)

let test_serialize_roundtrip_builtin () =
  List.iter
    (fun r ->
      match R.Serialize.rule_of_string (R.Serialize.rule_to_string r) with
      | Ok r' ->
        if r' <> r then Alcotest.failf "roundtrip mismatch for %s" r.Rule.name
      | Error e -> Alcotest.failf "parse failed for %s: %s" r.Rule.name e)
    (Lazy.force rules)

let test_serialize_ruleset_file () =
  let rs = Lazy.force ruleset in
  let text = R.Serialize.save rs in
  match R.Serialize.load text with
  | Ok rs' ->
    Alcotest.(check int) "same size" (Ruleset.size rs) (Ruleset.size rs');
    Alcotest.(check bool) "same rules" true (Ruleset.rules rs = Ruleset.rules rs')
  | Error e -> Alcotest.failf "load failed: %s" e

let test_serialize_rejects_garbage () =
  match R.Serialize.load "(rule (id banana))" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse"

let serialize_suite =
  ( "rules.serialize",
    [
      Alcotest.test_case "rule roundtrip" `Quick test_serialize_roundtrip_builtin;
      Alcotest.test_case "ruleset save/load" `Quick test_serialize_ruleset_file;
      Alcotest.test_case "rejects garbage" `Quick test_serialize_rejects_garbage;
    ] )

let suite = suite @ [ serialize_suite ]
