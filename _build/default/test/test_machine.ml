module Devices = Repro_machine.Devices
module Bus = Repro_machine.Bus

let test_timer_period_and_ack () =
  let t = Devices.Timer.create () in
  Devices.Timer.write t 0x4 100;  (* period *)
  Devices.Timer.write t 0x0 1;    (* enable *)
  Devices.Timer.tick t 99;
  Alcotest.(check bool) "not yet" false (Devices.Timer.irq_line t);
  Devices.Timer.tick t 1;
  Alcotest.(check bool) "fired" true (Devices.Timer.irq_line t);
  Devices.Timer.write t 0xC 0;    (* ack *)
  Alcotest.(check bool) "cleared" false (Devices.Timer.irq_line t);
  Devices.Timer.tick t 250;
  Alcotest.(check bool) "fires again" true (Devices.Timer.irq_line t);
  Alcotest.(check int) "raise count" 2 (Devices.Timer.irqs_raised t)

let test_timer_disabled_never_fires () =
  let t = Devices.Timer.create () in
  Devices.Timer.write t 0x4 10;
  Devices.Timer.tick t 1000;
  Alcotest.(check bool) "disabled" false (Devices.Timer.irq_line t)

let test_uart_collects_output () =
  let u = Devices.Uart.create () in
  String.iter (fun c -> Devices.Uart.write u 0x0 (Char.code c)) "abc";
  Alcotest.(check string) "buffered" "abc" (Devices.Uart.output u);
  Alcotest.(check int) "status ready" 1 (Devices.Uart.read u 0x4)

let test_syscon_halt () =
  let s = Devices.Syscon.create () in
  Alcotest.(check (option int)) "running" None (Devices.Syscon.halted s);
  Devices.Syscon.write s 0 42;
  Alcotest.(check (option int)) "halted" (Some 42) (Devices.Syscon.halted s)

let test_bus_dispatch () =
  let bus = Bus.create ~ram:(Bytes.make 4096 '\000') in
  (match Bus.write32 bus 0x100 0xCAFE with Ok () -> () | Error () -> Alcotest.fail "ram");
  (match Bus.read32 bus 0x100 with
  | Ok v -> Alcotest.(check int) "ram readback" 0xCAFE v
  | Error () -> Alcotest.fail "ram read");
  (match Bus.read32 bus 0x7FFF_0000 with
  | Error () -> ()
  | Ok _ -> Alcotest.fail "unmapped physical address must bus-error");
  (match Bus.write32 bus Bus.uart_base (Char.code 'x') with
  | Ok () -> ()
  | Error () -> Alcotest.fail "uart mmio");
  Alcotest.(check string) "uart via bus" "x" (Devices.Uart.output bus.Bus.uart);
  (match Bus.write32 bus Bus.syscon_base 9 with
  | Ok () -> ()
  | Error () -> Alcotest.fail "syscon mmio");
  Alcotest.(check (option int)) "halt via bus" (Some 9) (Bus.halted bus)

let suite =
  [
    ( "machine",
      [
        Alcotest.test_case "timer period/ack" `Quick test_timer_period_and_ack;
        Alcotest.test_case "timer disabled" `Quick test_timer_disabled_never_fires;
        Alcotest.test_case "uart buffers" `Quick test_uart_collects_output;
        Alcotest.test_case "syscon halts" `Quick test_syscon_halt;
        Alcotest.test_case "bus dispatch" `Quick test_bus_dispatch;
      ] );
  ]
