examples/multitask.mli:
