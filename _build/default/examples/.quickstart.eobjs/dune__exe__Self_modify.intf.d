examples/self_modify.mli:
