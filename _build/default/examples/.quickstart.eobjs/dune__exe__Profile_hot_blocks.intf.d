examples/profile_hot_blocks.mli:
