examples/learn_rules.ml: Format List Repro_dbt Repro_learn Repro_minic Repro_rules Repro_tcg Repro_x86
