examples/opt_anatomy.mli:
