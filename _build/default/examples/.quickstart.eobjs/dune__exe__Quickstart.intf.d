examples/quickstart.mli:
