examples/profile_hot_blocks.ml: Format List Repro_dbt Repro_kernel Repro_tcg Repro_workloads
