examples/system_boot.mli:
