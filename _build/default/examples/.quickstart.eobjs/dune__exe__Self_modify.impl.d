examples/self_modify.ml: Asm Char Cond Encode Insn List Printf Repro_arm Repro_dbt Repro_kernel Repro_tcg
