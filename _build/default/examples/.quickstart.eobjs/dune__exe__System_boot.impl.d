examples/system_boot.ml: Asm Char Cond Insn Printf Repro_arm Repro_dbt Repro_kernel Repro_tcg Repro_x86 String
