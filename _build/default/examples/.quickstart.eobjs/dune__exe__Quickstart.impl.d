examples/quickstart.ml: Asm Cond Printf Repro_arm Repro_dbt Repro_machine Repro_tcg Repro_x86
