examples/multitask.ml: Char Format Repro_arm Repro_dbt Repro_kernel Repro_tcg Repro_x86
