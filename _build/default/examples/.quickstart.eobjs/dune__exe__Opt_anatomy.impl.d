examples/opt_anatomy.ml: Array Asm Cond Format Insn List Repro_arm Repro_dbt Repro_rules Repro_x86
