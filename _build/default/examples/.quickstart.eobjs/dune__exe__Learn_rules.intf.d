examples/learn_rules.mli:
