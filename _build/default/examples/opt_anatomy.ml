(* Anatomy of the coordination optimizations: emit the same guest
   translation block at every optimization level and show how the
   Sync-save / Sync-restore code shrinks — the paper's Figs. 6-13 as
   live output.

     dune exec examples/opt_anatomy.exe *)

open Repro_arm
module D = Repro_dbt
module X = Repro_x86

(* The guest block under study: a flag producer, two memory accesses
   (the Fig. 10 consecutive-ld/st scenario), a conditional pair on the
   same condition (Fig. 9), and a conditional branch. *)
let guest_block () =
  let a = Asm.create () in
  Asm.cmp a 0 5;
  Asm.ldr a 1 6 0;
  Asm.str a 1 6 4;
  Asm.add a ~cond:Cond.EQ 2 2 1;
  Asm.add a ~cond:Cond.EQ 3 3 1;
  Asm.branch_to a ~cond:Cond.NE "self";
  Asm.label a "self";
  snd (Asm.assemble_insns a)

let () =
  let insns = guest_block () in
  Format.printf "guest block:@.";
  Array.iter (fun i -> Format.printf "  %a@." Insn.pp i) insns;
  let ruleset = Repro_rules.Builtin.ruleset () in
  List.iter
    (fun (name, opt) ->
      let scheduled, origins =
        let tagged =
          Array.mapi (fun k x -> (x, k)) (D.Translator_rule.schedule ~opt insns)
        in
        (Array.map fst tagged, Array.map snd tagged)
      in
      ignore origins;
      let r =
        D.Emitter.emit ~opt ~ruleset ~privileged:false ~tb_pc:0 ~insns:scheduled ()
      in
      let count = X.Prog.static_count r.D.Emitter.prog in
      Format.printf "@.=== %s: %d host instructions ===@.%a@." name count X.Prog.pp
        r.D.Emitter.prog)
    D.Opt.levels
