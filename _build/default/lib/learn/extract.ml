module A = Repro_arm.Insn
module X = Repro_x86.Insn
module Ast = Repro_minic.Ast
module Codegen_arm = Repro_minic.Codegen_arm
module Codegen_x86 = Repro_minic.Codegen_x86

type candidate = {
  line : int;
  source : string;
  guest : Repro_arm.Insn.t list;
  host : Repro_x86.Insn.t list;
}

let guest_computational (i : A.t) =
  i.A.cond = Repro_arm.Cond.AL
  && (not (A.is_branch i))
  && (not (A.is_memory_access i))
  && not (A.is_system_level i)

let host_computational (i : X.t) =
  match i with
  | X.Jcc _ | X.Jmp _ | X.Label _ | X.Call_helper _ | X.Exit _ | X.Count _ -> false
  | X.Alu { op = X.Cmp; _ } -> true
  | _ -> true

let group_by_line items line_of =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun item ->
      let l = line_of item in
      if l >= 0 then begin
        if not (Hashtbl.mem tbl l) then order := l :: !order;
        Hashtbl.replace tbl l (item :: (try Hashtbl.find tbl l with Not_found -> []))
      end)
    items;
  List.rev_map (fun l -> (l, List.rev (Hashtbl.find tbl l))) !order

let of_program (prog : Ast.program) =
  let g = Codegen_arm.compile prog in
  let h = Codegen_x86.compile prog in
  let g_lines =
    group_by_line g (fun (x : Codegen_arm.line_insn) -> x.Codegen_arm.line)
  in
  let h_lines =
    group_by_line h (fun (x : Codegen_x86.line_insn) -> x.Codegen_x86.line)
  in
  List.filter_map
    (fun (line, g_items) ->
      match List.assoc_opt line h_lines with
      | None -> None
      | Some h_items ->
        let guest = List.map (fun (x : Codegen_arm.line_insn) -> x.Codegen_arm.insn) g_items in
        let host = List.map (fun (x : Codegen_x86.line_insn) -> x.Codegen_x86.insn) h_items in
        (* Control-flow lines (if/while conditions) contribute their
           comparison prefix: truncate both sides at the first
           non-computational instruction, keeping the prefix when it
           is non-empty on both. *)
        let rec take_guest acc = function
          | [] -> List.rev acc
          | i :: tl -> if guest_computational i then take_guest (i :: acc) tl else List.rev acc
        in
        let rec take_host acc = function
          | [] -> List.rev acc
          | i :: tl -> if host_computational i then take_host (i :: acc) tl else List.rev acc
        in
        let guest = take_guest [] guest in
        let host = take_host [] host in
        if guest = [] || host = [] then None
        else Some { line; source = prog.Ast.name; guest; host })
    g_lines

let pp_candidate ppf c =
  Format.fprintf ppf "@[<v>%s:%d@,guest:@,%a@,host:@,%a@]" c.source c.line
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf i ->
         Format.fprintf ppf "  %a" A.pp i))
    c.guest
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf i ->
         Format.fprintf ppf "  %a" X.pp i))
    c.host
