(** The end-to-end learning pipeline (paper §II-A): compile the corpus
    with both compilers, extract per-line fragment pairs, verify them
    symbolically, parameterize the survivors, lump same-shape ALU
    rules into opcode classes, and deduplicate into a rule set. *)

type report = {
  programs : int;
  candidates : int;
  verified : int;
  rules : Repro_rules.Rule.t list;  (** final, lumped and deduplicated *)
  rejected : (Extract.candidate * string) list;
}

val learn : ?corpus:Repro_minic.Ast.program list -> unit -> report
(** Defaults to {!Corpus.programs}. Deterministic. *)

val ruleset : report -> Repro_rules.Ruleset.t
val pp_report : Format.formatter -> report -> unit
