(** Semantic verification of a candidate fragment pair — the learning
    pipeline's "formal semantic-equivalence verification" step.

    Both fragments are evaluated symbolically from a shared initial
    state (pinned host registers seeded with the corresponding guest
    registers). The pair verifies when every guest register the
    fragment defines matches the pinned host register, every other
    pinned register is untouched, and the final flag states correspond
    under one of the three host conventions. Equivalence is
    normalization-based with a randomized fallback ({!Repro_symexec.Equiv}). *)

type flag_finding =
  | F_none of { host_clobbers : bool }
  | F_writes of Repro_rules.Flagconv.t

type verified = {
  flags : flag_finding;
  carry_in : [ `Direct | `Inverted ] option;
  strength : Repro_symexec.Equiv.verdict;  (** weakest verdict used *)
}

val check :
  guest:Repro_arm.Insn.t list -> host:Repro_x86.Insn.t list -> (verified, string) result
