module A = Repro_arm.Insn
module X = Repro_x86.Insn
module Pinmap = Repro_rules.Pinmap
module Flagconv = Repro_rules.Flagconv
module Term = Repro_symexec.Term
module Sym_arm = Repro_symexec.Sym_arm
module Sym_x86 = Repro_symexec.Sym_x86
module Equiv = Repro_symexec.Equiv

type flag_finding = F_none of { host_clobbers : bool } | F_writes of Flagconv.t

type verified = {
  flags : flag_finding;
  carry_in : [ `Direct | `Inverted ] option;
  strength : Equiv.verdict;
}

(* Reverse pin map: host reg -> guest reg. *)
let guest_of_host =
  let t = Array.make 16 (-1) in
  List.iter
    (fun g -> match Pinmap.pin g with Some h -> t.(h) <- g | None -> ())
    Pinmap.pinned_guests;
  t

let host_flag_writer (i : X.t) =
  match i with
  | X.Alu _ | X.Neg _ | X.Imul _ | X.Loadf _ -> true
  | X.Shift { amount = X.Sh_imm 0; _ } -> false
  | X.Shift _ -> true
  | _ -> false

let seed_host carry_in =
  Sym_x86.initial (fun h ->
      let g = guest_of_host.(h) in
      if g >= 0 then Term.var (Printf.sprintf "r%d" g)
      else Term.var (Printf.sprintf "h%d" h))
  |> fun st ->
  match carry_in with
  | None -> st
  | Some `Direct -> { st with Sym_x86.cf = Term.var "c" }
  | Some `Inverted -> { st with Sym_x86.cf = Term.bool_not (Term.var "c") }

let weakest a b =
  match (a, b) with
  | Equiv.Refuted, _ | _, Equiv.Refuted -> Equiv.Refuted
  | Equiv.Probable, _ | _, Equiv.Probable -> Equiv.Probable
  | Equiv.Proved, Equiv.Proved -> Equiv.Proved

exception Failed of string

let check_under ~guest ~host carry_in =
  let g0 = Sym_arm.initial () in
  let g1 = Sym_arm.exec g0 guest in
  let h1 = Sym_x86.exec (seed_host carry_in) host in
  let defs = List.fold_left (fun acc i -> acc lor A.defs i) 0 guest in
  if defs land lnot Pinmap.pinned_mask <> 0 then raise (Failed "defines unpinned register");
  let strength = ref Equiv.Proved in
  let require what a b =
    match Equiv.check a b with
    | Equiv.Refuted -> raise (Failed (what ^ " mismatch"))
    | v -> strength := weakest !strength v
  in
  (* host register outputs must not depend on unrelated host state *)
  let check_no_flag_vars what t =
    let bad = [ "cf"; "zf"; "sf"; "of" ] in
    if List.exists (fun v -> List.mem v bad) (Term.vars t) then
      raise (Failed (what ^ " depends on initial host flags"))
  in
  List.iter
    (fun g ->
      match Pinmap.pin g with
      | None -> ()
      | Some h ->
        if defs land (1 lsl g) <> 0 then begin
          check_no_flag_vars (Printf.sprintf "r%d" g) h1.Sym_x86.regs.(h);
          require (Printf.sprintf "r%d" g) g1.Sym_arm.regs.(g) h1.Sym_x86.regs.(h)
        end
        else
          require
            (Printf.sprintf "r%d preserved" g)
            (Term.var (Printf.sprintf "r%d" g))
            h1.Sym_x86.regs.(h))
    Pinmap.pinned_guests;
  (* flags *)
  let writes = List.exists A.writes_flags guest in
  let flags =
    if not writes then F_none { host_clobbers = List.exists host_flag_writer host }
    else begin
      require "N" g1.Sym_arm.n h1.Sym_x86.sf;
      require "Z" g1.Sym_arm.z h1.Sym_x86.zf;
      let try_conv conv =
        let saved = !strength in
        try
          (match conv with
          | Flagconv.Sub_like ->
            require "C(sub)" g1.Sym_arm.c (Term.bool_not h1.Sym_x86.cf);
            require "V" g1.Sym_arm.v h1.Sym_x86.o_f
          | Flagconv.Add_like ->
            require "C(add)" g1.Sym_arm.c h1.Sym_x86.cf;
            require "V" g1.Sym_arm.v h1.Sym_x86.o_f
          | Flagconv.Logic_like ->
            require "C(logic)" g1.Sym_arm.c (Term.const 0);
            require "V(logic)" g1.Sym_arm.v (Term.const 0);
            require "OF(logic)" h1.Sym_x86.o_f (Term.const 0)
          | Flagconv.Canonical -> raise (Failed "canonical is not a producer convention"));
          true
        with Failed _ ->
          strength := saved;
          false
      in
      if try_conv Flagconv.Sub_like then F_writes Flagconv.Sub_like
      else if try_conv Flagconv.Add_like then F_writes Flagconv.Add_like
      else if try_conv Flagconv.Logic_like then F_writes Flagconv.Logic_like
      else raise (Failed "no flag convention verifies")
    end
  in
  { flags; carry_in; strength = !strength }

let check ~guest ~host =
  let attempts = [ None; Some `Direct; Some `Inverted ] in
  let rec go last_err = function
    | [] -> Error last_err
    | c :: rest -> (
      match check_under ~guest ~host c with
      | v -> Ok { v with carry_in = c }
      | exception Failed msg -> go msg rest
      | exception Sym_arm.Unsupported msg -> Error ("guest: " ^ msg)
      | exception Sym_x86.Unsupported msg -> Error ("host: " ^ msg))
  in
  go "no attempts" attempts
