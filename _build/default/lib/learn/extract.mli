(** Fragment extraction — the paper's learning-phase front half.

    Both compilers tag every instruction with its source line; this
    module pairs, per line, the guest and host instruction runs. A
    candidate fragment pair is kept only when both sides are
    straight-line computational code (no branches/labels — those lines
    carry the control-flow skeleton, which rules never cover). *)

type candidate = {
  line : int;
  source : string;  (** program name, for provenance *)
  guest : Repro_arm.Insn.t list;
  host : Repro_x86.Insn.t list;
}

val of_program : Repro_minic.Ast.program -> candidate list
(** Compile both ways and extract per-line candidates. *)

val pp_candidate : Format.formatter -> candidate -> unit
