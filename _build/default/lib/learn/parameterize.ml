open Repro_common
module A = Repro_arm.Insn
module X = Repro_x86.Insn
module Rule = Repro_rules.Rule
module Pinmap = Repro_rules.Pinmap
module Prng = Repro_common.Prng

exception Reject of string

let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

type env = {
  mutable reg_params : int list;  (* param index -> guest reg, reversed *)
  mutable imm_params : int list;  (* param index -> sample value, reversed *)
}

let reg_param env r =
  let rec find i = function
    | [] -> None
    | x :: _ when x = r -> Some i
    | _ :: tl -> find (i + 1) tl
  in
  let existing = List.rev env.reg_params in
  match find 0 existing with
  | Some i -> i
  | None ->
    env.reg_params <- r :: env.reg_params;
    List.length existing

let imm_param env v =
  let v = Word32.mask v in
  let rec find i = function
    | [] -> None
    | x :: _ when x = v -> Some i
    | _ :: tl -> find (i + 1) tl
  in
  let existing = List.rev env.imm_params in
  match find 0 existing with
  | Some i -> Rule.P_imm i
  | None ->
    env.imm_params <- v :: env.imm_params;
    Rule.P_imm (List.length existing)

let lookup_imm env v =
  let v = Word32.mask v in
  let rec find i = function
    | [] -> None
    | x :: _ when x = v -> Some i
    | _ :: tl -> find (i + 1) tl
  in
  find 0 (List.rev env.imm_params)

(* ---------- guest side ---------- *)

let gen_op2 env (op2 : A.operand2) : Rule.g_op2 =
  match op2 with
  | A.Imm { imm8; rot } -> Rule.G_imm (imm_param env (Word32.rotate_right imm8 (2 * rot)))
  | A.Reg_shift_imm { rm; kind = A.LSL; amount = 0 } -> Rule.G_reg (reg_param env rm)
  | A.Reg_shift_imm { rm; kind; amount } ->
    Rule.G_shift { rm = reg_param env rm; kind; amount = imm_param env amount }
  | A.Reg_shift_reg { rm; kind; rs } ->
    (* sound to pair with the host's cl-shift: both the model ISA and
       x86 reduce the amount mod 32 (DESIGN.md §7) *)
    Rule.G_shift_reg { rm = reg_param env rm; kind; rs = reg_param env rs }

let gen_guest env (i : A.t) : Rule.g_insn =
  match i.A.op with
  | A.Dp { op; s; rd; rn; op2 } ->
    let rn_p = match op with A.MOV | A.MVN -> -1 | _ -> reg_param env rn in
    let op2_p = gen_op2 env op2 in
    let rd_p = if A.dp_op_is_test op then max rn_p 0 else reg_param env rd in
    let rn_p = if rn_p = -1 then rd_p else rn_p in
    Rule.G_dp { ops = [ op ]; s; rd = rd_p; rn = rn_p; op2 = op2_p }
  | A.Mul { s; rd; rn; rm; acc } ->
    Rule.G_mul
      {
        s;
        rd = reg_param env rd;
        rn = reg_param env rn;
        rm = reg_param env rm;
        acc = Option.map (reg_param env) acc;
      }
  | A.Movw { rd; imm16 } -> Rule.G_movw { rd = reg_param env rd; imm = imm_param env imm16 }
  | A.Movt { rd; imm16 } -> Rule.G_movt { rd = reg_param env rd; imm = imm_param env imm16 }
  | _ -> reject "non-computational guest instruction"

(* ---------- host side ---------- *)

let guest_of_host =
  let t = Array.make 16 (-1) in
  List.iter
    (fun g -> match Pinmap.pin g with Some h -> t.(h) <- g | None -> ())
    Pinmap.pinned_guests;
  t

let scratch_index h =
  let rec find i =
    if i >= Array.length Pinmap.scratch then None
    else if Pinmap.scratch.(i) = h then Some i
    else find (i + 1)
  in
  find 0

let host_reg env h ~params_only =
  let g = guest_of_host.(h) in
  if g >= 0 then begin
    (* must already be a parameter (host may not touch unrelated
       pinned registers — verification guarantees this) *)
    let existing = List.rev env.reg_params in
    match List.find_index (fun x -> x = g) existing with
    | Some i -> Rule.H_param i
    | None -> reject "host touches pinned register outside the pattern"
  end
  else
    match scratch_index h with
    | Some k -> Rule.H_scratch k
    | None ->
      if params_only then reject "host uses non-scratch unpinned register %d" h
      else reject "host register %d unavailable" h

let host_imm env v =
  match lookup_imm env v with Some i -> Rule.H_imm (Rule.P_imm i) | None -> Rule.H_imm (Rule.Fixed (Word32.mask v))

let host_operand env (o : X.operand) =
  match o with
  | X.Reg r -> host_reg env r ~params_only:true
  | X.Imm v -> host_imm env v
  | X.Mem _ -> reject "host memory operand"

let imm_of_pimm env = function
  | (Rule.P_imm _ | Rule.P_imm_shl _) as p -> p
  | Rule.Fixed v -> (
    match lookup_imm env v with Some i -> Rule.P_imm i | None -> Rule.Fixed v)

let gen_host env (insns : X.t list) : Rule.h_insn list =
  (* Fuse "mov rcx, src; shift dst, cl" into H_shift_cl. *)
  let rec go acc = function
    | [] -> List.rev acc
    | X.Mov { width = X.W32; dst = X.Reg c; src }
      :: X.Shift { op; dst; amount = X.Sh_cl }
      :: tl
      when c = X.rcx ->
      go
        (Rule.H_shift_cl { op; dst = host_operand env dst; amount_src = host_operand env src }
        :: acc)
        tl
    | X.Mov { width = X.W32; dst; src } :: tl ->
      go (Rule.H_mov { dst = host_operand env dst; src = host_operand env src } :: acc) tl
    | X.Lea { dst; addr = { base = Some b; index = Some i; scale = 1; disp = 0; _ } } :: tl ->
      go
        (Rule.H_lea2
           {
             dst = host_reg env dst ~params_only:true;
             a = host_reg env b ~params_only:true;
             b = host_reg env i ~params_only:true;
           }
        :: acc)
        tl
    | X.Lea { dst; addr = { base = Some b; index = None; scale = 1; disp; _ } } :: tl ->
      go
        (Rule.H_lea_imm
           {
             dst = host_reg env dst ~params_only:true;
             a = host_reg env b ~params_only:true;
             imm = imm_of_pimm env (Rule.Fixed (Word32.mask disp));
           }
        :: acc)
        tl
    | X.Alu { op; dst; src } :: tl ->
      go
        (Rule.H_alu { op = `Fixed op; dst = host_operand env dst; src = host_operand env src }
        :: acc)
        tl
    | X.Shift { op; dst; amount = X.Sh_imm n } :: tl ->
      go
        (Rule.H_shift
           { op; dst = host_operand env dst; amount = imm_of_pimm env (Rule.Fixed n) }
        :: acc)
        tl
    | X.Neg o :: tl -> go (Rule.H_neg (host_operand env o) :: acc) tl
    | X.Not o :: tl -> go (Rule.H_not (host_operand env o) :: acc) tl
    | X.Imul { dst; src } :: tl ->
      go
        (Rule.H_imul { dst = host_reg env dst ~params_only:true; src = host_operand env src }
        :: acc)
        tl
    | i :: _ -> reject "unsupported host instruction %s" (X.to_string i)
  in
  go [] insns

(* ---------- re-validation of instantiations ---------- *)

let concretize_op2 ~imms (op2 : Rule.g_op2) : A.operand2 =
  match op2 with
  | Rule.G_imm pi -> (
    let v = match pi with Rule.P_imm i -> imms.(i) | Rule.Fixed v -> v | Rule.P_imm_shl _ -> assert false in
    match A.imm_operand v with
    | Some o -> o
    | None -> raise (Reject "unencodable immediate instantiation"))
  | Rule.G_reg p -> raise (Reject (Printf.sprintf "G_reg handled by caller %d" p))
  | Rule.G_shift _ -> raise (Reject "G_shift handled by caller")
  | Rule.G_shift_reg _ -> raise (Reject "G_shift_reg handled by caller")

let concretize_guest (pattern : Rule.g_insn list) ~regs ~imms =
  let imm v = match v with Rule.P_imm i -> imms.(i) | Rule.Fixed f -> f | Rule.P_imm_shl _ -> assert false in
  List.map
    (fun (g : Rule.g_insn) ->
      match g with
      | Rule.G_dp { ops; s; rd; rn; op2 } ->
        let op = List.hd ops in
        let op2 =
          match op2 with
          | Rule.G_imm pi -> concretize_op2 ~imms (Rule.G_imm pi)
          | Rule.G_reg p -> A.Reg_shift_imm { rm = regs.(p); kind = A.LSL; amount = 0 }
          | Rule.G_shift { rm; kind; amount } ->
            A.Reg_shift_imm { rm = regs.(rm); kind; amount = imm amount land 31 }
          | Rule.G_shift_reg { rm; kind; rs } ->
            A.Reg_shift_reg { rm = regs.(rm); kind; rs = regs.(rs) }
        in
        A.make
          (A.Dp
             {
               op;
               s = (if A.dp_op_is_test op then false else s);
               rd = (if A.dp_op_is_test op then 0 else regs.(rd));
               rn = regs.(rn);
               op2;
             })
      | Rule.G_mul { s; rd; rn; rm; acc } ->
        A.make
          (A.Mul
             { s; rd = regs.(rd); rn = regs.(rn); rm = regs.(rm);
               acc = Option.map (fun p -> regs.(p)) acc })
      | Rule.G_movw { rd; imm = i } -> A.make (A.Movw { rd = regs.(rd); imm16 = imm i land 0xFFFF })
      | Rule.G_movt { rd; imm = i } -> A.make (A.Movt { rd = regs.(rd); imm16 = imm i land 0xFFFF }))
    pattern

(* Validate one instantiation of the parameterized rule by re-running
   the verifier on concrete code from both sides. *)
let validate_instance (rule : Rule.t) ~regs ~imms =
  let guest = concretize_guest rule.Rule.guest ~regs ~imms in
  let binding = { Rule.regs; imms; matched = None } in
  (* install matched op for class rules (singleton here) *)
  (match rule.Rule.guest with
  | Rule.G_dp { ops = [ op ]; _ } :: _ -> binding.Rule.matched <- Some op
  | _ -> ());
  match
    Rule.instantiate rule binding ~pin_of_guest_reg:Pinmap.pin ~scratch:Pinmap.scratch
  with
  | None -> Error "unpinned instantiation"
  | Some host -> (
    match Verify.check ~guest ~host with
    | Ok v ->
      if v.Verify.carry_in = rule.Rule.carry_in then Ok ()
      else Error "carry-in mismatch under instantiation"
    | Error e -> Error e)

let pinned_pool = Array.of_list Pinmap.pinned_guests

let sample_imm prng (context : Rule.g_insn list) idx =
  (* choose values valid for every context the parameter appears in *)
  let shiftish = ref false in
  let movwish = ref false in
  List.iter
    (fun g ->
      match g with
      | Rule.G_dp { op2 = Rule.G_shift { amount = Rule.P_imm i; _ }; _ } when i = idx ->
        shiftish := true
      | Rule.G_movw { imm = Rule.P_imm i; _ } | Rule.G_movt { imm = Rule.P_imm i; _ }
        when i = idx -> movwish := true
      | _ -> ())
    context;
  if !shiftish then 1 + Prng.int prng 31
  else if !movwish then Prng.int prng 0x10000
  else Prng.int prng 256 (* always ARM-encodable *)

let generalize (cand : Extract.candidate) (v : Verify.verified) ~next_id =
  try
    let env = { reg_params = []; imm_params = [] } in
    let guest = List.map (gen_guest env) cand.Extract.guest in
    let host = gen_host env cand.Extract.host in
    let n_reg = List.length env.reg_params in
    let n_imm = List.length env.imm_params in
    let flags =
      match v.Verify.flags with
      | Verify.F_none { host_clobbers } ->
        { Rule.guest_writes = false; host_clobbers; convention = None }
      | Verify.F_writes conv ->
        { Rule.guest_writes = true; host_clobbers = true; convention = Some conv }
    in
    let base_rule =
      {
        Rule.id = next_id ();
        name = Printf.sprintf "%s:%d" cand.Extract.source cand.Extract.line;
        guest;
        host;
        n_reg_params = n_reg;
        n_imm_params = n_imm;
        flags;
        carry_in = v.Verify.carry_in;
        require_distinct = [];
        source = `Learned (Printf.sprintf "%s:%d" cand.Extract.source cand.Extract.line);
      }
    in
    (* Freeze every immediate parameter to its sample value (used when
       generalized immediates fail re-validation, e.g. rsb #0 → neg). *)
    let freeze_imms (r : Rule.t) samples =
      let fr = function
        | Rule.P_imm i -> Rule.Fixed samples.(i)
        | Rule.P_imm_shl (i, k) -> Rule.Fixed (Word32.shift_left samples.(i) k)
        | Rule.Fixed v -> Rule.Fixed v
      in
      let fr_gop2 = function
        | Rule.G_imm pi -> Rule.G_imm (fr pi)
        | Rule.G_reg p -> Rule.G_reg p
        | Rule.G_shift { rm; kind; amount } -> Rule.G_shift { rm; kind; amount = fr amount }
        | Rule.G_shift_reg _ as g -> g
      in
      let fr_g = function
        | Rule.G_dp { ops; s; rd; rn; op2 } -> Rule.G_dp { ops; s; rd; rn; op2 = fr_gop2 op2 }
        | Rule.G_mul _ as g -> g
        | Rule.G_movw { rd; imm } -> Rule.G_movw { rd; imm = fr imm }
        | Rule.G_movt { rd; imm } -> Rule.G_movt { rd; imm = fr imm }
      in
      let fr_hop = function
        | Rule.H_imm pi -> Rule.H_imm (fr pi)
        | o -> o
      in
      let fr_h = function
        | Rule.H_mov { dst; src } -> Rule.H_mov { dst = fr_hop dst; src = fr_hop src }
        | Rule.H_lea2 _ as h -> h
        | Rule.H_lea_imm { dst; a; imm } -> Rule.H_lea_imm { dst; a; imm = fr imm }
        | Rule.H_alu { op; dst; src } -> Rule.H_alu { op; dst = fr_hop dst; src = fr_hop src }
        | Rule.H_shift { op; dst; amount } -> Rule.H_shift { op; dst = fr_hop dst; amount = fr amount }
        | Rule.H_shift_cl { op; dst; amount_src } ->
          Rule.H_shift_cl { op; dst = fr_hop dst; amount_src = fr_hop amount_src }
        | Rule.H_not o -> Rule.H_not (fr_hop o)
        | Rule.H_neg o -> Rule.H_neg (fr_hop o)
        | Rule.H_imul { dst; src } -> Rule.H_imul { dst = fr_hop dst; src = fr_hop src }
      in
      {
        r with
        Rule.guest = List.map fr_g r.Rule.guest;
        host = List.map fr_h r.Rule.host;
        n_imm_params = 0;
      }
    in
    let prng = Prng.of_string base_rule.Rule.name in
    let fresh_regs () =
      (* distinct register assignment *)
      let pool = Array.copy pinned_pool in
      let n = Array.length pool in
      for i = n - 1 downto 1 do
        let j = Prng.int prng (i + 1) in
        let t = pool.(i) in
        pool.(i) <- pool.(j);
        pool.(j) <- t
      done;
      Array.init (max n_reg 1) (fun i -> pool.(i mod n))
    in
    let fresh_imms () = Array.init (max n_imm 1) (fun i -> sample_imm prng guest i) in
    (* distinct-instance validation (3 samples); if generalized
       immediates don't re-validate, fall back to a rule with the
       immediates frozen to the training values. *)
    let original_imms =
      Array.of_list (List.rev env.imm_params)
    in
    let base_rule =
      let ok = ref true in
      (try
         for _ = 1 to 3 do
           match validate_instance base_rule ~regs:(fresh_regs ()) ~imms:(fresh_imms ()) with
           | Ok () -> ()
           | Error _ ->
             ok := false;
             raise Exit
         done
       with Exit -> ());
      if !ok then base_rule
      else begin
        let frozen = freeze_imms base_rule original_imms in
        (match
           validate_instance frozen ~regs:(fresh_regs ())
             ~imms:(Array.make 1 0)
         with
        | Ok () -> ()
        | Error e -> reject "re-validation failed even with frozen immediates: %s" e);
        frozen
      end
    in
    (* alias pairs: find constraints *)
    let imms_for_rule () =
      if base_rule.Rule.n_imm_params = 0 then Array.make 1 0 else fresh_imms ()
    in
    let distinct = ref [] in
    for p = 0 to n_reg - 1 do
      for q = p + 1 to n_reg - 1 do
        let regs = fresh_regs () in
        regs.(q) <- regs.(p);
        match validate_instance base_rule ~regs ~imms:(imms_for_rule ()) with
        | Ok () -> ()
        | Error _ -> distinct := (p, q) :: !distinct
      done
    done;
    Ok { base_rule with Rule.require_distinct = !distinct }
  with Reject msg -> Error msg
