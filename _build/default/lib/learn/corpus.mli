(** The training corpus: mini-C programs whose twin compilations feed
    the rule learner. Coverage-oriented — arithmetic/logical/shift
    combinations, multiplies, negation, every comparison operator,
    large constants, aliased destinations — mirroring the paper's use
    of many small training sources. *)

val programs : Repro_minic.Ast.program list

val runnable : Repro_minic.Ast.program list
(** The subset meaningful to execute end-to-end (used by tests: each
    is compiled, run under every engine and compared with the
    reference interpreter). All [programs] are runnable here. *)
