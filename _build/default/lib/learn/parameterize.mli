(** Rule parameterization (the MICRO'20 "more with less" step):
    abstract the concrete registers and immediates of a verified
    fragment pair into indexed parameters, then re-validate the
    parameterized rule on fresh instantiations (including aliased
    register assignments, which discovers the anti-aliasing
    constraints recorded in [require_distinct]). *)

val generalize :
  Extract.candidate -> Verify.verified -> next_id:(unit -> int) ->
  (Repro_rules.Rule.t, string) result

val concretize_guest :
  Repro_rules.Rule.g_insn list -> regs:int array -> imms:int array ->
  Repro_arm.Insn.t list
(** Instantiate a guest pattern with concrete registers/immediates
    (validation aid; exposed for tests). *)
