lib/learn/parameterize.ml: Array Extract List Option Printf Repro_arm Repro_common Repro_rules Repro_x86 Verify Word32
