lib/learn/parameterize.mli: Extract Repro_arm Repro_rules Verify
