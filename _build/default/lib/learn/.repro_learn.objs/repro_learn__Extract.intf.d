lib/learn/extract.mli: Format Repro_arm Repro_minic Repro_x86
