lib/learn/verify.ml: Array List Printf Repro_arm Repro_rules Repro_symexec Repro_x86
