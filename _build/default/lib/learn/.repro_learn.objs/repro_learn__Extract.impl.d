lib/learn/extract.ml: Format Hashtbl List Repro_arm Repro_minic Repro_x86
