lib/learn/learn.ml: Corpus Extract Format Hashtbl List Parameterize Printf Repro_arm Repro_minic Repro_rules Verify
