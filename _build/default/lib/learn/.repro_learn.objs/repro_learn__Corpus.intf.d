lib/learn/corpus.mli: Repro_minic
