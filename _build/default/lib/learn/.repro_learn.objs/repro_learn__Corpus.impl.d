lib/learn/corpus.ml: List Repro_minic
