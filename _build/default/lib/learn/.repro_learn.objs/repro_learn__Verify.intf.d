lib/learn/verify.mli: Repro_arm Repro_rules Repro_symexec Repro_x86
