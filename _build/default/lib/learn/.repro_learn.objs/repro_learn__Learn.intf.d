lib/learn/learn.mli: Extract Format Repro_minic Repro_rules
