lib/x86/insn.mli: Format
