lib/x86/prog.ml: Array Format Hashtbl Insn List
