lib/x86/stats.mli: Format Insn
