lib/x86/stats.ml: Array Format Insn List
