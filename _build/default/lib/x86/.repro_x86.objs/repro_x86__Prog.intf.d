lib/x86/prog.mli: Format Hashtbl Insn
