lib/x86/exec.mli: Bytes Insn Prog Repro_common Stats Word32
