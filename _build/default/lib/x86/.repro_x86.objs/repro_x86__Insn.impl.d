lib/x86/insn.ml: Format Printf String
