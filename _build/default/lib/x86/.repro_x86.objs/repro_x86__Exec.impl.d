lib/x86/exec.ml: Array Bytes Char Hashtbl Insn Printf Prog Repro_common Stats Word32
