(** An indexed collection of translation rules with longest-match
    lookup, keyed by the shape of a pattern's first instruction. *)

module A := Repro_arm.Insn

type t

val create : unit -> t
val add : t -> Rule.t -> unit
val of_list : Rule.t list -> t
val size : t -> int
val rules : t -> Rule.t list

val match_at : t -> A.t list -> (Rule.t * Rule.binding) option
(** Find the rule whose guest pattern matches the longest prefix of
    the (condition-stripped) instruction list; ties break toward the
    earliest-added rule. The caller is responsible for condition
    handling and for checking the instructions share a condition when
    a multi-instruction rule matches. *)

val coverage : t -> A.t list -> int
(** Static count of instructions in the list matched by some rule
    (diagnostics for the coverage experiments). *)
