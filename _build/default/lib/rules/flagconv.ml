module X = Repro_x86.Insn
module Cond = Repro_arm.Cond

type t = Add_like | Sub_like | Logic_like | Canonical

type cond_eval = Cc of X.cc | Always | Never | Needs_materialize

(* Shared N/Z/V-only mappings (identical under every convention since
   SF/ZF/OF always mirror N/Z/V). *)
let common (c : Cond.t) =
  match c with
  | Cond.AL -> Some Always
  | Cond.EQ -> Some (Cc X.E)
  | Cond.NE -> Some (Cc X.NE)
  | Cond.MI -> Some (Cc X.S)
  | Cond.PL -> Some (Cc X.NS)
  | Cond.VS -> Some (Cc X.O)
  | Cond.VC -> Some (Cc X.NO)
  | Cond.GE -> Some (Cc X.GE)
  | Cond.LT -> Some (Cc X.L)
  | Cond.GT -> Some (Cc X.G)
  | Cond.LE -> Some (Cc X.LE)
  | Cond.CS | Cond.CC | Cond.HI | Cond.LS -> None

let eval conv (c : Cond.t) =
  match common c with
  | Some e -> e
  | None -> (
    match conv with
    | Sub_like | Canonical -> (
      (* CF = ¬C: x86's unsigned conditions line up directly. *)
      match c with
      | Cond.CS -> Cc X.AE
      | Cond.CC -> Cc X.B
      | Cond.HI -> Cc X.A
      | Cond.LS -> Cc X.BE
      | _ -> assert false)
    | Add_like -> (
      (* CF = C: CS/CC map, but HI/LS mix CF and ZF the "wrong" way. *)
      match c with
      | Cond.CS -> Cc X.B
      | Cond.CC -> Cc X.AE
      | Cond.HI | Cond.LS -> Needs_materialize
      | _ -> assert false)
    | Logic_like -> (
      (* C = 0 (and CF = 0): carry conditions are constants. *)
      match c with
      | Cond.CS -> Never
      | Cond.CC -> Always
      | Cond.HI -> Never
      | Cond.LS -> Always
      | _ -> assert false))

let carry_inverted = function
  | Sub_like | Canonical -> true
  | Add_like | Logic_like -> false

let name = function
  | Add_like -> "add"
  | Sub_like -> "sub"
  | Logic_like -> "logic"
  | Canonical -> "canonical"

let pp ppf t = Format.pp_print_string ppf (name t)
