(** Parameterized translation rules — the learned artifact at the
    heart of the paper's approach.

    A rule pairs a {e guest pattern} (one or more parameterized ARM
    instructions) with a {e host template} (parameterized x86
    instructions). Parameterization (the MICRO'20 technique the paper
    builds on) abstracts registers and immediates into indexed
    parameters and lumps same-shape ALU opcodes into one opcode-class
    rule, so a small training set yields high dynamic coverage.

    Guest register parameters instantiate to the fixed host registers
    of the rule engine's pin map; a rule only applies when every
    matched guest register is pinned (unpinned registers fall back to
    QEMU, one source of the paper's <100% coverage). Conditions are
    {e not} part of patterns: the rule engine guards conditional
    instructions itself using {!Flagconv}. *)

module A := Repro_arm.Insn
module X := Repro_x86.Insn

type preg = int
(** Register parameter index. *)

type pimm =
  | P_imm of int  (** immediate parameter index *)
  | P_imm_shl of int * int
      (** template-only: parameter [i] shifted left by [k] (e.g. the
          movt template ORs [imm16 lsl 16]) *)
  | Fixed of int  (** concrete immediate required by the pattern *)

type g_op2 =
  | G_imm of pimm
  | G_reg of preg
  | G_shift of { rm : preg; kind : A.shift_kind; amount : pimm }
  | G_shift_reg of { rm : preg; kind : A.shift_kind; rs : preg }
      (** register-specified shift ([mov rd, rm lsl rs]); sound because
          both the model ISA and x86 [cl] shifts reduce the amount
          mod 32 (DESIGN.md §7) *)

(** One parameterized guest instruction. [G_dp.ops] with more than one
    element is an opcode-class pattern; the host template refers to
    the corresponding host opcode via [`Matched]. For test ops
    (tst/teq/cmp/cmn) the [rd] field is ignored. *)
type g_insn =
  | G_dp of { ops : A.dp_op list; s : bool; rd : preg; rn : preg; op2 : g_op2 }
  | G_mul of { s : bool; rd : preg; rn : preg; rm : preg; acc : preg option }
  | G_movw of { rd : preg; imm : pimm }
  | G_movt of { rd : preg; imm : pimm }

val host_alu_of_dp : A.dp_op -> X.alu_op option
(** Structurally corresponding host opcode (ADD→add, ORR→or, ADC→adc,
    SBC→sbb, TST→test, CMP→cmp, …); [None] when there is none. *)

val conv_of_dp : A.dp_op -> Flagconv.t
(** Flag convention left in EFLAGS by the corresponding host opcode. *)

(** Parameterized host operands/instructions. [H_param i] is the
    pinned host register of guest-register parameter [i]; [H_scratch
    k] one of the rule engine's scratch registers. *)
type h_operand = H_param of int | H_scratch of int | H_imm of pimm

type h_insn =
  | H_mov of { dst : h_operand; src : h_operand }
  | H_lea2 of { dst : h_operand; a : h_operand; b : h_operand }
      (** flag-preserving [dst := a + b] *)
  | H_lea_imm of { dst : h_operand; a : h_operand; imm : pimm }
  | H_alu of { op : [ `Fixed of X.alu_op | `Matched ]; dst : h_operand; src : h_operand }
  | H_shift of { op : X.shift_op; dst : h_operand; amount : pimm }
  | H_shift_cl of { op : X.shift_op; dst : h_operand; amount_src : h_operand }
  | H_not of h_operand
  | H_neg of h_operand
  | H_imul of { dst : h_operand; src : h_operand }

type flag_effect = {
  guest_writes : bool;  (** the pattern defines guest NZCV *)
  host_clobbers : bool; (** the template destroys EFLAGS *)
  convention : Flagconv.t option;
      (** how guest conditions read from EFLAGS after the template;
          [None] on opcode-class rules (derived from the matched op
          via {!conv_of_dp}) and on rules that don't define flags *)
}

type t = {
  id : int;
  name : string;
  guest : g_insn list;
  host : h_insn list;
  n_reg_params : int;
  n_imm_params : int;
  flags : flag_effect;
  carry_in : [ `Direct | `Inverted ] option;
      (** adc-style templates need CF = C ([`Direct]); sbb-style need
          CF = ¬C ([`Inverted]). *)
  require_distinct : (preg * preg) list;
      (** register parameters that must bind to different registers
          (anti-aliasing constraints discovered during verification) *)
  source : [ `Builtin | `Learned of string ];
}

(** {2 Matching and instantiation} *)

type binding = {
  regs : int array;
  imms : int array;  (** [-1] = unbound *)
  mutable matched : A.dp_op option;  (** concrete op of an opcode-class match *)
}

val empty_binding : t -> binding

val match_insn : g_insn -> A.op -> binding -> bool
(** Extend [binding] by matching one guest operation (condition
    excluded) against one pattern element; mutates on success. *)

val match_sequence : t -> A.t list -> binding option
(** Match the whole guest pattern against a prefix of the list;
    enforces [require_distinct]. *)

val instantiate :
  t -> binding -> pin_of_guest_reg:(int -> X.reg option) -> scratch:X.reg array ->
  X.t list option
(** Concrete host instructions, or [None] if some bound register is
    unpinned. *)

val convention_after : t -> binding -> Flagconv.t option
val guest_pattern_length : t -> int
val pp : Format.formatter -> t -> unit
