(** Textual persistence of rule sets.

    Rules serialize to a small s-expression dialect, so a learned set
    can be produced once ([repro-rulegen -o rules.sexp]) and loaded by
    the translator CLI without re-running the pipeline — mirroring how
    the paper consumes a rule set learned by earlier work. The format
    round-trips every field of {!Rule.t}. *)

val rule_to_string : Rule.t -> string
val rule_of_string : string -> (Rule.t, string) result

val save : Ruleset.t -> string
(** One rule per s-expression, newline separated, with a header
    comment line. *)

val load : string -> (Ruleset.t, string) result
(** Parse the output of {!save}; fails on the first malformed rule. *)

val save_file : Ruleset.t -> string -> unit
val load_file : string -> (Ruleset.t, string) result
