lib/rules/rule.mli: Flagconv Format Repro_arm Repro_x86
