lib/rules/builtin.mli: Rule Ruleset
