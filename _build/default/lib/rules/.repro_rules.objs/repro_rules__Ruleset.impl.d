lib/rules/ruleset.ml: Array Hashtbl List Repro_arm Rule
