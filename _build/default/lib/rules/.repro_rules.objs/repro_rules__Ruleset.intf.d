lib/rules/ruleset.mli: Repro_arm Rule
