lib/rules/flagconv.mli: Format Repro_arm Repro_x86
