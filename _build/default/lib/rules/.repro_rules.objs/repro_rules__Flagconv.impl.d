lib/rules/flagconv.ml: Format Repro_arm Repro_x86
