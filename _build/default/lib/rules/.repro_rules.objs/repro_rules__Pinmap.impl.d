lib/rules/pinmap.ml: Array List Repro_x86
