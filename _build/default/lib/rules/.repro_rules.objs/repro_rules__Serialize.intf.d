lib/rules/serialize.mli: Rule Ruleset
