lib/rules/serialize.ml: Buffer Flagconv List Printf Repro_arm Repro_x86 Rule Ruleset String
