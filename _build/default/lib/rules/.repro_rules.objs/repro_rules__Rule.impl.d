lib/rules/rule.ml: Array Flagconv Format List Printf Repro_arm Repro_common Repro_x86 String Word32
