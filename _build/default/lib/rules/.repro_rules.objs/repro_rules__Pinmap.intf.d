lib/rules/pinmap.mli: Repro_x86
