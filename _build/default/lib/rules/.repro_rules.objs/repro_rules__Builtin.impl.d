lib/rules/builtin.ml: Flagconv Repro_arm Repro_x86 Rule Ruleset
