(** The rule engine's fixed guest→host register map.

    Guest r0–r8, sp and lr live permanently in host registers while
    rule-translated code runs (the learned-rule discipline that avoids
    QEMU's per-access env traffic); r9–r12 and pc stay in env, so
    instructions touching them fall back to QEMU — one source of the
    paper's <100% rule coverage. rax/rdx/rcx are template scratch,
    rbp is the env base. *)

val pin : int -> Repro_x86.Insn.reg option
(** Host register of a guest register; [None] when unpinned. *)

val pinned_mask : int
(** Bitmask over guest register numbers. *)

val is_pinned : int -> bool
val pinned_guests : int list
val scratch : Repro_x86.Insn.reg array
(** [|rax; rdx; rcx|] — instantiation scratch registers. *)
