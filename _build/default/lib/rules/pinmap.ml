module X = Repro_x86.Insn

let table =
  [|
    Some X.rbx; (* r0 *)
    Some X.rsi; (* r1 *)
    Some X.rdi; (* r2 *)
    Some X.r8;  (* r3 *)
    Some X.r9;  (* r4 *)
    Some X.r10; (* r5 *)
    Some X.r11; (* r6 *)
    Some X.r12; (* r7 *)
    Some X.r13; (* r8 *)
    None;       (* r9 *)
    None;       (* r10 *)
    None;       (* r11 *)
    None;       (* r12 *)
    Some X.r14; (* sp *)
    Some X.r15; (* lr *)
    None;       (* pc *)
  |]

let pin r = if r >= 0 && r < 16 then table.(r) else None

let pinned_mask =
  let m = ref 0 in
  Array.iteri (fun i h -> if h <> None then m := !m lor (1 lsl i)) table;
  !m

let is_pinned r = pin r <> None

let pinned_guests =
  List.filter is_pinned [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]

let scratch = [| X.rax; X.rdx; X.rcx |]
