(** A hand-written core rule set.

    Used by the rule-engine unit tests (controlled coverage) and as
    the reference the learned set is compared against. Experiments use
    the learned set; see {!Learn}. *)

val all : unit -> Rule.t list
val ruleset : unit -> Ruleset.t
