(** Flag conventions: how guest (ARM) condition state is encoded in
    host EFLAGS at a given emission point.

    After a host [subl]/[cmpl], CF is the borrow — the {e negation} of
    ARM's C; after [addl], CF {e is} ARM's C; after a host logical op,
    CF = OF = 0, which (under the model's host-aligned logical-flags
    semantics) equals the guest state exactly. The rule engine tracks
    the active convention and maps each ARM condition to a host [cc],
    falling back to materializing the canonical form when no single
    host condition exists (e.g. HI after an add). [Canonical] is the
    convention installed by a Sync-restore: SF=N, ZF=Z, OF=V and
    CF=¬C, chosen because it makes all 14 conditions expressible. *)

type t = Add_like | Sub_like | Logic_like | Canonical

type cond_eval =
  | Cc of Repro_x86.Insn.cc
  | Always
  | Never
  | Needs_materialize
      (** no single host cc exists under this convention; re-install
          {!Canonical} first *)

val eval : t -> Repro_arm.Cond.t -> cond_eval

val carry_inverted : t -> bool
(** CF = ¬C under this convention (true for [Sub_like]/[Canonical]). *)

val name : t -> string
val pp : Format.formatter -> t -> unit
