module A = Repro_arm.Insn
module X = Repro_x86.Insn

(* ---------- a minimal s-expression reader/writer ---------- *)

type sexp = Atom of string | List of sexp list

let rec pp_sexp buf = function
  | Atom s ->
    if String.contains s ' ' || String.contains s '(' || s = "" then begin
      Buffer.add_char buf '"';
      Buffer.add_string buf (String.escaped s);
      Buffer.add_char buf '"'
    end
    else Buffer.add_string buf s
  | List items ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ' ';
        pp_sexp buf item)
      items;
    Buffer.add_char buf ')'

let sexp_to_string s =
  let buf = Buffer.create 256 in
  pp_sexp buf s;
  Buffer.contents buf

exception Parse of string

let parse_sexp (src : string) : sexp =
  let n = String.length src in
  let pos = ref 0 in
  let rec skip_ws () =
    if !pos < n && (src.[!pos] = ' ' || src.[!pos] = '\n' || src.[!pos] = '\t') then begin
      incr pos;
      skip_ws ()
    end
  in
  let rec parse () =
    skip_ws ();
    if !pos >= n then raise (Parse "unexpected end of input")
    else if src.[!pos] = '(' then begin
      incr pos;
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        if !pos >= n then raise (Parse "unterminated list")
        else if src.[!pos] = ')' then incr pos
        else begin
          items := parse () :: !items;
          loop ()
        end
      in
      loop ();
      List (List.rev !items)
    end
    else if src.[!pos] = '"' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then raise (Parse "unterminated string")
        else if src.[!pos] = '\\' && !pos + 1 < n then begin
          Buffer.add_char buf src.[!pos + 1];
          pos := !pos + 2;
          loop ()
        end
        else if src.[!pos] = '"' then incr pos
        else begin
          Buffer.add_char buf src.[!pos];
          incr pos;
          loop ()
        end
      in
      loop ();
      Atom (Buffer.contents buf)
    end
    else begin
      let start = !pos in
      while
        !pos < n
        && src.[!pos] <> ' ' && src.[!pos] <> ')' && src.[!pos] <> '(' && src.[!pos] <> '\n'
        && src.[!pos] <> '\t'
      do
        incr pos
      done;
      Atom (String.sub src start (!pos - start))
    end
  in
  let result = parse () in
  skip_ws ();
  result

(* ---------- writers ---------- *)

let int_atom i = Atom (string_of_int i)
let bool_atom b = Atom (if b then "true" else "false")

let pimm_sexp = function
  | Rule.P_imm i -> List [ Atom "p"; int_atom i ]
  | Rule.P_imm_shl (i, k) -> List [ Atom "pshl"; int_atom i; int_atom k ]
  | Rule.Fixed v -> List [ Atom "fix"; int_atom v ]

let shift_atom k = Atom (A.shift_kind_to_string k)

let gop2_sexp = function
  | Rule.G_imm pi -> List [ Atom "imm"; pimm_sexp pi ]
  | Rule.G_reg p -> List [ Atom "reg"; int_atom p ]
  | Rule.G_shift { rm; kind; amount } ->
    List [ Atom "shift"; int_atom rm; shift_atom kind; pimm_sexp amount ]
  | Rule.G_shift_reg { rm; kind; rs } ->
    List [ Atom "shiftreg"; int_atom rm; shift_atom kind; int_atom rs ]

let ginsn_sexp = function
  | Rule.G_dp { ops; s; rd; rn; op2 } ->
    List
      [
        Atom "dp";
        List (List.map (fun o -> Atom (A.dp_op_to_string o)) ops);
        bool_atom s;
        int_atom rd;
        int_atom rn;
        gop2_sexp op2;
      ]
  | Rule.G_mul { s; rd; rn; rm; acc } ->
    List
      ([ Atom "mul"; bool_atom s; int_atom rd; int_atom rn; int_atom rm ]
      @ match acc with Some a -> [ int_atom a ] | None -> [])
  | Rule.G_movw { rd; imm } -> List [ Atom "movw"; int_atom rd; pimm_sexp imm ]
  | Rule.G_movt { rd; imm } -> List [ Atom "movt"; int_atom rd; pimm_sexp imm ]

let hop_sexp = function
  | Rule.H_param i -> List [ Atom "param"; int_atom i ]
  | Rule.H_scratch k -> List [ Atom "scratch"; int_atom k ]
  | Rule.H_imm pi -> List [ Atom "imm"; pimm_sexp pi ]

let alu_atom (o : X.alu_op) =
  Atom
    (match o with
    | X.Add -> "add"
    | X.Adc -> "adc"
    | X.Sub -> "sub"
    | X.Sbb -> "sbb"
    | X.And -> "and"
    | X.Or -> "or"
    | X.Xor -> "xor"
    | X.Cmp -> "cmp"
    | X.Test -> "test")

let shiftop_atom (o : X.shift_op) =
  Atom (match o with X.Shl -> "shl" | X.Shr -> "shr" | X.Sar -> "sar" | X.Ror -> "ror")

let hinsn_sexp = function
  | Rule.H_mov { dst; src } -> List [ Atom "mov"; hop_sexp dst; hop_sexp src ]
  | Rule.H_lea2 { dst; a; b } -> List [ Atom "lea2"; hop_sexp dst; hop_sexp a; hop_sexp b ]
  | Rule.H_lea_imm { dst; a; imm } ->
    List [ Atom "leai"; hop_sexp dst; hop_sexp a; pimm_sexp imm ]
  | Rule.H_alu { op = `Matched; dst; src } ->
    List [ Atom "alu"; Atom "matched"; hop_sexp dst; hop_sexp src ]
  | Rule.H_alu { op = `Fixed o; dst; src } ->
    List [ Atom "alu"; alu_atom o; hop_sexp dst; hop_sexp src ]
  | Rule.H_shift { op; dst; amount } ->
    List [ Atom "shift"; shiftop_atom op; hop_sexp dst; pimm_sexp amount ]
  | Rule.H_shift_cl { op; dst; amount_src } ->
    List [ Atom "shiftcl"; shiftop_atom op; hop_sexp dst; hop_sexp amount_src ]
  | Rule.H_not o -> List [ Atom "not"; hop_sexp o ]
  | Rule.H_neg o -> List [ Atom "neg"; hop_sexp o ]
  | Rule.H_imul { dst; src } -> List [ Atom "imul"; hop_sexp dst; hop_sexp src ]

let conv_atom (c : Flagconv.t) = Atom (Flagconv.name c)

let rule_sexp (r : Rule.t) =
  List
    [
      Atom "rule";
      List [ Atom "id"; int_atom r.Rule.id ];
      List [ Atom "name"; Atom r.Rule.name ];
      List
        [
          Atom "source";
          (match r.Rule.source with
          | `Builtin -> Atom "builtin"
          | `Learned s -> List [ Atom "learned"; Atom s ]);
        ];
      List (Atom "guest" :: List.map ginsn_sexp r.Rule.guest);
      List (Atom "host" :: List.map hinsn_sexp r.Rule.host);
      List [ Atom "regs"; int_atom r.Rule.n_reg_params ];
      List [ Atom "imms"; int_atom r.Rule.n_imm_params ];
      List
        [
          Atom "flags";
          bool_atom r.Rule.flags.Rule.guest_writes;
          bool_atom r.Rule.flags.Rule.host_clobbers;
          (match r.Rule.flags.Rule.convention with
          | None -> Atom "none"
          | Some c -> conv_atom c);
        ];
      List
        [
          Atom "carry";
          (match r.Rule.carry_in with
          | None -> Atom "none"
          | Some `Direct -> Atom "direct"
          | Some `Inverted -> Atom "inverted");
        ];
      List
        (Atom "distinct"
        :: List.map (fun (p, q) -> List [ int_atom p; int_atom q ]) r.Rule.require_distinct
        );
    ]

let rule_to_string r = sexp_to_string (rule_sexp r)

(* ---------- readers ---------- *)

let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

let as_int = function Atom s -> int_of_string s | List _ -> fail "expected int"
let as_bool = function
  | Atom "true" -> true
  | Atom "false" -> false
  | _ -> fail "expected bool"

let dp_of_name s =
  let rec find = function
    | [] -> fail "unknown dp op %s" s
    | o :: tl -> if A.dp_op_to_string o = s then o else find tl
  in
  find
    A.[ AND; EOR; SUB; RSB; ADD; ADC; SBC; RSC; TST; TEQ; CMP; CMN; ORR; MOV; BIC; MVN ]

let shift_of_name = function
  | "lsl" -> A.LSL
  | "lsr" -> A.LSR
  | "asr" -> A.ASR
  | "ror" -> A.ROR
  | s -> fail "unknown shift %s" s

let pimm_of = function
  | List [ Atom "p"; i ] -> Rule.P_imm (as_int i)
  | List [ Atom "pshl"; i; k ] -> Rule.P_imm_shl (as_int i, as_int k)
  | List [ Atom "fix"; v ] -> Rule.Fixed (as_int v)
  | _ -> fail "bad immediate"

let gop2_of = function
  | List [ Atom "imm"; pi ] -> Rule.G_imm (pimm_of pi)
  | List [ Atom "reg"; p ] -> Rule.G_reg (as_int p)
  | List [ Atom "shift"; rm; Atom k; amount ] ->
    Rule.G_shift { rm = as_int rm; kind = shift_of_name k; amount = pimm_of amount }
  | List [ Atom "shiftreg"; rm; Atom k; rs ] ->
    Rule.G_shift_reg { rm = as_int rm; kind = shift_of_name k; rs = as_int rs }
  | _ -> fail "bad guest operand2"

let ginsn_of = function
  | List [ Atom "dp"; List ops; s; rd; rn; op2 ] ->
    Rule.G_dp
      {
        ops = List.map (function Atom o -> dp_of_name o | _ -> fail "bad op") ops;
        s = as_bool s;
        rd = as_int rd;
        rn = as_int rn;
        op2 = gop2_of op2;
      }
  | List (Atom "mul" :: s :: rd :: rn :: rm :: rest) ->
    Rule.G_mul
      {
        s = as_bool s;
        rd = as_int rd;
        rn = as_int rn;
        rm = as_int rm;
        acc = (match rest with [ a ] -> Some (as_int a) | _ -> None);
      }
  | List [ Atom "movw"; rd; imm ] -> Rule.G_movw { rd = as_int rd; imm = pimm_of imm }
  | List [ Atom "movt"; rd; imm ] -> Rule.G_movt { rd = as_int rd; imm = pimm_of imm }
  | _ -> fail "bad guest instruction"

let hop_of = function
  | List [ Atom "param"; i ] -> Rule.H_param (as_int i)
  | List [ Atom "scratch"; k ] -> Rule.H_scratch (as_int k)
  | List [ Atom "imm"; pi ] -> Rule.H_imm (pimm_of pi)
  | _ -> fail "bad host operand"

let alu_of_name = function
  | "add" -> X.Add
  | "adc" -> X.Adc
  | "sub" -> X.Sub
  | "sbb" -> X.Sbb
  | "and" -> X.And
  | "or" -> X.Or
  | "xor" -> X.Xor
  | "cmp" -> X.Cmp
  | "test" -> X.Test
  | s -> fail "unknown alu op %s" s

let shiftop_of_name = function
  | "shl" -> X.Shl
  | "shr" -> X.Shr
  | "sar" -> X.Sar
  | "ror" -> X.Ror
  | s -> fail "unknown shift op %s" s

let hinsn_of = function
  | List [ Atom "mov"; dst; src ] -> Rule.H_mov { dst = hop_of dst; src = hop_of src }
  | List [ Atom "lea2"; dst; a; b ] ->
    Rule.H_lea2 { dst = hop_of dst; a = hop_of a; b = hop_of b }
  | List [ Atom "leai"; dst; a; imm ] ->
    Rule.H_lea_imm { dst = hop_of dst; a = hop_of a; imm = pimm_of imm }
  | List [ Atom "alu"; Atom "matched"; dst; src ] ->
    Rule.H_alu { op = `Matched; dst = hop_of dst; src = hop_of src }
  | List [ Atom "alu"; Atom o; dst; src ] ->
    Rule.H_alu { op = `Fixed (alu_of_name o); dst = hop_of dst; src = hop_of src }
  | List [ Atom "shift"; Atom o; dst; amount ] ->
    Rule.H_shift { op = shiftop_of_name o; dst = hop_of dst; amount = pimm_of amount }
  | List [ Atom "shiftcl"; Atom o; dst; src ] ->
    Rule.H_shift_cl { op = shiftop_of_name o; dst = hop_of dst; amount_src = hop_of src }
  | List [ Atom "not"; o ] -> Rule.H_not (hop_of o)
  | List [ Atom "neg"; o ] -> Rule.H_neg (hop_of o)
  | List [ Atom "imul"; dst; src ] -> Rule.H_imul { dst = hop_of dst; src = hop_of src }
  | _ -> fail "bad host instruction"

let conv_of_name = function
  | "add" -> Flagconv.Add_like
  | "sub" -> Flagconv.Sub_like
  | "logic" -> Flagconv.Logic_like
  | "canonical" -> Flagconv.Canonical
  | s -> fail "unknown convention %s" s

let field name fields =
  match
    List.find_opt
      (function List (Atom n :: _) -> n = name | _ -> false)
      fields
  with
  | Some (List (_ :: rest)) -> rest
  | _ -> fail "missing field %s" name

let rule_of_sexp = function
  | List (Atom "rule" :: fields) ->
    let id = match field "id" fields with [ i ] -> as_int i | _ -> fail "id" in
    let name =
      match field "name" fields with [ Atom s ] -> s | _ -> fail "name"
    in
    let source =
      match field "source" fields with
      | [ Atom "builtin" ] -> `Builtin
      | [ List [ Atom "learned"; Atom s ] ] -> `Learned s
      | _ -> fail "source"
    in
    let guest = List.map ginsn_of (field "guest" fields) in
    let host = List.map hinsn_of (field "host" fields) in
    let n_reg_params =
      match field "regs" fields with [ i ] -> as_int i | _ -> fail "regs"
    in
    let n_imm_params =
      match field "imms" fields with [ i ] -> as_int i | _ -> fail "imms"
    in
    let flags =
      match field "flags" fields with
      | [ w; c; conv ] ->
        {
          Rule.guest_writes = as_bool w;
          host_clobbers = as_bool c;
          convention =
            (match conv with
            | Atom "none" -> None
            | Atom s -> Some (conv_of_name s)
            | List _ -> fail "convention");
        }
      | _ -> fail "flags"
    in
    let carry_in =
      match field "carry" fields with
      | [ Atom "none" ] -> None
      | [ Atom "direct" ] -> Some `Direct
      | [ Atom "inverted" ] -> Some `Inverted
      | _ -> fail "carry"
    in
    let require_distinct =
      List.map
        (function List [ p; q ] -> (as_int p, as_int q) | _ -> fail "distinct")
        (field "distinct" fields)
    in
    {
      Rule.id;
      name;
      guest;
      host;
      n_reg_params;
      n_imm_params;
      flags;
      carry_in;
      require_distinct;
      source;
    }
  | _ -> fail "expected (rule ...)"

let rule_of_string s =
  match rule_of_sexp (parse_sexp s) with
  | r -> Ok r
  | exception Parse msg -> Error msg
  | exception Failure msg -> Error msg

let save ruleset =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "; repro-dbt rule set (one rule per line)\n";
  List.iter
    (fun r ->
      Buffer.add_string buf (rule_to_string r);
      Buffer.add_char buf '\n')
    (Ruleset.rules ruleset);
  Buffer.contents buf

let load text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (Ruleset.of_list (List.rev acc))
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = ';' then go acc rest
      else (
        match rule_of_string line with
        | Ok r -> go (r :: acc) rest
        | Error e -> Error (Printf.sprintf "%s (in %s)" e line))
  in
  go [] lines

let save_file ruleset path =
  let oc = open_out path in
  output_string oc (save ruleset);
  close_out oc

let load_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  load text
