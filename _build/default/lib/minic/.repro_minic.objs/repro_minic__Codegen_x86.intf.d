lib/minic/codegen_x86.mli: Ast Repro_x86
