lib/minic/codegen_arm.ml: Array Ast Hashtbl List Option Printf Regalloc Repro_arm Repro_common Repro_machine
