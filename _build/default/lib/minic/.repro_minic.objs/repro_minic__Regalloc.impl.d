lib/minic/regalloc.ml: Ast
