lib/minic/codegen_arm.mli: Ast Repro_arm Repro_common
