lib/minic/ast.ml: Format List Result String
