lib/minic/regalloc.mli: Ast Repro_arm
