lib/minic/codegen_x86.ml: Ast List Option Regalloc Repro_rules Repro_x86
