let max_temps = 4

let temp_guest k =
  if k < 0 || k >= max_temps then failwith "Regalloc: expression too deep";
  k

let local_guest (p : Ast.program) v =
  let rec index i = function
    | [] -> failwith ("Regalloc: undeclared local " ^ v)
    | x :: _ when x = v -> i
    | _ :: tl -> index (i + 1) tl
  in
  4 + index 0 p.Ast.locals
