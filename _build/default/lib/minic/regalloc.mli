(** The twin compilers' shared register discipline: expression
    temporaries live in guest r0..r3 and locals in guest r4..r8; the
    host compiler uses the corresponding pinned host registers. This
    positional correspondence is what lets the extractor pair
    fragments without a mapping-inference step (see DESIGN.md). *)

val temp_guest : int -> Repro_arm.Insn.reg
(** Temp slot [0..3] → guest register. *)

val local_guest : Ast.program -> Ast.var -> Repro_arm.Insn.reg
val max_temps : int
