module A = Repro_arm.Insn
module Cond = Repro_arm.Cond
module Asm = Repro_arm.Asm

type line_insn = { line : int; insn : Repro_arm.Insn.t }

(* Emission context: an underlying Asm builder plus per-insn line
   recording. Lines are attached by position at assembly time. *)
type ctx = {
  asm : Asm.t;
  mutable lines : (int * int) list;  (* (word index, line), reversed *)
  mutable index : int;
  mutable label_id : int;
  prog : Ast.program;
}

let emit ctx line insn =
  Asm.emit ctx.asm insn;
  ctx.lines <- (ctx.index, line) :: ctx.lines;
  ctx.index <- ctx.index + 1

let emit_branch ctx line ?cond target =
  Asm.branch_to ctx.asm ?cond target;
  ctx.lines <- (ctx.index, line) :: ctx.lines;
  ctx.index <- ctx.index + 1

let fresh_label ctx prefix =
  let n = ctx.label_id in
  ctx.label_id <- n + 1;
  Printf.sprintf ".%s%d" prefix n

let dp line ctx op ?(s = false) rd rn op2 =
  emit ctx line (A.make (A.Dp { op; s; rd; rn; op2 }))

let reg_op2 r = A.Reg_shift_imm { rm = r; kind = A.LSL; amount = 0 }

(* Materialize a constant into [dst]. *)
let load_const ctx line dst n =
  let n = Repro_common.Word32.mask n in
  match A.imm_operand n with
  | Some op2 -> dp line ctx A.MOV dst 0 op2
  | None -> (
    match A.imm_operand (Repro_common.Word32.lognot n) with
    | Some op2 -> dp line ctx A.MVN dst 0 op2
    | None ->
      emit ctx line (A.make (A.Movw { rd = dst; imm16 = n land 0xFFFF }));
      if n lsr 16 <> 0 then
        emit ctx line (A.make (A.Movt { rd = dst; imm16 = n lsr 16 })))

let binop_dp : Ast.binop -> A.dp_op option = function
  | Ast.Add -> Some A.ADD
  | Ast.Sub -> Some A.SUB
  | Ast.And -> Some A.AND
  | Ast.Or -> Some A.ORR
  | Ast.Xor -> Some A.EOR
  | Ast.Mul | Ast.Shl | Ast.Shr | Ast.Asr -> None

let shift_kind : Ast.binop -> A.shift_kind option = function
  | Ast.Shl -> Some A.LSL
  | Ast.Shr -> Some A.LSR
  | Ast.Asr -> Some A.ASR
  | _ -> None

(* Evaluate [e] into register [dst]; [tmp] is the next free temp slot. *)
let rec eval ctx line ~dst ~tmp (e : Ast.expr) =
  match e with
  | Ast.Int n -> load_const ctx line dst n
  | Ast.Var v ->
    let r = Regalloc.local_guest ctx.prog v in
    if r <> dst then dp line ctx A.MOV dst 0 (reg_op2 r)
  | Ast.Unop (Ast.Neg, a) ->
    let ra = eval_to_reg ctx line ~tmp a in
    dp line ctx A.RSB dst ra (A.imm_operand_exn 0)
  | Ast.Unop (Ast.Not, a) ->
    let ra = eval_to_reg ctx line ~tmp a in
    dp line ctx A.MVN dst 0 (reg_op2 ra)
  | Ast.Binop (op, a, Ast.Binop (shop, b, Ast.Int k))
    when binop_dp op <> None && shift_kind shop <> None ->
    (* ARM's signature fused form: op rd, ra, rb LSL #k *)
    let dpo = Option.get (binop_dp op) in
    let kind = Option.get (shift_kind shop) in
    let ra = eval_to_reg ctx line ~tmp a in
    let rb = eval_to_reg ctx line ~tmp:(tmp + 1) b in
    dp line ctx dpo dst ra (A.Reg_shift_imm { rm = rb; kind; amount = k land 31 })
  | Ast.Binop (op, a, b) -> (
    let ra = eval_to_reg ctx line ~tmp a in
    match (binop_dp op, shift_kind op, b) with
    | Some dpo, _, Ast.Int n when A.imm_operand n <> None ->
      dp line ctx dpo dst ra (A.imm_operand_exn n)
    | Some dpo, _, _ ->
      let rb = eval_to_reg ctx line ~tmp:(tmp + 1) b in
      dp line ctx dpo dst ra (reg_op2 rb)
    | None, Some kind, Ast.Int n ->
      dp line ctx A.MOV dst 0 (A.Reg_shift_imm { rm = ra; kind; amount = n land 31 })
    | None, Some kind, _ ->
      let rb = eval_to_reg ctx line ~tmp:(tmp + 1) b in
      dp line ctx A.MOV dst 0 (A.Reg_shift_reg { rm = ra; kind; rs = rb })
    | None, None, _ ->
      (* multiply *)
      let rb = eval_to_reg ctx line ~tmp:(tmp + 1) b in
      emit ctx line (A.make (A.Mul { s = false; rd = dst; rn = rb; rm = ra; acc = None })))

(* Evaluate to "wherever it already is" for variables, else into the
   temp slot. *)
and eval_to_reg ctx line ~tmp (e : Ast.expr) =
  match e with
  | Ast.Var v -> Regalloc.local_guest ctx.prog v
  | _ ->
    let dst = Regalloc.temp_guest tmp in
    eval ctx line ~dst ~tmp:(tmp + 1) e;
    dst

let cond_of_relop : Ast.relop -> Cond.t = function
  | Ast.Eq -> Cond.EQ
  | Ast.Ne -> Cond.NE
  | Ast.Slt -> Cond.LT
  | Ast.Sle -> Cond.LE
  | Ast.Sgt -> Cond.GT
  | Ast.Sge -> Cond.GE
  | Ast.Ult -> Cond.CC
  | Ast.Uge -> Cond.CS

(* Emit the comparison; returns the condition under which it holds. *)
let eval_cond ctx line (Ast.Rel (op, a, b)) =
  let ra = eval_to_reg ctx line ~tmp:0 a in
  (match b with
  | Ast.Int n when A.imm_operand n <> None ->
    dp line ctx A.CMP 0 ra (A.imm_operand_exn n)
  | _ ->
    let rb = eval_to_reg ctx line ~tmp:1 b in
    dp line ctx A.CMP 0 ra (reg_op2 rb));
  cond_of_relop op

let rec gen_stmts ctx stmts = List.iter (gen_stmt ctx) stmts

and gen_stmt ctx (s : Ast.stmt) =
  match s.Ast.body with
  | Ast.Assign (x, e) ->
    let rx = Regalloc.local_guest ctx.prog x in
    eval ctx s.Ast.line ~dst:rx ~tmp:0 e
  | Ast.If (c, then_s, else_s) ->
    let l_else = fresh_label ctx "else" in
    let l_end = fresh_label ctx "endif" in
    let cond = eval_cond ctx s.Ast.line c in
    emit_branch ctx s.Ast.line ~cond:(Cond.negate cond)
      (if else_s = [] then l_end else l_else);
    gen_stmts ctx then_s;
    if else_s <> [] then begin
      emit_branch ctx s.Ast.line l_end;
      Asm.label ctx.asm l_else;
      gen_stmts ctx else_s
    end;
    Asm.label ctx.asm l_end
  | Ast.While (c, body) ->
    let l_head = fresh_label ctx "while" in
    let l_end = fresh_label ctx "endwhile" in
    Asm.label ctx.asm l_head;
    let cond = eval_cond ctx s.Ast.line c in
    emit_branch ctx s.Ast.line ~cond:(Cond.negate cond) l_end;
    gen_stmts ctx body;
    emit_branch ctx s.Ast.line l_head;
    Asm.label ctx.asm l_end

let make_ctx prog = { asm = Asm.create (); lines = []; index = 0; label_id = 0; prog }

let compile prog =
  let ctx = make_ctx prog in
  gen_stmts ctx prog.Ast.body;
  let _, insns = Asm.assemble_insns ctx.asm in
  let line_of = Hashtbl.create 64 in
  List.iter (fun (i, l) -> Hashtbl.replace line_of i l) ctx.lines;
  Array.to_list insns
  |> List.mapi (fun i insn ->
         { line = (match Hashtbl.find_opt line_of i with Some l -> l | None -> -1); insn })

let compile_runnable prog ~halt_with =
  let ctx = make_ctx prog in
  gen_stmts ctx prog.Ast.body;
  (* Halt epilogue: r0 := exit value; r1 := syscon; str *)
  let line = -1 in
  (match halt_with with
  | Some v ->
    let r = Regalloc.local_guest prog v in
    if r <> 0 then dp line ctx A.MOV 0 0 (reg_op2 r)
  | None -> load_const ctx line 0 0);
  load_const ctx line 1 Repro_machine.Bus.syscon_base;
  emit ctx line
    (A.make (A.Str { width = A.Word; rd = 0; rn = 1; off = A.Imm_off 0; index = A.Offset }));
  snd (Asm.assemble ctx.asm)
