(** The guest-side mini-C compiler: non-optimizing, tree-walking
    codegen to the ARM subset, tagging every emitted instruction with
    its source line (the learning pipeline's debug info).

    Also assembles a runnable image (program + halt epilogue) so
    compiled programs double as end-to-end workloads. *)

type line_insn = { line : int; insn : Repro_arm.Insn.t }

val compile : Ast.program -> line_insn list
(** Instruction stream with provenance (includes branches; the
    extractor filters those out). *)

val compile_runnable :
  Ast.program -> halt_with:Ast.var option -> Repro_common.Word32.t array
(** Assembled image starting at 0 that runs the program and powers off
    through the system controller (exit code = final value of
    [halt_with], or 0). *)
