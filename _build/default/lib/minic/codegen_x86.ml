module X = Repro_x86.Insn
module Pinmap = Repro_rules.Pinmap

type line_insn = { line : int; insn : X.t }

type ctx = {
  mutable rev : line_insn list;
  mutable label_id : int;
  prog : Ast.program;
}

let emit ctx line insn = ctx.rev <- { line; insn } :: ctx.rev

let fresh_label ctx =
  let n = ctx.label_id in
  ctx.label_id <- n + 1;
  n

let host_of_guest g =
  match Pinmap.pin g with
  | Some h -> h
  | None -> failwith "Codegen_x86: unpinned register"

let temp_host k = host_of_guest (Regalloc.temp_guest k)
let local_host ctx v = host_of_guest (Regalloc.local_guest ctx.prog v)
let mov ctx line dst src = emit ctx line (X.Mov { width = X.W32; dst; src })

let alu_of_binop : Ast.binop -> X.alu_op option = function
  | Ast.Sub -> Some X.Sub
  | Ast.And -> Some X.And
  | Ast.Or -> Some X.Or
  | Ast.Xor -> Some X.Xor
  | Ast.Add | Ast.Mul | Ast.Shl | Ast.Shr | Ast.Asr -> None

let shift_of_binop : Ast.binop -> X.shift_op option = function
  | Ast.Shl -> Some X.Shl
  | Ast.Shr -> Some X.Shr
  | Ast.Asr -> Some X.Sar
  | _ -> None

let rec eval ctx line ~dst ~tmp (e : Ast.expr) =
  match e with
  | Ast.Int n -> mov ctx line (X.Reg dst) (X.Imm n)
  | Ast.Var v ->
    let r = local_host ctx v in
    if r <> dst then mov ctx line (X.Reg dst) (X.Reg r)
  | Ast.Unop (Ast.Neg, a) ->
    let ra = eval_to_reg ctx line ~tmp a in
    if ra <> dst then mov ctx line (X.Reg dst) (X.Reg ra);
    emit ctx line (X.Neg (X.Reg dst))
  | Ast.Unop (Ast.Not, a) ->
    let ra = eval_to_reg ctx line ~tmp a in
    if ra <> dst then mov ctx line (X.Reg dst) (X.Reg ra);
    emit ctx line (X.Not (X.Reg dst))
  | Ast.Binop (op, a, Ast.Binop (shop, b, Ast.Int k))
    when alu_of_binop op <> None && shift_of_binop shop <> None
         || (op = Ast.Add && shift_of_binop shop <> None) ->
    (* mirror of the guest compiler's fused shifted operand: the
       shifted value is computed in a scratch register (so learned
       templates never touch unrelated pinned state) *)
    let sh = Option.get (shift_of_binop shop) in
    let ra = eval_to_reg ctx line ~tmp a in
    let rb = eval_to_reg ctx line ~tmp:(tmp + 1) b in
    mov ctx line (X.Reg X.rax) (X.Reg rb);
    emit ctx line (X.Shift { op = sh; dst = X.Reg X.rax; amount = X.Sh_imm (k land 31) });
    (match alu_of_binop op with
    | Some alu ->
      if ra <> dst then mov ctx line (X.Reg dst) (X.Reg ra);
      emit ctx line (X.Alu { op = alu; dst = X.Reg dst; src = X.Reg X.rax })
    | None ->
      (* Add: the guest fused form sets no flags, so use mov+add-like
         lea over the scratch *)
      emit ctx line
        (X.Lea
           { dst;
             addr = { X.seg = X.Ram; base = Some ra; index = Some X.rax; scale = 1; disp = 0 } }))
  | Ast.Binop (Ast.Add, a, b) -> (
    (* a compiler emits a flag-preserving lea for plain adds *)
    let ra = eval_to_reg ctx line ~tmp a in
    match b with
    | Ast.Int n ->
      emit ctx line
        (X.Lea { dst; addr = { X.seg = X.Ram; base = Some ra; index = None; scale = 1; disp = n } })
    | _ ->
      let rb = eval_to_reg ctx line ~tmp:(tmp + 1) b in
      emit ctx line
        (X.Lea
           { dst; addr = { X.seg = X.Ram; base = Some ra; index = Some rb; scale = 1; disp = 0 } }))
  | Ast.Binop (Ast.Mul, a, b) ->
    let ra = eval_to_reg ctx line ~tmp a in
    let rb = eval_to_reg ctx line ~tmp:(tmp + 1) b in
    if ra <> dst then mov ctx line (X.Reg dst) (X.Reg ra);
    emit ctx line (X.Imul { dst; src = X.Reg rb })
  | Ast.Binop (op, a, b) -> (
    match (alu_of_binop op, shift_of_binop op) with
    | Some alu, _ -> (
      let ra = eval_to_reg ctx line ~tmp a in
      if ra <> dst then mov ctx line (X.Reg dst) (X.Reg ra);
      match b with
      | Ast.Int n -> emit ctx line (X.Alu { op = alu; dst = X.Reg dst; src = X.Imm n })
      | _ ->
        let rb = eval_to_reg ctx line ~tmp:(tmp + 1) b in
        emit ctx line (X.Alu { op = alu; dst = X.Reg dst; src = X.Reg rb }))
    | None, Some sh -> (
      let ra = eval_to_reg ctx line ~tmp a in
      if ra <> dst then mov ctx line (X.Reg dst) (X.Reg ra);
      match b with
      | Ast.Int n ->
        emit ctx line (X.Shift { op = sh; dst = X.Reg dst; amount = X.Sh_imm (n land 31) })
      | _ ->
        let rb = eval_to_reg ctx line ~tmp:(tmp + 1) b in
        mov ctx line (X.Reg X.rcx) (X.Reg rb);
        emit ctx line (X.Shift { op = sh; dst = X.Reg dst; amount = X.Sh_cl }))
    | None, None -> assert false)

and eval_to_reg ctx line ~tmp (e : Ast.expr) =
  match e with
  | Ast.Var v -> local_host ctx v
  | _ ->
    let dst = temp_host tmp in
    eval ctx line ~dst ~tmp:(tmp + 1) e;
    dst

let cc_of_relop : Ast.relop -> X.cc = function
  | Ast.Eq -> X.E
  | Ast.Ne -> X.NE
  | Ast.Slt -> X.L
  | Ast.Sle -> X.LE
  | Ast.Sgt -> X.G
  | Ast.Sge -> X.GE
  | Ast.Ult -> X.B
  | Ast.Uge -> X.AE

let eval_cond ctx line (Ast.Rel (op, a, b)) =
  let ra = eval_to_reg ctx line ~tmp:0 a in
  (match b with
  | Ast.Int n -> emit ctx line (X.Alu { op = X.Cmp; dst = X.Reg ra; src = X.Imm n })
  | _ ->
    let rb = eval_to_reg ctx line ~tmp:1 b in
    emit ctx line (X.Alu { op = X.Cmp; dst = X.Reg ra; src = X.Reg rb }));
  cc_of_relop op

let rec gen_stmts ctx stmts = List.iter (gen_stmt ctx) stmts

and gen_stmt ctx (s : Ast.stmt) =
  match s.Ast.body with
  | Ast.Assign (x, e) -> eval ctx s.Ast.line ~dst:(local_host ctx x) ~tmp:0 e
  | Ast.If (c, then_s, else_s) ->
    let l_else = fresh_label ctx in
    let l_end = fresh_label ctx in
    let cc = eval_cond ctx s.Ast.line c in
    emit ctx s.Ast.line
      (X.Jcc { cc = X.cc_negate cc; target = (if else_s = [] then l_end else l_else) });
    gen_stmts ctx then_s;
    if else_s <> [] then begin
      emit ctx s.Ast.line (X.Jmp l_end);
      emit ctx s.Ast.line (X.Label l_else);
      gen_stmts ctx else_s
    end;
    emit ctx s.Ast.line (X.Label l_end)
  | Ast.While (c, body) ->
    let l_head = fresh_label ctx in
    let l_end = fresh_label ctx in
    emit ctx s.Ast.line (X.Label l_head);
    let cc = eval_cond ctx s.Ast.line c in
    emit ctx s.Ast.line (X.Jcc { cc = X.cc_negate cc; target = l_end });
    gen_stmts ctx body;
    emit ctx s.Ast.line (X.Jmp l_head);
    emit ctx s.Ast.line (X.Label l_end)

let compile prog =
  let ctx = { rev = []; label_id = 0; prog } in
  gen_stmts ctx prog.Ast.body;
  List.rev ctx.rev
