type var = string
type binop = Add | Sub | Mul | And | Or | Xor | Shl | Shr | Asr
type unop = Neg | Not

type expr = Int of int | Var of var | Binop of binop * expr * expr | Unop of unop * expr

type relop = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Uge
type cond = Rel of relop * expr * expr
type stmt = { line : int; body : stmt_body }

and stmt_body =
  | Assign of var * expr
  | If of cond * stmt list * stmt list
  | While of cond * stmt list

type program = { name : string; locals : var list; body : stmt list }

let rec expr_depth = function
  | Int _ | Var _ -> 1
  | Unop (_, e) -> expr_depth e
  | Binop (_, a, b) -> 1 + max (expr_depth a) (expr_depth b)

let validate p =
  let ( let* ) = Result.bind in
  let* () =
    if List.length p.locals > 5 then Error "too many locals (max 5)" else Ok ()
  in
  let declared v = List.mem v p.locals in
  let rec check_expr = function
    | Int _ -> Ok ()
    | Var v -> if declared v then Ok () else Error ("undeclared variable " ^ v)
    | Unop (_, e) -> check_expr e
    | Binop (_, a, b) ->
      let* () = check_expr a in
      check_expr b
  in
  let check_cond (Rel (_, a, b)) =
    let* () = check_expr a in
    check_expr b
  in
  let rec check_stmts stmts =
    List.fold_left
      (fun acc (s : stmt) ->
        let* () = acc in
        match s.body with
        | Assign (x, e) ->
          let* () = if declared x then Ok () else Error ("undeclared variable " ^ x) in
          let* () = check_expr e in
          if expr_depth e > 4 then Error "expression too deep" else Ok ()
        | If (c, t, e) ->
          let* () = check_cond c in
          let* () = check_stmts t in
          check_stmts e
        | While (c, b) ->
          let* () = check_cond c in
          check_stmts b)
      (Ok ()) stmts
  in
  check_stmts p.body

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Asr -> ">>a"

let relop_name = function
  | Eq -> "=="
  | Ne -> "!="
  | Slt -> "<"
  | Sle -> "<="
  | Sgt -> ">"
  | Sge -> ">="
  | Ult -> "<u"
  | Uge -> ">=u"

let rec pp_expr ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Var v -> Format.pp_print_string ppf v
  | Unop (Neg, e) -> Format.fprintf ppf "-(%a)" pp_expr e
  | Unop (Not, e) -> Format.fprintf ppf "~(%a)" pp_expr e
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b

let pp_cond ppf (Rel (op, a, b)) =
  Format.fprintf ppf "%a %s %a" pp_expr a (relop_name op) pp_expr b

let rec pp_stmt ppf (s : stmt) =
  match s.body with
  | Assign (x, e) -> Format.fprintf ppf "@[<h>%2d: %s = %a;@]" s.line x pp_expr e
  | If (c, t, e) ->
    Format.fprintf ppf "@[<v>%2d: if (%a) {@;<0 2>%a@,}" s.line pp_cond c pp_stmts t;
    if e <> [] then Format.fprintf ppf " else {@;<0 2>%a@,}" pp_stmts e;
    Format.fprintf ppf "@]"
  | While (c, b) ->
    Format.fprintf ppf "@[<v>%2d: while (%a) {@;<0 2>%a@,}@]" s.line pp_cond c pp_stmts b

and pp_stmts ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_program ppf p =
  Format.fprintf ppf "@[<v>%s(%s):@,%a@]" p.name (String.concat ", " p.locals) pp_stmts
    p.body

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( &&& ) a b = Binop (And, a, b)
let ( ||| ) a b = Binop (Or, a, b)
let ( ^^^ ) a b = Binop (Xor, a, b)
let ( <<< ) a n = Binop (Shl, a, Int n)
let ( >>> ) a n = Binop (Shr, a, Int n)
let i n = Int n
let v s = Var s
