(** The host-side mini-C compiler: the same tree-walking lowering
    decisions as {!Codegen_arm} but targeting the x86 model, with
    variables and temporaries allocated to the pinned host registers
    corresponding to the guest compiler's choices. This positional
    correspondence (documented in DESIGN.md) stands in for the
    mapping-inference step of the original learning framework. *)

type line_insn = { line : int; insn : Repro_x86.Insn.t }

val compile : Ast.program -> line_insn list
(** Host instruction stream with line provenance. Control flow uses
    label pseudo-ops; the extractor only consumes computational
    lines. *)
