(** The training source language.

    The learning pipeline needs the same source compiled to both ISAs
    with per-instruction line provenance (the "debug information" of
    the paper's learning phase). Mini-C is a tiny imperative language
    of register-resident integer locals — rich enough to make the two
    code generators emit the full computational instruction vocabulary,
    with every statement carrying a source line. *)

type var = string

type binop = Add | Sub | Mul | And | Or | Xor | Shl | Shr | Asr
type unop = Neg | Not

type expr =
  | Int of int
  | Var of var
  | Binop of binop * expr * expr
  | Unop of unop * expr

type relop = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Uge

type cond = Rel of relop * expr * expr

(** Statements; [line] is the source line used for fragment
    extraction. *)
type stmt = { line : int; body : stmt_body }

and stmt_body =
  | Assign of var * expr
  | If of cond * stmt list * stmt list
  | While of cond * stmt list

type program = { name : string; locals : var list; body : stmt list }

val validate : program -> (unit, string) result
(** Locals must be declared, ≤ 5 of them (register allocation), and
    expression depth bounded (temp registers). *)

val pp_program : Format.formatter -> program -> unit

(** {2 Construction helpers} *)

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( &&& ) : expr -> expr -> expr
val ( ||| ) : expr -> expr -> expr
val ( ^^^ ) : expr -> expr -> expr
val ( <<< ) : expr -> int -> expr
val ( >>> ) : expr -> int -> expr
val i : int -> expr
val v : string -> expr
