lib/kernel/kernel.mli: Repro_arm Repro_common Word32
