lib/kernel/kernel.ml: Array List Repro_arm Repro_common Repro_machine Word32
