(** Plain-text aligned tables, used by the experiment harness to print
    the rows of each paper table/figure. *)

type align = Left | Right

val render : header:string list -> ?aligns:align list -> string list list -> string
(** [render ~header rows] lays the rows out in aligned columns with a
    separator rule under the header. [aligns] defaults to left for the
    first column and right for the rest. *)

val print : header:string list -> ?aligns:align list -> string list list -> unit

val fixed : int -> float -> string
(** [fixed d x] formats [x] with [d] decimals. *)

val percent : float -> string
(** [percent 0.1234] is ["12.34%"]. *)

val geomean : float list -> float
(** Geometric mean; raises [Invalid_argument] on an empty list or
    non-positive entries. *)
