type align = Left | Right

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render ~header ?aligns rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a -> Array.of_list a
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let line row =
    row
    |> List.mapi (fun i cell -> pad aligns.(i) widths.(i) cell)
    |> String.concat "  "
  in
  let rule =
    Array.to_list widths |> List.map (fun w -> String.make w '-') |> String.concat "  "
  in
  String.concat "\n" (line header :: rule :: List.map line rows) ^ "\n"

let print ~header ?aligns rows = print_string (render ~header ?aligns rows)
let fixed d x = Printf.sprintf "%.*f" d x
let percent x = Printf.sprintf "%.2f%%" (x *. 100.)

let geomean xs =
  match xs with
  | [] -> invalid_arg "Table.geomean: empty"
  | _ ->
    let n = List.length xs in
    let sum =
      List.fold_left
        (fun acc x ->
          if x <= 0. then invalid_arg "Table.geomean: non-positive entry"
          else acc +. log x)
        0. xs
    in
    exp (sum /. float_of_int n)
