(** 32-bit machine words represented as non-negative OCaml [int]s.

    Every function keeps its result inside [0, 2^32). Signed views are
    provided where two's-complement interpretation matters (comparisons,
    arithmetic shift right, overflow flags). This module is the single
    source of truth for word arithmetic across the guest (ARM) and host
    (x86) models, the softMMU and the symbolic evaluator. *)

type t = int
(** A 32-bit word, invariant: [0 <= w < 0x1_0000_0000]. *)

val mask : t -> t
(** Truncate an arbitrary [int] to 32 bits. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32

val zero : t
val max_value : t
(** [0xFFFF_FFFF]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
(** [shift_left w n] for [n >= 32] returns [0]. *)

val shift_right_logical : t -> int -> t
(** Logical shift; [n >= 32] returns [0]. *)

val shift_right_arith : t -> int -> t
(** Arithmetic shift on the two's-complement view; [n >= 32] replicates
    the sign bit. *)

val rotate_right : t -> int -> t
(** Rotate by [n mod 32]. *)

val bit : t -> int -> bool
(** [bit w i] is bit [i] (0 = least significant). *)

val set_bit : t -> int -> bool -> t

val extract : t -> lo:int -> len:int -> t
(** [extract w ~lo ~len] is the [len]-bit field starting at bit [lo]. *)

val insert : t -> lo:int -> len:int -> t -> t
(** [insert w ~lo ~len v] overwrites the field with the low [len] bits
    of [v]. *)

val signed : t -> int
(** Two's-complement value in [-2^31, 2^31). *)

val of_signed : int -> t
(** Inverse of {!signed} for values that fit; other values are masked. *)

val is_negative : t -> bool
(** Bit 31. *)

val compare_signed : t -> t -> int
val compare_unsigned : t -> t -> int

val carry_of_add : t -> t -> carry_in:bool -> bool
(** Unsigned carry out of a 32-bit addition. *)

val overflow_of_add : t -> t -> t -> bool
(** [overflow_of_add a b r] is signed overflow of [r = a + b (+ carry)]. *)

val borrow_of_sub : t -> t -> borrow_in:bool -> bool
(** True when [a - b - borrow] underflows below zero (x86 CF convention;
    ARM's C flag for subtraction is the negation). *)

val overflow_of_sub : t -> t -> t -> bool
(** [overflow_of_sub a b r] is signed overflow of [r = a - b (- borrow)]. *)

val sign_extend : width:int -> t -> t
(** Sign-extend the low [width] bits to a full word. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal [0x%08x] rendering. *)

val to_hex : t -> string
