type t = int

let mask w = w land 0xFFFF_FFFF
let of_int32 i = Int32.to_int i land 0xFFFF_FFFF
let to_int32 w = Int32.of_int w
let zero = 0
let max_value = 0xFFFF_FFFF
let add a b = mask (a + b)
let sub a b = mask (a - b)
let mul a b = mask (a * b)
let neg a = mask (-a)
let logand = ( land )
let logor = ( lor )
let logxor = ( lxor )
let lognot a = mask (lnot a)
let shift_left w n = if n >= 32 || n < 0 then 0 else mask (w lsl n)
let shift_right_logical w n = if n >= 32 || n < 0 then 0 else w lsr n

let signed w = if w land 0x8000_0000 <> 0 then w - 0x1_0000_0000 else w
let of_signed i = mask i

let shift_right_arith w n =
  if n <= 0 then w
  else if n >= 32 then if w land 0x8000_0000 <> 0 then max_value else 0
  else mask (signed w asr n)

let rotate_right w n =
  let n = n land 31 in
  if n = 0 then w else mask ((w lsr n) lor (w lsl (32 - n)))

let bit w i = (w lsr i) land 1 = 1

let set_bit w i b =
  if b then w lor (1 lsl i) else w land lnot (1 lsl i) land max_value

let extract w ~lo ~len = (w lsr lo) land ((1 lsl len) - 1)

let insert w ~lo ~len v =
  let m = ((1 lsl len) - 1) lsl lo in
  (w land lnot m land max_value) lor ((v lsl lo) land m)

let is_negative w = w land 0x8000_0000 <> 0
let compare_signed a b = compare (signed a) (signed b)
let compare_unsigned = compare

let carry_of_add a b ~carry_in =
  a + b + (if carry_in then 1 else 0) > max_value

let overflow_of_add a b r =
  is_negative a = is_negative b && is_negative r <> is_negative a

let borrow_of_sub a b ~borrow_in = a - b - (if borrow_in then 1 else 0) < 0

let overflow_of_sub a b r =
  is_negative a <> is_negative b && is_negative r <> is_negative a

let sign_extend ~width w =
  let w = w land ((1 lsl width) - 1) in
  if width < 32 && bit w (width - 1) then w lor (max_value lxor ((1 lsl width) - 1))
  else w

let pp ppf w = Format.fprintf ppf "0x%08x" w
let to_hex w = Printf.sprintf "0x%08x" w
