lib/common/word32.ml: Format Int32 Printf
