lib/common/prng.ml: Array Char Int64 String
