lib/common/prng.mli: Word32
