lib/common/table.ml: Array List Printf String
