lib/common/table.mli:
