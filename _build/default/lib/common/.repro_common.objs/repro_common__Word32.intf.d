lib/common/word32.mli: Format
