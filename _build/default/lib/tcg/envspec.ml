open Repro_common
module Cpu = Repro_arm.Cpu
module Cond = Repro_arm.Cond

let reg i =
  assert (i >= 0 && i < 16);
  i

let pc = 15
let cc_n = 16
let cc_z = 17
let cc_c = 18
let cc_v = 19
let ccr_packed = 20
let ccr_tag = 21
let irq_pending = 22
let n_slots = 24

let flag_slot = function `N -> cc_n | `Z -> cc_z | `C -> cc_c | `V -> cc_v

let pack_parsed env =
  (env.(cc_n) lsl 31) lor (env.(cc_z) lsl 30) lor (env.(cc_c) lsl 29)
  lor (env.(cc_v) lsl 28)

(* The packed slot stores the x86-canonical encoding (bit 29 = CF =
   NOT C), which is what a 2-instruction emitted restore can Loadf
   directly; ARM-facing readers flip bit 29. *)
let of_canonical w = (w lxor 0x2000_0000) land 0xF000_0000
let to_canonical w = (w lxor 0x2000_0000) land 0xF000_0000

let flags_word env =
  if env.(ccr_tag) = 1 then of_canonical env.(ccr_packed) else pack_parsed env

let set_flags_both env w =
  env.(cc_n) <- (w lsr 31) land 1;
  env.(cc_z) <- (w lsr 30) land 1;
  env.(cc_c) <- (w lsr 29) land 1;
  env.(cc_v) <- (w lsr 28) land 1;
  env.(ccr_packed) <- to_canonical (w land 0xF000_0000);
  env.(ccr_tag) <- 0

(* Lazy parse: ~6 host instructions (load, 4 shift/mask+store pairs
   collapsed — QEMU's cpsr_read-style bit fiddling). *)
let parse_packed_cost = 6

let parse_packed env =
  if env.(ccr_tag) = 1 then begin
    set_flags_both env (of_canonical env.(ccr_packed));
    parse_packed_cost
  end
  else 0

let env_to_cpu env cpu =
  for r = 0 to 15 do
    Cpu.set_reg cpu r env.(r)
  done;
  Cpu.set_flags cpu (Cond.flags_of_word (flags_word env))

let cpu_to_env cpu env =
  for r = 0 to 15 do
    env.(r) <- Cpu.get_reg cpu r
  done;
  set_flags_both env (Word32.logand (Cpu.get_cpsr cpu) 0xF000_0000)
