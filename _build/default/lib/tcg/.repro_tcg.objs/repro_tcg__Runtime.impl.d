lib/tcg/runtime.ml: Array Envspec Repro_arm Repro_common Repro_machine Repro_mmu Repro_x86 Word32
