lib/tcg/ir.mli: Format Repro_x86
