lib/tcg/costs.ml:
