lib/tcg/helpers.ml: Array Costs Envspec Printf Repro_arm Repro_common Repro_machine Repro_mmu Repro_x86 Result Runtime Word32
