lib/tcg/tb.ml: Hashtbl List Repro_arm Repro_common Repro_x86 Word32
