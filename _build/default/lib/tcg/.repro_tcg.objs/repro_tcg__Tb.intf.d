lib/tcg/tb.mli: Repro_arm Repro_common Repro_x86 Word32
