lib/tcg/backend.ml: Array Envspec Hashtbl Helpers Ir List Printf Repro_mmu Repro_x86 Tb
