lib/tcg/profile.ml: Array Format Hashtbl List Repro_arm Repro_common Tb Word32
