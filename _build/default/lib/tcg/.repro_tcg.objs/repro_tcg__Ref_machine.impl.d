lib/tcg/ref_machine.ml: Array Bytes Repro_arm Repro_common Repro_machine Repro_mmu Word32
