lib/tcg/translator_qemu.mli: Repro_arm Repro_common Runtime Tb Word32
