lib/tcg/envspec.ml: Array Repro_arm Repro_common Word32
