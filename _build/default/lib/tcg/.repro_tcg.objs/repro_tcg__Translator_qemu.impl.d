lib/tcg/translator_qemu.ml: Array Backend Frontend List Printf Repro_arm Repro_common Repro_x86 Runtime Tb Word32
