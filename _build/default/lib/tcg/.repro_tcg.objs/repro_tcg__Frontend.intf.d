lib/tcg/frontend.mli: Ir Repro_arm Repro_common
