lib/tcg/frontend.ml: Envspec Helpers Ir List Repro_arm Repro_common Word32
