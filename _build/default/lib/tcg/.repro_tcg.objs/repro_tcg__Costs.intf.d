lib/tcg/costs.mli:
