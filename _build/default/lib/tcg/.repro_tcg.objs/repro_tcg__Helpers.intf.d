lib/tcg/helpers.mli: Repro_x86 Runtime
