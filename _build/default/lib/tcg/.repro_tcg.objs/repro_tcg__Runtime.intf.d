lib/tcg/runtime.mli: Repro_arm Repro_common Repro_machine Repro_x86 Word32
