lib/tcg/ref_machine.mli: Repro_arm Repro_common Repro_machine Word32
