lib/tcg/engine.mli: Profile Repro_arm Repro_common Runtime Tb Word32
