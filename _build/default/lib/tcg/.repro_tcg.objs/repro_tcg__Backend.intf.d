lib/tcg/backend.mli: Ir Repro_common Repro_x86
