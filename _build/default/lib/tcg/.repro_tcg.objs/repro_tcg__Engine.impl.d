lib/tcg/engine.ml: Array Costs Envspec Profile Repro_arm Repro_common Repro_machine Repro_mmu Repro_x86 Runtime Tb Word32
