lib/tcg/ir.ml: Format List Printf Repro_x86 String
