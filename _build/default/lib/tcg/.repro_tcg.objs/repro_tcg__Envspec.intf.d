lib/tcg/envspec.mli: Repro_arm Repro_common Word32
