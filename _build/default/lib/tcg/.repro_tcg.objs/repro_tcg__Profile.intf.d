lib/tcg/profile.mli: Format Repro_arm Repro_common Tb Word32
