(** QEMU's helper functions — the C side that emitted code calls into.

    Two families:
    - the softMMU access helpers ([mmu_load_*]/[mmu_store_*]): full
      address translation in "C" (TLB lookup, page walk + fill on
      miss, MMIO dispatch, data aborts);
    - [interp_one]: emulate exactly one guest instruction at env.pc on
      the architectural mirror — QEMU's catch-all used by the baseline
      for system-level instructions and by the rule-based engine for
      every instruction outside its rule set.

    Every helper charges its modelled cost to the stats and, being
    QEMU code, leaves all host registers (except rbp/rsp) clobbered —
    see {!Repro_x86.Exec}. *)

val arg0_reg : Repro_x86.Insn.reg
(** First helper argument register (rdx — see implementation note). *)

val arg1_reg : Repro_x86.Insn.reg

val h_interp_one : int
val h_mmu_load_w : int
val h_mmu_load_b : int
val h_mmu_store_w : int
val h_mmu_store_b : int
val h_mmu_load_h : int
val h_mmu_store_h : int

val install : Runtime.t -> unit
(** Install the dispatcher into the execution context. *)

val mmu_access_cost_estimate : unit -> int
(** Rough per-access helper cost at a TLB hit (for documentation and
    bench labelling). *)
