(** The QEMU-style baseline translator: decode a guest basic block at
    a PC, lift it through {!Frontend}, lower through {!Backend}. This
    is the system the paper's speedups are measured against. *)

open Repro_common

val max_tb_insns : int

val fetch_block : Runtime.t -> pc:Word32.t -> Repro_arm.Insn.t list
(** Decode one guest basic block at [pc] under the current privilege:
    stops at branches, system-level TB enders, the length limit, page
    boundaries or undecodable words. Shared with the rule-based
    translator. *)

val translate :
  Runtime.t -> Tb.Cache.t -> pc:Word32.t -> (Tb.t, Repro_arm.Mem.fault) result
(** Build a TB for the current privilege/MMU configuration. [Error]
    is a fetch fault on the first instruction (prefetch abort). *)
