(** Layout of the guest-state structure ([env], QEMU's CPUARMState)
    that DBT-emitted host code addresses through the [Env] segment,
    plus the conversions between [env] and the architectural
    {!Repro_arm.Cpu.t} mirror used by helpers.

    Condition flags live in [env] in two interchangeable forms:
    - {e parsed}: four 0/1 slots (CC_N/CC_Z/CC_C/CC_V) — QEMU's view;
    - {e packed}: one word in x86-canonical layout (bits 31..28 =
      SF,ZF,CF,OF, i.e. bit 29 holds ¬C) — what the rule-based
      engine's 3-instruction coordination stores (paper §III-B).
    [ccr_tag] says which form is authoritative (0 = parsed,
    1 = packed). Helpers parse lazily — the paper's "delay the parsing
    of the guest CPU state". *)

open Repro_common

(** {2 Slot indices} *)

val reg : int -> int
(** Slots 0..15 are the current-view general registers; slot 15 is the
    guest PC. *)

val pc : int
val cc_n : int
val cc_z : int
val cc_c : int
val cc_v : int
val ccr_packed : int
val ccr_tag : int
val irq_pending : int
(** Level of the (unmasked) external interrupt line; maintained by the
    execution engine and read by emitted TB-head interrupt checks. *)

val flag_slot : [ `N | `Z | `C | `V ] -> int
val n_slots : int
(** Size the [env] array must have. *)

(** {2 Flag form conversions (helper-side)} *)

val flags_word : int array -> Word32.t
(** ARM NZCV-packed word (bits 31..28), honouring [ccr_tag]. *)

val to_canonical : Word32.t -> Word32.t
(** ARM NZCV word → x86-canonical packed form (flip bit 29). *)

val of_canonical : Word32.t -> Word32.t

val set_flags_both : int array -> Word32.t -> unit
(** Write both forms and clear the tag (used when QEMU itself updates
    flags). *)

val parse_packed : int array -> int
(** If the tag says "packed", expand into the parsed slots and clear
    the tag; returns the modelled host-instruction cost of the parse
    (0 when already parsed). This is the lazy parse of paper Fig. 7. *)

(** {2 env ⇄ CPU mirror} *)

val env_to_cpu : int array -> Repro_arm.Cpu.t -> unit
(** Copy the register file, PC and flags into the mirror (system state
    — modes, banks, cp15, FPSCR — lives only in the mirror). *)

val cpu_to_env : Repro_arm.Cpu.t -> int array -> unit
(** Copy back after a helper ran; writes both flag forms. Also
    refreshes [irq_pending] masking is {e not} applied here. *)
