(** ARM → IR lifting (QEMU's guest frontend).

    Every guest instruction becomes a self-contained IR sequence that
    reads operands from env, computes, and writes results (and, for
    S-bit ops, the four parsed flag slots) back to env — the
    memory-resident guest-state discipline whose cost the paper's
    learned rules avoid. *)

type ctx

val create :
  alloc_direct:(Repro_common.Word32.t -> int) ->
  alloc_indirect:(unit -> int) ->
  unit -> ctx
(** Exit-slot allocators provided by the translator: [alloc_direct
    target_pc] returns a chainable slot, [alloc_indirect] the shared
    indirect slot. *)

val ops : ctx -> Ir.t list
(** Ops emitted so far, in order. *)

val translate_insn : ctx -> pc:Repro_common.Word32.t -> Repro_arm.Insn.t -> bool
(** Lift one instruction located at [pc]. Returns [true] when the
    instruction ends the translation block (branch, PC write,
    system-level instruction, softMMU-visible control change). *)

val emit_goto : ctx -> Repro_common.Word32.t -> unit
(** Close an open-ended block with a direct jump to [pc] (used at the
    TB length/page limit). *)
