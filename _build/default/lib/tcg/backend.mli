(** IR → host lowering (QEMU's TCG backend).

    Temps map onto a fixed pool of host registers (per-guest-insn
    lifetimes keep the pool small); rcx is reserved for variable shift
    counts and r14/r15 for the inline softMMU fast path. [Qemu_ld]/
    [Qemu_st] lower to the TLB probe + slow-path helper sequence, the
    cost signature the paper attributes ≈20 host instructions per
    system-mode memory access to. *)

val temp_pool : Repro_x86.Insn.reg array
(** Host registers available to IR temps, in temp-index order. *)

val lower :
  Repro_x86.Prog.builder ->
  privileged:bool ->
  tb_pc:Repro_common.Word32.t ->
  Ir.t list ->
  unit
(** Append the lowered code for a TB body. Emits the TB-head interrupt
    check (exit slot {!Tb.slot_irq}) and, at the end, the pending
    slow-path and interrupt stubs. *)
