open Repro_common

type step_result =
  | Stepped
  | Took_exception of Cpu.exn_kind
  | Decode_error of string

(* Register read with the architectural PC+8 pipeline view. *)
let read_reg cpu r =
  if r = 15 then Word32.add (Cpu.get_pc cpu) 8 else Cpu.get_reg cpu r

let advance cpu = Cpu.set_pc cpu (Word32.add (Cpu.get_pc cpu) 4)

(* Write a data-processing result; a PC write is a branch, and with the
   S bit in an exception mode it is an exception return (CPSR := SPSR). *)
let write_dp_result cpu rd v ~s ~restore_cpsr =
  if rd = 15 then begin
    if s && restore_cpsr then Cpu.set_cpsr cpu (Cpu.get_spsr cpu);
    Cpu.set_pc cpu (Word32.logand v 0xFFFF_FFFC)
  end
  else begin
    Cpu.set_reg cpu rd v;
    advance cpu
  end

let take cpu kind =
  Cpu.take_exception cpu kind ~pc_of_faulting_insn:(Cpu.get_pc cpu);
  Took_exception kind

let data_abort cpu (f : Mem.fault) =
  Cpu.set_dfar cpu f.vaddr;
  (* DFSR status: 5 = translation fault, 13 = permission, 1 = alignment,
     8 = external abort — loosely modelled on the short-descriptor codes. *)
  let status =
    match f.kind with
    | Mem.Translation -> 5
    | Mem.Permission -> 13
    | Mem.Alignment -> 1
    | Mem.Bus -> 8
  in
  Cpu.set_dfsr cpu status;
  take cpu Cpu.Data_abort

exception Abort of Mem.fault

let exec_dp cpu (op : Insn.dp_op) ~s ~rd ~rn ~op2 =
  let flags = Cpu.get_flags cpu in
  let carry_in = flags.Cond.c in
  let rn_v = read_reg cpu rn in
  let op2_v, _shifter_carry = Insn.operand2_value op2 (read_reg cpu) ~carry:carry_in in
  (* Model simplification (see DESIGN.md): S-bit logical operations set
     C := 0 and V := 0 (host-aligned) instead of the shifter carry-out;
     arithmetic flag semantics are exact. *)
  let logical result = (result, { flags with Cond.c = false; v = false }) in
  let add_like a b ~carry =
    let r = Word32.mask (a + b + if carry then 1 else 0) in
    ( r,
      {
        Cond.n = Word32.is_negative r;
        z = r = 0;
        c = Word32.carry_of_add a b ~carry_in:carry;
        v = Word32.overflow_of_add a b r;
      } )
  in
  let sub_like a b ~borrow =
    let r = Word32.mask (a - b - if borrow then 1 else 0) in
    ( r,
      {
        Cond.n = Word32.is_negative r;
        z = r = 0;
        (* ARM C for subtraction = NOT borrow. *)
        c = not (Word32.borrow_of_sub a b ~borrow_in:borrow);
        v = Word32.overflow_of_sub a b r;
      } )
  in
  let finish_logical r =
    let r = Word32.mask r in
    let v, f = logical r in
    (Some v, { f with Cond.n = Word32.is_negative r; z = r = 0 })
  in
  let result, new_flags =
    match op with
    | AND -> finish_logical (Word32.logand rn_v op2_v)
    | EOR -> finish_logical (Word32.logxor rn_v op2_v)
    | ORR -> finish_logical (Word32.logor rn_v op2_v)
    | BIC -> finish_logical (Word32.logand rn_v (Word32.lognot op2_v))
    | MOV -> finish_logical op2_v
    | MVN -> finish_logical (Word32.lognot op2_v)
    | TST ->
      let r = Word32.logand rn_v op2_v in
      let _, f = finish_logical r in
      (None, f)
    | TEQ ->
      let r = Word32.logxor rn_v op2_v in
      let _, f = finish_logical r in
      (None, f)
    | ADD ->
      let r, f = add_like rn_v op2_v ~carry:false in
      (Some r, f)
    | ADC ->
      let r, f = add_like rn_v op2_v ~carry:carry_in in
      (Some r, f)
    | SUB ->
      let r, f = sub_like rn_v op2_v ~borrow:false in
      (Some r, f)
    | RSB ->
      let r, f = sub_like op2_v rn_v ~borrow:false in
      (Some r, f)
    | SBC ->
      let r, f = sub_like rn_v op2_v ~borrow:(not carry_in) in
      (Some r, f)
    | RSC ->
      let r, f = sub_like op2_v rn_v ~borrow:(not carry_in) in
      (Some r, f)
    | CMP ->
      let _, f = sub_like rn_v op2_v ~borrow:false in
      (None, f)
    | CMN ->
      let _, f = add_like rn_v op2_v ~carry:false in
      (None, f)
  in
  let sets_flags = s || Insn.dp_op_is_test op in
  (* Flag write order: an S-bit PC write restores CPSR instead. *)
  match result with
  | None ->
    Cpu.set_flags cpu new_flags;
    advance cpu
  | Some v ->
    if rd <> 15 && sets_flags then Cpu.set_flags cpu new_flags;
    write_dp_result cpu rd v ~s:sets_flags
      ~restore_cpsr:(Cpu.mode_is_privileged (Cpu.mode cpu) && Cpu.mode cpu <> Cpu.System)

let mem_width = function Insn.Word -> Mem.W32 | Insn.Byte -> Mem.W8 | Insn.Half -> Mem.W16

let mem_address cpu rn off index =
  let base = read_reg cpu rn in
  let off_v =
    match off with
    | Insn.Imm_off n -> Word32.of_signed n
    | Insn.Reg_off { rm; kind; amount; subtract } ->
      let v, _ =
        Insn.operand2_value
          (Insn.Reg_shift_imm { rm; kind; amount })
          (read_reg cpu) ~carry:false
      in
      if subtract then Word32.neg v else v
  in
  let effective = Word32.add base off_v in
  match index with
  | Insn.Offset -> (effective, None)
  | Insn.Pre_indexed -> (effective, Some effective)
  | Insn.Post_indexed -> (base, Some effective)

let exec_mem cpu (mem : Mem.iface) insn_op =
  let privileged = Cpu.mode_is_privileged (Cpu.mode cpu) in
  match insn_op with
  | Insn.Ldr { width; rd; rn; off; index } -> (
    let addr, writeback = mem_address cpu rn off index in
    match mem.load (mem_width width) ~privileged addr with
    | Error f -> data_abort cpu f
    | Ok v ->
      (match writeback with Some wb -> Cpu.set_reg cpu rn wb | None -> ());
      if rd = 15 then Cpu.set_pc cpu (Word32.logand v 0xFFFF_FFFC)
      else begin
        Cpu.set_reg cpu rd v;
        advance cpu
      end;
      Stepped)
  | Insn.Ldrs { half; rd; rn; off; index } -> (
    let addr, writeback = mem_address cpu rn off index in
    let width = if half then Mem.W16 else Mem.W8 in
    match mem.load width ~privileged addr with
    | Error f -> data_abort cpu f
    | Ok v ->
      (match writeback with Some wb -> Cpu.set_reg cpu rn wb | None -> ());
      Cpu.set_reg cpu rd
        (Word32.mask (Word32.sign_extend ~width:(if half then 16 else 8) v));
      advance cpu;
      Stepped)
  | Insn.Str { width; rd; rn; off; index } -> (
    let addr, writeback = mem_address cpu rn off index in
    let v = read_reg cpu rd in
    let v =
      match width with
      | Insn.Byte -> v land 0xFF
      | Insn.Half -> v land 0xFFFF
      | Insn.Word -> v
    in
    match mem.store (mem_width width) ~privileged addr v with
    | Error f -> data_abort cpu f
    | Ok () ->
      (match writeback with Some wb -> Cpu.set_reg cpu rn wb | None -> ());
      advance cpu;
      Stepped)
  | Insn.Ldm { kind; rn; writeback; regs } -> (
    let n = ref 0 in
    for r = 0 to 15 do
      if regs land (1 lsl r) <> 0 then incr n
    done;
    let base = read_reg cpu rn in
    let start =
      match kind with Insn.IA -> base | Insn.DB -> Word32.sub base (4 * !n)
    in
    try
      let addr = ref start in
      let loaded = Array.make 16 None in
      for r = 0 to 15 do
        if regs land (1 lsl r) <> 0 then begin
          (match mem.load Mem.W32 ~privileged !addr with
          | Ok v -> loaded.(r) <- Some v
          | Error f -> raise (Abort f));
          addr := Word32.add !addr 4
        end
      done;
      if writeback then
        Cpu.set_reg cpu rn
          (match kind with Insn.IA -> Word32.add base (4 * !n) | Insn.DB -> start);
      let branched = ref false in
      for r = 0 to 15 do
        match loaded.(r) with
        | Some v ->
          if r = 15 then begin
            Cpu.set_pc cpu (Word32.logand v 0xFFFF_FFFC);
            branched := true
          end
          else Cpu.set_reg cpu r v
        | None -> ()
      done;
      if not !branched then advance cpu;
      Stepped
    with Abort f -> data_abort cpu f)
  | Insn.Stm { kind; rn; writeback; regs } -> (
    let n = ref 0 in
    for r = 0 to 15 do
      if regs land (1 lsl r) <> 0 then incr n
    done;
    let base = read_reg cpu rn in
    let start =
      match kind with Insn.IA -> base | Insn.DB -> Word32.sub base (4 * !n)
    in
    try
      let addr = ref start in
      for r = 0 to 15 do
        if regs land (1 lsl r) <> 0 then begin
          (match mem.store Mem.W32 ~privileged !addr (read_reg cpu r) with
          | Ok () -> ()
          | Error f -> raise (Abort f));
          addr := Word32.add !addr 4
        end
      done;
      if writeback then
        Cpu.set_reg cpu rn
          (match kind with Insn.IA -> Word32.add base (4 * !n) | Insn.DB -> start);
      advance cpu;
      Stepped
    with Abort f -> data_abort cpu f)
  | Insn.Dp _ | Insn.Mul _ | Insn.Mull _ | Insn.Clz _ | Insn.B _ | Insn.Bx _
  | Insn.Movw _ | Insn.Movt _ | Insn.Mrs _ | Insn.Msr _ | Insn.Svc _ | Insn.Cps _
  | Insn.Mcr _ | Insn.Mrc _ | Insn.Vmsr _ | Insn.Vmrs _ | Insn.Nop | Insn.Udf _ ->
    assert false

(* cp15 register file: (crn, opc1, crm, opc2) dispatch. Unmodelled
   registers read as zero and ignore writes, like QEMU's permissive
   default for benign coprocessor accesses. *)
let cp15_write cpu (mem : Mem.iface) ~crn ~crm:_ ~opc1:_ ~opc2:_ v =
  match crn with
  | 1 -> Cpu.set_mmu_enabled cpu (Word32.bit v 0)
  | 2 -> Cpu.set_ttbr cpu v
  | 5 -> Cpu.set_dfsr cpu v
  | 6 -> Cpu.set_dfar cpu v
  | 7 -> () (* cache maintenance: structural nop *)
  | 8 ->
    Cpu.bump_tlb_flush cpu;
    mem.flush_tlb ()
  | _ -> ()

let cp15_read cpu ~crn ~crm:_ ~opc1:_ ~opc2:_ =
  match crn with
  | 1 -> if Cpu.mmu_enabled cpu then 1 else 0
  | 2 -> Cpu.get_ttbr cpu
  | 5 -> Cpu.get_dfsr cpu
  | 6 -> Cpu.get_dfar cpu
  | _ -> 0

let execute_insn cpu (mem : Mem.iface) ({ cond; op } : Insn.t) =
  if not (Cond.holds cond (Cpu.get_flags cpu)) then begin
    advance cpu;
    Stepped
  end
  else
    match op with
    | Insn.Dp { op = dpo; s; rd; rn; op2 } ->
      exec_dp cpu dpo ~s ~rd ~rn ~op2;
      Stepped
    | Insn.Mul { s; rd; rn; rm; acc } ->
      let v = Word32.mul (read_reg cpu rm) (read_reg cpu rn) in
      let v =
        match acc with Some ra -> Word32.add v (read_reg cpu ra) | None -> v
      in
      Cpu.set_reg cpu rd v;
      if s then
        (* MULS, like logical ops, is modelled host-aligned: C,V := 0. *)
        Cpu.set_flags cpu
          { Cond.n = Word32.is_negative v; z = v = 0; c = false; v = false };
      advance cpu;
      Stepped
    | Insn.Mull { signed; s; rdlo; rdhi; rn; rm } ->
      let to64 v =
        if signed then Int64.of_int (Word32.signed v)
        else Int64.of_int (v land 0xFFFFFFFF)
      in
      let product = Int64.mul (to64 (read_reg cpu rm)) (to64 (read_reg cpu rn)) in
      let lo = Int64.to_int (Int64.logand product 0xFFFFFFFFL) in
      let hi = Int64.to_int (Int64.logand (Int64.shift_right_logical product 32) 0xFFFFFFFFL) in
      Cpu.set_reg cpu rdlo lo;
      Cpu.set_reg cpu rdhi hi;
      if s then begin
        let f = Cpu.get_flags cpu in
        Cpu.set_flags cpu
          { f with Cond.n = Word32.is_negative hi; z = hi = 0 && lo = 0 }
      end;
      advance cpu;
      Stepped
    | Insn.Clz { rd; rm } ->
      let v = read_reg cpu rm in
      let rec count n bit = if bit < 0 then n else
        if v land (1 lsl bit) <> 0 then n else count (n + 1) (bit - 1)
      in
      Cpu.set_reg cpu rd (count 0 31);
      advance cpu;
      Stepped
    | Insn.Ldr _ | Insn.Ldrs _ | Insn.Str _ | Insn.Ldm _ | Insn.Stm _ ->
      exec_mem cpu mem op
    | Insn.B { link; offset } ->
      let pc = Cpu.get_pc cpu in
      if link then Cpu.set_reg cpu 14 (Word32.add pc 4);
      Cpu.set_pc cpu (Word32.add pc (Word32.of_signed ((offset * 4) + 8)));
      Stepped
    | Insn.Bx rm ->
      Cpu.set_pc cpu (Word32.logand (read_reg cpu rm) 0xFFFF_FFFC);
      Stepped
    | Insn.Movw { rd; imm16 } ->
      Cpu.set_reg cpu rd imm16;
      advance cpu;
      Stepped
    | Insn.Movt { rd; imm16 } ->
      Cpu.set_reg cpu rd
        (Word32.insert (Cpu.get_reg cpu rd) ~lo:16 ~len:16 imm16);
      advance cpu;
      Stepped
    | Insn.Mrs { rd; spsr } ->
      Cpu.set_reg cpu rd (if spsr then Cpu.get_spsr cpu else Cpu.get_cpsr cpu);
      advance cpu;
      Stepped
    | Insn.Msr { spsr; write_flags; write_control; rm } ->
      let v = read_reg cpu rm in
      let privileged = Cpu.mode_is_privileged (Cpu.mode cpu) in
      if spsr then begin
        if privileged then begin
          let cur = Cpu.get_spsr cpu in
          let cur = if write_flags then Word32.insert cur ~lo:28 ~len:4 (Word32.extract v ~lo:28 ~len:4) else cur in
          let cur = if write_control then Word32.insert cur ~lo:0 ~len:8 (Word32.extract v ~lo:0 ~len:8) else cur in
          Cpu.set_spsr cpu cur
        end
      end
      else begin
        if write_flags then Cpu.set_flags cpu (Cond.flags_of_word v);
        (* Unprivileged writes to the control bits are ignored, per the
           architecture. *)
        if write_control && privileged then begin
          let cur = Cpu.get_cpsr cpu in
          let nv = Word32.insert cur ~lo:0 ~len:8 (Word32.extract v ~lo:0 ~len:8) in
          Cpu.set_cpsr cpu nv
        end
      end;
      advance cpu;
      Stepped
    | Insn.Svc _ -> take cpu Cpu.Supervisor_call
    | Insn.Cps { disable } ->
      if Cpu.mode_is_privileged (Cpu.mode cpu) then Cpu.set_irq_masked cpu disable;
      advance cpu;
      Stepped
    | Insn.Mcr { opc1; rt; crn; crm; opc2 } ->
      if not (Cpu.mode_is_privileged (Cpu.mode cpu)) then take cpu Cpu.Undefined_insn
      else begin
        cp15_write cpu mem ~crn ~crm ~opc1 ~opc2 (read_reg cpu rt);
        advance cpu;
        Stepped
      end
    | Insn.Mrc { opc1; rt; crn; crm; opc2 } ->
      if not (Cpu.mode_is_privileged (Cpu.mode cpu)) then take cpu Cpu.Undefined_insn
      else begin
        let v = cp15_read cpu ~crn ~crm ~opc1 ~opc2 in
        if rt <> 15 then Cpu.set_reg cpu rt v;
        advance cpu;
        Stepped
      end
    | Insn.Vmsr { rt } ->
      Cpu.set_fpscr cpu (read_reg cpu rt);
      advance cpu;
      Stepped
    | Insn.Vmrs { rt } ->
      let v = Cpu.get_fpscr cpu in
      if rt = 15 then Cpu.set_flags cpu (Cond.flags_of_word v)
      else Cpu.set_reg cpu rt v;
      advance cpu;
      Stepped
    | Insn.Nop ->
      advance cpu;
      Stepped
    | Insn.Udf _ -> take cpu Cpu.Undefined_insn

let step cpu (mem : Mem.iface) ~irq =
  if irq && not (Cpu.irq_masked cpu) then take cpu Cpu.Irq
  else
    let privileged = Cpu.mode_is_privileged (Cpu.mode cpu) in
    match mem.fetch ~privileged (Cpu.get_pc cpu) with
    | Error _f -> take cpu Cpu.Prefetch_abort
    | Ok word -> (
      match Encode.decode word with
      | Error e -> Decode_error e
      | Ok insn -> execute_insn cpu mem insn)

let run cpu mem ~irq ~max_steps =
  let rec loop n =
    if n >= max_steps then n
    else
      match step cpu mem ~irq:(irq ()) with
      | Stepped | Took_exception _ -> loop (n + 1)
      | Decode_error _ -> n
  in
  loop 0
