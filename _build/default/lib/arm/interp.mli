(** Reference interpreter for the ARM subset.

    This is the architectural ground truth: the TCG baseline and the
    rule-based translator are both differentially tested against it,
    and the rule learner's symbolic verifier is cross-checked with it
    on concrete values. It implements full-system semantics — modes,
    exception entry, conditional execution, the PC+8 pipeline view —
    over an abstract {!Mem.iface}. *)

type step_result =
  | Stepped
      (** Instruction retired normally (including a failed condition). *)
  | Took_exception of Cpu.exn_kind
      (** An exception was taken; the CPU is already at the vector. *)
  | Decode_error of string
      (** Fetched word is outside the modelled subset (test aid; real
          guests never reach this because Udf decodes fine). *)

val step : Cpu.t -> Mem.iface -> irq:bool -> step_result
(** Execute one instruction at the current PC. [irq] is the level of
    the external interrupt line; it is taken (when unmasked) before
    fetching. *)

val execute_insn : Cpu.t -> Mem.iface -> Insn.t -> step_result
(** Execute an already-decoded instruction at the current PC (used by
    TB-level differential tests and by the symbolic verifier's
    concrete cross-check). Advances PC like {!step}. *)

val run : Cpu.t -> Mem.iface -> irq:(unit -> bool) -> max_steps:int -> int
(** Step until [max_steps] instructions have retired or a
    [Decode_error] occurs; returns the number of retired
    instructions. *)
