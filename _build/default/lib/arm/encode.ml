open Repro_common
open Insn

let encode_op2 = function
  | Imm { imm8; rot } ->
    if imm8 < 0 || imm8 > 0xFF || rot < 0 || rot > 15 then
      invalid_arg "encode: bad modified immediate";
    (1, (rot lsl 8) lor imm8)
  | Reg_shift_imm { rm; kind; amount } ->
    if amount < 0 || amount > 31 then invalid_arg "encode: shift amount";
    (0, (amount lsl 7) lor (shift_kind_code kind lsl 5) lor rm)
  | Reg_shift_reg { rm; kind; rs } ->
    (0, (rs lsl 8) lor (shift_kind_code kind lsl 5) lor 0x10 lor rm)

let encode_mem_bits off =
  (* Returns (imm_form, u_bit, offset_bits). *)
  match off with
  | Imm_off n ->
    let u = n >= 0 in
    let m = abs n in
    if m > 4095 then invalid_arg "encode: ldr/str immediate offset out of range";
    (true, u, m)
  | Reg_off { rm; kind; amount; subtract } ->
    if amount < 0 || amount > 31 then invalid_arg "encode: mem shift amount";
    (false, not subtract, (amount lsl 7) lor (shift_kind_code kind lsl 5) lor rm)

let encode ({ cond; op } : Insn.t) : Word32.t =
  let c = Cond.to_int cond lsl 28 in
  match op with
  | Dp { op = dpo; s; rd; rn; op2 } ->
    let i, shifter = encode_op2 op2 in
    let s_bit = if s || dp_op_is_test dpo then 1 else 0 in
    let rd_field = if dp_op_is_test dpo then 0 else rd in
    c
    lor (i lsl 25)
    lor (dp_op_code dpo lsl 21)
    lor (s_bit lsl 20)
    lor (rn lsl 16)
    lor (rd_field lsl 12)
    lor shifter
  | Mul { s; rd; rn; rm; acc } ->
    let a, ra = match acc with Some ra -> (1, ra) | None -> (0, 0) in
    c
    lor (a lsl 21)
    lor ((if s then 1 else 0) lsl 20)
    lor (rd lsl 16)
    lor (ra lsl 12)
    lor (rm lsl 8)
    lor 0x90
    lor rn
  | Mull { signed; s; rdlo; rdhi; rn; rm } ->
    c
    lor (1 lsl 23)
    lor ((if signed then 1 else 0) lsl 22)
    lor ((if s then 1 else 0) lsl 20)
    lor (rdhi lsl 16)
    lor (rdlo lsl 12)
    lor (rm lsl 8)
    lor 0x90
    lor rn
  | Clz { rd; rm } -> c lor 0x016F0F10 lor (rd lsl 12) lor rm
  | Ldrs { half; rd; rn; off; index } ->
    (* Miscellaneous loads, SH = 10 (ldrsb) / 11 (ldrsh), L = 1. *)
    let p, w =
      match index with Offset -> (1, 0) | Pre_indexed -> (1, 1) | Post_indexed -> (0, 0)
    in
    let imm_form, u, off_bits =
      match off with
      | Imm_off n ->
        let m = abs n in
        if m > 255 then invalid_arg "encode: ldrsb/ldrsh immediate offset out of range";
        (true, n >= 0, ((m lsr 4) lsl 8) lor (m land 0xF))
      | Reg_off { rm; kind; amount; subtract } ->
        if kind <> LSL || amount <> 0 then
          invalid_arg "encode: ldrsb/ldrsh register offset cannot be shifted";
        (false, not subtract, rm)
    in
    c
    lor (p lsl 24)
    lor ((if u then 1 else 0) lsl 23)
    lor ((if imm_form then 1 else 0) lsl 22)
    lor (w lsl 21)
    lor (1 lsl 20)
    lor (rn lsl 16)
    lor (rd lsl 12)
    lor (if half then 0xF0 else 0xD0)
    lor off_bits
  | Ldr { width = Half; rd; rn; off; index } | Str { width = Half; rd; rn; off; index }
    ->
    (* Miscellaneous loads/stores: bits 7:4 = 1011 (SH = 01, unsigned
       halfword), split-immediate or plain-register offset. *)
    let l = match op with Ldr _ -> 1 | _ -> 0 in
    let p, w =
      match index with Offset -> (1, 0) | Pre_indexed -> (1, 1) | Post_indexed -> (0, 0)
    in
    let imm_form, u, off_bits =
      match off with
      | Imm_off n ->
        let m = abs n in
        if m > 255 then invalid_arg "encode: ldrh/strh immediate offset out of range";
        (true, n >= 0, ((m lsr 4) lsl 8) lor (m land 0xF))
      | Reg_off { rm; kind; amount; subtract } ->
        if kind <> LSL || amount <> 0 then
          invalid_arg "encode: ldrh/strh register offset cannot be shifted";
        (false, not subtract, rm)
    in
    c
    lor (p lsl 24)
    lor ((if u then 1 else 0) lsl 23)
    lor ((if imm_form then 1 else 0) lsl 22)
    lor (w lsl 21)
    lor (l lsl 20)
    lor (rn lsl 16)
    lor (rd lsl 12)
    lor 0xB0
    lor off_bits
  | Ldr { width; rd; rn; off; index } | Str { width; rd; rn; off; index } ->
    let l = match op with Ldr _ -> 1 | _ -> 0 in
    let b = match width with Byte -> 1 | Word | Half -> 0 in
    let p, w =
      match index with Offset -> (1, 0) | Pre_indexed -> (1, 1) | Post_indexed -> (0, 0)
    in
    let imm_form, u, off_bits = encode_mem_bits off in
    let i = if imm_form then 0 else 1 in
    c
    lor (1 lsl 26)
    lor (i lsl 25)
    lor (p lsl 24)
    lor ((if u then 1 else 0) lsl 23)
    lor (b lsl 22)
    lor (w lsl 21)
    lor (l lsl 20)
    lor (rn lsl 16)
    lor (rd lsl 12)
    lor off_bits
  | Ldm { kind; rn; writeback; regs } | Stm { kind; rn; writeback; regs } ->
    let l = match op with Ldm _ -> 1 | _ -> 0 in
    let p, u = match kind with IA -> (0, 1) | DB -> (1, 0) in
    if regs land lnot 0xFFFF <> 0 then invalid_arg "encode: ldm/stm register list";
    c
    lor (1 lsl 27)
    lor (p lsl 24)
    lor (u lsl 23)
    lor ((if writeback then 1 else 0) lsl 21)
    lor (l lsl 20)
    lor (rn lsl 16)
    lor regs
  | B { link; offset } ->
    if offset < -0x800000 || offset > 0x7FFFFF then invalid_arg "encode: branch range";
    c lor (5 lsl 25) lor ((if link then 1 else 0) lsl 24) lor (offset land 0xFFFFFF)
  | Bx rm -> c lor 0x012FFF10 lor rm
  | Movw { rd; imm16 } ->
    if imm16 < 0 || imm16 > 0xFFFF then invalid_arg "encode: movw immediate";
    c lor 0x03000000 lor ((imm16 lsr 12) lsl 16) lor (rd lsl 12) lor (imm16 land 0xFFF)
  | Movt { rd; imm16 } ->
    if imm16 < 0 || imm16 > 0xFFFF then invalid_arg "encode: movt immediate";
    c lor 0x03400000 lor ((imm16 lsr 12) lsl 16) lor (rd lsl 12) lor (imm16 land 0xFFF)
  | Mrs { rd; spsr } -> c lor 0x010F0000 lor ((if spsr then 1 else 0) lsl 22) lor (rd lsl 12)
  | Msr { spsr; write_flags; write_control; rm } ->
    let mask = (if write_flags then 8 else 0) lor if write_control then 1 else 0 in
    c lor 0x0120F000 lor ((if spsr then 1 else 0) lsl 22) lor (mask lsl 16) lor rm
  | Svc imm ->
    if imm < 0 || imm > 0xFFFFFF then invalid_arg "encode: svc immediate";
    c lor 0x0F000000 lor imm
  | Cps { disable } ->
    (* Unconditional encoding; only the I bit is modelled. *)
    if disable then 0xF10C0080 else 0xF1080080
  | Mcr { opc1; rt; crn; crm; opc2 } ->
    c
    lor 0x0E000F10
    lor (opc1 lsl 21)
    lor (crn lsl 16)
    lor (rt lsl 12)
    lor (opc2 lsl 5)
    lor crm
  | Mrc { opc1; rt; crn; crm; opc2 } ->
    c
    lor 0x0E100F10
    lor (opc1 lsl 21)
    lor (crn lsl 16)
    lor (rt lsl 12)
    lor (opc2 lsl 5)
    lor crm
  | Vmsr { rt } -> c lor 0x0EE10A10 lor (rt lsl 12)
  | Vmrs { rt } -> c lor 0x0EF10A10 lor (rt lsl 12)
  | Nop -> c lor 0x0320F000
  | Udf imm ->
    if imm < 0 || imm > 0xFFFF then invalid_arg "encode: udf immediate";
    c lor 0x07F000F0 lor ((imm lsr 4) lsl 8) lor (imm land 0xF)

let field w lo len = Word32.extract w ~lo ~len

let decode_op2 w ~imm_form =
  if imm_form then Ok (Imm { imm8 = field w 0 8; rot = field w 8 4 })
  else
    let rm = field w 0 4 in
    let kind = shift_kind_of_code (field w 5 2) in
    if field w 4 1 = 0 then Ok (Reg_shift_imm { rm; kind; amount = field w 7 5 })
    else if field w 7 1 = 0 then Ok (Reg_shift_reg { rm; kind; rs = field w 8 4 })
    else Error "bad register-shift form"

let decode (w : Word32.t) : (Insn.t, string) result =
  let ( let* ) = Result.bind in
  let cond_bits = field w 28 4 in
  if cond_bits = 0xF then
    (* Unconditional space: only CPS is modelled. *)
    if w = 0xF10C0080 then Ok (make (Cps { disable = true }))
    else if w = 0xF1080080 then Ok (make (Cps { disable = false }))
    else Error (Printf.sprintf "unconditional space: %s" (Word32.to_hex w))
  else
    match Cond.of_int cond_bits with
    | None -> Error "bad condition"
    | Some cond -> (
      let mk op = Ok { cond; op } in
      let op_class = field w 25 3 in
      match op_class with
      | 0 | 1 -> (
        (* Data processing & miscellaneous. *)
        if op_class = 0 && field w 4 4 = 0x9 && field w 22 6 = 0 then
          (* Multiply: bits 27:22 = 0, bits 7:4 = 1001. *)
          let a = field w 21 1 = 1 in
          let s = field w 20 1 = 1 in
          mk
            (Mul
               {
                 s;
                 rd = field w 16 4;
                 rn = field w 0 4;
                 rm = field w 8 4;
                 acc = (if a then Some (field w 12 4) else None);
               })
        else if op_class = 0 && field w 4 4 = 0x9 && field w 23 5 = 1 && field w 21 1 = 0
        then
          (* Long multiply: bits 27:23 = 00001, A = 0, bits 7:4 = 1001. *)
          mk
            (Mull
               {
                 signed = field w 22 1 = 1;
                 s = field w 20 1 = 1;
                 rdhi = field w 16 4;
                 rdlo = field w 12 4;
                 rm = field w 8 4;
                 rn = field w 0 4;
               })
        else if w land 0x0FFFFFF0 = 0x012FFF10 then mk (Bx (field w 0 4))
        else if w land 0x0FBF0FFF = 0x010F0000 then
          mk (Mrs { rd = field w 12 4; spsr = field w 22 1 = 1 })
        else if w land 0x0FB0FFF0 = 0x0120F000 then
          let mask = field w 16 4 in
          mk
            (Msr
               {
                 spsr = field w 22 1 = 1;
                 write_flags = mask land 8 <> 0;
                 write_control = mask land 1 <> 0;
                 rm = field w 0 4;
               })
        else if w land 0x0FF00000 = 0x03000000 then
          mk (Movw { rd = field w 12 4; imm16 = (field w 16 4 lsl 12) lor field w 0 12 })
        else if w land 0x0FF00000 = 0x03400000 then
          mk (Movt { rd = field w 12 4; imm16 = (field w 16 4 lsl 12) lor field w 0 12 })
        else if w land 0x0FFFFFFF = 0x0320F000 then mk Nop
        else if w land 0x0FFF0FF0 = 0x016F0F10 then
          mk (Clz { rd = field w 12 4; rm = field w 0 4 })
        else if op_class = 0 && field w 4 1 = 1 && field w 7 1 = 1 && field w 5 2 <> 0
        then
          (* Miscellaneous loads/stores: bits 7:4 = 1SH1. *)
          let sh = field w 5 2 in
          let l = field w 20 1 = 1 in
          let p = field w 24 1 = 1 in
          let u = field w 23 1 = 1 in
          let imm_form = field w 22 1 = 1 in
          let wb = field w 21 1 = 1 in
          let rn = field w 16 4 in
          let rd = field w 12 4 in
          let* off =
            if imm_form then
              let m = (field w 8 4 lsl 4) lor field w 0 4 in
              Ok (Imm_off (if u then m else -m))
            else if field w 8 4 <> 0 then Error "misc transfer: SBZ bits set"
            else
              Ok
                (Reg_off
                   { rm = field w 0 4; kind = LSL; amount = 0; subtract = not u })
          in
          let index =
            if not p then Post_indexed else if wb then Pre_indexed else Offset
          in
          match (sh, l) with
          | 1, true -> mk (Ldr { width = Half; rd; rn; off; index })
          | 1, false -> mk (Str { width = Half; rd; rn; off; index })
          | 2, true -> mk (Ldrs { half = false; rd; rn; off; index })
          | 3, true -> mk (Ldrs { half = true; rd; rn; off; index })
          | _ -> Error "ldrd/strd not modelled"
        else
          let code = field w 21 4 in
          let dpo = dp_op_of_code code in
          let s = field w 20 1 = 1 in
          if dp_op_is_test dpo && not s then Error "test op without S bit"
          else
            let* op2 = decode_op2 w ~imm_form:(op_class = 1) in
            let rd = if dp_op_is_test dpo then 0 else field w 12 4 in
            mk (Dp { op = dpo; s = s && not (dp_op_is_test dpo); rd; rn = field w 16 4; op2 }))
      | 2 | 3 ->
        if op_class = 3 && field w 4 1 = 1 then
          if w land 0x0FF000F0 = 0x07F000F0 then
            mk (Udf ((field w 8 12 lsl 4) lor field w 0 4))
          else Error "media instruction space"
        else
          let l = field w 20 1 = 1 in
          let p = field w 24 1 = 1 in
          let u = field w 23 1 = 1 in
          let b = field w 22 1 = 1 in
          let wb = field w 21 1 = 1 in
          let rn = field w 16 4 in
          let rd = field w 12 4 in
          let width = if b then Byte else Word in
          let* off =
            if op_class = 2 then
              let m = field w 0 12 in
              Ok (Imm_off (if u then m else -m))
            else
              let rm = field w 0 4 in
              let kind = shift_kind_of_code (field w 5 2) in
              Ok (Reg_off { rm; kind; amount = field w 7 5; subtract = not u })
          in
          let index =
            if not p then Post_indexed else if wb then Pre_indexed else Offset
          in
          if l then mk (Ldr { width; rd; rn; off; index })
          else mk (Str { width; rd; rn; off; index })
      | 4 ->
        let p = field w 24 1 = 1 in
        let u = field w 23 1 = 1 in
        let* kind =
          match (p, u) with
          | false, true -> Ok IA
          | true, false -> Ok DB
          | _ -> Error "ldm/stm addressing mode not modelled"
        in
        let writeback = field w 21 1 = 1 in
        let rn = field w 16 4 in
        let regs = field w 0 16 in
        if field w 20 1 = 1 then mk (Ldm { kind; rn; writeback; regs })
        else mk (Stm { kind; rn; writeback; regs })
      | 5 ->
        let link = field w 24 1 = 1 in
        let offset = Word32.signed (Word32.sign_extend ~width:24 (field w 0 24)) in
        mk (B { link; offset })
      | 7 -> (
        if field w 24 1 = 1 then mk (Svc (field w 0 24))
        else if w land 0x0FFF0FFF = 0x0EE10A10 then mk (Vmsr { rt = field w 12 4 })
        else if w land 0x0FFF0FFF = 0x0EF10A10 then mk (Vmrs { rt = field w 12 4 })
        else if field w 4 1 = 1 && field w 8 4 = 0xF then
          let opc1 = field w 21 3
          and rt = field w 12 4
          and crn = field w 16 4
          and crm = field w 0 4
          and opc2 = field w 5 3 in
          if field w 20 1 = 1 then mk (Mrc { opc1; rt; crn; crm; opc2 })
          else mk (Mcr { opc1; rt; crn; crm; opc2 })
        else Error "coprocessor space")
      | 6 -> Error "coprocessor load/store space"
      | _ -> Error (Printf.sprintf "unhandled class %d" op_class))
