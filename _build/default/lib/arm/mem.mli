(** The memory interface the interpreter (and, via the softMMU, both
    DBT engines) sees, together with the guest-visible fault record. *)

open Repro_common

type access = Fetch | Load | Store

type fault_kind =
  | Translation  (** no valid mapping (page fault) *)
  | Permission   (** mapped but not accessible at this privilege *)
  | Alignment
  | Bus          (** physical address outside RAM and devices *)

type fault = { vaddr : Word32.t; access : access; kind : fault_kind }

val pp_fault : Format.formatter -> fault -> unit

type width = W8 | W16 | W32

type iface = {
  load : width -> privileged:bool -> Word32.t -> (Word32.t, fault) result;
  store : width -> privileged:bool -> Word32.t -> Word32.t -> (unit, fault) result;
  fetch : privileged:bool -> Word32.t -> (Word32.t, fault) result;
  flush_tlb : unit -> unit;
      (** Invoked on cp15 c8 TLB-maintenance writes. *)
}

val flat : size:int -> Bytes.t * iface
(** A bare flat physical memory of [size] bytes with no translation —
    enough for user-level interpreter tests. Returns the backing store
    and the interface. Word accesses must be 4-aligned. *)
