open Repro_common

type access = Fetch | Load | Store
type fault_kind = Translation | Permission | Alignment | Bus
type fault = { vaddr : Word32.t; access : access; kind : fault_kind }

let pp_fault ppf { vaddr; access; kind } =
  Format.fprintf ppf "%s fault (%s) at %a"
    (match kind with
    | Translation -> "translation"
    | Permission -> "permission"
    | Alignment -> "alignment"
    | Bus -> "bus")
    (match access with Fetch -> "fetch" | Load -> "load" | Store -> "store")
    Word32.pp vaddr

type width = W8 | W16 | W32

type iface = {
  load : width -> privileged:bool -> Word32.t -> (Word32.t, fault) result;
  store : width -> privileged:bool -> Word32.t -> Word32.t -> (unit, fault) result;
  fetch : privileged:bool -> Word32.t -> (Word32.t, fault) result;
  flush_tlb : unit -> unit;
}

let flat ~size =
  let buf = Bytes.make size '\000' in
  let in_range addr n = addr >= 0 && addr + n <= size in
  let read32 addr =
    Char.code (Bytes.get buf addr)
    lor (Char.code (Bytes.get buf (addr + 1)) lsl 8)
    lor (Char.code (Bytes.get buf (addr + 2)) lsl 16)
    lor (Char.code (Bytes.get buf (addr + 3)) lsl 24)
  in
  let write32 addr v =
    Bytes.set buf addr (Char.chr (v land 0xFF));
    Bytes.set buf (addr + 1) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set buf (addr + 2) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set buf (addr + 3) (Char.chr ((v lsr 24) land 0xFF))
  in
  let read16 addr =
    Char.code (Bytes.get buf addr) lor (Char.code (Bytes.get buf (addr + 1)) lsl 8)
  in
  let write16 addr v =
    Bytes.set buf addr (Char.chr (v land 0xFF));
    Bytes.set buf (addr + 1) (Char.chr ((v lsr 8) land 0xFF))
  in
  let load width ~privileged:_ vaddr =
    match width with
    | W8 ->
      if in_range vaddr 1 then Ok (Char.code (Bytes.get buf vaddr))
      else Error { vaddr; access = Load; kind = Bus }
    | W16 ->
      if vaddr land 1 <> 0 then Error { vaddr; access = Load; kind = Alignment }
      else if in_range vaddr 2 then Ok (read16 vaddr)
      else Error { vaddr; access = Load; kind = Bus }
    | W32 ->
      if vaddr land 3 <> 0 then Error { vaddr; access = Load; kind = Alignment }
      else if in_range vaddr 4 then Ok (read32 vaddr)
      else Error { vaddr; access = Load; kind = Bus }
  in
  let store width ~privileged:_ vaddr v =
    match width with
    | W8 ->
      if in_range vaddr 1 then Ok (Bytes.set buf vaddr (Char.chr (v land 0xFF)))
      else Error { vaddr; access = Store; kind = Bus }
    | W16 ->
      if vaddr land 1 <> 0 then Error { vaddr; access = Store; kind = Alignment }
      else if in_range vaddr 2 then Ok (write16 vaddr (v land 0xFFFF))
      else Error { vaddr; access = Store; kind = Bus }
    | W32 ->
      if vaddr land 3 <> 0 then Error { vaddr; access = Store; kind = Alignment }
      else if in_range vaddr 4 then Ok (write32 vaddr v)
      else Error { vaddr; access = Store; kind = Bus }
  in
  let fetch ~privileged:_ vaddr =
    if vaddr land 3 <> 0 then Error { vaddr; access = Fetch; kind = Alignment }
    else if in_range vaddr 4 then Ok (read32 vaddr)
    else Error { vaddr; access = Fetch; kind = Bus }
  in
  (buf, { load; store; fetch; flush_tlb = (fun () -> ()) })
