lib/arm/interp.mli: Cpu Insn Mem
