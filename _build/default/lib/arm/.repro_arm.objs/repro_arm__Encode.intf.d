lib/arm/encode.mli: Insn Repro_common
