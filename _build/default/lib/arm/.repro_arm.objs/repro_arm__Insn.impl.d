lib/arm/insn.ml: Cond Format Printf Repro_common Word32
