lib/arm/cpu.mli: Cond Format Repro_common Word32
