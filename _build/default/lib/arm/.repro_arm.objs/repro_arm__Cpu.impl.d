lib/arm/cpu.ml: Array Cond Format Repro_common Word32
