lib/arm/asm.mli: Cond Insn Repro_common Word32
