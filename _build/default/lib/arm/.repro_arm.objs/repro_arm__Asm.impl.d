lib/arm/asm.ml: Array Cond Encode Hashtbl Insn List Repro_common Word32
