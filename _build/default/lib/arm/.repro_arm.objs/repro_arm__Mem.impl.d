lib/arm/mem.ml: Bytes Char Format Repro_common Word32
