lib/arm/interp.ml: Array Cond Cpu Encode Insn Int64 Mem Repro_common Word32
