lib/arm/cond.ml: Format Repro_common Word32
