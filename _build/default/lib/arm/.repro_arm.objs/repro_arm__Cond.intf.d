lib/arm/cond.mli: Format Repro_common
