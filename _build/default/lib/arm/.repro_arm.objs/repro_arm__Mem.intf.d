lib/arm/mem.mli: Bytes Format Repro_common Word32
