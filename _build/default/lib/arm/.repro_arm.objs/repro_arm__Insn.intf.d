lib/arm/insn.mli: Cond Format
