lib/arm/encode.ml: Cond Insn Printf Repro_common Result Word32
