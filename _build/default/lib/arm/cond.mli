(** ARM condition codes and their evaluation over the NZCV flags. *)

type t =
  | EQ  (** Z set *)
  | NE  (** Z clear *)
  | CS  (** C set (unsigned >=) *)
  | CC  (** C clear (unsigned <) *)
  | MI  (** N set *)
  | PL  (** N clear *)
  | VS  (** V set *)
  | VC  (** V clear *)
  | HI  (** C set and Z clear (unsigned >) *)
  | LS  (** C clear or Z set (unsigned <=) *)
  | GE  (** N = V *)
  | LT  (** N <> V *)
  | GT  (** Z clear and N = V *)
  | LE  (** Z set or N <> V *)
  | AL  (** always *)

type flags = { n : bool; z : bool; c : bool; v : bool }
(** The NZCV condition-code register contents. *)

val holds : t -> flags -> bool
(** Whether the condition passes under the given flags. *)

val negate : t -> t
(** Logical negation; [negate AL] is [AL] (callers must not negate an
    unconditional instruction — asserted). *)

val to_int : t -> int
(** The 4-bit encoding (AL = 14). *)

val of_int : int -> t option
(** Inverse of {!to_int}; [None] for 15 (the unconditional space). *)

val to_string : t -> string
(** Lower-case suffix; [""] for AL. *)

val pp : Format.formatter -> t -> unit

val all : t list
(** Every condition, in encoding order. *)

val flags_to_word : flags -> Repro_common.Word32.t
(** Pack as NZCV in bits 31..28 (CPSR layout). *)

val flags_of_word : Repro_common.Word32.t -> flags
val pp_flags : Format.formatter -> flags -> unit
val equal_flags : flags -> flags -> bool
