type t = EQ | NE | CS | CC | MI | PL | VS | VC | HI | LS | GE | LT | GT | LE | AL

type flags = { n : bool; z : bool; c : bool; v : bool }

let holds t { n; z; c; v } =
  match t with
  | EQ -> z
  | NE -> not z
  | CS -> c
  | CC -> not c
  | MI -> n
  | PL -> not n
  | VS -> v
  | VC -> not v
  | HI -> c && not z
  | LS -> (not c) || z
  | GE -> n = v
  | LT -> n <> v
  | GT -> (not z) && n = v
  | LE -> z || n <> v
  | AL -> true

let negate = function
  | EQ -> NE
  | NE -> EQ
  | CS -> CC
  | CC -> CS
  | MI -> PL
  | PL -> MI
  | VS -> VC
  | VC -> VS
  | HI -> LS
  | LS -> HI
  | GE -> LT
  | LT -> GE
  | GT -> LE
  | LE -> GT
  | AL -> assert false

let to_int = function
  | EQ -> 0
  | NE -> 1
  | CS -> 2
  | CC -> 3
  | MI -> 4
  | PL -> 5
  | VS -> 6
  | VC -> 7
  | HI -> 8
  | LS -> 9
  | GE -> 10
  | LT -> 11
  | GT -> 12
  | LE -> 13
  | AL -> 14

let of_int = function
  | 0 -> Some EQ
  | 1 -> Some NE
  | 2 -> Some CS
  | 3 -> Some CC
  | 4 -> Some MI
  | 5 -> Some PL
  | 6 -> Some VS
  | 7 -> Some VC
  | 8 -> Some HI
  | 9 -> Some LS
  | 10 -> Some GE
  | 11 -> Some LT
  | 12 -> Some GT
  | 13 -> Some LE
  | 14 -> Some AL
  | _ -> None

let to_string = function
  | EQ -> "eq"
  | NE -> "ne"
  | CS -> "cs"
  | CC -> "cc"
  | MI -> "mi"
  | PL -> "pl"
  | VS -> "vs"
  | VC -> "vc"
  | HI -> "hi"
  | LS -> "ls"
  | GE -> "ge"
  | LT -> "lt"
  | GT -> "gt"
  | LE -> "le"
  | AL -> ""

let pp ppf t = Format.pp_print_string ppf (to_string t)
let all = [ EQ; NE; CS; CC; MI; PL; VS; VC; HI; LS; GE; LT; GT; LE; AL ]

open Repro_common

let flags_to_word { n; z; c; v } =
  let b cond bit = if cond then 1 lsl bit else 0 in
  b n 31 lor b z 30 lor b c 29 lor b v 28

let flags_of_word w =
  { n = Word32.bit w 31; z = Word32.bit w 30; c = Word32.bit w 29; v = Word32.bit w 28 }

let pp_flags ppf { n; z; c; v } =
  let ch b l = if b then l else '.' in
  Format.fprintf ppf "%c%c%c%c" (ch n 'N') (ch z 'Z') (ch c 'C') (ch v 'V')

let equal_flags a b = a = b
