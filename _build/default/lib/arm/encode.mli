(** A32 binary encoding of {!Insn.t}.

    [decode (encode i) = Ok i] for every representable instruction —
    checked by property tests. *)

val encode : Insn.t -> Repro_common.Word32.t
(** Raises [Invalid_argument] on unencodable operands (e.g. an
    immediate offset out of range) — the assembler never produces
    those. *)

val decode : Repro_common.Word32.t -> (Insn.t, string) result
(** Decode one instruction word; [Error] describes the undecodable
    bit pattern. *)
