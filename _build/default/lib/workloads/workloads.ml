open Repro_common
module A = Repro_arm.Insn
module Asm = Repro_arm.Asm
module Cond = Repro_arm.Cond
module Kernel = Repro_kernel.Kernel

type spec = { name : string; sys_rate : float; mem_rate : float; check_rate : float }

(* Paper Table I. *)
let cint2006 =
  [
    { name = "perlbench"; sys_rate = 0.0028; mem_rate = 0.3694; check_rate = 0.1964 };
    { name = "bzip2"; sys_rate = 0.0028; mem_rate = 0.4003; check_rate = 0.1424 };
    { name = "gcc"; sys_rate = 0.0248; mem_rate = 0.2990; check_rate = 0.2011 };
    { name = "mcf"; sys_rate = 0.0045; mem_rate = 0.4119; check_rate = 0.2053 };
    { name = "gobmk"; sys_rate = 0.0025; mem_rate = 0.3058; check_rate = 0.1753 };
    { name = "hmmer"; sys_rate = 0.0009; mem_rate = 0.4798; check_rate = 0.0518 };
    { name = "sjeng"; sys_rate = 0.0017; mem_rate = 0.3386; check_rate = 0.1784 };
    { name = "libquantum"; sys_rate = 0.0009; mem_rate = 0.2336; check_rate = 0.0919 };
    { name = "h264ref"; sys_rate = 0.0013; mem_rate = 0.5521; check_rate = 0.0915 };
    { name = "omnetpp"; sys_rate = 0.0024; mem_rate = 0.2254; check_rate = 0.2202 };
    { name = "astar"; sys_rate = 0.0024; mem_rate = 0.3142; check_rate = 0.1592 };
    { name = "xalancbmk"; sys_rate = 0.0034; mem_rate = 0.2381; check_rate = 0.2594 };
  ]

let find name = List.find (fun s -> s.name = name) cint2006

(* Register conventions inside generated user code:
   r4  outer-loop counter (never clobbered by the mix)
   r6  data base #0, r8 data base #1
   sp  user stack
   mix targets: r0-r3, r5, r7, and rarely r9-r12 (unpinned → fallback) *)

let alu_targets = [| 0; 1; 2; 3; 5; 7 |]
let blocks_per_program = 24

let block_len spec = max 3 (int_of_float (Float.round (1.0 /. spec.check_rate)))
let insns_per_iteration spec = (blocks_per_program * block_len spec) + 3

let emit_alu a prng =
  (* one computational instruction (sometimes a cmp+conditional pair,
     counted by the caller via return value) *)
  let rt () = Prng.pick prng alu_targets in
  let rare_unpinned () = if Prng.chance prng 0.02 then 9 + Prng.int prng 4 else rt () in
  let rd = rare_unpinned () and rn = rt () and rm = rt () in
  let s = Prng.chance prng 0.18 in
  let choice = Prng.int prng 100 in
  if choice < 42 then begin
    (* three-operand ALU, register or immediate *)
    let op = Prng.pick prng [| A.ADD; A.SUB; A.AND; A.ORR; A.EOR |] in
    let op2 =
      if Prng.bool prng then A.imm_operand_exn (Prng.int prng 256)
      else A.Reg_shift_imm { rm; kind = A.LSL; amount = 0 }
    in
    Asm.emit a (A.make (A.Dp { op; s; rd; rn; op2 }));
    1
  end
  else if choice < 52 then begin
    (* shifted operand *)
    let op = Prng.pick prng [| A.ADD; A.SUB; A.EOR |] in
    let kind = Prng.pick prng [| A.LSL; A.LSR; A.ASR |] in
    Asm.emit a
      (A.make
         (A.Dp { op; s; rd; rn; op2 = A.Reg_shift_imm { rm; kind; amount = 1 + Prng.int prng 15 } }));
    1
  end
  else if choice < 62 then begin
    Asm.mov a rd (Prng.int prng 256);
    1
  end
  else if choice < 70 then begin
    Asm.emit a (A.make (A.Movw { rd; imm16 = Prng.int prng 0x10000 }));
    1
  end
  else if choice < 76 then begin
    let rm' = rt () in
    let rd = if rd = rm' then (rd + 1) mod 6 |> Array.get alu_targets else rd in
    Asm.mul a rd rm' rn;
    1
  end
  else if choice < 88 then begin
    (* compare + conditional ALU; sometimes with an independent load
       in between — the define-before-use scheduling scenario of the
       paper's Fig. 12 *)
    Asm.cmp a rn (Prng.int prng 64);
    let extra =
      if Prng.chance prng 0.45 then begin
        let base = if Prng.bool prng then 6 else 8 in
        let dst = Prng.pick prng alu_targets in
        let dst = if dst = rn then (dst + 1) mod 8 else dst in
        let dst = if dst = rn || dst = 4 || dst = 6 then 5 else dst in
        Asm.ldr a dst base (4 * Prng.int prng 1024);
        1
      end
      else 0
    in
    let cond = Prng.pick prng [| Cond.EQ; Cond.NE; Cond.GE; Cond.LT; Cond.HI; Cond.LS |] in
    let rd = if rd = rn then 7 else rd in
    Asm.add a ~cond rd rd (Prng.int prng 16);
    2 + extra
  end
  else if choice < 94 then begin
    Asm.emit a
      (A.make
         (A.Dp { op = A.MVN; s = false; rd; rn = 0;
                 op2 = A.Reg_shift_imm { rm; kind = A.LSL; amount = 0 } }));
    1
  end
  else if choice < 98 then begin
    (* adc after adds: carry-chain idiom *)
    Asm.add a ~s:true rd rn (Prng.int prng 128);
    Asm.emit a
      (A.make
         (A.Dp { op = A.ADC; s = true; rd = rt (); rn = rd; op2 = A.imm_operand_exn 0 }));
    2
  end
  else begin
    (* 64-bit product (fallback path in the rule engine) *)
    let lo = rt () in
    let hi = if lo = 7 then 5 else 7 in
    if Prng.bool prng then Asm.umull a lo hi rn rm else Asm.smull a lo hi rn rm;
    1
  end

let emit_mem a prng =
  let base = if Prng.bool prng then 6 else 8 in
  let rt = Prng.pick prng alu_targets in
  let c = Prng.int prng 100 in
  (if c < 70 then begin
     (* word accesses dominate compiled code *)
     let off = 4 * Prng.int prng 1024 in
     if Prng.bool prng then Asm.ldr a rt base off else Asm.str a rt base off
   end
   else if c < 82 then begin
     let off = 2 * Prng.int prng 127 in
     if Prng.bool prng then Asm.ldr a ~width:A.Half rt base off
     else Asm.str a ~width:A.Half rt base off
   end
   else if c < 92 then begin
     let off = Prng.int prng 256 in
     if Prng.bool prng then Asm.ldr a ~width:A.Byte rt base off
     else Asm.str a ~width:A.Byte rt base off
   end
   else begin
     (* sign-extending loads (string/array code) *)
     let half = Prng.bool prng in
     let off = if half then 2 * Prng.int prng 127 else Prng.int prng 255 in
     Asm.ldrs a ~half rt base off
   end);
  1

(* A system-level instruction; with [gate_mask] > 0 it is executed
   only when the outer-loop counter r4 has the masked bits zero, so a
   single static instruction can model the sub-percent dynamic rates
   of Table I. *)
let emit_sys ?(gate_mask = 0) a prng =
  let cond = if gate_mask > 0 then Cond.EQ else Cond.AL in
  if gate_mask > 0 then Asm.tst a 4 gate_mask;
  let gate_insns = if gate_mask > 0 then 1 else 0 in
  gate_insns
  +
  let c = Prng.int prng 100 in
  if c < 35 then begin
    Asm.emit a (A.make ~cond (A.Vmrs { rt = 0 }));
    1
  end
  else if c < 65 then begin
    Asm.emit a (A.make ~cond (A.Vmsr { rt = 1 }));
    1
  end
  else if c < 85 then begin
    Asm.emit a (A.make ~cond (A.Mrs { rd = 3; spsr = false }));
    1
  end
  else begin
    (* kernel round trip *)
    Asm.mov a 7 Kernel.sys_yield;
    Asm.emit a { A.cond; op = A.Svc 0 };
    2
  end

(* Deterministic quota allocation: the static programs are small, so
   per-slot sampling would under-represent rare categories (the
   0.1-2.5% system-instruction rates). Each block gets an exact memory
   quota; system instructions are spread across blocks from a
   program-wide quota carried in [sys_budget]. Rates are compensated
   for the 2-instruction block epilogue, which is never drawn from. *)
let emit_block a prng spec ~sys_budget ~next_label =
  let len = block_len spec in
  (* last two slots: cmp + conditional branch to the next block *)
  let body = len - 2 in
  let comp r = r *. float_of_int len /. float_of_int body in
  let mem_quota =
    let exact = comp spec.mem_rate *. float_of_int body in
    int_of_float exact + (if Prng.chance prng (Float.rem exact 1.0) then 1 else 0)
  in
  (* integral part of the budget: ungated placements; a fractional
     remainder becomes one gated placement (executed every 2^k-th
     iteration) in the block that wins the draw *)
  let sys_here, sys_gate =
    if !sys_budget >= 1. then begin
      sys_budget := !sys_budget -. 1.;
      (1, 0)
    end
    else if !sys_budget > 0. && Prng.chance prng 0.15 then begin
      let frac = !sys_budget in
      sys_budget := 0.;
      let mask = max 1 (min 255 (int_of_float (Float.round (1. /. frac)) - 1)) in
      (* round the gate to (2^k - 1) so tst tests contiguous bits *)
      let rec pow2m1 m = if m >= mask then m else pow2m1 ((2 * m) + 1) in
      (1, pow2m1 1)
    end
    else (0, 0)
  in
  let emitted = ref 0 in
  let mem_left = ref mem_quota and sys_left = ref sys_here in
  while !emitted < body do
    let slots_left = body - !emitted in
    let n =
      if !sys_left > 0 && slots_left <= !sys_left + !mem_left + sys_gate then begin
        decr sys_left;
        emit_sys ~gate_mask:sys_gate a prng
      end
      else if !mem_left > 0 && (slots_left <= !mem_left || Prng.chance prng 0.5) then begin
        decr mem_left;
        emit_mem a prng
      end
      else emit_alu a prng
    in
    emitted := !emitted + n
  done;
  (* Block ending: compare, sometimes an independent load (hoistable
     by define-before-use scheduling), then the conditional branch. *)
  let cmp_reg = Prng.pick prng alu_targets in
  Asm.cmp a cmp_reg (Prng.int prng 32);
  if Prng.chance prng 0.4 then begin
    let base = if Prng.bool prng then 6 else 8 in
    let dst = if cmp_reg = 5 then 7 else 5 in
    Asm.ldr a dst base (4 * Prng.int prng 1024)
  end;
  let cond = Prng.pick prng [| Cond.EQ; Cond.NE; Cond.GE; Cond.LT |] in
  Asm.branch_to a ~cond next_label;
  (* fallthrough also reaches the next block *)
  ()

let program_prologue a =
  Asm.mov32 a A.sp Kernel.user_stack_top;
  Asm.mov32 a 6 Kernel.user_data_base;
  Asm.mov32 a 8 (Word32.add Kernel.user_data_base 0x4000)

let generate spec ~iterations =
  let prng = Prng.of_string spec.name in
  let a = Asm.create ~origin:Kernel.user_code_base () in
  program_prologue a;
  Asm.mov32 a 4 iterations;
  Asm.label a "outer";
  let sys_budget =
    ref (spec.sys_rate *. float_of_int (blocks_per_program * block_len spec))
  in
  for b = 0 to blocks_per_program - 1 do
    Asm.label a (Printf.sprintf "block%d" b);
    emit_block a prng spec ~sys_budget ~next_label:(Printf.sprintf "block%d" (b + 1))
  done;
  Asm.label a (Printf.sprintf "block%d" blocks_per_program);
  Asm.sub a ~s:true 4 4 1;
  Asm.branch_to a ~cond:Cond.NE "outer";
  Kernel.user_epilogue_exit a ~exit_code_reg:0;
  snd (Asm.assemble a)

(* ---------- real-world applications ---------- *)

type app = { app_name : string; io_calls : int; cpu_blocks : int }

let apps =
  [
    { app_name = "memcached"; io_calls = 34; cpu_blocks = 4 };
    { app_name = "sqlite"; io_calls = 10; cpu_blocks = 8 };
    { app_name = "fileio"; io_calls = 70; cpu_blocks = 2 };
    { app_name = "untar"; io_calls = 58; cpu_blocks = 2 };
    { app_name = "cpu-prime"; io_calls = 1; cpu_blocks = 10 };
  ]

(* CPU work shared by the app models: a memory-light computational
   mix (apps are less memory-bound than CINT in our model). *)
let app_cpu_spec name =
  { name; sys_rate = 0.001; mem_rate = 0.22; check_rate = 0.16 }

let generate_app app ~iterations =
  let prng = Prng.of_string app.app_name in
  let spec = app_cpu_spec app.app_name in
  let a = Asm.create ~origin:Kernel.user_code_base () in
  program_prologue a;
  Asm.mov32 a 4 iterations;
  Asm.label a "outer";
  (* I/O phase: UART syscalls *)
  for k = 0 to app.io_calls - 1 do
    Asm.mov a 0 (65 + (k mod 26));
    Asm.mov a 7 Kernel.sys_putchar;
    Asm.svc a 0
  done;
  (* CPU phase *)
  let sys_budget = ref (spec.sys_rate *. float_of_int (app.cpu_blocks * block_len spec)) in
  for b = 0 to app.cpu_blocks - 1 do
    Asm.label a (Printf.sprintf "cpu%d" b);
    emit_block a prng spec ~sys_budget ~next_label:(Printf.sprintf "cpu%d" (b + 1))
  done;
  Asm.label a (Printf.sprintf "cpu%d" app.cpu_blocks);
  Asm.sub a ~s:true 4 4 1;
  Asm.branch_to a ~cond:Cond.NE "outer";
  Kernel.user_epilogue_exit a ~exit_code_reg:0;
  snd (Asm.assemble a)
