(** Workload generators.

    SPEC CINT2006 and the paper's real-world applications cannot run
    inside this reproduction, so each benchmark is replaced by a
    synthetic user program whose {e dynamic instruction mix} is
    calibrated to the paper's Table I — the per-benchmark frequencies
    of system-level instructions, memory accesses and interrupt checks
    that drive every figure (see DESIGN.md §2). Generation is
    deterministic per benchmark name. *)

open Repro_common

type spec = {
  name : string;
  sys_rate : float;   (** system-level instructions per guest instruction *)
  mem_rate : float;   (** memory-access instructions per guest instruction *)
  check_rate : float; (** interrupt checks (TB entries) per guest instruction *)
}

val cint2006 : spec list
(** The twelve CINT2006 rows of Table I. *)

val find : string -> spec
(** Lookup by name; raises [Not_found]. *)

val generate : spec -> iterations:int -> Word32.t array
(** A user program (assembled at {!Repro_kernel.Kernel.user_code_base})
    that executes roughly [iterations × insns_per_iteration] guest
    instructions with the spec's mix, then exits via [sys_exit]. *)

val insns_per_iteration : spec -> int
(** Approximate dynamic guest instructions per outer iteration, for
    sizing [iterations] to a target run length. *)

(** {2 Real-world applications (paper Fig. 19)} *)

type app = {
  app_name : string;
  io_calls : int;  (** UART syscalls per iteration (I/O-boundness) *)
  cpu_blocks : int;  (** computational blocks per iteration *)
}

val apps : app list
(** memcached, sqlite, fileio, untar, cpu-prime — I/O-call weights
    chosen so the I/O-bound ones spend most of their time in the
    kernel/devices, reproducing Fig. 19's shape. *)

val generate_app : app -> iterations:int -> Word32.t array
