lib/workloads/workloads.mli: Repro_common Word32
