lib/workloads/workloads.ml: Array Float List Printf Prng Repro_arm Repro_common Repro_kernel Word32
