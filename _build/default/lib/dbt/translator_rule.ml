open Repro_common
module A = Repro_arm.Insn
module Cond = Repro_arm.Cond
module Mem = Repro_arm.Mem
module X = Repro_x86.Insn
module Exec = Repro_x86.Exec
module Stats = Repro_x86.Stats
module Tb = Repro_tcg.Tb
module Runtime = Repro_tcg.Runtime
module Envspec = Repro_tcg.Envspec
module Flagconv = Repro_rules.Flagconv
module Pinmap = Repro_rules.Pinmap

(* Per-TB metadata the emitter produces and the linker consumes. *)
type meta = {
  insns : A.t array;  (* post-scheduling *)
  origins : int array;
  mutable elide : bool array;
  mutable entry_conv : Flagconv.t option;
  mutable exit_states : Emitter.exit_state array;
  mutable first_flag_is_def : bool;
}

type t = {
  opt : Opt.t;
  ruleset : Repro_rules.Ruleset.t;
  metas : (int, meta) Hashtbl.t;
  mutable rule_covered : int;
  mutable fallback : int;
  mutable inter_tb_elisions : int;
}

let create ~opt ~ruleset () =
  {
    opt;
    ruleset;
    metas = Hashtbl.create 256;
    rule_covered = 0;
    fallback = 0;
    inter_tb_elisions = 0;
  }

(* ---------- III-D-1: define-before-use scheduling ----------

   When a flag producer P and its consumer C are separated by
   independent instructions (typically a ld/st that will force a
   coordination pair around the helper while flags are live), hoist
   the independent block above P so P and C become adjacent. *)

let is_store (m : A.t) =
  match m.A.op with A.Str _ | A.Stm _ -> true | _ -> false

let independent_of_producer (m : A.t) (p : A.t) =
  let defs_m = A.defs m and uses_m = A.uses m in
  let defs_p = A.defs p and uses_p = A.uses p in
  defs_m land (uses_p lor defs_p) = 0
  && uses_m land defs_p = 0
  && (not (A.reads_flags m))
  && (not (A.writes_flags m))
  && (not (A.is_system_level m))
  (* Stores are never hoisted: an MMIO store may halt or trap the
     machine, making instructions between it and its original position
     observable. Loads in our platform are side-effect free (Fig. 12
     hoists an ldr). *)
  && not (is_store m)

let is_ender (i : A.t) =
  A.is_branch i
  ||
  match i.A.op with
  | A.Svc _ | A.Udf _ | A.Cps _ | A.Mcr _ | A.Msr { write_control = true; _ } -> true
  | _ -> false

let schedule_indexed ~opt insns =
  let tagged = Array.mapi (fun i x -> (x, i)) insns in
  if not opt.Opt.sched_dbu then tagged
  else begin
    let lst = ref (Array.to_list tagged) in
    let changed = ref true in
    let guard = ref 0 in
    while !changed && !guard < 8 do
      changed := false;
      incr guard;
      let arr = Array.of_list !lst in
      let n = Array.length arr in
      (try
         for i = 0 to n - 1 do
           let p, _ = arr.(i) in
           if A.writes_flags p && p.A.cond = Cond.AL && not (is_ender p) then begin
             (* find the consumer *)
             let rec find_consumer j =
               if j >= n then None
               else if A.reads_flags (fst arr.(j)) then Some j
               else if A.writes_flags (fst arr.(j)) then None
               else find_consumer (j + 1)
             in
             match find_consumer (i + 1) with
             | Some j when j > i + 1 ->
               let between = Array.to_list (Array.sub arr (i + 1) (j - i - 1)) in
               if
                 List.for_all
                   (fun (m, _) -> independent_of_producer m p && not (is_ender m))
                   between
               then begin
                 (* hoist [between] above P, keeping internal order *)
                 let prefix = Array.to_list (Array.sub arr 0 i) in
                 let suffix = Array.to_list (Array.sub arr j (n - j)) in
                 lst := prefix @ between @ [ arr.(i) ] @ suffix;
                 changed := true;
                 raise Exit
               end
             | _ -> ()
           end
         done
       with Exit -> ())
    done;
    Array.of_list !lst
  end

let schedule ~opt insns = Array.map fst (schedule_indexed ~opt insns)

(* ---------- translation ---------- *)

let build_tb t (rt : Runtime.t) cache ~pc ~insns ~m =
  let privileged = Runtime.privileged rt in
  let r =
    Emitter.emit ~opt:t.opt ~ruleset:t.ruleset ~privileged ~tb_pc:pc ~insns:m.insns
      ~origins:m.origins ~elide_flag_save:m.elide ?entry_conv:m.entry_conv ()
  in
  t.rule_covered <- t.rule_covered + r.Emitter.rule_covered;
  t.fallback <- t.fallback + r.Emitter.fallback;
  m.exit_states <- r.Emitter.exit_states;
  m.first_flag_is_def <- r.Emitter.first_flag_is_def;
  let tb =
    {
      Tb.id = Tb.Cache.next_id cache;
      guest_pc = pc;
      privileged;
      mmu_on = Repro_arm.Cpu.mmu_enabled rt.Runtime.cpu;
      prog = r.Emitter.prog;
      exits = r.Emitter.exits;
      links = Array.make Tb.exit_slots None;
      guest_insns = insns;
      guest_len = Array.length insns;
    }
  in
  tb

let translate t (rt : Runtime.t) cache ~pc =
  let privileged = Runtime.privileged rt in
  match rt.Runtime.mem.Mem.fetch ~privileged pc with
  | Error f -> Error f
  | Ok _ ->
    let insns = Array.of_list (Repro_tcg.Translator_qemu.fetch_block rt ~pc) in
    if Array.length insns = 0 then
      failwith
        (Printf.sprintf "Translator_rule: undecodable guest word at %s"
           (Word32.to_hex pc));
    let tagged = schedule_indexed ~opt:t.opt insns in
    let m =
      {
        insns = Array.map fst tagged;
        origins = Array.map snd tagged;
        elide = Array.make Tb.exit_slots false;
        entry_conv = None;
        exit_states =
          Array.make Tb.exit_slots
            { Emitter.conv_at_exit = None; flags_save_in_epilogue = false };
        first_flag_is_def = false;
      }
    in
    let tb = build_tb t rt cache ~pc ~insns ~m in
    Hashtbl.replace t.metas tb.Tb.id m;
    Ok tb

(* Re-emit a TB in place after its meta changed (elision / entry
   assumption). The engine holds the tb record; only [prog] changes. *)
let re_emit t (tb : Tb.t) m =
  let r =
    Emitter.emit ~opt:t.opt ~ruleset:t.ruleset ~privileged:tb.Tb.privileged
      ~tb_pc:tb.Tb.guest_pc ~insns:m.insns ~origins:m.origins ~elide_flag_save:m.elide
      ?entry_conv:m.entry_conv ()
  in
  m.exit_states <- r.Emitter.exit_states;
  tb.Tb.prog <- r.Emitter.prog

(* ---------- III-C-3: inter-TB elimination at chain time ---------- *)

let link_hook t ~pred ~slot ~succ =
  if t.opt.Opt.inter_tb && pred.Tb.id <> succ.Tb.id then
    match (Hashtbl.find_opt t.metas pred.Tb.id, Hashtbl.find_opt t.metas succ.Tb.id) with
    | Some pm, Some sm -> (
      let ex = pm.exit_states.(slot) in
      if
        ex.Emitter.flags_save_in_epilogue
        && (not pm.elide.(slot))
        && sm.first_flag_is_def
      then
        match ex.Emitter.conv_at_exit with
        | None -> ()
        | Some conv -> (
          match sm.entry_conv with
          | Some existing when existing <> conv -> () (* incompatible assumption *)
          | Some _ ->
            pm.elide.(slot) <- true;
            t.inter_tb_elisions <- t.inter_tb_elisions + 1;
            re_emit t pred pm
          | None ->
            (* First elided edge into succ: give it the assumption and
               the EFLAGS-spilling interrupt stub. *)
            sm.entry_conv <- Some conv;
            re_emit t succ sm;
            pm.elide.(slot) <- true;
            t.inter_tb_elisions <- t.inter_tb_elisions + 1;
            re_emit t pred pm))
    | _ -> ()

(* ---------- engine-dispatch entry restore ---------- *)

let on_enter t (rt : Runtime.t) (tb : Tb.t) =
  match Hashtbl.find_opt t.metas tb.Tb.id with
  | None -> ()
  | Some m -> (
    match m.entry_conv with
    | None -> ()
    | Some conv ->
      (* The TB assumes guest flags live in EFLAGS under [conv];
         install them from env (engine-side Sync-restore). *)
      let env = Runtime.env rt in
      let arm = Envspec.flags_word env in
      let bits =
        if Flagconv.carry_inverted conv then Envspec.to_canonical arm else arm
      in
      Exec.set_flags_word rt.Runtime.ctx bits;
      let stats = Runtime.stats rt in
      Stats.charge_tag stats X.Tag_sync 2;
      stats.Stats.sync_ops <- stats.Stats.sync_ops + 1)

let stats_rule_covered t = t.rule_covered
let stats_fallback t = t.fallback
let stats_inter_tb_elisions t = t.inter_tb_elisions
