(** The rule-based system-level translator: fetch a guest block, apply
    define-before-use scheduling (III-D-1), emit through {!Emitter},
    and implement the inter-TB optimization (III-C-3) at block-chaining
    time by re-emitting the predecessor without its epilogue flag save
    and the successor with an interrupt stub that spills the inherited
    EFLAGS. Plug the three callbacks into {!Repro_tcg.Engine.run}. *)

open Repro_common

type t

val create : opt:Opt.t -> ruleset:Repro_rules.Ruleset.t -> unit -> t

val translate :
  t -> Repro_tcg.Runtime.t -> Repro_tcg.Tb.Cache.t -> pc:Word32.t ->
  (Repro_tcg.Tb.t, Repro_arm.Mem.fault) result

val link_hook :
  t -> pred:Repro_tcg.Tb.t -> slot:int -> succ:Repro_tcg.Tb.t -> unit

val on_enter : t -> Repro_tcg.Runtime.t -> Repro_tcg.Tb.t -> unit
(** Engine-dispatch entry: if the TB assumes live flags in EFLAGS
    (inter-TB), install them from env (a Sync-restore performed by the
    engine, charged as such). *)

val schedule : opt:Opt.t -> Repro_arm.Insn.t array -> Repro_arm.Insn.t array
(** The define-before-use scheduling pass (exposed for tests). *)

val stats_rule_covered : t -> int
val stats_fallback : t -> int
val stats_inter_tb_elisions : t -> int
