lib/dbt/translator_rule.mli: Opt Repro_arm Repro_common Repro_rules Repro_tcg Word32
