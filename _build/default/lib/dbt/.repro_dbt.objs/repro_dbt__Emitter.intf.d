lib/dbt/emitter.mli: Opt Repro_arm Repro_common Repro_rules Repro_tcg Repro_x86 Word32
