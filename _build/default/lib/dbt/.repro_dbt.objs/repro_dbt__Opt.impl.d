lib/dbt/opt.ml: Printf
