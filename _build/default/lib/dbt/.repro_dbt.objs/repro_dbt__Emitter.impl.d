lib/dbt/emitter.ml: Array List Opt Repro_arm Repro_common Repro_mmu Repro_rules Repro_tcg Repro_x86 Word32
