lib/dbt/translator_rule.ml: Array Emitter Hashtbl List Opt Printf Repro_arm Repro_common Repro_rules Repro_tcg Repro_x86 Word32
