lib/dbt/system.ml: Opt Repro_machine Repro_rules Repro_tcg Translator_rule
