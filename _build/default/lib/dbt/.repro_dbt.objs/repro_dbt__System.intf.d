lib/dbt/system.mli: Opt Repro_arm Repro_common Repro_rules Repro_tcg Repro_x86 Translator_rule Word32
