lib/dbt/opt.mli:
