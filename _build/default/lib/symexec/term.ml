open Repro_common

type var = string

type op =
  | Add | Sub | Mul | And | Or | Xor
  | Shl | Shr | Sar | Ror
  | Ltu | Lts | Eq

type t =
  | Var of var
  | Const of Word32.t
  | Bin of op * t * t
  | Not of t
  | Ite of t * t * t

let var v = Var v
let const n = Const (Word32.mask n)
let bin op a b = Bin (op, a, b)
let add a b = Bin (Add, a, b)
let sub a b = Bin (Sub, a, b)
let ite c a b = Ite (c, a, b)
let lnot a = Not a
let bool_not a = Bin (Eq, a, Const 0)

let rec size = function
  | Var _ | Const _ -> 1
  | Not a -> 1 + size a
  | Bin (_, a, b) -> 1 + size a + size b
  | Ite (c, a, b) -> 1 + size c + size a + size b

let vars t =
  let rec go acc = function
    | Var v -> v :: acc
    | Const _ -> acc
    | Not a -> go acc a
    | Bin (_, a, b) -> go (go acc a) b
    | Ite (c, a, b) -> go (go (go acc c) a) b
  in
  List.sort_uniq compare (go [] t)

let apply op a b =
  match op with
  | Add -> Word32.add a b
  | Sub -> Word32.sub a b
  | Mul -> Word32.mul a b
  | And -> Word32.logand a b
  | Or -> Word32.logor a b
  | Xor -> Word32.logxor a b
  | Shl -> Word32.shift_left a (b land 31)
  | Shr -> Word32.shift_right_logical a (b land 31)
  | Sar -> Word32.shift_right_arith a (b land 31)
  | Ror -> Word32.rotate_right a (b land 31)
  | Ltu -> if Word32.compare_unsigned a b < 0 then 1 else 0
  | Lts -> if Word32.compare_signed a b < 0 then 1 else 0
  | Eq -> if a = b then 1 else 0

let rec eval env = function
  | Var v -> env v
  | Const c -> c
  | Not a -> Word32.lognot (eval env a)
  | Bin (op, a, b) -> apply op (eval env a) (eval env b)
  | Ite (c, a, b) -> if eval env c <> 0 then eval env a else eval env b

let commutative = function
  | Add | Mul | And | Or | Xor | Eq -> true
  | Sub | Shl | Shr | Sar | Ror | Ltu | Lts -> false

(* One rewrite pass: fold constants, apply identities, sort commutative
   operands by structural order. *)
let rec rewrite t =
  match t with
  | Var _ | Const _ -> t
  | Not a -> (
    let a = rewrite a in
    match a with
    | Const c -> Const (Word32.lognot c)
    | Not b -> b
    | _ -> Not a)
  | Ite (c, a, b) -> (
    let c = rewrite c and a = rewrite a and b = rewrite b in
    match c with
    | Const 0 -> b
    | Const _ -> a
    | _ -> if a = b then a else Ite (c, a, b))
  | Bin (op, a, b) -> (
    let a = rewrite a and b = rewrite b in
    let a, b = if commutative op && compare a b > 0 then (b, a) else (a, b) in
    match (op, a, b) with
    | _, Const x, Const y -> Const (apply op x y)
    | Add, Const 0, x | Add, x, Const 0 -> x
    | Sub, x, Const 0 -> x
    | Mul, Const 0, _ | Mul, _, Const 0 -> Const 0
    | Mul, Const 1, x | Mul, x, Const 1 -> x
    | And, Const 0, _ | And, _, Const 0 -> Const 0
    | And, Const 0xFFFFFFFF, x | And, x, Const 0xFFFFFFFF -> x
    | Or, Const 0, x | Or, x, Const 0 -> x
    | Xor, Const 0, x | Xor, x, Const 0 -> x
    | (Shl | Shr | Sar | Ror), x, Const 0 -> x
    | Sub, x, y when x = y -> Const 0
    | Xor, x, y when x = y -> Const 0
    | And, x, y when x = y -> x
    | Or, x, y when x = y -> x
    (* (a + c1) + c2 -> a + (c1+c2), exploiting sorted operands *)
    | Add, Bin (Add, x, Const c1), Const c2 | Add, Const c2, Bin (Add, x, Const c1) ->
      rewrite (Bin (Add, x, Const (Word32.add c1 c2)))
    | Sub, Bin (Add, x, Const c1), Const c2 ->
      rewrite (Bin (Add, x, Const (Word32.sub c1 c2)))
    | _ -> Bin (op, a, b))

let normalize t =
  let rec fix t n =
    if n = 0 then t
    else
      let t' = rewrite t in
      if t' = t then t else fix t' (n - 1)
  in
  fix t 8

let equal a b = normalize a = normalize b

let op_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>u"
  | Sar -> ">>s"
  | Ror -> "ror"
  | Ltu -> "<u"
  | Lts -> "<s"
  | Eq -> "=="

let rec pp ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const c -> Format.fprintf ppf "%#x" c
  | Not a -> Format.fprintf ppf "~%a" pp a
  | Bin (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (op_name op) pp b
  | Ite (c, a, b) -> Format.fprintf ppf "(%a ? %a : %a)" pp c pp a pp b
