lib/symexec/sym_arm.mli: Repro_arm Term
