lib/symexec/sym_x86.mli: Repro_x86 Term
