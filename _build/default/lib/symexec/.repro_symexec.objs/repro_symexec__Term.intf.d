lib/symexec/term.mli: Format Repro_common
