lib/symexec/sym_arm.ml: Array List Printf Repro_arm Repro_common Term
