lib/symexec/equiv.mli: Term
