lib/symexec/equiv.ml: Array Hashtbl List Prng Repro_common Term Word32
