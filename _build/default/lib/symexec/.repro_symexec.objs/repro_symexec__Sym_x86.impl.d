lib/symexec/sym_x86.ml: Array List Printf Repro_x86 Term
