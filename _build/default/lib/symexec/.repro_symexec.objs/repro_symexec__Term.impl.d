lib/symexec/term.ml: Format List Repro_common Word32
