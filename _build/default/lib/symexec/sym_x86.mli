(** Symbolic evaluation of straight-line host (x86-model) instruction
    sequences over the same term language: 16 registers plus the four
    EFLAGS bits as 0/1 terms. Branches, memory operands and helper
    calls are {!Unsupported} (host templates are straight-line and
    register-only by construction). *)

type state = {
  regs : Term.t array;  (** 16 host registers *)
  cf : Term.t;
  zf : Term.t;
  sf : Term.t;
  o_f : Term.t;
}

val initial : (int -> Term.t) -> state
(** [initial f] seeds register [i] with [f i] (the verifier maps
    pinned hosts to the guest's [Var "rN"]s and scratch to fresh
    vars); flags start as [Var "cf".."of"]. *)

exception Unsupported of string

val exec : state -> Repro_x86.Insn.t list -> state
