open Repro_common

type verdict = Proved | Probable | Refuted

let boundary = [| 0; 1; 2; 0x7FFFFFFF; 0x80000000; 0xFFFFFFFF; 0xFFFFFFFE; 31; 32 |]

let check ?(samples = 128) a b =
  if Term.equal a b then Proved
  else begin
    let vars = List.sort_uniq compare (Term.vars a @ Term.vars b) in
    let flag_var v = List.mem v [ "n"; "z"; "c"; "v"; "cf"; "zf"; "sf"; "of" ] in
    let prng = Prng.create ~seed:0x5EED in
    let ok = ref true in
    let trial k =
      let env = Hashtbl.create 16 in
      List.iteri
        (fun i v ->
          let value =
            if flag_var v then (if Prng.bool prng then 1 else 0)
            else if k < Array.length boundary then
              (* rotate boundary values across variables *)
              boundary.((k + i) mod Array.length boundary)
            else Prng.word prng
          in
          Hashtbl.replace env v value)
        vars;
      let lookup v = match Hashtbl.find_opt env v with Some x -> x | None -> 0 in
      Word32.mask (Term.eval lookup a) = Word32.mask (Term.eval lookup b)
    in
    (try
       for k = 0 to samples - 1 do
         if not (trial k) then begin
           ok := false;
           raise Exit
         end
       done
     with Exit -> ());
    if !ok then Probable else Refuted
  end

let verdict_name = function
  | Proved -> "proved"
  | Probable -> "probable"
  | Refuted -> "refuted"

let holds = function Proved | Probable -> true | Refuted -> false
