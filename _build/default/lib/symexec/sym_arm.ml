module A = Repro_arm.Insn
module Cond = Repro_arm.Cond
open Term

type state = { regs : Term.t array; n : Term.t; z : Term.t; c : Term.t; v : Term.t }

let initial () =
  {
    regs = Array.init 16 (fun i -> var (Printf.sprintf "r%d" i));
    n = var "n";
    z = var "z";
    c = var "c";
    v = var "v";
  }

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let reg st r = if r = 15 then unsupported "pc read" else st.regs.(r)

let set_reg st r t =
  if r = 15 then unsupported "pc write";
  let regs = Array.copy st.regs in
  regs.(r) <- t;
  { st with regs }

(* Operand2 value; shifter carry-out is not modelled (logical S-ops
   set C := 0 in the model ISA). *)
let op2_value st = function
  | A.Imm { imm8; rot } -> const (Repro_common.Word32.rotate_right imm8 (2 * rot))
  | A.Reg_shift_imm { rm; kind; amount } ->
    let v = reg st rm in
    if amount = 0 then v
    else
      let op =
        match kind with A.LSL -> Shl | A.LSR -> Shr | A.ASR -> Sar | A.ROR -> Ror
      in
      bin op v (const amount)
  | A.Reg_shift_reg { rm; kind; rs } ->
    let v = reg st rm in
    let amt = bin And (reg st rs) (const 31) in
    let op =
      match kind with A.LSL -> Shl | A.LSR -> Shr | A.ASR -> Sar | A.ROR -> Ror
    in
    bin op v amt

let sign_bit t = bin Shr t (const 31)
let is_zero t = bin Eq t (const 0)

let add_flags st a b r ~carry_in =
  let c_out =
    match carry_in with
    | None -> bin Ltu r a
    | Some cin ->
      let s = add a b in
      bin Or (bin Ltu s a) (bin Ltu r cin)
  in
  let v = sign_bit (bin And (lnot (bin Xor a b)) (bin Xor a r)) in
  { st with n = sign_bit r; z = is_zero r; c = c_out; v }

let sub_flags st a b r ~borrow_in =
  let borrow =
    match borrow_in with
    | None -> bin Ltu a b
    | Some bin_t -> bin Or (bin Ltu a b) (bin And (bin Eq a b) bin_t)
  in
  let v = sign_bit (bin And (bin Xor a b) (bin Xor a r)) in
  { st with n = sign_bit r; z = is_zero r; c = bool_not borrow; v }

let logic_flags st r =
  { st with n = sign_bit r; z = is_zero r; c = const 0; v = const 0 }

let exec_one st (insn : A.t) =
  if insn.A.cond <> Cond.AL then unsupported "conditional instruction";
  match insn.A.op with
  | A.Dp { op; s; rd; rn; op2 } -> (
    let b = op2_value st op2 in
    let a = match op with A.MOV | A.MVN -> const 0 | _ -> reg st rn in
    let cin = st.c in
    let not_c = bool_not cin in
    let result, flagger =
      match op with
      | A.AND -> (bin And a b, `Logic)
      | A.EOR -> (bin Xor a b, `Logic)
      | A.ORR -> (bin Or a b, `Logic)
      | A.BIC -> (bin And a (lnot b), `Logic)
      | A.MOV -> (b, `Logic)
      | A.MVN -> (lnot b, `Logic)
      | A.ADD -> (add a b, `Add None)
      | A.ADC -> (add (add a b) cin, `Add (Some cin))
      | A.SUB -> (sub a b, `Sub (a, b, None))
      | A.RSB -> (sub b a, `Sub (b, a, None))
      | A.SBC -> (sub (sub a b) not_c, `Sub (a, b, Some not_c))
      | A.RSC -> (sub (sub b a) not_c, `Sub (b, a, Some not_c))
      | A.TST -> (bin And a b, `Logic)
      | A.TEQ -> (bin Xor a b, `Logic)
      | A.CMP -> (sub a b, `Sub (a, b, None))
      | A.CMN -> (add a b, `Add None)
    in
    let st' = if A.dp_op_is_test op then st else set_reg st rd result in
    if s || A.dp_op_is_test op then
      match flagger with
      | `Logic -> logic_flags st' result
      | `Add cin -> add_flags st' a b result ~carry_in:cin
      | `Sub (x, y, bor) -> sub_flags st' x y result ~borrow_in:bor
    else st')
  | A.Mul { s; rd; rn; rm; acc } ->
    let r = bin Mul (reg st rm) (reg st rn) in
    let r = match acc with Some ra -> add r (reg st ra) | None -> r in
    let st' = set_reg st rd r in
    if s then logic_flags st' r else st'
  | A.Movw { rd; imm16 } -> set_reg st rd (const imm16)
  | A.Movt { rd; imm16 } ->
    set_reg st rd (bin Or (bin And (reg st rd) (const 0xFFFF)) (const (imm16 lsl 16)))
  | A.Mull _ -> unsupported "long multiply"
  | A.Clz _ -> unsupported "count leading zeros"
  | A.Ldr _ | A.Ldrs _ | A.Str _ | A.Ldm _ | A.Stm _ -> unsupported "memory access"
  | A.B _ | A.Bx _ -> unsupported "branch"
  | A.Mrs _ | A.Msr _ | A.Svc _ | A.Cps _ | A.Mcr _ | A.Mrc _ | A.Vmsr _ | A.Vmrs _
  | A.Udf _ -> unsupported "system-level"
  | A.Nop -> st

let exec st insns = List.fold_left exec_one st insns
