module X = Repro_x86.Insn
open Term

type state = { regs : Term.t array; cf : Term.t; zf : Term.t; sf : Term.t; o_f : Term.t }

let initial seed =
  {
    regs = Array.init 16 seed;
    cf = var "cf";
    zf = var "zf";
    sf = var "sf";
    o_f = var "of";
  }

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let operand st = function
  | X.Reg r -> st.regs.(r)
  | X.Imm v -> const v
  | X.Mem _ -> unsupported "memory operand"

let write st op t =
  match op with
  | X.Reg r ->
    let regs = Array.copy st.regs in
    regs.(r) <- t;
    { st with regs }
  | X.Imm _ | X.Mem _ -> unsupported "non-register destination"

let sign_bit t = bin Shr t (const 31)
let is_zero t = bin Eq t (const 0)

let logic_flags st r = { st with zf = is_zero r; sf = sign_bit r; cf = const 0; o_f = const 0 }

let exec_one st (insn : X.t) =
  match insn with
  | X.Mov { width = X.W32; dst; src } -> write st dst (operand st src)
  | X.Mov { width = X.W8; _ } -> unsupported "byte mov"
  | X.Mov { width = X.W16; _ } -> unsupported "halfword mov"
  | X.Movzx8 _ | X.Movzx16 _ -> unsupported "movzx"
  | X.Movsx8 _ | X.Movsx16 _ -> unsupported "movsx"
  | X.Lea { dst; addr = { base; index; scale; disp; _ } } ->
    let b = match base with Some r -> st.regs.(r) | None -> const 0 in
    let i =
      match index with
      | Some r -> bin Mul st.regs.(r) (const scale)
      | None -> const 0
    in
    write st (X.Reg dst) (add (add b i) (const disp))
  | X.Alu { op; dst; src } -> (
    let a = operand st dst and b = operand st src in
    match op with
    | X.Add ->
      let r = add a b in
      let st' = write st dst r in
      {
        st' with
        cf = bin Ltu r a;
        zf = is_zero r;
        sf = sign_bit r;
        o_f = sign_bit (bin And (lnot (bin Xor a b)) (bin Xor a r));
      }
    | X.Adc ->
      let cin = st.cf in
      let r = add (add a b) cin in
      let s = add a b in
      let st' = write st dst r in
      {
        st' with
        cf = bin Or (bin Ltu s a) (bin Ltu r cin);
        zf = is_zero r;
        sf = sign_bit r;
        o_f = sign_bit (bin And (lnot (bin Xor a b)) (bin Xor a r));
      }
    | X.Sub ->
      let r = sub a b in
      let st' = write st dst r in
      {
        st' with
        cf = bin Ltu a b;
        zf = is_zero r;
        sf = sign_bit r;
        o_f = sign_bit (bin And (bin Xor a b) (bin Xor a r));
      }
    | X.Sbb ->
      let bin_t = st.cf in
      let r = sub (sub a b) bin_t in
      let st' = write st dst r in
      {
        st' with
        cf = bin Or (bin Ltu a b) (bin And (bin Eq a b) bin_t);
        zf = is_zero r;
        sf = sign_bit r;
        o_f = sign_bit (bin And (bin Xor a b) (bin Xor a r));
      }
    | X.And ->
      let r = bin And a b in
      logic_flags (write st dst r) r
    | X.Or ->
      let r = bin Or a b in
      logic_flags (write st dst r) r
    | X.Xor ->
      let r = bin Xor a b in
      logic_flags (write st dst r) r
    | X.Cmp ->
      let r = sub a b in
      {
        st with
        cf = bin Ltu a b;
        zf = is_zero r;
        sf = sign_bit r;
        o_f = sign_bit (bin And (bin Xor a b) (bin Xor a r));
      }
    | X.Test ->
      let r = bin And a b in
      logic_flags st r)
  | X.Neg o ->
    let v = operand st o in
    let r = sub (const 0) v in
    let st' = write st o r in
    {
      st' with
      cf = bool_not (is_zero v);
      zf = is_zero r;
      sf = sign_bit r;
      o_f = sign_bit (bin And (bin Xor (const 0) v) (bin Xor (const 0) r));
    }
  | X.Not o -> write st o (lnot (operand st o))
  | X.Imul { dst; src } ->
    let r = bin Mul st.regs.(dst) (operand st src) in
    logic_flags (write st (X.Reg dst) r) r
  | X.Shift { op; dst; amount } -> (
    let v = operand st dst in
    match amount with
    | X.Sh_imm 0 -> st
    | X.Sh_imm n ->
      let n = n land 31 in
      let o =
        match op with X.Shl -> Shl | X.Shr -> Shr | X.Sar -> Sar | X.Ror -> Ror
      in
      let r = bin o v (const n) in
      let st' = write st dst r in
      (match op with
      | X.Ror -> { st' with cf = sign_bit r }
      | X.Shl ->
        { st' with cf = bin And (bin Shr v (const (32 - n))) (const 1);
          zf = is_zero r; sf = sign_bit r; o_f = const 0 }
      | X.Shr | X.Sar ->
        { st' with cf = bin And (bin Shr v (const (n - 1))) (const 1);
          zf = is_zero r; sf = sign_bit r; o_f = const 0 })
    | X.Sh_cl ->
      (* Variable shifts mirror the interpreter: count = rcx & 31, and
         a zero count leaves flags (and value) untouched — modelled
         with Ite. *)
      let n = bin And st.regs.(X.rcx) (const 31) in
      let o =
        match op with X.Shl -> Shl | X.Shr -> Shr | X.Sar -> Sar | X.Ror -> Ror
      in
      let r = bin o v n in
      let r = ite (is_zero n) v r in
      write st dst r)
  | X.Setcc { cc; dst } ->
    let t =
      match cc with
      | X.E -> st.zf
      | X.NE -> bool_not st.zf
      | X.B -> st.cf
      | X.AE -> bool_not st.cf
      | X.S -> st.sf
      | X.NS -> bool_not st.sf
      | X.O -> st.o_f
      | X.NO -> bool_not st.o_f
      | X.A -> bin And (bool_not st.cf) (bool_not st.zf)
      | X.BE -> bin Or st.cf st.zf
      | X.GE -> bin Eq st.sf st.o_f
      | X.L -> bool_not (bin Eq st.sf st.o_f)
      | X.G -> bin And (bool_not st.zf) (bin Eq st.sf st.o_f)
      | X.LE -> bin Or st.zf (bool_not (bin Eq st.sf st.o_f))
    in
    write st (X.Reg dst) t
  | X.Cmovcc _ -> unsupported "cmov"
  | X.Savef r ->
    write st (X.Reg r)
      (bin Or
         (bin Or (bin Shl st.sf (const 31)) (bin Shl st.zf (const 30)))
         (bin Or (bin Shl st.cf (const 29)) (bin Shl st.o_f (const 28))))
  | X.Loadf r ->
    let v = st.regs.(r) in
    let bit k = bin And (bin Shr v (const k)) (const 1) in
    { st with sf = bit 31; zf = bit 30; cf = bit 29; o_f = bit 28 }
  | X.Jcc _ | X.Jmp _ | X.Label _ -> unsupported "control flow"
  | X.Call_helper _ -> unsupported "helper call"
  | X.Exit _ -> unsupported "exit"
  | X.Count _ -> st

let exec st insns = List.fold_left exec_one st insns
