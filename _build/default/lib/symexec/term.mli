(** The term language of the symbolic evaluator used to verify
    candidate translation rules (the learning pipeline's
    semantic-equivalence check).

    Terms denote 32-bit words; comparison operators denote 0/1.
    {!normalize} performs constant folding, algebraic identities and
    commutative-operand sorting, giving a cheap structural-equality
    check; {!Equiv} falls back to randomized evaluation. *)

type var = string

type op =
  | Add | Sub | Mul | And | Or | Xor
  | Shl | Shr | Sar | Ror
  | Ltu  (** unsigned < : 0/1 *)
  | Lts  (** signed < : 0/1 *)
  | Eq   (** = : 0/1 *)

type t =
  | Var of var
  | Const of Repro_common.Word32.t
  | Bin of op * t * t
  | Not of t
  | Ite of t * t * t  (** if [cond ≠ 0] then [a] else [b] *)

val var : var -> t
val const : int -> t
val bin : op -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val ite : t -> t -> t -> t
val lnot : t -> t

val bool_not : t -> t
(** Negation of a 0/1 term. *)

val size : t -> int
val vars : t -> var list
(** Free variables, sorted, deduplicated. *)

val eval : (var -> Repro_common.Word32.t) -> t -> Repro_common.Word32.t
(** Concrete evaluation under a valuation. *)

val normalize : t -> t
(** Fixpoint of folding/identity/sorting rewrites (bounded). *)

val equal : t -> t -> bool
(** Structural equality after normalization. *)

val pp : Format.formatter -> t -> unit
