(** Semantic equivalence of terms: normalization first (a proof), then
    seeded randomized evaluation over the shared variables (the
    fallback the learning pipeline treats as verification — mirroring
    the prior work's symbolic checker, which also falls back to
    sampling for parameterized immediates). *)

type verdict = Proved | Probable | Refuted

val check : ?samples:int -> Term.t -> Term.t -> verdict
(** [samples] defaults to 128; boundary values (0, 1, 0x7FFFFFFF,
    0x80000000, 0xFFFFFFFF) are always included in the sample set. *)

val verdict_name : verdict -> string
val holds : verdict -> bool
(** [Proved] or [Probable]. *)
