(** Symbolic evaluation of (straight-line, computational) ARM
    instruction sequences: registers and NZCV as {!Term.t}s over the
    initial state.

    Memory, branch, PC-relative and system-level instructions are out
    of scope ([Unsupported]) — the rule learner only extracts
    computational fragments, exactly like the prior work's fragment
    selection. *)

type state = {
  regs : Term.t array;  (** 16 entries; index 15 unused (PC unsupported) *)
  n : Term.t;
  z : Term.t;
  c : Term.t;
  v : Term.t;
}

val initial : unit -> state
(** Registers are [Var "r0"].."Var "r14""; flags [Var "n"|"z"|"c"|"v"]
    (0/1 terms). *)

exception Unsupported of string

val exec : state -> Repro_arm.Insn.t list -> state
(** Evaluate a sequence. Conditional instructions are unsupported
    (rules match unconditional bodies; guards are the engine's job).
    Raises {!Unsupported}. *)
