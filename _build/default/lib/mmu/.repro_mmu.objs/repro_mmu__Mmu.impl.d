lib/mmu/mmu.ml: Array List Repro_arm Repro_common Repro_machine Result Word32
