lib/mmu/mmu.mli: Repro_arm Repro_common Repro_machine Word32
