lib/harness/harness.ml: Fun Hashtbl List Option Printf Repro_common Repro_dbt Repro_kernel Repro_learn Repro_rules Repro_tcg Repro_workloads Repro_x86 Word32
