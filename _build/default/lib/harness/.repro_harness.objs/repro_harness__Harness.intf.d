lib/harness/harness.mli: Repro_common Repro_dbt Repro_rules Repro_workloads
