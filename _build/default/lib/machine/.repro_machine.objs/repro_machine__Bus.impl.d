lib/machine/bus.ml: Bytes Char Devices
