lib/machine/bus.mli: Bytes Devices Repro_common Word32
