lib/machine/devices.ml: Buffer Char Repro_common Word32
