lib/machine/devices.mli: Repro_common Word32
