(* Regenerate every table and figure of the paper's evaluation.
   `repro-experiments` runs them all; `--exp fig14` selects one. *)

module H = Repro_harness.Harness
open Cmdliner

let experiments =
  [
    ("table1", H.table1);
    ("fig8", H.fig8);
    ("fig14", H.fig14);
    ("fig15", H.fig15);
    ("fig16", H.fig16);
    ("fig17", H.fig17);
    ("fig18", H.fig18);
    ("fig19", H.fig19);
    ("coverage", H.coverage);
    ("breakdown", H.breakdown);
    ("ablation-chaining", H.ablation_chaining);
    ("ablation-timer", H.ablation_timer);
    ("ablation-ruleset", H.ablation_ruleset);
    ("ablation-inline-mmu", H.ablation_inline_mmu);
    ("ablation-costs", H.ablation_cost_model);
  ]

let run exp target timer builtin_only =
  let ruleset =
    if builtin_only then Some (Repro_rules.Builtin.ruleset ()) else None
  in
  let t = H.create ?ruleset ~target_insns:target ~timer_period:timer () in
  let selected =
    match exp with
    | None -> experiments
    | Some name -> (
      match List.assoc_opt name experiments with
      | Some f -> [ (name, f) ]
      | None ->
        Printf.eprintf "unknown experiment %s (choose from: %s)\n" name
          (String.concat ", " (List.map fst experiments));
        exit 2)
  in
  List.iter
    (fun (_, f) ->
      print_string (H.render (f t));
      print_newline ())
    selected

let exp_arg =
  let doc = "Run a single experiment (table1, fig8, fig14..fig19, coverage)." in
  Arg.(value & opt (some string) None & info [ "e"; "exp" ] ~docv:"NAME" ~doc)

let target_arg =
  let doc = "Target dynamic guest instructions per benchmark run." in
  Arg.(value & opt int 150_000 & info [ "n"; "target" ] ~docv:"INSNS" ~doc)

let timer_arg =
  let doc = "Platform timer period in guest instructions (0 disables IRQs)." in
  Arg.(value & opt int 5_000 & info [ "timer" ] ~docv:"PERIOD" ~doc)

let builtin_arg =
  let doc = "Use only the hand-written core rule set (skip learning)." in
  Arg.(value & flag & info [ "builtin-rules" ] ~doc)

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v
    (Cmd.info "repro-experiments" ~doc)
    Term.(const run $ exp_arg $ target_arg $ timer_arg $ builtin_arg)

let () = exit (Cmd.eval cmd)
