(* Run the rule-learning pipeline over the mini-C corpus and dump the
   resulting parameterized rule set. *)

module L = Repro_learn
open Cmdliner

let run verbose show_rejects out =
  let report = L.Learn.learn () in
  Format.printf "%a@.@." L.Learn.pp_report report;
  (match out with
  | Some path ->
    Repro_rules.Serialize.save_file (L.Learn.ruleset report) path;
    Format.printf "wrote %d rules to %s@.@." (List.length report.L.Learn.rules) path
  | None -> ());
  List.iter
    (fun r ->
      Format.printf "%a@." Repro_rules.Rule.pp r;
      if verbose then
        Format.printf "  flags: writes=%b clobbers=%b%s%s@."
          r.Repro_rules.Rule.flags.Repro_rules.Rule.guest_writes
          r.Repro_rules.Rule.flags.Repro_rules.Rule.host_clobbers
          (match r.Repro_rules.Rule.flags.Repro_rules.Rule.convention with
          | Some c -> " conv=" ^ Repro_rules.Flagconv.name c
          | None -> "")
          (match r.Repro_rules.Rule.carry_in with
          | Some `Direct -> " carry-in=direct"
          | Some `Inverted -> " carry-in=inverted"
          | None -> ""))
    report.L.Learn.rules;
  if show_rejects then begin
    Format.printf "@.rejected candidates:@.";
    List.iter
      (fun (c, why) -> Format.printf "-- %s@.%a@." why L.Extract.pp_candidate c)
      report.L.Learn.rejected
  end

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show per-rule flag metadata.")

let rejects_arg =
  Arg.(value & flag & info [ "rejects" ] ~doc:"Show rejected candidate fragments.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the rule set to $(docv).")

let cmd =
  let doc = "learn translation rules from the mini-C corpus" in
  Cmd.v (Cmd.info "repro-rulegen" ~doc)
    Term.(const run $ verbose_arg $ rejects_arg $ out_arg)

let () = exit (Cmd.eval cmd)
