(* Chaos-drill driver: boot one workload to a warm point, snapshot it,
   then serve requests from a supervised fleet restored from that
   snapshot while a deterministic fault plan sabotages a chosen subset
   of the machines.

   Everything in the report except the "volatile" object is a function
   of (--seed, workload, counts): two same-seed drills must produce
   byte-identical JSON after `jq 'del(.volatile)'`.

   Exit codes: 0 success, 2 usage error, 5 a surviving machine
   diverged from the fault-free reference, 6 the whole fleet died,
   7 --depot-save could not commit, 8 an --slo error budget burned. *)

module D = Repro_dbt
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module Fi = Repro_faultinject.Faultinject
module R = Repro_resilience
module Par = Repro_parallel
module Obs = Repro_observe
module Tel = Repro_telemetry
module Depot = Repro_aotcache.Depot
module Atomicio = Repro_common.Atomicio
open Cmdliner

let exit_diverged = 5
let exit_fleet_dead = 6
let exit_depot = 7
let exit_slo = 8

let mode_of_string = function
  | "qemu" -> Ok D.System.Qemu
  | "base" -> Ok (D.System.Rules D.Opt.base)
  | "full" -> Ok (D.System.Rules D.Opt.full)
  | "regions" -> Ok (D.System.Rules D.Opt.with_regions)
  | s -> Error (Printf.sprintf "unknown mode %s (qemu|base|full|regions)" s)

(* Boot the workload on a pristine machine (injector present but every
   site at rate 0, so the warm phase is fault-free) and capture the
   warm snapshot all fleet machines serve from. With [depot], the boot
   machine installs the depot's recipes first, so the whole fleet
   inherits the persistent cache through the one shared snapshot; an
   incompatible depot degrades to a cold warm-up. Returns the boot
   machine too, so --depot-save can capture its cache after the warm
   phase. *)
let warm_snapshot mode ?depot ~bench ~target ~timer ~warm ~shadow_depth
    ~quarantine_threshold () =
  let spec = W.find bench in
  let iters = max 1 (target / W.insns_per_iteration spec) in
  let user = W.generate spec ~iterations:iters in
  let image = K.build ~timer_period:timer ~user_program:user () in
  let inject = Fi.create ~seed:1 ~rate:0.0 ~behavior:Fi.Surface () in
  let ruleset =
    match (depot, mode) with
    | Some d, D.System.Rules _ when Depot.rules d <> "" -> (
      match Repro_rules.Serialize.load (Depot.rules d) with
      | Ok rs -> Some rs
      | Error _ -> None)
    | _ -> None
  in
  let sys =
    D.System.create ?ruleset ~inject ~shadow_depth ~quarantine_threshold mode
  in
  K.load image (fun base words -> D.System.load_image sys base words);
  (match depot with
  | None -> ()
  | Some d -> (
    match D.System.depot_install sys d with
    | n ->
      Format.printf "depot: generation %d, %d recipes installed at boot@."
        (Depot.generation d) n
    | exception Depot.Depot_error { section; reason } ->
      Printf.eprintf
        "depot incompatible (section %s: %s); fleet boots cold\n" section
        reason));
  match
    (D.System.run ~max_guest_insns:warm ~checkpoint_every:warm sys)
      .Repro_tcg.Engine.reason
  with
  | `Insn_limit -> Ok (sys, D.System.snapshot sys)
  | `Halted _ ->
    Error
      (Printf.sprintf
         "workload finished within the warm phase (%d insns) — lower --warm \
          or raise --target"
         warm)
  | `Livelock _ | `Deadline -> Error "warm boot failed"

let run_drill machines faulty seed requests bench mode_name target warm timer
    deadline_opt retry_budget min_healthy checkpoint_every fault_rate
    tb_flush_rate rule_corrupt_rate shadow_depth quarantine_threshold domains
    json_out trace_file depot_save depot_load telemetry_dir telemetry_every
    slo_file slo_report =
  let t0 = Sys.time () in
  let usage fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt in
  if machines <= 0 then usage "--machines must be positive";
  if domains < 1 then usage "--domains must be at least 1";
  let recommended = Domain.recommended_domain_count () in
  let eff_domains =
    (* clamp, don't fail: the report is domain-count-invariant, so
       running 4 requested domains on a 2-core box changes nothing but
       scheduling pressure — still, don't oversubscribe silently *)
    if domains > recommended then begin
      Printf.eprintf
        "warning: --domains %d exceeds the %d recommended domain(s) on this \
         host; clamping\n"
        domains recommended;
      recommended
    end
    else domains
  in
  if faulty < 0 || faulty > machines then
    usage "--faulty must be within [0, --machines]";
  if min_healthy < 0 || min_healthy > machines then
    usage "--min-healthy must be within [0, --machines]";
  if requests < 0 then usage "--requests must be non-negative";
  if fault_rate < 0. || tb_flush_rate < 0. || rule_corrupt_rate < 0. then
    usage "fault rates must be non-negative";
  match mode_of_string mode_name with
  | Error e -> usage "%s" e
  | Ok mode -> (
    (match W.find bench with
    | _ -> ()
    | exception Not_found ->
      usage "unknown benchmark %s (one of: %s)" bench
        (String.concat ", " (List.map (fun (s : W.spec) -> s.W.name) W.cint2006)));
    let deadline =
      match deadline_opt with Some d -> d | None -> 10 * target
    in
    let policy =
      {
        R.Supervisor.default_policy with
        R.Supervisor.deadline;
        retry_budget;
        checkpoint_every;
        shadow_depth;
        quarantine_threshold;
      }
    in
    let depot_loaded =
      match depot_load with
      | None -> None
      | Some dir -> (
        match Depot.load dir with
        | d -> Some d
        | exception Depot.Depot_error { section; reason } ->
          Printf.eprintf
            "depot %s unusable (section %s: %s); fleet boots cold\n" dir
            section reason;
          None)
    in
    match
      warm_snapshot mode ?depot:depot_loaded ~bench ~target ~timer ~warm
        ~shadow_depth ~quarantine_threshold ()
    with
    | Error e -> usage "%s" e
    | Ok (boot_sys, base) ->
      let plan =
        Fi.Plan.make ~seed ~machines ~faulty
          [
            (Fi.Bus_read, fault_rate);
            (Fi.Bus_write, fault_rate);
            (* forced cache flushes make the engine re-translate hot
               code mid-request with faults armed — without them the
               warm snapshot's TB set already covers the workload and
               rule corruption would never get a chance to fire *)
            (Fi.Tb_flush, tb_flush_rate);
            (Fi.Rule_corrupt, rule_corrupt_rate);
          ]
      in
      let slo =
        (* parse the SLO file before the (slow) drill so a typo fails
           in seconds, not minutes *)
        match slo_file with
        | None -> None
        | Some path -> (
          match Tel.Slo.load path with
          | s -> Some s
          | exception Tel.Slo.Slo_error msg -> usage "--slo: %s" msg
          | exception Sys_error msg -> usage "--slo: %s" msg)
      in
      if telemetry_every <= 0 then usage "--telemetry-every must be positive";
      let fleet =
        R.Fleet.create ~plan
          ~config:{ R.Fleet.machines; min_healthy; policy }
          base
      in
      (let installed, pending = D.System.depot_coverage boot_sys in
       R.Fleet.note_boot_depot fleet ~installed ~pending);
      (* the collector is always attached — it only reads the fleet's
         always-on observability surface, so the drill (and its report)
         is bit-identical whether or not --telemetry exports it *)
      let collector = Tel.Collector.create ~every:telemetry_every fleet in
      (* one dispatcher for every --domains value (1 included): the
         epoch-barrier parallel dispatcher, whose report is invariant
         in the domain count — that invariance is CI's identity gate *)
      Par.Parfleet.run fleet ~domains:eff_domains
        ~after_each:(fun () -> Tel.Collector.tick collector)
        ~requests;
      Tel.Collector.finish collector;
      (* serialize before final verification: the time-series and the
         anomaly scores describe the drill, not the verify re-runs *)
      let telemetry_json = Tel.Collector.to_json collector in
      let all_verified = R.Fleet.final_verify fleet in
      (match trace_file with
      | Some path ->
        Atomicio.write_channel path (fun oc ->
            Obs.Trace.write_jsonl oc (R.Fleet.trace fleet))
      | None -> ());
      (match telemetry_dir with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        Atomicio.write (Filename.concat dir "series.json")
          (telemetry_json ^ "\n");
        (* one merged Perfetto timeline: the fleet's dispatch track
           plus one track per machine, joined by the req:assign /
           req:begin request ids *)
        Atomicio.write_channel (Filename.concat dir "timeline.json")
          (fun oc ->
            Obs.Trace.write_chrome_streams oc
              (("fleet", R.Fleet.trace fleet)
              :: List.init machines (fun i ->
                     ( Printf.sprintf "machine%d" i,
                       R.Supervisor.trace_ring (R.Fleet.supervisor fleet i) ))));
        Format.printf "telemetry: series.json and timeline.json in %s@." dir);
      (* Persist what the drill learned. --depot-save captures the boot
         machine's warm cache as a fresh depot; with --depot-load (and
         no save) the loaded depot is rewritten in place only when the
         fleet breaker demoted rules it didn't already know about. In
         both cases the breaker verdicts ride the health section. *)
      (match depot_save with
      | Some dir -> (
        match
          let d = D.System.depot_capture boot_sys in
          ignore (R.Fleet.depot_writeback fleet d);
          (match depot_loaded with
          | Some prev ->
            ignore (Depot.quarantine_pcs d (Depot.quarantined_pcs prev))
          | None -> ());
          Depot.save ~dir d
        with
        | g -> Format.printf "depot saved to %s (generation %d)@." dir g
        | exception Depot.Depot_error { section; reason } ->
          Printf.eprintf "cannot save depot to %s (section %s: %s)\n" dir
            section reason;
          exit exit_depot)
      | None -> (
        match (depot_load, depot_loaded) with
        | Some dir, Some d -> (
          match
            if R.Fleet.depot_writeback fleet d then Some (Depot.save ~dir d)
            else None
          with
          | Some g ->
            Format.printf
              "depot: %d breaker-quarantined rule(s) written back, generation \
               %d@."
              (List.length (R.Fleet.quarantined_rules fleet))
              g
          | None -> ()
          | exception Depot.Depot_error { section; reason } ->
            Printf.eprintf "depot quarantine write-back failed (%s: %s)\n"
              section reason)
        | _ -> ()));
      let report =
        Obs.Jsonx.obj
          [
            ("seed", Obs.Jsonx.int seed);
            ("bench", Obs.Jsonx.str bench);
            ("mode", Obs.Jsonx.str mode_name);
            ("requests", Obs.Jsonx.int requests);
            ("deadline", Obs.Jsonx.int deadline);
            ("retry_budget", Obs.Jsonx.int retry_budget);
            ("fleet", R.Fleet.metrics_json fleet);
            ( "volatile",
              (* domain facts are host-environment facts (the clamp
                 depends on the runner's core count), so they live
                 beside wall-clock under the identity diff's del key *)
              Obs.Jsonx.obj
                [
                  ("wall_s", Obs.Jsonx.float (Sys.time () -. t0));
                  ( "domains",
                    Obs.Jsonx.obj
                      [
                        ("requested", Obs.Jsonx.int domains);
                        ("effective", Obs.Jsonx.int eff_domains);
                        ("recommended", Obs.Jsonx.int recommended);
                      ] );
                ] );
          ]
      in
      (match json_out with
      | None -> print_endline report
      | Some path -> Atomicio.write path (report ^ "\n"));
      Format.printf
        "fleet drill: %d/%d served, %d timed out, %d shed, %d dead machine(s), \
         %d restart(s), %d breaker trip(s), availability %.3f@."
        (R.Fleet.served_ok fleet) (R.Fleet.offered fleet)
        (R.Fleet.timed_out fleet) (R.Fleet.shed fleet)
        (machines - R.Fleet.alive_count fleet)
        (R.Fleet.restarts fleet) (R.Fleet.breaker_trips fleet)
        (R.Fleet.availability fleet);
      (* the SLO verdict is computed (and its report written) even when
         a harder failure wins the exit code; the report is a separate
         artifact so the drill report stays identical with and without
         --slo *)
      let slo_burned =
        match slo with
        | None -> false
        | Some s ->
          let objectives = Tel.Slo.evaluate s fleet in
          List.iter
            (fun o ->
              Format.printf "slo %-18s target %-12g actual %-12g %s@."
                o.Tel.Slo.name o.Tel.Slo.target o.Tel.Slo.actual
                (if o.Tel.Slo.burned then "BURNED" else "ok"))
            objectives;
          (match slo_report with
          | Some path ->
            Atomicio.write path (Tel.Slo.report_json objectives ^ "\n")
          | None -> ());
          Tel.Slo.burned objectives
      in
      if not all_verified then begin
        Format.printf "FAIL: a surviving machine diverged from the reference@.";
        exit_diverged
      end
      else if R.Fleet.alive_count fleet = 0 then begin
        Format.printf "FAIL: every machine died@.";
        exit_fleet_dead
      end
      else if slo_burned then begin
        Format.printf "FAIL: an SLO error budget burned@.";
        exit_slo
      end
      else 0)

let machines_arg =
  let doc = "Fleet size: machines serving from the shared warm snapshot." in
  Arg.(value & opt int 4 & info [ "machines" ] ~docv:"N" ~doc)

let faulty_arg =
  let doc =
    "How many machines the chaos plan sabotages (chosen deterministically \
     from --seed)."
  in
  Arg.(value & opt int 2 & info [ "faulty" ] ~docv:"K" ~doc)

let seed_arg =
  let doc =
    "Fleet seed: fixes the faulty subset, every per-machine injector stream \
     and every backoff jitter draw — the whole drill replays from it."
  in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let requests_arg =
  let doc = "Workload requests offered to the fleet." in
  Arg.(value & opt int 24 & info [ "requests" ] ~docv:"N" ~doc)

let bench_arg =
  let doc = "Benchmark workload each request runs (see repro-dbt-run)." in
  Arg.(value & pos 0 string "gcc" & info [] ~docv:"BENCH" ~doc)

let mode_arg =
  let doc = "Engine mode: qemu, base, full or regions." in
  Arg.(value & opt string "full" & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let target_arg =
  let doc = "Guest instructions of workload per request (before warm)." in
  Arg.(value & opt int 120_000 & info [ "n"; "target" ] ~docv:"INSNS" ~doc)

let warm_arg =
  let doc =
    "Guest instructions executed fault-free before the warm snapshot is \
     taken."
  in
  Arg.(value & opt int 20_000 & info [ "warm" ] ~docv:"INSNS" ~doc)

let timer_arg =
  let doc = "Platform timer period in guest instructions." in
  Arg.(value & opt int 5_000 & info [ "timer" ] ~docv:"PERIOD" ~doc)

let deadline_arg =
  let doc =
    "Per-request deadline in retired guest instructions (default 10 x \
     --target)."
  in
  Arg.(value & opt (some int) None & info [ "deadline" ] ~docv:"INSNS" ~doc)

let retry_arg =
  let doc = "Restarts allowed per request before the machine is killed." in
  Arg.(value & opt int 3 & info [ "retry-budget" ] ~docv:"N" ~doc)

let min_healthy_arg =
  let doc = "Shed requests when fewer machines are serving." in
  Arg.(value & opt int 1 & info [ "min-healthy" ] ~docv:"N" ~doc)

let checkpoint_arg =
  let doc = "Periodic-checkpoint interval (restart granularity)." in
  Arg.(value & opt int 4_000 & info [ "checkpoint-every" ] ~docv:"INSNS" ~doc)

let fault_rate_arg =
  let doc = "Bus read/write fault rate on the sabotaged machines." in
  Arg.(value & opt float 0.0002 & info [ "fault-rate" ] ~docv:"RATE" ~doc)

let tb_flush_rate_arg =
  let doc =
    "Forced translation-cache-flush rate on the sabotaged machines (flushes \
     force retranslation under injection, exposing rule corruption)."
  in
  Arg.(value & opt float 0.00005 & info [ "tb-flush-rate" ] ~docv:"RATE" ~doc)

let rule_rate_arg =
  let doc = "Rule-corruption rate on the sabotaged machines." in
  Arg.(
    value & opt float 0.002 & info [ "rule-corrupt-rate" ] ~docv:"RATE" ~doc)

let shadow_arg =
  let doc = "Shadow-verification depth for rule-translated TBs." in
  Arg.(value & opt int 4 & info [ "shadow" ] ~docv:"N" ~doc)

let quarantine_arg =
  let doc = "Per-rule strike limit before quarantine." in
  Arg.(value & opt int 2 & info [ "quarantine-threshold" ] ~docv:"N" ~doc)

let domains_arg =
  let doc =
    "Serve across $(docv) OCaml domains (machines sharded by id, requests \
     dispatched in deterministic epochs). The drill report is byte-identical \
     for every domain count after `jq 'del(.volatile)'`. Values above the \
     host's recommended domain count are clamped with a warning; values \
     below 1 are a usage error."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let json_arg =
  let doc = "Write the drill report (JSON) to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc = "Write the fleet event trace (JSONL) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let depot_save_arg =
  let doc =
    "After the drill, save the boot machine's warm translation cache (plus \
     the breaker's quarantine verdicts) as a persistent AOT depot in \
     directory $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "depot-save" ] ~docv:"DIR" ~doc)

let depot_load_arg =
  let doc =
    "Boot the whole fleet warm from the AOT depot in directory $(docv): the \
     boot machine installs its recipes before the warm snapshot is taken, \
     so every fleet machine inherits the persistent cache. Rules the fleet \
     breaker quarantines during the drill are written back to the depot. \
     An unusable depot degrades to a cold fleet boot."
  in
  Arg.(value & opt (some string) None & info [ "depot-load" ] ~docv:"DIR" ~doc)

let telemetry_arg =
  let doc =
    "Write the fleet telemetry bundle to directory $(docv): series.json (the \
     merged per-machine time-series with anomaly scores, for repro-dbt-analyze \
     fleet) and timeline.json (one merged Perfetto/Chrome trace, one track \
     per machine plus the fleet dispatch track). Purely an export switch: the \
     drill and its report are bit-identical with or without it."
  in
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"DIR" ~doc)

let telemetry_every_arg =
  let doc = "Telemetry sampling interval in offered requests." in
  Arg.(value & opt int 4 & info [ "telemetry-every" ] ~docv:"N" ~doc)

let slo_arg =
  let doc =
    "Evaluate the drill against the SLO file $(docv) (JSON object with any of \
     p99_latency_max, availability_min, deadline_miss_rate_max, \
     breaker_trips_max; unknown keys are an error). A burned budget exits 8 \
     (divergence 5 and fleet death 6 take precedence)."
  in
  Arg.(value & opt (some string) None & info [ "slo" ] ~docv:"FILE" ~doc)

let slo_report_arg =
  let doc =
    "Write the SLO evaluation (JSON) to $(docv) — a separate artifact, never \
     merged into the drill report."
  in
  Arg.(value & opt (some string) None & info [ "slo-report" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "serve a workload from a self-healing fleet under chaos" in
  Cmd.v
    (Cmd.info "repro-dbt-fleet" ~doc)
    Term.(
      const run_drill $ machines_arg $ faulty_arg $ seed_arg $ requests_arg
      $ bench_arg $ mode_arg $ target_arg $ warm_arg $ timer_arg $ deadline_arg
      $ retry_arg $ min_healthy_arg $ checkpoint_arg $ fault_rate_arg
      $ tb_flush_rate_arg $ rule_rate_arg $ shadow_arg $ quarantine_arg
      $ domains_arg $ json_arg $ trace_arg $ depot_save_arg $ depot_load_arg
      $ telemetry_arg $ telemetry_every_arg $ slo_arg $ slo_report_arg)

let () = exit (Cmd.eval' cmd)
