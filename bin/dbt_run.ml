(* Run one benchmark workload under one engine configuration and dump
   the dynamic statistics — the quick-look CLI around the system.

   Exit codes: 0 success, 2 usage error, 3 corrupt snapshot, 4 image
   load error, 5 unrecovered livelock, 6 replay mismatch, 7 depot
   verification failure (--depot-verify only: a depot that fails to
   load at run time degrades to a cold start and exits 0). Every
   flag/name validation (benchmark, mode, trace format, log level)
   happens up front, before rule learning or any other expensive
   work, so a typo always fails immediately with exit 2. *)

module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module Stats = Repro_x86.Stats
module Snapshot = Repro_snapshot.Snapshot
module Journal = Repro_snapshot.Journal
module Obs = Repro_observe
module Perf = Repro_perfscope
module Depot = Repro_aotcache.Depot
module Atomicio = Repro_common.Atomicio
module Cov = Repro_covscope
open Cmdliner

let mode_of_string = function
  | "qemu" -> Ok D.System.Qemu
  | "base" -> Ok (D.System.Rules D.Opt.base)
  | "reduction" -> Ok (D.System.Rules D.Opt.reduction_only)
  | "elimination" -> Ok (D.System.Rules D.Opt.with_elimination)
  | "full" -> Ok (D.System.Rules D.Opt.full)
  | "regions" -> Ok (D.System.Rules D.Opt.with_regions)
  | s ->
    Error
      (Printf.sprintf "unknown mode %s (qemu|base|reduction|elimination|full|regions)" s)

let exit_corrupt = 3
let exit_load = 4
let exit_livelock = 5
let exit_replay_mismatch = 6
let exit_depot = 7

let build_ruleset builtin_only rules_file =
  match rules_file with
  | Some path -> (
    match Repro_rules.Serialize.load_file path with
    | Ok rs -> rs
    | Error e ->
      Printf.eprintf "cannot load %s: %s\n" path e;
      exit 2)
  | None ->
    if builtin_only then Repro_rules.Builtin.ruleset ()
    else
      let learned = Repro_learn.Learn.learn () in
      Repro_rules.Ruleset.of_list
        (Repro_rules.Builtin.all () @ learned.Repro_learn.Learn.rules)

(* --replay: reconstruct a machine matching the dump (mode, RAM,
   injector) and check the recorded failure reproduces. *)
let do_replay ruleset shadow_depth quarantine_threshold path =
  let snap = Snapshot.load_file path in
  let mode = D.System.snapshot_mode snap in
  let inject = D.System.snapshot_injector snap in
  let sys =
    D.System.create
      ~ram_kib:(D.System.snapshot_ram_kib snap)
      ~ruleset ?inject ~shadow_depth ~quarantine_threshold mode
  in
  let report = D.System.replay sys snap in
  Format.printf "replaying %s under %s@." path (D.System.mode_name mode);
  (match report.D.System.rep_reason with
  | Some r -> Format.printf "recorded failure: %s@." r
  | None -> ());
  Format.printf "expected events (%d):@."
    (List.length report.D.System.rep_expected);
  List.iter
    (fun e -> Format.printf "  %s@." (Journal.string_of_event e))
    report.D.System.rep_expected;
  Format.printf "replayed events (%d):@." (List.length report.D.System.rep_actual);
  List.iter
    (fun e -> Format.printf "  %s@." (Journal.string_of_event e))
    report.D.System.rep_actual;
  let reason_name =
    match report.D.System.rep_result.T.Engine.reason with
    | `Halted c -> Printf.sprintf "halted (exit code %#x)" c
    | `Insn_limit -> "instruction limit reached"
    | `Deadline -> "deadline reached"
    | `Livelock pc -> Printf.sprintf "livelocked at guest pc %#x" pc
  in
  Format.printf "replay outcome: %s@." reason_name;
  if report.D.System.rep_ok then begin
    Format.printf "deterministic replay: the recorded events reproduced@.";
    0
  end
  else begin
    Format.printf "REPLAY MISMATCH: the recorded events did not reproduce@.";
    exit_replay_mismatch
  end

(* --depot-verify: machine-free integrity + structural check of a
   persistent depot directory. Exit 0 with a summary, or 7 naming the
   damaged section — the typed failure CI corruption drills assert
   on. *)
let do_depot_verify dir =
  match
    let d = Depot.load dir in
    let plains, regions = D.System.depot_check d in
    (d, plains, regions)
  with
  | d, plains, regions ->
    let c = Depot.compat d in
    Format.printf
      "depot %s: generation %d, mode %s, ruleset digest %#x, hot threshold %d@."
      dir (Depot.generation d) c.Depot.c_mode c.Depot.c_rules_digest
      c.Depot.c_hot_threshold;
    Format.printf "  %d recipes, %d superblocks, %d quarantined PCs@." plains
      regions
      (List.length (Depot.quarantined_pcs d));
    0
  | exception Depot.Depot_error { section; reason } ->
    Printf.eprintf "depot %s FAILED verification: section %s: %s\n" dir section
      reason;
    exit_depot

let run bench mode_name target budget timer builtin_only rules_file dump_tbs
    profile_top inject_seed inject_rate surface_faults shadow_depth
    quarantine_threshold checkpoint_every save_file restore_file replay_file
    watchdog postmortem_dir trace_file trace_format metrics_out metrics_every
    ledger_on log_level stats_json perf_out flamegraph_out depot_save depot_load
    depot_verify coverage coverage_out =
  (match Obs.Log.level_of_string log_level with
  | Some lv -> Obs.Log.set_level lv
  | None ->
    Printf.eprintf "unknown log level %s (error|warn|info|debug|trace)\n"
      log_level;
    exit 2);
  if trace_format <> "jsonl" && trace_format <> "chrome" then begin
    Printf.eprintf "unknown trace format %s (jsonl|chrome)\n" trace_format;
    exit 2
  end;
  (match depot_verify with
  | Some dir -> exit (do_depot_verify dir)
  | None -> ());
  if depot_load <> None && (restore_file <> None || replay_file <> None) then begin
    Printf.eprintf "--depot-load cannot be combined with --restore or --replay\n";
    exit 2
  end;
  if depot_save <> None && replay_file <> None then begin
    Printf.eprintf "--depot-save cannot be combined with --replay\n";
    exit 2
  end;
  match mode_of_string mode_name with
  | Error e ->
    prerr_endline e;
    exit 2
  | Ok mode -> (
    (* Validate the benchmark name before [build_ruleset]: without
       --builtin-rules the learning pipeline runs first and a typo in
       the name used to burn all that work before failing. *)
    let spec =
      try W.find bench
      with Not_found ->
        Printf.eprintf "unknown benchmark %s (one of: %s)\n" bench
          (String.concat ", " (List.map (fun (s : W.spec) -> s.W.name) W.cint2006));
        exit 2
    in
    let inject =
      match inject_seed with
      | None -> None
      | Some seed ->
        Some
          (Repro_faultinject.Faultinject.create ~seed ~rate:inject_rate
             ~behavior:
               (if surface_faults then Repro_faultinject.Faultinject.Surface
                else Repro_faultinject.Faultinject.Transient)
             ())
    in
    (* The depot loads before the ruleset is built: a readable depot
       embeds the ruleset its recipes were learned under, and adopting
       it both skips re-learning and makes the compatibility digest
       match by construction (explicit --rules/--builtin-rules still
       win; install then checks the digest). Any failure here degrades
       to a cold start — the run proceeds, it just translates. *)
    let depot_loaded =
      match depot_load with
      | None -> None
      | Some dir -> (
        match Depot.load ?inject dir with
        | d -> Some d
        | exception Depot.Depot_error { section; reason } ->
          Printf.eprintf
            "depot %s unusable (section %s: %s); falling back to cold start\n"
            dir section reason;
          None)
    in
    let ruleset =
      match (depot_loaded, mode) with
      | Some d, D.System.Rules _
        when rules_file = None && (not builtin_only) && Depot.rules d <> "" -> (
        match Repro_rules.Serialize.load (Depot.rules d) with
        | Ok rs -> rs
        | Error e ->
          Printf.eprintf "depot ruleset unreadable (%s); building one instead\n"
            e;
          build_ruleset builtin_only rules_file)
      | _ -> build_ruleset builtin_only rules_file
    in
    let trace =
      match trace_file with Some _ -> Some (Obs.Trace.create ()) | None -> None
    in
    let ledger = if ledger_on then Some (Obs.Ledger.create ()) else None in
    let scope =
      match perf_out with Some _ -> Some (Perf.Scope.create ()) | None -> None
    in
    match replay_file with
    | Some path -> exit (do_replay ruleset shadow_depth quarantine_threshold path)
    | None ->
      let sys, image =
        match restore_file with
        | Some path ->
          (* The snapshot dictates machine shape; the CLI must supply
             the same ruleset the original run used. *)
          let snap = Snapshot.load_file path in
          let mode = D.System.snapshot_mode snap in
          let inject = D.System.snapshot_injector snap in
          let sys =
            D.System.create
              ~ram_kib:(D.System.snapshot_ram_kib snap)
              ~ruleset ?inject ~shadow_depth ~quarantine_threshold ?trace
              ?ledger ?scope mode
          in
          D.System.restore sys snap;
          (sys, None)
        | None ->
          let iters = max 1 (target / W.insns_per_iteration spec) in
          let user = W.generate spec ~iterations:iters in
          let image = K.build ~timer_period:timer ~user_program:user () in
          let sys =
            D.System.create ~ruleset ?inject ~shadow_depth ~quarantine_threshold
              ?trace ?ledger ?scope mode
          in
          K.load image (fun base words -> D.System.load_image sys base words);
          (sys, Some image)
      in
      (* Warm boot: replay depot recipes into the live cache. Any
         incompatibility (mode, ruleset digest, hot threshold, rung) or
         undecodable payload is a typed error and a cold start — never
         a crash. *)
      (match depot_loaded with
      | None -> ()
      | Some d -> (
        match D.System.depot_install sys d with
        | n ->
          Format.printf "depot: generation %d, %d recipes installed at boot@."
            (Depot.generation d) n
        | exception Depot.Depot_error { section; reason } ->
          Printf.eprintf
            "depot incompatible (section %s: %s); falling back to cold start\n"
            section reason));
      (* The dynamic attribution table in Stats is always on; the
         static per-rule sink is only worth carrying when a coverage
         view was requested. Attached before the first translation. *)
      if coverage || coverage_out <> None then
        D.System.set_cov_static sys (Some (Cov.Static.create ()));
      let profile =
        if profile_top > 0 || flamegraph_out <> None then
          Some (T.Profile.create ())
        else None
      in
      let postmortems = ref 0 in
      let on_postmortem =
        match postmortem_dir with
        | None -> None
        | Some dir ->
          Some
            (fun ~reason dump ->
              incr postmortems;
              let path =
                Filename.concat dir (Printf.sprintf "postmortem-%d.snap" !postmortems)
              in
              Snapshot.save_file path dump;
              Format.printf "post-mortem (%s) dumped to %s@." reason path)
      in
      let max_guest_insns =
        match budget with Some b -> b | None -> 60 * target
      in
      (* Periodic metrics ride the checkpoint mechanism: when only
         --metrics-every is given it sets the checkpoint cadence; an
         explicit --checkpoint-every wins and metrics follow it. *)
      (* The metrics stream is built in a temp file and renamed into
         place only on clean completion, so a run killed mid-write can
         never leave a half-line JSONL for dbt_analyze to choke on. *)
      let metrics_oc =
        match metrics_out with
        | Some p ->
          let tmp = p ^ ".tmp" in
          Some (open_out tmp, tmp, p)
        | None -> None
      in
      let last_metrics = ref (0, 0, 0) in
      let write_metrics () =
        match metrics_oc with
        | None -> ()
        | Some (oc, _, _) ->
          let s = D.System.stats sys in
          let pg, ph, ps = !last_metrics in
          last_metrics := (s.Stats.guest_insns, s.Stats.host_insns, s.Stats.sync_ops);
          output_string oc
            (Obs.Jsonx.obj
               [
                 ("at", Obs.Jsonx.int s.Stats.guest_insns);
                 ( "delta",
                   Obs.Jsonx.obj
                     [
                       ("guest_insns", Obs.Jsonx.int (s.Stats.guest_insns - pg));
                       ("host_insns", Obs.Jsonx.int (s.Stats.host_insns - ph));
                       ("sync_ops", Obs.Jsonx.int (s.Stats.sync_ops - ps));
                     ] );
                 ("stats", Stats.to_json s);
               ]);
          output_char oc '\n'
      in
      let effective_checkpoint_every =
        if checkpoint_every > 0 then checkpoint_every else metrics_every
      in
      let on_checkpoint =
        if Option.is_some metrics_oc && effective_checkpoint_every > 0 then
          Some (fun _snap -> write_metrics ())
        else None
      in
      let res =
        D.System.run ?profile ~max_guest_insns
          ~checkpoint_every:effective_checkpoint_every ?on_checkpoint ~watchdog
          ?on_postmortem sys
      in
      write_metrics ();
      (match metrics_oc with
      | Some (oc, tmp, p) ->
        close_out oc;
        Sys.rename tmp p
      | None -> ());
      let s = D.System.stats sys in
      let outcome =
        match res.T.Engine.reason with
        | `Halted c -> Printf.sprintf "halted (exit code %#x)" c
        | `Insn_limit -> "instruction limit reached"
        | `Deadline -> "deadline reached"
        | `Livelock pc -> Printf.sprintf "livelocked at guest pc %#x" pc
      in
      Format.printf "benchmark  %s@.mode       %s@.outcome    %s@.@.%a@." bench
        (D.System.mode_name mode) outcome Stats.pp s;
      (match depot_loaded with
      | Some _ when Option.is_some sys.D.System.depot ->
        let installed, pending = D.System.depot_coverage sys in
        Format.printf "depot coverage: %d recipes installed, %d pending@."
          installed pending
      | _ -> ());
      (match sys.D.System.rt.T.Runtime.inject with
      | Some inj -> Format.printf "@.%a@." Repro_faultinject.Faultinject.pp inj
      | None -> ());
      (match sys.D.System.rule_translator with
      | Some tr ->
        Format.printf "rule-covered insns (static) %d@.fallback insns (static)     %d@."
          (D.Translator_rule.stats_rule_covered tr)
          (D.Translator_rule.stats_fallback tr);
        if shadow_depth > 0 then
          Format.printf
            "blacklisted PCs             %d@.quarantined rules           %d@."
            (D.Translator_rule.blacklist_size tr)
            (Repro_rules.Ruleset.quarantined_count ruleset)
      | None -> ());
      (match profile with
      | Some p when profile_top > 0 ->
        Format.printf "@.--- hot translation blocks ---@.%a@."
          (T.Profile.pp_report ~top:profile_top) p;
        (match T.Profile.top 1 p with
        | [ hottest ] ->
          Format.printf "@.hottest block:@.%a@." T.Profile.pp_disasm hottest
        | _ -> ())
      | Some _ | None -> ());
      if dump_tbs > 0 then begin
        Format.printf "@.--- first %d translation blocks ---@." dump_tbs;
        List.iteri
          (fun i (tb : T.Tb.t) ->
            if i < dump_tbs then begin
              Format.printf "@.TB %d at guest pc %#x (%s, %d guest insns):@." tb.T.Tb.id
                tb.T.Tb.guest_pc
                (if tb.T.Tb.privileged then "kernel" else "user")
                tb.T.Tb.guest_len;
              Array.iter
                (fun insn -> Format.printf "  %a@." Repro_arm.Insn.pp insn)
                tb.T.Tb.guest_insns;
              Format.printf "%a@." Repro_x86.Prog.pp tb.T.Tb.prog
            end)
          (T.Tb.Cache.to_list sys.D.System.cache)
      end;
      (match ledger with
      | Some l ->
        Format.printf "@.--- coordination ledger (paper Fig. 17) ---@.@[<v>%a@]@."
          Obs.Ledger.pp_report l
      | None -> ());
      (* Coverage views assert the tier partition invariant as they
         are built; both are read-only over the stats table. *)
      if coverage then
        Format.printf "@.--- translation-quality observatory ---@.@[<v>%a@]@."
          Cov.Report.pp (D.System.coverage_report sys);
      (match coverage_out with
      | Some path ->
        Atomicio.write path (Cov.Report.to_json (D.System.coverage_report sys) ^ "\n");
        Format.printf "@.coverage report written to %s@." path
      | None -> ());
      (match (trace, trace_file) with
      | Some tr, Some path ->
        Atomicio.write_channel path (fun oc ->
            match trace_format with
            | "chrome" -> Obs.Trace.write_chrome oc tr
            | _ -> Obs.Trace.write_jsonl oc tr);
        Format.printf "@.trace: %d events captured (%d dropped), %s written to %s@."
          (Obs.Trace.total tr) (Obs.Trace.dropped tr) trace_format path
      | _ -> ());
      (match (scope, perf_out) with
      | Some sc, Some path ->
        Atomicio.write path
          (Obs.Jsonx.obj
             [
               ("perf", Perf.Scope.to_json sc);
               ("costs", T.Costs.to_json ());
               ("stats", Stats.to_json s);
             ]
          ^ "\n");
        Format.printf "@.perf report written to %s@." path
      | _ -> ());
      (match (profile, flamegraph_out) with
      | Some p, Some path ->
        let fl = Perf.Flame.create () in
        let symbolize =
          match image with
          | Some img -> fun pc -> K.symbolize img pc
          | None -> fun _ -> "?" (* restored runs carry no symbol table *)
        in
        List.iter
          (fun (e : T.Profile.entry) ->
            let base =
              [
                D.System.mode_name mode;
                (if e.T.Profile.privileged then "kernel" else "user");
                symbolize e.T.Profile.guest_pc;
                (* superblocks get their own frame kind so region time is
                   separable from the head TB's pre-fusion executions *)
                Printf.sprintf
                  (if e.T.Profile.region then "region_0x%08x" else "tb_0x%08x")
                  e.T.Profile.guest_pc;
              ]
            in
            let split = Array.fold_left ( + ) 0 e.T.Profile.phases in
            if split > 0 then begin
              List.iter
                (fun ph ->
                  let n = e.T.Profile.phases.(Perf.Phase.index ph) in
                  if n > 0 then Perf.Flame.add fl (base @ [ Perf.Phase.name ph ]) n)
                Perf.Phase.all;
              if e.T.Profile.host_spent > split then
                Perf.Flame.add fl base (e.T.Profile.host_spent - split)
            end
            else Perf.Flame.add fl base e.T.Profile.host_spent)
          (T.Profile.entries p);
        Atomicio.write_channel path (fun oc -> Perf.Flame.write_folded oc fl);
        Format.printf "@.flamegraph (collapsed stacks) written to %s@." path
      | _ -> ());
      (match stats_json with
      | Some path ->
        Atomicio.write path
          (Obs.Jsonx.obj
             ([
                ("meta", Obs.Jsonx.str "dbt-stats");
                ("stats", Stats.to_json s);
                ("outcome", Obs.Jsonx.str outcome);
                ( "uart_digest",
                  Obs.Jsonx.str
                    (Digest.to_hex (Digest.string (D.System.uart_output sys))) );
              ]
             @ (match scope with
               | Some sc ->
                 [ ("perf", Perf.Scope.to_json sc); ("costs", T.Costs.to_json ()) ]
               | None -> [])
             @ (match ledger with
               | Some l -> [ ("ledger", Obs.Ledger.to_json l) ]
               | None -> [])
             @ (match (depot_loaded, sys.D.System.depot) with
               | Some _, Some _ ->
                 let installed, pending = D.System.depot_coverage sys in
                 [ ( "depot",
                     Obs.Jsonx.obj
                       [
                         ("installed", Obs.Jsonx.int installed);
                         ("pending", Obs.Jsonx.int pending);
                       ] );
                 ]
               | _ -> [])
             @
             match trace with
             | Some tr ->
               [ ( "trace",
                   Obs.Jsonx.obj
                     [
                       ("total", Obs.Jsonx.int (Obs.Trace.total tr));
                       ("dropped", Obs.Jsonx.int (Obs.Trace.dropped tr));
                     ] );
               ]
             | None -> [])
          ^ "\n")
      | None -> ());
      (match save_file with
      | Some path ->
        Snapshot.save_file path (D.System.snapshot sys);
        Format.printf "@.machine snapshot saved to %s@." path
      | None -> ());
      (* Self-repair write-back: depot-served TBs that shadow
         verification invalidated this run are quarantined in the depot
         itself, so no later warm boot replays them. Only rewrite when
         something actually grew. *)
      (match (depot_load, depot_loaded, depot_save) with
      | Some dir, Some d, None ->
        let poisoned = D.System.depot_poisoned sys in
        if poisoned <> [] && Depot.quarantine_pcs d poisoned then begin
          match Depot.save ?inject ~dir d with
          | g ->
            Format.printf
              "depot: quarantined %d poisoned PC(s), generation %d written@."
              (List.length poisoned) g
          | exception Depot.Depot_error { section; reason } ->
            Printf.eprintf "depot quarantine write-back failed (%s: %s)\n"
              section reason
        end
      | _ -> ());
      (match depot_save with
      | Some dir -> (
        match
          let d = D.System.depot_capture sys in
          (* carry forward quarantines learned this run (and inherited
             ones, when re-saving over a loaded depot) *)
          let poisoned = D.System.depot_poisoned sys in
          let inherited =
            match depot_loaded with
            | Some prev -> Depot.quarantined_pcs prev
            | None -> []
          in
          ignore (Depot.quarantine_pcs d (poisoned @ inherited));
          Depot.save ?inject ~dir d
        with
        | g ->
          Format.printf "depot saved to %s (generation %d)@." dir g
        | exception Depot.Depot_error { section; reason } ->
          Printf.eprintf "cannot save depot to %s (section %s: %s)\n" dir
            section reason;
          exit exit_depot)
      | None -> ());
      (match res.T.Engine.reason with
      | `Livelock _ -> exit exit_livelock
      | `Halted _ | `Insn_limit | `Deadline -> ()))

let run_protected bench mode target budget timer builtin_only rules_file
    dump_tbs profile_top inject_seed inject_rate surface_faults shadow_depth
    quarantine_threshold checkpoint_every save_file restore_file replay_file
    watchdog postmortem_dir trace_file trace_format metrics_out metrics_every
    ledger_on log_level stats_json perf_out flamegraph_out depot_save depot_load
    depot_verify coverage coverage_out =
  try
    run bench mode target budget timer builtin_only rules_file dump_tbs
      profile_top inject_seed inject_rate surface_faults shadow_depth
      quarantine_threshold checkpoint_every save_file restore_file replay_file
      watchdog postmortem_dir trace_file trace_format metrics_out metrics_every
      ledger_on log_level stats_json perf_out flamegraph_out depot_save
      depot_load depot_verify coverage coverage_out
  with
  | T.Runtime.Load_error addr ->
    Printf.eprintf "image load error: physical address %#x is outside guest RAM\n"
      addr;
    exit exit_load
  | Snapshot.Corrupt msg ->
    Printf.eprintf "corrupt snapshot: %s\n" msg;
    exit exit_corrupt
  | Snapshot.Load_error { section; reason } ->
    Printf.eprintf "corrupt snapshot: section %s: %s\n" section reason;
    exit exit_corrupt
  | Depot.Depot_error { section; reason } ->
    (* Backstop: every depot path above already degrades or exits with
       its own message; anything that still escapes is a depot bug, not
       a crash. *)
    Printf.eprintf "depot error: section %s: %s\n" section reason;
    exit exit_depot

let bench_arg =
  let doc = "Benchmark name (a CINT2006 row of Table I)." in
  Arg.(value & pos 0 string "gcc" & info [] ~docv:"BENCH" ~doc)

let mode_arg =
  let doc = "Engine: qemu, base, reduction, elimination or full." in
  Arg.(value & opt string "full" & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let target_arg =
  let doc = "Target dynamic guest instructions." in
  Arg.(value & opt int 200_000 & info [ "n"; "target" ] ~docv:"INSNS" ~doc)

let budget_arg =
  let doc =
    "Stop after retiring $(docv) guest instructions this run (default 60 times the \
     target: effectively until the guest halts). With --restore the budget counts \
     from the resume point, so an interrupted run plus its continuation retire the \
     same total as an uninterrupted one."
  in
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"INSNS" ~doc)

let timer_arg =
  let doc = "Timer period in guest instructions (0 = no IRQs)." in
  Arg.(value & opt int 5_000 & info [ "timer" ] ~docv:"PERIOD" ~doc)

let builtin_arg =
  let doc = "Use only the hand-written core rule set (skip learning)." in
  Arg.(value & flag & info [ "builtin-rules" ] ~doc)

let rules_arg =
  let doc = "Load the rule set from $(docv) (see repro-rulegen -o)." in
  Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"FILE" ~doc)

let dump_arg =
  let doc = "Dump the first $(docv) translation blocks (guest + host code)." in
  Arg.(value & opt int 0 & info [ "dump-tbs" ] ~docv:"N" ~doc)

let profile_arg =
  let doc =
    "Profile per-TB execution and print the $(docv) hottest blocks by attributed host \
     instructions, plus the hottest block's guest disassembly."
  in
  Arg.(value & opt int 0 & info [ "p"; "profile" ] ~docv:"N" ~doc)

let inject_arg =
  let doc =
    "Arm deterministic fault injection with PRNG seed $(docv) (bus errors, spurious TLB \
     and TB-cache invalidations, corrupted page walks, spurious interrupts, corrupted \
     rule output)."
  in
  Arg.(value & opt (some int) None & info [ "inject" ] ~docv:"SEED" ~doc)

let inject_rate_arg =
  let doc = "Per-site fault probability (with --inject)." in
  Arg.(value & opt float 0.001 & info [ "inject-rate" ] ~docv:"RATE" ~doc)

let surface_arg =
  let doc =
    "Let injected bus faults surface as guest-visible bus errors instead of being \
     absorbed (with --inject)."
  in
  Arg.(value & flag & info [ "surface-faults" ] ~doc)

let shadow_arg =
  let doc =
    "Shadow-verify the first $(docv) executions of each rule-translated block against \
     the reference interpreter (rules modes only; 0 disables)."
  in
  Arg.(value & opt int 0 & info [ "shadow" ] ~docv:"N" ~doc)

let quarantine_arg =
  let doc = "Divergence strikes that quarantine a rule (with --shadow)." in
  Arg.(value & opt int 2 & info [ "quarantine-threshold" ] ~docv:"N" ~doc)

let checkpoint_arg =
  let doc =
    "Take a crash-consistent machine checkpoint every $(docv) retired guest \
     instructions (0 disables periodic checkpoints; one is still taken when the run \
     stops at the instruction limit)."
  in
  Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~docv:"INSNS" ~doc)

let save_arg =
  let doc =
    "After the run, save the machine snapshot (with its resume cursor when the run \
     stopped at the instruction limit) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)

let restore_arg =
  let doc =
    "Restore the machine from snapshot $(docv) and continue executing (supply the \
     same rule-set flags the saved run used)."
  in
  Arg.(value & opt (some string) None & info [ "restore" ] ~docv:"FILE" ~doc)

let replay_arg =
  let doc =
    "Replay post-mortem dump $(docv): restore its checkpoint, re-execute with the \
     watchdog off, and check the recorded events reproduce. Exits 6 on mismatch."
  in
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)

let watchdog_arg =
  let doc =
    "Livelock watchdog: on host-code fuel exhaustion, roll back to the last \
     checkpoint and re-execute under a degraded engine (rules, then baseline, then \
     single-instruction TBs) instead of failing."
  in
  Arg.(value & opt bool true & info [ "watchdog" ] ~docv:"BOOL" ~doc)

let postmortem_arg =
  let doc =
    "Dump a replayable snapshot + event journal into $(docv) whenever shadow \
     verification repairs a divergence or the watchdog catches a livelock."
  in
  Arg.(value & opt (some string) None & info [ "postmortem-dir" ] ~docv:"DIR" ~doc)

let trace_arg =
  let doc =
    "Capture a structured event trace (translations, chains, IRQs, TLB \
     misses, sync restores, shadow replays, watchdog and snapshot activity; \
     timestamps are retired guest instructions) and write it to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace output format: jsonl (one event object per line) or chrome \
     (Chrome trace-event JSON, loadable in Perfetto / chrome://tracing)."
  in
  Arg.(value & opt string "jsonl" & info [ "trace-format" ] ~docv:"FMT" ~doc)

let metrics_out_arg =
  let doc =
    "Append a machine-readable metrics snapshot (full statistics plus \
     interval deltas, JSONL) to $(docv) at every checkpoint and at the end \
     of the run."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let metrics_every_arg =
  let doc =
    "Emit periodic metrics every $(docv) retired guest instructions (sets \
     the checkpoint cadence when --checkpoint-every is not given; with it, \
     metrics follow the checkpoint cadence)."
  in
  Arg.(value & opt int 0 & info [ "metrics-every" ] ~docv:"INSNS" ~doc)

let ledger_arg =
  let doc =
    "Attribute coordination savings (sync ops and Sync-tagged host \
     instructions removed) to each optimization pass, statically per \
     translation and dynamically per TB execution, and print the per-pass \
     table (the paper's Fig. 17 breakdown)."
  in
  Arg.(value & flag & info [ "ledger" ] ~doc)

let log_level_arg =
  let doc = "Diagnostic log level: error, warn, info, debug or trace." in
  Arg.(value & opt string "warn" & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let stats_json_arg =
  let doc =
    "Write the final statistics (plus the ledger and trace summaries when \
     enabled) as one JSON object to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)

let perf_arg =
  let doc =
    "Attach the performance scope — deterministic per-phase and per-region \
     host-instruction attribution plus IRQ-latency, chain-latency and \
     checkpoint-interval histograms, all on the retired-guest-insn clock — \
     and write its JSON report (with the cost model and final statistics) \
     to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "perf" ] ~docv:"FILE" ~doc)

let flamegraph_arg =
  let doc =
    "Profile per-TB hotness and write a collapsed-stack (folded) flamegraph \
     — mode;privilege;symbol;tb;phase frames weighted by attributed host \
     instructions — to $(docv), ready for flamegraph.pl, inferno or \
     speedscope."
  in
  Arg.(value & opt (some string) None & info [ "flamegraph" ] ~docv:"FILE" ~doc)

let depot_save_arg =
  let doc =
    "After the run, save a persistent AOT depot (learned rule set + \
     translation recipes + health state) into directory $(docv) with a \
     crash-atomic generation commit, so later runs of the same \
     configuration can boot warm with --depot-load."
  in
  Arg.(value & opt (some string) None & info [ "depot-save" ] ~docv:"DIR" ~doc)

let depot_load_arg =
  let doc =
    "Warm-boot from the AOT depot in directory $(docv): adopt its embedded \
     rule set and pre-install its translation recipes so the run starts \
     with a hot code cache. An unreadable or incompatible depot degrades \
     to a normal cold start (exit code unaffected)."
  in
  Arg.(value & opt (some string) None & info [ "depot-load" ] ~docv:"DIR" ~doc)

let depot_verify_arg =
  let doc =
    "Verify the integrity and structure of the AOT depot in directory \
     $(docv) without running anything, then exit: 0 when sound, 7 naming \
     the damaged section otherwise."
  in
  Arg.(value & opt (some string) None & info [ "depot-verify" ] ~docv:"DIR" ~doc)

let coverage_arg =
  let doc =
    "Print the translation-quality observatory report: per-tier \
     retirement partition, opcode-class coverage matrix, per-rule \
     utilization/payoff ledger and the ranked rule-learning \
     opportunity queue. Purely observational — the run is \
     bit-identical with or without it."
  in
  Arg.(value & flag & info [ "coverage" ] ~doc)

let coverage_out_arg =
  let doc = "Write the coverage report as one JSON document to $(docv)." in
  Arg.(value & opt (some string) None & info [ "coverage-out" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "run one benchmark under one DBT engine" in
  Cmd.v
    (Cmd.info "repro-dbt-run" ~doc)
    Term.(
      const run_protected $ bench_arg $ mode_arg $ target_arg $ budget_arg
      $ timer_arg $ builtin_arg $ rules_arg $ dump_arg $ profile_arg $ inject_arg
      $ inject_rate_arg $ surface_arg $ shadow_arg $ quarantine_arg
      $ checkpoint_arg $ save_arg $ restore_arg $ replay_arg $ watchdog_arg
      $ postmortem_arg $ trace_arg $ trace_format_arg $ metrics_out_arg
      $ metrics_every_arg $ ledger_arg $ log_level_arg $ stats_json_arg
      $ perf_arg $ flamegraph_arg $ depot_save_arg $ depot_load_arg
      $ depot_verify_arg $ coverage_arg $ coverage_out_arg)

let () = exit (Cmd.eval cmd)
