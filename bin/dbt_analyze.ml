(* Offline analysis over the toolchain's JSON artifacts: phase
   breakdowns and A/B diffs of --stats-json / --perf files, top-N hot
   stacks of folded flamegraphs, trace/metrics JSONL summaries, and
   the benchmark-regression gate over consolidated BENCH_<rev>.json
   files (the CI gate).

   Exit codes: 0 success, 2 usage / malformed input, 7 regression
   (gate failure, or a diff above --fail-above). *)

module Obs = Repro_observe
module Jsonx = Obs.Jsonx
module A = Repro_perfscope.Analysis
open Cmdliner

let exit_regression = 7

let load_json path =
  try A.load_json path with
  | Sys_error e ->
    Printf.eprintf "%s\n" e;
    exit 2
  | Jsonx.Parse_error e ->
    Printf.eprintf "%s: %s\n" path e;
    exit 2

let load_jsonl path =
  try A.load_jsonl path with
  | Sys_error e ->
    Printf.eprintf "%s\n" e;
    exit 2
  | Jsonx.Parse_error e ->
    Printf.eprintf "%s: %s\n" path e;
    exit 2

let read_file path =
  try A.read_file path
  with Sys_error e ->
    Printf.eprintf "%s\n" e;
    exit 2

let pct part total =
  if total = 0 then 0. else 100. *. float_of_int part /. float_of_int total

(* --- phases: per-phase breakdown of one run --- *)

let phases file =
  let j = load_json file in
  (match (A.stat_int j "guest_insns", A.stat_int j "host_insns") with
  | Some g, Some h ->
    Printf.printf "guest insns  %d\nhost insns   %d\nhost/guest   %.3f\n\n" g h
      (if g = 0 then 0. else float_of_int h /. float_of_int g)
  | _ -> ());
  let rows = A.phase_totals j in
  if rows = [] then begin
    Printf.eprintf "%s: no phase data (no \"perf\" or \"stats\" section)\n" file;
    exit 2
  end;
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 rows in
  Printf.printf "%-12s %14s %8s\n" "phase" "host insns" "share";
  List.iter
    (fun (name, n) ->
      Printf.printf "%-12s %14d %7.2f%%\n" name n (pct n total))
    rows;
  Printf.printf "%-12s %14d\n" "total" total;
  0

(* --- diff: A/B per-phase comparison --- *)

let diff fail_above file_a file_b =
  let ja = load_json file_a and jb = load_json file_b in
  let rows = A.diff ja jb in
  if rows = [] then begin
    Printf.eprintf "no phase data to compare\n";
    exit 2
  end;
  Printf.printf "%-12s %14s %14s %9s\n" "phase" "a" "b" "delta";
  List.iter
    (fun r ->
      Printf.printf "%-12s %14d %14d %+8.1f%%\n" r.A.d_phase r.A.d_a r.A.d_b
        r.A.d_pct)
    rows;
  let m = A.max_abs_pct rows in
  Printf.printf "max |delta|  %.1f%%\n" m;
  match fail_above with
  | Some t when m > t ->
    Printf.eprintf "phase delta %.1f%% exceeds %.1f%%\n" m t;
    exit_regression
  | _ -> 0

(* --- top: hottest stacks of a folded flamegraph --- *)

let top n file =
  let samples =
    String.split_on_char '\n' (read_file file)
    |> List.filter_map (fun line ->
           match String.rindex_opt line ' ' with
           | Some i -> (
             let stack = String.sub line 0 i in
             let w = String.sub line (i + 1) (String.length line - i - 1) in
             match int_of_string_opt w with
             | Some w when stack <> "" -> Some (stack, w)
             | _ -> None)
           | None -> None)
  in
  if samples = [] then begin
    Printf.eprintf "%s: no folded samples\n" file;
    exit 2
  end;
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 samples in
  let sorted =
    List.sort (fun (sa, wa) (sb, wb) -> compare (wb, sa) (wa, sb)) samples
  in
  Printf.printf "%14s %8s  %s\n" "host insns" "share" "stack";
  List.iteri
    (fun i (stack, w) ->
      if i < n then Printf.printf "%14d %7.2f%%  %s\n" w (pct w total) stack)
    sorted;
  Printf.printf "(%d stacks, %d host insns total)\n" (List.length samples) total;
  0

(* --- trace: event census of a trace JSONL --- *)

let trace file =
  let vs = load_jsonl file in
  let tbl = Hashtbl.create 64 in
  let first = ref max_int and last = ref min_int and n_events = ref 0 in
  let dropped = ref 0 and total = ref 0 in
  List.iter
    (fun v ->
      match Jsonx.member "meta" v with
      | Some _ ->
        (* ring trailer *)
        (match Option.bind (Jsonx.member "dropped" v) Jsonx.to_int with
        | Some d -> dropped := d
        | None -> ());
        (match Option.bind (Jsonx.member "total" v) Jsonx.to_int with
        | Some t -> total := t
        | None -> ())
      | None -> (
        match
          ( Option.bind (Jsonx.member "cat" v) Jsonx.to_string,
            Option.bind (Jsonx.member "name" v) Jsonx.to_string,
            Option.bind (Jsonx.member "at" v) Jsonx.to_int )
        with
        | Some cat, Some name, Some at ->
          incr n_events;
          if at < !first then first := at;
          if at > !last then last := at;
          let key = (cat, name) in
          Hashtbl.replace tbl key
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
        | _ -> ()))
    vs;
  if !n_events = 0 then begin
    Printf.eprintf "%s: no trace events\n" file;
    exit 2
  end;
  Printf.printf "%d events spanning guest insns %d..%d" !n_events !first !last;
  if !total > 0 then Printf.printf " (%d captured, %d dropped)" !total !dropped;
  Printf.printf "\n\n%-12s %-24s %10s\n" "category" "event" "count";
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun ((ca, na), wa) ((cb, nb), wb) ->
         compare (wb, ca, na) (wa, cb, nb))
  |> List.iter (fun ((cat, name), n) ->
         Printf.printf "%-12s %-24s %10d\n" cat name n);
  0

(* --- metrics: interval table of a metrics JSONL --- *)

let metrics file =
  let vs = load_jsonl file in
  let rows =
    List.filter_map
      (fun v ->
        let d = Jsonx.member "delta" v in
        let field name =
          Option.bind d (fun d -> Option.bind (Jsonx.member name d) Jsonx.to_int)
        in
        match
          ( Option.bind (Jsonx.member "at" v) Jsonx.to_int,
            field "guest_insns",
            field "host_insns",
            field "sync_ops" )
        with
        | Some at, Some g, Some h, Some s -> Some (at, g, h, s)
        | _ -> None)
      vs
  in
  if rows = [] then begin
    Printf.eprintf "%s: no metrics intervals\n" file;
    exit 2
  end;
  Printf.printf "%14s %12s %12s %10s %10s\n" "at" "d guest" "d host" "d sync"
    "host/guest";
  List.iter
    (fun (at, g, h, s) ->
      Printf.printf "%14d %12d %12d %10d %10.3f\n" at g h s
        (if g = 0 then 0. else float_of_int h /. float_of_int g))
    rows;
  0

(* --- gate: the benchmark-regression gate --- *)

let status_string = function
  | A.Gate_ok -> "ok"
  | A.Gate_regressed p -> Printf.sprintf "REGRESSED (+%.1f%%)" p
  | A.Gate_missing -> "MISSING"
  | A.Gate_empty -> "EMPTY (zero guest insns)"

let gate threshold baseline current =
  let decode path =
    match A.bench_of_json (load_json path) with
    | Some b -> b
    | None ->
      Printf.eprintf "%s: not a consolidated BENCH file\n" path;
      exit 2
  in
  let base = decode baseline and cur = decode current in
  Printf.printf
    "baseline rev %s (target %d)\ncurrent  rev %s (target %d)\nthreshold    \
     %.1f%% on host-insn/guest-insn, rule-enabled slices\n\n"
    base.A.bf_rev base.A.bf_target cur.A.bf_rev cur.A.bf_target threshold;
  let ok, rows = A.gate ~threshold_pct:threshold ~baseline:base ~current:cur () in
  Printf.printf "%-28s %10s %10s %9s  %s\n" "slice" "baseline" "current"
    "delta" "status";
  List.iter
    (fun r ->
      Printf.printf "%-28s %10.3f %10.3f %+8.1f%%  %s\n" r.A.g_name r.A.g_base
        r.A.g_cur r.A.g_pct (status_string r.A.g_status))
    rows;
  if ok then begin
    Printf.printf "\ngate: OK\n";
    0
  end
  else begin
    Printf.printf "\ngate: FAILED\n";
    exit_regression
  end

(* --- command line --- *)

let file_pos ~docv ~doc n = Arg.(required & pos n (some string) None & info [] ~docv ~doc)

let phases_cmd =
  let doc = "per-phase host-instruction breakdown of one run" in
  Cmd.v (Cmd.info "phases" ~doc)
    Term.(const phases $ file_pos ~docv:"STATS.json" ~doc:"A --stats-json or --perf file." 0)

let diff_cmd =
  let doc = "A/B per-phase comparison of two runs" in
  let fail_above =
    let doc = "Exit 7 when any phase's |delta| exceeds $(docv) percent." in
    Arg.(value & opt (some float) None & info [ "fail-above" ] ~docv:"PCT" ~doc)
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(
      const diff $ fail_above
      $ file_pos ~docv:"A.json" ~doc:"Baseline run (--stats-json/--perf output)." 0
      $ file_pos ~docv:"B.json" ~doc:"Candidate run." 1)

let top_cmd =
  let doc = "hottest stacks of a folded flamegraph" in
  let n_arg =
    let doc = "Show the $(docv) hottest stacks." in
    Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc)
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const top $ n_arg
      $ file_pos ~docv:"FOLDED" ~doc:"A --flamegraph collapsed-stack file." 0)

let trace_cmd =
  let doc = "event census of a --trace JSONL file" in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const trace $ file_pos ~docv:"TRACE.jsonl" ~doc:"A --trace jsonl file." 0)

let metrics_cmd =
  let doc = "interval table of a --metrics-out JSONL file" in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const metrics $ file_pos ~docv:"METRICS.jsonl" ~doc:"A --metrics-out file." 0)

let gate_cmd =
  let doc = "benchmark-regression gate: current BENCH file vs baseline" in
  let threshold =
    let doc =
      "Allowed host-insn/guest-insn regression per rule-enabled slice, percent."
    in
    Arg.(value & opt float 5.0 & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  Cmd.v (Cmd.info "gate" ~doc)
    Term.(
      const gate $ threshold
      $ file_pos ~docv:"BASELINE.json" ~doc:"The committed BENCH_baseline.json." 0
      $ file_pos ~docv:"CURRENT.json" ~doc:"A freshly generated BENCH_<rev>.json." 1)

let cmd =
  let doc = "analyze DBT performance artifacts" in
  Cmd.group
    (Cmd.info "repro-dbt-analyze" ~doc)
    [ phases_cmd; diff_cmd; top_cmd; trace_cmd; metrics_cmd; gate_cmd ]

let () = exit (Cmd.eval' cmd)
