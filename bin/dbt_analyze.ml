(* Offline analysis over the toolchain's JSON artifacts: phase
   breakdowns and A/B diffs of --stats-json / --perf files, top-N hot
   stacks of folded flamegraphs, trace/metrics JSONL summaries,
   fleet-telemetry digests (summary / per-machine / timeline views of
   a dbt_fleet --telemetry series.json), coverage-report views
   (matrix / rules / opportunities / gate over a --coverage-out
   document), and the benchmark-regression gate over consolidated
   BENCH_<rev>.json files (the CI gate).

   Exit codes: 0 success, 2 usage / malformed input, 3 wrong document
   kind (the file's "meta" tag names another subcommand's artifact),
   7 regression (gate failure, a diff above --fail-above, or a
   coverage gate violation). *)

module Obs = Repro_observe
module Jsonx = Obs.Jsonx
module A = Repro_perfscope.Analysis
open Cmdliner

let exit_regression = 7
let exit_kind = 3

(* Every subcommand validates the document kind of its input before
   interpreting it — feeding a stats file to [fleet] (or vice versa)
   diagnoses itself in one line instead of printing empty tables. *)
let require_kind ?require ~expect path j =
  match A.check_kind ?require ~expect j with
  | Ok () -> ()
  | Error reason ->
    Printf.eprintf "%s: %s\n" path reason;
    exit exit_kind

let require_kind_lines ~expect path vs =
  List.iter (fun v -> require_kind ~expect path v) vs

let load_json path =
  try A.load_json path with
  | Sys_error e ->
    Printf.eprintf "%s\n" e;
    exit 2
  | Jsonx.Parse_error e ->
    Printf.eprintf "%s: %s\n" path e;
    exit 2

let load_jsonl path =
  try A.load_jsonl path with
  | Sys_error e ->
    Printf.eprintf "%s\n" e;
    exit 2
  | Jsonx.Parse_error e ->
    Printf.eprintf "%s: %s\n" path e;
    exit 2

let read_file path =
  try A.read_file path
  with Sys_error e ->
    Printf.eprintf "%s\n" e;
    exit 2

let pct part total =
  if total = 0 then 0. else 100. *. float_of_int part /. float_of_int total

(* --- phases: per-phase breakdown of one run --- *)

let phases file =
  let j = load_json file in
  require_kind ~expect:"dbt-stats" file j;
  (match (A.stat_int j "guest_insns", A.stat_int j "host_insns") with
  | Some g, Some h ->
    Printf.printf "guest insns  %d\nhost insns   %d\nhost/guest   %.3f\n\n" g h
      (if g = 0 then 0. else float_of_int h /. float_of_int g)
  | _ -> ());
  let rows = A.phase_totals j in
  if rows = [] then begin
    Printf.eprintf "%s: no phase data (no \"perf\" or \"stats\" section)\n" file;
    exit 2
  end;
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 rows in
  Printf.printf "%-12s %14s %8s\n" "phase" "host insns" "share";
  List.iter
    (fun (name, n) ->
      Printf.printf "%-12s %14d %7.2f%%\n" name n (pct n total))
    rows;
  Printf.printf "%-12s %14d\n" "total" total;
  0

(* --- diff: A/B per-phase comparison --- *)

let diff fail_above file_a file_b =
  let ja = load_json file_a and jb = load_json file_b in
  require_kind ~expect:"dbt-stats" file_a ja;
  require_kind ~expect:"dbt-stats" file_b jb;
  let rows = A.diff ja jb in
  if rows = [] then begin
    Printf.eprintf "no phase data to compare\n";
    exit 2
  end;
  Printf.printf "%-12s %14s %14s %9s\n" "phase" "a" "b" "delta";
  List.iter
    (fun r ->
      Printf.printf "%-12s %14d %14d %+8.1f%%\n" r.A.d_phase r.A.d_a r.A.d_b
        r.A.d_pct)
    rows;
  let m = A.max_abs_pct rows in
  Printf.printf "max |delta|  %.1f%%\n" m;
  match fail_above with
  | Some t when m > t ->
    Printf.eprintf "phase delta %.1f%% exceeds %.1f%%\n" m t;
    exit_regression
  | _ -> 0

(* --- top: hottest stacks of a folded flamegraph --- *)

let top n file =
  let content = read_file file in
  (* A folded flamegraph is plain text; a tagged JSON artifact here is
     a document-kind mistake worth its own diagnosis. *)
  (match try Some (Jsonx.parse content) with Jsonx.Parse_error _ -> None with
  | Some j when Jsonx.member "meta" j <> None ->
    require_kind ~require:true ~expect:"folded-flamegraph" file j
  | _ -> ());
  let samples =
    String.split_on_char '\n' content
    |> List.filter_map (fun line ->
           match String.rindex_opt line ' ' with
           | Some i -> (
             let stack = String.sub line 0 i in
             let w = String.sub line (i + 1) (String.length line - i - 1) in
             match int_of_string_opt w with
             | Some w when stack <> "" -> Some (stack, w)
             | _ -> None)
           | None -> None)
  in
  if samples = [] then begin
    Printf.eprintf "%s: no folded samples\n" file;
    exit 2
  end;
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 samples in
  let sorted =
    List.sort (fun (sa, wa) (sb, wb) -> compare (wb, sa) (wa, sb)) samples
  in
  Printf.printf "%14s %8s  %s\n" "host insns" "share" "stack";
  List.iteri
    (fun i (stack, w) ->
      if i < n then Printf.printf "%14d %7.2f%%  %s\n" w (pct w total) stack)
    sorted;
  Printf.printf "(%d stacks, %d host insns total)\n" (List.length samples) total;
  0

(* --- trace: event census of a trace JSONL --- *)

let trace file =
  let vs = load_jsonl file in
  require_kind_lines ~expect:"trace" file vs;
  let tbl = Hashtbl.create 64 in
  let first = ref max_int and last = ref min_int and n_events = ref 0 in
  let dropped = ref 0 and total = ref 0 in
  List.iter
    (fun v ->
      match Jsonx.member "meta" v with
      | Some _ ->
        (* ring trailer *)
        (match Option.bind (Jsonx.member "dropped" v) Jsonx.to_int with
        | Some d -> dropped := d
        | None -> ());
        (match Option.bind (Jsonx.member "total" v) Jsonx.to_int with
        | Some t -> total := t
        | None -> ())
      | None -> (
        match
          ( Option.bind (Jsonx.member "cat" v) Jsonx.to_string,
            Option.bind (Jsonx.member "name" v) Jsonx.to_string,
            Option.bind (Jsonx.member "at" v) Jsonx.to_int )
        with
        | Some cat, Some name, Some at ->
          incr n_events;
          if at < !first then first := at;
          if at > !last then last := at;
          let key = (cat, name) in
          Hashtbl.replace tbl key
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
        | _ -> ()))
    vs;
  if !n_events = 0 then begin
    Printf.eprintf "%s: no trace events\n" file;
    exit 2
  end;
  Printf.printf "%d events spanning guest insns %d..%d" !n_events !first !last;
  if !total > 0 then Printf.printf " (%d captured, %d dropped)" !total !dropped;
  Printf.printf "\n\n%-12s %-24s %10s\n" "category" "event" "count";
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun ((ca, na), wa) ((cb, nb), wb) ->
         compare (wb, ca, na) (wa, cb, nb))
  |> List.iter (fun ((cat, name), n) ->
         Printf.printf "%-12s %-24s %10d\n" cat name n);
  0

(* --- metrics: interval table of a metrics JSONL --- *)

let metrics file =
  let vs = load_jsonl file in
  require_kind_lines ~expect:"metrics" file vs;
  let rows =
    List.filter_map
      (fun v ->
        let d = Jsonx.member "delta" v in
        let field name =
          Option.bind d (fun d -> Option.bind (Jsonx.member name d) Jsonx.to_int)
        in
        match
          ( Option.bind (Jsonx.member "at" v) Jsonx.to_int,
            field "guest_insns",
            field "host_insns",
            field "sync_ops" )
        with
        | Some at, Some g, Some h, Some s -> Some (at, g, h, s)
        | _ -> None)
      vs
  in
  if rows = [] then begin
    Printf.eprintf "%s: no metrics intervals\n" file;
    exit 2
  end;
  Printf.printf "%14s %12s %12s %10s %10s\n" "at" "d guest" "d host" "d sync"
    "host/guest";
  List.iter
    (fun (at, g, h, s) ->
      Printf.printf "%14d %12d %12d %10d %10.3f\n" at g h s
        (if g = 0 then 0. else float_of_int h /. float_of_int g))
    rows;
  0

(* --- fleet: digest of a dbt_fleet --telemetry series.json --- *)

let fleet_view view file =
  let j = load_json file in
  require_kind ~require:true ~expect:"fleet-telemetry" file j;
  let geti name v = Option.bind (Jsonx.member name v) Jsonx.to_int in
  let getf name v = Option.bind (Jsonx.member name v) Jsonx.to_float in
  let gets name v = Option.bind (Jsonx.member name v) Jsonx.to_string in
  let getl name v = Option.bind (Jsonx.member name v) Jsonx.to_list in
  let int0 name v = Option.value ~default:0 (geti name v) in
  let samples = Option.value ~default:[] (getl "samples" j) in
  let final = Jsonx.member "final" j in
  let machines = Option.value ~default:[] (Option.bind final (getl "machines")) in
  let anomaly = Option.bind final (Jsonx.member "anomaly") in
  let scores =
    match Option.bind anomaly (getl "scores") with
    | Some l -> List.filter_map Jsonx.to_float l
    | None -> []
  in
  match view with
  | `Summary ->
    Printf.printf "fleet telemetry: %d machine(s), %d sample(s), every %d\n"
      (int0 "machines" j) (List.length samples) (int0 "every" j);
    (match List.rev samples with
    | last :: _ ->
      Printf.printf
        "at request %d: %d serving, %d served ok, %d timed out, %d shed, %d \
         breaker trip(s)\n"
        (int0 "at" last) (int0 "serving" last) (int0 "served_ok" last)
        (int0 "timed_out" last) (int0 "shed" last) (int0 "breaker_trips" last)
    | [] -> ());
    (match Option.bind final (Jsonx.member "latency") with
    | Some lat ->
      Printf.printf "serve latency: count %d, p50 %d, p99 %d (guest insns)\n"
        (int0 "count" lat) (int0 "p50" lat) (int0 "p99" lat)
    | None -> ());
    (match anomaly with
    | Some a ->
      let flagged =
        match getl "flagged" a with
        | Some l -> List.filter_map Jsonx.to_int l
        | None -> []
      in
      Printf.printf "anomaly threshold %.3f; flagged: %s\n"
        (Option.value ~default:0. (getf "threshold" a))
        (if flagged = [] then "none"
         else String.concat ", " (List.map string_of_int flagged));
      (match geti "top" a with
      | Some i -> Printf.printf "most anomalous machine: %d\n" i
      | None -> ())
    | None -> ());
    0
  | `Machines ->
    Printf.printf "%3s %-12s %14s %14s %8s %8s %9s\n" "id" "health"
      "work insns" "phase insns" "served" "p99" "score";
    List.iteri
      (fun i m ->
        let phase_total =
          match Option.bind (Jsonx.member "phases" m) (fun p ->
                    match p with
                    | Jsonx.Obj fields ->
                      Some
                        (List.fold_left
                           (fun acc (_, v) ->
                             acc + Option.value ~default:0 (Jsonx.to_int v))
                           0 fields)
                    | _ -> None)
          with
          | Some n -> n
          | None -> 0
        in
        let lat = Jsonx.member "latency" m in
        Printf.printf "%3d %-12s %14d %14d %8d %8d %9.3f\n" (int0 "id" m)
          (Option.value ~default:"?" (gets "health" m))
          (int0 "work_insns" m) phase_total
          (match lat with Some l -> int0 "count" l | None -> 0)
          (match lat with Some l -> int0 "p99" l | None -> 0)
          (match List.nth_opt scores i with Some s -> s | None -> 0.))
      machines;
    0
  | `Timeline ->
    Printf.printf "%10s %8s %10s %10s %6s %8s %14s\n" "at" "serving"
      "served_ok" "timed_out" "shed" "breaker" "d work";
    List.iter
      (fun s ->
        let work_delta =
          match getl "machines" s with
          | Some ms ->
            List.fold_left (fun acc m -> acc + int0 "work_delta" m) 0 ms
          | None -> 0
        in
        Printf.printf "%10d %8d %10d %10d %6d %8d %14d\n" (int0 "at" s)
          (int0 "serving" s) (int0 "served_ok" s) (int0 "timed_out" s)
          (int0 "shed" s) (int0 "breaker_trips" s) work_delta)
      samples;
    0

(* --- coverage: views of a --coverage-out translation-quality report --- *)

let coverage_view view min_coverage file =
  let j = load_json file in
  require_kind ~require:true ~expect:"dbt-coverage" file j;
  let geti name v = Option.bind (Jsonx.member name v) Jsonx.to_int in
  let getf name v = Option.bind (Jsonx.member name v) Jsonx.to_float in
  let gets name v = Option.bind (Jsonx.member name v) Jsonx.to_string in
  let getl name v = Option.bind (Jsonx.member name v) Jsonx.to_list in
  let getb name v = Option.bind (Jsonx.member name v) Jsonx.to_bool in
  let int0 name v = Option.value ~default:0 (geti name v) in
  let flt0 name v = Option.value ~default:0. (getf name v) in
  let guest = int0 "guest_insns" j in
  let cov = 100. *. flt0 "coverage" j in
  Printf.printf "coverage report: %d retired guest insns, %.1f%% rule/region tier\n"
    guest cov;
  match view with
  | `Matrix ->
    let rows = Option.value ~default:[] (getl "matrix" j) in
    Printf.printf "\n%-12s %12s %12s %9s\n" "class" "insns" "host" "coverage";
    List.iter
      (fun r ->
        Printf.printf "%-12s %12d %12d %8.1f%%\n"
          (Option.value ~default:"?" (gets "class" r))
          (int0 "insns" r) (int0 "cost" r)
          (100. *. flt0 "coverage" r))
      rows;
    0
  | `Rules ->
    let rows = Option.value ~default:[] (getl "rules" j) in
    Printf.printf "\n%-28s %10s %12s %10s  flags\n" "rule" "hits" "host" "payoff";
    List.iter
      (fun r ->
        let flag name key =
          if Option.value ~default:false (getb key r) then [ name ] else []
        in
        let flags = flag "dead" "dead" @ flag "negative-payoff" "negative_payoff" in
        Printf.printf "%-28s %10d %12d %10.0f  %s\n"
          (Option.value ~default:"?" (gets "name" r))
          (int0 "hits" r) (int0 "dyn_cost" r) (flt0 "payoff" r)
          (if flags = [] then "-" else String.concat "," flags))
      rows;
    0
  | `Opportunities ->
    let rows = Option.value ~default:[] (getl "opportunities" j) in
    Printf.printf "\n%-12s %-16s %10s %10s %12s\n" "class" "idiom" "insns"
      "mean host" "est savings";
    List.iter
      (fun r ->
        Printf.printf "%-12s %-16s %10d %10.2f %12.0f\n"
          (Option.value ~default:"?" (gets "class" r))
          (Option.value ~default:"?" (gets "idiom" r))
          (int0 "insns" r) (flt0 "mean_cost" r) (flt0 "est_savings" r))
      rows;
    0
  | `Gate -> (
    (* The partition invariant, re-asserted offline: every retired
       guest instruction is charged to exactly one tier, so the tier
       counts must sum to the retirement total. *)
    let tiers =
      match Jsonx.member "tiers" j with Some (Jsonx.Obj fields) -> fields | _ -> []
    in
    let tier_sum = List.fold_left (fun acc (_, v) -> acc + int0 "insns" v) 0 tiers in
    if tier_sum <> guest then begin
      Printf.eprintf
        "%s: tier partition broken: tiers sum to %d, %d guest insns retired\n" file
        tier_sum guest;
      exit_regression
    end
    else begin
      Printf.printf "tier partition: OK (%d insns across %d tier(s))\n" tier_sum
        (List.length (List.filter (fun (_, v) -> int0 "insns" v > 0) tiers));
      match min_coverage with
      | Some t when cov < t ->
        Printf.eprintf "%s: coverage %.1f%% below required %.1f%%\n" file cov t;
        exit_regression
      | Some t ->
        Printf.printf "coverage %.1f%% >= required %.1f%%: OK\n" cov t;
        0
      | None -> 0
    end)

(* --- gate: the benchmark-regression gate --- *)

let status_string = function
  | A.Gate_ok -> "ok"
  | A.Gate_regressed p -> Printf.sprintf "REGRESSED (+%.1f%%)" p
  | A.Gate_missing -> "MISSING"
  | A.Gate_empty -> "EMPTY (zero guest insns)"

let gate threshold baseline current =
  let decode path =
    let j = load_json path in
    require_kind ~expect:"bench" path j;
    match A.bench_of_json j with
    | Some b -> b
    | None ->
      Printf.eprintf "%s: not a consolidated BENCH file\n" path;
      exit 2
  in
  let base = decode baseline and cur = decode current in
  Printf.printf
    "baseline rev %s (target %d)\ncurrent  rev %s (target %d)\nthreshold    \
     %.1f%% on host-insn/guest-insn, rule-enabled slices\n\n"
    base.A.bf_rev base.A.bf_target cur.A.bf_rev cur.A.bf_target threshold;
  let ok, rows = A.gate ~threshold_pct:threshold ~baseline:base ~current:cur () in
  Printf.printf "%-28s %10s %10s %9s  %s\n" "slice" "baseline" "current"
    "delta" "status";
  List.iter
    (fun r ->
      Printf.printf "%-28s %10.3f %10.3f %+8.1f%%  %s\n" r.A.g_name r.A.g_base
        r.A.g_cur r.A.g_pct (status_string r.A.g_status))
    rows;
  if ok then begin
    Printf.printf "\ngate: OK\n";
    0
  end
  else begin
    Printf.printf "\ngate: FAILED\n";
    exit_regression
  end

(* --- command line --- *)

let file_pos ~docv ~doc n = Arg.(required & pos n (some string) None & info [] ~docv ~doc)

let phases_cmd =
  let doc = "per-phase host-instruction breakdown of one run" in
  Cmd.v (Cmd.info "phases" ~doc)
    Term.(const phases $ file_pos ~docv:"STATS.json" ~doc:"A --stats-json or --perf file." 0)

let diff_cmd =
  let doc = "A/B per-phase comparison of two runs" in
  let fail_above =
    let doc = "Exit 7 when any phase's |delta| exceeds $(docv) percent." in
    Arg.(value & opt (some float) None & info [ "fail-above" ] ~docv:"PCT" ~doc)
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(
      const diff $ fail_above
      $ file_pos ~docv:"A.json" ~doc:"Baseline run (--stats-json/--perf output)." 0
      $ file_pos ~docv:"B.json" ~doc:"Candidate run." 1)

let top_cmd =
  let doc = "hottest stacks of a folded flamegraph" in
  let n_arg =
    let doc = "Show the $(docv) hottest stacks." in
    Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc)
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const top $ n_arg
      $ file_pos ~docv:"FOLDED" ~doc:"A --flamegraph collapsed-stack file." 0)

let trace_cmd =
  let doc = "event census of a --trace JSONL file" in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const trace $ file_pos ~docv:"TRACE.jsonl" ~doc:"A --trace jsonl file." 0)

let metrics_cmd =
  let doc = "interval table of a --metrics-out JSONL file" in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const metrics $ file_pos ~docv:"METRICS.jsonl" ~doc:"A --metrics-out file." 0)

let fleet_cmd =
  let doc = "digest of a repro-dbt-fleet --telemetry series.json" in
  let view =
    let doc = "What to print: summary, machines, or timeline." in
    let view_conv =
      Arg.enum
        [ ("summary", `Summary); ("machines", `Machines); ("timeline", `Timeline) ]
    in
    Arg.(value & opt view_conv `Summary & info [ "view" ] ~docv:"VIEW" ~doc)
  in
  Cmd.v (Cmd.info "fleet" ~doc)
    Term.(
      const fleet_view $ view
      $ file_pos ~docv:"SERIES.json"
          ~doc:"A --telemetry series.json written by repro-dbt-fleet." 0)

let coverage_cmd =
  let doc = "views of a repro-dbt-run --coverage-out translation-quality report" in
  let view =
    let doc = "What to print: matrix, rules, opportunities, or gate." in
    let view_conv =
      Arg.enum
        [
          ("matrix", `Matrix);
          ("rules", `Rules);
          ("opportunities", `Opportunities);
          ("gate", `Gate);
        ]
    in
    Arg.(value & opt view_conv `Matrix & info [ "view" ] ~docv:"VIEW" ~doc)
  in
  let min_coverage =
    let doc =
      "With --view gate: exit 7 when the rule+region tier share is below $(docv) \
       percent."
    in
    Arg.(value & opt (some float) None & info [ "min-coverage" ] ~docv:"PCT" ~doc)
  in
  Cmd.v (Cmd.info "coverage" ~doc)
    Term.(
      const coverage_view $ view $ min_coverage
      $ file_pos ~docv:"COVERAGE.json" ~doc:"A --coverage-out report." 0)

let gate_cmd =
  let doc = "benchmark-regression gate: current BENCH file vs baseline" in
  let threshold =
    let doc =
      "Allowed host-insn/guest-insn regression per rule-enabled slice, percent."
    in
    Arg.(value & opt float 5.0 & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  Cmd.v (Cmd.info "gate" ~doc)
    Term.(
      const gate $ threshold
      $ file_pos ~docv:"BASELINE.json" ~doc:"The committed BENCH_baseline.json." 0
      $ file_pos ~docv:"CURRENT.json" ~doc:"A freshly generated BENCH_<rev>.json." 1)

let cmd =
  let doc = "analyze DBT performance artifacts" in
  Cmd.group
    (Cmd.info "repro-dbt-analyze" ~doc)
    [
      phases_cmd;
      diff_cmd;
      top_cmd;
      trace_cmd;
      metrics_cmd;
      fleet_cmd;
      coverage_cmd;
      gate_cmd;
    ]

let () = exit (Cmd.eval' cmd)
