module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module Fi = Repro_faultinject.Faultinject
module Res = Repro_resilience
module Obs = Repro_observe
module Jsonx = Obs.Jsonx
module Histo = Repro_perfscope.Histo
module Tel = Repro_telemetry

(* Fleet observability tests: histogram merge semantics, JSON
   round-tripping of telemetry documents, the observational-identity
   invariant (a collector changes nothing), anomaly detection against
   fault-injection ground truth, SLO evaluation, and the merged
   Perfetto export. *)

let target = 60_000
let warm = 4_000

(* One warm base snapshot shared by every test in this module. *)
let base =
  lazy
    (let spec = W.find "gcc" in
     let iters = max 1 (target / W.insns_per_iteration spec) in
     let user = W.generate spec ~iterations:iters in
     let image = K.build ~timer_period:5_000 ~user_program:user () in
     let inject = Fi.create ~seed:1 ~rate:0.0 ~behavior:Fi.Surface () in
     let sys =
       D.System.create ~inject ~shadow_depth:4 ~quarantine_threshold:2
         (D.System.Rules D.Opt.full)
     in
     K.load image (fun b words -> D.System.load_image sys b words);
     match
       (D.System.run ~max_guest_insns:warm ~checkpoint_every:warm sys)
         .T.Engine.reason
     with
     | `Insn_limit -> D.System.snapshot sys
     | _ -> Alcotest.fail "warm boot did not reach the instruction limit")

let policy =
  {
    Res.Supervisor.default_policy with
    Res.Supervisor.deadline = 10 * target;
    checkpoint_every = 2_000;
    retry_budget = 3;
  }

let chaos_plan ~machines ~faulty ~seed () =
  Fi.Plan.make ~seed ~machines ~faulty
    [
      (Fi.Bus_read, 0.0002);
      (Fi.Bus_write, 0.0002);
      (Fi.Tb_flush, 0.0001);
      (Fi.Rule_corrupt, 0.05);
    ]

(* Run one chaos drill; with [collect], a telemetry collector ticks
   after every request (exactly how dbt_fleet drives it). *)
let drill ?(machines = 3) ?(faulty = 1) ?(requests = 9) ~seed ~collect () =
  let plan = chaos_plan ~machines ~faulty ~seed () in
  let fleet =
    Res.Fleet.create ~plan
      ~config:{ Res.Fleet.machines; min_healthy = 1; policy }
      (Lazy.force base)
  in
  let collector =
    if collect then Some (Tel.Collector.create ~every:3 fleet) else None
  in
  (match collector with
  | Some c ->
    Res.Fleet.run fleet ~after_each:(fun () -> Tel.Collector.tick c) ~requests;
    Tel.Collector.finish c
  | None -> Res.Fleet.run fleet ~requests);
  ignore (Res.Fleet.final_verify fleet);
  (fleet, collector, plan)

(* ---- Histo.merge ---- *)

(* Deterministic pseudo-random sample streams without any PRNG state. *)
let samples seed n =
  List.init n (fun i ->
      let h = (((i + 1) * 2654435761) + (seed * 40503)) land 0xFFFFFF in
      h mod 200_000)

let test_histo_merge_concat () =
  let streams = [ samples 1 500; samples 2 173; samples 3 0; samples 4 61 ] in
  let parts =
    List.map
      (fun s ->
        let h = Histo.create () in
        List.iter (Histo.record h) s;
        h)
      streams
  in
  let concat = Histo.create () in
  List.iter (List.iter (Histo.record concat)) streams;
  let merged = Histo.create () in
  List.iter (fun p -> Histo.merge ~into:merged p) parts;
  Alcotest.(check string)
    "merge of N == histogram of concatenated samples" (Histo.to_json concat)
    (Histo.to_json merged);
  (* merge order is irrelevant *)
  let merged_rev = Histo.create () in
  List.iter (fun p -> Histo.merge ~into:merged_rev p) (List.rev parts);
  Alcotest.(check string)
    "merge is order-insensitive" (Histo.to_json merged)
    (Histo.to_json merged_rev);
  (* quantiles of the merge are the quantiles of the union *)
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%g deterministic" p)
        (Histo.percentile concat p) (Histo.percentile merged p))
    [ 50.; 90.; 99.; 100. ];
  (* src histograms are unchanged by the merge *)
  Alcotest.(check string)
    "src unchanged"
    (Histo.to_json (List.hd parts))
    (let h = Histo.create () in
     List.iter (Histo.record h) (List.hd streams);
     Histo.to_json h)

(* Associativity: the grouping of merges never matters. The fleet
   derives its histogram by folding machine histograms left-to-right;
   the telemetry layer merges per-machine then fleet-wide — both
   groupings must agree bucket-for-bucket. *)
let test_histo_merge_assoc () =
  let mk s =
    let h = Histo.create () in
    List.iter (Histo.record h) s;
    h
  in
  let sa = samples 5 321 and sb = samples 6 87 and sc = samples 7 144 in
  (* left fold: (a + b) + c *)
  let left = mk sa in
  Histo.merge ~into:left (mk sb);
  Histo.merge ~into:left (mk sc);
  (* right fold: a + (b + c) *)
  let bc = mk sb in
  Histo.merge ~into:bc (mk sc);
  let right = mk sa in
  Histo.merge ~into:right bc;
  Alcotest.(check string)
    "merge is associative" (Histo.to_json left) (Histo.to_json right);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%g agrees across groupings" p)
        (Histo.percentile left p) (Histo.percentile right p))
    [ 50.; 90.; 99.; 100. ]

(* ---- Jsonx round-trip ---- *)

let test_jsonx_roundtrip_telemetry () =
  let _, collector, _ = drill ~seed:42 ~collect:true () in
  let doc = Tel.Collector.to_json (Option.get collector) in
  let v = Jsonx.parse doc in
  (* parse . render is the identity on parsed values *)
  Alcotest.(check bool)
    "parse (render v) = v" true
    (Jsonx.parse (Jsonx.render v) = v);
  (* and render . parse . render is render (stable re-rendering) *)
  Alcotest.(check string)
    "render is stable" (Jsonx.render v)
    (Jsonx.render (Jsonx.parse (Jsonx.render v)));
  (* a nasty nested document with every value shape *)
  let nasty =
    Jsonx.obj
      [
        ("s", Jsonx.str "q\"uote\\back\nslash\twith \xe2\x82\xac utf8");
        ("i", Jsonx.int (-123456789));
        ("f", Jsonx.float 0.001953125);
        ("b", Jsonx.bool false);
        ("n", "null");
        ("a", Jsonx.arr [ Jsonx.obj [ ("deep", Jsonx.arr [ Jsonx.int 1 ]) ] ]);
        ("empty_obj", Jsonx.obj []);
        ("empty_arr", Jsonx.arr []);
      ]
  in
  let nv = Jsonx.parse nasty in
  Alcotest.(check bool)
    "nested round-trip" true
    (Jsonx.parse (Jsonx.render nv) = nv)

(* ---- observational identity ---- *)

let test_collector_is_observational () =
  let fleet_a, collector, _ = drill ~seed:42 ~collect:true () in
  let fleet_b, _, _ = drill ~seed:42 ~collect:false () in
  Alcotest.(check string)
    "drill report identical with and without a collector"
    (Res.Fleet.metrics_json fleet_b)
    (Res.Fleet.metrics_json fleet_a);
  (* and the telemetry document itself is a same-seed invariant *)
  let _, collector2, _ = drill ~seed:42 ~collect:true () in
  Alcotest.(check string)
    "telemetry document deterministic"
    (Tel.Collector.to_json (Option.get collector))
    (Tel.Collector.to_json (Option.get collector2))

(* ---- anomaly detection ---- *)

let test_anomaly_flags_faulty () =
  let fleet, collector, plan = drill ~seed:42 ~collect:true () in
  ignore collector;
  let signatures =
    List.init (Res.Fleet.machines fleet) (fun i ->
        let s = Res.Fleet.supervisor fleet i in
        ( Repro_perfscope.Scope.phase_vector (Res.Supervisor.scope s),
          Histo.sum (Res.Supervisor.latency s) ))
  in
  let scores = Tel.Anomaly.scores signatures in
  let faulty = Fi.Plan.faulty_machines plan in
  Alcotest.(check (list int))
    "every fault-injected machine is flagged" faulty
    (Tel.Anomaly.flagged ~threshold:Tel.Collector.default_threshold scores);
  (match Tel.Anomaly.top scores with
  | Some top ->
    Alcotest.(check bool)
      "top scorer is fault-injected" true (List.mem top faulty)
  | None -> Alcotest.fail "no top scorer");
  (* deterministic across same-seed drills *)
  let fleet2, _, _ = drill ~seed:42 ~collect:false () in
  let signatures2 =
    List.init (Res.Fleet.machines fleet2) (fun i ->
        let s = Res.Fleet.supervisor fleet2 i in
        ( Repro_perfscope.Scope.phase_vector (Res.Supervisor.scope s),
          Histo.sum (Res.Supervisor.latency s) ))
  in
  Alcotest.(check (list (float 0.)))
    "scores deterministic" scores
    (Tel.Anomaly.scores signatures2)

let test_anomaly_math () =
  (* median is robust: one wild row does not move it *)
  let rows = [ [| 1.; 2. |]; [| 1.; 2. |]; [| 100.; 0. |] ] in
  Alcotest.(check (array (float 0.)))
    "lower median ignores the outlier" [| 1.; 2. |] (Tel.Anomaly.median rows);
  (* Canberra distance is bounded by the dimension count *)
  let d = Tel.Anomaly.distance [| 0.; 5.; 1. |] [| 9.; 0.; 1. |] in
  Alcotest.(check (float 1e-9)) "bounded per dimension" 2.0 d;
  Alcotest.(check (float 1e-9))
    "identical vectors at distance 0" 0.
    (Tel.Anomaly.distance [| 3.; 4. |] [| 3.; 4. |]);
  (* rates normalize by useful work, clamped at 1 *)
  Alcotest.(check (array (float 1e-9)))
    "rates" [| 2.; 0.5 |]
    (Tel.Anomaly.rates ~useful:2 [| 4; 1 |]);
  Alcotest.(check (array (float 1e-9)))
    "zero useful clamps" [| 4.; 1. |]
    (Tel.Anomaly.rates ~useful:0 [| 4; 1 |])

(* ---- SLO evaluation ---- *)

let test_slo () =
  let fleet, _, _ = drill ~seed:42 ~collect:false () in
  (* a generous budget is clean *)
  let clean =
    Tel.Slo.of_json
      (Jsonx.parse
         {|{"availability_min": 0.1, "breaker_trips_max": 1000,
            "deadline_miss_rate_max": 1.0,
            "p99_latency_max": 99000000}|})
  in
  let objectives = Tel.Slo.evaluate clean fleet in
  Alcotest.(check int) "all four objectives evaluated" 4
    (List.length objectives);
  Alcotest.(check bool) "clean budget" false (Tel.Slo.burned objectives);
  (* an impossible availability floor burns *)
  let strict =
    Tel.Slo.of_json (Jsonx.parse {|{"availability_min": 1.1}|})
  in
  let burned = Tel.Slo.evaluate strict fleet in
  Alcotest.(check bool) "burned budget" true (Tel.Slo.burned burned);
  (* the report round-trips and carries the verdict *)
  let report = Jsonx.parse (Tel.Slo.report_json burned) in
  Alcotest.(check bool)
    "report burned flag" true
    (Jsonx.member "burned" report = Some (Jsonx.Bool true));
  (* unknown keys are a hard error *)
  (match Tel.Slo.of_json (Jsonx.parse {|{"availabilty_min": 0.9}|}) with
  | _ -> Alcotest.fail "typo'd SLO key must raise"
  | exception Tel.Slo.Slo_error _ -> ());
  match Tel.Slo.of_json (Jsonx.parse {|[1]|}) with
  | _ -> Alcotest.fail "non-object SLO must raise"
  | exception Tel.Slo.Slo_error _ -> ()

(* ---- fleet latency == merge of per-machine latencies ---- *)

let test_fleet_latency_is_merge () =
  let fleet, _, _ = drill ~seed:42 ~collect:false () in
  let merged = Histo.create () in
  for i = 0 to Res.Fleet.machines fleet - 1 do
    Histo.merge ~into:merged
      (Res.Supervisor.latency (Res.Fleet.supervisor fleet i))
  done;
  Alcotest.(check string)
    "fleet latency histogram == merge of per-machine histograms"
    (Histo.to_json (Res.Fleet.latency fleet))
    (Histo.to_json merged)

(* ---- request tracing and the merged Perfetto export ---- *)

let test_request_trace_and_chrome_streams () =
  let fleet, _, _ = drill ~seed:42 ~collect:false () in
  (* the fleet ring carries assignments; each machine ring carries the
     request lifecycle on its own track *)
  let count ring pred =
    let n = ref 0 in
    Obs.Trace.iter ring (fun e -> if pred e then incr n);
    !n
  in
  let assigns =
    count (Res.Fleet.trace fleet) (fun e ->
        e.Obs.Trace.cat = Obs.Trace.Request && e.Obs.Trace.name = "req:assign")
  in
  Alcotest.(check bool) "fleet ring has req:assign events" true (assigns > 0);
  let lifecycle = ref 0 in
  for i = 0 to Res.Fleet.machines fleet - 1 do
    let ring = Res.Supervisor.trace_ring (Res.Fleet.supervisor fleet i) in
    lifecycle :=
      !lifecycle
      + count ring (fun e ->
            e.Obs.Trace.cat = Obs.Trace.Request
            && (e.Obs.Trace.name = "req:begin" || e.Obs.Trace.name = "req:end"))
  done;
  Alcotest.(check bool) "machine rings carry req:begin/req:end" true
    (!lifecycle > 0);
  (* the merged export is one valid JSON document with one process per
     stream and balanced B/E slices *)
  let path = Filename.temp_file "repro_timeline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.Trace.write_chrome_streams oc
        (("fleet", Res.Fleet.trace fleet)
        :: List.init (Res.Fleet.machines fleet) (fun i ->
               ( Printf.sprintf "machine%d" i,
                 Res.Supervisor.trace_ring (Res.Fleet.supervisor fleet i) )));
      close_out oc;
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let v = Jsonx.parse text in
      let events =
        match Option.bind (Jsonx.member "traceEvents" v) Jsonx.to_list with
        | Some l -> l
        | None -> Alcotest.fail "no traceEvents array"
      in
      let ph p e =
        match Option.bind (Jsonx.member "ph" e) Jsonx.to_string with
        | Some x -> x = p
        | None -> false
      in
      let names =
        List.filter_map
          (fun e ->
            match Option.bind (Jsonx.member "name" e) Jsonx.to_string with
            | Some "process_name" -> Jsonx.member "args" e
            | _ -> None)
          events
        |> List.filter_map (fun a ->
               Option.bind (Jsonx.member "name" a) Jsonx.to_string)
      in
      Alcotest.(check bool) "fleet process present" true
        (List.mem "fleet" names);
      Alcotest.(check bool) "machine0 process present" true
        (List.mem "machine0" names);
      let begins = List.length (List.filter (ph "B") events) in
      let ends = List.length (List.filter (ph "E") events) in
      Alcotest.(check bool) "has request slices" true (begins > 0);
      (* the ring drops oldest-first and every end is emitted after its
         begin, so a retained begin always has its end; an end may have
         lost its begin to a drop *)
      Alcotest.(check bool) "every retained begin has an end" true
        (ends >= begins))

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "histo: merge == concat" `Quick
          test_histo_merge_concat;
        Alcotest.test_case "histo: merge is associative" `Quick
          test_histo_merge_assoc;
        Alcotest.test_case "jsonx: telemetry documents round-trip" `Quick
          test_jsonx_roundtrip_telemetry;
        Alcotest.test_case "collector is purely observational" `Slow
          test_collector_is_observational;
        Alcotest.test_case "anomaly detector flags the faulty machine" `Slow
          test_anomaly_flags_faulty;
        Alcotest.test_case "anomaly math: median, distance, rates" `Quick
          test_anomaly_math;
        Alcotest.test_case "slo: budgets burn deterministically" `Slow
          test_slo;
        Alcotest.test_case "fleet latency is the merge of machines" `Slow
          test_fleet_latency_is_merge;
        Alcotest.test_case "request tracing + merged perfetto export" `Slow
          test_request_trace_and_chrome_streams;
      ] );
  ]
