open Repro_arm
module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module Stats = Repro_x86.Stats

(* Full-system tests: the mini OS booted under the reference
   interpreter, the QEMU baseline and every rule-engine level must
   agree on guest-visible behaviour (exit code, UART output, syscall
   results) — with paging and timer interrupts live. *)

let all_modes =
  ("qemu", D.System.Qemu)
  :: List.map (fun (n, o) -> (n, D.System.Rules o))
       (D.Opt.levels
       @ [ ("future", D.Opt.future); ("regions", D.Opt.with_regions) ])

let run_image mode image =
  let sys = D.System.create mode in
  K.load image (fun base words -> D.System.load_image sys base words);
  let res = D.System.run ~max_guest_insns:3_000_000 sys in
  let code =
    match res.T.Engine.reason with
    | `Halted c -> c
    | `Insn_limit | `Livelock _ | `Deadline -> Alcotest.fail "engine hit insn limit"
  in
  (code, D.System.uart_output sys, D.System.stats sys)

let run_ref image =
  let m = T.Ref_machine.create () in
  K.load image (fun base words -> T.Ref_machine.load_image m base words);
  match T.Ref_machine.run m ~max_steps:3_000_000 with
  | T.Ref_machine.Halted c, steps ->
    (c, Repro_machine.Devices.Uart.output m.T.Ref_machine.bus.Repro_machine.Bus.uart, steps)
  | _ -> Alcotest.fail "reference did not halt"

let user_asm body =
  let a = Asm.create ~origin:K.user_code_base () in
  Asm.mov32 a Insn.sp K.user_stack_top;
  body a;
  snd (Asm.assemble a)

let agree ?(timer = 0) user =
  let image = K.build ~timer_period:timer ~user_program:user () in
  let code_ref, uart_ref, _ = run_ref image in
  List.iter
    (fun (name, mode) ->
      let code, uart, _ = run_image mode image in
      Alcotest.(check int) (name ^ " exit code") code_ref code;
      Alcotest.(check string) (name ^ " uart") uart_ref uart)
    all_modes;
  code_ref

let test_boot_and_exit () =
  let user =
    user_asm (fun a ->
        Asm.mov a 0 42;
        Asm.mov a 7 K.sys_exit;
        Asm.svc a 0)
  in
  Alcotest.(check int) "exit code" 42 (agree user)

let test_uart_hello () =
  let user =
    user_asm (fun a ->
        String.iter
          (fun ch ->
            Asm.mov a 0 (Char.code ch);
            Asm.mov a 7 K.sys_putchar;
            Asm.svc a 0)
          "hi!";
        Asm.mov a 0 0;
        Asm.mov a 7 K.sys_exit;
        Asm.svc a 0)
  in
  let image = K.build ~user_program:user () in
  let _, uart, _ = run_ref image in
  Alcotest.(check string) "uart content" "hi!" uart;
  ignore (agree user)

let test_halfwords_under_paging () =
  (* LDRH/STRH through the softMMU (user mode, MMU on, timer IRQs):
     pack two halves, read them back, exit with a checksum derived from
     both. Exercises the halfword helper path on every engine. *)
  let user =
    user_asm (fun a ->
        Asm.mov32 a 4 (K.user_data_base + 0x40);
        Asm.mov32 a 0 0xBEEF;
        Asm.str a ~width:Insn.Half 0 4 0;
        Asm.mov32 a 1 0xDEAD;
        Asm.str a ~width:Insn.Half 1 4 2;
        Asm.ldr a 2 4 0;            (* word view: 0xDEADBEEF *)
        Asm.ldr a ~width:Insn.Half 3 4 2;  (* 0xDEAD *)
        (* checksum: (word >>> 24) + (half & 0xFF) = 0xDE + 0xAD *)
        Asm.emit a
          (Insn.make
             (Insn.Dp
                { op = Insn.MOV; s = false; rd = 0; rn = 0;
                  op2 = Insn.Reg_shift_imm { rm = 2; kind = Insn.LSR; amount = 24 } }));
        Asm.and_ a 3 3 0xFF;
        Asm.add_r a 0 0 3;
        Asm.mov a 7 K.sys_exit;
        Asm.svc a 0)
  in
  Alcotest.(check int) "checksum" (0xDE + 0xAD) (agree ~timer:700 user)

let test_two_tasks_round_robin () =
  (* Cooperative multitasking: every yield is a full user-context
     switch through the kernel — the heaviest CPU-state-coordination
     traffic a guest can generate. Runs with timer IRQs live. *)
  let putchar a ch =
    Asm.mov a 0 (Char.code ch);
    Asm.mov a 7 K.sys_putchar;
    Asm.svc a 0
  in
  let yield a =
    Asm.mov a 7 K.sys_yield;
    Asm.svc a 0
  in
  let t0 =
    user_asm (fun a ->
        (* seed distinctive register state to catch context-switch
           corruption: r4..r8 must survive the other task's running *)
        List.iter (fun r -> Asm.mov32 a r (0x4000 + r)) [ 4; 5; 6; 8 ];
        putchar a 'A';
        yield a;
        putchar a 'B';
        yield a;
        (* verify callee state survived both switches *)
        Asm.mov32 a 1 0x4004;
        Asm.cmp_r a 4 1;
        Asm.branch_to a ~cond:Cond.NE "corrupt";
        putchar a 'C';
        Asm.mov a 0 7;
        Asm.mov a 7 K.sys_exit;
        Asm.svc a 0;
        Asm.label a "corrupt";
        Asm.mov32 a 0 0xBAD;
        Asm.mov a 7 K.sys_exit;
        Asm.svc a 0)
  in
  let t1 =
    let a = Asm.create ~origin:K.task1_code_base () in
    List.iter (fun r -> Asm.mov32 a r (0x9000 + r)) [ 4; 5; 6; 8 ];
    putchar a '1';
    yield a;
    Asm.mov32 a 1 0x9004;
    Asm.cmp_r a 4 1;
    Asm.branch_to a ~cond:Cond.NE "corrupt1";
    putchar a '2';
    Asm.label a "spin";
    yield a;
    Asm.branch_to a "spin";
    Asm.label a "corrupt1";
    Asm.mov32 a 0 0xBAD1;
    Asm.mov a 7 K.sys_exit;
    Asm.svc a 0;
    snd (Asm.assemble a)
  in
  let image = K.build ~timer_period:900 ~user_program2:t1 ~user_program:t0 () in
  let code_ref, uart_ref, _ = run_ref image in
  Alcotest.(check int) "exit code" 7 code_ref;
  Alcotest.(check string) "interleaving" "A1B2C" uart_ref;
  List.iter
    (fun (name, mode) ->
      let code, uart, _ = run_image mode image in
      Alcotest.(check int) (name ^ " exit code") code_ref code;
      Alcotest.(check string) (name ^ " uart") uart_ref uart)
    all_modes

let test_preemptive_scheduling () =
  (* Timer-driven round robin: tasks are switched at arbitrary user
     instructions. Task 0 keeps live flags across almost every
     instruction (subs/bne loop), so a context switch that loses NZCV
     — e.g. a broken lazy CCR parse on IRQ entry — corrupts the sum.
     The interleaving may legitimately differ between engines (they
     check interrupts at block heads, the interpreter per instruction),
     so only the interleaving-independent checksum is asserted. *)
  let t0 =
    user_asm (fun a ->
        Asm.mov a 4 0;
        Asm.mov32 a 5 2_000;
        Asm.label a "loop";
        Asm.add_r a 4 4 5;
        Asm.sub a ~s:true 5 5 1;
        Asm.branch_to a ~cond:Cond.NE "loop";
        Asm.mov_r a 0 4;
        Asm.mov a 7 K.sys_exit;
        Asm.svc a 0)
  in
  let t1 =
    let a = Asm.create ~origin:K.task1_code_base () in
    Asm.mov a 6 0;
    Asm.label a "spin";
    Asm.add a 6 6 1;
    Asm.branch_to a "spin";
    snd (Asm.assemble a)
  in
  let image = K.build ~timer_period:300 ~preempt:true ~user_program2:t1 ~user_program:t0 () in
  let expected = 2_000 * 2_001 / 2 in
  let code_ref, _, _ = run_ref image in
  Alcotest.(check int) "ref checksum" expected code_ref;
  List.iter
    (fun (name, mode) ->
      let code, _, stats = run_image mode image in
      Alcotest.(check int) (name ^ " checksum") expected code;
      (* guard against a vacuous pass: the timer must actually have
         preempted the tasks many times *)
      Alcotest.(check bool)
        (Printf.sprintf "%s preempted (%d irqs)" name
           stats.Repro_x86.Stats.irqs_delivered)
        true
        (stats.Repro_x86.Stats.irqs_delivered > 10))
    all_modes

let test_timer_ticks_observed () =
  (* spin long enough for several timer periods, then exit with the
     kernel's tick count *)
  let user =
    user_asm (fun a ->
        Asm.mov32 a 1 30_000;
        Asm.label a "spin";
        Asm.add a 2 2 1;
        Asm.sub a ~s:true 1 1 1;
        Asm.branch_to a ~cond:Cond.NE "spin";
        Asm.mov a 7 K.sys_ticks;
        Asm.svc a 0;
        Asm.mov a 7 K.sys_exit;
        Asm.svc a 0)
  in
  let ticks = agree ~timer:4_000 user in
  Alcotest.(check bool)
    (Printf.sprintf "several ticks observed (%d)" ticks)
    true
    (ticks >= 10 && ticks < 60)

let test_user_cannot_touch_kernel_memory () =
  (* write to a kernel page → data abort → panic 0xDEAD0003 *)
  let user =
    user_asm (fun a ->
        Asm.mov32 a 1 K.tick_counter_addr;
        Asm.mov a 0 7;
        Asm.str a 0 1 0;
        Asm.mov a 7 K.sys_exit;
        Asm.svc a 0)
  in
  Alcotest.(check int) "dabt panic" 0xDEAD0003 (agree user)

let test_user_cannot_touch_devices () =
  let user =
    user_asm (fun a ->
        Asm.mov32 a 1 Repro_machine.Bus.syscon_base;
        Asm.mov a 0 1;
        Asm.str a 0 1 0;
        Asm.mov a 7 K.sys_exit;
        Asm.svc a 0)
  in
  Alcotest.(check int) "device access from user panics" 0xDEAD0003 (agree user)

let test_user_cannot_jump_to_kernel () =
  (* jumping into a kernel page: fetch permission fault → pabt panic *)
  let user =
    user_asm (fun a ->
        Asm.mov32 a 0 0x100;
        Asm.bx a 0)
  in
  Alcotest.(check int) "pabt panic" 0xDEAD0002 (agree user)

let test_undefined_instruction_panics () =
  let user = user_asm (fun a -> Asm.udf a 7) in
  Alcotest.(check int) "undef panic" 0xDEAD0001 (agree user)

let test_flags_cross_exception_boundary () =
  (* The Fig. 7 correctness property: condition flags produced by
     rule-translated code (live in host EFLAGS, saved packed) must be
     the flags the kernel observes in the SPSR at the syscall
     boundary, for several producer conventions. *)
  let user =
    user_asm (fun a ->
        (* sub-like producer: 3 < 5 → N=1,Z=0,C=0,V=0 → 0b1000 *)
        Asm.mov a 1 3;
        Asm.cmp a 1 5;
        Asm.mov a 7 K.sys_flags;
        Asm.svc a 0;
        Asm.mov_r a 5 0;
        (* add-like producer with carry: FFFFFFFF+1 → Z=1,C=1 → 0b0110 *)
        Asm.mov32 a 1 0xFFFFFFFF;
        Asm.add a ~s:true 1 1 1;
        Asm.mov a 7 K.sys_flags;
        Asm.svc a 0;
        Asm.lsl_ a 0 0 4;
        Asm.orr_r a 5 5 0;
        (* logic producer: ands → N=1 (C,V modelled as 0) → 0b1000 *)
        Asm.mov32 a 1 0x80000000;
        Asm.emit a
          (Insn.make
             (Insn.Dp
                { op = Insn.AND; s = true; rd = 1; rn = 1;
                  op2 = Insn.Reg_shift_imm { rm = 1; kind = Insn.LSL; amount = 0 } }));
        Asm.mov a 7 K.sys_flags;
        Asm.svc a 0;
        Asm.lsl_ a 0 0 8;
        Asm.orr_r a 5 5 0;
        Asm.mov_r a 0 5;
        Asm.mov a 7 K.sys_exit;
        Asm.svc a 0)
  in
  let expected = 0b1000 lor (0b0110 lsl 4) lor (0b1000 lsl 8) in
  Alcotest.(check int) "NZCV across syscalls" expected (agree user)

(* --- workload generator calibration --- *)

let test_workload_rates_close_to_spec () =
  (* measured Table I rates should be near the calibration targets *)
  List.iter
    (fun name ->
      let spec = W.find name in
      let iters = max 1 (60_000 / W.insns_per_iteration spec) in
      let user = W.generate spec ~iterations:iters in
      let image = K.build ~timer_period:5_000 ~user_program:user () in
      let _, _, stats = run_image D.System.Qemu image in
      let g = float_of_int stats.Stats.guest_insns in
      let mem = float_of_int stats.Stats.mmu_accesses /. g in
      let chk = float_of_int stats.Stats.irq_polls /. g in
      Alcotest.(check bool)
        (Printf.sprintf "%s mem rate %.3f ~ %.3f" name mem spec.W.mem_rate)
        true
        (Float.abs (mem -. spec.W.mem_rate) < 0.10);
      Alcotest.(check bool)
        (Printf.sprintf "%s check rate %.3f ~ %.3f" name chk spec.W.check_rate)
        true
        (Float.abs (chk -. spec.W.check_rate) < 0.10))
    [ "gcc"; "hmmer"; "xalancbmk" ]

let test_all_specs_halt_under_full () =
  List.iter
    (fun (spec : W.spec) ->
      let iters = max 1 (30_000 / W.insns_per_iteration spec) in
      let user = W.generate spec ~iterations:iters in
      let image = K.build ~timer_period:5_000 ~user_program:user () in
      let code_q, _, _ = run_image D.System.Qemu image in
      let code_f, _, _ = run_image (D.System.Rules D.Opt.full) image in
      Alcotest.(check int) (spec.W.name ^ " exit codes agree") code_q code_f)
    W.cint2006

let test_apps_halt_and_agree () =
  List.iter
    (fun (app : W.app) ->
      let user = W.generate_app app ~iterations:20 in
      let image = K.build ~timer_period:5_000 ~user_program:user () in
      let code_q, uart_q, _ = run_image D.System.Qemu image in
      let code_f, uart_f, _ = run_image (D.System.Rules D.Opt.full) image in
      Alcotest.(check int) (app.W.app_name ^ " exit") code_q code_f;
      Alcotest.(check string) (app.W.app_name ^ " uart") uart_q uart_f)
    W.apps

let test_self_modifying_code () =
  (* The guest patches one of its own instructions and re-executes it:
     stale translations must be invalidated (write-protected code
     pages force the store onto the slow path). The reference
     interpreter defines the correct answer. *)
  let patched = Repro_arm.Encode.encode (Insn.make (Insn.Dp
      { op = Insn.MOV; s = false; rd = 0; rn = 0; op2 = Insn.imm_operand_exn 2 })) in
  let user =
    user_asm (fun a ->
        Asm.mov a 5 0;
        Asm.label a "again";
        Asm.label a "patch";
        Asm.mov a 0 1;                       (* will become mov r0, #2 *)
        Asm.add a 5 5 1;
        Asm.cmp a 5 2;
        Asm.branch_to a ~cond:Cond.EQ "done";
        Asm.mov32_label a 1 "patch";
        Asm.mov32 a 2 patched;
        Asm.str a 2 1 0;
        Asm.branch_to a "again";
        Asm.label a "done";
        Asm.mov a 7 K.sys_exit;
        Asm.svc a 0)
  in
  Alcotest.(check int) "patched instruction executed" 2 (agree user)

(* Randomized full-system differential: a random computational block
   looped under live timer interrupts must produce identical register
   checksums on every engine and the reference interpreter (interrupt
   *timing* differs between engines; the guest-visible result must
   not). *)
let prop_random_blocks_with_interrupts =
  QCheck.Test.make ~count:12 ~name:"random user programs under timer IRQs"
    (Gen.arbitrary_plain_block 12)
    (fun insns ->
      let user =
        user_asm (fun a ->
            List.iteri (fun i v -> Asm.mov32 a i v)
              [ 3; 0x80000000; 17; 0xFFFFFFFF; 42; 5; 0x7FFFFFFF; 9; 2 ];
            Asm.mov32 a 9 60;
            Asm.label a "loop";
            List.iter
              (fun (i : Insn.t) ->
                (* keep the loop counter and sp out of the block *)
                let d = Insn.defs i in
                if d land (1 lsl 9) = 0 && d land (1 lsl 13) = 0 then Asm.emit a i)
              insns;
            Asm.sub a ~s:true 9 9 1;
            Asm.branch_to a ~cond:Cond.NE "loop";
            (* checksum r0-r8 *)
            Asm.mov a 10 0;
            for r = 0 to 8 do
              Asm.eor_r a 10 10 r
            done;
            Asm.mov_r a 0 10;
            Asm.mov a 7 K.sys_exit;
            Asm.svc a 0)
      in
      let image = K.build ~timer_period:700 ~user_program:user () in
      let code_ref, _, _ = run_ref image in
      List.for_all
        (fun (name, mode) ->
          let code, _, _ = run_image mode image in
          if code <> code_ref then
            QCheck.Test.fail_reportf "[%s] checksum %#x != ref %#x" name code code_ref
          else true)
        all_modes)

let suite =
  [
    ( "kernel.system",
      [
        Alcotest.test_case "boot and exit" `Quick test_boot_and_exit;
        Alcotest.test_case "uart via syscall" `Quick test_uart_hello;
        Alcotest.test_case "timer ticks observed" `Quick test_timer_ticks_observed;
        Alcotest.test_case "halfwords under paging" `Quick test_halfwords_under_paging;
        Alcotest.test_case "two-task round robin" `Quick test_two_tasks_round_robin;
        Alcotest.test_case "preemptive scheduling" `Quick test_preemptive_scheduling;
        Alcotest.test_case "kernel memory protected" `Quick
          test_user_cannot_touch_kernel_memory;
        Alcotest.test_case "devices protected" `Quick test_user_cannot_touch_devices;
        Alcotest.test_case "kernel text not executable from user" `Quick
          test_user_cannot_jump_to_kernel;
        Alcotest.test_case "undefined instruction panics" `Quick
          test_undefined_instruction_panics;
        Alcotest.test_case "flags cross the exception boundary (Fig 7)" `Quick
          test_flags_cross_exception_boundary;
        Alcotest.test_case "self-modifying code invalidates TBs" `Quick
          test_self_modifying_code;
      ] );
    ( "kernel.workloads",
      [
        Alcotest.test_case "generator rates calibrated" `Quick
          test_workload_rates_close_to_spec;
        Alcotest.test_case "all CINT specs agree qemu vs full" `Quick
          test_all_specs_halt_under_full;
        Alcotest.test_case "apps agree qemu vs full" `Quick test_apps_halt_and_agree;
        QCheck_alcotest.to_alcotest prop_random_blocks_with_interrupts;
      ] );
  ]
