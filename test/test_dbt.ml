open Repro_arm
module T = Repro_tcg
module D = Repro_dbt
module Bus = Repro_machine.Bus
module Stats = Repro_x86.Stats

(* Differential testing of the rule-based engine at every optimization
   level against the reference interpreter. Helper calls poison all
   host registers, so any missing CPU-state coordination shows up as
   0xBAD... values here rather than as a silently wrong figure. *)

let emit_halt asm =
  Asm.mov32 asm 10 Bus.syscon_base;
  Asm.str asm 11 10 0

let assemble program =
  let asm = Asm.create () in
  program asm;
  emit_halt asm;
  snd (Asm.assemble asm)

let levels = D.Opt.levels @ [ ("future", D.Opt.future) ]

let run_mode ?(max_insns = 300_000) mode words =
  let sys = D.System.create mode in
  D.System.load_image sys 0 words;
  let res = D.System.run ~max_guest_insns:max_insns sys in
  (sys, res)

let run_ref ?(max_steps = 300_000) words =
  let m = T.Ref_machine.create () in
  T.Ref_machine.load_image m 0 words;
  let outcome, steps = T.Ref_machine.run m ~max_steps in
  (m, outcome, steps)

let snapshot_of_sys sys = Cpu.to_snapshot (D.System.cpu sys)

let state_mismatch ref_snap got_snap =
  let regs_ok =
    Array.sub ref_snap.Cpu.regs 0 15 = Array.sub got_snap.Cpu.regs 0 15
  in
  let flags_ok =
    Cond.flags_of_word ref_snap.Cpu.cpsr = Cond.flags_of_word got_snap.Cpu.cpsr
  in
  if regs_ok && flags_ok then None
  else
    Some
      (Format.asprintf "expected:@\n%a@\ngot:@\n%a" Cpu.pp_snapshot ref_snap
         Cpu.pp_snapshot got_snap)

let differential_all_levels program =
  let words = assemble program in
  let ref_m, outcome, _ = run_ref words in
  (match outcome with
  | T.Ref_machine.Halted _ -> ()
  | _ -> Alcotest.fail "reference did not halt");
  let ref_snap = Cpu.to_snapshot ref_m.T.Ref_machine.cpu in
  List.iter
    (fun (name, opt) ->
      let sys, res = run_mode (D.System.Rules opt) words in
      (match res.T.Engine.reason with
      | `Halted _ -> ()
      | `Insn_limit | `Livelock _ | `Deadline -> Alcotest.failf "[%s] hit insn limit" name);
      match state_mismatch ref_snap (snapshot_of_sys sys) with
      | None -> ()
      | Some msg -> Alcotest.failf "[%s] state mismatch:@\n%s" name msg)
    levels

(* --- functional tests --- *)

let test_arith () =
  differential_all_levels (fun a ->
      Asm.mov a 0 10;
      Asm.mov a 1 3;
      Asm.add_r a ~s:true 2 0 1;
      Asm.sub_r a ~s:true 3 0 1;
      Asm.mul a 4 0 1;
      Asm.and_r a 5 0 1;
      Asm.orr_r a 6 0 1;
      Asm.eor_r a 7 0 1;
      Asm.mov32 a 8 0xFFFFFFFF;
      Asm.add_r a ~s:true 8 8 8;
      Asm.emit a
        (Insn.make
           (Insn.Dp
              { op = Insn.ADC; s = true; rd = 11; rn = 0; op2 = Insn.imm_operand_exn 0 })))

let test_conditionals () =
  differential_all_levels (fun a ->
      Asm.mov a 0 5;
      Asm.cmp a 0 5;
      Asm.mov a ~cond:Cond.EQ 1 1;
      Asm.mov a ~cond:Cond.NE 2 2;
      Asm.cmp a 0 9;
      Asm.mov a ~cond:Cond.LT 3 3;
      Asm.mov a ~cond:Cond.GE 4 4;
      Asm.mov a ~cond:Cond.HI 5 5;
      Asm.mov a ~cond:Cond.LS 6 6;
      Asm.mov a ~cond:Cond.CS 7 7;
      Asm.mov a ~cond:Cond.CC 8 8;
      Asm.mov a 11 0)

let test_consecutive_conditionals () =
  (* The Fig. 9 scenario: a run of same-condition instructions. *)
  differential_all_levels (fun a ->
      Asm.mov a 0 1;
      Asm.cmp a 0 1;
      Asm.add a ~cond:Cond.EQ 1 1 10;
      Asm.add a ~cond:Cond.EQ 2 2 20;
      Asm.add a ~cond:Cond.EQ 3 3 30;
      Asm.add a ~cond:Cond.NE 4 4 40;
      Asm.mov a 11 0)

let test_loop () =
  differential_all_levels (fun a ->
      Asm.mov a 0 0;
      Asm.mov a 1 100;
      Asm.label a "loop";
      Asm.add_r a 0 0 1;
      Asm.sub a ~s:true 1 1 1;
      Asm.branch_to a ~cond:Cond.NE "loop";
      Asm.mov_r a 11 0)

let test_memory () =
  differential_all_levels (fun a ->
      Asm.mov32 a 0 0x10000;
      Asm.mov32 a 1 0xDEADBEEF;
      Asm.str a 1 0 0;
      Asm.ldr a 2 0 0;
      Asm.str a ~width:Insn.Byte 2 0 100;
      Asm.ldr a ~width:Insn.Byte 3 0 100;
      (* consecutive memory ops (Fig. 10 scenario) *)
      Asm.str a 1 0 4;
      Asm.str a 2 0 8;
      Asm.str a 3 0 12;
      Asm.ldr a 4 0 4;
      Asm.ldr a 5 0 8;
      Asm.mov32 a Insn.sp 0x20000;
      Asm.push a (Asm.reg_mask [ 1; 2; 3 ]);
      Asm.mov a 1 0;
      Asm.mov a 2 0;
      Asm.mov a 3 0;
      Asm.pop a (Asm.reg_mask [ 1; 2; 3 ]);
      Asm.mov a 11 0)

let test_mem_with_live_flags () =
  (* Flags defined, then memory access, then flags consumed — the
     exact define-before-use scheduling scenario (Fig. 12). *)
  differential_all_levels (fun a ->
      Asm.mov32 a 0 0x10000;
      Asm.mov a 1 7;
      Asm.mov a 2 7;
      Asm.cmp_r a 1 2;
      Asm.ldr a 3 0 0;
      Asm.mov a ~cond:Cond.EQ 4 42;
      Asm.branch_to a ~cond:Cond.NE "skip";
      Asm.add a 5 5 1;
      Asm.label a "skip";
      Asm.mov a 11 0)

let test_unpinned_registers () =
  (* r9-r12 are unpinned: every use goes through the QEMU fallback. *)
  differential_all_levels (fun a ->
      Asm.mov a 9 11;
      Asm.mov a 10 22;
      Asm.add_r a 11 9 10;
      Asm.mov_r a 12 11;
      Asm.add a ~s:true 9 12 1;
      Asm.mov a ~cond:Cond.NE 0 1;
      Asm.mov_r a 11 0;
      Asm.add a 11 11 33)

let test_calls () =
  differential_all_levels (fun a ->
      Asm.mov a 0 0;
      Asm.mov32 a Insn.sp 0x20000;
      Asm.branch_to a ~link:true "f";
      Asm.add a 0 0 100;
      Asm.branch_to a "end";
      Asm.label a "f";
      Asm.push a (Asm.reg_mask [ 14 ]);
      Asm.add a 0 0 1;
      Asm.pop a (Asm.reg_mask [ 14 ]);
      Asm.bx a Insn.lr;
      Asm.label a "end";
      Asm.mov_r a 11 0)

let test_system_insns () =
  differential_all_levels (fun a ->
      Asm.mov32 a 0 0xF0000001;
      Asm.vmsr a 0;
      Asm.vmrs a 1;
      Asm.vmrs a 15;
      Asm.mov a ~cond:Cond.MI 2 1;
      Asm.mrs a 3;
      Asm.mov32 a 4 0x4000;
      Asm.mcr a ~crn:2 4;
      Asm.mrc a ~crn:2 5;
      Asm.mov a 11 0)

let test_svc_roundtrip () =
  differential_all_levels (fun a ->
      Asm.branch_to a "start";
      Asm.udf a 1;
      Asm.branch_to a "svc_handler";
      Asm.udf a 3;
      Asm.udf a 4;
      Asm.udf a 5;
      Asm.udf a 6;
      Asm.label a "start";
      Asm.mov a 0 5;
      Asm.cmp a 0 5;
      (* flags must survive the context switch into the handler *)
      Asm.svc a 1;
      Asm.mov a ~cond:Cond.EQ 1 42;
      Asm.mov a 11 0;
      Asm.branch_to a "halt";
      Asm.label a "svc_handler";
      Asm.add a 2 2 10;
      Asm.emit a
        (Insn.make
           (Insn.Dp
              { op = Insn.MOV; s = true; rd = 15; rn = 0;
                op2 = Insn.Reg_shift_imm { rm = 14; kind = Insn.LSL; amount = 0 } }));
      Asm.label a "halt")

let test_rsb_bic_shift () =
  differential_all_levels (fun a ->
      Asm.mov a 0 12;
      Asm.rsb a 1 0 0;
      Asm.mov32 a 2 0xFF0F;
      Asm.emit a
        (Insn.make
           (Insn.Dp
              { op = Insn.BIC; s = false; rd = 3; rn = 2;
                op2 = Insn.Reg_shift_imm { rm = 0; kind = Insn.LSL; amount = 0 } }));
      Asm.lsl_ a 4 0 4;
      Asm.lsr_ a 5 2 2;
      Asm.emit a
        (Insn.make
           (Insn.Dp
              { op = Insn.ADD; s = true; rd = 6; rn = 0;
                op2 = Insn.Reg_shift_imm { rm = 2; kind = Insn.LSL; amount = 3 } }));
      Asm.mov a 11 0)

(* Zero-amount shifts are identity moves, but a shift rule compiled to
   a host shift-by-0 leaves host flags untouched — the S variants must
   still produce N/Z from the result (regression: rules engine
   extracted stale flags for movs rd, rm, lsr #0). *)
let test_zero_amount_shift_flags () =
  differential_all_levels (fun a ->
      Asm.mov32 a 1 0x80000000;
      Asm.mov a 2 0;
      List.iter
        (fun (kind, s, rd, rm) ->
          Asm.emit a
            (Insn.make
               (Insn.Dp
                  { op = Insn.MOV; s; rd; rn = 0;
                    op2 = Insn.Reg_shift_imm { rm; kind; amount = 0 } })))
        [
          (Insn.ROR, true, 5, 1);
          (Insn.LSR, false, 6, 1);  (* non-S: value only *)
          (Insn.ASR, false, 7, 1);
          (Insn.ASR, true, 4, 2);   (* zero result: Z=1 N=0 ... *)
          (* ... then the last flag writer must flip to N=1 Z=0 — a
             stale extraction keeps the previous flags instead *)
          (Insn.LSR, true, 3, 1);
        ];
      Asm.mov a 11 0)

(* --- performance-shape sanity --- *)

let mixed_workload a =
  Asm.mov a 0 0;
  Asm.mov a 1 2000;
  Asm.mov32 a 2 0x10000;
  Asm.label a "loop";
  Asm.add_r a 0 0 1;
  Asm.str a 0 2 0;
  Asm.ldr a 3 2 0;
  Asm.and_ a 4 3 0xFF;
  Asm.orr_r a 5 4 0;
  Asm.sub a ~s:true 1 1 1;
  Asm.branch_to a ~cond:Cond.NE "loop";
  Asm.mov_r a 11 0

let test_signed_load_memory () =
  differential_all_levels (fun a ->
      Asm.mov32 a 2 0x20000;
      Asm.mov32 a 0 0xFFFF8A90;
      Asm.str a 0 2 0;
      Asm.ldrs a 1 2 0;             (* -> 0xFFFFFF90 *)
      Asm.ldrs a ~half:true 3 2 0;  (* -> 0xFFFF8A90 *)
      Asm.ldrs a 4 2 1;             (* -> 0xFFFFFF8A *)
      Asm.mov32 a 0 0x00007F41;
      Asm.str a 0 2 4;
      Asm.ldrs a ~half:true 5 2 4;  (* positive: 0x7F41 *)
      (* unpinned destination takes the env path *)
      Asm.ldrs a ~half:true 9 2 0;
      Asm.add_r a 6 9 5;
      (* conditional signed load *)
      Asm.cmp a 5 0;
      Asm.ldrs a ~cond:Cond.GT 7 2 4;
      Asm.ldrs a ~cond:Cond.LE ~half:true 8 2 4;
      Asm.mov a 11 0)

let test_clz_fallback () =
  (* CLZ has no rule and no IR lowering: both engines emulate it via
     the interpreter helper, with full state coordination. *)
  differential_all_levels (fun a ->
      Asm.mov32 a 0 0x00F00000;
      Asm.clz a 1 0;
      Asm.mov a 2 0;
      Asm.clz a 3 2;
      (* flags must survive the helper round-trip *)
      Asm.cmp a 1 8;
      Asm.clz a ~cond:Cond.EQ 4 0;
      Asm.mov a ~cond:Cond.NE 5 7;
      Asm.add_r a 6 1 3;
      Asm.mov a 11 0)

let test_halfword_memory () =
  differential_all_levels (fun a ->
      Asm.mov32 a 2 0x20000;
      Asm.mov32 a 0 0xCAFEBABE;
      Asm.str a ~width:Insn.Half 0 2 0;
      Asm.ldr a ~width:Insn.Half 1 2 0;
      Asm.mov32 a 3 0x11223344;
      Asm.str a 3 2 4;
      Asm.str a ~width:Insn.Half 0 2 4;
      Asm.ldr a 4 2 4;
      Asm.str a ~width:Insn.Half ~index:Insn.Pre_indexed 3 2 2;
      Asm.ldr a ~width:Insn.Half ~index:Insn.Post_indexed 5 2 2;
      (* conditional halfword access *)
      Asm.cmp a 1 0;
      Asm.ldr a ~cond:Cond.NE ~width:Insn.Half 6 2 0;
      Asm.str a ~cond:Cond.EQ ~width:Insn.Half 3 2 8;
      Asm.mov a 11 0)

let test_full_opt_beats_base () =
  let words = assemble mixed_workload in
  let host_insns mode =
    let sys, res = run_mode mode words in
    (match res.T.Engine.reason with
    | `Halted _ -> ()
    | `Insn_limit | `Livelock _ | `Deadline -> Alcotest.fail "insn limit");
    (D.System.stats sys).Stats.host_insns
  in
  let base = host_insns (D.System.Rules D.Opt.base) in
  let full = host_insns (D.System.Rules D.Opt.full) in
  let qemu = host_insns D.System.Qemu in
  Alcotest.(check bool)
    (Printf.sprintf "full (%d) < base (%d)" full base)
    true (full < base);
  Alcotest.(check bool)
    (Printf.sprintf "full (%d) < qemu (%d)" full qemu)
    true (full < qemu)

let test_sync_cost_decreases_with_levels () =
  let words = assemble mixed_workload in
  let sync_per_guest opt =
    let sys, _ = run_mode (D.System.Rules opt) words in
    Stats.sync_per_guest (D.System.stats sys)
  in
  let seq = List.map (fun (_, o) -> sync_per_guest o) levels in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b -. 0.01 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool)
    (String.concat " >= " (List.map (Printf.sprintf "%.2f") seq))
    true (monotone seq)

let test_rule_coverage_counted () =
  let words = assemble mixed_workload in
  let sys, _ = run_mode (D.System.Rules D.Opt.full) words in
  match sys.D.System.rule_translator with
  | None -> Alcotest.fail "no rule translator"
  | Some tr ->
    Alcotest.(check bool) "some rule coverage" true
      (D.Translator_rule.stats_rule_covered tr > 0)

let test_sys_insn_classification () =
  (* UMULL is emulated through the interpreter helper but is NOT a
     system-level instruction; the Table I profile must not count it.
     MRS is system-level and must be counted exactly. *)
  let words =
    assemble (fun a ->
        Asm.mov a 0 7;
        Asm.mov a 1 9;
        Asm.umull a 2 3 0 1;
        Asm.umull a 4 5 0 1;
        Asm.umull a 6 7 0 1;
        Asm.mrs a 8;
        Asm.mrs a 9;
        Asm.mov a 11 0)
  in
  List.iter
    (fun mode ->
      let sys, res = run_mode mode words in
      (match res.T.Engine.reason with
      | `Halted _ -> ()
      | `Insn_limit | `Livelock _ | `Deadline -> Alcotest.fail "insn limit");
      let s = D.System.stats sys in
      Alcotest.(check int) "mrs counted as system-level" 2 s.Stats.sys_insns;
      Alcotest.(check bool) "umull went through helpers" true
        (s.Stats.helper_calls >= 5))
    [ D.System.Qemu; D.System.Rules D.Opt.full ]

let test_tiny_code_cache () =
  (* With room for a single TB the engine must flush and retranslate
     on every cross-TB transition, yet execution stays correct at every
     level. *)
  let words = assemble mixed_workload in
  let ref_m, outcome, _ = run_ref words in
  (match outcome with
  | T.Ref_machine.Halted _ -> ()
  | _ -> Alcotest.fail "reference did not halt");
  let ref_snap = Cpu.to_snapshot ref_m.T.Ref_machine.cpu in
  List.iter
    (fun (name, opt) ->
      let sys = D.System.create ~tb_capacity:1 (D.System.Rules opt) in
      D.System.load_image sys 0 words;
      let res = D.System.run ~max_guest_insns:300_000 sys in
      (match res.T.Engine.reason with
      | `Halted _ -> ()
      | `Insn_limit | `Livelock _ | `Deadline -> Alcotest.failf "[%s] insn limit" name);
      Alcotest.(check bool)
        (Printf.sprintf "[%s] capacity flushes happened" name)
        true
        (T.Tb.Cache.full_flushes sys.D.System.cache > 0);
      match state_mismatch ref_snap (snapshot_of_sys sys) with
      | None -> ()
      | Some msg -> Alcotest.failf "[%s] state mismatch:@\n%s" name msg)
    levels;
  (* an ample cache must never flush on this workload *)
  let sys = D.System.create (D.System.Rules D.Opt.full) in
  D.System.load_image sys 0 words;
  ignore (D.System.run ~max_guest_insns:300_000 sys);
  Alcotest.(check int) "no flushes at default capacity" 0
    (T.Tb.Cache.full_flushes sys.D.System.cache)

let test_profile_attribution () =
  (* Every retired guest instruction must be attributed to exactly one
     TB; host attribution is a lower bound on the total (engine glue is
     deliberately unattributed). *)
  let words = assemble mixed_workload in
  let sys = D.System.create (D.System.Rules D.Opt.full) in
  D.System.load_image sys 0 words;
  let p = T.Profile.create () in
  let res = D.System.run ~profile:p ~max_guest_insns:300_000 sys in
  (match res.T.Engine.reason with
  | `Halted _ -> ()
  | `Insn_limit | `Livelock _ | `Deadline -> Alcotest.fail "insn limit");
  let s = D.System.stats sys in
  Alcotest.(check int) "guest insns fully attributed" s.Stats.guest_insns
    (T.Profile.total_guest p);
  Alcotest.(check bool) "host attribution is a lower bound" true
    (T.Profile.total_host p > 0 && T.Profile.total_host p <= s.Stats.host_insns);
  (* the glue left unattributed is the engine's own dispatch/translation
     cost — it must be exactly the Tag_glue share minus helper glue,
     so sanity-check it is well under half the total *)
  Alcotest.(check bool) "most cost attributed" true
    (2 * T.Profile.total_host p > s.Stats.host_insns)

let test_profile_hot_ranking () =
  let words = assemble mixed_workload in
  let sys = D.System.create D.System.Qemu in
  D.System.load_image sys 0 words;
  let p = T.Profile.create () in
  ignore (D.System.run ~profile:p ~max_guest_insns:300_000 sys);
  (match T.Profile.top ~by:`Execs 1 p with
  | [ hottest ] ->
    List.iter
      (fun (e : T.Profile.entry) ->
        Alcotest.(check bool) "top-by-execs dominates" true
          (hottest.T.Profile.execs >= e.T.Profile.execs))
      (T.Profile.entries p);
    (* the loop body dominates: it must have executed many times *)
    Alcotest.(check bool) "hot block is hot" true (hottest.T.Profile.execs > 100)
  | _ -> Alcotest.fail "no entries");
  match T.Profile.top ~by:`Host 2 p with
  | [ a; b ] ->
    Alcotest.(check bool) "host ranking ordered" true
      (a.T.Profile.host_spent >= b.T.Profile.host_spent)
  | _ -> Alcotest.fail "expected 2 entries"

let test_profile_across_flushes () =
  (* A loop whose body spans two TBs under a one-TB cache: every
     iteration evicts and retranslates both blocks. The profile keys
     on (pc, privilege), so records must aggregate across those
     retranslations rather than duplicate, and the attribution
     invariants must survive the churn. *)
  let words =
    assemble (fun a ->
        Asm.mov a 0 0;
        Asm.mov a 1 50;
        Asm.label a "top";
        Asm.add_r a 0 0 1;
        Asm.branch_to a "mid";
        Asm.label a "mid";
        Asm.sub a ~s:true 1 1 1;
        Asm.branch_to a ~cond:Cond.NE "top";
        Asm.mov a 11 0)
  in
  let sys = D.System.create ~tb_capacity:1 (D.System.Rules D.Opt.full) in
  D.System.load_image sys 0 words;
  let p = T.Profile.create () in
  (match (D.System.run ~profile:p ~max_guest_insns:300_000 sys).T.Engine.reason with
  | `Halted _ -> ()
  | `Insn_limit | `Livelock _ | `Deadline -> Alcotest.fail "insn limit");
  let s = D.System.stats sys in
  Alcotest.(check bool)
    (Printf.sprintf "workload forced retranslation (%d translations, %d entries)"
       s.Stats.tb_translations
       (List.length (T.Profile.entries p)))
    true
    (s.Stats.tb_translations > List.length (T.Profile.entries p));
  Alcotest.(check int) "guest insns fully attributed despite flushes"
    s.Stats.guest_insns (T.Profile.total_guest p);
  Alcotest.(check bool) "host attribution still a lower bound" true
    (T.Profile.total_host p > 0 && T.Profile.total_host p <= s.Stats.host_insns);
  (* each distinct block appears exactly once *)
  let keys =
    List.map
      (fun (e : T.Profile.entry) -> (e.T.Profile.guest_pc, e.T.Profile.privileged))
      (T.Profile.entries p)
  in
  Alcotest.(check int) "no duplicate (pc, privilege) records"
    (List.length keys)
    (List.length (List.sort_uniq compare keys))

(* --- scheduling pass unit tests --- *)

let test_schedule_dbu () =
  let mk ops =
    let a = Asm.create () in
    ops a;
    snd (Asm.assemble_insns a)
  in
  let insns =
    mk (fun a ->
        Asm.cmp a 1 0;
        Asm.ldr a 3 2 0;
        Asm.branch_to a ~cond:Cond.NE "x";
        Asm.label a "x")
  in
  let scheduled = D.Translator_rule.schedule ~opt:D.Opt.full insns in
  (* the ldr should have been hoisted above the cmp *)
  (match scheduled.(0).Insn.op with
  | Insn.Ldr _ -> ()
  | _ -> Alcotest.failf "expected ldr first, got %a" Insn.pp scheduled.(0));
  (match scheduled.(1).Insn.op with
  | Insn.Dp { op = Insn.CMP; _ } -> ()
  | _ -> Alcotest.fail "expected cmp second")

let test_schedule_respects_deps () =
  let mk ops =
    let a = Asm.create () in
    ops a;
    snd (Asm.assemble_insns a)
  in
  (* ldr defines r1 which cmp uses: must NOT be reordered *)
  let insns =
    mk (fun a ->
        Asm.cmp a 1 0;
        Asm.ldr a 1 2 0;
        Asm.branch_to a ~cond:Cond.NE "x";
        Asm.label a "x")
  in
  let scheduled = D.Translator_rule.schedule ~opt:D.Opt.full insns in
  match scheduled.(0).Insn.op with
  | Insn.Dp { op = Insn.CMP; _ } -> ()
  | _ -> Alcotest.fail "cmp must stay first (ldr defines its source)"

(* All 14 conditions, against the architectural truth table, through
   the full stack: for random flag-producing comparisons, each
   conditional instruction must execute exactly when Cond.holds says. *)
let prop_condition_truth_table =
  QCheck.Test.make ~count:60 ~name:"all conditions honour the NZCV truth table"
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (x, y) ->
      let program a =
        Asm.mov a 0 x;
        Asm.cmp a 0 y;
        (* r1 = bitmask of taken conditions *)
        Asm.mov a 1 0;
        List.iteri
          (fun i cond -> Asm.orr a ~cond 1 1 (1 lsl i))
          [ Cond.EQ; Cond.NE; Cond.CS; Cond.CC; Cond.MI; Cond.PL; Cond.VS; Cond.VC;
            Cond.HI; Cond.LS; Cond.GE; Cond.LT ]
      in
      let words = assemble program in
      let expected =
        let f =
          {
            Cond.n = (x - y) < 0;
            z = x = y;
            c = x >= y;
            v = false (* small operands can't overflow *);
          }
        in
        List.fold_left
          (fun acc (i, c) -> if Cond.holds c f then acc lor (1 lsl i) else acc)
          0
          (List.mapi (fun i c -> (i, c))
             [ Cond.EQ; Cond.NE; Cond.CS; Cond.CC; Cond.MI; Cond.PL; Cond.VS; Cond.VC;
               Cond.HI; Cond.LS; Cond.GE; Cond.LT ])
      in
      List.for_all
        (fun (name, opt) ->
          let sys, _ = run_mode (D.System.Rules opt) words in
          let got = Cpu.get_reg (D.System.cpu sys) 1 in
          if got <> expected then
            QCheck.Test.fail_reportf "[%s] x=%d y=%d: got %x expected %x" name x y got
              expected
          else true)
        levels)

(* --- randomized differential across all levels --- *)

let prop_random_blocks =
  QCheck.Test.make ~count:40 ~name:"random blocks: rules engine = interpreter (all levels)"
    (Gen.arbitrary_plain_block 16)
    (fun insns ->
      let program a =
        List.iteri (fun i v -> Asm.mov32 a i v)
          [ 3; 0x80000000; 17; 0xFFFFFFFF; 42; 5; 0x7FFFFFFF; 9; 2; 1; 0; 123; 77 ];
        List.iter (fun i -> Asm.emit a i) insns;
        Asm.mov a 11 0
      in
      let words = assemble program in
      let ref_m, outcome, _ = run_ref words in
      (match outcome with
      | T.Ref_machine.Halted _ -> ()
      | _ -> QCheck.Test.fail_report "ref did not halt");
      let ref_snap = Cpu.to_snapshot ref_m.T.Ref_machine.cpu in
      List.for_all
        (fun (name, opt) ->
          let sys, res = run_mode (D.System.Rules opt) words in
          (match res.T.Engine.reason with
          | `Halted _ -> ()
          | `Insn_limit | `Livelock _ | `Deadline -> QCheck.Test.fail_reportf "[%s] insn limit" name);
          match state_mismatch ref_snap (snapshot_of_sys sys) with
          | None -> true
          | Some msg -> QCheck.Test.fail_reportf "[%s]:@\n%s" name msg)
        levels)

let prop_random_mem_blocks =
  QCheck.Test.make ~count:40
    ~name:"random memory blocks: rules engine = interpreter (all levels)"
    (Gen.arbitrary_mem_block 16)
    (fun insns ->
      let program a =
        List.iteri (fun i v -> if i <> Gen.mem_base_reg then Asm.mov32 a i v)
          [ 3; 0x80000000; 17; 0xFFFFFFFF; 42; 5; 0; 9; 2 ];
        (* anchor the scratch window well inside RAM, away from code *)
        Asm.mov32 a Gen.mem_base_reg 0x20000;
        (* seed it so loads see non-trivial data *)
        Asm.str a 0 Gen.mem_base_reg 0;
        Asm.str a 1 Gen.mem_base_reg 4;
        Asm.str a 3 Gen.mem_base_reg 8;
        List.iter (fun i -> Asm.emit a i) insns;
        Asm.mov a 11 0
      in
      let words = assemble program in
      let ref_m, outcome, _ = run_ref words in
      (match outcome with
      | T.Ref_machine.Halted _ -> ()
      | _ -> QCheck.Test.fail_report "ref did not halt");
      let ref_snap = Cpu.to_snapshot ref_m.T.Ref_machine.cpu in
      List.for_all
        (fun (name, opt) ->
          let sys, res = run_mode (D.System.Rules opt) words in
          (match res.T.Engine.reason with
          | `Halted _ -> ()
          | `Insn_limit | `Livelock _ | `Deadline -> QCheck.Test.fail_reportf "[%s] insn limit" name);
          (* memory must agree too, not just registers *)
          let got_snap = snapshot_of_sys sys in
          (match state_mismatch ref_snap got_snap with
          | None -> ()
          | Some msg -> ignore (QCheck.Test.fail_reportf "[%s]:@\n%s" name msg));
          let peek bus addr =
            match Bus.read32 bus addr with Ok v -> v | Error () -> -1
          in
          let ref_bus = ref_m.T.Ref_machine.bus in
          let got_bus = sys.D.System.rt.T.Runtime.bus in
          let rec scan addr =
            if addr >= 0x20800 then true
            else if peek ref_bus addr <> peek got_bus addr then
              QCheck.Test.fail_reportf "[%s] mem mismatch at %#x: ref %#x got %#x" name
                addr (peek ref_bus addr) (peek got_bus addr)
            else scan (addr + 4)
          in
          scan 0x1F800)
        levels)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "dbt.functional",
      [
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "conditionals" `Quick test_conditionals;
        Alcotest.test_case "consecutive conditionals (Fig 9)" `Quick
          test_consecutive_conditionals;
        Alcotest.test_case "loop" `Quick test_loop;
        Alcotest.test_case "memory (Fig 10)" `Quick test_memory;
        Alcotest.test_case "halfword memory" `Quick test_halfword_memory;
        Alcotest.test_case "clz falls back with coordination" `Quick test_clz_fallback;
        Alcotest.test_case "signed loads" `Quick test_signed_load_memory;
        Alcotest.test_case "mem with live flags (Fig 12)" `Quick test_mem_with_live_flags;
        Alcotest.test_case "unpinned registers fall back" `Quick test_unpinned_registers;
        Alcotest.test_case "calls with stack" `Quick test_calls;
        Alcotest.test_case "system insns" `Quick test_system_insns;
        Alcotest.test_case "svc keeps flags across context switch" `Quick
          test_svc_roundtrip;
        Alcotest.test_case "rsb/bic/shifted operands" `Quick test_rsb_bic_shift;
        Alcotest.test_case "zero-amount shifts set flags" `Quick
          test_zero_amount_shift_flags;
      ] );
    ("dbt.property.mem", [ q prop_random_mem_blocks ]);
    ( "dbt.shape",
      [
        Alcotest.test_case "full opt beats base and qemu" `Quick test_full_opt_beats_base;
        Alcotest.test_case "sync cost monotone over levels" `Quick
          test_sync_cost_decreases_with_levels;
        Alcotest.test_case "rule coverage counted" `Quick test_rule_coverage_counted;
        Alcotest.test_case "system-insn classification" `Quick
          test_sys_insn_classification;
        Alcotest.test_case "tiny code cache stays correct" `Quick test_tiny_code_cache;
        Alcotest.test_case "profile attribution" `Quick test_profile_attribution;
        Alcotest.test_case "profile hot ranking" `Quick test_profile_hot_ranking;
        Alcotest.test_case "profile aggregates across flushes" `Quick
          test_profile_across_flushes;
      ] );
    ( "dbt.scheduling",
      [
        Alcotest.test_case "define-before-use hoists ldr" `Quick test_schedule_dbu;
        Alcotest.test_case "scheduling respects dependences" `Quick
          test_schedule_respects_deps;
      ] );
    ("dbt.differential", [ q prop_random_blocks; q prop_condition_truth_table ]);
  ]
