open Repro_arm
module D = Repro_dbt
module X = Repro_x86.Insn
module Prog = Repro_x86.Prog

(* White-box tests of the rule-based emitter: the optimization levels
   must change the *static shape* of the emitted coordination code in
   exactly the ways the paper's figures describe. *)

let ruleset = lazy (Repro_rules.Builtin.ruleset ())

let emit ?(opt = D.Opt.full) ?elide ?entry_conv insns =
  D.Emitter.emit ~opt ~ruleset:(Lazy.force ruleset) ~privileged:false ~tb_pc:0
    ~insns:(Array.of_list insns) ?elide_flag_save:elide ?entry_conv ()

let count_in prog p = Array.fold_left (fun n i -> if p i then n + 1 else n) 0 prog.Prog.code

let count_sync_markers prog =
  count_in prog (function X.Count X.Cnt_sync_op -> true | _ -> false)

let assemble body =
  let a = Asm.create () in
  body a;
  snd (Asm.assemble_insns a) |> Array.to_list

(* Fig. 9: consecutive same-condition instructions share one
   Sync-restore and one guard under III-C-1. *)
let test_fig9_run_grouping () =
  let block =
    assemble (fun a ->
        Asm.cmp a 0 5;
        Asm.add a ~cond:Cond.EQ 1 1 1;
        Asm.add a ~cond:Cond.EQ 2 2 2;
        Asm.add a ~cond:Cond.EQ 3 3 3;
        Asm.branch_to a ~cond:Cond.NE "n";
        Asm.label a "n")
  in
  let base = emit ~opt:D.Opt.base block in
  let full = emit ~opt:D.Opt.full block in
  let jcc prog = count_in prog (function X.Jcc _ -> true | _ -> false) in
  (* base: one guard per conditional insn (+ branch + irq check);
     full: a single guard for the run *)
  Alcotest.(check bool)
    (Printf.sprintf "guards shrink (%d -> %d)" (jcc base.D.Emitter.prog)
       (jcc full.D.Emitter.prog))
    true
    (jcc full.D.Emitter.prog < jcc base.D.Emitter.prog);
  Alcotest.(check bool)
    (Printf.sprintf "sync ops shrink (%d -> %d)"
       (count_sync_markers base.D.Emitter.prog)
       (count_sync_markers full.D.Emitter.prog))
    true
    (count_sync_markers full.D.Emitter.prog < count_sync_markers base.D.Emitter.prog)

(* Fig. 10: consecutive memory accesses share coordination under
   III-C-2. *)
let test_fig10_consecutive_memory () =
  let block =
    assemble (fun a ->
        Asm.cmp a 0 5;
        Asm.str a 1 6 0;
        Asm.str a 2 6 4;
        Asm.ldr a 3 6 8;
        Asm.branch_to a ~cond:Cond.NE "n";
        Asm.label a "n")
  in
  let base = emit ~opt:D.Opt.base block in
  let elim = emit ~opt:D.Opt.with_elimination block in
  Alcotest.(check bool) "coordination shrinks" true
    (Prog.static_count elim.D.Emitter.prog < Prog.static_count base.D.Emitter.prog)

(* Fig. 8: the packed save is a handful of instructions, the parsed
   save is ~3x that. *)
let test_fig8_static_shape () =
  let block = assemble (fun a -> Asm.cmp a 0 5; Asm.svc a 0) in
  let parsed = emit ~opt:D.Opt.base block in
  let packed = emit ~opt:D.Opt.reduction_only block in
  Alcotest.(check bool)
    (Printf.sprintf "packed (%d) well below parsed (%d)"
       (Prog.static_count packed.D.Emitter.prog)
       (Prog.static_count parsed.D.Emitter.prog))
    true
    (Prog.static_count packed.D.Emitter.prog + 6
    <= Prog.static_count parsed.D.Emitter.prog)

(* Exit-state metadata drives the inter-TB optimization. *)
let test_exit_states_recorded () =
  let block =
    assemble (fun a ->
        Asm.cmp a 0 5;
        Asm.branch_to a ~cond:Cond.NE "n";
        Asm.label a "n")
  in
  let r = emit ~opt:D.Opt.full block in
  let some_save =
    Array.exists (fun (e : D.Emitter.exit_state) -> e.D.Emitter.flags_save_in_epilogue)
      r.D.Emitter.exit_states
  in
  Alcotest.(check bool) "an exit carries a flag save" true some_save

let test_elide_removes_save () =
  let block =
    assemble (fun a ->
        Asm.cmp a 0 5;
        Asm.branch_to a "n";
        Asm.label a "n")
  in
  let normal = emit ~opt:D.Opt.full block in
  let elide = Array.make Repro_tcg.Tb.exit_slots true in
  let elided = emit ~opt:D.Opt.full ~elide block in
  Alcotest.(check bool) "elided epilogue is shorter" true
    (Prog.static_count elided.D.Emitter.prog < Prog.static_count normal.D.Emitter.prog);
  Alcotest.(check bool) "records no save" true
    (Array.for_all
       (fun (e : D.Emitter.exit_state) -> not e.D.Emitter.flags_save_in_epilogue)
       elided.D.Emitter.exit_states)

let test_entry_conv_guards_irq_check () =
  let block = assemble (fun a -> Asm.add a 0 0 1; Asm.branch_to a "n"; Asm.label a "n") in
  let plain = emit ~opt:D.Opt.full block in
  let assumed = emit ~opt:D.Opt.full ~entry_conv:Repro_rules.Flagconv.Sub_like block in
  let savef prog = count_in prog (function X.Savef _ -> true | _ -> false) in
  Alcotest.(check bool) "assumed entry parks EFLAGS around the check" true
    (savef assumed.D.Emitter.prog > savef plain.D.Emitter.prog)

let test_first_flag_is_def () =
  let def_first =
    assemble (fun a ->
        Asm.cmp a 0 5;
        Asm.add a 1 1 1;
        Asm.branch_to a "n";
        Asm.label a "n")
  in
  let use_first =
    assemble (fun a ->
        Asm.add a ~cond:Cond.EQ 1 1 1;
        Asm.branch_to a "n";
        Asm.label a "n")
  in
  let mem_first =
    assemble (fun a ->
        Asm.ldr a 1 6 0;
        Asm.cmp a 0 5;
        Asm.branch_to a "n";
        Asm.label a "n")
  in
  Alcotest.(check bool) "cmp first" true (emit def_first).D.Emitter.first_flag_is_def;
  Alcotest.(check bool) "conditional first" false
    (emit use_first).D.Emitter.first_flag_is_def;
  Alcotest.(check bool) "memory first (conservative)" false
    (emit mem_first).D.Emitter.first_flag_is_def

let test_sched_irq_moves_check () =
  let block =
    assemble (fun a ->
        Asm.ldr a 1 6 0;
        Asm.add a 2 2 1;
        Asm.branch_to a "n";
        Asm.label a "n")
  in
  let find prog p =
    let idx = ref (-1) in
    Array.iteri (fun i insn -> if !idx < 0 && p insn then idx := i) prog.Prog.code;
    !idx
  in
  let without = emit ~opt:D.Opt.with_elimination block in
  let with_sched = emit ~opt:D.Opt.full block in
  let poll p = find p (function X.Count X.Cnt_irq_poll -> true | _ -> false) in
  let first_insn p = find p (function X.Count (X.Cnt_guest_insn _) -> true | _ -> false) in
  Alcotest.(check bool) "check at head without scheduling" true
    (poll without.D.Emitter.prog < first_insn without.D.Emitter.prog);
  Alcotest.(check bool) "check moved into the block with scheduling" true
    (poll with_sched.D.Emitter.prog > first_insn with_sched.D.Emitter.prog)

let test_inline_mmu_has_no_helper_on_fast_path () =
  let block =
    assemble (fun a ->
        Asm.ldr a 1 6 0;
        Asm.branch_to a "n";
        Asm.label a "n")
  in
  let helper = emit ~opt:D.Opt.full block in
  let inline = emit ~opt:D.Opt.future block in
  let tlb_ops prog =
    count_in prog (function
      | X.Alu { dst = X.Mem { X.seg = X.Tlb; _ }; _ }
      | X.Mov { src = X.Mem { X.seg = X.Tlb; _ }; _ } -> true
      | _ -> false)
  in
  Alcotest.(check bool) "helper path has no inline TLB probe" true
    (tlb_ops helper.D.Emitter.prog = 0);
  Alcotest.(check bool) "inline path probes the TLB" true
    (tlb_ops inline.D.Emitter.prog >= 2)

let suite =
  [
    ( "emitter",
      [
        Alcotest.test_case "Fig 9: run grouping" `Quick test_fig9_run_grouping;
        Alcotest.test_case "Fig 10: consecutive memory" `Quick test_fig10_consecutive_memory;
        Alcotest.test_case "Fig 8: parsed vs packed shape" `Quick test_fig8_static_shape;
        Alcotest.test_case "exit states recorded" `Quick test_exit_states_recorded;
        Alcotest.test_case "elision removes the save" `Quick test_elide_removes_save;
        Alcotest.test_case "entry assumption guards irq check" `Quick
          test_entry_conv_guards_irq_check;
        Alcotest.test_case "defines-flags-before-use analysis" `Quick test_first_flag_is_def;
        Alcotest.test_case "III-D-2 moves the check" `Quick test_sched_irq_moves_check;
        Alcotest.test_case "inline mmu probes inline" `Quick
          test_inline_mmu_has_no_helper_on_fast_path;
      ] );
  ]
