module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module R = Repro_rules
module Fi = Repro_faultinject.Faultinject
module Res = Repro_resilience

(* Self-healing fleet tests: backoff and health-ladder unit behavior,
   then whole-fleet drills exercising crash-only restarts, deadlines,
   the circuit breaker and same-seed determinism. *)

let target = 60_000
let warm = 4_000

(* One warm base snapshot shared by every test (building it runs the
   boot + warm phase once; tests only restore). *)
let base =
  lazy
    (let spec = W.find "gcc" in
     let iters = max 1 (target / W.insns_per_iteration spec) in
     let user = W.generate spec ~iterations:iters in
     let image = K.build ~timer_period:5_000 ~user_program:user () in
     let inject = Fi.create ~seed:1 ~rate:0.0 ~behavior:Fi.Surface () in
     let sys =
       D.System.create ~inject ~shadow_depth:4 ~quarantine_threshold:2
         (D.System.Rules D.Opt.full)
     in
     K.load image (fun b words -> D.System.load_image sys b words);
     match
       (D.System.run ~max_guest_insns:warm ~checkpoint_every:warm sys)
         .T.Engine.reason
     with
     | `Insn_limit -> D.System.snapshot sys
     | _ -> Alcotest.fail "warm boot did not reach the instruction limit")

let policy =
  {
    Res.Supervisor.default_policy with
    Res.Supervisor.deadline = 10 * target;
    checkpoint_every = 2_000;
    retry_budget = 3;
  }

let chaos_plan ?(machines = 3) ?(faulty = 1) ~seed () =
  Fi.Plan.make ~seed ~machines ~faulty
    [
      (Fi.Bus_read, 0.0002);
      (Fi.Bus_write, 0.0002);
      (Fi.Tb_flush, 0.0001);
      (Fi.Rule_corrupt, 0.05);
    ]

(* ---- backoff ---- *)

let test_backoff_deterministic () =
  let seq seed =
    let b = Res.Backoff.create ~base:1_000 ~cap:50_000 ~seed () in
    List.init 12 (fun _ -> Res.Backoff.next b)
  in
  Alcotest.(check (list int)) "same seed, same delays" (seq 9) (seq 9);
  Alcotest.(check bool) "different seed, different delays" true (seq 9 <> seq 10)

let test_backoff_window () =
  let b = Res.Backoff.create ~base:1_000 ~cap:50_000 ~seed:3 () in
  for attempt = 0 to 19 do
    let raw = min 50_000 (1_000 * (1 lsl min attempt 10)) in
    let d = Res.Backoff.next b in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d delay %d within [%d,%d]" attempt d (raw / 2) raw)
      true
      (d >= raw / 2 && d <= raw)
  done;
  let total = Res.Backoff.total b in
  Alcotest.(check bool) "total accumulates" true (total > 0);
  Res.Backoff.reset b;
  let d = Res.Backoff.next b in
  Alcotest.(check bool) "reset returns to the first window" true
    (d >= 500 && d <= 1_000);
  Alcotest.(check bool) "total survives reset" true
    (Res.Backoff.total b = total + d)

(* ---- health ladder ---- *)

let test_health_ladder () =
  let h = Res.Health.create ~degrade_after:1 ~quarantine_after:3 () in
  Alcotest.(check bool) "starts serving" true (Res.Health.serving h);
  let s = Res.Health.note h Res.Health.Deadline_timeout in
  Alcotest.(check string) "first strike degrades" "degraded"
    (Res.Health.state_name s);
  ignore (Res.Health.note h Res.Health.Watchdog_recovered);
  let s = Res.Health.note h Res.Health.Crash in
  Alcotest.(check string) "third strike quarantines" "quarantined"
    (Res.Health.state_name s);
  Alcotest.(check bool) "quarantined does not serve" false (Res.Health.serving h);
  Alcotest.(check bool) "quarantined is alive" true (Res.Health.alive h);
  let s = Res.Health.note_restart_ok h in
  Alcotest.(check string) "restart lifts back to degraded" "degraded"
    (Res.Health.state_name s);
  Alcotest.(check int) "crash count" 1 (Res.Health.crashes h);
  Alcotest.(check int) "restart count" 1 (Res.Health.restarts h);
  (* strikes re-armed at degrade_after: two more reach the threshold *)
  ignore (Res.Health.note h Res.Health.Crash);
  let s = Res.Health.note h Res.Health.Crash in
  Alcotest.(check string) "re-quarantines after re-arm" "quarantined"
    (Res.Health.state_name s);
  Res.Health.kill h;
  Alcotest.(check bool) "dead is absorbing" false
    (Res.Health.alive h || Res.Health.serving h);
  ignore (Res.Health.note_restart_ok h);
  Alcotest.(check string) "no resurrection" "dead"
    (Res.Health.state_name (Res.Health.state h))

(* ---- supervisor ---- *)

let test_supervisor_serves_clean () =
  let s =
    Res.Supervisor.create ~id:0 ~policy (Lazy.force base)
  in
  let fleet_config = { Res.Fleet.machines = 1; min_healthy = 0; policy } in
  let f = Res.Fleet.create ~config:fleet_config (Lazy.force base) in
  let reference = Res.Fleet.reference f in
  (match Res.Supervisor.serve ~reference s ~request:0 () with
  | Res.Supervisor.Served { attempts; _ } ->
    Alcotest.(check int) "clean serve needs one attempt" 1 attempts
  | o -> Alcotest.fail ("expected Served, got " ^ Res.Supervisor.outcome_name o));
  (match Res.Supervisor.serve ~reference s ~request:1 () with
  | Res.Supervisor.Served _ -> ()
  | o -> Alcotest.fail ("expected Served, got " ^ Res.Supervisor.outcome_name o));
  Alcotest.(check string) "still healthy" "healthy"
    (Res.Health.state_name (Res.Health.state (Res.Supervisor.health s)))

let test_supervisor_deadline () =
  (* a deadline shorter than the workload remainder must surface as
     the typed Timed_out outcome, not a crash or a hang *)
  let tight = { policy with Res.Supervisor.deadline = 1_000 } in
  let s = Res.Supervisor.create ~id:0 ~policy:tight (Lazy.force base) in
  (match Res.Supervisor.serve s ~request:0 () with
  | Res.Supervisor.Timed_out -> ()
  | o ->
    Alcotest.fail ("expected Timed_out, got " ^ Res.Supervisor.outcome_name o));
  Alcotest.(check int) "timeout recorded" 1 (Res.Supervisor.timeouts s);
  Alcotest.(check string) "one strike degrades" "degraded"
    (Res.Health.state_name (Res.Health.state (Res.Supervisor.health s)))

(* ---- fleet ---- *)

let drill ~seed ~machines ~faulty ~requests =
  let plan = chaos_plan ~machines ~faulty ~seed () in
  let f =
    Res.Fleet.create ~plan
      ~config:{ Res.Fleet.machines; min_healthy = 1; policy }
      (Lazy.force base)
  in
  Res.Fleet.run f ~requests;
  ignore (Res.Fleet.final_verify f);
  f

let test_fleet_chaos_drill () =
  let f = drill ~seed:7 ~machines:3 ~faulty:1 ~requests:9 in
  Alcotest.(check int) "every request accounted for" 9
    (Res.Fleet.served_ok f + Res.Fleet.timed_out f + Res.Fleet.shed f
    + Res.Fleet.failed f);
  Alcotest.(check bool) "chaos forced restarts" true (Res.Fleet.restarts f > 0);
  Alcotest.(check bool) "restarts accumulated modeled backoff" true
    (Res.Fleet.backoff_insns f > 0);
  Alcotest.(check bool) "fleet survived" true (Res.Fleet.alive_count f > 0);
  Alcotest.(check bool) "healthy majority kept serving" true
    (Res.Fleet.served_ok f >= 6);
  Alcotest.(check bool) "survivors reproduce the fault-free reference" true
    (Res.Fleet.final_verify f)

let test_fleet_deterministic () =
  let m f = Res.Fleet.metrics_json f in
  let a = m (drill ~seed:11 ~machines:3 ~faulty:1 ~requests:6) in
  let b = m (drill ~seed:11 ~machines:3 ~faulty:1 ~requests:6) in
  Alcotest.(check string) "same seed, byte-identical metrics" a b;
  let c = m (drill ~seed:12 ~machines:3 ~faulty:1 ~requests:6) in
  Alcotest.(check bool) "different seed, different drill" true (a <> c)

let test_fleet_breaker_broadcast () =
  let f =
    Res.Fleet.create
      ~config:{ Res.Fleet.machines = 3; min_healthy = 1; policy }
      (Lazy.force base)
  in
  (* simulate machine 0's shadow verification quarantining a rule
     locally, then let the breaker sweep (which runs after machine 0
     serves) broadcast it *)
  let rs_of i =
    match (Res.Supervisor.machine (Res.Fleet.supervisor f i)).D.System.ruleset with
    | Some rs -> rs
    | None -> Alcotest.fail "rules-mode machine has a ruleset"
  in
  let victim = (List.hd (R.Ruleset.rules (rs_of 0))).R.Rule.id in
  Alcotest.(check bool) "local quarantine installs" true
    (R.Ruleset.quarantine_by_id (rs_of 0) victim);
  (match Res.Fleet.serve_one f with
  | Res.Fleet.Done { machine = 0; result = Res.Supervisor.Served _ } -> ()
  | _ -> Alcotest.fail "machine 0 should serve the first request");
  Alcotest.(check int) "one breaker trip" 1 (Res.Fleet.breaker_trips f);
  for i = 1 to 2 do
    Alcotest.(check (list int))
      (Printf.sprintf "machine %d inherited the quarantine" i)
      [ victim ]
      (R.Ruleset.quarantined_ids (rs_of i))
  done;
  (* the broadcast must not break the other machines: they still serve
     and still match the reference *)
  (match Res.Fleet.serve_one f with
  | Res.Fleet.Done { machine = 1; result = Res.Supervisor.Served _ } -> ()
  | _ -> Alcotest.fail "machine 1 should serve under the broadcast quarantine");
  Alcotest.(check bool) "survivors verify clean" true (Res.Fleet.final_verify f)

let test_fleet_admission_control () =
  let f =
    Res.Fleet.create
      ~config:{ Res.Fleet.machines = 2; min_healthy = 2; policy }
      (Lazy.force base)
  in
  (match Res.Fleet.serve_one f with
  | Res.Fleet.Done _ -> ()
  | Res.Fleet.Shed -> Alcotest.fail "full fleet must not shed");
  (* kill one machine: serving drops below min_healthy, requests shed *)
  Res.Health.kill (Res.Supervisor.health (Res.Fleet.supervisor f 0));
  (match Res.Fleet.serve_one f with
  | Res.Fleet.Shed -> ()
  | Res.Fleet.Done _ -> Alcotest.fail "under-strength fleet must shed");
  Alcotest.(check int) "shed counted" 1 (Res.Fleet.shed f);
  Alcotest.(check int) "alive count sees the death" 1 (Res.Fleet.alive_count f)

let suite =
  [
    ( "resilience",
      [
        Alcotest.test_case "backoff: deterministic from seed" `Quick
          test_backoff_deterministic;
        Alcotest.test_case "backoff: jittered exponential window" `Quick
          test_backoff_window;
        Alcotest.test_case "health: ladder transitions" `Quick test_health_ladder;
        Alcotest.test_case "supervisor: serves verified requests" `Slow
          test_supervisor_serves_clean;
        Alcotest.test_case "supervisor: deadline is a typed timeout" `Slow
          test_supervisor_deadline;
        Alcotest.test_case "fleet: chaos drill self-heals" `Slow
          test_fleet_chaos_drill;
        Alcotest.test_case "fleet: same-seed drills are byte-identical" `Slow
          test_fleet_deterministic;
        Alcotest.test_case "fleet: circuit breaker broadcasts quarantine" `Slow
          test_fleet_breaker_broadcast;
        Alcotest.test_case "fleet: admission control sheds under-strength" `Slow
          test_fleet_admission_control;
      ] );
  ]
