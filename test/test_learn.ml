module L = Repro_learn
module D = Repro_dbt
module T = Repro_tcg
module Minic = Repro_minic
module Rule = Repro_rules.Rule
open Repro_arm

let report = lazy (L.Learn.learn ())

let test_pipeline_stats () =
  let r = Lazy.force report in
  Alcotest.(check bool) "many candidates" true (r.L.Learn.candidates >= 60);
  Alcotest.(check bool)
    (Printf.sprintf "high verification rate (%d/%d)" r.L.Learn.verified
       r.L.Learn.candidates)
    true
    (float_of_int r.L.Learn.verified
    >= 0.85 *. float_of_int r.L.Learn.candidates);
  Alcotest.(check bool) "substantial rule set" true (List.length r.L.Learn.rules >= 20)

let test_class_lumping () =
  let r = Lazy.force report in
  let has_class =
    List.exists
      (fun rule ->
        match rule.Rule.guest with
        | [ Rule.G_dp { ops; _ } ] -> List.length ops > 1
        | _ -> false)
      r.L.Learn.rules
  in
  Alcotest.(check bool) "opcode-class rule exists" true has_class

let test_variable_shift_rules () =
  (* the variable_shifts corpus program must yield register-specified
     shift rules that match and instantiate (cl-based host shifts) *)
  let r = Lazy.force report in
  let shift_reg_rules =
    List.filter
      (fun rule ->
        List.exists
          (fun g ->
            match g with
            | Rule.G_dp { op2 = Rule.G_shift_reg _; _ } -> true
            | Rule.G_dp _ | Rule.G_mul _ | Rule.G_movw _ | Rule.G_movt _ -> false)
          rule.Rule.guest)
      r.L.Learn.rules
  in
  Alcotest.(check bool) "register-shift rules learned" true (shift_reg_rules <> []);
  (* each must use a cl shift on the host side *)
  List.iter
    (fun rule ->
      let has_cl =
        List.exists
          (fun h -> match h with Rule.H_shift_cl _ -> true | _ -> false)
          rule.Rule.host
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s uses cl shift" rule.Rule.name)
        true has_cl)
    shift_reg_rules;
  (* and a concrete instance must match the rule set *)
  let insn =
    Insn.make
      (Insn.Dp
         {
           op = Insn.MOV;
           s = false;
           rd = 2;
           rn = 0;
           op2 = Insn.Reg_shift_reg { rm = 0; kind = Insn.LSL; rs = 1 };
         })
  in
  let rs = Repro_rules.Ruleset.of_list r.L.Learn.rules in
  match Repro_rules.Ruleset.match_at rs [ insn ] with
  | Some _ -> ()
  | None -> Alcotest.fail "mov rd, rm lsl rs must match a learned rule"

let test_verifier_rejects_wrong_pairs () =
  (* guest add vs host sub must refute *)
  let guest =
    [ Insn.make (Insn.Dp { op = Insn.ADD; s = false; rd = 0; rn = 1;
                           op2 = Insn.Reg_shift_imm { rm = 2; kind = Insn.LSL; amount = 0 } }) ]
  in
  let module X = Repro_x86.Insn in
  let pin r = Option.get (Repro_rules.Pinmap.pin r) in
  let host_wrong =
    [ X.Mov { width = X.W32; dst = X.Reg (pin 0); src = X.Reg (pin 1) };
      X.Alu { op = X.Sub; dst = X.Reg (pin 0); src = X.Reg (pin 2) } ]
  in
  (match L.Verify.check ~guest ~host:host_wrong with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "add/sub pair must be rejected");
  let host_right =
    [ X.Mov { width = X.W32; dst = X.Reg (pin 0); src = X.Reg (pin 1) };
      X.Alu { op = X.Add; dst = X.Reg (pin 0); src = X.Reg (pin 2) } ]
  in
  match L.Verify.check ~guest ~host:host_right with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "correct pair rejected: %s" e

let test_verifier_detects_pinned_clobber () =
  (* a template that corrupts an unrelated pinned register must fail *)
  let guest =
    [ Insn.make (Insn.Dp { op = Insn.MOV; s = false; rd = 0; rn = 0;
                           op2 = Insn.imm_operand_exn 5 }) ]
  in
  let module X = Repro_x86.Insn in
  let pin r = Option.get (Repro_rules.Pinmap.pin r) in
  let host =
    [ X.Mov { width = X.W32; dst = X.Reg (pin 0); src = X.Imm 5 };
      X.Mov { width = X.W32; dst = X.Reg (pin 3); src = X.Imm 0 } ]
  in
  match L.Verify.check ~guest ~host with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pinned-register clobber must be rejected"

let test_carry_in_detection () =
  (* adc template verifies with `Direct carry-in *)
  let guest =
    [ Insn.make (Insn.Dp { op = Insn.ADC; s = true; rd = 0; rn = 1;
                           op2 = Insn.imm_operand_exn 0 }) ]
  in
  let module X = Repro_x86.Insn in
  let pin r = Option.get (Repro_rules.Pinmap.pin r) in
  let host =
    [ X.Mov { width = X.W32; dst = X.Reg (pin 0); src = X.Reg (pin 1) };
      X.Alu { op = X.Adc; dst = X.Reg (pin 0); src = X.Imm 0 } ]
  in
  match L.Verify.check ~guest ~host with
  | Ok v ->
    Alcotest.(check bool) "carry-in direct" true (v.L.Verify.carry_in = Some `Direct)
  | Error e -> Alcotest.failf "adc pair rejected: %s" e

(* Each corpus program: compile, run under the learned rules at base
   and full, and compare the locals (r4..r8) with the reference
   interpreter. The end-to-end soundness test of the whole pipeline. *)
let test_corpus_differential () =
  let r = Lazy.force report in
  let ruleset = L.Learn.ruleset r in
  List.iter
    (fun prog ->
      let words = Minic.Codegen_arm.compile_runnable prog ~halt_with:None in
      let m = T.Ref_machine.create () in
      T.Ref_machine.load_image m 0 words;
      (match fst (T.Ref_machine.run m ~max_steps:500_000) with
      | T.Ref_machine.Halted _ -> ()
      | _ -> Alcotest.failf "%s: reference did not halt" prog.Minic.Ast.name);
      List.iter
        (fun opt ->
          let sys = D.System.create ~ruleset (D.System.Rules opt) in
          D.System.load_image sys 0 words;
          (match (D.System.run ~max_guest_insns:500_000 sys).T.Engine.reason with
          | `Halted _ -> ()
          | `Insn_limit | `Livelock _ | `Deadline ->
            Alcotest.failf "%s: did not halt" prog.Minic.Ast.name);
          let cpu = D.System.cpu sys in
          for reg = 4 to 8 do
            Alcotest.(check int)
              (Printf.sprintf "%s r%d" prog.Minic.Ast.name reg)
              (Cpu.get_reg m.T.Ref_machine.cpu reg)
              (Cpu.get_reg cpu reg)
          done)
        [ D.Opt.base; D.Opt.full ])
    L.Corpus.programs

let test_learned_rules_serialize () =
  let r = Lazy.force report in
  let rs = L.Learn.ruleset r in
  match Repro_rules.Serialize.load (Repro_rules.Serialize.save rs) with
  | Ok rs' ->
    Alcotest.(check bool) "learned set roundtrips" true
      (Repro_rules.Ruleset.rules rs = Repro_rules.Ruleset.rules rs')
  | Error e -> Alcotest.failf "learned serialization failed: %s" e

let test_determinism () =
  let a = L.Learn.learn () in
  let b = L.Learn.learn () in
  Alcotest.(check int) "same rule count" (List.length a.L.Learn.rules)
    (List.length b.L.Learn.rules);
  Alcotest.(check int) "same verified" a.L.Learn.verified b.L.Learn.verified

let suite =
  [
    ( "learn.pipeline",
      [
        Alcotest.test_case "stats sane" `Quick test_pipeline_stats;
        Alcotest.test_case "opcode-class lumping" `Quick test_class_lumping;
        Alcotest.test_case "variable-shift rules" `Quick test_variable_shift_rules;
        Alcotest.test_case "deterministic" `Quick test_determinism;
        Alcotest.test_case "learned rules serialize" `Quick test_learned_rules_serialize;
      ] );
    ( "learn.verify",
      [
        Alcotest.test_case "rejects wrong opcode" `Quick test_verifier_rejects_wrong_pairs;
        Alcotest.test_case "rejects pinned clobber" `Quick test_verifier_detects_pinned_clobber;
        Alcotest.test_case "detects adc carry-in" `Quick test_carry_in_detection;
      ] );
    ( "learn.end_to_end",
      [ Alcotest.test_case "corpus differential" `Quick test_corpus_differential ] );
  ]
