module X = Repro_x86.Insn
module Prog = Repro_x86.Prog
module Exec = Repro_x86.Exec

(* Direct tests of the host model: flag semantics, memory segments,
   control flow, helper poisoning and the measurement counters. *)

let run ?(setup = fun _ -> ()) insns =
  let ctx = Exec.create () in
  setup ctx;
  let b = Prog.builder () in
  List.iter (fun i -> Prog.emit b i) insns;
  Prog.emit b (X.Exit { slot = 0 });
  let prog = Prog.finalize b in
  match Exec.run ctx prog ~fuel:10_000 with
  | Exec.Exited 0 -> ctx
  | _ -> Alcotest.fail "program did not exit normally"

let mov r v = X.Mov { width = X.W32; dst = X.Reg r; src = X.Imm v }

let test_add_flags () =
  let ctx =
    run [ mov X.rax 0xFFFFFFFF; X.Alu { op = X.Add; dst = X.Reg X.rax; src = X.Imm 1 } ]
  in
  Alcotest.(check int) "wrapped" 0 ctx.Exec.regs.(X.rax);
  Alcotest.(check bool) "cf" true ctx.Exec.cf;
  Alcotest.(check bool) "zf" true ctx.Exec.zf;
  Alcotest.(check bool) "of" false ctx.Exec.o_f

let test_sub_borrow () =
  let ctx = run [ mov X.rax 3; X.Alu { op = X.Sub; dst = X.Reg X.rax; src = X.Imm 5 } ] in
  Alcotest.(check int) "result" 0xFFFFFFFE ctx.Exec.regs.(X.rax);
  Alcotest.(check bool) "cf = borrow" true ctx.Exec.cf;
  Alcotest.(check bool) "sf" true ctx.Exec.sf

let test_signed_overflow () =
  let ctx =
    run [ mov X.rax 0x7FFFFFFF; X.Alu { op = X.Add; dst = X.Reg X.rax; src = X.Imm 1 } ]
  in
  Alcotest.(check bool) "of" true ctx.Exec.o_f;
  Alcotest.(check bool) "cf" false ctx.Exec.cf

let test_adc_sbb () =
  let ctx =
    run
      [
        mov X.rax 0xFFFFFFFF;
        X.Alu { op = X.Add; dst = X.Reg X.rax; src = X.Imm 1 };  (* cf := 1 *)
        mov X.rbx 10;
        X.Alu { op = X.Adc; dst = X.Reg X.rbx; src = X.Imm 0 };  (* 10 + 0 + 1 *)
      ]
  in
  Alcotest.(check int) "adc" 11 ctx.Exec.regs.(X.rbx)

let test_lea_preserves_flags () =
  let ctx =
    run
      [
        mov X.rax 1;
        X.Alu { op = X.Cmp; dst = X.Reg X.rax; src = X.Imm 1 };  (* zf := 1 *)
        mov X.rbx 5;
        mov X.rcx 7;
        X.Lea
          { dst = X.rdx;
            addr = { X.seg = X.Ram; base = Some X.rbx; index = Some X.rcx; scale = 1; disp = 0 } };
      ]
  in
  Alcotest.(check int) "lea sum" 12 ctx.Exec.regs.(X.rdx);
  Alcotest.(check bool) "zf preserved" true ctx.Exec.zf

let test_savef_loadf_roundtrip () =
  let ctx =
    run
      [
        mov X.rax 0;
        X.Alu { op = X.Cmp; dst = X.Reg X.rax; src = X.Imm 1 };  (* sf, cf set *)
        X.Savef X.rbx;
        mov X.rax 1;
        X.Alu { op = X.Test; dst = X.Reg X.rax; src = X.Reg X.rax };  (* clobber *)
        X.Loadf X.rbx;
      ]
  in
  Alcotest.(check bool) "cf restored" true ctx.Exec.cf;
  Alcotest.(check bool) "sf restored" true ctx.Exec.sf;
  Alcotest.(check bool) "zf restored" false ctx.Exec.zf

let test_env_segment () =
  let ctx =
    run
      [
        mov X.rax 0xABCD;
        X.Mov { width = X.W32; dst = X.Mem (X.env_slot 5); src = X.Reg X.rax };
        X.Mov { width = X.W32; dst = X.Reg X.rbx; src = X.Mem (X.env_slot 5) };
      ]
  in
  Alcotest.(check int) "env roundtrip" 0xABCD ctx.Exec.regs.(X.rbx);
  Alcotest.(check int) "env slot" 0xABCD ctx.Exec.env.(5)

let test_ram_segment_byte () =
  let ctx =
    run
      [
        mov X.rax 0x11223344;
        mov X.rbx 0x100;
        X.Mov
          { width = X.W32;
            dst = X.Mem { X.seg = X.Ram; base = Some X.rbx; index = None; scale = 1; disp = 0 };
            src = X.Reg X.rax };
        X.Movzx8
          { dst = X.rcx;
            src = X.Mem { X.seg = X.Ram; base = Some X.rbx; index = None; scale = 1; disp = 1 } };
      ]
  in
  Alcotest.(check int) "little-endian byte" 0x33 ctx.Exec.regs.(X.rcx)

let test_helper_poisons_registers () =
  let witnessed = ref 0 in
  let setup (ctx : Exec.t) =
    ctx.Exec.helper <-
      (fun c _id ->
        witnessed := c.Exec.regs.(X.rdx);
        77)
  in
  let ctx =
    run ~setup
      [ mov X.rdx 123; mov X.rbx 0x5555; X.Call_helper { id = 0 } ]
  in
  Alcotest.(check int) "helper saw its argument" 123 !witnessed;
  Alcotest.(check int) "return value in rax" 77 ctx.Exec.regs.(X.rax);
  Alcotest.(check bool) "rbx poisoned" true (ctx.Exec.regs.(X.rbx) <> 0x5555)

let test_counters () =
  let ctx =
    run
      [
        X.Count (X.Cnt_guest_insn 0);
        X.Count (X.Cnt_guest_insn 0);
        X.Count X.Cnt_sync_op;
        mov X.rax 1;
      ]
  in
  Alcotest.(check int) "guest counter" 2 ctx.Exec.stats.Repro_x86.Stats.guest_insns;
  Alcotest.(check int) "sync counter" 1 ctx.Exec.stats.Repro_x86.Stats.sync_ops;
  (* pseudo-ops are free; only mov and exit retire *)
  Alcotest.(check int) "host insns" 2 ctx.Exec.stats.Repro_x86.Stats.host_insns

let test_fuel_guard () =
  let ctx = Exec.create () in
  let b = Prog.builder () in
  let l = Prog.fresh_label b in
  Prog.emit b (X.Label l);
  Prog.emit b (X.Jmp l);
  let prog = Prog.finalize b in
  match Exec.run ctx prog ~fuel:100 with
  | exception Exec.Fuel_exhausted { spent } ->
    Alcotest.(check bool) "spent near budget" true (spent >= 100)
  | _ -> Alcotest.fail "runaway loop must exhaust fuel"

let test_shift_by_cl () =
  let ctx =
    run
      [
        mov X.rax 1;
        mov X.rcx 35;  (* & 31 = 3 *)
        X.Shift { op = X.Shl; dst = X.Reg X.rax; amount = X.Sh_cl };
      ]
  in
  Alcotest.(check int) "cl shift mod 32" 8 ctx.Exec.regs.(X.rax)

let suite =
  [
    ( "x86.exec",
      [
        Alcotest.test_case "add flags" `Quick test_add_flags;
        Alcotest.test_case "sub borrow convention" `Quick test_sub_borrow;
        Alcotest.test_case "signed overflow" `Quick test_signed_overflow;
        Alcotest.test_case "adc reads carry" `Quick test_adc_sbb;
        Alcotest.test_case "lea preserves flags" `Quick test_lea_preserves_flags;
        Alcotest.test_case "savef/loadf roundtrip" `Quick test_savef_loadf_roundtrip;
        Alcotest.test_case "env segment" `Quick test_env_segment;
        Alcotest.test_case "ram byte access" `Quick test_ram_segment_byte;
        Alcotest.test_case "helper args/poison/return" `Quick test_helper_poisons_registers;
        Alcotest.test_case "measurement counters" `Quick test_counters;
        Alcotest.test_case "fuel guard" `Quick test_fuel_guard;
        Alcotest.test_case "variable shift uses cl mod 32" `Quick test_shift_by_cl;
      ] );
  ]
