(* QCheck generators for ARM instructions, in the canonical form the
   encoder emits (test ops carry [s=false], [rd=0]). *)

open Repro_arm

let gen_reg = QCheck.Gen.int_range 0 15
let gen_low_reg = QCheck.Gen.int_range 0 12
let gen_cond = QCheck.Gen.oneofl Cond.all
let gen_shift_kind = QCheck.Gen.oneofl Insn.[ LSL; LSR; ASR; ROR ]

let gen_dp_op =
  QCheck.Gen.oneofl
    Insn.[ AND; EOR; SUB; RSB; ADD; ADC; SBC; RSC; TST; TEQ; CMP; CMN; ORR; MOV; BIC; MVN ]

let gen_operand2 =
  let open QCheck.Gen in
  oneof
    [
      (let* imm8 = int_range 0 255 in
       let* rot = int_range 0 15 in
       return (Insn.Imm { imm8; rot }));
      (let* rm = gen_reg in
       let* kind = gen_shift_kind in
       let* amount = int_range 0 31 in
       return (Insn.Reg_shift_imm { rm; kind; amount }));
      (let* rm = gen_reg in
       let* kind = gen_shift_kind in
       let* rs = gen_reg in
       return (Insn.Reg_shift_reg { rm; kind; rs }));
    ]

let gen_mem_offset =
  let open QCheck.Gen in
  oneof
    [
      (let* n = int_range (-4095) 4095 in
       return (Insn.Imm_off n));
      (let* rm = gen_reg in
       let* kind = gen_shift_kind in
       let* amount = int_range 0 31 in
       let* subtract = bool in
       return (Insn.Reg_off { rm; kind; amount; subtract }));
    ]

let gen_index = QCheck.Gen.oneofl Insn.[ Offset; Pre_indexed; Post_indexed ]
let gen_width = QCheck.Gen.oneofl Insn.[ Word; Byte ]
let gen_ldm_kind = QCheck.Gen.oneofl Insn.[ IA; DB ]

let gen_op =
  let open QCheck.Gen in
  oneof
    [
      (let* op = gen_dp_op in
       let* s = bool in
       let* rd = gen_reg in
       let* rn = gen_reg in
       let* op2 = gen_operand2 in
       let canonical_s = if Insn.dp_op_is_test op then false else s in
       let canonical_rd = if Insn.dp_op_is_test op then 0 else rd in
       return (Insn.Dp { op; s = canonical_s; rd = canonical_rd; rn; op2 }));
      (let* s = bool in
       let* rd = gen_reg in
       let* rn = gen_reg in
       let* rm = gen_reg in
       let* acc = opt gen_reg in
       return (Insn.Mul { s; rd; rn; rm; acc }));
      (let* rd = gen_reg in
       let* rm = gen_reg in
       return (Insn.Clz { rd; rm }));
      (let* width = gen_width in
       let* rd = gen_reg in
       let* rn = gen_reg in
       let* off = gen_mem_offset in
       let* index = gen_index in
       return (Insn.Ldr { width; rd; rn; off; index }));
      (let* width = gen_width in
       let* rd = gen_reg in
       let* rn = gen_reg in
       let* off = gen_mem_offset in
       let* index = gen_index in
       return (Insn.Str { width; rd; rn; off; index }));
      (* halfword transfers: split-imm offset <= 255, or a plain
         (unshifted) register offset *)
      (let* load = bool in
       let* rd = gen_reg in
       let* rn = gen_reg in
       let* off =
         oneof
           [
             (let* n = int_range (-255) 255 in
              return (Insn.Imm_off n));
             (let* rm = gen_reg in
              let* subtract = bool in
              return (Insn.Reg_off { rm; kind = Insn.LSL; amount = 0; subtract }));
           ]
       in
       let* index = gen_index in
       if load then return (Insn.Ldr { width = Insn.Half; rd; rn; off; index })
       else return (Insn.Str { width = Insn.Half; rd; rn; off; index }));
      (let* half = bool in
       let* rd = gen_reg in
       let* rn = gen_reg in
       let* off =
         oneof
           [
             (let* n = int_range (-255) 255 in
              return (Insn.Imm_off n));
             (let* rm = gen_reg in
              let* subtract = bool in
              return (Insn.Reg_off { rm; kind = Insn.LSL; amount = 0; subtract }));
           ]
       in
       let* index = gen_index in
       return (Insn.Ldrs { half; rd; rn; off; index }));
      (let* kind = gen_ldm_kind in
       let* rn = gen_reg in
       let* writeback = bool in
       let* regs = int_range 1 0xFFFF in
       return (Insn.Ldm { kind; rn; writeback; regs }));
      (let* kind = gen_ldm_kind in
       let* rn = gen_reg in
       let* writeback = bool in
       let* regs = int_range 1 0xFFFF in
       return (Insn.Stm { kind; rn; writeback; regs }));
      (let* link = bool in
       let* offset = int_range (-0x800000) 0x7FFFFF in
       return (Insn.B { link; offset }));
      (let* rm = gen_reg in
       return (Insn.Bx rm));
      (let* rd = gen_reg in
       let* imm16 = int_range 0 0xFFFF in
       return (Insn.Movw { rd; imm16 }));
      (let* rd = gen_reg in
       let* imm16 = int_range 0 0xFFFF in
       return (Insn.Movt { rd; imm16 }));
      (let* rd = gen_reg in
       let* spsr = bool in
       return (Insn.Mrs { rd; spsr }));
      (let* spsr = bool in
       let* write_flags = bool in
       let* write_control = bool in
       let* rm = gen_reg in
       return (Insn.Msr { spsr; write_flags; write_control; rm }));
      (let* imm = int_range 0 0xFFFFFF in
       return (Insn.Svc imm));
      (let* opc1 = int_range 0 7 in
       let* rt = gen_reg in
       let* crn = int_range 0 15 in
       let* crm = int_range 0 15 in
       let* opc2 = int_range 0 7 in
       return (Insn.Mcr { opc1; rt; crn; crm; opc2 }));
      (let* opc1 = int_range 0 7 in
       let* rt = gen_reg in
       let* crn = int_range 0 15 in
       let* crm = int_range 0 15 in
       let* opc2 = int_range 0 7 in
       return (Insn.Mrc { opc1; rt; crn; crm; opc2 }));
      (let* rt = gen_reg in
       return (Insn.Vmsr { rt }));
      (let* rt = gen_reg in
       return (Insn.Vmrs { rt }));
      return Insn.Nop;
      (let* imm = int_range 0 0xFFFF in
       return (Insn.Udf imm));
    ]

let gen_insn =
  let open QCheck.Gen in
  let* cond = gen_cond in
  let* op = gen_op in
  return { Insn.cond; op }

(* Cps is unconditional; generate it separately. *)
let gen_insn_with_cps =
  QCheck.Gen.(
    frequency
      [
        (19, gen_insn);
        (1, map (fun disable -> Insn.make (Insn.Cps { disable })) bool);
      ])

let arbitrary_insn =
  QCheck.make ~print:(fun i -> Insn.to_string i) gen_insn_with_cps

(* A generator for "plain" computational instructions: no PC access, no
   system-level ops, no memory — suitable for randomized differential
   testing of straight-line translated code. *)
let gen_plain_op =
  let open QCheck.Gen in
  oneof
    [
      (let* op = gen_dp_op in
       let* s = bool in
       let* rd = gen_low_reg in
       let* rn = gen_low_reg in
       let* op2 =
         oneof
           [
             (let* imm8 = int_range 0 255 in
              let* rot = int_range 0 15 in
              return (Insn.Imm { imm8; rot }));
             (let* rm = gen_low_reg in
              let* kind = gen_shift_kind in
              let* amount = int_range 0 31 in
              return (Insn.Reg_shift_imm { rm; kind; amount }));
           ]
       in
       let canonical_s = if Insn.dp_op_is_test op then false else s in
       let canonical_rd = if Insn.dp_op_is_test op then 0 else rd in
       return (Insn.Dp { op; s = canonical_s; rd = canonical_rd; rn; op2 }));
      (let* s = bool in
       let* rd = gen_low_reg in
       let* rn = gen_low_reg in
       let* rm = gen_low_reg in
       let* acc = opt gen_low_reg in
       return (Insn.Mul { s; rd; rn; rm; acc }));
      (let* rd = gen_low_reg in
       let* imm16 = int_range 0 0xFFFF in
       return (Insn.Movw { rd; imm16 }));
      (let* rd = gen_low_reg in
       let* imm16 = int_range 0 0xFFFF in
       return (Insn.Movt { rd; imm16 }));
      (let* rd = gen_low_reg in
       let* rm = gen_low_reg in
       return (Insn.Clz { rd; rm }));
    ]

let gen_plain_insn =
  let open QCheck.Gen in
  let* cond = frequency [ (3, return Cond.AL); (2, gen_cond) ] in
  let* op = gen_plain_op in
  return { Insn.cond; op }

let arbitrary_plain_insn = QCheck.make ~print:Insn.to_string gen_plain_insn

let arbitrary_plain_block n =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map Insn.to_string l))
    QCheck.Gen.(list_size (int_range 1 n) gen_plain_insn)

(* Memory-including blocks for differential testing: all accesses are
   anchored to a dedicated base register (r6) which the test harness
   points at a scratch RAM window. Offsets are small enough that even
   with pre/post-indexed writeback the addresses stay in RAM, and the
   base is never a destination, so the window cannot escape. *)
let mem_base_reg = 6

let gen_mem_plain_op =
  let open QCheck.Gen in
  let gen_data_reg =
    (* registers that can be loaded without clobbering the anchor *)
    oneofl [ 0; 1; 2; 3; 4; 5; 7; 8 ]
  in
  let gen_small_off =
    let* n = int_range (-16) 16 in
    return (Insn.Imm_off (n * 4))
  in
  let gen_safe_index = frequency [ (4, return Insn.Offset); (1, gen_index) ] in
  oneof
    [
      (let* width = gen_width in
       let* rd = gen_data_reg in
       let* off = gen_small_off in
       let* index = gen_safe_index in
       return (Insn.Ldr { width; rd; rn = mem_base_reg; off; index }));
      (let* width = gen_width in
       let* rd = gen_data_reg in
       let* off = gen_small_off in
       let* index = gen_safe_index in
       return (Insn.Str { width; rd; rn = mem_base_reg; off; index }));
      (* halfwords: offset addressing only, 4-aligned offsets, so the
         anchor's word alignment is never disturbed *)
      (let* load = bool in
       let* rd = gen_data_reg in
       let* off = gen_small_off in
       if load then
         return (Insn.Ldr { width = Insn.Half; rd; rn = mem_base_reg; off; index = Insn.Offset })
       else
         return (Insn.Str { width = Insn.Half; rd; rn = mem_base_reg; off; index = Insn.Offset }));
      (let* half = bool in
       let* rd = gen_data_reg in
       let* off = gen_small_off in
       return (Insn.Ldrs { half; rd; rn = mem_base_reg; off; index = Insn.Offset }));
      (let* kind = gen_ldm_kind in
       let* writeback = bool in
       (* bits 0-5,7,8 only: never pc/sp/lr, never the anchor *)
       let* regs = map (fun m -> m land 0x1BF) (int_range 1 0x1BF) in
       if regs = 0 then return Insn.Nop
       else return (Insn.Ldm { kind; rn = mem_base_reg; writeback; regs }));
      (let* kind = gen_ldm_kind in
       let* writeback = bool in
       let* regs = map (fun m -> m land 0x1BF) (int_range 1 0x1BF) in
       if regs = 0 then return Insn.Nop
       else return (Insn.Stm { kind; rn = mem_base_reg; writeback; regs }));
    ]

let gen_mem_plain_insn =
  let open QCheck.Gen in
  let* cond = frequency [ (3, return Cond.AL); (2, gen_cond) ] in
  let* op = frequency [ (2, gen_plain_op); (1, gen_mem_plain_op) ] in
  (* plain ops must not clobber the anchor either *)
  let op =
    match op with
    | Insn.Dp { op; s; rd; rn; op2 } when rd = mem_base_reg ->
      Insn.Dp { op; s; rd = 5; rn; op2 }
    | Insn.Mul { s; rd; rn; rm; acc } when rd = mem_base_reg ->
      Insn.Mul { s; rd = 5; rn; rm; acc }
    | Insn.Movw { rd; imm16 } when rd = mem_base_reg -> Insn.Movw { rd = 5; imm16 }
    | Insn.Movt { rd; imm16 } when rd = mem_base_reg -> Insn.Movt { rd = 5; imm16 }
    | Insn.Clz { rd; rm } when rd = mem_base_reg -> Insn.Clz { rd = 5; rm }
    | op -> op
  in
  return { Insn.cond; op }

let arbitrary_mem_block n =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map Insn.to_string l))
    QCheck.Gen.(list_size (int_range 1 n) gen_mem_plain_insn)

(* Robustness blocks: the mem-block mix interleaved with deliberately
   faulting accesses (through r9, which the harness points at an
   unmapped physical window), decodable-but-undefined [udf] encodings
   and [svc] calls. The differential harness installs handlers that
   absorb each resulting exception, so the block runs to completion on
   every engine. *)
let fault_base_reg = 9

let gen_faulting_op =
  let open QCheck.Gen in
  let gen_data_reg = oneofl [ 0; 1; 2; 3; 4; 5; 7; 8 ] in
  let gen_small_off =
    let* n = int_range (-8) 8 in
    return (Insn.Imm_off (n * 4))
  in
  oneof
    [
      (let* width = gen_width in
       let* rd = gen_data_reg in
       let* off = gen_small_off in
       return (Insn.Ldr { width; rd; rn = fault_base_reg; off; index = Insn.Offset }));
      (let* width = gen_width in
       let* rd = gen_data_reg in
       let* off = gen_small_off in
       return (Insn.Str { width; rd; rn = fault_base_reg; off; index = Insn.Offset }));
      (let* imm = int_range 0 0xFFFF in
       return (Insn.Udf imm));
      (let* imm = int_range 0 0xFF in
       return (Insn.Svc imm));
    ]

let gen_robust_insn =
  let open QCheck.Gen in
  let* insn =
    frequency
      [
        (4, gen_mem_plain_insn);
        ( 1,
          let* op = gen_faulting_op in
          let* cond =
            match op with
            | Insn.Udf _ -> return Cond.AL
            | _ -> frequency [ (3, return Cond.AL); (1, gen_cond) ]
          in
          return { Insn.cond; op } );
      ]
  in
  (* the fault window stays anchored: r9 is never a destination *)
  let op =
    match insn.Insn.op with
    | Insn.Dp { op; s; rd; rn; op2 } when rd = fault_base_reg ->
      Insn.Dp { op; s; rd = 8; rn; op2 }
    | Insn.Mul { s; rd; rn; rm; acc } when rd = fault_base_reg ->
      Insn.Mul { s; rd = 8; rn; rm; acc }
    | Insn.Movw { rd; imm16 } when rd = fault_base_reg -> Insn.Movw { rd = 8; imm16 }
    | Insn.Movt { rd; imm16 } when rd = fault_base_reg -> Insn.Movt { rd = 8; imm16 }
    | Insn.Clz { rd; rm } when rd = fault_base_reg -> Insn.Clz { rd = 8; rm }
    | op -> op
  in
  return { insn with Insn.op }

let arbitrary_robust_block n =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map Insn.to_string l))
    QCheck.Gen.(list_size (int_range 1 n) gen_robust_insn)
