module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module R = Repro_rules
module Fi = Repro_faultinject.Faultinject
module Res = Repro_resilience
module Par = Repro_parallel
module Tel = Repro_telemetry
module Histo = Repro_perfscope.Histo
module CovR = Repro_covscope.Report

(* Domain-parallel dispatcher tests. The oracle throughout is
   byte-identity: a drill served across N domains must produce the
   same report, the same telemetry document and the same per-machine
   state as the single-domain run — parallelism is a scheduling
   choice, never an observable one. *)

let target = 60_000
let warm = 4_000

let base =
  lazy
    (let spec = W.find "gcc" in
     let iters = max 1 (target / W.insns_per_iteration spec) in
     let user = W.generate spec ~iterations:iters in
     let image = K.build ~timer_period:5_000 ~user_program:user () in
     let inject = Fi.create ~seed:1 ~rate:0.0 ~behavior:Fi.Surface () in
     let sys =
       D.System.create ~inject ~shadow_depth:4 ~quarantine_threshold:2
         (D.System.Rules D.Opt.full)
     in
     K.load image (fun b words -> D.System.load_image sys b words);
     match
       (D.System.run ~max_guest_insns:warm ~checkpoint_every:warm sys)
         .T.Engine.reason
     with
     | `Insn_limit -> D.System.snapshot sys
     | _ -> Alcotest.fail "warm boot did not reach the instruction limit")

let policy =
  {
    Res.Supervisor.default_policy with
    Res.Supervisor.deadline = 10 * target;
    checkpoint_every = 2_000;
    retry_budget = 3;
  }

let chaos_plan ~machines ~faulty ~seed () =
  Fi.Plan.make ~seed ~machines ~faulty
    [
      (Fi.Bus_read, 0.0002);
      (Fi.Bus_write, 0.0002);
      (Fi.Tb_flush, 0.0001);
      (Fi.Rule_corrupt, 0.05);
    ]

(* One parallel drill: build a fresh fleet from the shared warm base,
   serve [requests] across [domains] with a telemetry collector
   attached, and return (fleet report, telemetry document). *)
let drill ~seed ~machines ~faulty ~requests ~domains =
  let plan = chaos_plan ~machines ~faulty ~seed () in
  let f =
    Res.Fleet.create ~plan
      ~config:{ Res.Fleet.machines; min_healthy = 1; policy }
      (Lazy.force base)
  in
  let collector = Tel.Collector.create ~every:4 f in
  Par.Parfleet.run f ~domains
    ~after_each:(fun () -> Tel.Collector.tick collector)
    ~requests;
  Tel.Collector.finish collector;
  let telemetry = Tel.Collector.to_json collector in
  ignore (Res.Fleet.final_verify f);
  (Res.Fleet.metrics_json f, telemetry)

(* ---- cross-domain identity ---- *)

(* Spawning domains works on any host (the scheduler multiplexes when
   cores are short), so this identity check runs unconditionally —
   even a 1-core CI runner exercises true multi-domain serving. *)
let test_identity_two_domains () =
  let m1, t1 = drill ~seed:11 ~machines:3 ~faulty:1 ~requests:9 ~domains:1 in
  let m2, t2 = drill ~seed:11 ~machines:3 ~faulty:1 ~requests:9 ~domains:2 in
  Alcotest.(check string) "2-domain report byte-identical to 1-domain" m1 m2;
  Alcotest.(check string) "2-domain telemetry byte-identical" t1 t2;
  let m3, _ = drill ~seed:11 ~machines:3 ~faulty:1 ~requests:9 ~domains:3 in
  Alcotest.(check string) "3 domains (more domains than busy shards)" m1 m3

(* The full 4-domain chaos drill (the CI gate's shape: 4 machines,
   2 sabotaged). Skipped on 1-core runners per
   [Domain.recommended_domain_count] — the small unconditional test
   above still covers cross-domain identity there. *)
let test_identity_four_domain_chaos () =
  if Domain.recommended_domain_count () < 2 then
    Alcotest.skip ()
  else begin
    let m1, t1 = drill ~seed:7 ~machines:4 ~faulty:2 ~requests:12 ~domains:1 in
    let m4, t4 = drill ~seed:7 ~machines:4 ~faulty:2 ~requests:12 ~domains:4 in
    Alcotest.(check string) "4-domain chaos report byte-identical" m1 m4;
    Alcotest.(check string) "4-domain chaos telemetry byte-identical" t1 t4
  end

let test_invalid_args () =
  let f =
    Res.Fleet.create
      ~config:{ Res.Fleet.machines = 1; min_healthy = 0; policy }
      (Lazy.force base)
  in
  Alcotest.check_raises "domains < 1 rejected"
    (Invalid_argument "Parfleet.run: domains < 1") (fun () ->
      Par.Parfleet.run f ~domains:0 ~requests:1);
  Alcotest.check_raises "negative requests rejected"
    (Invalid_argument "Parfleet.run: requests < 0") (fun () ->
      Par.Parfleet.run f ~domains:1 ~requests:(-1))

(* ---- merge commutativity ----

   The fleet-level latency histogram and coverage report are merges of
   per-machine state; machine order must not show in the result, or
   the merged report would depend on which domain finished first. *)

let test_histo_merge_commutes () =
  let mk records =
    let h = Histo.create () in
    List.iter (Histo.record h) records;
    h
  in
  let parts =
    [ mk [ 3; 70_000; 513 ]; mk [ 1; 1; 9_999 ]; mk [ 120; 64_000 ]; mk [] ]
  in
  let merged order =
    let into = Histo.create () in
    List.iter (fun i -> Histo.merge ~into (List.nth parts i)) order;
    Histo.to_json into
  in
  let reference = merged [ 0; 1; 2; 3 ] in
  List.iter
    (fun order ->
      Alcotest.(check string) "histogram merge is order-invariant" reference
        (merged order))
    [ [ 3; 2; 1; 0 ]; [ 1; 3; 0; 2 ]; [ 2; 0; 3; 1 ] ]

let test_coverage_merge_commutes () =
  (* real per-machine attribution tables from a drill, merged in
     permuted machine order *)
  let plan = chaos_plan ~machines:3 ~faulty:1 ~seed:11 () in
  let f =
    Res.Fleet.create ~plan
      ~config:{ Res.Fleet.machines = 3; min_healthy = 1; policy }
      (Lazy.force base)
  in
  Par.Parfleet.run f ~domains:2 ~requests:6;
  let src i =
    CovR.of_stats
      (D.System.stats (Res.Supervisor.machine (Res.Fleet.supervisor f i)))
  in
  let merged order =
    let s = CovR.merge (List.map src order) in
    CovR.to_json (CovR.make s)
  in
  let reference = merged [ 0; 1; 2 ] in
  List.iter
    (fun order ->
      Alcotest.(check string) "coverage merge is order-invariant" reference
        (merged order))
    [ [ 2; 1; 0 ]; [ 1; 0; 2 ]; [ 2; 0; 1 ] ]

(* ---- rule-id derivation ---- *)

let test_builtin_ids_positional () =
  let ids rules = List.map (fun r -> r.R.Rule.id) rules in
  let a = R.Builtin.all () in
  Alcotest.(check (list int))
    "builtin ids are 1..N by position"
    (List.init (List.length a) (fun i -> i + 1))
    (ids a);
  (* two rulesets built concurrently on separate domains: no shared
     counter, so both must see the exact same ids *)
  let d1 = Domain.spawn (fun () -> ids (R.Builtin.all ())) in
  let d2 = Domain.spawn (fun () -> ids (R.Builtin.all ())) in
  let b = Domain.join d1 and c = Domain.join d2 in
  Alcotest.(check (list int)) "concurrent build, identical ids" (ids a) b;
  Alcotest.(check (list int)) "both domains agree" b c

let test_learned_ids_positional () =
  let ids report =
    List.map (fun r -> r.R.Rule.id) report.Repro_learn.Learn.rules
  in
  let a = ids (Repro_learn.Learn.learn ()) in
  Alcotest.(check (list int))
    "learned ids are 1001..N by position, disjoint from builtin"
    (List.init (List.length a) (fun i -> 1001 + i))
    a;
  let b = ids (Repro_learn.Learn.learn ()) in
  Alcotest.(check (list int)) "relearning reproduces the ids" a b

let suite =
  [
    ( "parallel",
      [
        Alcotest.test_case "parfleet: rejects bad arguments" `Slow
          test_invalid_args;
        Alcotest.test_case "parfleet: 2-domain report byte-identical" `Slow
          test_identity_two_domains;
        Alcotest.test_case "parfleet: 4-domain chaos drill identity" `Slow
          test_identity_four_domain_chaos;
        Alcotest.test_case "histo: merge is order-invariant" `Quick
          test_histo_merge_commutes;
        Alcotest.test_case "covscope: merge is order-invariant" `Slow
          test_coverage_merge_commutes;
        Alcotest.test_case "builtin: rule ids derive from position" `Quick
          test_builtin_ids_positional;
        Alcotest.test_case "learn: rule ids derive from position" `Slow
          test_learned_ids_positional;
      ] );
  ]
