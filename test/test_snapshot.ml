module T = Repro_tcg
module D = Repro_dbt
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module R = Repro_rules
module Stats = Repro_x86.Stats
module Exec = Repro_x86.Exec
module Fi = Repro_faultinject.Faultinject
module Snapshot = Repro_snapshot.Snapshot
module Journal = Repro_snapshot.Journal
module Cpu = Repro_arm.Cpu

(* Snapshot / record-replay / watchdog tests: the robustness layer.
   Everything runs the full kernel image (MMU on, timer IRQs, user and
   supervisor mode) so checkpoints cover the interesting machine
   state, not just a flat register file. *)

let kernel_image ?(target = 30_000) ?(timer = 5_000) () =
  let spec = W.find "gcc" in
  let iters = max 1 (target / W.insns_per_iteration spec) in
  let user = W.generate spec ~iterations:iters in
  K.build ~timer_period:timer ~user_program:user ()

let make_sys ?inject ?(shadow_depth = 0) mode image =
  let sys = D.System.create ?inject ~shadow_depth mode in
  K.load image (fun base words -> D.System.load_image sys base words);
  sys

(* Everything guest-visible plus the engine counters, as one value. *)
let fingerprint sys =
  let rt = sys.D.System.rt in
  ( Cpu.save_words rt.T.Runtime.cpu,
    Digest.to_hex (Digest.bytes rt.T.Runtime.ctx.Exec.ram),
    Stats.to_array (D.System.stats sys),
    D.System.uart_output sys )

let check_fingerprint msg (ra, ma, sa, ua) (rb, mb, sb, ub) =
  Alcotest.(check (array int)) (msg ^ ": cpu words") ra rb;
  Alcotest.(check string) (msg ^ ": ram digest") ma mb;
  Alcotest.(check (array int)) (msg ^ ": stats") sa sb;
  Alcotest.(check string) (msg ^ ": uart") ua ub

let halt_code res =
  match res.T.Engine.reason with
  | `Halted c -> c
  | `Insn_limit | `Deadline -> Alcotest.fail "run hit its instruction limit"
  | `Livelock pc -> Alcotest.failf "unrecovered livelock at %#x" pc

(* ---- rule-set serialization round-trip ----------------------------- *)

let test_serialize_roundtrip () =
  let rs = R.Builtin.ruleset () in
  let s1 = R.Serialize.save rs in
  let rs2 =
    match R.Serialize.load s1 with
    | Ok rs -> rs
    | Error e -> Alcotest.failf "reload failed: %s" e
  in
  let s2 = R.Serialize.save rs2 in
  Alcotest.(check string) "save -> load -> save is byte-identical" s1 s2

(* ---- same-seed determinism ----------------------------------------- *)

(* Two machines built identically must retire the same instructions,
   print the same UART bytes and count the same statistics — the
   property record/replay stands on. Checked across all three engine
   tiers, with the fault injector armed so its PRNG is in the loop. *)
let test_determinism () =
  let image = kernel_image () in
  List.iter
    (fun mode ->
      let once () =
        let inject = Fi.create ~seed:5 ~rate:0.005 () in
        let sys = make_sys ~inject ~shadow_depth:4 mode image in
        let res = D.System.run ~max_guest_insns:2_000_000 sys in
        (halt_code res, fingerprint sys)
      in
      let c1, f1 = once () and c2, f2 = once () in
      let name = D.System.mode_name mode in
      Alcotest.(check int) (name ^ ": halt code") c1 c2;
      check_fingerprint name f1 f2)
    [ D.System.Qemu; D.System.Rules D.Opt.full ];
  (* interpreter tier *)
  let ref_once () =
    let m = T.Ref_machine.create () in
    K.load image (fun base words -> T.Ref_machine.load_image m base words);
    let outcome, steps = T.Ref_machine.run m ~max_steps:2_000_000 in
    let code =
      match outcome with
      | T.Ref_machine.Halted c -> c
      | _ -> Alcotest.fail "reference did not halt"
    in
    (code, steps, Repro_machine.Devices.Uart.output m.T.Ref_machine.bus.Repro_machine.Bus.uart)
  in
  let a = ref_once () and b = ref_once () in
  Alcotest.(check (triple int int string)) "interpreter" a b

(* ---- save -> restore bit-identity ---------------------------------- *)

(* Interrupt a run mid-flight, serialize the snapshot to bytes, thaw
   it into a brand-new machine and finish; the final machine must be
   bit-identical to one that ran uninterrupted. *)
let restore_roundtrip ?inject_seed ?(shadow_depth = 0) mode =
  let image = kernel_image () in
  let inject () =
    Option.map (fun seed -> Fi.create ~seed ~rate:0.005 ()) inject_seed
  in
  let full = make_sys ?inject:(inject ()) ~shadow_depth mode image in
  let full_res = D.System.run ~max_guest_insns:2_000_000 full in
  let part = make_sys ?inject:(inject ()) ~shadow_depth mode image in
  let part_res = D.System.run ~max_guest_insns:15_000 ~checkpoint_every:4_000 part in
  (match part_res.T.Engine.reason with
  | `Insn_limit -> ()
  | _ -> Alcotest.fail "interrupted run should hit its budget");
  (* through the wire format, as a file would *)
  let frozen = Snapshot.to_string (D.System.snapshot part) in
  let snap = Snapshot.of_string frozen in
  let thawed =
    D.System.create
      ~ram_kib:(D.System.snapshot_ram_kib snap)
      ?inject:(D.System.snapshot_injector snap)
      ~shadow_depth
      (D.System.snapshot_mode snap)
  in
  D.System.restore thawed snap;
  let rest_res = D.System.run ~max_guest_insns:1_985_000 thawed in
  Alcotest.(check int) "same halt code" (halt_code full_res) (halt_code rest_res);
  check_fingerprint (D.System.mode_name mode) (fingerprint full) (fingerprint thawed)

let test_restore_qemu () = restore_roundtrip D.System.Qemu
let test_restore_rules () = restore_roundtrip (D.System.Rules D.Opt.full)

let test_restore_inject () =
  restore_roundtrip ~inject_seed:9 ~shadow_depth:4 (D.System.Rules D.Opt.full)

(* ---- livelock watchdog --------------------------------------------- *)

(* Sabotaged rule output spins a TB forever; the watchdog must roll
   back to the last checkpoint, re-execute under a degraded engine and
   let the guest finish with the same answer an unperturbed machine
   produces. *)
let test_watchdog_recovery () =
  let image = kernel_image () in
  let clean = make_sys (D.System.Rules D.Opt.full) image in
  let clean_code = halt_code (D.System.run ~max_guest_insns:2_000_000 clean) in
  let inject = Fi.create ~seed:11 ~rate:0.0 () in
  Fi.set_rate inject Fi.Host_livelock 0.05;
  let dumps = ref [] in
  let sys = make_sys ~inject (D.System.Rules D.Opt.full) image in
  let res =
    D.System.run ~max_guest_insns:2_000_000 ~checkpoint_every:4_000
      ~on_postmortem:(fun ~reason dump -> dumps := (reason, dump) :: !dumps)
      sys
  in
  Alcotest.(check int) "guest finished with the clean answer" clean_code
    (halt_code res);
  let recovered = (D.System.stats sys).Stats.livelocks_recovered in
  Alcotest.(check bool) "watchdog fired" true (recovered > 0);
  Alcotest.(check int) "one post-mortem per recovery" recovered
    (List.length !dumps);
  (* the livelock dump replays deterministically: same faults, then the
     same livelock (replay runs with the watchdog off) *)
  let _, dump = List.hd !dumps in
  let rep_sys =
    D.System.create
      ~ram_kib:(D.System.snapshot_ram_kib dump)
      ?inject:(D.System.snapshot_injector dump)
      (D.System.snapshot_mode dump)
  in
  let report = D.System.replay rep_sys dump in
  Alcotest.(check bool) "livelock replay reproduced" true
    report.D.System.rep_ok;
  match report.D.System.rep_result.T.Engine.reason with
  | `Livelock _ -> ()
  | _ -> Alcotest.fail "replay should livelock again"

(* ---- divergence post-mortem replay --------------------------------- *)

let test_divergence_replay () =
  let image = kernel_image ~target:60_000 () in
  let inject = Fi.create ~seed:3 ~rate:0.05 () in
  let dumps = ref [] in
  let sys = make_sys ~inject ~shadow_depth:6 (D.System.Rules D.Opt.full) image in
  ignore
    (D.System.run ~max_guest_insns:4_000_000 ~checkpoint_every:5_000
       ~on_postmortem:(fun ~reason dump -> dumps := (reason, dump) :: !dumps)
       sys);
  let divergences =
    List.filter (fun (r, _) -> String.length r >= 6 && String.sub r 0 6 = "shadow")
      !dumps
  in
  Alcotest.(check bool) "a shadow divergence was dumped" true
    (divergences <> []);
  List.iter
    (fun (_, dump) ->
      (* through the wire format, as --replay would see it *)
      let dump = Snapshot.of_string (Snapshot.to_string dump) in
      let rep_sys =
        D.System.create
          ~ram_kib:(D.System.snapshot_ram_kib dump)
          ?inject:(D.System.snapshot_injector dump)
          ~shadow_depth:6
          (D.System.snapshot_mode dump)
      in
      let report = D.System.replay rep_sys dump in
      Alcotest.(check bool) "expected events reproduced" true
        report.D.System.rep_ok)
    divergences

(* ---- typed load errors --------------------------------------------- *)

let test_load_error () =
  let sys = D.System.create D.System.Qemu in
  (match D.System.load_image sys 0xFFFF_0000 [| 1; 2; 3 |] with
  | () -> Alcotest.fail "out-of-RAM load must raise"
  | exception T.Runtime.Load_error addr ->
    Alcotest.(check int) "faulting address" 0xFFFF_0000 addr);
  let m = T.Ref_machine.create () in
  match T.Ref_machine.load_image m 0xFFFF_0000 [| 1 |] with
  | () -> Alcotest.fail "out-of-RAM reference load must raise"
  | exception T.Runtime.Load_error _ -> ()

(* ---- container integrity ------------------------------------------- *)

let test_corruption_detected () =
  let image = kernel_image () in
  let sys = make_sys D.System.Qemu image in
  ignore (D.System.run ~max_guest_insns:10_000 sys);
  let good = Snapshot.to_string (D.System.snapshot sys) in
  (* unmolested bytes parse *)
  ignore (Snapshot.of_string good);
  let flip pos =
    let b = Bytes.of_string good in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
    Bytes.to_string b
  in
  let expect_corrupt what s =
    match Snapshot.of_string s with
    | _ -> Alcotest.failf "%s: corruption not detected" what
    | exception Snapshot.Load_error _ -> ()
  in
  expect_corrupt "bad magic" (flip 0);
  expect_corrupt "bad body byte" (flip (String.length good - 10));
  expect_corrupt "truncation" (String.sub good 0 (String.length good - 1));
  (* a shape mismatch is caught at restore time *)
  let snap = Snapshot.of_string good in
  let small = D.System.create ~ram_kib:64 D.System.Qemu in
  match D.System.restore small snap with
  | () -> Alcotest.fail "RAM-size mismatch must raise"
  | exception Snapshot.Corrupt _ -> ()

(* ---- demotion state survives restore ------------------------------- *)

(* Health only ratchets down: restoring an older, more optimistic
   snapshot must not un-quarantine a rule or raise the degradation
   floor (merge semantics), and a snapshot taken after a demotion must
   carry it into a fresh machine (persistence). *)
let test_restore_keeps_quarantine () =
  let image = kernel_image () in
  let sys = make_sys (D.System.Rules D.Opt.full) image in
  let rs = Option.get sys.D.System.ruleset in
  ignore (D.System.run ~max_guest_insns:10_000 ~checkpoint_every:4_000 sys);
  (* snapshot A: optimistic — nothing demoted yet *)
  let optimistic = Snapshot.of_string (Snapshot.to_string (D.System.snapshot sys)) in
  Alcotest.(check (list int)) "baseline: nothing quarantined" []
    (R.Ruleset.quarantined_ids rs);
  Alcotest.(check bool) "baseline: floor is rules" true
    (D.System.rung_floor sys = D.System.Rung_rules);
  (* demote: quarantine a real rule fleet-style, drop the engine floor *)
  let victim = (List.hd (R.Ruleset.rules rs)).R.Rule.id in
  Alcotest.(check bool) "quarantine_by_id hits" true
    (R.Ruleset.quarantine_by_id rs victim);
  Alcotest.(check bool) "quarantine_by_id is idempotent" false
    (R.Ruleset.quarantine_by_id rs victim);
  Alcotest.(check bool) "degrade_floor drops one rung" true
    (D.System.degrade_floor sys);
  (* snapshot B: taken after the demotions. {!D.System.snapshot} hands
     back the checkpoint from the last insn-limit stop, so run past
     another limit first — the fresh stop checkpoint records the
     demoted health. *)
  ignore (D.System.run ~max_guest_insns:4_000 ~checkpoint_every:4_000 sys);
  let demoted = Snapshot.of_string (Snapshot.to_string (D.System.snapshot sys)) in
  (* restoring optimistic state must NOT reset the demotions *)
  D.System.restore sys optimistic;
  Alcotest.(check (list int)) "old snapshot does not un-quarantine"
    [ victim ] (R.Ruleset.quarantined_ids rs);
  Alcotest.(check bool) "old snapshot does not raise the floor" true
    (D.System.rung_floor sys = D.System.Rung_baseline);
  (* a fresh machine restoring snapshot B inherits the demotions *)
  let thawed = make_sys (D.System.Rules D.Opt.full) image in
  let rs2 = Option.get thawed.D.System.ruleset in
  D.System.restore thawed demoted;
  Alcotest.(check (list int)) "persisted quarantine arrives" [ victim ]
    (R.Ruleset.quarantined_ids rs2);
  Alcotest.(check bool) "persisted floor arrives" true
    (D.System.rung_floor thawed = D.System.Rung_baseline);
  (* and the demoted machine still finishes the workload cleanly *)
  let res = D.System.run ~max_guest_insns:2_000_000 thawed in
  ignore (halt_code res)

(* Corrupt every section of a full engine-level snapshot in turn (and
   truncate the container at a sweep of lengths): loading must always
   surface a typed [Load_error] naming the damaged section — never a
   wrong parse, never any other exception. *)
let test_corrupt_every_section () =
  let image = kernel_image () in
  let sys = make_sys (D.System.Rules D.Opt.full) image in
  ignore (D.System.run ~max_guest_insns:20_000 ~checkpoint_every:4_000 sys);
  let snap = D.System.snapshot sys in
  let good = Snapshot.to_string snap in
  let load what s =
    match Snapshot.of_string s with
    | _ -> Alcotest.failf "%s: corruption not detected" what
    | exception Snapshot.Load_error { section; _ } -> section
    | exception e ->
      Alcotest.failf "%s: escaped exception %s" what (Printexc.to_string e)
  in
  (* locate each payload inside the container to aim the bit flips;
     payloads are unique enough in a real snapshot for a byte search *)
  let find_sub hay needle from =
    let n = String.length needle and h = String.length hay in
    let rec go i =
      if i + n > h then None
      else if String.sub hay i n = needle then Some i
      else go (i + 1)
    in
    go from
  in
  List.iter
    (fun name ->
      let payload = Snapshot.find snap name in
      if String.length payload > 0 then begin
        let pos =
          match find_sub good payload 24 with
          | Some p -> p
          | None -> Alcotest.failf "%s: payload not found in container" name
        in
        let b = Bytes.of_string good in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
        let blamed = load (Printf.sprintf "flip in %s" name) (Bytes.to_string b) in
        (* a flipped payload byte can also appear inside an earlier
           section that happens to share those bytes; the blame must
           still be a real section name *)
        Alcotest.(check bool)
          (Printf.sprintf "flip in %s blames a section (got %s)" name blamed)
          true
          (List.mem blamed (Snapshot.names snap))
      end)
    (Snapshot.names snap);
  (* truncation sweep: every prefix must fail typed *)
  let len = String.length good in
  let step = max 1 (len / 97) in
  let k = ref 0 in
  while !k < len do
    ignore (load (Printf.sprintf "truncate at %d" !k) (String.sub good 0 !k));
    k := !k + step
  done;
  (* random bit-flip sweep with a deterministic PRNG *)
  let prng = Repro_common.Prng.create ~seed:77 in
  for _ = 1 to 200 do
    let pos = Repro_common.Prng.int prng len in
    let bit = 1 lsl Repro_common.Prng.int prng 8 in
    let b = Bytes.of_string good in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor bit));
    ignore (load (Printf.sprintf "random flip at %d" pos) (Bytes.to_string b))
  done

(* File-level robustness: a snapshot file truncated at any point — all
   the way down to zero bytes, the signature a crash during a
   non-atomic write would leave — must load as a typed error, never a
   crash or a wrong parse. And the atomic save path must not leave its
   temp file behind. *)
let test_truncated_files () =
  let image = kernel_image () in
  let sys = make_sys D.System.Qemu image in
  ignore (D.System.run ~max_guest_insns:10_000 sys);
  let good = Snapshot.to_string (D.System.snapshot sys) in
  let path = Filename.temp_file "repro-snap" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let expect_typed what n =
    let oc = open_out_bin path in
    output_string oc (String.sub good 0 n);
    close_out oc;
    match Snapshot.load_file path with
    | _ -> Alcotest.failf "%s: damage not detected" what
    | exception (Snapshot.Load_error _ | Snapshot.Corrupt _) -> ()
    | exception e ->
      Alcotest.failf "%s: escaped exception %s" what (Printexc.to_string e)
  in
  expect_typed "zero-length file" 0;
  let len = String.length good in
  List.iter
    (fun n -> expect_typed (Printf.sprintf "file truncated to %d bytes" n) n)
    [ 1; 7; 8; 23; 24; len / 3; len / 2; len - 1 ];
  Snapshot.save_file path (D.System.snapshot sys);
  ignore (Snapshot.load_file path);
  let droppings =
    Array.to_list (Sys.readdir (Filename.dirname path))
    |> List.filter (fun f ->
           String.starts_with ~prefix:(Filename.basename path ^ ".tmp") f)
  in
  Alcotest.(check (list string)) "atomic save leaves no temp file" [] droppings

(* ---- journal text format ------------------------------------------- *)

let test_journal_roundtrip () =
  let events =
    [
      Journal.Irq { at = 7; pc = 0x100018 };
      Journal.Fault { at = 42; site = "bus-read" };
      Journal.Dev_read { at = 99; paddr = 0xF000_1000; value = 0xDEAD_BEEF };
      Journal.Diverge { at = 100; pc = 0x1234; detail = "shadow-repair r3" };
      Journal.Halt { at = 101; code = 0xE2 };
    ]
  in
  let j = Journal.create () in
  List.iter (Journal.record j) events;
  let text = Journal.to_string j in
  Alcotest.(check (list string))
    "text round-trip"
    (List.map Journal.string_of_event events)
    (List.map Journal.string_of_event (Journal.events (Journal.of_string text)));
  match Journal.event_of_string "gibberish 1 2 3" with
  | _ -> Alcotest.fail "malformed journal line must raise"
  | exception Failure _ -> ()

(* ---- post-mortem profile determinism across save/restore ----------- *)

(* The hot-block profile section of watchdog post-mortem dumps must be
   deterministic across a save -> restore boundary: re-running the
   identical interrupt/save/thaw/resume sequence (the profile object,
   like the trace and the ledger, is carried across in-process) must
   render byte-identical post-mortem profiles, and the restored run
   must still converge to the uninterrupted run's guest state. The
   engine-side counters are NOT compared against the uninterrupted
   run: stopping at the budget forces a clean dispatch point the
   uninterrupted run may not have, so the watchdog's rollback target
   after a livelock can differ, re-executing a different amount of
   (guest-invisible) work. *)
let test_postmortem_profile_determinism () =
  let image = kernel_image () in
  let inject () =
    let i = Fi.create ~seed:11 ~rate:0.0 () in
    Fi.set_rate i Fi.Host_livelock 0.05;
    i
  in
  let guest_state sys =
    let rt = sys.D.System.rt in
    ( Cpu.save_words rt.T.Runtime.cpu,
      Digest.to_hex (Digest.bytes rt.T.Runtime.ctx.Exec.ram),
      D.System.uart_output sys )
  in
  (* uninterrupted reference run *)
  let full = make_sys ~inject:(inject ()) (D.System.Rules D.Opt.full) image in
  let full_res =
    D.System.run ~profile:(T.Profile.create ()) ~max_guest_insns:2_000_000
      ~checkpoint_every:4_000 full
  in
  (* one interrupt/save/thaw/resume sequence, post-mortems collected
     across the boundary with the profile carried along *)
  let interrupted () =
    let dumps = ref [] in
    let profile = T.Profile.create () in
    let on_postmortem ~reason dump = dumps := (reason, dump) :: !dumps in
    let part = make_sys ~inject:(inject ()) (D.System.Rules D.Opt.full) image in
    let part_res =
      D.System.run ~profile ~max_guest_insns:16_000 ~checkpoint_every:4_000
        ~on_postmortem part
    in
    (match part_res.T.Engine.reason with
    | `Insn_limit -> ()
    | _ -> Alcotest.fail "interrupted run should hit its budget");
    let snap = Snapshot.of_string (Snapshot.to_string (D.System.snapshot part)) in
    let thawed =
      D.System.create
        ~ram_kib:(D.System.snapshot_ram_kib snap)
        ?inject:(D.System.snapshot_injector snap)
        (D.System.snapshot_mode snap)
    in
    D.System.restore thawed snap;
    let res =
      D.System.run ~profile ~max_guest_insns:1_984_000 ~checkpoint_every:4_000
        ~on_postmortem thawed
    in
    let sections =
      List.rev_map (fun (_, d) -> Snapshot.find d "profile") !dumps
    in
    (halt_code res, guest_state thawed, sections)
  in
  let c1, g1, s1 = interrupted () in
  let c2, g2, s2 = interrupted () in
  Alcotest.(check bool) "the watchdog dumped post-mortems" true (s1 <> []);
  Alcotest.(check int) "restored run reaches the clean halt code"
    (halt_code full_res) c1;
  let fc, fm, fu = guest_state full and c, m, u = g1 in
  Alcotest.(check (array int)) "cpu converges with uninterrupted run" fc c;
  Alcotest.(check string) "ram converges with uninterrupted run" fm m;
  Alcotest.(check string) "uart converges with uninterrupted run" fu u;
  Alcotest.(check int) "repeat halt code" c1 c2;
  Alcotest.(check bool) "repeat guest state" true (g1 = g2);
  Alcotest.(check (list string))
    "post-mortem profile sections byte-identical across repeats" s1 s2

let suite =
  [
    ( "snapshot",
      [
        Alcotest.test_case "ruleset serialize round-trip" `Quick
          test_serialize_roundtrip;
        Alcotest.test_case "same-seed determinism (3 engines)" `Quick
          test_determinism;
        Alcotest.test_case "save/restore bit-identity (qemu)" `Quick
          test_restore_qemu;
        Alcotest.test_case "save/restore bit-identity (rules)" `Quick
          test_restore_rules;
        Alcotest.test_case "save/restore bit-identity (inject+shadow)" `Quick
          test_restore_inject;
        Alcotest.test_case "livelock watchdog recovery" `Quick
          test_watchdog_recovery;
        Alcotest.test_case "divergence post-mortem replay" `Quick
          test_divergence_replay;
        Alcotest.test_case "typed load errors" `Quick test_load_error;
        Alcotest.test_case "container corruption detected" `Quick
          test_corruption_detected;
        Alcotest.test_case "corrupt-every-section fuzz" `Quick
          test_corrupt_every_section;
        Alcotest.test_case "truncated + zero-length files load typed" `Quick
          test_truncated_files;
        Alcotest.test_case "restore keeps quarantine + floor" `Quick
          test_restore_keeps_quarantine;
        Alcotest.test_case "journal text round-trip" `Quick
          test_journal_roundtrip;
        Alcotest.test_case "post-mortem profiles deterministic across restore"
          `Quick test_postmortem_profile_determinism;
      ] );
  ]
