module P = Repro_perfscope
module Phase = P.Phase
module Histo = P.Histo
module Scope = P.Scope
module Flame = P.Flame
module A = P.Analysis
module T = Repro_tcg
module D = Repro_dbt
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module Stats = Repro_x86.Stats
module Jsonx = Repro_observe.Jsonx

(* Performance-observatory tests: the histogram and flamegraph
   primitives, the Jsonx parser, the load-bearing scope invariants
   (exact phase partition of host_insns, observational purity,
   bit-reproducibility), and the analysis layer the regression gate
   stands on. *)

let kernel_image ?(target = 30_000) ?(timer = 5_000) () =
  let spec = W.find "gcc" in
  let iters = max 1 (target / W.insns_per_iteration spec) in
  let user = W.generate spec ~iterations:iters in
  K.build ~timer_period:timer ~user_program:user ()

let make_sys ?scope mode image =
  let sys = D.System.create ?scope mode in
  K.load image (fun base words -> D.System.load_image sys base words);
  sys

(* ---- histogram ------------------------------------------------------ *)

let test_histo_buckets () =
  for v = 0 to 7 do
    Alcotest.(check int) "small values are exact buckets" v (Histo.bucket_index v);
    Alcotest.(check int) "small lower bounds are identities" v (Histo.lower_bound v)
  done;
  (* every bucket's lower bound lands back in its own bucket, and the
     bounds strictly increase (checked clear of the sign bit) *)
  let prev = ref (-1) in
  for i = 0 to 399 do
    let lb = Histo.lower_bound i in
    Alcotest.(check bool) "lower bounds strictly increase" true (lb > !prev);
    prev := lb;
    Alcotest.(check int) "lower bound maps to its own bucket" i
      (Histo.bucket_index lb)
  done;
  (* arbitrary values are bracketed by their bucket's bounds *)
  List.iter
    (fun v ->
      let i = Histo.bucket_index v in
      Alcotest.(check bool) "lower bound <= value" true (Histo.lower_bound i <= v);
      Alcotest.(check bool) "value < next lower bound" true
        (v < Histo.lower_bound (i + 1)))
    [ 8; 9; 15; 16; 17; 100; 1_000; 12_345; 1 lsl 20; (1 lsl 40) + 123 ]

let test_histo_stats () =
  let h = Histo.create () in
  Alcotest.(check int) "empty percentile" 0 (Histo.percentile h 50.);
  Alcotest.(check int) "empty min" 0 (Histo.min_value h);
  for v = 0 to 7 do
    Histo.record h v
  done;
  Histo.record h (-5) (* clamps to 0 *);
  Alcotest.(check int) "count" 9 (Histo.count h);
  Alcotest.(check int) "sum" 28 (Histo.sum h);
  Alcotest.(check int) "min" 0 (Histo.min_value h);
  Alcotest.(check int) "max" 7 (Histo.max_value h);
  (* rank ceil(0.5 * 9) = 5, cumulative hits 5 in bucket 3 (two zeros) *)
  Alcotest.(check int) "p50" 3 (Histo.percentile h 50.);
  Alcotest.(check int) "p99" 7 (Histo.percentile h 99.);
  (* determinism: same recordings, byte-identical export *)
  let h2 = Histo.create () in
  for v = 0 to 7 do
    Histo.record h2 v
  done;
  Histo.record h2 (-5);
  Alcotest.(check string) "identical recordings export identically"
    (Histo.to_json h) (Histo.to_json h2)

(* ---- the Jsonx parser ----------------------------------------------- *)

let test_jsonx_parse () =
  let src =
    Jsonx.obj
      [
        ("i", Jsonx.int (-42));
        ("f", Jsonx.float 2.5);
        ("s", Jsonx.str "he\"llo\n");
        ("b", Jsonx.bool false);
        ("z", "null");
        ("l", Jsonx.arr [ Jsonx.int 1; Jsonx.int 2 ]);
      ]
  in
  let v = Jsonx.parse src in
  let get k = Option.get (Jsonx.member k v) in
  Alcotest.(check (option int)) "int field" (Some (-42)) (Jsonx.to_int (get "i"));
  Alcotest.(check (option (float 1e-9))) "float field" (Some 2.5)
    (Jsonx.to_float (get "f"));
  Alcotest.(check (option string)) "string field" (Some "he\"llo\n")
    (Jsonx.to_string (get "s"));
  Alcotest.(check (option bool)) "bool field" (Some false)
    (Jsonx.to_bool (get "b"));
  Alcotest.(check bool) "null field" true (get "z" = Jsonx.Null);
  Alcotest.(check bool) "array field" true
    (Jsonx.to_list (get "l") = Some [ Jsonx.Num 1.; Jsonx.Num 2. ]);
  Alcotest.(check (option int)) "to_int rejects non-integral" None
    (Jsonx.to_int (get "f"));
  Alcotest.(check (option int)) "missing member" None
    (Option.bind (Jsonx.member "nope" v) Jsonx.to_int);
  (* unicode escapes decode to UTF-8 bytes *)
  (match Jsonx.parse "\"\\u00e9\\u0041\"" with
  | Jsonx.Str s -> Alcotest.(check string) "\\u decodes to UTF-8" "\xc3\xa9A" s
  | _ -> Alcotest.fail "expected a string");
  List.iter
    (fun bad ->
      match Jsonx.parse bad with
      | exception Jsonx.Parse_error _ -> ()
      | _ -> Alcotest.failf "parse should reject %S" bad)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "nan" ]

let test_jsonx_roundtrip_bytes () =
  (* every byte string survives str -> parse, including control chars
     and non-UTF-8 bytes *)
  let strings =
    [
      "plain";
      "tab\tnl\ncr\rquote\"backslash\\";
      "\000\001\031"; (* control chars *)
      "caf\xc3\xa9"; (* UTF-8 *)
      "\xff\xfe raw non-UTF-8 bytes \x80";
      String.init 256 Char.chr;
    ]
  in
  List.iter
    (fun s ->
      match Jsonx.parse (Jsonx.str s) with
      | Jsonx.Str s' -> Alcotest.(check string) "byte round-trip" s s'
      | _ -> Alcotest.fail "expected a string")
    strings

(* ---- scope invariants ----------------------------------------------- *)

let run_with_scope ?(timer = 5_000) mode =
  let image = kernel_image ~timer () in
  let scope = Scope.create () in
  let sys = make_sys ~scope mode image in
  ignore (D.System.run ~max_guest_insns:2_000_000 sys);
  (scope, D.System.stats sys)

(* Without watchdog rollbacks the phase totals partition the run's
   host instructions exactly — nothing uncounted, nothing
   double-counted. Region time exists exactly in the modes that can
   fuse superblocks. *)
let test_phase_partition () =
  List.iter
    (fun mode ->
      let scope, st = run_with_scope mode in
      Alcotest.(check int)
        (D.System.mode_name mode ^ ": phases partition host_insns")
        st.Stats.host_insns (Scope.total scope);
      let fuses =
        match mode with D.System.Rules o -> o.D.Opt.regions | _ -> false
      in
      List.iter
        (fun ph ->
          if ph = Phase.Region && not fuses then
            Alcotest.(check int)
              (D.System.mode_name mode ^ ": no region time without fusion")
              0
              (Scope.phase_count scope ph)
          else
            Alcotest.(check bool)
              (D.System.mode_name mode ^ ": " ^ Phase.name ph ^ " attributed")
              true
              (Scope.phase_count scope ph > 0))
        Phase.all)
    [
      D.System.Qemu;
      D.System.Rules D.Opt.full;
      D.System.Rules D.Opt.with_regions;
    ]

let test_scope_histograms () =
  let scope, st = run_with_scope (D.System.Rules D.Opt.full) in
  Alcotest.(check int) "one latency sample per delivered IRQ"
    st.Stats.irqs_delivered
    (Histo.count (Scope.irq_latency scope));
  Alcotest.(check bool) "IRQ latency is positive" true
    (Histo.min_value (Scope.irq_latency scope) >= 0
    && Histo.sum (Scope.irq_latency scope) > 0);
  (* at most one chain-latency sample per translation, and chaining
     did happen *)
  let chains = Histo.count (Scope.chain_latency scope) in
  Alcotest.(check bool) "chain latency sampled" true
    (chains > 0 && chains <= st.Stats.tb_translations)

let test_checkpoint_intervals () =
  let image = kernel_image () in
  let scope = Scope.create () in
  let sys = make_sys ~scope (D.System.Rules D.Opt.full) image in
  ignore (D.System.run ~max_guest_insns:2_000_000 ~checkpoint_every:4_000 sys);
  let h = Scope.checkpoint_interval scope in
  Alcotest.(check bool) "checkpoint intervals recorded" true (Histo.count h > 0);
  (* periodic checkpoints fire at >= the configured cadence *)
  Alcotest.(check bool) "intervals at least the cadence" true
    (Histo.min_value h >= 4_000)

(* Attaching a scope must not perturb the run: same guest behaviour,
   same statistics, to the last counter. *)
let test_scope_purity () =
  let image = kernel_image () in
  let bare = make_sys (D.System.Rules D.Opt.full) image in
  ignore (D.System.run ~max_guest_insns:2_000_000 bare);
  let scoped = make_sys ~scope:(Scope.create ()) (D.System.Rules D.Opt.full) image in
  ignore (D.System.run ~max_guest_insns:2_000_000 scoped);
  Alcotest.(check (array int)) "scope attachment is observationally pure"
    (Stats.to_array (D.System.stats bare))
    (Stats.to_array (D.System.stats scoped))

(* Bit-reproducibility: two same-config runs export byte-identical
   scope JSON, and the analysis diff over their stats-json documents
   reports exactly 0%% in every phase. *)
let test_scope_determinism () =
  let once () =
    let scope, st = run_with_scope (D.System.Rules D.Opt.full) in
    ( Scope.to_json scope,
      Jsonx.parse
        (Jsonx.obj
           [ ("perf", Scope.to_json scope); ("stats", Stats.to_json st) ]) )
  in
  let j1, v1 = once () in
  let j2, v2 = once () in
  Alcotest.(check string) "scope JSON is byte-identical" j1 j2;
  let rows = A.diff v1 v2 in
  Alcotest.(check int) "all six phases compared" (List.length Phase.all)
    (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check (float 0.)) ("phase " ^ r.A.d_phase ^ " delta") 0. r.A.d_pct)
    rows;
  Alcotest.(check (float 0.)) "max |delta|" 0. (A.max_abs_pct rows)

(* ---- profile phase split -------------------------------------------- *)

let test_profile_phases () =
  let image = kernel_image () in
  let sys = make_sys ~scope:(Scope.create ()) (D.System.Rules D.Opt.full) image in
  let profile = T.Profile.create () in
  ignore (D.System.run ~profile ~max_guest_insns:2_000_000 sys);
  let entries = T.Profile.entries profile in
  Alcotest.(check bool) "profiled some TBs" true (entries <> []);
  List.iter
    (fun (e : T.Profile.entry) ->
      Alcotest.(check int)
        (Printf.sprintf "entry %#x phase split sums to host_spent"
           e.T.Profile.guest_pc)
        e.T.Profile.host_spent
        (Array.fold_left ( + ) 0 e.T.Profile.phases))
    entries;
  (* the in-window split never sees translate or deliver work *)
  List.iter
    (fun (e : T.Profile.entry) ->
      Alcotest.(check int) "no translate inside a TB window" 0
        e.T.Profile.phases.(Phase.index Phase.Translate);
      Alcotest.(check int) "no deliver inside a TB window" 0
        e.T.Profile.phases.(Phase.index Phase.Deliver))
    entries;
  (* the report renders the phase-split footer *)
  let report = Format.asprintf "%a" (T.Profile.pp_report ~top:5) profile in
  Alcotest.(check bool) "report carries the phase split" true
    (let rec mem i =
       i + 11 <= String.length report
       && (String.sub report i 11 = "phase split" || mem (i + 1))
     in
     mem 0)

(* ---- flamegraph folding --------------------------------------------- *)

let test_flame_fold () =
  let f = Flame.create () in
  Flame.add f [ "a"; "b" ] 3;
  Flame.add f [ "a"; "b" ] 2;
  Flame.add f [ "a" ] 1;
  Flame.add f [ "z;evil"; "x\ny" ] 4 (* separators scrubbed *);
  Flame.add f [] 9 (* ignored *);
  Flame.add f [ "neg" ] (-1) (* ignored *);
  Alcotest.(check (list (pair string int)))
    "folded, deduplicated, sorted"
    [ ("a", 1); ("a;b", 5); ("z_evil;x_y", 4) ]
    (Flame.fold f);
  let buf_path = Filename.temp_file "repro_flame" ".folded" in
  Fun.protect
    ~finally:(fun () -> Sys.remove buf_path)
    (fun () ->
      let oc = open_out buf_path in
      Flame.write_folded oc f;
      close_out oc;
      let ic = open_in buf_path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "folded file format" "a 1\na;b 5\nz_evil;x_y 4\n" s)

(* ---- the regression gate -------------------------------------------- *)

let bench_json ~rev slices =
  Jsonx.parse
    (Jsonx.obj
       [
         ("rev", Jsonx.str rev);
         ("target", Jsonx.int 1000);
         ( "slices",
           Jsonx.arr
             (List.map
                (fun (name, rule_enabled, guest, host) ->
                  Jsonx.obj
                    [
                      ("name", Jsonx.str name);
                      ("figure", Jsonx.str "fig14");
                      ("mode", Jsonx.str "rules:full");
                      ("bench", Jsonx.str "gcc");
                      ("rule_enabled", Jsonx.bool rule_enabled);
                      ("guest_insns", Jsonx.int guest);
                      ("host_insns", Jsonx.int host);
                      ( "host_per_guest",
                        Jsonx.float
                          (if guest = 0 then 0.
                           else float_of_int host /. float_of_int guest) );
                      ("sync_insns", Jsonx.int 7);
                      ("wall_ms", Jsonx.float 1.5);
                    ])
                slices) );
       ])

let decode v =
  match A.bench_of_json v with
  | Some b -> b
  | None -> Alcotest.fail "bench file failed to decode"

let test_gate () =
  let baseline =
    decode (bench_json ~rev:"base" [ ("full", true, 1000, 11_000); ("qemu", false, 1000, 40_000) ])
  in
  (* identical: ok *)
  let ok, rows = A.gate ~baseline ~current:baseline () in
  Alcotest.(check bool) "self-compare passes" true ok;
  Alcotest.(check int) "one row per baseline slice" 2 (List.length rows);
  (* +10% host/guest on the rule slice: regressed *)
  let worse =
    decode (bench_json ~rev:"cur" [ ("full", true, 1000, 12_100); ("qemu", false, 1000, 40_000) ])
  in
  let ok, rows = A.gate ~baseline ~current:worse () in
  Alcotest.(check bool) "10%% regression fails the 5%% gate" false ok;
  (match List.find (fun r -> r.A.g_name = "full") rows with
  | { A.g_status = A.Gate_regressed pct; _ } ->
    Alcotest.(check bool) "measured ~10%%" true (pct > 9. && pct < 11.)
  | _ -> Alcotest.fail "expected Gate_regressed");
  (* a looser threshold admits it *)
  let ok, _ = A.gate ~threshold_pct:15. ~baseline ~current:worse () in
  Alcotest.(check bool) "15%% threshold admits +10%%" true ok;
  (* qemu (reference) slices never gate on regression *)
  let qemu_worse =
    decode (bench_json ~rev:"cur" [ ("full", true, 1000, 11_000); ("qemu", false, 1000, 80_000) ])
  in
  let ok, _ = A.gate ~baseline ~current:qemu_worse () in
  Alcotest.(check bool) "reference slices are reported, not gated" true ok;
  (* a missing rule-enabled slice fails *)
  let missing = decode (bench_json ~rev:"cur" [ ("qemu", false, 1000, 40_000) ]) in
  let ok, rows = A.gate ~baseline ~current:missing () in
  Alcotest.(check bool) "missing slice fails" false ok;
  (match List.find (fun r -> r.A.g_name = "full") rows with
  | { A.g_status = A.Gate_missing; _ } -> ()
  | _ -> Alcotest.fail "expected Gate_missing");
  (* zero retired guest instructions fail, even at equal ratios *)
  let empty =
    decode (bench_json ~rev:"cur" [ ("full", true, 0, 0); ("qemu", false, 1000, 40_000) ])
  in
  let ok, rows = A.gate ~baseline ~current:empty () in
  Alcotest.(check bool) "empty slice fails" false ok;
  match List.find (fun r -> r.A.g_name = "full") rows with
  | { A.g_status = A.Gate_empty; _ } -> ()
  | _ -> Alcotest.fail "expected Gate_empty"

let test_bench_decode_rejects_malformed () =
  (* a slice missing a required field poisons the whole file *)
  let v =
    Jsonx.parse
      (Jsonx.obj
         [
           ("rev", Jsonx.str "x");
           ("target", Jsonx.int 1);
           ("slices", Jsonx.arr [ Jsonx.obj [ ("name", Jsonx.str "half") ] ]);
         ])
  in
  Alcotest.(check bool) "malformed slice rejected" true (A.bench_of_json v = None)

let suite =
  [
    ( "perfscope",
      [
        Alcotest.test_case "histogram bucket geometry" `Quick test_histo_buckets;
        Alcotest.test_case "histogram stats + determinism" `Quick test_histo_stats;
        Alcotest.test_case "jsonx parser" `Quick test_jsonx_parse;
        Alcotest.test_case "jsonx byte round-trip" `Quick test_jsonx_roundtrip_bytes;
        Alcotest.test_case "phases partition host_insns" `Quick
          test_phase_partition;
        Alcotest.test_case "latency histograms" `Quick test_scope_histograms;
        Alcotest.test_case "checkpoint intervals" `Quick test_checkpoint_intervals;
        Alcotest.test_case "scope is observationally pure" `Quick
          test_scope_purity;
        Alcotest.test_case "scope determinism + zero diff" `Quick
          test_scope_determinism;
        Alcotest.test_case "profile phase split" `Quick test_profile_phases;
        Alcotest.test_case "flamegraph folding" `Quick test_flame_fold;
        Alcotest.test_case "regression gate" `Quick test_gate;
        Alcotest.test_case "bench decode rejects malformed" `Quick
          test_bench_decode_rejects_malformed;
      ] );
  ]
