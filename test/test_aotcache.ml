module T = Repro_tcg
module D = Repro_dbt
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module R = Repro_rules
module Fi = Repro_faultinject.Faultinject
module Snapshot = Repro_snapshot.Snapshot
module Depot = Repro_aotcache.Depot
module Scope = Repro_perfscope.Scope
module Phase = Repro_perfscope.Phase

(* The persistent AOT code depot: durability (crash-atomic generation
   commits), integrity (every injected or hand-crafted corruption loads
   as a typed [Depot_error], never anything else), compatibility (a
   depot from a different translator configuration is refused, not
   misapplied) and the payoff — a warm boot that is architecturally
   identical to cold with (almost) zero translation work. *)

let kernel_image ?(target = 30_000) ?(timer = 5_000) () =
  let spec = W.find "gcc" in
  let iters = max 1 (target / W.insns_per_iteration spec) in
  let user = W.generate spec ~iterations:iters in
  K.build ~timer_period:timer ~user_program:user ()

let make_sys ?inject ?scope ?(shadow_depth = 0) mode image =
  let sys = D.System.create ?inject ?scope ~shadow_depth mode in
  K.load image (fun base words -> D.System.load_image sys base words);
  sys

let halt_code res =
  match res.T.Engine.reason with
  | `Halted c -> c
  | `Insn_limit | `Deadline -> Alcotest.fail "run hit its instruction limit"
  | `Livelock pc -> Alcotest.failf "unrecovered livelock at %#x" pc

let guest_outcome sys res = (halt_code res, D.System.uart_output sys)

let temp_dir () =
  let path = Filename.temp_file "repro-depot" "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* One cold full run, shared by the tests below: its outcome is the
   architectural ground truth and its capture is the reference depot. *)
let mode = D.System.Rules D.Opt.with_regions

let cold_ctx =
  lazy
    (let image = kernel_image () in
     let scope = Scope.create () in
     let sys = make_sys ~scope mode image in
     let res = D.System.run ~max_guest_insns:2_000_000 sys in
     let outcome = guest_outcome sys res in
     let depot = D.System.depot_capture sys in
     (image, outcome, Scope.phase_count scope Phase.Translate, depot))

let expect_depot_error what f =
  match f () with
  | _ -> Alcotest.failf "%s: damage not detected" what
  | exception Depot.Depot_error _ -> ()
  | exception e ->
    Alcotest.failf "%s: escaped exception %s" what (Printexc.to_string e)

(* ---- container integrity: fuzz the blob bytes ---------------------- *)

let test_container_fuzz () =
  let _, _, _, depot = Lazy.force cold_ctx in
  let good = Depot.to_string depot in
  ignore (Depot.of_string good);
  let load what s = expect_depot_error what (fun () -> Depot.of_string s) in
  load "empty string" "";
  (* truncation sweep: every prefix must fail typed *)
  let len = String.length good in
  let step = max 1 (len / 97) in
  let k = ref 0 in
  while !k < len do
    load (Printf.sprintf "truncate at %d" !k) (String.sub good 0 !k);
    k := !k + step
  done;
  (* random single-bit flips: the whole-body checksum means any flip
     anywhere must surface *)
  let prng = Repro_common.Prng.create ~seed:4077 in
  for _ = 1 to 200 do
    let pos = Repro_common.Prng.int prng len in
    let bit = 1 lsl Repro_common.Prng.int prng 8 in
    let b = Bytes.of_string good in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor bit));
    load (Printf.sprintf "random flip at %d" pos) (Bytes.to_string b)
  done

(* ---- file-level damage: truncated and zero-length blobs ------------ *)

let test_file_damage () =
  let _, _, _, depot = Lazy.force cold_ctx in
  with_dir @@ fun dir ->
  ignore (Depot.save ~dir depot);
  let blob = Filename.concat dir (Depot.blob_name depot) in
  let good = In_channel.with_open_bin blob In_channel.input_all in
  let clobber n =
    Out_channel.with_open_bin blob (fun oc ->
        Out_channel.output_string oc (String.sub good 0 n))
  in
  let len = String.length good in
  List.iter
    (fun n ->
      clobber n;
      expect_depot_error
        (Printf.sprintf "blob file truncated to %d bytes" n)
        (fun () -> Depot.load dir))
    [ 0; 1; 23; 24; len / 2; len - 1 ];
  (* restore the bytes: the depot is whole again *)
  clobber len;
  ignore (Depot.load dir);
  (* a missing blob (manifest points into the void) is typed too *)
  Sys.remove blob;
  expect_depot_error "missing blob" (fun () -> Depot.load dir)

(* ---- the crash-commit protocol ------------------------------------- *)

let test_commit_protocol () =
  let _, _, _, depot = Lazy.force cold_ctx in
  with_dir @@ fun dir ->
  let g1 = Depot.save ~dir depot in
  Alcotest.(check int) "first commit is generation 1" 1 g1;
  let blob1 = Depot.blob_name depot in
  (* a crashed save leaves an orphan blob and no manifest update: the
     loader must keep serving generation 1 and never read the orphan *)
  Out_channel.with_open_bin
    (Filename.concat dir "depot-99.bin")
    (fun oc -> Out_channel.output_string oc "garbage from a crashed writer");
  let d = Depot.load dir in
  Alcotest.(check int) "orphan blob ignored" 1 (Depot.generation d);
  (* the next successful commit bumps the generation and collects both
     the old blob and the orphan *)
  let g2 = Depot.save ~dir depot in
  Alcotest.(check int) "second commit is generation 2" 2 g2;
  let files = List.sort compare (Array.to_list (Sys.readdir dir)) in
  Alcotest.(check (list string))
    "exactly one blob + manifest after GC"
    [ Depot.manifest_name; Depot.blob_name depot ]
    files;
  Alcotest.(check bool) "generation moved on" true (Depot.blob_name depot <> blob1);
  (* a manifest whose byte count disagrees with the blob (the torn-
     write signature) is typed *)
  let manifest = Filename.concat dir Depot.manifest_name in
  let text = In_channel.with_open_bin manifest In_channel.input_all in
  let lied =
    String.concat "\n"
      (List.map
         (fun line ->
           if String.length line > 6 && String.sub line 0 6 = "bytes " then
             "bytes 17"
           else line)
         (String.split_on_char '\n' text))
  in
  Out_channel.with_open_bin manifest (fun oc ->
      Out_channel.output_string oc lied);
  expect_depot_error "manifest byte-count lie" (fun () -> Depot.load dir);
  (* garbage where the manifest should be is typed, not a parse crash *)
  Out_channel.with_open_bin manifest (fun oc ->
      Out_channel.output_string oc "not a manifest at all\n");
  expect_depot_error "garbage manifest" (fun () -> Depot.load dir)

(* ---- injected faults on the save/load paths ------------------------ *)

let test_injected_faults () =
  let _, _, _, depot = Lazy.force cold_ctx in
  let armed site =
    let inj = Fi.create ~seed:9 ~rate:0.0 () in
    Fi.set_rate inj site 1.0;
    inj
  in
  (* torn write: half the blob reaches disk, the manifest still commits
     — the next load must catch it from the manifest's byte count *)
  with_dir (fun dir ->
      ignore (Depot.save ~inject:(armed Fi.Depot_torn) ~dir depot);
      expect_depot_error "torn write" (fun () -> Depot.load dir));
  (* read-side truncation and bit flip *)
  with_dir (fun dir ->
      ignore (Depot.save ~dir depot);
      expect_depot_error "injected truncation" (fun () ->
          Depot.load ~inject:(armed Fi.Depot_trunc) dir);
      expect_depot_error "injected bit flip" (fun () ->
          Depot.load ~inject:(armed Fi.Depot_flip) dir);
      (* the same depot, injector disarmed, still loads: the faults
         damaged the read, not the artifact *)
      ignore (Depot.load dir))

(* ---- the payoff: warm boot ≡ cold boot, translate ≈ 0 -------------- *)

(* Also the fleet story: several machines boot from the one saved
   depot, and each must be architecturally identical to the cold
   reference while doing a small fraction of its translation work. *)
let test_warm_boot_identity () =
  let image, cold_outcome, cold_translate, depot = Lazy.force cold_ctx in
  with_dir @@ fun dir ->
  ignore (Depot.save ~dir depot);
  for machine = 1 to 2 do
    let d = Depot.load dir in
    let scope = Scope.create () in
    let sys = make_sys ~scope mode image in
    let installed_boot = D.System.depot_install sys d in
    Alcotest.(check bool)
      (Printf.sprintf "machine %d: boot wave installs recipes" machine)
      true (installed_boot > 0);
    let res = D.System.run ~max_guest_insns:2_000_000 sys in
    let warm_outcome = guest_outcome sys res in
    Alcotest.(check (pair int string))
      (Printf.sprintf "machine %d: warm outcome = cold outcome" machine)
      cold_outcome warm_outcome;
    let warm_translate = Scope.phase_count scope Phase.Translate in
    Alcotest.(check bool)
      (Printf.sprintf
         "machine %d: warm translate (%d) under a tenth of cold (%d)" machine
         warm_translate cold_translate)
      true
      (warm_translate * 10 < cold_translate);
    let installed, pending = D.System.depot_coverage sys in
    Alcotest.(check int)
      (Printf.sprintf "machine %d: every recipe installed" machine)
      0 pending;
    Alcotest.(check bool)
      (Printf.sprintf "machine %d: coverage at least the boot wave" machine)
      true
      (installed >= installed_boot)
  done

(* ---- compatibility: a foreign depot is refused, never misapplied --- *)

let variant ?mode:m ?digest ?hot depot =
  let c = Depot.compat depot in
  let c =
    {
      Depot.c_mode = Option.value m ~default:c.Depot.c_mode;
      c_rules_digest = Option.value digest ~default:c.Depot.c_rules_digest;
      c_hot_threshold = Option.value hot ~default:c.Depot.c_hot_threshold;
    }
  in
  Depot.create ~compat:c ~rules:(Depot.rules depot)
    ~cache:(Depot.cache_payload depot) ~srcsum:(Depot.srcsum depot)
    ~health:(Depot.health depot)

let test_compat_rejection () =
  let image, cold_outcome, _, depot = Lazy.force cold_ctx in
  let reject what d =
    let sys = make_sys mode image in
    (match D.System.depot_install sys d with
    | _ -> Alcotest.failf "%s: incompatible depot accepted" what
    | exception Depot.Depot_error { section; _ } ->
      Alcotest.(check string) (what ^ ": blames the compat key") "compat"
        section
    | exception e ->
      Alcotest.failf "%s: escaped exception %s" what (Printexc.to_string e));
    (* the refusal must leave the machine pristine: a cold run on the
       very same instance still reaches the reference outcome *)
    let res = D.System.run ~max_guest_insns:2_000_000 sys in
    Alcotest.(check (pair int string))
      (what ^ ": cold fallback reaches the reference outcome")
      cold_outcome (guest_outcome sys res)
  in
  let c = Depot.compat depot in
  reject "mutated ruleset digest"
    (variant ~digest:(c.Depot.c_rules_digest lxor 0xBEEF) depot);
  reject "different optimization mode" (variant ~mode:"rules:full" depot);
  reject "different hot threshold"
    (variant ~hot:(c.Depot.c_hot_threshold + 1) depot);
  (* cross-mode for real: a depot captured under rules:full refuses to
     install into a rules:+regions machine (and vice versa is the same
     check), because region recipes only replay under the fusion
     configuration that recorded them *)
  let full_sys = make_sys (D.System.Rules D.Opt.full) image in
  ignore (D.System.run ~max_guest_insns:2_000_000 full_sys);
  let full_depot = D.System.depot_capture full_sys in
  reject "depot captured under rules:full" full_depot

(* ---- self-repair: poisoned recipes stay quarantined ---------------- *)

let test_quarantine_honored () =
  let image, cold_outcome, _, depot = Lazy.force cold_ctx in
  with_dir @@ fun dir ->
  (* baseline: full installation *)
  let full_installed =
    ignore (Depot.save ~dir depot);
    let sys = make_sys mode image in
    ignore (D.System.depot_install sys (Depot.load dir));
    ignore (D.System.run ~max_guest_insns:2_000_000 sys);
    fst (D.System.depot_coverage sys)
  in
  (* poison one recipe's guest PC (as the shadow-verification write-
     back would) and recommit *)
  let victim_pc =
    let sys = make_sys mode image in
    ignore (D.System.depot_install sys (Depot.load dir));
    ignore (D.System.run ~max_guest_insns:2_000_000 sys);
    match T.Tb.Cache.to_list sys.D.System.cache with
    | tb :: _ -> tb.T.Tb.guest_pc
    | [] -> Alcotest.fail "empty cache after a full run"
  in
  let d = Depot.load dir in
  Alcotest.(check bool) "quarantining a new PC reports growth" true
    (Depot.quarantine_pcs d [ victim_pc ]);
  Alcotest.(check bool) "re-quarantining the same PC does not" false
    (Depot.quarantine_pcs d [ victim_pc ]);
  ignore (Depot.save ~dir d);
  (* the poisoned entry never installs again; the machine cold-
     translates that PC and stays architecturally correct *)
  let d' = Depot.load dir in
  Alcotest.(check (list int)) "poison survives the round-trip" [ victim_pc ]
    (Depot.quarantined_pcs d');
  let sys = make_sys mode image in
  ignore (D.System.depot_install sys d');
  let res = D.System.run ~max_guest_insns:2_000_000 sys in
  Alcotest.(check (pair int string)) "poisoned warm boot still correct"
    cold_outcome (guest_outcome sys res);
  Alcotest.(check bool)
    (Printf.sprintf "fewer recipes served (%d with poison, %d without)"
       (fst (D.System.depot_coverage sys))
       full_installed)
    true
    (fst (D.System.depot_coverage sys) < full_installed)

(* ---- fleet write-back: breaker verdicts persist in the depot ------- *)

let test_rule_writeback () =
  let image, cold_outcome, _, depot = Lazy.force cold_ctx in
  with_dir @@ fun dir ->
  ignore (Depot.save ~dir depot);
  let d = Depot.load dir in
  (* pick a real rule id out of the live machine's ruleset *)
  let probe = make_sys mode image in
  let rs = Option.get probe.D.System.ruleset in
  let victim = (List.hd (R.Ruleset.rules rs)).R.Rule.id in
  Alcotest.(check bool) "quarantining a rule id reports change" true
    (D.System.depot_quarantine_rules d [ victim ]);
  Alcotest.(check bool) "re-quarantining it does not" false
    (D.System.depot_quarantine_rules d [ victim ]);
  ignore (Depot.save ~dir d);
  (* a warm boot from the written-back depot starts with the rule
     already demoted — and still reproduces the reference outcome,
     because quarantined rules fall back to baseline translation *)
  let sys = make_sys mode image in
  ignore (D.System.depot_install sys (Depot.load dir));
  let rs' = Option.get sys.D.System.ruleset in
  Alcotest.(check bool) "warm boot inherits the quarantine" true
    (List.mem victim (R.Ruleset.quarantined_ids rs'));
  let res = D.System.run ~max_guest_insns:2_000_000 sys in
  Alcotest.(check (pair int string)) "demoted warm boot still correct"
    cold_outcome (guest_outcome sys res)

let suite =
  [
    ( "aotcache",
      [
        Alcotest.test_case "depot container fuzz (flip + truncate)" `Quick
          test_container_fuzz;
        Alcotest.test_case "truncated + zero-length blob files" `Quick
          test_file_damage;
        Alcotest.test_case "crash-commit protocol" `Quick test_commit_protocol;
        Alcotest.test_case "injected depot faults are typed" `Quick
          test_injected_faults;
        Alcotest.test_case "warm boot identity, translate ~ 0" `Quick
          test_warm_boot_identity;
        Alcotest.test_case "cross-version/cross-ruleset rejection" `Quick
          test_compat_rejection;
        Alcotest.test_case "poisoned recipes stay quarantined" `Quick
          test_quarantine_honored;
        Alcotest.test_case "breaker rule write-back persists" `Quick
          test_rule_writeback;
      ] );
  ]
