open Repro_arm
module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module Stats = Repro_x86.Stats
module Exec = Repro_x86.Exec
module Cpu = Repro_arm.Cpu
module Snapshot = Repro_snapshot.Snapshot
module Fi = Repro_faultinject.Faultinject
module Perf = Repro_perfscope

(* Hot-region superblock tests: profile-guided TB fusion must be
   invisible to the guest (same final state as the unfused engine),
   must come apart correctly under self-modifying code, and must
   rebuild bit-identically from a snapshot. *)

let kernel_image ?(target = 30_000) ?(timer = 5_000) ?(bench = "gcc") () =
  let spec = W.find bench in
  let iters = max 1 (target / W.insns_per_iteration spec) in
  let user = W.generate spec ~iterations:iters in
  K.build ~timer_period:timer ~user_program:user ()

let make_sys ?inject ?scope mode image =
  let sys = D.System.create ?inject ?scope mode in
  K.load image (fun base words -> D.System.load_image sys base words);
  sys

let halt_code res =
  match res.T.Engine.reason with
  | `Halted c -> c
  | `Insn_limit | `Deadline -> Alcotest.fail "run hit its instruction limit"
  | `Livelock pc -> Alcotest.failf "unrecovered livelock at %#x" pc

(* Guest-visible state only: fusion changes modelled host costs, so
   stats are deliberately excluded here (the determinism test below
   compares them between two identically-configured runs instead). *)
let guest_fingerprint sys =
  let rt = sys.D.System.rt in
  ( Cpu.save_words rt.T.Runtime.cpu,
    Digest.to_hex (Digest.bytes rt.T.Runtime.ctx.Exec.ram),
    D.System.uart_output sys )

(* ---- fusion is guest-invisible and actually pays ------------------- *)

(* Like every cross-engine kernel differential, the contract is the
   guest-visible result (exit code + UART): a region polls for
   interrupts once at its head, so IRQ *timing* — preempted PCs,
   banked IRQ registers, handler stack frames — legitimately differs
   from the unfused engine, exactly as it does between qemu and rules
   modes. *)
let test_region_equivalence () =
  List.iter
    (fun bench ->
      let image = kernel_image ~bench () in
      let plain = make_sys (D.System.Rules D.Opt.full) image in
      let plain_code = halt_code (D.System.run ~max_guest_insns:3_000_000 plain) in
      let fused = make_sys (D.System.Rules D.Opt.with_regions) image in
      let fused_code = halt_code (D.System.run ~max_guest_insns:3_000_000 fused) in
      let sp = D.System.stats plain and sf = D.System.stats fused in
      Alcotest.(check int) (bench ^ ": same exit code") plain_code fused_code;
      Alcotest.(check string) (bench ^ ": same uart")
        (D.System.uart_output plain)
        (D.System.uart_output fused);
      Alcotest.(check bool) (bench ^ ": superblocks formed") true
        (sf.Stats.regions_formed > 0);
      Alcotest.(check int) (bench ^ ": none without the flag") 0
        sp.Stats.regions_formed;
      (* the point of the optimization: fewer host instructions and
         fewer Sync-tagged coordination instructions (the Fig. 17
         metric) for the same guest work *)
      Alcotest.(check bool) (bench ^ ": host insns improved") true
        (sf.Stats.host_insns < sp.Stats.host_insns);
      Alcotest.(check bool) (bench ^ ": sync insns improved") true
        (Stats.tag_count sf Repro_x86.Insn.Tag_sync
        < Stats.tag_count sp Repro_x86.Insn.Tag_sync))
    [ "gcc"; "mcf" ]

(* Two identically-configured fused runs must agree to the last
   counter — formation is profile-driven but the profile itself is
   deterministic. *)
let test_region_determinism () =
  let image = kernel_image () in
  let once () =
    let sys = make_sys (D.System.Rules D.Opt.with_regions) image in
    let code = halt_code (D.System.run ~max_guest_insns:3_000_000 sys) in
    (code, guest_fingerprint sys, Stats.to_array (D.System.stats sys))
  in
  let c1, (ra, ma, ua), s1 = once () in
  let c2, (rb, mb, ub), s2 = once () in
  Alcotest.(check int) "halt code" c1 c2;
  Alcotest.(check (array int)) "cpu words" ra rb;
  Alcotest.(check string) "ram digest" ma mb;
  Alcotest.(check string) "uart" ua ub;
  Alcotest.(check (array int)) "stats (incl. regions_formed)" s1 s2

(* ---- self-modifying code splits a region --------------------------- *)

(* A loop runs long past the hot threshold (a superblock forms over
   it), then patches one of its own instructions and runs on: the
   store must invalidate the fused code, and the re-translated loop
   must execute the patched semantics. The reference interpreter
   defines the correct answer: 100 iterations of +1, 100 of +2. *)
let test_region_smc_split () =
  let patched =
    Repro_arm.Encode.encode
      (Insn.make
         (Insn.Dp
            { op = Insn.ADD; s = false; rd = 4; rn = 4;
              op2 = Insn.imm_operand_exn 2 }))
  in
  let user =
    let a = Asm.create ~origin:K.user_code_base () in
    Asm.mov32 a Insn.sp K.user_stack_top;
    Asm.mov a 5 0;                          (* iteration counter *)
    Asm.mov a 4 0;                          (* accumulator *)
    Asm.label a "again";
    Asm.label a "patch";
    Asm.add a 4 4 1;                        (* will become add r4, r4, #2 *)
    Asm.add a 5 5 1;
    Asm.cmp a 5 100;
    Asm.branch_to a ~cond:Cond.EQ "do_patch";
    Asm.cmp a 5 200;
    Asm.branch_to a ~cond:Cond.NE "again";
    Asm.mov_r a 0 4;
    Asm.mov a 7 K.sys_exit;
    Asm.svc a 0;
    Asm.label a "do_patch";
    Asm.mov32_label a 1 "patch";
    Asm.mov32 a 2 patched;
    Asm.str a 2 1 0;
    Asm.branch_to a "again";
    snd (Asm.assemble a)
  in
  let image = K.build ~timer_period:5_000 ~user_program:user () in
  (* reference answer *)
  let m = T.Ref_machine.create () in
  K.load image (fun base words -> T.Ref_machine.load_image m base words);
  let ref_code =
    match T.Ref_machine.run m ~max_steps:3_000_000 with
    | T.Ref_machine.Halted c, _ -> c
    | _ -> Alcotest.fail "reference did not halt"
  in
  Alcotest.(check int) "reference computes 100*1 + 100*2" 300 ref_code;
  let sys = make_sys (D.System.Rules D.Opt.with_regions) image in
  let code = halt_code (D.System.run ~max_guest_insns:3_000_000 sys) in
  let st = D.System.stats sys in
  Alcotest.(check int) "patched semantics executed under fusion" ref_code code;
  Alcotest.(check bool) "a superblock had formed over the loop" true
    (st.Stats.regions_formed > 0)

(* ---- snapshot restore rebuilds regions ----------------------------- *)

(* Interrupt a fused run after superblocks exist, freeze it through the
   wire format, thaw into a new machine and finish: same final state
   as the uninterrupted fused run, to the last counter — the rebuilt
   regions behave identically (and the restored hot counters mean
   later formations fire at the same points). *)
let test_region_restore () =
  let image = kernel_image () in
  let full = make_sys (D.System.Rules D.Opt.with_regions) image in
  let full_res = D.System.run ~max_guest_insns:3_000_000 full in
  let part = make_sys (D.System.Rules D.Opt.with_regions) image in
  (* past the point where the workload's hot loops have fused (the
     first superblocks appear just before 20k retired insns) *)
  let part_res =
    D.System.run ~max_guest_insns:25_000 ~checkpoint_every:4_000 part
  in
  (match part_res.T.Engine.reason with
  | `Insn_limit -> ()
  | _ -> Alcotest.fail "interrupted run should hit its budget");
  Alcotest.(check bool) "snapshot captures live superblocks" true
    ((D.System.stats part).Stats.regions_formed > 0);
  let frozen = Snapshot.to_string (D.System.snapshot part) in
  let snap = Snapshot.of_string frozen in
  let thawed =
    D.System.create
      ~ram_kib:(D.System.snapshot_ram_kib snap)
      ?inject:(D.System.snapshot_injector snap)
      (D.System.snapshot_mode snap)
  in
  D.System.restore thawed snap;
  let rest_res = D.System.run ~max_guest_insns:2_975_000 thawed in
  Alcotest.(check int) "same halt code" (halt_code full_res)
    (halt_code rest_res);
  let ra, ma, ua = guest_fingerprint full
  and rb, mb, ub = guest_fingerprint thawed in
  Alcotest.(check (array int)) "cpu words" ra rb;
  Alcotest.(check string) "ram digest" ma mb;
  Alcotest.(check string) "uart" ua ub;
  Alcotest.(check (array int)) "stats (incl. regions_formed)"
    (Stats.to_array (D.System.stats full))
    (Stats.to_array (D.System.stats thawed))

(* ---- watchdog rollback bends the perfscope partition ---------------

   Over a rollback-free run the scope's phase totals partition the
   final host_insns exactly. A watchdog rollback breaks that: Stats is
   reloaded from the checkpoint (the livelocked span's host insns are
   discarded) while the scope keeps its accumulations. The discrepancy
   telescopes — every rollback's excess is already inside the scope
   total the next post-mortem observes — so at the end of the run

     scope_total - host_insns
       = (scope total at the LAST post-mortem)
       - (host_insns recorded in the LAST rollback's checkpoint)

   i.e. the partition "bend" is exactly the last rolled-back span plus
   all earlier ones folded in, never an arbitrary leak. *)

let test_region_watchdog_bend () =
  let image = kernel_image ~target:60_000 () in
  let clean = make_sys (D.System.Rules D.Opt.with_regions) image in
  let clean_code = halt_code (D.System.run ~max_guest_insns:3_000_000 clean) in
  let sabotaged () =
    let inject = Fi.create ~seed:11 ~rate:0.0 () in
    Fi.set_rate inject Fi.Host_livelock 0.05;
    let scope = Perf.Scope.create () in
    let sys = make_sys ~inject ~scope (D.System.Rules D.Opt.with_regions) image in
    let pms = ref [] in
    let res =
      D.System.run ~max_guest_insns:3_000_000 ~checkpoint_every:4_000
        ~on_postmortem:(fun ~reason:_ dump ->
          (* capture the scope clock at the rollback instant (the
             callback fires before the checkpoint is restored) and the
             checkpoint's own host-insn clock from the dump *)
          let d = Snapshot.Dec.of_string ~name:"stats" (Snapshot.find dump "stats") in
          let cp_stats = Stats.create () in
          Stats.load_array cp_stats (Snapshot.Dec.int_array d);
          pms := (Perf.Scope.total scope, cp_stats.Stats.host_insns) :: !pms)
        sys
    in
    (res, sys, scope, !pms (* newest first *))
  in
  let res, sys, scope, pms = sabotaged () in
  let stats = D.System.stats sys in
  Alcotest.(check bool) "sabotage livelocked at least once" true
    (stats.Stats.livelocks_recovered > 0);
  Alcotest.(check int) "one post-mortem per recovery"
    stats.Stats.livelocks_recovered (List.length pms);
  Alcotest.(check int) "guest still finishes with the clean answer" clean_code
    (halt_code res);
  Alcotest.(check bool) "rollback demoted the floor below regions" true
    (D.System.rung_floor sys <> D.System.Rung_rules);
  let s_pm_last, h_cp_last = List.hd pms in
  Alcotest.(check int) "partition bend = exactly the rolled-back span"
    (s_pm_last - h_cp_last)
    (Perf.Scope.total scope - stats.Stats.host_insns);
  (* post-rollback determinism: the whole recovery story — faults,
     rollbacks, demotions, the bend itself — replays bit-identically
     from the injector seed *)
  let res2, sys2, scope2, pms2 = sabotaged () in
  Alcotest.(check int) "same halt code" (halt_code res) (halt_code res2);
  let ra, ma, ua = guest_fingerprint sys and rb, mb, ub = guest_fingerprint sys2 in
  Alcotest.(check (array int)) "same cpu words" ra rb;
  Alcotest.(check string) "same ram digest" ma mb;
  Alcotest.(check string) "same uart" ua ub;
  Alcotest.(check (array int)) "same stats (incl. recoveries)"
    (Stats.to_array (D.System.stats sys))
    (Stats.to_array (D.System.stats sys2));
  Alcotest.(check int) "same scope total" (Perf.Scope.total scope)
    (Perf.Scope.total scope2);
  Alcotest.(check (list (pair int int))) "same rollback instants" pms pms2

let suite =
  [
    ( "regions",
      [
        Alcotest.test_case "fusion is guest-invisible and pays" `Quick
          test_region_equivalence;
        Alcotest.test_case "fused runs are deterministic" `Quick
          test_region_determinism;
        Alcotest.test_case "self-modifying code splits a region" `Quick
          test_region_smc_split;
        Alcotest.test_case "snapshot rebuilds superblocks" `Quick
          test_region_restore;
        Alcotest.test_case "watchdog rollback bends the perf partition" `Quick
          test_region_watchdog_bend;
      ] );
  ]
