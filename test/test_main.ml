let () =
  Alcotest.run "repro"
    (Test_common.suite @ Test_arm.suite @ Test_x86.suite @ Test_machine.suite
    @ Test_mmu.suite @ Test_tcg.suite @ Test_rules.suite @ Test_dbt.suite
    @ Test_emitter.suite @ Test_symexec.suite @ Test_learn.suite @ Test_kernel.suite @ Test_robustness.suite @ Test_snapshot.suite @ Test_observe.suite
    @ Test_perfscope.suite @ Test_regions.suite @ Test_resilience.suite
    @ Test_aotcache.suite @ Test_telemetry.suite @ Test_covscope.suite
    @ Test_parallel.suite)
