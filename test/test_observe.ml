module T = Repro_tcg
module D = Repro_dbt
module O = Repro_observe
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module Stats = Repro_x86.Stats
module Exec = Repro_x86.Exec
module Snapshot = Repro_snapshot.Snapshot
module Cpu = Repro_arm.Cpu

(* Observability-layer tests: the JSON writers, the event ring, the
   coordination ledger (unit-level and against whole-system ablation
   measurements), and the two invariants the layer promises — tracing
   changes nothing, and snapshots neither carry nor disturb it. *)

(* ---- Jsonx ---------------------------------------------------------- *)

let test_jsonx () =
  Alcotest.(check string) "escaping" "\"a\\\"b\\\\c\\n\\u0007\""
    (O.Jsonx.str "a\"b\\c\n\007");
  (* every control character below 0x20 must be escaped — bare control
     bytes make the output invalid JSON *)
  for c = 0 to 0x1F do
    let rendered = O.Jsonx.str (String.make 1 (Char.chr c)) in
    String.iter
      (fun ch ->
        if Char.code ch < 0x20 then
          Alcotest.failf "control char %#x leaked into %S" c rendered)
      rendered
  done;
  Alcotest.(check string) "NUL" "\"\\u0000\"" (O.Jsonx.str "\000");
  Alcotest.(check string) "short and \\u escapes"
    "\"\\u0008\\t\\n\\u000b\\u000c\\r\"" (O.Jsonx.str "\b\t\n\011\012\r");
  (* non-ASCII bytes pass through untouched (the writer is
     byte-transparent above 0x1F; UTF-8 stays UTF-8, and raw bytes
     still round-trip through the parser) *)
  Alcotest.(check string) "UTF-8 passes through" "\"caf\xc3\xa9\""
    (O.Jsonx.str "caf\xc3\xa9");
  Alcotest.(check string) "raw high bytes pass through" "\"\xff\x80\""
    (O.Jsonx.str "\xff\x80");
  Alcotest.(check string) "DEL passes through" "\"\x7f\"" (O.Jsonx.str "\x7f");
  Alcotest.(check string) "int" "-42" (O.Jsonx.int (-42));
  Alcotest.(check string) "bool" "true" (O.Jsonx.bool true);
  Alcotest.(check string) "integral float" "3" (O.Jsonx.float 3.0);
  Alcotest.(check string) "nan is null" "null" (O.Jsonx.float Float.nan);
  Alcotest.(check string) "inf is null" "null" (O.Jsonx.float Float.infinity);
  Alcotest.(check string) "obj"
    "{\"a\":1,\"b\":[true,\"x\"]}"
    (O.Jsonx.obj
       [ ("a", O.Jsonx.int 1); ("b", O.Jsonx.arr [ O.Jsonx.bool true; O.Jsonx.str "x" ]) ])

(* ---- the event ring ------------------------------------------------- *)

let test_ring_overflow () =
  let tr = O.Trace.create ~capacity:8 () in
  Alcotest.(check int) "empty" 0 (O.Trace.length tr);
  for i = 1 to 20 do
    O.Trace.emit tr ~a:i O.Trace.Exec "e"
  done;
  Alcotest.(check int) "total counts every emit" 20 (O.Trace.total tr);
  Alcotest.(check int) "length capped at capacity" 8 (O.Trace.length tr);
  Alcotest.(check int) "dropped = total - length" 12 (O.Trace.dropped tr);
  (* the ring keeps the newest events, iterated oldest-first *)
  let kept = List.map (fun e -> e.O.Trace.a) (O.Trace.events tr) in
  Alcotest.(check (list int)) "oldest-first, newest kept"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ] kept;
  O.Trace.clear tr;
  Alcotest.(check int) "clear empties" 0 (O.Trace.length tr);
  Alcotest.(check int) "clear resets total" 0 (O.Trace.total tr)

let test_ring_clock () =
  let tr = O.Trace.create () in
  let now = ref 0 in
  O.Trace.set_clock tr (fun () -> !now);
  O.Trace.emit tr O.Trace.Sync "a";
  now := 99;
  O.Trace.emit tr O.Trace.Sync "b";
  match O.Trace.events tr with
  | [ a; b ] ->
    Alcotest.(check int) "first timestamp" 0 a.O.Trace.at;
    Alcotest.(check int) "second timestamp" 99 b.O.Trace.at
  | _ -> Alcotest.fail "expected 2 events"

let with_temp_file f =
  let path = Filename.temp_file "repro_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_trace_writers () =
  let tr = O.Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    O.Trace.emit tr ~a:i O.Trace.Irq "tick"
  done;
  with_temp_file (fun path ->
      let oc = open_out path in
      O.Trace.write_jsonl oc tr;
      close_out oc;
      let lines = String.split_on_char '\n' (String.trim (read_file path)) in
      Alcotest.(check int) "4 events + meta trailer" 5 (List.length lines);
      let trailer = List.nth lines 4 in
      Alcotest.(check bool) "trailer records drops" true
        (trailer = "{\"meta\":\"trace\",\"total\":6,\"dropped\":2}"));
  with_temp_file (fun path ->
      let oc = open_out path in
      O.Trace.write_chrome oc tr;
      close_out oc;
      let s = read_file path in
      Alcotest.(check bool) "chrome: traceEvents array" true
        (String.length s > 2 && String.sub s 0 16 = "{\"traceEvents\":[");
      (* every category gets a named track *)
      let contains needle hay =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "chrome: thread metadata" true
        (contains "thread_name" s);
      Alcotest.(check bool) "chrome: drop count in otherData" true
        (contains "\"dropped\":2" s))

(* ---- ledger unit level ---------------------------------------------- *)

let test_ledger_units () =
  let l = O.Ledger.create () in
  let p = O.Ledger.zero_prov () in
  O.Ledger.prov_add p O.Ledger.Elim_mem ~ops:2 ~insns:7;
  O.Ledger.prov_add p O.Ledger.Reduction ~ops:0 ~insns:5;
  O.Ledger.record_static l p;
  O.Ledger.record_exec l p;
  O.Ledger.record_exec l p;
  O.Ledger.record_exec l (O.Ledger.zero_prov ());  (* ignored: all-zero *)
  O.Ledger.record_exec l [||];                     (* ignored: no provenance *)
  Alcotest.(check int) "static ops" 2 (O.Ledger.static_ops l O.Ledger.Elim_mem);
  Alcotest.(check int) "static insns" 5 (O.Ledger.static_insns l O.Ledger.Reduction);
  Alcotest.(check int) "dyn ops x2" 4 (O.Ledger.dyn_ops l O.Ledger.Elim_mem);
  Alcotest.(check int) "dyn insns x2" 14 (O.Ledger.dyn_insns l O.Ledger.Elim_mem);
  let json = O.Ledger.to_json l in
  Alcotest.(check bool) "to_json is an object" true
    (String.length json > 2 && json.[0] = '{');
  (* re-emission delta: replace the TB's contribution without bumping
     the translation count *)
  let p' = O.Ledger.zero_prov () in
  O.Ledger.prov_add p' O.Ledger.Elim_mem ~ops:3 ~insns:9;
  O.Ledger.record_static_delta l (O.Ledger.prov_diff ~old_:p p');
  Alcotest.(check int) "delta replaced ops" 3 (O.Ledger.static_ops l O.Ledger.Elim_mem);
  Alcotest.(check int) "delta replaced insns" 9
    (O.Ledger.static_insns l O.Ledger.Elim_mem);
  Alcotest.(check int) "delta retired the old pass entry" 0
    (O.Ledger.static_insns l O.Ledger.Reduction);
  (* dynamic-only entries, negative = cost *)
  O.Ledger.add_dynamic l O.Ledger.Reduction ~ops:0 ~insns:(-6);
  Alcotest.(check int) "negative dynamic entry" (10 - 6)
    (O.Ledger.dyn_insns l O.Ledger.Reduction);
  O.Ledger.reset l;
  Alcotest.(check int) "reset" 0 (O.Ledger.total_static_ops l)

(* ---- whole-system runs ---------------------------------------------- *)

let kernel_image ?(target = 30_000) ?(timer = 5_000) () =
  let spec = W.find "gcc" in
  let iters = max 1 (target / W.insns_per_iteration spec) in
  let user = W.generate spec ~iterations:iters in
  K.build ~timer_period:timer ~user_program:user ()

let run_image ?trace ?ledger image mode =
  let sys = D.System.create ?trace ?ledger mode in
  K.load image (fun base words -> D.System.load_image sys base words);
  let res = D.System.run ~max_guest_insns:2_000_000 sys in
  (match res.T.Engine.reason with
  | `Halted _ -> ()
  | `Insn_limit | `Deadline -> Alcotest.fail "run hit its instruction limit"
  | `Livelock pc -> Alcotest.failf "livelock at %#x" pc);
  sys

let fingerprint sys =
  let rt = sys.D.System.rt in
  ( Cpu.save_words rt.T.Runtime.cpu,
    Digest.to_hex (Digest.bytes rt.T.Runtime.ctx.Exec.ram),
    Stats.to_array (D.System.stats sys),
    D.System.uart_output sys )

let check_fingerprint msg (ra, ma, sa, ua) (rb, mb, sb, ub) =
  Alcotest.(check (array int)) (msg ^ ": cpu words") ra rb;
  Alcotest.(check string) (msg ^ ": ram digest") ma mb;
  Alcotest.(check (array int)) (msg ^ ": stats") sa sb;
  Alcotest.(check string) (msg ^ ": uart") ua ub

(* The load-bearing invariant: attaching the trace and the ledger is
   purely observational — every counter, every byte of guest state and
   the UART transcript are bit-identical to an uninstrumented run. *)
let test_tracing_off_bit_identity () =
  let image = kernel_image () in
  let plain = run_image image (D.System.Rules D.Opt.full) in
  let trace = O.Trace.create () in
  let ledger = O.Ledger.create () in
  let traced = run_image ~trace ~ledger image (D.System.Rules D.Opt.full) in
  check_fingerprint "instrumented vs plain" (fingerprint plain) (fingerprint traced);
  (* and the instrumentation did observe the run *)
  Alcotest.(check bool) "events captured" true (O.Trace.total trace > 1000);
  Alcotest.(check bool) "dynamic savings attributed" true
    (O.Ledger.total_dyn_insns ledger > 0);
  Alcotest.(check bool) "timestamps are guest insns" true
    (List.for_all
       (fun e -> e.O.Trace.at <= (D.System.stats traced).Stats.guest_insns)
       (O.Trace.events trace))

(* Trace events cover the taxonomy on a workload with IRQs + MMU. *)
let test_trace_taxonomy () =
  let image = kernel_image ~timer:2_000 () in
  let trace = O.Trace.create () in
  let _sys = run_image ~trace image (D.System.Rules D.Opt.full) in
  let seen = Hashtbl.create 16 in
  O.Trace.iter trace (fun e ->
      Hashtbl.replace seen (e.O.Trace.cat, e.O.Trace.name) ());
  let expect cat name =
    Alcotest.(check bool)
      (Printf.sprintf "%s/%s emitted" (O.Trace.category_name cat) name)
      true
      (Hashtbl.mem seen (cat, name))
  in
  expect O.Trace.Exec "translate";
  expect O.Trace.Exec "halt";
  expect O.Trace.Chain "link";
  expect O.Trace.Chain "jump";
  expect O.Trace.Irq "timer_raise";
  expect O.Trace.Irq "deliver";
  expect O.Trace.Sync "lazy_parse";
  expect O.Trace.Tlb "miss"

(* ---- ledger vs measured ablations ----------------------------------- *)

(* Toggle each op-removing pass off individually and compare the
   whole-system sync_ops increase against what the ledger attributed
   to that pass under [full]. Pass interactions make exact equality
   impossible, so the check is same-sign agreement within a per-pass
   factor: III-C.2's sites are mostly independent (factor 2), while
   III-C.3 attributes every elided entry save even though block
   chaining recoups most of them when the pass is off — the
   whole-system delta only shows the unchained residue, so its
   tolerance is an order of magnitude. Tight enough to catch broken
   attribution (wrong pass, wrong sign, double counting), loose
   enough to survive the interactions. *)
let test_ledger_vs_ablation () =
  let image = kernel_image () in
  let ledger = O.Ledger.create () in
  let full = run_image ~ledger image (D.System.Rules D.Opt.full) in
  let full_sync = (D.System.stats full).Stats.sync_ops in
  List.iter
    (fun (name, pass, factor, opt) ->
      let abl = run_image image (D.System.Rules opt) in
      let measured = (D.System.stats abl).Stats.sync_ops - full_sync in
      let attributed = O.Ledger.dyn_ops ledger pass in
      Alcotest.(check bool) (name ^ ": pass removes sync ops") true (measured > 0);
      Alcotest.(check bool) (name ^ ": ledger attributed some") true (attributed > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: attribution within %dx (measured %d, attributed %d)"
           name factor measured attributed)
        true
        (attributed <= factor * measured && measured <= factor * attributed))
    [
      ("III-C.2", O.Ledger.Elim_mem, 2, { D.Opt.full with D.Opt.elim_mem = false });
      ("III-C.3", O.Ledger.Inter_tb, 12, { D.Opt.full with D.Opt.inter_tb = false });
    ];
  (* guest-visible output must be identical across every ablation
     (retired-instruction totals may differ slightly: interrupt
     delivery lands on different TB boundaries per configuration) *)
  let abl = run_image image (D.System.Rules D.Opt.base) in
  Alcotest.(check string) "same guest output at base level"
    (D.System.uart_output full) (D.System.uart_output abl)

(* III-B removes sync-tagged host instructions (packed save vs QEMU's
   one-to-many parse), not whole ops: its attribution is checked
   against the Tag_sync instruction delta instead. *)
let test_ledger_reduction_insns () =
  let image = kernel_image () in
  let ledger = O.Ledger.create () in
  let full = run_image ~ledger image (D.System.Rules D.Opt.full) in
  let abl =
    run_image image (D.System.Rules { D.Opt.full with D.Opt.reduction = false })
  in
  let tag_sync s = Stats.tag_count s Repro_x86.Insn.Tag_sync in
  let measured =
    tag_sync (D.System.stats abl) - tag_sync (D.System.stats full)
  in
  let attributed = O.Ledger.dyn_insns ledger O.Ledger.Reduction in
  Alcotest.(check bool) "reduction saves sync insns" true (measured > 0);
  Alcotest.(check bool)
    (Printf.sprintf "attribution within 2x (measured %d, attributed %d)"
       measured attributed)
    true
    (attributed > 0 && attributed <= 2 * measured && measured <= 2 * attributed)

(* ---- snapshots ------------------------------------------------------ *)

(* Save/restore round-trip with instrumentation attached: guest state
   and counters stay bit-identical, and the trace/ledger are NOT part
   of the snapshot — the thawed machine keeps accumulating into its
   own (fresh) instances, documenting the exclusion. *)
let test_roundtrip_with_tracing () =
  let image = kernel_image () in
  let full = run_image image (D.System.Rules D.Opt.full) in
  let trace1 = O.Trace.create () in
  let ledger1 = O.Ledger.create () in
  let part = D.System.create ~trace:trace1 ~ledger:ledger1 (D.System.Rules D.Opt.full) in
  K.load image (fun base words -> D.System.load_image part base words);
  (match (D.System.run ~max_guest_insns:15_000 ~checkpoint_every:4_000 part).T.Engine.reason with
  | `Insn_limit -> ()
  | _ -> Alcotest.fail "interrupted run should hit its budget");
  let frozen = Snapshot.to_string (D.System.snapshot part) in
  let snap = Snapshot.of_string frozen in
  let trace2 = O.Trace.create () in
  let ledger2 = O.Ledger.create () in
  let thawed =
    D.System.create
      ~ram_kib:(D.System.snapshot_ram_kib snap)
      ~trace:trace2 ~ledger:ledger2
      (D.System.snapshot_mode snap)
  in
  D.System.restore thawed snap;
  (* the cache rebuild runs with the ledger detached: restoring must
     not re-count statics the interrupted machine already recorded *)
  Alcotest.(check int) "rebuild recorded no statics (ledger detached)" 0
    (O.Ledger.total_static_ops ledger2 + O.Ledger.total_static_insns ledger2);
  let events_at_restore = O.Trace.total trace2 in
  (match (D.System.run ~max_guest_insns:1_985_000 thawed).T.Engine.reason with
  | `Halted _ -> ()
  | _ -> Alcotest.fail "restored run did not halt");
  check_fingerprint "traced round-trip" (fingerprint full) (fingerprint thawed);
  (* the snapshot carried no trace: the interrupted machine's ring kept
     its events, and the thawed ring only holds what the thawed machine
     itself emitted (the restore marker plus its own run) *)
  Alcotest.(check bool) "interrupted ring kept its events" true
    (O.Trace.total trace1 > 0);
  Alcotest.(check bool) "thawed ring accumulated its own events" true
    (events_at_restore >= 1 && O.Trace.total trace2 > events_at_restore)

let suite =
  [
    ( "observe",
      [
        Alcotest.test_case "jsonx writers" `Quick test_jsonx;
        Alcotest.test_case "ring overflow + drop accounting" `Quick
          test_ring_overflow;
        Alcotest.test_case "settable clock" `Quick test_ring_clock;
        Alcotest.test_case "jsonl + chrome export" `Quick test_trace_writers;
        Alcotest.test_case "ledger unit ops" `Quick test_ledger_units;
        Alcotest.test_case "tracing is bit-identical to off" `Quick
          test_tracing_off_bit_identity;
        Alcotest.test_case "event taxonomy covered" `Quick test_trace_taxonomy;
        Alcotest.test_case "ledger vs measured ablations (ops)" `Quick
          test_ledger_vs_ablation;
        Alcotest.test_case "ledger vs measured ablation (III-B insns)" `Quick
          test_ledger_reduction_insns;
        Alcotest.test_case "save/restore with tracing attached" `Quick
          test_roundtrip_with_tracing;
      ] );
  ]
