open Repro_arm
module Cov = Repro_covscope
module Attr = Cov.Attr
module Report = Cov.Report
module Stats = Repro_x86.Stats
module An = Repro_perfscope.Analysis
module Jsonx = Repro_observe.Jsonx
module D = Repro_dbt
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads

(* Translation-quality observatory tests.

   The opcode-class table is derived from the decoder's one
   instruction enumeration: [Insn.classify] is a wildcard-free match
   over [Insn.op], so adding a decoder variant without assigning it a
   coverage class fails to compile (warning 8 is an error in the dev
   profile). This suite pins the runtime half of that contract — the
   table is dense and invertible, every generable instruction lands
   inside it — plus the packed-attribution round-trip, the
   Stats-resident tier partition invariant under synthetic and real
   retirement streams, the per-rule payoff ledger's dead/negative
   flags, and the document-kind check every dbt_analyze subcommand
   runs on its input. *)

(* ---- 1. the class table is dense, invertible and total ---- *)

let test_class_table () =
  Alcotest.(check int) "n_classes = |all_classes|" Insn.n_classes
    (List.length Insn.all_classes);
  List.iteri
    (fun i cls ->
      Alcotest.(check int)
        (Insn.cls_name cls ^ " sits at its dense index")
        i (Insn.cls_index cls);
      Alcotest.(check bool)
        (Insn.cls_name cls ^ " index inverts")
        true
        (Insn.cls_of_index i = cls))
    Insn.all_classes;
  let names = List.map Insn.cls_name Insn.all_classes in
  Alcotest.(check int) "class names are unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  (* the packed word has room for the whole table *)
  Alcotest.(check bool) "class field wide enough" true (Insn.n_classes <= 128);
  Alcotest.(check bool) "idiom field wide enough" true (Insn.n_idioms <= 16)

let prop_classify_total =
  QCheck.Test.make ~count:2000
    ~name:"every generable instruction classifies inside the table"
    Gen.arbitrary_insn
    (fun insn ->
      let cls = Insn.classify insn in
      let ix = Insn.cls_index cls in
      let idiom = Insn.idiom_of insn in
      ix >= 0
      && ix < Insn.n_classes
      && Insn.cls_of_index ix = cls
      && idiom >= 0
      && idiom < Insn.n_idioms
      && String.length (Insn.cls_name cls) > 0
      && String.length (Insn.idiom_name cls idiom) > 0)

(* ---- 2. the packed attribution word round-trips ---- *)

let prop_attr_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"attribution words pack/unpack losslessly"
    (QCheck.pair Gen.arbitrary_insn
       (QCheck.pair
          (QCheck.int_bound (Attr.n_tiers - 1))
          (QCheck.int_bound 500)))
    (fun (insn, (tix, rule)) ->
      let tier = Attr.tier_of_index tix in
      let rule = if rule = 0 then None else Some (rule - 1) in
      let a = Attr.pack ~tier ?rule insn in
      Attr.tier a = tier
      && Attr.cls a = Insn.cls_index (Insn.classify insn)
      && Attr.idiom a = Insn.idiom_of insn
      && Attr.rule a = rule
      &&
      (* re-tiering (the helper-path repatch) preserves everything else *)
      let re = Attr.retier a Attr.Helper in
      Attr.tier re = Attr.Helper
      && Attr.cls re = Attr.cls a
      && Attr.idiom re = Attr.idiom a
      && Attr.rule re = Attr.rule a)

(* ---- 3. the partition invariant on a synthetic retirement stream ---- *)

(* [retire] charges host-insn cost to the previously retired
   instruction (the cost of an instruction accrues between its
   retirement and the next); the simulation mirrors the engine:
   retire, then accrue. *)
let sim st attr cost =
  Stats.retire st attr;
  st.Stats.host_insns <- st.Stats.host_insns + cost

let test_stats_partition_synthetic () =
  let st = Stats.create () in
  let a1 = Attr.pack_raw ~tier:Attr.Rule ~cls:3 ~idiom:1 ~rule:(Some 7) in
  let a2 = Attr.pack_raw ~tier:Attr.Baseline ~cls:3 ~idiom:1 ~rule:None in
  let a3 = Attr.pack_raw ~tier:Attr.Helper ~cls:9 ~idiom:0 ~rule:None in
  sim st a1 2;
  sim st a1 2;
  sim st a2 20;
  sim st a3 11;
  sim st a1 3;
  Alcotest.(check int) "every retirement counted exactly once" 5
    st.Stats.guest_insns;
  Alcotest.(check int) "cov table agrees with the retirement counter" 5
    (Stats.cov_retired st);
  let src = Report.of_stats st in
  Alcotest.(check (option string)) "tier partition holds" None
    (Report.partition_error src);
  (* attributed + residual accounts for every host instruction: the
     last accrual has no successor retirement to flush it *)
  Alcotest.(check int) "attributed + residual = host insns" st.Stats.host_insns
    (Stats.cov_attributed st + Stats.cov_residual st);
  Alcotest.(check int) "residual is the unflushed tail" 3 (Stats.cov_residual st);
  (* serialization: the attribution table snapshots bit-identically *)
  let arr = Stats.to_array st in
  let st2 = Stats.create () in
  Stats.load_array st2 arr;
  Alcotest.(check bool) "cov counters restore bit-identically" true
    (Stats.to_array st2 = arr);
  Alcotest.(check bool) "restored entries equal the originals" true
    (Stats.cov_entries st2 = Stats.cov_entries st);
  (* a broken partition is loudly rejected *)
  st.Stats.guest_insns <- st.Stats.guest_insns + 1;
  Alcotest.(check bool) "a broken partition is diagnosed" true
    (Report.partition_error (Report.of_stats st) <> None);
  Alcotest.check_raises "make refuses a broken partition"
    (Failure
       "covscope: tier partition broken: sum of tier counts 5 <> 6 retired")
    (fun () -> ignore (Report.make (Report.of_stats st)))

(* ---- 4. the per-rule ledger flags dead and negative-payoff rules ---- *)

let test_rule_ledger_flags () =
  let st = Stats.create () in
  let cls = Insn.cls_index (Insn.classify (Insn.make (Insn.Nop))) in
  let cheap = Attr.pack_raw ~tier:Attr.Rule ~cls ~idiom:0 ~rule:(Some 3) in
  let costly = Attr.pack_raw ~tier:Attr.Rule ~cls ~idiom:1 ~rule:(Some 5) in
  let base = Attr.pack_raw ~tier:Attr.Baseline ~cls ~idiom:0 ~rule:None in
  (* baseline-tier retirements of the same class set the measured
     counterfactual mean (~20 host insns per guest insn) *)
  for _ = 1 to 10 do
    sim st base 20
  done;
  for _ = 1 to 10 do
    sim st cheap 2
  done;
  for _ = 1 to 10 do
    sim st costly 50
  done;
  Stats.retire st base (* flush the last accrual *);
  let report =
    Report.make
      ~rules:[ (3, "cheap"); (5, "costly"); (9, "unused") ]
      (Report.of_stats st)
  in
  let row id = List.find (fun r -> r.Report.rule_id = id) report.Report.rules in
  Alcotest.(check bool) "profitable rule is neither dead nor negative" true
    (let r = row 3 in
     (not r.Report.dead) && (not r.Report.negative) && r.Report.payoff > 0.);
  Alcotest.(check bool) "costlier-than-baseline rule flags negative payoff" true
    (let r = row 5 in
     (not r.Report.dead) && r.Report.negative && r.Report.payoff < 0.);
  Alcotest.(check bool) "never-fired rule flags dead" true
    (let r = row 9 in
     r.Report.dead && r.Report.hits = 0)

(* ---- 5. the document-kind check of every dbt_analyze subcommand ---- *)

let artifact_kinds =
  [ "dbt-stats"; "dbt-coverage"; "fleet-telemetry"; "bench"; "trace"; "metrics" ]

let test_check_kind () =
  let doc k = Jsonx.parse (Jsonx.obj [ ("meta", Jsonx.str k) ]) in
  List.iter
    (fun expect ->
      List.iter
        (fun k ->
          let r = An.check_kind ~expect (doc k) in
          if k = expect then
            Alcotest.(check bool) (expect ^ " accepts itself") true (r = Ok ())
          else
            Alcotest.(check bool)
              (expect ^ " rejects " ^ k)
              true (Result.is_error r))
        artifact_kinds)
    artifact_kinds;
  let bare = Jsonx.parse "{}" in
  Alcotest.(check bool) "untagged legacy documents pass by default" true
    (An.check_kind ~expect:"dbt-stats" bare = Ok ());
  Alcotest.(check bool) "untagged documents fail under require" true
    (Result.is_error (An.check_kind ~require:true ~expect:"dbt-coverage" bare));
  Alcotest.(check bool) "non-string meta is rejected" true
    (Result.is_error (An.check_kind ~expect:"bench" (Jsonx.parse "{\"meta\":3}")))

(* ---- 6. a real run: high coverage, observational sink, tagged JSON ---- *)

let run_gcc ?(sink = false) () =
  let spec = W.find "gcc" in
  let iters = max 1 (8_000 / W.insns_per_iteration spec) in
  let user = W.generate spec ~iterations:iters in
  let image = K.build ~timer_period:5_000 ~user_program:user () in
  let sys = D.System.create (D.System.Rules D.Opt.full) in
  if sink then D.System.set_cov_static sys (Some (Cov.Static.create ()));
  K.load image (fun base words -> D.System.load_image sys base words);
  ignore (D.System.run ~max_guest_insns:2_000_000 sys);
  sys

let test_real_run_coverage () =
  let sys = run_gcc ~sink:true () in
  (* coverage_report asserts the tier partition over the real stream *)
  let report = D.System.coverage_report sys in
  Alcotest.(check bool) "rule coverage is high on gcc" true
    (Report.coverage report > 0.5);
  Alcotest.(check bool) "some rule has dynamic hits and static sites" true
    (List.exists
       (fun r -> r.Report.hits > 0 && r.Report.sites > 0)
       report.Report.rules);
  (match report.Report.opportunities with
  | o :: _ ->
    Alcotest.(check bool) "top opportunity carries a savings estimate" true
      (o.Report.o_savings >= 0.)
  | [] -> Alcotest.fail "no rule-learning opportunities ranked on gcc");
  let v = Jsonx.parse (Report.to_json report) in
  Alcotest.(check bool) "report document is kind-tagged" true
    (An.check_kind ~require:true ~expect:"dbt-coverage" v = Ok ());
  (* attaching the static sink must never perturb execution *)
  let plain = run_gcc () in
  Alcotest.(check bool) "static sink is purely observational" true
    (Stats.to_array (D.System.stats plain) = Stats.to_array (D.System.stats sys))

let suite =
  [
    ( "covscope",
      [
        Alcotest.test_case "class table is dense and invertible" `Quick
          test_class_table;
        QCheck_alcotest.to_alcotest prop_classify_total;
        QCheck_alcotest.to_alcotest prop_attr_roundtrip;
        Alcotest.test_case "tier partition on a synthetic stream" `Quick
          test_stats_partition_synthetic;
        Alcotest.test_case "rule ledger flags dead/negative rules" `Quick
          test_rule_ledger_flags;
        Alcotest.test_case "document-kind check across artifact kinds" `Quick
          test_check_kind;
        Alcotest.test_case "real run: coverage, sink, tagged report" `Slow
          test_real_run_coverage;
      ] );
  ]
