open Repro_arm
module T = Repro_tcg
module Bus = Repro_machine.Bus
module Stats = Repro_x86.Stats

(* Shared scaffolding: assemble a program, load it into both the
   QEMU-mode DBT machine and the reference machine, run both to halt,
   and compare guest-visible state. *)

let syscon = Bus.syscon_base

(* Standard epilogue: store r11 to the system controller to power off. *)
let emit_halt asm =
  Asm.mov32 asm 10 syscon;
  Asm.str asm 11 10 0

let assemble program =
  let asm = Asm.create () in
  program asm;
  emit_halt asm;
  Asm.assemble asm

let run_dbt ?(max_insns = 300_000) words =
  let rt = T.Runtime.create () in
  T.Helpers.install rt;
  T.Runtime.load_image rt 0 words;
  let cache = T.Tb.Cache.create () in
  let res =
    T.Engine.run rt cache ~translate:T.Translator_qemu.translate
      ~max_guest_insns:max_insns ()
  in
  (rt, res)

let run_ref ?(max_steps = 300_000) words =
  let m = T.Ref_machine.create () in
  T.Ref_machine.load_image m 0 words;
  let outcome, steps = T.Ref_machine.run m ~max_steps in
  (m, outcome, steps)

let check_halted_dbt (res : T.Engine.result) =
  match res.T.Engine.reason with
  | `Halted _ -> ()
  | `Insn_limit | `Livelock _ | `Deadline -> Alcotest.fail "DBT engine hit the instruction limit"

let compare_state (rt : T.Runtime.t) (m : T.Ref_machine.t) =
  let dbt = Cpu.to_snapshot rt.T.Runtime.cpu in
  let ref_ = Cpu.to_snapshot m.T.Ref_machine.cpu in
  for r = 0 to 12 do
    Alcotest.(check int)
      (Printf.sprintf "r%d" r)
      ref_.Cpu.regs.(r) dbt.Cpu.regs.(r)
  done;
  Alcotest.(check string) "flags"
    (Format.asprintf "%a" Cond.pp_flags (Cond.flags_of_word ref_.Cpu.cpsr))
    (Format.asprintf "%a" Cond.pp_flags (Cond.flags_of_word dbt.Cpu.cpsr))

let differential ?(max_insns = 300_000) program =
  let _, words = assemble program in
  let rt, res = run_dbt ~max_insns words in
  check_halted_dbt res;
  let m, outcome, _steps = run_ref ~max_steps:max_insns words in
  (match outcome with
  | T.Ref_machine.Halted _ -> ()
  | T.Ref_machine.Step_limit -> Alcotest.fail "reference hit the step limit"
  | T.Ref_machine.Decode_error e -> Alcotest.failf "reference decode error: %s" e);
  compare_state rt m;
  (rt, m)

(* --- Tests --- *)

let test_trivial_halt () =
  let _, words = assemble (fun a -> Asm.mov a 11 0) in
  let rt, res = run_dbt words in
  check_halted_dbt res;
  Alcotest.(check bool) "executed a few guest insns" true
    ((T.Runtime.stats rt).Stats.guest_insns >= 3)

let test_arith_differential () =
  ignore
    (differential (fun a ->
         Asm.mov a 0 10;
         Asm.mov a 1 3;
         Asm.add_r a ~s:true 2 0 1;
         Asm.sub_r a ~s:true 3 0 1;
         Asm.mul a 4 0 1;
         Asm.and_r a 5 0 1;
         Asm.orr_r a 6 0 1;
         Asm.eor_r a 7 0 1;
         Asm.mov32 a 8 0xFFFFFFFF;
         Asm.add_r a ~s:true 9 8 8;
         Asm.emit a
           (Insn.make
              (Insn.Dp
                 { op = Insn.ADC; s = true; rd = 11; rn = 0;
                   op2 = Insn.imm_operand_exn 0 }))))

let test_conditional_differential () =
  ignore
    (differential (fun a ->
         Asm.mov a 0 5;
         Asm.cmp a 0 5;
         Asm.mov a ~cond:Cond.EQ 1 1;
         Asm.mov a ~cond:Cond.NE 2 2;
         Asm.cmp a 0 9;
         Asm.mov a ~cond:Cond.LT 3 3;
         Asm.mov a ~cond:Cond.GE 4 4;
         Asm.mov a ~cond:Cond.HI 5 5;
         Asm.mov a ~cond:Cond.LS 6 6;
         Asm.mov a 11 0))

let test_loop_differential () =
  (* Sum 1..100 with a conditional backward branch. *)
  ignore
    (differential (fun a ->
         Asm.mov a 0 0;
         Asm.mov a 1 100;
         Asm.label a "loop";
         Asm.add_r a 0 0 1;
         Asm.sub a ~s:true 1 1 1;
         Asm.branch_to a ~cond:Cond.NE "loop";
         Asm.mov_r a 11 0))

let test_memory_differential () =
  ignore
    (differential (fun a ->
         Asm.mov32 a 0 0x10000;
         Asm.mov32 a 1 0xDEADBEEF;
         Asm.str a 1 0 0;
         Asm.ldr a 2 0 0;
         Asm.str a ~width:Insn.Byte 2 0 100;
         Asm.ldr a ~width:Insn.Byte 3 0 100;
         Asm.str a ~index:Insn.Pre_indexed 1 0 4;
         Asm.str a ~index:Insn.Post_indexed 1 0 4;
         Asm.ldr a 4 0 (-4);
         Asm.mov32 a Insn.sp 0x20000;
         Asm.push a (Asm.reg_mask [ 1; 2; 3 ]);
         Asm.mov a 1 0;
         Asm.mov a 2 0;
         Asm.mov a 3 0;
         Asm.pop a (Asm.reg_mask [ 1; 2; 3 ]);
         Asm.mov a 11 0))

let test_bl_bx_differential () =
  ignore
    (differential (fun a ->
         Asm.mov a 0 0;
         Asm.branch_to a ~link:true "f";
         Asm.add a 0 0 100;
         Asm.branch_to a "end";
         Asm.label a "f";
         Asm.add a 0 0 1;
         Asm.bx a Insn.lr;
         Asm.label a "end";
         Asm.mov_r a 11 0))

let test_system_insns_differential () =
  ignore
    (differential (fun a ->
         Asm.mov32 a 0 0xF0000001;
         Asm.vmsr a 0;
         Asm.vmrs a 1;
         Asm.vmrs a 15;
         Asm.mov a ~cond:Cond.MI 2 1;
         Asm.mrs a 3;
         Asm.mov32 a 4 0x4000;
         Asm.mcr a ~crn:2 4;
         Asm.mrc a ~crn:2 5;
         Asm.mov a 11 0))

let test_svc_roundtrip_differential () =
  ignore
    (differential (fun a ->
         Asm.branch_to a "start";
         Asm.udf a 1;
         Asm.branch_to a "svc_handler";
         Asm.udf a 3;
         Asm.udf a 4;
         Asm.udf a 5;
         Asm.udf a 6;
         Asm.label a "start";
         Asm.mov a 0 5;
         Asm.svc a 1;
         Asm.add a 0 0 1;
         Asm.svc a 2;
         Asm.mov a 11 0;
         Asm.branch_to a "halt";
         Asm.label a "svc_handler";
         Asm.add a 0 0 10;
         Asm.emit a
           (Insn.make
              (Insn.Dp
                 { op = Insn.MOV; s = true; rd = 15; rn = 0;
                   op2 = Insn.Reg_shift_imm { rm = 14; kind = Insn.LSL; amount = 0 } }));
         Asm.label a "halt"))

let test_chaining_happens () =
  let _, words =
    assemble (fun a ->
        Asm.mov a 0 0;
        Asm.mov a 1 200;
        Asm.label a "loop";
        Asm.add_r a 0 0 1;
        Asm.sub a ~s:true 1 1 1;
        Asm.branch_to a ~cond:Cond.NE "loop";
        Asm.mov_r a 11 0)
  in
  let rt, res = run_dbt words in
  check_halted_dbt res;
  let s = T.Runtime.stats rt in
  Alcotest.(check bool) "most jumps chained" true
    (s.Stats.chained_jumps > 10 * s.Stats.engine_returns)

let test_expansion_ratio_sane () =
  let _, words =
    assemble (fun a ->
        Asm.mov a 0 0;
        Asm.mov a 1 1000;
        Asm.mov32 a 2 0x10000;
        Asm.label a "loop";
        Asm.add_r a 0 0 1;
        Asm.str a 0 2 0;
        Asm.ldr a 3 2 0;
        Asm.sub a ~s:true 1 1 1;
        Asm.branch_to a ~cond:Cond.NE "loop";
        Asm.mov_r a 11 0)
  in
  let rt, res = run_dbt words in
  check_halted_dbt res;
  let s = T.Runtime.stats rt in
  let ratio = Stats.host_per_guest s in
  (* The paper's Fig. 15: QEMU system mode ≈ 17.4 host insns per guest
     insn. The exact value depends on the mix; sanity-bound it. *)
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f within [6, 40]" ratio)
    true
    (ratio > 6. && ratio < 40.)

let test_envspec_flag_forms () =
  (* The packed (x86-canonical) and parsed flag forms must agree for
     every NZCV value, and the lazy parse must be observation-free:
     flags_word is identical before and after parsing. *)
  for nzcv = 0 to 15 do
    let w = nzcv lsl 28 in
    Alcotest.(check int) "of∘to = id" w
      (T.Envspec.of_canonical (T.Envspec.to_canonical w));
    Alcotest.(check int) "to∘of = id" w
      (T.Envspec.to_canonical (T.Envspec.of_canonical w));
    let env = Array.make T.Envspec.n_slots 0 in
    env.(T.Envspec.ccr_packed) <- T.Envspec.to_canonical w;
    env.(T.Envspec.ccr_tag) <- 1;
    Alcotest.(check int) "flags_word reads packed" w (T.Envspec.flags_word env);
    let cost = T.Envspec.parse_packed env in
    Alcotest.(check bool) "parse charged" true (cost > 0);
    Alcotest.(check int) "tag cleared" 0 env.(T.Envspec.ccr_tag);
    Alcotest.(check int) "flags_word unchanged" w (T.Envspec.flags_word env);
    Alcotest.(check int) "N slot" (nzcv lsr 3) env.(T.Envspec.cc_n);
    Alcotest.(check int) "Z slot" ((nzcv lsr 2) land 1) env.(T.Envspec.cc_z);
    Alcotest.(check int) "C slot" ((nzcv lsr 1) land 1) env.(T.Envspec.cc_c);
    Alcotest.(check int) "V slot" (nzcv land 1) env.(T.Envspec.cc_v);
    Alcotest.(check int) "second parse free" 0 (T.Envspec.parse_packed env);
    (* set_flags_both agrees with the parse *)
    let env2 = Array.make T.Envspec.n_slots 0 in
    T.Envspec.set_flags_both env2 w;
    Alcotest.(check int) "set_flags_both tag" 0 env2.(T.Envspec.ccr_tag);
    List.iter
      (fun slot -> Alcotest.(check int) "slots agree" env.(slot) env2.(slot))
      [ T.Envspec.cc_n; T.Envspec.cc_z; T.Envspec.cc_c; T.Envspec.cc_v ];
    Alcotest.(check int) "packed agrees" env.(T.Envspec.ccr_packed)
      env2.(T.Envspec.ccr_packed)
  done

let test_cost_scale () =
  let nominal = T.Costs.engine_dispatch () in
  T.Costs.set_scale_pct 200;
  Fun.protect
    ~finally:(fun () -> T.Costs.set_scale_pct 100)
    (fun () ->
      Alcotest.(check int) "scaled accessor" (2 * nominal) (T.Costs.engine_dispatch ());
      Alcotest.(check int) "get_scale_pct" 200 (T.Costs.get_scale_pct ()));
  Alcotest.(check int) "restored" nominal (T.Costs.engine_dispatch ());
  (match T.Costs.set_scale_pct 0 with
  | () -> Alcotest.fail "scale 0 must be rejected"
  | exception Invalid_argument _ -> ());
  (* semantics are scale-invariant; only the modelled cost moves *)
  let _, words =
    assemble (fun a ->
        Asm.mov a 0 0;
        Asm.mov a 1 50;
        Asm.mov32 a 2 0x10000;
        Asm.label a "loop";
        Asm.str a 1 2 0;
        Asm.ldr a 3 2 0;
        Asm.add_r a 0 0 3;
        Asm.sub a ~s:true 1 1 1;
        Asm.branch_to a ~cond:Cond.NE "loop";
        Asm.mov_r a 11 0)
  in
  let host_at pct =
    T.Costs.set_scale_pct pct;
    Fun.protect
      ~finally:(fun () -> T.Costs.set_scale_pct 100)
      (fun () ->
        let rt, res = run_dbt words in
        check_halted_dbt res;
        let s = T.Runtime.stats rt in
        (s.Stats.host_insns, Cpu.to_snapshot rt.T.Runtime.cpu))
  in
  let h100, snap100 = host_at 100 in
  let h200, snap200 = host_at 200 in
  Alcotest.(check bool)
    (Printf.sprintf "scaled run costs more (%d vs %d)" h200 h100)
    true (h200 > h100);
  Alcotest.(check bool) "identical final state" true
    (snap100.Cpu.regs = snap200.Cpu.regs)

let prop_random_block_differential =
  QCheck.Test.make ~count:60 ~name:"random plain blocks: DBT = interpreter"
    (Gen.arbitrary_plain_block 20)
    (fun insns ->
      let program a =
        (* Deterministic initial registers. *)
        List.iteri (fun i v -> Asm.mov32 a i v)
          [ 3; 0x80000000; 17; 0xFFFFFFFF; 42; 5; 0x7FFFFFFF; 9; 2; 1; 0; 123; 77 ];
        List.iter (fun i -> Asm.emit a i) insns;
        Asm.mov a 11 0
      in
      let _, words = assemble program in
      let rt, res = run_dbt words in
      (match res.T.Engine.reason with
      | `Halted _ -> ()
      | `Insn_limit | `Livelock _ | `Deadline -> QCheck.Test.fail_report "dbt insn limit");
      let m, outcome, _ = run_ref words in
      (match outcome with
      | T.Ref_machine.Halted _ -> ()
      | _ -> QCheck.Test.fail_report "ref did not halt");
      let dbt = Cpu.to_snapshot rt.T.Runtime.cpu in
      let ref_ = Cpu.to_snapshot m.T.Ref_machine.cpu in
      let regs_ok = Array.sub dbt.Cpu.regs 0 13 = Array.sub ref_.Cpu.regs 0 13 in
      let flags_ok =
        Cond.flags_of_word dbt.Cpu.cpsr = Cond.flags_of_word ref_.Cpu.cpsr
      in
      if not (regs_ok && flags_ok) then
        QCheck.Test.fail_reportf "state mismatch:@\nDBT: %a@\nREF: %a" Cpu.pp_snapshot
          dbt Cpu.pp_snapshot ref_
      else true)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "tcg.engine",
      [
        Alcotest.test_case "trivial halt" `Quick test_trivial_halt;
        Alcotest.test_case "arithmetic differential" `Quick test_arith_differential;
        Alcotest.test_case "conditional differential" `Quick test_conditional_differential;
        Alcotest.test_case "loop differential" `Quick test_loop_differential;
        Alcotest.test_case "memory differential" `Quick test_memory_differential;
        Alcotest.test_case "bl/bx differential" `Quick test_bl_bx_differential;
        Alcotest.test_case "system insns differential" `Quick test_system_insns_differential;
        Alcotest.test_case "svc roundtrip differential" `Quick test_svc_roundtrip_differential;
        Alcotest.test_case "block chaining effective" `Quick test_chaining_happens;
        Alcotest.test_case "expansion ratio sane" `Quick test_expansion_ratio_sane;
        Alcotest.test_case "cost-model scale" `Quick test_cost_scale;
        Alcotest.test_case "env flag forms (exhaustive)" `Quick test_envspec_flag_forms;
      ] );
    ("tcg.differential", [ q prop_random_block_differential ]);
  ]
