open Repro_arm
module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module R = Repro_rules
module Fi = Repro_faultinject.Faultinject
module Stats = Repro_x86.Stats

(* Robustness tests: differential fuzzing through the exception paths
   (bus faults, undefined instructions, svc), fault-injection
   absorption, and the shadow-verification / quarantine machinery. *)

(* ---- a flat bare-metal harness -------------------------------------

   Vector table at 0 with absorbing handlers (undef/svc return past
   the instruction, data aborts skip the faulting access), then a
   random body with r6 anchored at a scratch RAM window and r9 at an
   unmapped physical window. The epilogue folds r1-r12 (and optionally
   NZCV) plus a rolling hash of the scratch window into r0 and writes
   it to the system controller: the exit code is a checksum of all
   guest-visible state, so a single halt-code comparison covers
   registers, flags and the memory effect. *)

let scratch_base = 0x0001_0000
let fault_window = 0xF100_0000

let flat_image ?(flags_checksum = true) body =
  let a = Asm.create ~origin:0 () in
  Asm.branch_to a "start" (* 0x00 reset *);
  Asm.branch_to a "undef_h" (* 0x04 undefined instruction *);
  Asm.branch_to a "svc_h" (* 0x08 supervisor call *);
  Asm.branch_to a "pabt_h" (* 0x0C prefetch abort *);
  Asm.branch_to a "dabt_h" (* 0x10 data abort *);
  Asm.nop a (* 0x14 reserved *);
  Asm.branch_to a "irq_h" (* 0x18 irq *);
  Asm.label a "undef_h";
  Asm.mov_r a ~s:true 15 14;
  Asm.label a "svc_h";
  Asm.mov_r a ~s:true 15 14;
  Asm.label a "dabt_h";
  Asm.sub a ~s:true 15 14 4 (* skip the faulting access *);
  Asm.label a "irq_h";
  Asm.sub a ~s:true 15 14 4;
  Asm.label a "pabt_h";
  Asm.mov32 a 0 0xDEAD0BAD (* distinctive: must never happen *);
  Asm.branch_to a "halt";
  Asm.label a "start";
  Asm.mov32 a Insn.sp (scratch_base + 0xE000);
  Asm.mov32 a 6 scratch_base;
  Asm.mov32 a 9 fault_window;
  List.iteri (fun i r -> Asm.mov32 a r (0x01010101 * (i + 1))) [ 0; 1; 2; 3; 4; 5; 7; 8 ];
  List.iter (Asm.emit a) body;
  (* fold every data register into r0 *)
  List.iter (fun r -> Asm.eor_r a 0 0 r) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ];
  if flags_checksum then begin
    Asm.mrs a 1;
    Asm.and_ a 1 1 0xF0000000;
    Asm.eor_r a 0 0 1
  end;
  (* rolling hash of the scratch window (covers stray stores) *)
  Asm.mov32 a 2 (scratch_base - 512);
  Asm.mov32 a 3 (scratch_base + 1024);
  Asm.label a "sum";
  Asm.ldr a ~index:Insn.Post_indexed 4 2 4;
  Asm.emit a
    (Insn.make
       (Insn.Dp
          {
            op = Insn.EOR;
            s = false;
            rd = 0;
            rn = 4;
            op2 = Insn.Reg_shift_imm { rm = 0; kind = Insn.ROR; amount = 27 };
          }));
  Asm.cmp_r a 2 3;
  Asm.branch_to a ~cond:Cond.NE "sum";
  Asm.label a "halt";
  Asm.mov32 a 1 Repro_machine.Bus.syscon_base;
  (* isolate the MMIO store in its own (spill-free) block *)
  Asm.branch_to a "halt2";
  Asm.label a "halt2";
  Asm.str a 0 1 0;
  Asm.label a "spin";
  Asm.branch_to a "spin";
  Asm.assemble a

let budget = 400_000

let run_flat_ref (origin, words) =
  let m = T.Ref_machine.create () in
  T.Ref_machine.load_image m origin words;
  match T.Ref_machine.run m ~max_steps:budget with
  | T.Ref_machine.Halted c, _ -> c
  | T.Ref_machine.Step_limit, _ -> Alcotest.fail "reference hit the step limit"
  | T.Ref_machine.Decode_error e, _ -> Alcotest.fail ("reference decode error: " ^ e)

let run_flat_sys ?inject ?ruleset ?shadow_depth ?quarantine_threshold mode
    (origin, words) =
  let sys = D.System.create ?inject ?ruleset ?shadow_depth ?quarantine_threshold mode in
  D.System.load_image sys origin words;
  let res = D.System.run ~max_guest_insns:budget sys in
  (res.T.Engine.reason, sys)

let all_modes =
  ("qemu", D.System.Qemu)
  :: List.map (fun (n, o) -> (n, D.System.Rules o)) D.Opt.levels

(* ---- 1. differential fuzz through the exception paths ---- *)

let prop_faulting_blocks_agree =
  QCheck.Test.make ~count:40 ~name:"faulting blocks agree on all engines"
    (Gen.arbitrary_robust_block 12)
    (fun block ->
      let image = flat_image block in
      let expected = run_flat_ref image in
      List.for_all
        (fun (name, mode) ->
          match fst (run_flat_sys mode image) with
          | `Halted c ->
            if c <> expected then
              QCheck.Test.fail_reportf "%s halted %#x, reference %#x" name c expected
            else true
          | `Insn_limit | `Livelock _ | `Deadline -> QCheck.Test.fail_reportf "%s hit the insn limit" name)
        all_modes)

(* ---- 2. transient fault injection is absorbed ---- *)

let test_transient_identity () =
  let spec = W.find "gcc" in
  let iters = max 1 (8_000 / W.insns_per_iteration spec) in
  let user = W.generate spec ~iterations:iters in
  let image = K.build ~timer_period:5_000 ~user_program:user () in
  let run ?inject () =
    let sys = D.System.create ?inject (D.System.Rules D.Opt.full) in
    K.load image (fun base words -> D.System.load_image sys base words);
    let res = D.System.run ~max_guest_insns:2_000_000 sys in
    (res.T.Engine.reason, D.System.uart_output sys)
  in
  let clean = run () in
  List.iter
    (fun seed ->
      let inject = Fi.create ~seed ~rate:0.001 () in
      (* rule corruption is a surfaceable fault by design; it is
         exercised by the shadow-verification tests below *)
      Fi.set_rate inject Fi.Rule_corrupt 0.0;
      let injected = run ~inject () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d outcome matches clean run" seed)
        true (injected = clean);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d fired faults" seed)
        true
        (Fi.total_fired inject > 0))
    [ 7; 11 ]

(* ---- 3. a corrupted rule is quarantined by shadow verification ---- *)

(* A wrong rule for [add rd, rn, #imm]: computes rn + imm + 1.
   Inserted ahead of the builtins so it wins matching until shadow
   verification quarantines it. *)
let corrupt_rule =
  {
    R.Rule.id = 9999;
    name = "corrupt_add_imm";
    guest =
      [
        R.Rule.G_dp
          { ops = [ Insn.ADD ]; s = false; rd = 0; rn = 1; op2 = R.Rule.G_imm (R.Rule.P_imm 0) };
      ];
    host =
      [
        R.Rule.H_mov { dst = R.Rule.H_param 0; src = R.Rule.H_param 1 };
        R.Rule.H_alu
          { op = `Fixed Repro_x86.Insn.Add; dst = R.Rule.H_param 0; src = R.Rule.H_imm (R.Rule.P_imm 0) };
        R.Rule.H_alu
          { op = `Fixed Repro_x86.Insn.Add; dst = R.Rule.H_param 0; src = R.Rule.H_imm (R.Rule.Fixed 1) };
      ];
    n_reg_params = 2;
    n_imm_params = 1;
    flags = { guest_writes = false; host_clobbers = true; convention = None };
    carry_in = None;
    require_distinct = [];
    source = `Builtin;
  }

let test_corrupt_rule_quarantined () =
  let user =
    let a = Asm.create ~origin:K.user_code_base () in
    Asm.mov32 a Insn.sp K.user_stack_top;
    Asm.mov a 0 5;
    Asm.mov a 6 3;
    Asm.label a "loop";
    Asm.add a 1 0 7;
    Asm.branch_to a "b1";
    Asm.label a "b1";
    Asm.add a 2 0 9;
    Asm.branch_to a "b2";
    Asm.label a "b2";
    Asm.sub ~s:true a 6 6 1;
    Asm.branch_to a ~cond:Cond.NE "loop";
    Asm.add_r a 0 1 2;
    Asm.mov a 7 K.sys_exit;
    Asm.svc a 0;
    snd (Asm.assemble a)
  in
  let image = K.build ~user_program:user () in
  let m = T.Ref_machine.create () in
  K.load image (fun base words -> T.Ref_machine.load_image m base words);
  let expected =
    match T.Ref_machine.run m ~max_steps:1_000_000 with
    | T.Ref_machine.Halted c, _ -> c
    | _ -> Alcotest.fail "reference did not halt"
  in
  let ruleset = R.Ruleset.of_list (corrupt_rule :: R.Builtin.all ()) in
  let sys = D.System.create ~ruleset ~shadow_depth:2 ~quarantine_threshold:2 (D.System.Rules D.Opt.full) in
  K.load image (fun base words -> D.System.load_image sys base words);
  let res = D.System.run ~max_guest_insns:1_000_000 sys in
  let s = D.System.stats sys in
  Alcotest.(check bool) "exit code matches reference" true (res.T.Engine.reason = `Halted expected);
  Alcotest.(check int) "exactly the corrupt rule is quarantined" 1 (R.Ruleset.quarantined_count ruleset);
  Alcotest.(check bool) "divergences were detected" true (s.Stats.shadow_divergences > 0);
  Alcotest.(check bool) "affected blocks fell back to the baseline" true
    (s.Stats.quarantine_fallbacks > 0);
  (* coverage x robustness: the quarantine re-routes the affected
     blocks through the baseline translator, so the corrupted run
     shows baseline-tier retirements a clean run of the same workload
     does not — and the tier partition stays exact through the
     divergence-repair / blacklist path. *)
  let module Cov = Repro_covscope in
  let src = Cov.Report.of_stats s in
  Alcotest.(check (option string)) "tier partition holds after quarantine" None
    (Cov.Report.partition_error src);
  let tier_count report tr =
    report.Cov.Report.tiers.(Cov.Attr.tier_index tr).Cov.Report.n
  in
  let report = Cov.Report.make src in
  Alcotest.(check bool) "the rule tier served before the divergence" true
    (tier_count report Cov.Attr.Rule > 0);
  let clean =
    let sys2 =
      D.System.create ~ruleset:(R.Ruleset.of_list (R.Builtin.all ()))
        (D.System.Rules D.Opt.full)
    in
    K.load image (fun base words -> D.System.load_image sys2 base words);
    ignore (D.System.run ~max_guest_insns:1_000_000 sys2);
    Cov.Report.make (Cov.Report.of_stats (D.System.stats sys2))
  in
  Alcotest.(check bool)
    "quarantine moved subsequent retirements to the baseline tier" true
    (tier_count report Cov.Attr.Baseline > tier_count clean Cov.Attr.Baseline)

(* ---- 4. constant rule-output corruption: shadow repairs to the
   reference result ---- *)

let prop_rule_corruption_repaired =
  QCheck.Test.make ~count:15 ~name:"rule-output corruption repaired by shadow verification"
    (Gen.arbitrary_plain_block 10)
    (fun block ->
      (* no flags checksum: the epilogue's [mrs] makes its block
         unshadowable, so a corruption there could go undetected *)
      let image = flat_image ~flags_checksum:false block in
      let expected = run_flat_ref image in
      let inject = Fi.create ~seed:42 ~rate:0.0 () in
      Fi.set_rate inject Fi.Rule_corrupt 1.0;
      let reason, sys =
        run_flat_sys ~inject ~shadow_depth:8 ~quarantine_threshold:2
          (D.System.Rules D.Opt.full) image
      in
      let s = D.System.stats sys in
      match reason with
      | `Halted c ->
        if c <> expected then
          QCheck.Test.fail_reportf
            "halted %#x, reference %#x (replays %d, divergences %d)" c expected
            s.Stats.shadow_replays s.Stats.shadow_divergences
        else true
      | `Insn_limit | `Livelock _ | `Deadline -> QCheck.Test.fail_reportf "hit the insn limit")

let suite =
  [
    ( "robustness",
      [
        QCheck_alcotest.to_alcotest prop_faulting_blocks_agree;
        Alcotest.test_case "transient injection is absorbed" `Slow test_transient_identity;
        Alcotest.test_case "corrupted rule is quarantined" `Quick test_corrupt_rule_quarantined;
        QCheck_alcotest.to_alcotest prop_rule_corruption_repaired;
      ] );
  ]
