(** Fleet telemetry collector: per-machine interval samples merged
    into one deterministic time-series document.

    Attach with {!Repro_resilience.Fleet.run}[ ~after_each:(fun () ->
    Collector.tick c)]: every [every]-th offered request the collector
    snapshots each machine's always-on observability surface — the
    monotone work clock and perfscope phase totals (with interval
    deltas), the point-in-time {!Repro_x86.Stats} counters (which
    supervision restores rewind — snapshots, not rates), serve/timeout
    /restart counts, depot coverage and trace-ring totals.

    Purely observational: reading the surfaces never perturbs them, so
    a drill with a collector attached reports byte-identically to one
    without. Sampling rides the offered-request counter, so two
    same-seed drills sample at exactly the same points and
    {!to_json} diffs byte-for-byte. *)

type t

val create : ?every:int -> Repro_resilience.Fleet.t -> t
(** [every] is the sampling interval in offered requests (default 4).
    Raises [Invalid_argument] when non-positive. *)

val tick : t -> unit
(** The [after_each] hook: takes a sample when the fleet's offered
    count is a multiple of [every]. *)

val sample : t -> unit
(** Take a sample unconditionally. *)

val finish : t -> unit
(** Take one drill-end sample, unless the last tick already sampled at
    the current offered count. *)

val default_threshold : float
(** Default anomaly threshold (1.0 of Canberra rate distance — well
    above healthy-fleet noise, well below a sabotaged machine's
    near-phase-count score). *)

val to_json : ?threshold:float -> t -> string
(** The telemetry document:
    [{"meta":"fleet-telemetry","every":..,"machines":..,
    "samples":[{at,serving,served_ok,timed_out,shed,breaker_trips,
    machines:[...]},...],
    "final":{machines:[{id,health,work_insns,phases,latency}],
    latency,coverage,anomaly:{threshold,scores,flagged,top}}}].
    The coverage section is the fleet-level merge of every machine's
    translation-quality attribution table
    ({!Repro_covscope.Report.merge}): merged rule+region coverage and
    per-tier retirement/cost totals.
    The anomaly section scores every machine's cost-rate signature
    (phase vector per useful guest insn) against the fleet median
    (see {!Anomaly}); [flagged] lists those above [threshold], [top]
    the highest scorer. *)
