(** Declarative SLOs ("error budgets") evaluated against a finished
    fleet drill.

    An SLO file is one JSON object; every key is optional, unknown
    keys are a hard error (a typo must not silently gate nothing):

    {v
    { "p99_latency_max": 2000000,
      "availability_min": 0.9,
      "deadline_miss_rate_max": 0.05,
      "breaker_trips_max": 4 }
    v}

    Every evaluated quantity is a deterministic function of (fleet
    seed, base snapshot, request count), so a burned budget reproduces
    from the drill seed — [dbt_fleet --slo] turns it into exit code 8. *)

exception Slo_error of string

type t = {
  p99_latency_max : int option;
      (** ceiling on the fleet's p99 serve latency
          ({!Repro_perfscope.Histo.percentile} of
          {!Repro_resilience.Fleet.latency}), retired guest insns *)
  availability_min : float option;
      (** floor on [served_ok / offered] *)
  deadline_miss_rate_max : float option;
      (** ceiling on [timed_out / offered] (0 when nothing offered) *)
  breaker_trips_max : int option;
      (** budget of fleet-wide circuit-breaker trips *)
}

type objective = {
  name : string;  (** ["p99_latency"] etc. *)
  target : float;
  actual : float;
  burned : bool;
}

val of_json : Repro_observe.Jsonx.value -> t
(** Raises {!Slo_error} on a non-object, an unknown key, or a value of
    the wrong shape. *)

val load : string -> t
(** Read and parse an SLO file; {!Slo_error} wraps parse errors with
    the path. Raises [Sys_error] if the file cannot be opened. *)

val evaluate : t -> Repro_resilience.Fleet.t -> objective list
(** One objective per present key, in declaration order. *)

val burned : objective list -> bool

val report_json : objective list -> string
(** [{"meta":"slo-report","burned":..,"objectives":[{name,target,
    actual,burned},...]}] — deterministic, written as a separate
    artifact (never merged into the drill report, which must stay
    identical with and without [--slo]). *)
