(* Deterministic cost-signature outlier scoring.

   The signal per machine is its perfscope phase vector — how many
   retired host instructions went to Translate/Execute/Coordinate/
   Softmmu/Helper/Deliver/Region — normalized by the machine's
   *useful* work (the guest insns its latency histogram accounted to
   served and timed-out requests). Healthy machines serving the same
   workload converge to the same cost-per-useful-insn rates; a
   sabotaged machine burns translation and execution work on attempts
   that crash before producing anything, so its rates blow up even
   though its raw phase *mix* looks normal (a crash reruns the same
   kind of work, it does not change the blend).

   Distance from the fleet median is Canberra (per-dimension
   |a-b|/(a+b), bounded by 1 per dimension), so a machine whose rates
   diverge wildly scores near the phase count and one matching the
   median scores near 0 — scale-free, bounded, and closed-form.

   Everything here is deterministic: no PRNG, no iteration-order
   dependence, no wall clock. Same drill, same scores. *)

let rates ~useful v =
  let d = float_of_int (max 1 useful) in
  Array.map (fun n -> float_of_int n /. d) v

(* Component-wise lower median: robust against a minority of outliers
   (the faulty machines must not drag the reference point toward
   themselves), and deterministic — the lower median is an element of
   the sorted column, never an average. *)
let median rows =
  match rows with
  | [] -> invalid_arg "Anomaly.median: no rows"
  | first :: _ ->
    let dims = Array.length first in
    List.iter
      (fun r ->
        if Array.length r <> dims then
          invalid_arg "Anomaly.median: ragged rows")
      rows;
    let n = List.length rows in
    Array.init dims (fun d ->
        let col = List.map (fun r -> r.(d)) rows in
        let sorted = List.sort compare col in
        List.nth sorted ((n - 1) / 2))

(* Canberra distance: each dimension contributes |a-b|/(a+b), bounded
   by 1, so the total is bounded by the dimension count and a single
   runaway phase cannot drown the rest. Both-zero dimensions
   contribute 0. *)
let distance a b =
  if Array.length a <> Array.length b then
    invalid_arg "Anomaly.distance: dimension mismatch";
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let y = b.(i) in
      let s = x +. y in
      if s > 0. then d := !d +. (Float.abs (x -. y) /. s))
    a;
  !d

let scores machines =
  let rows = List.map (fun (v, useful) -> rates ~useful v) machines in
  let m = median rows in
  List.map (fun r -> distance r m) rows

let flagged ~threshold scores =
  let out = ref [] in
  List.iteri (fun i s -> if s > threshold then out := i :: !out) scores;
  List.rev !out

(* Highest score wins; first index on an exact tie, so the answer is
   stable under list order. *)
let top scores =
  match scores with
  | [] -> None
  | first :: _ ->
    let best = ref 0 and best_s = ref first in
    List.iteri
      (fun i s ->
        if s > !best_s then begin
          best := i;
          best_s := s
        end)
      scores;
    Some !best
