(** Deterministic anomaly detection over per-machine cost signatures.

    Input per machine: its perfscope phase vector
    ({!Repro_perfscope.Scope.phase_vector} — monotone per-phase host
    insn totals) and its {e useful work} (guest insns its latency
    histogram accounted to served/timed-out requests,
    {!Repro_perfscope.Histo.sum} of {!Repro_resilience.Supervisor.latency}).

    Each vector is normalized to host-insns-per-useful-guest-insn
    rates; the fleet's component-wise lower median forms the reference
    signature; a machine's score is the Canberra distance of its rates
    from that median (bounded by the phase count). Healthy machines
    serving the same workload converge to the same rates and score
    near 0; a sabotaged machine burns work on attempts that crash
    before serving anything, so its rates — and score — blow up even
    when its raw phase {e mix} looks normal.

    Closed-form and deterministic: no randomness, no iteration-order
    dependence — the same drill yields the same scores byte-for-byte,
    which is what the CI cross-check against fault-injection ground
    truth relies on. *)

val rates : useful:int -> int array -> float array
(** Per-component [v.(i) / max 1 useful]. *)

val median : float array list -> float array
(** Component-wise lower median (an element of each sorted column,
    never an average — robust against a minority of outliers and
    exactly reproducible). Raises [Invalid_argument] on an empty list
    or ragged rows. *)

val distance : float array -> float array -> float
(** Canberra distance: sum over dimensions of [|a-b| / (a+b)]
    (both-zero dimensions contribute 0) — each dimension bounded by 1,
    so one runaway phase cannot drown the rest. Raises
    [Invalid_argument] on dimension mismatch. *)

val scores : (int array * int) list -> float list
(** [(phase_vector, useful_work)] per machine, in fleet order; returns
    each machine's distance from the fleet median rate signature. *)

val flagged : threshold:float -> float list -> int list
(** Indices whose score strictly exceeds [threshold], ascending. *)

val top : float list -> int option
(** Index of the highest score ([None] on an empty list; first index
    wins an exact tie). *)
