(* Fleet telemetry collector: interval samples of every machine's
   always-on observability surface, merged into one deterministic
   time-series document.

   Sampling rides the drill's own clock — the offered-request counter
   — via [Fleet.run ~after_each], so the sample points of two
   same-seed drills line up exactly. Reading the surfaces (work clock,
   scope, Stats, trace counters, depot coverage) never perturbs them:
   a drill with a collector attached reports byte-identically to one
   without. Two counter families are exposed per machine, because they
   behave differently across supervision restores:

   - "work" counters (work clock, scope phase totals) are monotone —
     a restore takes zero work time — so their interval deltas are the
     cost story;
   - "stats" counters are the machine's point-in-time Stats record,
     which restores rewind; they are snapshots, not rates. *)

module D = Repro_dbt
module Stats = Repro_x86.Stats
module Trace = Repro_observe.Trace
module Jsonx = Repro_observe.Jsonx
module Scope = Repro_perfscope.Scope
module Histo = Repro_perfscope.Histo
module Phase = Repro_perfscope.Phase
module Fleet = Repro_resilience.Fleet
module Supervisor = Repro_resilience.Supervisor
module Health = Repro_resilience.Health
module CovR = Repro_covscope.Report
module CovA = Repro_covscope.Attr

type prev = { mutable work : int; mutable phases : int array }

type t = {
  fleet : Fleet.t;
  every : int;
  prev : prev array;  (* last-sample values, for interval deltas *)
  mutable samples : string list;  (* rendered sample objects, newest first *)
  mutable last_at : int;  (* offered count of the newest sample; -1 = none *)
}

let create ?(every = 4) fleet =
  if every <= 0 then invalid_arg "Collector.create: every <= 0";
  {
    fleet;
    every;
    prev =
      Array.init (Fleet.machines fleet) (fun _ ->
          { work = 0; phases = Array.make Phase.n 0 });
    samples = [];
    last_at = -1;
  }

let phases_obj v =
  Jsonx.obj (List.map (fun p -> (Phase.name p, Jsonx.int v.(Phase.index p))) Phase.all)

let stats_obj (st : Stats.t) =
  Jsonx.obj
    [
      ("guest_insns", Jsonx.int st.Stats.guest_insns);
      ("host_insns", Jsonx.int st.Stats.host_insns);
      ("sync_ops", Jsonx.int st.Stats.sync_ops);
      ("tb_translations", Jsonx.int st.Stats.tb_translations);
      ("shadow_replays", Jsonx.int st.Stats.shadow_replays);
      ("shadow_divergences", Jsonx.int st.Stats.shadow_divergences);
      ("livelocks_recovered", Jsonx.int st.Stats.livelocks_recovered);
    ]

let machine_sample t i =
  let s = Fleet.supervisor t.fleet i in
  let m = Supervisor.machine s in
  let prev = t.prev.(i) in
  let work = Supervisor.work_insns s in
  let phases = Scope.phase_vector (Supervisor.scope s) in
  let phase_delta =
    Array.init Phase.n (fun d -> phases.(d) - prev.phases.(d))
  in
  let ring = Supervisor.trace_ring s in
  let installed, pending = D.System.depot_coverage m in
  let json =
    Jsonx.obj
      [
        ("id", Jsonx.int i);
        ("health",
         Jsonx.str (Health.state_name (Health.state (Supervisor.health s))));
        ("work_insns", Jsonx.int work);
        ("work_delta", Jsonx.int (work - prev.work));
        ("phases", phases_obj phases);
        ("phase_delta", phases_obj phase_delta);
        ("stats", stats_obj (D.System.stats m));
        ("served", Jsonx.int (Supervisor.served s));
        ("timeouts", Jsonx.int (Supervisor.timeouts s));
        ("restarts", Jsonx.int (Health.restarts (Supervisor.health s)));
        ("depot",
         Jsonx.obj
           [
             ("installed", Jsonx.int installed);
             ("pending", Jsonx.int pending);
           ]);
        ("trace",
         Jsonx.obj
           [
             ("total", Jsonx.int (Trace.total ring));
             ("dropped", Jsonx.int (Trace.dropped ring));
           ]);
      ]
  in
  prev.work <- work;
  prev.phases <- phases;
  json

let sample t =
  let machines =
    List.init (Fleet.machines t.fleet) (fun i -> machine_sample t i)
  in
  let json =
    Jsonx.obj
      [
        ("at", Jsonx.int (Fleet.offered t.fleet));
        ("serving", Jsonx.int (Fleet.serving_count t.fleet));
        ("served_ok", Jsonx.int (Fleet.served_ok t.fleet));
        ("timed_out", Jsonx.int (Fleet.timed_out t.fleet));
        ("shed", Jsonx.int (Fleet.shed t.fleet));
        ("breaker_trips", Jsonx.int (Fleet.breaker_trips t.fleet));
        ("machines", Jsonx.arr machines);
      ]
  in
  t.samples <- json :: t.samples;
  t.last_at <- Fleet.offered t.fleet

(* The [Fleet.run ~after_each] hook: sample on every [every]-th
   offered request. *)
let tick t = if Fleet.offered t.fleet mod t.every = 0 then sample t

(* One drill-end sample, unless the last tick already landed there. *)
let finish t = if t.last_at <> Fleet.offered t.fleet then sample t

let default_threshold = 1.0

let signatures t =
  List.init (Fleet.machines t.fleet) (fun i ->
      let s = Fleet.supervisor t.fleet i in
      ( Scope.phase_vector (Supervisor.scope s),
        Histo.sum (Supervisor.latency s) ))

let anomaly_json ~threshold t =
  let scores = Anomaly.scores (signatures t) in
  Jsonx.obj
    [
      ("threshold", Jsonx.float threshold);
      ("scores", Jsonx.arr (List.map Jsonx.float scores));
      ("flagged",
       Jsonx.arr (List.map Jsonx.int (Anomaly.flagged ~threshold scores)));
      ("top",
       match Anomaly.top scores with
       | Some i -> Jsonx.int i
       | None -> "null");
    ]

(* Fleet-level translation quality: the pointwise merge of every
   machine's attribution table. Building the report re-asserts the
   tier partition invariant over the merged counts. *)
let coverage_json t =
  let src =
    CovR.merge
      (List.init (Fleet.machines t.fleet) (fun i ->
           CovR.of_stats
             (D.System.stats
                (Supervisor.machine (Fleet.supervisor t.fleet i)))))
  in
  let r = CovR.make src in
  Jsonx.obj
    ([
       ("guest_insns", Jsonx.int src.CovR.guest_insns);
       ("coverage", Jsonx.float (CovR.coverage r));
     ]
    @ List.filter_map
        (fun tr ->
          let c = r.CovR.tiers.(CovA.tier_index tr) in
          if c.CovR.n = 0 then None
          else
            Some
              ( CovA.tier_name tr,
                Jsonx.obj
                  [ ("insns", Jsonx.int c.CovR.n); ("cost", Jsonx.int c.CovR.cost) ]
              ))
        CovA.all_tiers)

let final_json ~threshold t =
  let machines =
    List.init (Fleet.machines t.fleet) (fun i ->
        let s = Fleet.supervisor t.fleet i in
        Jsonx.obj
          [
            ("id", Jsonx.int i);
            ("health",
             Jsonx.str (Health.state_name (Health.state (Supervisor.health s))));
            ("work_insns", Jsonx.int (Supervisor.work_insns s));
            ("phases", phases_obj (Scope.phase_vector (Supervisor.scope s)));
            ("latency", Histo.to_json (Supervisor.latency s));
          ])
  in
  Jsonx.obj
    [
      ("machines", Jsonx.arr machines);
      ("latency", Histo.to_json (Fleet.latency t.fleet));
      ("coverage", coverage_json t);
      ("anomaly", anomaly_json ~threshold t);
    ]

let to_json ?(threshold = default_threshold) t =
  Jsonx.obj
    [
      ("meta", Jsonx.str "fleet-telemetry");
      ("every", Jsonx.int t.every);
      ("machines", Jsonx.int (Fleet.machines t.fleet));
      ("samples", Jsonx.arr (List.rev t.samples));
      ("final", final_json ~threshold t);
    ]
