(* Declarative service-level objectives over a finished drill.

   An SLO file is one JSON object; every key is optional but unknown
   keys are a hard error — a typo like "availabilty_min" silently
   gating nothing is exactly the failure mode an error budget exists
   to prevent. Evaluation reads only deterministic fleet counters, so
   a burned budget is reproducible from the drill seed. *)

module Jsonx = Repro_observe.Jsonx
module Fleet = Repro_resilience.Fleet
module Histo = Repro_perfscope.Histo

exception Slo_error of string

type t = {
  p99_latency_max : int option;
      (* ceiling on p99 serve latency, retired guest insns *)
  availability_min : float option;  (* floor on served_ok / offered *)
  deadline_miss_rate_max : float option;  (* ceiling on timed_out / offered *)
  breaker_trips_max : int option;  (* budget of circuit-breaker trips *)
}

type objective = {
  name : string;
  target : float;
  actual : float;
  burned : bool;
}

let keys =
  [
    "p99_latency_max";
    "availability_min";
    "deadline_miss_rate_max";
    "breaker_trips_max";
  ]

let of_json v =
  match v with
  | Jsonx.Obj fields ->
    List.iter
      (fun (k, _) ->
        if not (List.mem k keys) then
          raise
            (Slo_error
               (Printf.sprintf "unknown SLO key %S (expected one of: %s)" k
                  (String.concat ", " keys))))
      fields;
    let num k =
      match Jsonx.member k v with
      | None -> None
      | Some (Jsonx.Num f) -> Some f
      | Some _ -> raise (Slo_error (Printf.sprintf "SLO key %S: expected a number" k))
    in
    let int_of k =
      match num k with
      | None -> None
      | Some f ->
        if Float.is_integer f then Some (int_of_float f)
        else raise (Slo_error (Printf.sprintf "SLO key %S: expected an integer" k))
    in
    {
      p99_latency_max = int_of "p99_latency_max";
      availability_min = num "availability_min";
      deadline_miss_rate_max = num "deadline_miss_rate_max";
      breaker_trips_max = int_of "breaker_trips_max";
    }
  | _ -> raise (Slo_error "SLO file must be one JSON object")

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let text = really_input_string ic (in_channel_length ic) in
      match Jsonx.parse text with
      | v -> of_json v
      | exception Jsonx.Parse_error msg ->
        raise (Slo_error (Printf.sprintf "%s: %s" path msg)))

let evaluate t fleet =
  let objective name target actual burned = { name; target; actual; burned } in
  let deadline_miss_rate =
    if Fleet.offered fleet = 0 then 0.
    else float_of_int (Fleet.timed_out fleet) /. float_of_int (Fleet.offered fleet)
  in
  List.filter_map
    (fun o -> o)
    [
      Option.map
        (fun max ->
          let p99 = Histo.percentile (Fleet.latency fleet) 99. in
          objective "p99_latency" (float_of_int max) (float_of_int p99)
            (p99 > max))
        t.p99_latency_max;
      Option.map
        (fun min ->
          let a = Fleet.availability fleet in
          objective "availability" min a (a < min))
        t.availability_min;
      Option.map
        (fun max ->
          objective "deadline_miss_rate" max deadline_miss_rate
            (deadline_miss_rate > max))
        t.deadline_miss_rate_max;
      Option.map
        (fun max ->
          let trips = Fleet.breaker_trips fleet in
          objective "breaker_trips" (float_of_int max) (float_of_int trips)
            (trips > max))
        t.breaker_trips_max;
    ]

let burned objectives = List.exists (fun o -> o.burned) objectives

let report_json objectives =
  Jsonx.obj
    [
      ("meta", Jsonx.str "slo-report");
      ("burned", Jsonx.bool (burned objectives));
      ( "objectives",
        Jsonx.arr
          (List.map
             (fun o ->
               Jsonx.obj
                 [
                   ("name", Jsonx.str o.name);
                   ("target", Jsonx.float o.target);
                   ("actual", Jsonx.float o.actual);
                   ("burned", Jsonx.bool o.burned);
                 ])
             objectives) );
    ]
