

let timer_base = 0xF000_0000
let uart_base = 0xF000_1000
let syscon_base = 0xF000_2000
let device_window = 0xF000_0000
let device_window_end = 0xF000_3000

type t = {
  ram : Bytes.t;
  timer : Devices.Timer.t;
  uart : Devices.Uart.t;
  syscon : Devices.Syscon.t;
  mutable inject : Repro_faultinject.Faultinject.t option;
  mutable device_read_hook : (int -> int -> unit) option;
}

let create ~ram =
  {
    ram;
    timer = Devices.Timer.create ();
    uart = Devices.Uart.create ();
    syscon = Devices.Syscon.create ();
    inject = None;
    device_read_hook = None;
  }

(* A fired bus fault surfaces as a bus error only under the Surface
   behavior; transient faults are counted and the access proceeds
   (modelling an ECC-corrected or retried transfer). *)
let bus_fault t site =
  match t.inject with
  | Some inj ->
    Repro_faultinject.Faultinject.fire inj site
    && Repro_faultinject.Faultinject.surfaces inj
  | None -> false

let ram_size t = Bytes.length t.ram
let in_ram t paddr n = paddr >= 0 && paddr + n <= Bytes.length t.ram

let is_ram t paddr = in_ram t paddr 4

let device_of () paddr =
  if paddr >= timer_base && paddr < uart_base then Some (`Timer, paddr - timer_base)
  else if paddr >= uart_base && paddr < syscon_base then Some (`Uart, paddr - uart_base)
  else if paddr >= syscon_base && paddr < device_window_end then
    Some (`Syscon, paddr - syscon_base)
  else None

let read32 t paddr =
  if bus_fault t Repro_faultinject.Faultinject.Bus_read then Error ()
  else if in_ram t paddr 4 then
    Ok
      (Char.code (Bytes.get t.ram paddr)
      lor (Char.code (Bytes.get t.ram (paddr + 1)) lsl 8)
      lor (Char.code (Bytes.get t.ram (paddr + 2)) lsl 16)
      lor (Char.code (Bytes.get t.ram (paddr + 3)) lsl 24))
  else
    let observed v =
      (match t.device_read_hook with Some h -> h paddr v | None -> ());
      Ok v
    in
    match device_of () paddr with
    | Some (`Timer, off) -> observed (Devices.Timer.read t.timer off)
    | Some (`Uart, off) -> observed (Devices.Uart.read t.uart off)
    | Some (`Syscon, off) -> observed (Devices.Syscon.read t.syscon off)
    | None -> Error ()

let write32 t paddr v =
  if bus_fault t Repro_faultinject.Faultinject.Bus_write then Error ()
  else if in_ram t paddr 4 then begin
    Bytes.set t.ram paddr (Char.chr (v land 0xFF));
    Bytes.set t.ram (paddr + 1) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set t.ram (paddr + 2) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set t.ram (paddr + 3) (Char.chr ((v lsr 24) land 0xFF));
    Ok ()
  end
  else
    match device_of () paddr with
    | Some (`Timer, off) -> Ok (Devices.Timer.write t.timer off v)
    | Some (`Uart, off) -> Ok (Devices.Uart.write t.uart off v)
    | Some (`Syscon, off) -> Ok (Devices.Syscon.write t.syscon off v)
    | None -> Error ()

let read8 t paddr =
  if in_ram t paddr 1 then
    if bus_fault t Repro_faultinject.Faultinject.Bus_read then Error ()
    else Ok (Char.code (Bytes.get t.ram paddr))
  else
    match read32 t (paddr land lnot 3 land 0xFFFFFFFF) with
    | Ok w -> Ok ((w lsr (8 * (paddr land 3))) land 0xFF)
    | Error () -> Error ()

let write8 t paddr v =
  if in_ram t paddr 1 then
    if bus_fault t Repro_faultinject.Faultinject.Bus_write then Error ()
    else Ok (Bytes.set t.ram paddr (Char.chr (v land 0xFF)))
  else if paddr >= device_window && paddr < device_window_end then
    write32 t (paddr land lnot 3 land 0xFFFFFFFF) (v land 0xFF)
  else Error ()

let tick t n = Devices.Timer.tick t.timer n
let irq_line t = Devices.Timer.irq_line t.timer
let halted t = Devices.Syscon.halted t.syscon
