open Repro_common

module Timer = struct
  type t = {
    mutable enabled : bool;
    mutable period : int;
    mutable count : int;
    mutable pending : bool;
    mutable raised : int;
    mutable trace : Repro_observe.Trace.t option;
        (* observational only: never exported/imported *)
  }

  let create () =
    { enabled = false; period = 0; count = 0; pending = false; raised = 0;
      trace = None }

  let set_trace t tr = t.trace <- tr

  let read t = function
    | 0x0 -> if t.enabled then 1 else 0
    | 0x4 -> Word32.mask t.period
    | 0x8 -> Word32.mask t.count
    | _ -> 0

  let write t off v =
    match off with
    | 0x0 -> t.enabled <- Word32.bit v 0
    | 0x4 -> t.period <- v
    | 0xC -> t.pending <- false
    | _ -> ()

  let tick t n =
    if t.enabled && t.period > 0 then begin
      t.count <- t.count + n;
      while t.count >= t.period do
        t.count <- t.count - t.period;
        if not t.pending then begin
          t.raised <- t.raised + 1;
          match t.trace with
          | Some tr ->
            Repro_observe.Trace.emit tr ~a:t.raised Repro_observe.Trace.Irq
              "timer_raise"
          | None -> ()
        end;
        t.pending <- true
      done
    end

  let irq_line t = t.pending
  let irqs_raised t = t.raised

  let export t =
    [| (if t.enabled then 1 else 0); t.period; t.count; (if t.pending then 1 else 0);
       t.raised |]

  let import t a =
    if Array.length a <> 5 then invalid_arg "Timer.import: bad state";
    t.enabled <- a.(0) <> 0;
    t.period <- a.(1);
    t.count <- a.(2);
    t.pending <- a.(3) <> 0;
    t.raised <- a.(4)
end

module Uart = struct
  type t = { buf : Buffer.t }

  let create () = { buf = Buffer.create 256 }
  let read _t = function 0x4 -> 1 (* always ready *) | _ -> 0

  let write t off v =
    match off with 0x0 -> Buffer.add_char t.buf (Char.chr (v land 0xFF)) | _ -> ()

  let output t = Buffer.contents t.buf

  let import t s =
    Buffer.clear t.buf;
    Buffer.add_string t.buf s
end

module Syscon = struct
  type t = { mutable halted : Word32.t option }

  let create () = { halted = None }
  let read _ _ = 0
  let write t off v = match off with 0 -> t.halted <- Some v | _ -> ()
  let halted t = t.halted
  let import t h = t.halted <- h
end
