(** Memory-mapped devices of the emulated platform.

    The platform has a timer (the IRQ source driving the paper's
    interrupt-check scenario), a UART for guest console output, and a
    system controller the guest writes to power off. Device time
    advances with retired guest instructions, so behaviour is
    deterministic and identical under the interpreter and both DBT
    engines. *)

open Repro_common

(** {2 Timer} *)

module Timer : sig
  type t

  val create : unit -> t

  val read : t -> int -> Word32.t
  (** Register offsets: 0x0 CTRL (bit0 enable), 0x4 PERIOD (guest
      instructions between IRQs), 0x8 COUNT (read-only), 0xC ACK
      (write-only). *)

  val write : t -> int -> Word32.t -> unit
  val tick : t -> int -> unit
  (** Advance device time by [n] retired guest instructions. *)

  val irq_line : t -> bool
  (** Level of the timer's interrupt output. *)

  val set_trace : t -> Repro_observe.Trace.t option -> unit
  (** Attach the event ring: every 0->1 transition of the IRQ line
      emits an [Irq]/"timer_raise" event. Not part of {!export}. *)

  val irqs_raised : t -> int

  val export : t -> int array
  (** Complete register state for machine snapshots. *)

  val import : t -> int array -> unit
end

(** {2 UART} *)

module Uart : sig
  type t

  val create : unit -> t
  val read : t -> int -> Word32.t
  (** 0x0 DATA, 0x4 STATUS (always ready). *)

  val write : t -> int -> Word32.t -> unit
  val output : t -> string
  (** Everything the guest wrote to DATA. *)

  val import : t -> string -> unit
  (** Replace the accumulated output (snapshot restore). *)
end

(** {2 System controller} *)

module Syscon : sig
  type t

  val create : unit -> t
  val read : t -> int -> Word32.t
  val write : t -> int -> Word32.t -> unit
  (** Writing to offset 0 powers the machine off with the written
      exit code. *)

  val halted : t -> Word32.t option
  val import : t -> Word32.t option -> unit
end
