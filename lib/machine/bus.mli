(** The guest physical address space: RAM at 0x0 plus the MMIO device
    window at 0xF000_0000. The RAM backing store is shared with the
    host execution context so DBT-emitted code can access guest memory
    directly after translation, while device pages always take the
    slow path (they are never entered into the TLB). *)

open Repro_common

val timer_base : Word32.t
val uart_base : Word32.t
val syscon_base : Word32.t

type t = {
  ram : Bytes.t;
  timer : Devices.Timer.t;
  uart : Devices.Uart.t;
  syscon : Devices.Syscon.t;
  mutable inject : Repro_faultinject.Faultinject.t option;
      (** When armed, bus accesses pass through the fault injector:
          transient faults are counted and proceed, surfaced faults
          become bus errors. Armed by [Repro_dbt.System.run] so image
          loading is never perturbed. *)
  mutable device_read_hook : (Word32.t -> Word32.t -> unit) option;
      (** Observer of successful MMIO reads [(paddr, value)] — the
          event journal records them at their retired-instruction
          timestamps. Transient run state, never serialized. *)
}

val create : ram:Bytes.t -> t
val ram_size : t -> int

val is_ram : t -> Word32.t -> bool
(** Physical page is ordinary RAM (safe to map in the TLB). *)

val read32 : t -> Word32.t -> (Word32.t, unit) result
(** [Error ()] is a bus error (unmapped physical address). Addresses
    must be 4-aligned (checked by the MMU before dispatch). *)

val write32 : t -> Word32.t -> Word32.t -> (unit, unit) result
val read8 : t -> Word32.t -> (int, unit) result
val write8 : t -> Word32.t -> int -> (unit, unit) result

val tick : t -> int -> unit
(** Advance device time by [n] retired guest instructions. *)

val irq_line : t -> bool
val halted : t -> Word32.t option
