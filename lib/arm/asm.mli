(** A small two-pass assembler: emit {!Insn.t} values and label
    references, then {!assemble} encodes everything to instruction
    words with branch offsets resolved. The mini guest OS and the
    workload generators are written against this module. *)

open Repro_common

type t

val create : ?origin:Word32.t -> unit -> t
(** [origin] is the load address of the first word (default 0). *)

val here : t -> Word32.t
(** Address of the next word to be emitted. *)

val label : t -> string -> unit
(** Define [name] at the current address; raises on redefinition. *)

val lookup : t -> string -> Word32.t
(** Address of a defined label (after assembly or for already-defined
    labels). *)

val labels : t -> (Word32.t * string) list
(** All defined labels sorted by (address, name) — the symbol table
    for profiler symbolization; deterministic across runs. *)

val emit : t -> Insn.t -> unit
val word : t -> Word32.t -> unit
(** Emit a raw data word. *)

val branch_to : t -> ?cond:Cond.t -> ?link:bool -> string -> unit
(** Emit a [b]/[bl] to a label (forward references allowed). *)

val mov32 : t -> Insn.reg -> Word32.t -> unit
(** Load an arbitrary constant with [movw] (+ [movt] when needed). *)

val mov32_label : t -> Insn.reg -> string -> unit
(** Load a label's address (always movw+movt, resolved at assembly). *)

val assemble : t -> Word32.t * Word32.t array
(** Resolve fixups and encode; returns [(origin, words)]. Raises
    [Failure] on undefined labels. *)

val assemble_insns : t -> Word32.t * Insn.t array
(** Like {!assemble} but returns the resolved instruction stream
    (data words appear as decoded instructions or [Udf]); mainly for
    tests and disassembly listings. *)

(** {2 Instruction shorthands}

    Thin wrappers over {!Insn} constructors, all taking the builder
    first so kernel sources read top-to-bottom. *)

val mov : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> int -> unit
(** [mov t rd imm] with a modified-immediate operand (must encode). *)

val mov_r : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> unit
val mvn : t -> ?cond:Cond.t -> Insn.reg -> int -> unit
val add : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> int -> unit
val add_r : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> Insn.reg -> unit
val sub : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> int -> unit
val sub_r : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> Insn.reg -> unit
val rsb : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> int -> unit
val and_ : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> int -> unit
val and_r : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> Insn.reg -> unit
val orr : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> int -> unit
val orr_r : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> Insn.reg -> unit
val eor_r : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> Insn.reg -> unit
val lsl_ : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> int -> unit
val lsr_ : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> int -> unit
val cmp : t -> ?cond:Cond.t -> Insn.reg -> int -> unit
val cmp_r : t -> ?cond:Cond.t -> Insn.reg -> Insn.reg -> unit
val tst : t -> ?cond:Cond.t -> Insn.reg -> int -> unit
val mul : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> Insn.reg -> unit
val umull : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> Insn.reg -> Insn.reg -> unit
(** [umull t rdlo rdhi rm rn]. *)

val clz : t -> ?cond:Cond.t -> Insn.reg -> Insn.reg -> unit
(** [clz t rd rm] — count leading zeros. *)

val ldrs : t -> ?cond:Cond.t -> ?half:bool -> ?index:Insn.index_mode -> Insn.reg -> Insn.reg -> int -> unit
(** [ldrs t rd rn off] — LDRSB (or LDRSH with [~half:true]),
    immediate-offset form. *)

val smull : t -> ?cond:Cond.t -> ?s:bool -> Insn.reg -> Insn.reg -> Insn.reg -> Insn.reg -> unit
val ldr : t -> ?cond:Cond.t -> ?width:Insn.width -> ?index:Insn.index_mode -> Insn.reg -> Insn.reg -> int -> unit
(** [ldr t rd rn off] — immediate offset form. *)

val ldr_r : t -> ?cond:Cond.t -> Insn.reg -> Insn.reg -> Insn.reg -> unit
val str : t -> ?cond:Cond.t -> ?width:Insn.width -> ?index:Insn.index_mode -> Insn.reg -> Insn.reg -> int -> unit
val str_r : t -> ?cond:Cond.t -> Insn.reg -> Insn.reg -> Insn.reg -> unit
val push : t -> ?cond:Cond.t -> int -> unit
(** [push t mask] = [stmdb sp!, {mask}]. *)

val pop : t -> ?cond:Cond.t -> int -> unit
(** [pop t mask] = [ldmia sp!, {mask}]. *)

val bx : t -> ?cond:Cond.t -> Insn.reg -> unit
val svc : t -> ?cond:Cond.t -> int -> unit
val nop : t -> unit
val mrs : t -> ?spsr:bool -> Insn.reg -> unit
val msr : t -> ?spsr:bool -> ?flags:bool -> ?control:bool -> Insn.reg -> unit
val cps : t -> disable:bool -> unit
val mcr : t -> ?opc1:int -> crn:int -> ?crm:int -> ?opc2:int -> Insn.reg -> unit
val mrc : t -> ?opc1:int -> crn:int -> ?crm:int -> ?opc2:int -> Insn.reg -> unit
val vmsr : t -> Insn.reg -> unit
val vmrs : t -> Insn.reg -> unit
val udf : t -> int -> unit
val reg_mask : int list -> int
(** Register list to LDM/STM mask. *)
