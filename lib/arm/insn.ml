open Repro_common

type reg = int

let sp = 13
let lr = 14
let pc = 15

let reg n =
  if n < 0 || n > 15 then invalid_arg (Printf.sprintf "Insn.reg: %d" n);
  n

type dp_op =
  | AND | EOR | SUB | RSB | ADD | ADC | SBC | RSC
  | TST | TEQ | CMP | CMN | ORR | MOV | BIC | MVN

let dp_op_is_test = function
  | TST | TEQ | CMP | CMN -> true
  | AND | EOR | SUB | RSB | ADD | ADC | SBC | RSC | ORR | MOV | BIC | MVN -> false

let dp_op_to_string = function
  | AND -> "and"
  | EOR -> "eor"
  | SUB -> "sub"
  | RSB -> "rsb"
  | ADD -> "add"
  | ADC -> "adc"
  | SBC -> "sbc"
  | RSC -> "rsc"
  | TST -> "tst"
  | TEQ -> "teq"
  | CMP -> "cmp"
  | CMN -> "cmn"
  | ORR -> "orr"
  | MOV -> "mov"
  | BIC -> "bic"
  | MVN -> "mvn"

let dp_op_code = function
  | AND -> 0
  | EOR -> 1
  | SUB -> 2
  | RSB -> 3
  | ADD -> 4
  | ADC -> 5
  | SBC -> 6
  | RSC -> 7
  | TST -> 8
  | TEQ -> 9
  | CMP -> 10
  | CMN -> 11
  | ORR -> 12
  | MOV -> 13
  | BIC -> 14
  | MVN -> 15

let dp_op_of_code = function
  | 0 -> AND
  | 1 -> EOR
  | 2 -> SUB
  | 3 -> RSB
  | 4 -> ADD
  | 5 -> ADC
  | 6 -> SBC
  | 7 -> RSC
  | 8 -> TST
  | 9 -> TEQ
  | 10 -> CMP
  | 11 -> CMN
  | 12 -> ORR
  | 13 -> MOV
  | 14 -> BIC
  | 15 -> MVN
  | n -> invalid_arg (Printf.sprintf "dp_op_of_code: %d" n)

type shift_kind = LSL | LSR | ASR | ROR

let shift_kind_code = function LSL -> 0 | LSR -> 1 | ASR -> 2 | ROR -> 3

let shift_kind_of_code = function
  | 0 -> LSL
  | 1 -> LSR
  | 2 -> ASR
  | 3 -> ROR
  | n -> invalid_arg (Printf.sprintf "shift_kind_of_code: %d" n)

let shift_kind_to_string = function
  | LSL -> "lsl"
  | LSR -> "lsr"
  | ASR -> "asr"
  | ROR -> "ror"

type operand2 =
  | Imm of { imm8 : int; rot : int }
  | Reg_shift_imm of { rm : reg; kind : shift_kind; amount : int }
  | Reg_shift_reg of { rm : reg; kind : shift_kind; rs : reg }

let imm_operand value =
  let value = Word32.mask value in
  let rec search rot =
    if rot > 15 then None
    else
      let rotated = Word32.rotate_right value (32 - (2 * rot)) in
      if rotated land 0xFF = rotated then Some (Imm { imm8 = rotated; rot })
      else search (rot + 1)
  in
  search 0

let imm_operand_exn value =
  match imm_operand value with
  | Some op2 -> op2
  | None -> invalid_arg (Printf.sprintf "imm_operand_exn: 0x%x not encodable" value)

(* Shift semantics shared by the interpreter and operand evaluation.
   [amount] is the effective shift count (may exceed 31 for
   register-specified shifts). Returns value and carry-out. *)
let apply_shift kind value amount ~carry =
  if amount = 0 then (value, carry)
  else
    match kind with
    | LSL ->
      if amount > 32 then (0, false)
      else if amount = 32 then (0, Word32.bit value 0)
      else (Word32.shift_left value amount, Word32.bit value (32 - amount))
    | LSR ->
      if amount > 32 then (0, false)
      else if amount = 32 then (0, Word32.bit value 31)
      else (Word32.shift_right_logical value amount, Word32.bit value (amount - 1))
    | ASR ->
      if amount >= 32 then
        let bit31 = Word32.bit value 31 in
        ((if bit31 then Word32.max_value else 0), bit31)
      else (Word32.shift_right_arith value amount, Word32.bit value (amount - 1))
    | ROR ->
      let eff = amount land 31 in
      if eff = 0 then (value, Word32.bit value 31)
      else
        let r = Word32.rotate_right value eff in
        (r, Word32.bit r 31)

let operand2_value op2 regs ~carry =
  match op2 with
  | Imm { imm8; rot } ->
    let v = Word32.rotate_right imm8 (2 * rot) in
    let c = if rot = 0 then carry else Word32.bit v 31 in
    (v, c)
  | Reg_shift_imm { rm; kind; amount } -> apply_shift kind (regs rm) amount ~carry
  | Reg_shift_reg { rm; kind; rs } ->
    (* Model simplification (see DESIGN.md): register-specified shift
       amounts are taken mod 32, matching the host's shift semantics. *)
    apply_shift kind (regs rm) (regs rs land 0x1F) ~carry

type width = Word | Byte | Half
type index_mode = Offset | Pre_indexed | Post_indexed

type mem_offset =
  | Imm_off of int
  | Reg_off of { rm : reg; kind : shift_kind; amount : int; subtract : bool }

type ldm_kind = IA | DB

type op =
  | Dp of { op : dp_op; s : bool; rd : reg; rn : reg; op2 : operand2 }
  | Mul of { s : bool; rd : reg; rn : reg; rm : reg; acc : reg option }
  | Mull of { signed : bool; s : bool; rdlo : reg; rdhi : reg; rn : reg; rm : reg }
  | Clz of { rd : reg; rm : reg }
  | Ldr of { width : width; rd : reg; rn : reg; off : mem_offset; index : index_mode }
  | Ldrs of { half : bool; rd : reg; rn : reg; off : mem_offset; index : index_mode }
  | Str of { width : width; rd : reg; rn : reg; off : mem_offset; index : index_mode }
  | Ldm of { kind : ldm_kind; rn : reg; writeback : bool; regs : int }
  | Stm of { kind : ldm_kind; rn : reg; writeback : bool; regs : int }
  | B of { link : bool; offset : int }
  | Bx of reg
  | Movw of { rd : reg; imm16 : int }
  | Movt of { rd : reg; imm16 : int }
  | Mrs of { rd : reg; spsr : bool }
  | Msr of { spsr : bool; write_flags : bool; write_control : bool; rm : reg }
  | Svc of int
  | Cps of { disable : bool }
  | Mcr of { opc1 : int; rt : reg; crn : int; crm : int; opc2 : int }
  | Mrc of { opc1 : int; rt : reg; crn : int; crm : int; opc2 : int }
  | Vmsr of { rt : reg }
  | Vmrs of { rt : reg }
  | Nop
  | Udf of int

type t = { cond : Cond.t; op : op }

let make ?(cond = Cond.AL) op = { cond; op }

let is_system_level { op; _ } =
  match op with
  | Mrs _ | Msr _ | Svc _ | Cps _ | Mcr _ | Mrc _ | Vmsr _ | Vmrs _ | Udf _ -> true
  | Dp _ | Mul _ | Mull _ | Clz _ | Ldr _ | Ldrs _ | Str _ | Ldm _ | Stm _ | B _
  | Bx _ | Movw _ | Movt _ | Nop -> false

let is_memory_access { op; _ } =
  match op with
  | Ldr _ | Ldrs _ | Str _ | Ldm _ | Stm _ -> true
  | Dp _ | Mul _ | Mull _ | Clz _ | B _ | Bx _ | Movw _ | Movt _ | Mrs _ | Msr _
  | Svc _ | Cps _ | Mcr _ | Mrc _ | Vmsr _ | Vmrs _ | Nop | Udf _ -> false

let writes_flags { op; _ } =
  match op with
  | Dp { op; s; _ } -> s || dp_op_is_test op
  | Mul { s; _ } | Mull { s; _ } -> s
  | Vmrs { rt } -> rt = pc
  | Msr { spsr = false; write_flags = true; _ } -> true
  | Msr _ | Clz _ | Ldr _ | Ldrs _ | Str _ | Ldm _ | Stm _ | B _ | Bx _ | Movw _
  | Movt _ | Mrs _ | Svc _ | Cps _ | Mcr _ | Mrc _ | Vmsr _ | Nop | Udf _ -> false

let reads_flags { cond; op } =
  cond <> Cond.AL
  ||
  match op with
  | Dp { op = ADC | SBC | RSC; _ } -> true
  | Mrs { spsr = false; _ } -> true
  | Dp _ | Mul _ | Mull _ | Clz _ | Ldr _ | Ldrs _ | Str _ | Ldm _ | Stm _ | B _
  | Bx _ | Movw _ | Movt _ | Mrs _ | Msr _ | Svc _ | Cps _ | Mcr _ | Mrc _
  | Vmsr _ | Vmrs _ | Nop | Udf _ -> false

let bitmask r = 1 lsl r

let op2_uses = function
  | Imm _ -> 0
  | Reg_shift_imm { rm; _ } -> bitmask rm
  | Reg_shift_reg { rm; rs; _ } -> bitmask rm lor bitmask rs

let defs { op; _ } =
  match op with
  | Dp { op = dpo; rd; _ } -> if dp_op_is_test dpo then 0 else bitmask rd
  | Mul { rd; _ } -> bitmask rd
  | Mull { rdlo; rdhi; _ } -> bitmask rdlo lor bitmask rdhi
  | Clz { rd; _ } -> bitmask rd
  | Ldr { rd; rn; index; _ } | Ldrs { rd; rn; index; _ } ->
    bitmask rd lor (match index with Offset -> 0 | Pre_indexed | Post_indexed -> bitmask rn)
  | Str { rn; index; _ } ->
    (match index with Offset -> 0 | Pre_indexed | Post_indexed -> bitmask rn)
  | Ldm { rn; writeback; regs; _ } -> regs lor if writeback then bitmask rn else 0
  | Stm { rn; writeback; _ } -> if writeback then bitmask rn else 0
  | B { link; _ } -> (if link then bitmask lr else 0) lor bitmask pc
  | Bx _ -> bitmask pc
  | Movw { rd; _ } | Movt { rd; _ } -> bitmask rd
  | Mrs { rd; _ } -> bitmask rd
  | Mrc { rt; _ } -> if rt = pc then 0 else bitmask rt
  | Vmrs { rt } -> if rt = pc then 0 else bitmask rt
  | Msr _ | Svc _ | Cps _ | Mcr _ | Vmsr _ | Nop | Udf _ -> 0

let uses { op; _ } =
  match op with
  | Dp { op = dpo; rn; op2; _ } ->
    let rn_use = match dpo with MOV | MVN -> 0 | _ -> bitmask rn in
    rn_use lor op2_uses op2
  | Mul { rn; rm; acc; _ } ->
    bitmask rn lor bitmask rm lor (match acc with Some ra -> bitmask ra | None -> 0)
  | Mull { rn; rm; _ } -> bitmask rn lor bitmask rm
  | Clz { rm; _ } -> bitmask rm
  | Ldr { rn; off; _ } | Ldrs { rn; off; _ } ->
    bitmask rn lor (match off with Imm_off _ -> 0 | Reg_off { rm; _ } -> bitmask rm)
  | Str { rd; rn; off; _ } ->
    bitmask rd lor bitmask rn
    lor (match off with Imm_off _ -> 0 | Reg_off { rm; _ } -> bitmask rm)
  | Ldm { rn; _ } -> bitmask rn
  | Stm { rn; regs; _ } -> bitmask rn lor regs
  | B _ -> 0
  | Bx rm -> bitmask rm
  | Movw _ -> 0
  | Movt { rd; _ } -> bitmask rd
  | Mrs _ -> 0
  | Msr { rm; _ } -> bitmask rm
  | Mcr { rt; _ } -> bitmask rt
  | Vmsr { rt } -> bitmask rt
  | Svc _ | Cps _ | Mrc _ | Vmrs _ | Nop | Udf _ -> 0

let is_branch t =
  match t.op with
  | B _ | Bx _ -> true
  | _ -> defs t land bitmask pc <> 0

(* ---------- coverage classes ----------

   The opcode-class enumeration of the translation-quality
   observatory: every decoded instruction maps to exactly one class,
   derived from the one [op] enumeration above. [classify] matches
   every [op] constructor explicitly (no wildcard), so adding a new
   decoder variant without deciding its coverage class is a compile
   error under the dev profile's warning-8-as-error — the coverage
   matrix can never silently drift from the decoder. *)

type cls =
  | C_dp of dp_op
  | C_mul
  | C_mull
  | C_clz
  | C_ldr
  | C_ldrs
  | C_str
  | C_ldm
  | C_stm
  | C_b
  | C_bx
  | C_movw
  | C_movt
  | C_mrs
  | C_msr
  | C_svc
  | C_cps
  | C_mcr
  | C_mrc
  | C_vmsr
  | C_vmrs
  | C_nop
  | C_udf

let classify { op; _ } =
  match op with
  | Dp { op; _ } -> C_dp op
  | Mul _ -> C_mul
  | Mull _ -> C_mull
  | Clz _ -> C_clz
  | Ldr _ -> C_ldr
  | Ldrs _ -> C_ldrs
  | Str _ -> C_str
  | Ldm _ -> C_ldm
  | Stm _ -> C_stm
  | B _ -> C_b
  | Bx _ -> C_bx
  | Movw _ -> C_movw
  | Movt _ -> C_movt
  | Mrs _ -> C_mrs
  | Msr _ -> C_msr
  | Svc _ -> C_svc
  | Cps _ -> C_cps
  | Mcr _ -> C_mcr
  | Mrc _ -> C_mrc
  | Vmsr _ -> C_vmsr
  | Vmrs _ -> C_vmrs
  | Nop -> C_nop
  | Udf _ -> C_udf

(* Non-dp classes in fixed index order after the 16 dp opcodes. *)
let non_dp_classes =
  [
    C_mul; C_mull; C_clz; C_ldr; C_ldrs; C_str; C_ldm; C_stm; C_b; C_bx; C_movw;
    C_movt; C_mrs; C_msr; C_svc; C_cps; C_mcr; C_mrc; C_vmsr; C_vmrs; C_nop;
    C_udf;
  ]

let all_classes =
  List.map (fun op -> C_dp op) (List.init 16 dp_op_of_code) @ non_dp_classes

let n_classes = List.length all_classes

let cls_index = function
  | C_dp op -> dp_op_code op
  | c ->
    let rec find i = function
      | [] -> assert false
      | hd :: tl -> if hd = c then i else find (i + 1) tl
    in
    16 + find 0 non_dp_classes

let cls_of_index i =
  if i < 0 || i >= n_classes then invalid_arg (Printf.sprintf "cls_of_index: %d" i)
  else if i < 16 then C_dp (dp_op_of_code i)
  else List.nth non_dp_classes (i - 16)

let cls_name = function
  | C_dp op -> "dp." ^ dp_op_to_string op
  | C_mul -> "mul"
  | C_mull -> "mull"
  | C_clz -> "clz"
  | C_ldr -> "ldr"
  | C_ldrs -> "ldrs"
  | C_str -> "str"
  | C_ldm -> "ldm"
  | C_stm -> "stm"
  | C_b -> "b"
  | C_bx -> "bx"
  | C_movw -> "movw"
  | C_movt -> "movt"
  | C_mrs -> "mrs"
  | C_msr -> "msr"
  | C_svc -> "svc"
  | C_cps -> "cps"
  | C_mcr -> "mcr"
  | C_mrc -> "mrc"
  | C_vmsr -> "vmsr"
  | C_vmrs -> "vmrs"
  | C_nop -> "nop"
  | C_udf -> "udf"

(* Idiom: a small within-class shape refinement (operand form, index
   mode, S bit), so the opportunity report can name the concrete
   pattern a new rule would have to cover. Bit 3 is "conditional" for
   every class; bits 0-2 are the per-class shape. *)

let idiom_conditional = 8

let idiom_of { cond; op } =
  let shape =
    match op with
    | Dp { s; op2; _ } ->
      let form =
        match op2 with
        | Imm _ -> 0
        | Reg_shift_imm { amount = 0; kind = LSL; _ } -> 1
        | Reg_shift_imm _ -> 2
        | Reg_shift_reg _ -> 3
      in
      form lor (if s then 4 else 0)
    | Ldr { index; off; _ } | Ldrs { index; off; _ } | Str { index; off; _ } ->
      (match index with Offset -> 0 | Pre_indexed -> 1 | Post_indexed -> 2)
      lor (match off with Imm_off _ -> 0 | Reg_off _ -> 4)
    | Ldm { writeback; regs; _ } ->
      (if writeback then 1 else 0) lor if regs land (1 lsl pc) <> 0 then 2 else 0
    | Stm { writeback; _ } -> if writeback then 1 else 0
    | Mul { s; acc; _ } -> (if s then 1 else 0) lor if acc <> None then 2 else 0
    | Mull { signed; s; _ } -> (if s then 1 else 0) lor if signed then 2 else 0
    | B { link; _ } -> if link then 1 else 0
    | Msr { write_control; _ } -> if write_control then 1 else 0
    | Clz _ | Bx _ | Movw _ | Movt _ | Mrs _ | Svc _ | Cps _ | Mcr _ | Mrc _
    | Vmsr _ | Vmrs _ | Nop | Udf _ -> 0
  in
  shape lor if cond <> Cond.AL then idiom_conditional else 0

let n_idioms = 16

let idiom_name cls idiom =
  let shape = idiom land lnot idiom_conditional in
  let base =
    match cls with
    | C_dp _ ->
      let form =
        match shape land 3 with
        | 0 -> "imm"
        | 1 -> "reg"
        | 2 -> "shift"
        | _ -> "regshift"
      in
      if shape land 4 <> 0 then form ^ ".s" else form
    | C_ldr | C_ldrs | C_str ->
      let index =
        match shape land 3 with 0 -> "off" | 1 -> "pre" | _ -> "post"
      in
      index ^ if shape land 4 <> 0 then ".reg" else ".imm"
    | C_ldm ->
      String.concat "."
        (("plain" :: (if shape land 1 <> 0 then [ "wb" ] else []))
        @ if shape land 2 <> 0 then [ "pc" ] else [])
    | C_stm -> if shape land 1 <> 0 then "wb" else "plain"
    | C_mul ->
      String.concat "."
        (("plain" :: (if shape land 1 <> 0 then [ "s" ] else []))
        @ if shape land 2 <> 0 then [ "acc" ] else [])
    | C_mull ->
      String.concat "."
        (("plain" :: (if shape land 1 <> 0 then [ "s" ] else []))
        @ if shape land 2 <> 0 then [ "signed" ] else [])
    | C_b -> if shape land 1 <> 0 then "link" else "plain"
    | C_msr -> if shape land 1 <> 0 then "control" else "flags"
    | C_clz | C_bx | C_movw | C_movt | C_mrs | C_svc | C_cps | C_mcr | C_mrc
    | C_vmsr | C_vmrs | C_nop | C_udf -> "plain"
  and cond = idiom land idiom_conditional <> 0 in
  if cond then base ^ ".cond" else base

let pp_reg ppf r =
  if r = 13 then Format.pp_print_string ppf "sp"
  else if r = 14 then Format.pp_print_string ppf "lr"
  else if r = 15 then Format.pp_print_string ppf "pc"
  else Format.fprintf ppf "r%d" r

let pp_op2 ppf = function
  | Imm { imm8; rot } -> Format.fprintf ppf "#%d" (Word32.rotate_right imm8 (2 * rot))
  | Reg_shift_imm { rm; kind; amount } ->
    if amount = 0 && kind = LSL then pp_reg ppf rm
    else Format.fprintf ppf "%a, %s #%d" pp_reg rm (shift_kind_to_string kind) amount
  | Reg_shift_reg { rm; kind; rs } ->
    Format.fprintf ppf "%a, %s %a" pp_reg rm (shift_kind_to_string kind) pp_reg rs

let pp_mem ppf rn off index =
  let pp_off ppf = function
    | Imm_off 0 -> ()
    | Imm_off n -> Format.fprintf ppf ", #%d" n
    | Reg_off { rm; kind; amount; subtract } ->
      let sign = if subtract then "-" else "" in
      if amount = 0 && kind = LSL then Format.fprintf ppf ", %s%a" sign pp_reg rm
      else
        Format.fprintf ppf ", %s%a, %s #%d" sign pp_reg rm (shift_kind_to_string kind)
          amount
  in
  match index with
  | Offset -> Format.fprintf ppf "[%a%a]" pp_reg rn pp_off off
  | Pre_indexed -> Format.fprintf ppf "[%a%a]!" pp_reg rn pp_off off
  | Post_indexed -> (
    match off with
    | Imm_off n -> Format.fprintf ppf "[%a], #%d" pp_reg rn n
    | Reg_off _ -> Format.fprintf ppf "[%a]%a" pp_reg rn pp_off off)

let pp_reglist ppf regs =
  let items = ref [] in
  for r = 15 downto 0 do
    if regs land (1 lsl r) <> 0 then items := r :: !items
  done;
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_reg)
    !items

let pp ppf { cond; op } =
  let c = Cond.to_string cond in
  match op with
  | Dp { op = dpo; s; rd; rn; op2 } ->
    let mnem = dp_op_to_string dpo in
    if dp_op_is_test dpo then Format.fprintf ppf "%s%s %a, %a" mnem c pp_reg rn pp_op2 op2
    else (
      let sfx = if s then "s" else "" in
      match dpo with
      | MOV | MVN -> Format.fprintf ppf "%s%s%s %a, %a" mnem c sfx pp_reg rd pp_op2 op2
      | _ ->
        Format.fprintf ppf "%s%s%s %a, %a, %a" mnem c sfx pp_reg rd pp_reg rn pp_op2 op2)
  | Mul { s; rd; rn; rm; acc = None } ->
    Format.fprintf ppf "mul%s%s %a, %a, %a" c (if s then "s" else "") pp_reg rd pp_reg rm
      pp_reg rn
  | Mul { s; rd; rn; rm; acc = Some ra } ->
    Format.fprintf ppf "mla%s%s %a, %a, %a, %a" c (if s then "s" else "") pp_reg rd
      pp_reg rm pp_reg rn pp_reg ra
  | Mull { signed; s; rdlo; rdhi; rn; rm } ->
    Format.fprintf ppf "%smull%s%s %a, %a, %a, %a"
      (if signed then "s" else "u")
      c (if s then "s" else "") pp_reg rdlo pp_reg rdhi pp_reg rm pp_reg rn
  | Clz { rd; rm } -> Format.fprintf ppf "clz%s %a, %a" c pp_reg rd pp_reg rm
  | Ldr { width; rd; rn; off; index } ->
    Format.fprintf ppf "ldr%s%s %a, " c
      (match width with Word -> "" | Byte -> "b" | Half -> "h")
      pp_reg rd;
    pp_mem ppf rn off index
  | Ldrs { half; rd; rn; off; index } ->
    Format.fprintf ppf "ldrs%s%s %a, " (if half then "h" else "b") c pp_reg rd;
    pp_mem ppf rn off index
  | Str { width; rd; rn; off; index } ->
    Format.fprintf ppf "str%s%s %a, " c
      (match width with Word -> "" | Byte -> "b" | Half -> "h")
      pp_reg rd;
    pp_mem ppf rn off index
  | Ldm { kind; rn; writeback; regs } ->
    Format.fprintf ppf "ldm%s%s %a%s, %a" c
      (match kind with IA -> "ia" | DB -> "db")
      pp_reg rn
      (if writeback then "!" else "")
      pp_reglist regs
  | Stm { kind; rn; writeback; regs } ->
    Format.fprintf ppf "stm%s%s %a%s, %a" c
      (match kind with IA -> "ia" | DB -> "db")
      pp_reg rn
      (if writeback then "!" else "")
      pp_reglist regs
  | B { link; offset } ->
    Format.fprintf ppf "b%s%s .%+d" (if link then "l" else "") c offset
  | Bx rm -> Format.fprintf ppf "bx%s %a" c pp_reg rm
  | Movw { rd; imm16 } -> Format.fprintf ppf "movw%s %a, #%d" c pp_reg rd imm16
  | Movt { rd; imm16 } -> Format.fprintf ppf "movt%s %a, #%d" c pp_reg rd imm16
  | Mrs { rd; spsr } ->
    Format.fprintf ppf "mrs%s %a, %s" c pp_reg rd (if spsr then "spsr" else "cpsr")
  | Msr { spsr; write_flags; write_control; rm } ->
    let fields =
      match (write_flags, write_control) with
      | true, true -> "fc"
      | true, false -> "f"
      | false, true -> "c"
      | false, false -> ""
    in
    Format.fprintf ppf "msr%s %s_%s, %a" c (if spsr then "spsr" else "cpsr") fields
      pp_reg rm
  | Svc imm -> Format.fprintf ppf "svc%s #%d" c imm
  | Cps { disable } -> Format.fprintf ppf "cps%s i" (if disable then "id" else "ie")
  | Mcr { opc1; rt; crn; crm; opc2 } ->
    Format.fprintf ppf "mcr%s p15, %d, %a, c%d, c%d, %d" c opc1 pp_reg rt crn crm opc2
  | Mrc { opc1; rt; crn; crm; opc2 } ->
    Format.fprintf ppf "mrc%s p15, %d, %a, c%d, c%d, %d" c opc1 pp_reg rt crn crm opc2
  | Vmsr { rt } -> Format.fprintf ppf "vmsr%s fpscr, %a" c pp_reg rt
  | Vmrs { rt } ->
    if rt = pc then Format.fprintf ppf "vmrs%s apsr_nzcv, fpscr" c
    else Format.fprintf ppf "vmrs%s %a, fpscr" c pp_reg rt
  | Nop -> Format.fprintf ppf "nop%s" c
  | Udf imm -> Format.fprintf ppf "udf #%d" imm

let to_string t = Format.asprintf "%a" pp t
let equal (a : t) (b : t) = a = b
