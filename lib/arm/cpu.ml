open Repro_common

type mode = User | System | Supervisor | Irq | Abort | Undef

let mode_bits = function
  | User -> 0b10000
  | Irq -> 0b10010
  | Supervisor -> 0b10011
  | Abort -> 0b10111
  | Undef -> 0b11011
  | System -> 0b11111

let mode_of_bits = function
  | 0b10000 -> Some User
  | 0b10010 -> Some Irq
  | 0b10011 -> Some Supervisor
  | 0b10111 -> Some Abort
  | 0b11011 -> Some Undef
  | 0b11111 -> Some System
  | _ -> None

let mode_is_privileged = function
  | User -> false
  | System | Supervisor | Irq | Abort | Undef -> true

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with
    | User -> "usr"
    | System -> "sys"
    | Supervisor -> "svc"
    | Irq -> "irq"
    | Abort -> "abt"
    | Undef -> "und")

(* sp/lr are banked per exception mode (User and System share a bank);
   SPSR exists only for exception modes. *)
type bank = { mutable sp : Word32.t; mutable lr : Word32.t; mutable spsr : Word32.t }

type t = {
  regs : Word32.t array;  (* current view *)
  mutable cpsr : Word32.t;
  usr_bank : bank;
  svc_bank : bank;
  irq_bank : bank;
  abt_bank : bank;
  und_bank : bank;
  mutable ttbr : Word32.t;
  mutable sctlr : Word32.t;
  mutable dfar : Word32.t;
  mutable dfsr : Word32.t;
  mutable fpscr : Word32.t;
  mutable tlb_flushes : int;
}

let fresh_bank () = { sp = 0; lr = 0; spsr = 0 }

let bank_of t = function
  | User | System -> t.usr_bank
  | Supervisor -> t.svc_bank
  | Irq -> t.irq_bank
  | Abort -> t.abt_bank
  | Undef -> t.und_bank

let mode t =
  match mode_of_bits (Word32.extract t.cpsr ~lo:0 ~len:5) with
  | Some m -> m
  | None -> assert false (* the mode field is only ever written via set_mode *)

let create () =
  {
    regs = Array.make 16 0;
    cpsr = mode_bits Supervisor lor 0x80 (* I bit set: IRQs masked at reset *);
    usr_bank = fresh_bank ();
    svc_bank = fresh_bank ();
    irq_bank = fresh_bank ();
    abt_bank = fresh_bank ();
    und_bank = fresh_bank ();
    ttbr = 0;
    sctlr = 0;
    dfar = 0;
    dfsr = 0;
    fpscr = 0;
    tlb_flushes = 0;
  }

let get_reg t r = t.regs.(r)
let set_reg t r v = t.regs.(r) <- Word32.mask v
let get_pc t = t.regs.(15)
let set_pc t v = t.regs.(15) <- Word32.mask v
let get_flags t = Cond.flags_of_word t.cpsr

let set_flags t f =
  t.cpsr <- Word32.insert t.cpsr ~lo:28 ~len:4 (Word32.extract (Cond.flags_to_word f) ~lo:28 ~len:4)

let get_cpsr t = t.cpsr

let switch_bank t ~from_mode ~to_mode =
  let old_b = bank_of t from_mode and new_b = bank_of t to_mode in
  if old_b != new_b then begin
    old_b.sp <- t.regs.(13);
    old_b.lr <- t.regs.(14);
    t.regs.(13) <- new_b.sp;
    t.regs.(14) <- new_b.lr
  end

let set_mode t m =
  let current = mode t in
  if current <> m then begin
    switch_bank t ~from_mode:current ~to_mode:m;
    t.cpsr <- Word32.insert t.cpsr ~lo:0 ~len:5 (mode_bits m)
  end

let set_cpsr t w =
  let w = Word32.mask w in
  (match mode_of_bits (Word32.extract w ~lo:0 ~len:5) with
  | Some m -> set_mode t m
  | None -> ());
  (* Preserve the (possibly corrected) mode bits installed by set_mode. *)
  let mode_field = Word32.extract t.cpsr ~lo:0 ~len:5 in
  t.cpsr <- Word32.insert w ~lo:0 ~len:5 mode_field

let get_spsr t =
  match mode t with User | System -> 0 | m -> (bank_of t m).spsr

let set_spsr t v =
  match mode t with
  | User | System -> ()
  | m -> (bank_of t m).spsr <- Word32.mask v

let irq_masked t = Word32.bit t.cpsr 7
let set_irq_masked t b = t.cpsr <- Word32.set_bit t.cpsr 7 b
let get_ttbr t = t.ttbr
let set_ttbr t v = t.ttbr <- Word32.mask v
let mmu_enabled t = Word32.bit t.sctlr 0
let set_mmu_enabled t b = t.sctlr <- Word32.set_bit t.sctlr 0 b
let get_dfar t = t.dfar
let set_dfar t v = t.dfar <- Word32.mask v
let get_dfsr t = t.dfsr
let set_dfsr t v = t.dfsr <- Word32.mask v
let get_fpscr t = t.fpscr
let set_fpscr t v = t.fpscr <- Word32.mask v
let get_tick_count t = t.tlb_flushes
let bump_tlb_flush t = t.tlb_flushes <- t.tlb_flushes + 1

type exn_kind = Reset | Undefined_insn | Supervisor_call | Prefetch_abort | Data_abort | Irq

let vector_of = function
  | Reset -> 0x00
  | Undefined_insn -> 0x04
  | Supervisor_call -> 0x08
  | Prefetch_abort -> 0x0C
  | Data_abort -> 0x10
  | Irq -> 0x18

let pp_exn_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Reset -> "reset"
    | Undefined_insn -> "undef"
    | Supervisor_call -> "svc"
    | Prefetch_abort -> "pabt"
    | Data_abort -> "dabt"
    | Irq -> "irq")

let exception_mode = function
  | Reset -> Supervisor
  | Undefined_insn -> Undef
  | Supervisor_call -> Supervisor
  | Prefetch_abort -> Abort
  | Data_abort -> Abort
  | Irq -> Irq

(* Preferred return address, as an offset from the faulting (or, for
   IRQ, next-to-execute) instruction. Handlers return with
   [movs pc, lr] (svc/undef), [subs pc, lr, #4] (irq/pabt) or
   [subs pc, lr, #8] (dabt), per the ARM ARM. *)
let lr_offset = function
  | Reset -> 0
  | Undefined_insn -> 4
  | Supervisor_call -> 4
  | Prefetch_abort -> 4
  | Data_abort -> 8
  | Irq -> 4

let take_exception t kind ~pc_of_faulting_insn =
  let old_cpsr = t.cpsr in
  let new_mode = exception_mode kind in
  set_mode t new_mode;
  (bank_of t new_mode).spsr <- old_cpsr;
  t.regs.(14) <- Word32.add pc_of_faulting_insn (lr_offset kind);
  set_irq_masked t true;
  t.regs.(15) <- vector_of kind

(* Full architectural dump for machine snapshots — unlike [snapshot]
   below (a current-mode view used by shadow verification), this
   covers every bank raw, so restore is bit-exact regardless of the
   mode at capture time. Layout:
   regs[0..15], cpsr, 5 banks x (sp, lr, spsr), ttbr, sctlr, dfar,
   dfsr, fpscr, tlb_flushes = 38 words. *)
let save_words_len = 38

let save_words t =
  let banks = [ t.usr_bank; t.svc_bank; t.irq_bank; t.abt_bank; t.und_bank ] in
  Array.concat
    ([ Array.copy t.regs; [| t.cpsr |] ]
    @ List.map (fun b -> [| b.sp; b.lr; b.spsr |]) banks
    @ [ [| t.ttbr; t.sctlr; t.dfar; t.dfsr; t.fpscr; t.tlb_flushes |] ])

let load_words t w =
  if Array.length w <> save_words_len then invalid_arg "Cpu.load_words: bad length";
  Array.blit w 0 t.regs 0 16;
  t.cpsr <- w.(16);
  List.iteri
    (fun i b ->
      b.sp <- w.(17 + (3 * i));
      b.lr <- w.(18 + (3 * i));
      b.spsr <- w.(19 + (3 * i)))
    [ t.usr_bank; t.svc_bank; t.irq_bank; t.abt_bank; t.und_bank ];
  t.ttbr <- w.(32);
  t.sctlr <- w.(33);
  t.dfar <- w.(34);
  t.dfsr <- w.(35);
  t.fpscr <- w.(36);
  t.tlb_flushes <- w.(37)

type snapshot = {
  regs : Word32.t array;
  cpsr : Word32.t;
  spsr : Word32.t;
  ttbr : Word32.t;
  sctlr_m : bool;
  fpscr : Word32.t;
}

let to_snapshot (t : t) =
  {
    regs = Array.copy t.regs;
    cpsr = t.cpsr;
    spsr = get_spsr t;
    ttbr = t.ttbr;
    sctlr_m = mmu_enabled t;
    fpscr = t.fpscr;
  }

let of_snapshot s =
  let t = create () in
  (match mode_of_bits (Word32.extract s.cpsr ~lo:0 ~len:5) with
  | Some m -> set_mode t m
  | None -> ());
  t.cpsr <- Word32.insert s.cpsr ~lo:0 ~len:5 (Word32.extract t.cpsr ~lo:0 ~len:5);
  Array.blit s.regs 0 t.regs 0 16;
  set_spsr t s.spsr;
  t.ttbr <- s.ttbr;
  set_mmu_enabled t s.sctlr_m;
  t.fpscr <- s.fpscr;
  t

let pp_snapshot ppf s =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i v ->
      Format.fprintf ppf "r%-2d = %a%s" i Word32.pp v (if i mod 4 = 3 then "\n" else "  "))
    s.regs;
  Format.fprintf ppf "cpsr = %a (%a)  spsr = %a  fpscr = %a@]" Word32.pp s.cpsr
    Cond.pp_flags
    (Cond.flags_of_word s.cpsr)
    Word32.pp s.spsr Word32.pp s.fpscr

let equal_snapshot a b =
  a.regs = b.regs && a.cpsr = b.cpsr && a.spsr = b.spsr && a.ttbr = b.ttbr
  && a.sctlr_m = b.sctlr_m && a.fpscr = b.fpscr
