open Repro_common

type slot =
  | Fixed of Word32.t                    (* already-encoded word *)
  | Branch of { cond : Cond.t; link : bool; target : string }
  | Movw_label of { rd : Insn.reg; target : string }
  | Movt_label of { rd : Insn.reg; target : string }

type t = {
  origin : Word32.t;
  mutable slots : slot list;  (* reversed *)
  mutable count : int;
  labels : (string, Word32.t) Hashtbl.t;
}

let create ?(origin = 0) () = { origin; slots = []; count = 0; labels = Hashtbl.create 64 }
let here t = Word32.add t.origin (4 * t.count)

let label t name =
  if Hashtbl.mem t.labels name then failwith ("Asm.label: redefined " ^ name);
  Hashtbl.replace t.labels name (here t)

let lookup t name =
  match Hashtbl.find_opt t.labels name with
  | Some a -> a
  | None -> failwith ("Asm.lookup: undefined label " ^ name)

(* Sorted so the listing is deterministic: Hashtbl iteration order
   depends on insertion history and hashing. *)
let labels t =
  Hashtbl.fold (fun name addr acc -> (addr, name) :: acc) t.labels []
  |> List.sort compare

let push_slot t s =
  t.slots <- s :: t.slots;
  t.count <- t.count + 1

let emit t insn = push_slot t (Fixed (Encode.encode insn))
let word t w = push_slot t (Fixed (Word32.mask w))

let branch_to t ?(cond = Cond.AL) ?(link = false) target =
  push_slot t (Branch { cond; link; target })

let mov32 t rd value =
  let value = Word32.mask value in
  emit t (Insn.make (Insn.Movw { rd; imm16 = value land 0xFFFF }));
  if value lsr 16 <> 0 then
    emit t (Insn.make (Insn.Movt { rd; imm16 = value lsr 16 }))

let mov32_label t rd target =
  push_slot t (Movw_label { rd; target });
  push_slot t (Movt_label { rd; target })

let resolve t index = function
  | Fixed w -> w
  | Branch { cond; link; target } ->
    let pc = Word32.add t.origin (4 * index) in
    let dest = lookup t target in
    let offset = (Word32.signed (Word32.sub dest pc) - 8) / 4 in
    Encode.encode { cond; op = Insn.B { link; offset } }
  | Movw_label { rd; target } ->
    let dest = lookup t target in
    Encode.encode (Insn.make (Insn.Movw { rd; imm16 = dest land 0xFFFF }))
  | Movt_label { rd; target } ->
    let dest = lookup t target in
    Encode.encode (Insn.make (Insn.Movt { rd; imm16 = dest lsr 16 }))

let assemble t =
  let slots = Array.of_list (List.rev t.slots) in
  (t.origin, Array.mapi (resolve t) slots)

let assemble_insns t =
  let origin, words = assemble t in
  ( origin,
    Array.map
      (fun w ->
        match Encode.decode w with Ok i -> i | Error _ -> Insn.make (Insn.Udf 0xFFFF))
      words )

(* Shorthands. *)

let dp t cond s op rd rn op2 = emit t { cond; op = Insn.Dp { op; s; rd; rn; op2 } }
let imm v = Insn.imm_operand_exn v
let rsi rm = Insn.Reg_shift_imm { rm; kind = Insn.LSL; amount = 0 }

let mov t ?(cond = Cond.AL) ?(s = false) rd v = dp t cond s Insn.MOV rd 0 (imm v)
let mov_r t ?(cond = Cond.AL) ?(s = false) rd rm = dp t cond s Insn.MOV rd 0 (rsi rm)
let mvn t ?(cond = Cond.AL) rd v = dp t cond false Insn.MVN rd 0 (imm v)
let add t ?(cond = Cond.AL) ?(s = false) rd rn v = dp t cond s Insn.ADD rd rn (imm v)
let add_r t ?(cond = Cond.AL) ?(s = false) rd rn rm = dp t cond s Insn.ADD rd rn (rsi rm)
let sub t ?(cond = Cond.AL) ?(s = false) rd rn v = dp t cond s Insn.SUB rd rn (imm v)
let sub_r t ?(cond = Cond.AL) ?(s = false) rd rn rm = dp t cond s Insn.SUB rd rn (rsi rm)
let rsb t ?(cond = Cond.AL) ?(s = false) rd rn v = dp t cond s Insn.RSB rd rn (imm v)
let and_ t ?(cond = Cond.AL) ?(s = false) rd rn v = dp t cond s Insn.AND rd rn (imm v)
let and_r t ?(cond = Cond.AL) ?(s = false) rd rn rm = dp t cond s Insn.AND rd rn (rsi rm)
let orr t ?(cond = Cond.AL) ?(s = false) rd rn v = dp t cond s Insn.ORR rd rn (imm v)
let orr_r t ?(cond = Cond.AL) ?(s = false) rd rn rm = dp t cond s Insn.ORR rd rn (rsi rm)
let eor_r t ?(cond = Cond.AL) ?(s = false) rd rn rm = dp t cond s Insn.EOR rd rn (rsi rm)

let lsl_ t ?(cond = Cond.AL) ?(s = false) rd rm amount =
  dp t cond s Insn.MOV rd 0 (Insn.Reg_shift_imm { rm; kind = Insn.LSL; amount })

let lsr_ t ?(cond = Cond.AL) ?(s = false) rd rm amount =
  dp t cond s Insn.MOV rd 0 (Insn.Reg_shift_imm { rm; kind = Insn.LSR; amount })

let cmp t ?(cond = Cond.AL) rn v = dp t cond false Insn.CMP 0 rn (imm v)
let cmp_r t ?(cond = Cond.AL) rn rm = dp t cond false Insn.CMP 0 rn (rsi rm)
let tst t ?(cond = Cond.AL) rn v = dp t cond false Insn.TST 0 rn (imm v)

let mul t ?(cond = Cond.AL) ?(s = false) rd rm rn =
  emit t { cond; op = Insn.Mul { s; rd; rn; rm; acc = None } }

let umull t ?(cond = Cond.AL) ?(s = false) rdlo rdhi rm rn =
  emit t { cond; op = Insn.Mull { signed = false; s; rdlo; rdhi; rn; rm } }

let clz t ?(cond = Cond.AL) rd rm = emit t { cond; op = Insn.Clz { rd; rm } }

let ldrs t ?(cond = Cond.AL) ?(half = false) ?(index = Insn.Offset) rd rn off =
  emit t { cond; op = Insn.Ldrs { half; rd; rn; off = Insn.Imm_off off; index } }

let smull t ?(cond = Cond.AL) ?(s = false) rdlo rdhi rm rn =
  emit t { cond; op = Insn.Mull { signed = true; s; rdlo; rdhi; rn; rm } }

let ldr t ?(cond = Cond.AL) ?(width = Insn.Word) ?(index = Insn.Offset) rd rn off =
  emit t { cond; op = Insn.Ldr { width; rd; rn; off = Insn.Imm_off off; index } }

let ldr_r t ?(cond = Cond.AL) rd rn rm =
  emit t
    {
      cond;
      op =
        Insn.Ldr
          {
            width = Insn.Word;
            rd;
            rn;
            off = Insn.Reg_off { rm; kind = Insn.LSL; amount = 0; subtract = false };
            index = Insn.Offset;
          };
    }

let str t ?(cond = Cond.AL) ?(width = Insn.Word) ?(index = Insn.Offset) rd rn off =
  emit t { cond; op = Insn.Str { width; rd; rn; off = Insn.Imm_off off; index } }

let str_r t ?(cond = Cond.AL) rd rn rm =
  emit t
    {
      cond;
      op =
        Insn.Str
          {
            width = Insn.Word;
            rd;
            rn;
            off = Insn.Reg_off { rm; kind = Insn.LSL; amount = 0; subtract = false };
            index = Insn.Offset;
          };
    }

let push t ?(cond = Cond.AL) mask =
  emit t { cond; op = Insn.Stm { kind = Insn.DB; rn = Insn.sp; writeback = true; regs = mask } }

let pop t ?(cond = Cond.AL) mask =
  emit t { cond; op = Insn.Ldm { kind = Insn.IA; rn = Insn.sp; writeback = true; regs = mask } }

let bx t ?(cond = Cond.AL) rm = emit t { cond; op = Insn.Bx rm }
let svc t ?(cond = Cond.AL) n = emit t { cond; op = Insn.Svc n }
let nop t = emit t (Insn.make Insn.Nop)
let mrs t ?(spsr = false) rd = emit t (Insn.make (Insn.Mrs { rd; spsr }))

let msr t ?(spsr = false) ?(flags = false) ?(control = false) rm =
  emit t (Insn.make (Insn.Msr { spsr; write_flags = flags; write_control = control; rm }))

let cps t ~disable = emit t (Insn.make (Insn.Cps { disable }))

let mcr t ?(opc1 = 0) ~crn ?(crm = 0) ?(opc2 = 0) rt =
  emit t (Insn.make (Insn.Mcr { opc1; rt; crn; crm; opc2 }))

let mrc t ?(opc1 = 0) ~crn ?(crm = 0) ?(opc2 = 0) rt =
  emit t (Insn.make (Insn.Mrc { opc1; rt; crn; crm; opc2 }))

let vmsr t rt = emit t (Insn.make (Insn.Vmsr { rt }))
let vmrs t rt = emit t (Insn.make (Insn.Vmrs { rt }))
let udf t n = emit t (Insn.make (Insn.Udf n))
let reg_mask regs = List.fold_left (fun acc r -> acc lor (1 lsl r)) 0 regs
