(** Structured ARMv7 (A32) instructions — the guest ISA.

    The subset covers everything the mini guest OS and the workload
    generators need: the full data-processing family with condition
    codes and conditional execution, multiplies, single and multiple
    load/store with the three indexing modes, branches, PSR transfers,
    wide moves, and the system-level instructions that drive the
    paper's coordination scenarios ([svc], [cps], [mcr]/[mrc],
    [vmrs]/[vmsr]). Each constructor round-trips through
    {!Encode}/{!Decode}. *)

type reg = int
(** General register number, [0..15]. [13]=sp, [14]=lr, [15]=pc. *)

val sp : reg
val lr : reg
val pc : reg

val reg : int -> reg
(** Checked constructor; raises [Invalid_argument] outside [0..15]. *)

type dp_op =
  | AND | EOR | SUB | RSB | ADD | ADC | SBC | RSC
  | TST | TEQ | CMP | CMN | ORR | MOV | BIC | MVN

val dp_op_is_test : dp_op -> bool
(** [TST]/[TEQ]/[CMP]/[CMN]: no destination, always set flags. *)

val dp_op_to_string : dp_op -> string
val dp_op_code : dp_op -> int
val dp_op_of_code : int -> dp_op

type shift_kind = LSL | LSR | ASR | ROR

val shift_kind_code : shift_kind -> int
val shift_kind_of_code : int -> shift_kind
val shift_kind_to_string : shift_kind -> string

type operand2 =
  | Imm of { imm8 : int; rot : int }
      (** [imm8] rotated right by [2*rot]; the canonical A32 modified
          immediate. *)
  | Reg_shift_imm of { rm : reg; kind : shift_kind; amount : int }
      (** [amount] in [0..31]; [LSR/ASR] with amount 0 encode 32 in
          real ARM — we restrict to the 0..31 semantics and never emit
          the 32 forms. *)
  | Reg_shift_reg of { rm : reg; kind : shift_kind; rs : reg }

val imm_operand : int -> operand2 option
(** Express a word as a modified immediate if possible. *)

val imm_operand_exn : int -> operand2
val operand2_value : operand2 -> (reg -> int) -> carry:bool -> int * bool
(** Evaluate an operand2 under a register valuation; returns the value
    and the shifter carry-out. *)

type width = Word | Byte | Half

type index_mode =
  | Offset        (** [\[rn, off\]] — no writeback *)
  | Pre_indexed   (** [\[rn, off\]!] *)
  | Post_indexed  (** [\[rn\], off] *)

type mem_offset =
  | Imm_off of int  (** signed, [-4095..4095] *)
  | Reg_off of { rm : reg; kind : shift_kind; amount : int; subtract : bool }

type ldm_kind = IA | DB
(** Increment-after / decrement-before (the two forms the kernel uses
    for stack push/pop). *)

type op =
  | Dp of { op : dp_op; s : bool; rd : reg; rn : reg; op2 : operand2 }
  | Mul of { s : bool; rd : reg; rn : reg; rm : reg; acc : reg option }
      (** [Mul]: [rd := rm * rn (+ acc)]; [acc = Some ra] is MLA. *)
  | Mull of { signed : bool; s : bool; rdlo : reg; rdhi : reg; rn : reg; rm : reg }
  | Clz of { rd : reg; rm : reg }
      (** UMULL/SMULL: [rdhi:rdlo := rm * rn] (64-bit product). *)
  | Ldr of { width : width; rd : reg; rn : reg; off : mem_offset; index : index_mode }
  | Ldrs of { half : bool; rd : reg; rn : reg; off : mem_offset; index : index_mode }
      (** LDRSB ([half = false]) / LDRSH ([half = true]): sign-extending
          loads from the miscellaneous-loads encoding; same offset
          constraints as halfword transfers. *)
  | Str of { width : width; rd : reg; rn : reg; off : mem_offset; index : index_mode }
  | Ldm of { kind : ldm_kind; rn : reg; writeback : bool; regs : int }
      (** [regs] is the 16-bit register mask. *)
  | Stm of { kind : ldm_kind; rn : reg; writeback : bool; regs : int }
  | B of { link : bool; offset : int }
      (** [offset] in instructions (words), relative to PC+8. *)
  | Bx of reg
  | Movw of { rd : reg; imm16 : int }
  | Movt of { rd : reg; imm16 : int }
  | Mrs of { rd : reg; spsr : bool }
  | Msr of { spsr : bool; write_flags : bool; write_control : bool; rm : reg }
  | Svc of int
  | Cps of { disable : bool }
      (** [cpsid i] / [cpsie i] — mask or unmask IRQs. *)
  | Mcr of { opc1 : int; rt : reg; crn : int; crm : int; opc2 : int }
      (** Coprocessor 15 (system control) writes. *)
  | Mrc of { opc1 : int; rt : reg; crn : int; crm : int; opc2 : int }
  | Vmsr of { rt : reg }  (** FPSCR := Rt (the paper's running example). *)
  | Vmrs of { rt : reg }  (** Rt := FPSCR; [rt = 15] sets the APSR flags. *)
  | Nop
  | Udf of int  (** permanently undefined — traps to the guest OS. *)

type t = { cond : Cond.t; op : op }

val make : ?cond:Cond.t -> op -> t
(** [cond] defaults to [AL]. *)

val is_system_level : t -> bool
(** Instructions emulated by a QEMU helper (privileged / coprocessor /
    PSR transfers / svc / cps) — the paper's "system-level" class. *)

val is_memory_access : t -> bool
(** Single or multiple load/store — goes through the softMMU. *)

val writes_flags : t -> bool
(** Updates NZCV (S-bit data processing, test ops, [vmrs apsr], [msr
    cpsr_f]). *)

val reads_flags : t -> bool
(** Conditional execution or flag-consuming ops ([adc]/[sbc]/[rsc]). *)

val defs : t -> int
(** Bitmask of general registers written (PC = bit 15). *)

val uses : t -> int
(** Bitmask of general registers read. *)

val is_branch : t -> bool
(** Direct/indirect branches and any PC write. *)

(** {2 Coverage classes}

    The opcode-class enumeration of the translation-quality
    observatory (Repro_covscope). Classes are derived from the one
    {!op} enumeration: {!classify} matches every constructor
    explicitly, so a new decoder variant without a coverage class is a
    compile error — the coverage matrix can never silently drift. *)

type cls =
  | C_dp of dp_op  (** one class per data-processing opcode *)
  | C_mul
  | C_mull
  | C_clz
  | C_ldr
  | C_ldrs
  | C_str
  | C_ldm
  | C_stm
  | C_b
  | C_bx
  | C_movw
  | C_movt
  | C_mrs
  | C_msr
  | C_svc
  | C_cps
  | C_mcr
  | C_mrc
  | C_vmsr
  | C_vmrs
  | C_nop
  | C_udf

val classify : t -> cls
val all_classes : cls list
(** Every class once, in {!cls_index} order. *)

val n_classes : int

val cls_index : cls -> int
(** Dense index in [0, n_classes): dp opcodes first (in
    {!dp_op_code} order), then the other classes. *)

val cls_of_index : int -> cls
(** Inverse of {!cls_index}; raises [Invalid_argument] out of range. *)

val cls_name : cls -> string
(** Stable report key, e.g. ["dp.add"], ["ldr"]. *)

val idiom_of : t -> int
(** Within-class shape refinement in [0, n_idioms): operand form,
    index mode, S bit — bit 3 ({!idiom_conditional}) marks
    conditional execution for every class. *)

val idiom_conditional : int
val n_idioms : int

val idiom_name : cls -> int -> string
(** Render an idiom under its class, e.g. ["shift.s"], ["pre.reg"],
    ["imm.cond"]. *)

val pp : Format.formatter -> t -> unit
(** Assembly-like rendering, e.g. [addeq r0, r1, #4]. *)

val to_string : t -> string
val equal : t -> t -> bool
