(** Full-system ARM CPU state: current register view, CPSR/SPSR with
    mode banking of sp/lr, and the system registers the mini guest OS
    touches (cp15 control/translation-table/fault registers, FPSCR).

    This is the architectural reference state used by the interpreter;
    the DBT engines keep their own flattened [env] layout and convert
    through {!to_snapshot}/{!of_snapshot} for differential testing. *)

open Repro_common

type mode = User | System | Supervisor | Irq | Abort | Undef

val mode_bits : mode -> int
(** CPSR[4:0] encoding (User = 0b10000, ... System = 0b11111). *)

val mode_of_bits : int -> mode option
val mode_is_privileged : mode -> bool
val pp_mode : Format.formatter -> mode -> unit

type t

val create : unit -> t
(** Reset state: Supervisor mode, IRQs masked, PC = 0, MMU off. *)

(** {2 General registers (current banked view)} *)

val get_reg : t -> int -> Word32.t
val set_reg : t -> int -> Word32.t -> unit
val get_pc : t -> Word32.t
val set_pc : t -> Word32.t -> unit

(** {2 Status registers} *)

val get_flags : t -> Cond.flags
val set_flags : t -> Cond.flags -> unit
val get_cpsr : t -> Word32.t
val set_cpsr : t -> Word32.t -> unit
(** Full write, including mode change (rebanks sp/lr). *)

val get_spsr : t -> Word32.t
(** SPSR of the current mode; reads as 0 in User/System. *)

val set_spsr : t -> Word32.t -> unit
val mode : t -> mode
val set_mode : t -> mode -> unit
(** Switch mode, banking sp/lr (and selecting the SPSR view). *)

val irq_masked : t -> bool
(** CPSR.I — true when IRQs are disabled. *)

val set_irq_masked : t -> bool -> unit

(** {2 System registers} *)

val get_ttbr : t -> Word32.t
val set_ttbr : t -> Word32.t -> unit
val mmu_enabled : t -> bool
val set_mmu_enabled : t -> bool -> unit
val get_dfar : t -> Word32.t
val set_dfar : t -> Word32.t -> unit
val get_dfsr : t -> Word32.t
val set_dfsr : t -> Word32.t -> unit
val get_fpscr : t -> Word32.t
val set_fpscr : t -> Word32.t -> unit
val get_tick_count : t -> int
(** Number of cp15 c8 TLB-maintenance writes observed (used by tests
    and by the machine layer to trigger TLB flushes). *)

val bump_tlb_flush : t -> unit

(** {2 Exceptions} *)

type exn_kind = Reset | Undefined_insn | Supervisor_call | Prefetch_abort | Data_abort | Irq

val vector_of : exn_kind -> Word32.t
val pp_exn_kind : Format.formatter -> exn_kind -> unit

val take_exception : t -> exn_kind -> pc_of_faulting_insn:Word32.t -> unit
(** Architectural exception entry: bank SPSR := CPSR, LR_new := the
    per-kind preferred return address, switch mode, mask IRQs, PC :=
    vector. *)

(** {2 Full-machine serialization} *)

val save_words_len : int
(** Length of the {!save_words} dump (currently 38 words). *)

val save_words : t -> Word32.t array
(** Raw dump of the complete architectural state — current register
    view, CPSR, every sp/lr/SPSR bank, cp15 registers, FPSCR and the
    TLB-maintenance counter. Restoring with {!load_words} is bit-exact
    in any mode (unlike {!snapshot}, which only captures the current
    banked view for differential testing). *)

val load_words : t -> Word32.t array -> unit
(** Restore a {!save_words} dump in place. Raises [Invalid_argument]
    on length mismatch. *)

(** {2 Snapshots (for differential testing)} *)

type snapshot = {
  regs : Word32.t array;  (** 16 entries, current view *)
  cpsr : Word32.t;
  spsr : Word32.t;
  ttbr : Word32.t;
  sctlr_m : bool;
  fpscr : Word32.t;
}

val to_snapshot : t -> snapshot
val of_snapshot : snapshot -> t
val pp_snapshot : Format.formatter -> snapshot -> unit
val equal_snapshot : snapshot -> snapshot -> bool
