(* Tiny JSON construction helpers.

   The observability layer emits a lot of small JSON values (trace
   events, metrics snapshots, ledger reports) on hot-ish export paths;
   a full JSON library is overkill and none is vendored, so we
   hand-roll the writer.  Values are rendered to strings; [obj]/[arr]
   take already-rendered members. *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  add_escaped buf s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let int = string_of_int
let bool b = if b then "true" else "false"

let float f =
  (* NaN/infinity are not valid JSON *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let obj fields =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (str k);
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let arr members =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf v)
    members;
  Buffer.add_char buf ']';
  Buffer.contents buf

(* ---- parsing ----

   The analysis CLI (repro-dbt-analyze) reads back what the writers
   above produce: stats-json files, BENCH_*.json, trace/metrics JSONL.
   A small recursive-descent parser over strings is plenty — inputs
   are machine-written single values, a few MB at most. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg c.pos))
let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some g when g = ch -> c.pos <- c.pos + 1
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else error c (Printf.sprintf "expected %s" word)

let hex4 c =
  if c.pos + 4 > String.length c.s then error c "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let d =
      match c.s.[c.pos + i] with
      | '0' .. '9' as ch -> Char.code ch - Char.code '0'
      | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
      | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
      | _ -> error c "bad \\u escape"
    in
    v := (!v * 16) + d
  done;
  c.pos <- c.pos + 4;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
      c.pos <- c.pos + 1;
      match peek c with
      | None -> error c "truncated escape"
      | Some ch ->
        c.pos <- c.pos + 1;
        (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          (* the writer only emits \u for codepoints < 0x20; decode
             the BMP generally (as UTF-8) so foreign JSON parses too *)
          let cp = hex4 c in
          if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
          else if cp < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
        | _ -> error c "bad escape");
        loop ())
    | Some ch ->
      c.pos <- c.pos + 1;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let text = String.sub c.s start (c.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> error c (Printf.sprintf "bad number %S" text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members ()
        | Some '}' -> c.pos <- c.pos + 1
        | _ -> error c "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec members () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members ()
        | Some ']' -> c.pos <- c.pos + 1
        | _ -> error c "expected ',' or ']'"
      in
      members ();
      Arr (List.rev !items)
    end
  | Some _ -> parse_number c

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing bytes";
  v

(* ---- accessors ---- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* Canonical re-rendering of a parsed value, composing the writers
   above — [parse (render v)] reconstructs [v] exactly (field order
   preserved, integral numbers re-render as integers). The round-trip
   witness for nested telemetry documents. *)
let rec render = function
  | Null -> "null"
  | Bool b -> bool b
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then int (int_of_float f)
    else float f
  | Str s -> str s
  | Arr l -> arr (List.map render l)
  | Obj fields -> obj (List.map (fun (k, v) -> (k, render v)) fields)

let to_float = function
  | Num f -> Some f
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string = function
  | Str s -> Some s
  | _ -> None

let to_bool = function
  | Bool b -> Some b
  | _ -> None

let to_list = function
  | Arr l -> Some l
  | _ -> None
