(* Tiny JSON construction helpers.

   The observability layer emits a lot of small JSON values (trace
   events, metrics snapshots, ledger reports) on hot-ish export paths;
   a full JSON library is overkill and none is vendored, so we
   hand-roll the writer.  Values are rendered to strings; [obj]/[arr]
   take already-rendered members. *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  add_escaped buf s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let int = string_of_int
let bool b = if b then "true" else "false"

let float f =
  (* NaN/infinity are not valid JSON *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let obj fields =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (str k);
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let arr members =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf v)
    members;
  Buffer.add_char buf ']';
  Buffer.contents buf
