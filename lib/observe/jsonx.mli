(** Minimal JSON helpers for the observability exports.

    Rendering: every function returns a complete JSON value as a
    string; [obj] and [arr] compose already-rendered members.

    Parsing: {!parse} reads back what the writers produce (stats-json,
    BENCH files, trace/metrics JSONL) for the analysis CLI and the
    benchmark-regression gate. *)

val str : string -> string
(** Quoted, escaped JSON string. *)

val int : int -> string
val bool : bool -> string

val float : float -> string
(** Finite floats render with 6 significant digits; NaN and infinity
    render as [null] (neither is valid JSON). *)

val obj : (string * string) list -> string
(** [obj fields] renders [{"k":v,...}]; values must already be JSON. *)

val arr : string list -> string
(** [arr members] renders [[v,...]]; members must already be JSON. *)

val add_escaped : Buffer.t -> string -> unit
(** Append the escaped (unquoted) form of a string to a buffer —
    for callers streaming JSON through their own buffer. *)

(** {2 Parsing} *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Parse_error of string

val parse : string -> value
(** Parse one complete JSON value (trailing whitespace allowed).
    Raises {!Parse_error} with a byte offset on malformed input.
    [\u]-escaped codepoints decode to UTF-8 bytes, so {!str} followed
    by {!parse} round-trips any byte string. *)

val member : string -> value -> value option
(** Field lookup on [Obj]; [None] on other values. *)

val render : value -> string
(** Canonical re-rendering through the writers above: field order is
    preserved and integral numbers render as integers, so
    [parse (render v) = v] for any parsed value (the round-trip
    property the telemetry documents are tested against). *)

val to_float : value -> float option
val to_int : value -> int option
(** [Some] only for numbers with integral value. *)

val to_string : value -> string option
val to_bool : value -> bool option
val to_list : value -> value list option
