(** Minimal JSON rendering helpers for the observability exports.

    Every function returns a complete JSON value as a string; [obj]
    and [arr] compose already-rendered members.  No parsing — the
    repo only ever writes JSON. *)

val str : string -> string
(** Quoted, escaped JSON string. *)

val int : int -> string
val bool : bool -> string

val float : float -> string
(** Finite floats render with 6 significant digits; NaN and infinity
    render as [null] (neither is valid JSON). *)

val obj : (string * string) list -> string
(** [obj fields] renders [{"k":v,...}]; values must already be JSON. *)

val arr : string list -> string
(** [arr members] renders [[v,...]]; members must already be JSON. *)

val add_escaped : Buffer.t -> string -> unit
(** Append the escaped (unquoted) form of a string to a buffer —
    for callers streaming JSON through their own buffer. *)
