(** Leveled logging to stderr.

    One global level (default [Warn]); call sites pay only a level
    comparison when suppressed.  Timestamped, machine-readable events
    belong in {!Trace} — this module is for human-facing diagnostics
    that previously went through ad-hoc [Format.eprintf]. *)

type level = Error | Warn | Info | Debug | Trace

val level_name : level -> string
val level_of_string : string -> level option
(** Accepts ["error"|"warn"|"warning"|"info"|"debug"|"trace"],
    case-insensitively. *)

val set_level : level -> unit
val level : unit -> level
val enabled : level -> bool

val logf : level -> ('a, Format.formatter, unit) format -> 'a
val err : ('a, Format.formatter, unit) format -> 'a
val warn : ('a, Format.formatter, unit) format -> 'a
val info : ('a, Format.formatter, unit) format -> 'a
val debug : ('a, Format.formatter, unit) format -> 'a
val trace : ('a, Format.formatter, unit) format -> 'a
