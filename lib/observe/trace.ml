(* Ring-buffered structured event trace.

   The machine is deterministic and its only meaningful clock is
   retired guest instructions, so events carry that as their
   timestamp (installed by the runtime via [set_clock]).  The buffer
   is bounded: when full, the oldest event is overwritten and the
   drop counter advances — tracing can stay on for arbitrarily long
   runs with constant memory.

   Emission must never perturb the modelled machine: it charges no
   Stats counters and draws no PRNG.  That invariant is what keeps
   traced runs bit-identical to untraced ones (asserted in tests). *)

type category =
  | Exec
  | Chain
  | Sync
  | Irq
  | Tlb
  | Shadow
  | Watchdog
  | Snapshot
  | Fault
  | Fleet
  | Request

let categories =
  [ Exec; Chain; Sync; Irq; Tlb; Shadow; Watchdog; Snapshot; Fault; Fleet;
    Request ]

let category_name = function
  | Exec -> "exec"
  | Chain -> "chain"
  | Sync -> "sync"
  | Irq -> "irq"
  | Tlb -> "tlb"
  | Shadow -> "shadow"
  | Watchdog -> "watchdog"
  | Snapshot -> "snapshot"
  | Fault -> "fault"
  | Fleet -> "fleet"
  | Request -> "request"

(* stable small ids, used as Chrome trace tids *)
let category_id = function
  | Exec -> 1
  | Chain -> 2
  | Sync -> 3
  | Irq -> 4
  | Tlb -> 5
  | Shadow -> 6
  | Watchdog -> 7
  | Snapshot -> 8
  | Fault -> 9
  | Fleet -> 10
  | Request -> 11

type event = { at : int; cat : category; name : string; a : int; b : int }

type t = {
  ring : event array;
  mutable head : int;  (* next write position *)
  mutable count : int; (* retained events, <= capacity *)
  mutable total : int; (* events ever emitted *)
  mutable clock : unit -> int;
}

let default_capacity = 65536
let nil = { at = 0; cat = Exec; name = ""; a = 0; b = 0 }

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    ring = Array.make capacity nil;
    head = 0;
    count = 0;
    total = 0;
    clock = (fun () -> 0);
  }

let set_clock t f = t.clock <- f
let capacity t = Array.length t.ring
let length t = t.count
let total t = t.total
let dropped t = t.total - t.count

let emit t ?(a = 0) ?(b = 0) cat name =
  let cap = Array.length t.ring in
  t.ring.(t.head) <- { at = t.clock (); cat; name; a; b };
  t.head <- (t.head + 1) mod cap;
  if t.count < cap then t.count <- t.count + 1;
  t.total <- t.total + 1

let clear t =
  t.head <- 0;
  t.count <- 0;
  t.total <- 0

let iter t f =
  (* oldest first *)
  let cap = Array.length t.ring in
  let start = (t.head - t.count + cap * 2) mod cap in
  for i = 0 to t.count - 1 do
    f t.ring.((start + i) mod cap)
  done

let events t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

(* ---------- export ---------- *)

let event_json e =
  Jsonx.obj
    [
      ("at", Jsonx.int e.at);
      ("cat", Jsonx.str (category_name e.cat));
      ("name", Jsonx.str e.name);
      ("a", Jsonx.int e.a);
      ("b", Jsonx.int e.b);
    ]

let write_jsonl oc t =
  iter t (fun e ->
      output_string oc (event_json e);
      output_char oc '\n');
  (* a trailer line so consumers can detect ring overflow *)
  output_string oc
    (Jsonx.obj
       [
         ("meta", Jsonx.str "trace");
         ("total", Jsonx.int t.total);
         ("dropped", Jsonx.int (dropped t));
       ]);
  output_char oc '\n'

let write_chrome oc t =
  (* Chrome trace-event format (Perfetto-loadable): instant events on
     one thread per category, timestamps in retired guest
     instructions (Perfetto treats ts as microseconds; the absolute
     unit is irrelevant for a deterministic machine). *)
  output_string oc "{\"traceEvents\":[";
  let first = ref true in
  let put s =
    if !first then first := false else output_char oc ',';
    output_string oc s
  in
  List.iter
    (fun cat ->
      put
        (Jsonx.obj
           [
             ("name", Jsonx.str "thread_name");
             ("ph", Jsonx.str "M");
             ("pid", Jsonx.int 1);
             ("tid", Jsonx.int (category_id cat));
             ("args", Jsonx.obj [ ("name", Jsonx.str (category_name cat)) ]);
           ]))
    categories;
  iter t (fun e ->
      put
        (Jsonx.obj
           [
             ("name", Jsonx.str e.name);
             ("cat", Jsonx.str (category_name e.cat));
             ("ph", Jsonx.str "i");
             ("s", Jsonx.str "t");
             ("ts", Jsonx.int e.at);
             ("pid", Jsonx.int 1);
             ("tid", Jsonx.int (category_id e.cat));
             ("args", Jsonx.obj [ ("a", Jsonx.int e.a); ("b", Jsonx.int e.b) ]);
           ]));
  Printf.fprintf oc "],\"otherData\":{\"clock\":\"guest_insns\",\"dropped\":%d,\"total\":%d}}"
    (dropped t) t.total

(* Merged multi-stream export: one Perfetto process per stream (a
   fleet machine, the fleet dispatcher, ...), one thread per category
   within it. Request-category begin/end pairs become duration slices
   so a slow request renders as a visible span on its machine's track;
   everything else stays an instant event. The streams' clocks need
   not agree — each process carries its own timeline. *)
let write_chrome_streams oc streams =
  output_string oc "{\"traceEvents\":[";
  let first = ref true in
  let put s =
    if !first then first := false else output_char oc ',';
    output_string oc s
  in
  let grand_total = ref 0 and grand_dropped = ref 0 in
  List.iteri
    (fun i (sname, t) ->
      let pid = i + 1 in
      grand_total := !grand_total + t.total;
      grand_dropped := !grand_dropped + dropped t;
      put
        (Jsonx.obj
           [
             ("name", Jsonx.str "process_name");
             ("ph", Jsonx.str "M");
             ("pid", Jsonx.int pid);
             ("args", Jsonx.obj [ ("name", Jsonx.str sname) ]);
           ]);
      List.iter
        (fun cat ->
          put
            (Jsonx.obj
               [
                 ("name", Jsonx.str "thread_name");
                 ("ph", Jsonx.str "M");
                 ("pid", Jsonx.int pid);
                 ("tid", Jsonx.int (category_id cat));
                 ("args", Jsonx.obj [ ("name", Jsonx.str (category_name cat)) ]);
               ]))
        categories;
      iter t (fun e ->
          let slice =
            match (e.cat, e.name) with
            | Request, "req:begin" -> Some "B"
            | Request, "req:end" -> Some "E"
            | _ -> None
          in
          match slice with
          | Some ph ->
            put
              (Jsonx.obj
                 [
                   ( "name",
                     Jsonx.str (Printf.sprintf "req%d#%d" e.a e.b) );
                   ("cat", Jsonx.str (category_name e.cat));
                   ("ph", Jsonx.str ph);
                   ("ts", Jsonx.int e.at);
                   ("pid", Jsonx.int pid);
                   ("tid", Jsonx.int (category_id e.cat));
                   ( "args",
                     Jsonx.obj
                       [ ("request", Jsonx.int e.a); ("attempt", Jsonx.int e.b) ]
                   );
                 ])
          | None ->
            put
              (Jsonx.obj
                 [
                   ("name", Jsonx.str e.name);
                   ("cat", Jsonx.str (category_name e.cat));
                   ("ph", Jsonx.str "i");
                   ("s", Jsonx.str "t");
                   ("ts", Jsonx.int e.at);
                   ("pid", Jsonx.int pid);
                   ("tid", Jsonx.int (category_id e.cat));
                   ( "args",
                     Jsonx.obj [ ("a", Jsonx.int e.a); ("b", Jsonx.int e.b) ] );
                 ])))
    streams;
  Printf.fprintf oc
    "],\"otherData\":{\"clock\":\"guest_insns\",\"streams\":%d,\"dropped\":%d,\"total\":%d}}"
    (List.length streams) !grand_dropped !grand_total
