(* Coordination ledger — per-optimization attribution of coordination
   savings (the paper's Fig. 17 breakdown, as a first-class report).

   Each optimization pass in the rule translator removes coordination
   work: Sync-tagged host instructions and whole coordination
   operations (a flags save or restore).  The emitter records, per
   translated TB, a small provenance vector saying how much each pass
   saved *in that TB's code* versus the counterfactual where the pass
   is off.  The ledger then aggregates two views:

   - static: provenance summed once per translation (savings baked
     into the emitted code);
   - dynamic: provenance summed once per TB *execution* (host
     instructions and sync ops actually avoided at run time), plus
     dynamic-only entries the emitter cannot see — e.g. the lazy
     flag-parse cost III-B pays at interrupt delivery is charged here
     as a negative saving.

   Provenance layout: a flat int array of length [2 * n_passes];
   slot [2*i] holds sync ops saved and slot [2*i+1] host insns saved
   for the pass with index [i].  Negative entries are legal and mean
   the pass *costs* that much in the given view. *)

type pass =
  | Reduction       (* III-B   flag-use reduction *)
  | Elim_restores   (* III-C.1 redundant restore elimination *)
  | Elim_mem        (* III-C.2 save/restore elimination around helpers *)
  | Inter_tb        (* III-C.3 inter-TB save elision *)
  | Sched_dbu       (* III-D.1 flag-sync scheduling *)
  | Sched_irq       (* III-D.2 interrupt-check scheduling *)
  | Region          (* hot-region superblock fusion *)

let passes =
  [ Reduction; Elim_restores; Elim_mem; Inter_tb; Sched_dbu; Sched_irq; Region ]

let n_passes = 7

let pass_index = function
  | Reduction -> 0
  | Elim_restores -> 1
  | Elim_mem -> 2
  | Inter_tb -> 3
  | Sched_dbu -> 4
  | Sched_irq -> 5
  | Region -> 6

let pass_id = function
  | Reduction -> "III-B"
  | Elim_restores -> "III-C.1"
  | Elim_mem -> "III-C.2"
  | Inter_tb -> "III-C.3"
  | Sched_dbu -> "III-D.1"
  | Sched_irq -> "III-D.2"
  | Region -> "region"

let pass_name = function
  | Reduction -> "flag-use reduction"
  | Elim_restores -> "redundant restore elimination"
  | Elim_mem -> "helper save/restore elimination"
  | Inter_tb -> "inter-TB save elision"
  | Sched_dbu -> "flag-sync scheduling"
  | Sched_irq -> "interrupt-check scheduling"
  | Region -> "hot-region superblock fusion"

(* ---------- provenance vectors ---------- *)

let prov_len = 2 * n_passes
let zero_prov () = Array.make prov_len 0

let prov_add p pass ~ops ~insns =
  let i = pass_index pass in
  p.(2 * i) <- p.(2 * i) + ops;
  p.((2 * i) + 1) <- p.((2 * i) + 1) + insns

let prov_diff ~old_ p =
  Array.init prov_len (fun i ->
      p.(i) - (if i < Array.length old_ then old_.(i) else 0))

let prov_is_zero p = Array.for_all (fun v -> v = 0) p

(* ---------- the ledger ---------- *)

type t = {
  static_ops : int array;
  static_insns : int array;
  dyn_ops : int array;
  dyn_insns : int array;
  mutable tb_statics : int; (* translations whose provenance was recorded *)
  mutable tb_execs : int;   (* TB executions with non-empty provenance *)
}

let create () =
  {
    static_ops = Array.make n_passes 0;
    static_insns = Array.make n_passes 0;
    dyn_ops = Array.make n_passes 0;
    dyn_insns = Array.make n_passes 0;
    tb_statics = 0;
    tb_execs = 0;
  }

let reset t =
  Array.fill t.static_ops 0 n_passes 0;
  Array.fill t.static_insns 0 n_passes 0;
  Array.fill t.dyn_ops 0 n_passes 0;
  Array.fill t.dyn_insns 0 n_passes 0;
  t.tb_statics <- 0;
  t.tb_execs <- 0

let add_into ops insns p =
  for i = 0 to n_passes - 1 do
    ops.(i) <- ops.(i) + p.(2 * i);
    insns.(i) <- insns.(i) + p.((2 * i) + 1)
  done

let record_static t p =
  if Array.length p = prov_len then begin
    add_into t.static_ops t.static_insns p;
    t.tb_statics <- t.tb_statics + 1
  end

let record_static_delta t p =
  (* re-emission: replaces a TB's prior contribution, so the
     translation count is not bumped *)
  if Array.length p = prov_len then add_into t.static_ops t.static_insns p

let record_exec t p =
  (* tolerates [||] — TBs from the baseline translator carry no
     provenance *)
  if Array.length p = prov_len && not (prov_is_zero p) then begin
    add_into t.dyn_ops t.dyn_insns p;
    t.tb_execs <- t.tb_execs + 1
  end

let add_dynamic t pass ~ops ~insns =
  let i = pass_index pass in
  t.dyn_ops.(i) <- t.dyn_ops.(i) + ops;
  t.dyn_insns.(i) <- t.dyn_insns.(i) + insns

let static_ops t pass = t.static_ops.(pass_index pass)
let static_insns t pass = t.static_insns.(pass_index pass)
let dyn_ops t pass = t.dyn_ops.(pass_index pass)
let dyn_insns t pass = t.dyn_insns.(pass_index pass)

let sum a = Array.fold_left ( + ) 0 a
let total_static_ops t = sum t.static_ops
let total_static_insns t = sum t.static_insns
let total_dyn_ops t = sum t.dyn_ops
let total_dyn_insns t = sum t.dyn_insns

(* ---------- reporting ---------- *)

let pp_report fmt t =
  Format.fprintf fmt
    "coordination ledger (savings vs the pass being disabled)@,";
  Format.fprintf fmt "  %-9s %-34s %10s %10s %12s %12s@," "pass" ""
    "static ops" "static ins" "dynamic ops" "dynamic ins";
  List.iter
    (fun p ->
      Format.fprintf fmt "  %-9s %-34s %10d %10d %12d %12d@," (pass_id p)
        (pass_name p) (static_ops t p) (static_insns t p) (dyn_ops t p)
        (dyn_insns t p))
    passes;
  Format.fprintf fmt "  %-9s %-34s %10d %10d %12d %12d@," "total" ""
    (total_static_ops t) (total_static_insns t) (total_dyn_ops t)
    (total_dyn_insns t);
  Format.fprintf fmt
    "  (%d TB translations attributed, %d attributed TB executions)"
    t.tb_statics t.tb_execs

let to_json t =
  Jsonx.obj
    [
      ( "passes",
        Jsonx.arr
          (List.map
             (fun p ->
               Jsonx.obj
                 [
                   ("id", Jsonx.str (pass_id p));
                   ("name", Jsonx.str (pass_name p));
                   ("static_ops", Jsonx.int (static_ops t p));
                   ("static_insns", Jsonx.int (static_insns t p));
                   ("dyn_ops", Jsonx.int (dyn_ops t p));
                   ("dyn_insns", Jsonx.int (dyn_insns t p));
                 ])
             passes) );
      ( "total",
        Jsonx.obj
          [
            ("static_ops", Jsonx.int (total_static_ops t));
            ("static_insns", Jsonx.int (total_static_insns t));
            ("dyn_ops", Jsonx.int (total_dyn_ops t));
            ("dyn_insns", Jsonx.int (total_dyn_insns t));
          ] );
      ("tb_statics", Jsonx.int t.tb_statics);
      ("tb_execs", Jsonx.int t.tb_execs);
    ]
