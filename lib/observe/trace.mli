(** Ring-buffered structured event trace.

    Events are typed [(at, cat, name, a, b)] tuples where [at] is the
    machine clock — retired guest instructions, installed by the
    runtime via {!set_clock} — and [a]/[b] are event-specific integer
    payloads (a guest PC, a TB id, a fault site…).  The ring is
    bounded; when full the oldest event is overwritten and
    {!dropped} advances, so tracing is safe to leave on for
    arbitrarily long runs.

    Emission never charges {!Repro_x86.Stats} counters and never
    draws injector PRNG: traced runs are bit-identical to untraced
    runs (tested in [test_observe]). *)

type category =
  | Exec      (** TB dispatch, translation, engine returns *)
  | Chain     (** block chaining: patch and follow *)
  | Sync      (** coordination events (context save/restore related) *)
  | Irq       (** timer raise, delivery, scheduled checks *)
  | Tlb       (** softMMU slow path, flushes *)
  | Shadow    (** shadow verification replays and divergences *)
  | Watchdog  (** livelock detection and recovery *)
  | Snapshot  (** checkpoint capture and restore *)
  | Fault     (** fault-injector firings *)
  | Fleet     (** supervision: restarts, health transitions, breaker trips *)
  | Request
      (** causal request lifecycle: assignment, per-attempt begin/end,
          retries and verdicts, keyed by request id in [a] *)

type event = { at : int; cat : category; name : string; a : int; b : int }

type t

val categories : category list
val category_name : category -> string

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 events.  Raises [Invalid_argument] on a
    non-positive capacity. *)

val set_clock : t -> (unit -> int) -> unit
(** Install the timestamp source (the runtime points this at retired
    guest instructions).  Default clock is constant 0. *)

val emit : t -> ?a:int -> ?b:int -> category -> string -> unit

val capacity : t -> int
val length : t -> int
(** Events currently retained. *)

val total : t -> int
(** Events ever emitted. *)

val dropped : t -> int
(** Events overwritten by ring wrap ([total - length]). *)

val clear : t -> unit
val iter : t -> (event -> unit) -> unit
(** Oldest first. *)

val events : t -> event list
(** Oldest first. *)

val write_jsonl : out_channel -> t -> unit
(** One JSON object per event, oldest first, followed by a
    [{"meta":"trace","total":…,"dropped":…}] trailer line. *)

val write_chrome : out_channel -> t -> unit
(** Chrome trace-event JSON (Perfetto-loadable): instant events, one
    thread per category, [ts] in retired guest instructions. *)

val write_chrome_streams : out_channel -> (string * t) list -> unit
(** Merged Chrome/Perfetto export of several rings: one process per
    [(name, ring)] stream (a fleet machine, the dispatcher), one
    thread per category within it. [Request]-category
    [req:begin]/[req:end] pairs are rendered as duration slices so a
    slow or retried request shows up as a span on its machine's
    track; all other events stay instants. Streams keep their own
    clocks (a machine's monotone work clock need not agree with the
    fleet's request counter). *)
