(* Leveled logger for the DBT stack.

   A deliberately tiny replacement for the ad-hoc Format.eprintf
   sites: one global level, output on stderr, no timestamps (the
   machine clock is retired guest instructions, which the call sites
   don't all have access to — events that need timestamps belong in
   Trace, not the log). *)

type level = Error | Warn | Info | Debug | Trace

let severity = function
  | Error -> 0
  | Warn -> 1
  | Info -> 2
  | Debug -> 3
  | Trace -> 4

let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"
  | Trace -> "trace"

let level_of_string s =
  match String.lowercase_ascii s with
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | "trace" -> Some Trace
  | _ -> None

(* Atomic rather than [ref]: the level is read by every domain's call
   sites and written once by the CLI — a plain ref would be a data
   race under [Domain.spawn]. *)
let current = Atomic.make Warn
let set_level l = Atomic.set current l
let level () = Atomic.get current
let enabled l = severity l <= severity (Atomic.get current)

let logf l fmt =
  if enabled l then
    Format.eprintf ("[%s] " ^^ fmt ^^ "@.") (level_name l)
  else Format.ifprintf Format.err_formatter fmt

let err fmt = logf Error fmt
let warn fmt = logf Warn fmt
let info fmt = logf Info fmt
let debug fmt = logf Debug fmt
let trace fmt = logf Trace fmt
