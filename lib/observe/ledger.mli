(** Coordination ledger — attributes coordination savings (sync ops
    and Sync-tagged host instructions removed) to the optimization
    pass responsible, statically (per translation) and dynamically
    (per TB execution).  Reproduces the paper's Fig. 17 breakdown.

    The emitter builds a {e provenance vector} per TB while emitting:
    for each pass, how many sync ops and host instructions the
    emitted code saves versus the counterfactual with that pass
    disabled.  [record_static] sums it once at translation;
    [record_exec] sums it on every execution of the TB.  Negative
    entries mean the pass costs coordination in that view (e.g.
    III-C.3 installs an entry-convention check; III-B pays a lazy
    flag parse at interrupt delivery). *)

type pass =
  | Reduction       (** III-B: flag-use reduction *)
  | Elim_restores   (** III-C.1: redundant restore elimination *)
  | Elim_mem        (** III-C.2: save/restore elimination around helpers *)
  | Inter_tb        (** III-C.3: inter-TB save elision *)
  | Sched_dbu       (** III-D.1: flag-sync scheduling *)
  | Sched_irq       (** III-D.2: interrupt-check scheduling *)
  | Region          (** hot-region superblock fusion: boundary Sync
                        pairs and per-block interrupt checks removed
                        by fusing a hot chained trace into one body *)

val passes : pass list
val n_passes : int
val pass_index : pass -> int
val pass_id : pass -> string
(** Paper section: ["III-B"], ["III-C.1"], … *)

val pass_name : pass -> string

(** {2 Provenance vectors}

    Flat int array of length [prov_len = 2 * n_passes]: slot [2*i]
    holds sync ops saved, slot [2*i+1] host instructions saved, for
    the pass with index [i]. *)

val prov_len : int
val zero_prov : unit -> int array
val prov_add : int array -> pass -> ops:int -> insns:int -> unit
val prov_diff : old_:int array -> int array -> int array
(** Elementwise [p - old_] (missing [old_] slots read as 0) — the
    static delta when a TB is re-emitted in place. *)

val prov_is_zero : int array -> bool

(** {2 Ledger} *)

type t

val create : unit -> t
val reset : t -> unit

val record_static : t -> int array -> unit
(** Sum a TB's provenance into the static view (call once per
    translation, or with a {!prov_diff} delta on re-emission).
    Vectors of the wrong length are ignored. *)

val record_static_delta : t -> int array -> unit
(** Like {!record_static} but without bumping the translation count —
    for {!prov_diff} deltas when a TB is re-emitted in place. *)

val record_exec : t -> int array -> unit
(** Sum a TB's provenance into the dynamic view (call once per TB
    execution).  Tolerates [[||]] from provenance-free TBs. *)

val add_dynamic : t -> pass -> ops:int -> insns:int -> unit
(** Dynamic-only entries the emitter cannot see (interrupt-delivery
    costs, scheduling effects).  Negative values record costs. *)

val static_ops : t -> pass -> int
val static_insns : t -> pass -> int
val dyn_ops : t -> pass -> int
val dyn_insns : t -> pass -> int
val total_static_ops : t -> int
val total_static_insns : t -> int
val total_dyn_ops : t -> int
val total_dyn_insns : t -> int

val pp_report : Format.formatter -> t -> unit
val to_json : t -> string
