module Snapshot = Repro_snapshot.Snapshot
module Fi = Repro_faultinject.Faultinject
module Atomicio = Repro_common.Atomicio

exception Depot_error of { section : string; reason : string }

let err section fmt =
  Printf.ksprintf (fun reason -> raise (Depot_error { section; reason })) fmt

(* Any decoder slip (truncated payload, bad tag) inside [section]
   becomes the typed error; nothing else escapes the load path. *)
let guard section f =
  try f () with
  | Snapshot.Corrupt reason -> err section "%s" reason
  | Invalid_argument reason -> err section "%s" reason

let format_version = 1
let magic = "DBTDEPOT"
let manifest_name = "MANIFEST"
let manifest_header = "DBTDEPOT-MANIFEST 1"

type compat = { c_mode : string; c_rules_digest : int; c_hot_threshold : int }

type t = {
  mutable generation : int;
  compat : compat;
  rules : string;
  cache : string;
  srcsum : int array;
  mutable health : string;
  mutable quarantined : int list;  (* sorted ascending *)
}

let create ~compat ~rules ~cache ~srcsum ~health =
  { generation = 0; compat; rules; cache; srcsum; health; quarantined = [] }

let compat t = t.compat
let generation t = t.generation
let rules t = t.rules
let cache_payload t = t.cache
let srcsum t = t.srcsum
let health t = t.health
let set_health t h = t.health <- h
let quarantined_pcs t = t.quarantined

let quarantine_pcs t pcs =
  let merged = List.sort_uniq compare (pcs @ t.quarantined) in
  let grew = List.length merged > List.length t.quarantined in
  t.quarantined <- merged;
  grew

let ruleset_digest rs = Snapshot.fnv1a32 (Repro_rules.Serialize.save rs)

(* ---- blob container ---- *)

let encode_compat c =
  let b = Snapshot.Enc.create () in
  Snapshot.Enc.string b c.c_mode;
  Snapshot.Enc.int b c.c_rules_digest;
  Snapshot.Enc.int b c.c_hot_threshold;
  Snapshot.Enc.contents b

let decode_compat payload =
  guard "compat" @@ fun () ->
  let d = Snapshot.Dec.of_string ~name:"compat" payload in
  let c_mode = Snapshot.Dec.string d in
  let c_rules_digest = Snapshot.Dec.int d in
  let c_hot_threshold = Snapshot.Dec.int d in
  if not (Snapshot.Dec.finished d) then err "compat" "trailing bytes";
  { c_mode; c_rules_digest; c_hot_threshold }

let encode_ints l =
  let b = Snapshot.Enc.create () in
  Snapshot.Enc.int_array b (Array.of_list l);
  Snapshot.Enc.contents b

let decode_ints section payload =
  guard section @@ fun () ->
  let d = Snapshot.Dec.of_string ~name:section payload in
  let a = Snapshot.Dec.int_array d in
  if not (Snapshot.Dec.finished d) then err section "trailing bytes";
  Array.to_list a

let to_string t =
  let b = Snapshot.Enc.create () in
  Snapshot.Enc.int b t.generation;
  let srcsum_payload =
    let e = Snapshot.Enc.create () in
    Snapshot.Enc.int_array e t.srcsum;
    Snapshot.Enc.contents e
  in
  let sections =
    [
      ("compat", encode_compat t.compat);
      ("rules", t.rules);
      ("cache", t.cache);
      ("srcsum", srcsum_payload);
      ("health", t.health);
      ("quarantine", encode_ints t.quarantined);
    ]
  in
  Snapshot.Enc.int b (List.length sections);
  List.iter
    (fun (name, payload) ->
      Snapshot.Enc.string b name;
      Snapshot.Enc.string b payload;
      Snapshot.Enc.int b (Snapshot.fnv1a32 payload))
    sections;
  let body = Snapshot.Enc.contents b in
  let hdr = Snapshot.Enc.create () in
  Snapshot.Enc.int hdr format_version;
  Snapshot.Enc.int hdr (Snapshot.fnv1a32 body);
  magic ^ Snapshot.Enc.contents hdr ^ body

let of_string s =
  if String.length s < 24 then
    err "container" "truncated header (%d bytes)" (String.length s);
  if String.sub s 0 8 <> magic then err "container" "bad magic";
  let hdr = Snapshot.Dec.of_string ~name:"container" (String.sub s 8 16) in
  let version = guard "container" (fun () -> Snapshot.Dec.int hdr) in
  if version <> format_version then
    err "container" "format version %d, this build reads %d" version
      format_version;
  let sum = guard "container" (fun () -> Snapshot.Dec.int hdr) in
  let body = String.sub s 24 (String.length s - 24) in
  let actual = Snapshot.fnv1a32 body in
  if sum <> actual then
    err "container" "body checksum mismatch (stored %#x, computed %#x)" sum
      actual;
  let d = Snapshot.Dec.of_string ~name:"depot" body in
  let generation = guard "container" (fun () -> Snapshot.Dec.int d) in
  if generation < 0 then err "container" "negative generation";
  let count = guard "container" (fun () -> Snapshot.Dec.int d) in
  if count < 0 || count > 64 then err "container" "bad section count %d" count;
  let sections =
    List.init count (fun _ ->
        guard "container" @@ fun () ->
        let name = Snapshot.Dec.string d in
        let payload = Snapshot.Dec.string d in
        let sum = Snapshot.Dec.int d in
        let actual = Snapshot.fnv1a32 payload in
        if sum <> actual then
          err name "section checksum mismatch (stored %#x, computed %#x)" sum
            actual;
        (name, payload))
  in
  if not (guard "container" (fun () -> Snapshot.Dec.finished d)) then
    err "container" "trailing bytes";
  let find name =
    match List.assoc_opt name sections with
    | Some p -> p
    | None -> err name "missing section"
  in
  let compat = decode_compat (find "compat") in
  let srcsum = Array.of_list (decode_ints "srcsum" (find "srcsum")) in
  let quarantined = List.sort_uniq compare (decode_ints "quarantine" (find "quarantine")) in
  {
    generation;
    compat;
    rules = find "rules";
    cache = find "cache";
    srcsum;
    health = find "health";
    quarantined;
  }

(* ---- the directory: manifest-committed generations ---- *)

type manifest = {
  m_generation : int;
  m_blob : string;
  m_bytes : int;
  m_checksum : int;
}

let blob_name t = Printf.sprintf "depot-%d.bin" t.generation
let is_blob f = String.length f > 10 && String.sub f 0 6 = "depot-" && Filename.check_suffix f ".bin"

let read_whole_file section path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> s
  | exception Sys_error e -> err section "%s" e

let parse_manifest s =
  match String.split_on_char '\n' s with
  | header :: rest when header = manifest_header ->
    let kv =
      List.filter_map
        (fun line ->
          match String.index_opt line ' ' with
          | Some i ->
            Some
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) )
          | None -> None)
        rest
    in
    let get k =
      match List.assoc_opt k kv with
      | Some v -> v
      | None -> err "manifest" "missing field %s" k
    in
    let num k =
      match int_of_string_opt (get k) with
      | Some n when n >= 0 -> n
      | _ -> err "manifest" "bad field %s %S" k (get k)
    in
    let blob = get "blob" in
    if Filename.basename blob <> blob || not (is_blob blob) then
      err "manifest" "bad blob name %S" blob;
    {
      m_generation = num "generation";
      m_blob = blob;
      m_bytes = num "bytes";
      m_checksum = num "checksum";
    }
  | _ -> err "manifest" "bad manifest header"

let read_manifest dir =
  let path = Filename.concat dir manifest_name in
  if not (Sys.file_exists path) then
    err "manifest" "no depot manifest in %s" dir;
  parse_manifest (read_whole_file "manifest" path)

let render_manifest m =
  Printf.sprintf "%s\ngeneration %d\nblob %s\nbytes %d\nchecksum 0x%08x\n"
    manifest_header m.m_generation m.m_blob m.m_bytes m.m_checksum

let save ?inject ~dir t =
  (match Sys.is_directory dir with
  | true -> ()
  | false -> err "container" "%s exists and is not a directory" dir
  | exception Sys_error _ -> (
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()));
  let prev =
    if Sys.file_exists (Filename.concat dir manifest_name) then
      (* an unreadable previous manifest must not brick saving: the new
         commit replaces it wholesale *)
      try Some (read_manifest dir) with Depot_error _ -> None
    else None
  in
  t.generation <-
    (match prev with Some m -> m.m_generation + 1 | None -> 1);
  let blob = to_string t in
  let name = blob_name t in
  (* Fault site: a torn write — a prefix of the blob reaches disk yet
     the commit protocol proceeds. The manifest records the intended
     bytes/checksum, which is exactly how the next load catches it. *)
  let written =
    match inject with
    | Some inj when Fi.fire inj Fi.Depot_torn ->
      String.sub blob 0 (String.length blob / 2)
    | _ -> blob
  in
  Atomicio.write (Filename.concat dir name) written;
  Atomicio.write
    (Filename.concat dir manifest_name)
    (render_manifest
       {
         m_generation = t.generation;
         m_blob = name;
         m_bytes = String.length blob;
         m_checksum = Snapshot.fnv1a32 blob;
       });
  (* Older generations (and orphans from crashed saves) are garbage
     once the manifest moved on. Removal is best-effort: a leftover
     blob is unreachable, not harmful. *)
  Array.iter
    (fun f ->
      if f <> name && is_blob f then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  t.generation

let load ?inject dir =
  (match Sys.is_directory dir with
  | true -> ()
  | false -> err "manifest" "%s is not a directory" dir
  | exception Sys_error _ -> err "manifest" "no depot at %s" dir);
  let m = read_manifest dir in
  let raw = read_whole_file "blob" (Filename.concat dir m.m_blob) in
  (* Read-path fault sites: lose the tail, or flip one bit. Both are
     deterministic in *placement* (middle of the blob) — only the
     firing decision draws from the injector PRNG. *)
  let raw =
    match inject with
    | Some inj ->
      let raw =
        if Fi.fire inj Fi.Depot_trunc then
          String.sub raw 0 (String.length raw / 2)
        else raw
      in
      if Fi.fire inj Fi.Depot_flip && String.length raw > 0 then begin
        let b = Bytes.of_string raw in
        let pos = Bytes.length b / 2 in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
        Bytes.to_string b
      end
      else raw
    | None -> raw
  in
  if String.length raw <> m.m_bytes then
    err "blob" "manifest promises %d bytes, %s has %d" m.m_bytes m.m_blob
      (String.length raw);
  let actual = Snapshot.fnv1a32 raw in
  if actual <> m.m_checksum then
    err "blob" "blob checksum mismatch (manifest %#x, computed %#x)"
      m.m_checksum actual;
  let t = of_string raw in
  if t.generation <> m.m_generation then
    err "manifest" "generation skew (manifest %d, blob %d)" m.m_generation
      t.generation;
  t
