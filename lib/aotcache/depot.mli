(** The persistent AOT code depot: a durable on-disk artifact holding
    a learned ruleset plus translation recipes (TBs and superblocks),
    decoupled from full machine snapshots — so a machine, or a whole
    fleet, boots {e warm} with (almost) zero translation cost.

    The depot is a {e directory}:

    {v
      <dir>/MANIFEST        tiny text file, committed last
      <dir>/depot-<g>.bin   one immutable generation-stamped blob
    v}

    and every update is crash-atomic: the new blob is written first
    (temp + fsync + rename via {!Repro_common.Atomicio}), then the
    manifest — which names the blob, its byte count and its whole-blob
    FNV checksum — commits the new generation with a second atomic
    rename. A crash between the two leaves an orphaned blob the loader
    never looks at; the previous generation stays live.

    Blob container format:

    {v
      bytes 0..7    magic "DBTDEPOT"
      bytes 8..15   u64 LE format version (currently 1)
      bytes 16..23  u64 LE FNV-1a-32 checksum of the body
      bytes 24..    body: u64 generation, u64 section count, then per
                    section a length-prefixed name, a length-prefixed
                    payload and a u64 FNV-1a-32 payload checksum
    v}

    Sections: ["compat"] (the {!compat} key), ["rules"] (the
    serialized ruleset), ["cache"] (translation recipes — the opaque
    payload produced by [Repro_dbt.System]), ["srcsum"] (per-recipe
    guest-code checksums, the install-time fidelity guard), ["health"]
    (blacklist / rule strikes / quarantined rules) and ["quarantine"]
    (guest PCs whose depot entries were poisoned — shadow verification
    caught a depot-loaded TB diverging, and the write-back keeps the
    poison from ever reloading).

    Nothing translated is trusted untyped: every load failure — torn
    write, truncation, bit flip, version or compatibility skew —
    raises {!Depot_error} naming the damaged section, and callers
    degrade to cold JIT translation instead of crashing. *)

exception Depot_error of { section : string; reason : string }
(** The only exception the load/verify paths raise, whatever the
    bytes on disk. [section] is a blob section name, or ["manifest"] /
    ["blob"] / ["container"] for damage outside any section. *)

val format_version : int

type compat = {
  c_mode : string;  (** engine mode name, e.g. ["rules:full"] *)
  c_rules_digest : int;
      (** FNV-1a-32 of the serialized ruleset the recipes were
          translated under (see {!ruleset_digest}); [0] in qemu mode *)
  c_hot_threshold : int;
      (** {!Repro_tcg.Engine.hot_threshold} at capture time — recipes
          record superblocks fused at exactly this hotness *)
}
(** The compatibility key. Install refuses a depot whose key differs
    from the machine's in any component: recipes are only replayable
    under the translator configuration that produced them. *)

type t

val create :
  compat:compat ->
  rules:string ->
  cache:string ->
  srcsum:int array ->
  health:string ->
  t
(** A fresh depot at generation 0 (stamped on first {!save}). *)

val compat : t -> compat
val generation : t -> int

val rules : t -> string
(** The serialized ruleset ({!Repro_rules.Serialize} format) — a warm
    boot can adopt it instead of re-learning. *)

val cache_payload : t -> string
val srcsum : t -> int array
val health : t -> string
val set_health : t -> string -> unit

val quarantined_pcs : t -> int list
(** Sorted guest PCs whose depot recipes are poisoned. *)

val quarantine_pcs : t -> int list -> bool
(** Add PCs to the poison set (write-back after a shadow-verification
    divergence on a depot-installed TB). Returns [true] when the set
    grew — i.e. a {!save} is warranted. *)

val ruleset_digest : Repro_rules.Ruleset.t -> int
(** FNV-1a-32 over the byte-stable {!Repro_rules.Serialize.save}
    encoding — the ruleset component of the {!compat} key. *)

val to_string : t -> string
val of_string : string -> t
(** Parse and validate magic, version, every per-section checksum and
    the whole-body checksum. Raises {!Depot_error} (and nothing else)
    on any failure. *)

val save : ?inject:Repro_faultinject.Faultinject.t -> dir:string -> t -> int
(** Commit the depot to [dir] as the next generation (creating the
    directory if needed) and garbage-collect older blobs. Returns the
    committed generation. With [inject], the {!Repro_faultinject}
    [Depot_torn] site can tear the blob write (a prefix reaches disk
    yet the manifest still commits — the worst case the checksums
    exist to catch). *)

val load : ?inject:Repro_faultinject.Faultinject.t -> string -> t
(** Load the manifest-current generation from a depot directory.
    With [inject], the [Depot_trunc] / [Depot_flip] sites damage the
    bytes after the read, exercising the verification path. Raises
    {!Depot_error} on any integrity failure. *)

val manifest_name : string
(** ["MANIFEST"] — exposed so tooling (CI corruption drills) can
    locate the current blob. *)

val blob_name : t -> string
(** The blob filename this depot's generation lives in. *)
