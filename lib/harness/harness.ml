open Repro_common
module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module Stats = Repro_x86.Stats
module Table = Repro_common.Table

type t = {
  ruleset : Repro_rules.Ruleset.t;
  target_insns : int;
  timer_period : int;
  memo : (string * string, run) Hashtbl.t;
}

and run = {
  bench : string;
  mode : string;
  guest : int;
  host : int;
  sync_insns : int;
  sync_ops : int;
  mmu_accesses : int;
  irq_polls : int;
  irqs_delivered : int;
  sys_helper_calls : int;
  exit_code : Word32.t;
  shadow_replays : int;
  shadow_divergences : int;
  rules_quarantined : int;
  quarantine_fallbacks : int;
  faults_injected : int;
}

exception Did_not_halt of string

let create ?ruleset ?(target_insns = 200_000) ?(timer_period = 5_000) () =
  let ruleset =
    match ruleset with
    | Some r -> r
    | None ->
      (* The paper applies the parameterized rules previously learned
         by the MICRO'20 framework — a much larger training corpus
         than ours. The hand-checked core set stands in for that
         coverage, extended by what our pipeline learns (see
         EXPERIMENTS.md). *)
      let learned = Repro_learn.Learn.learn () in
      Repro_rules.Ruleset.of_list
        (Repro_rules.Builtin.all () @ learned.Repro_learn.Learn.rules)
  in
  { ruleset; target_insns; timer_period; memo = Hashtbl.create 64 }

let host_per_guest r = if r.guest = 0 then 0. else float_of_int r.host /. float_of_int r.guest
let sync_per_guest r = if r.guest = 0 then 0. else float_of_int r.sync_insns /. float_of_int r.guest

let modes =
  ("qemu", D.System.Qemu)
  :: List.map (fun (n, o) -> ("rules:" ^ n, D.System.Rules o)) D.Opt.levels

let execute ?(chaining = true) ?timer_period ?ruleset ?inject ?shadow_depth
    ?quarantine_threshold t ~bench ~mode_name mode user_program =
  let timer_period = Option.value timer_period ~default:t.timer_period in
  let key =
    ( bench,
      Printf.sprintf "%s%s/t%d%s%s%s%s" mode_name
        (if chaining then "" else "/nochain")
        timer_period
        (if ruleset = None then "" else "/trunc")
        (if inject = None then "" else "/inj")
        (match shadow_depth with None -> "" | Some d -> Printf.sprintf "/sh%d" d)
        (match quarantine_threshold with
        | None -> ""
        | Some q -> Printf.sprintf "/q%d" q) )
  in
  match Hashtbl.find_opt t.memo key with
  | Some r -> r
  | None ->
    let image = K.build ~timer_period ~user_program () in
    let ruleset = Option.value ruleset ~default:t.ruleset in
    let sys = D.System.create ~ruleset ?inject ?shadow_depth ?quarantine_threshold mode in
    K.load image (fun base words -> D.System.load_image sys base words);
    let budget = 40 * t.target_insns in
    let res = D.System.run ~chaining ~max_guest_insns:budget sys in
    let exit_code =
      match res.T.Engine.reason with
      | `Halted c -> c
      | `Insn_limit | `Deadline ->
        raise
          (Did_not_halt
             (Printf.sprintf "Harness: %s under %s did not halt" bench mode_name))
      | `Livelock pc ->
        raise
          (Did_not_halt
             (Printf.sprintf "Harness: %s under %s livelocked at %#x" bench mode_name
                pc))
    in
    let s = D.System.stats sys in
    let r =
      {
        bench;
        mode = mode_name;
        guest = s.Stats.guest_insns;
        host = s.Stats.host_insns;
        sync_insns = Stats.tag_count s Repro_x86.Insn.Tag_sync;
        sync_ops = s.Stats.sync_ops;
        mmu_accesses = s.Stats.mmu_accesses;
        irq_polls = s.Stats.irq_polls;
        irqs_delivered = s.Stats.irqs_delivered;
        sys_helper_calls = s.Stats.sys_insns;
        exit_code;
        shadow_replays = s.Stats.shadow_replays;
        shadow_divergences = s.Stats.shadow_divergences;
        rules_quarantined = s.Stats.rules_quarantined;
        quarantine_fallbacks = s.Stats.quarantine_fallbacks;
        faults_injected =
          (match inject with
          | None -> 0
          | Some inj -> Repro_faultinject.Faultinject.total_fired inj);
      }
    in
    Hashtbl.replace t.memo key r;
    r

let spec_program t spec =
  let iters = max 1 (t.target_insns / W.insns_per_iteration spec) in
  W.generate spec ~iterations:iters

let run_spec ?inject ?shadow_depth ?quarantine_threshold t spec mode =
  let mode_name = D.System.mode_name mode in
  execute ?inject ?shadow_depth ?quarantine_threshold t ~bench:spec.W.name
    ~mode_name mode (spec_program t spec)

let run_app t app mode =
  let mode_name = D.System.mode_name mode in
  let user = W.generate_app app ~iterations:(max 1 (t.target_insns / 900)) in
  execute t ~bench:app.W.app_name ~mode_name mode user

(* ---------- experiment tables ---------- *)

type table = { title : string; header : string list; rows : string list list }

let render tb =
  Printf.sprintf "== %s ==\n%s" tb.title (Table.render ~header:tb.header tb.rows)

let qemu = D.System.Qemu
let rules o = D.System.Rules o

let per_bench _t f = List.map (fun spec -> f spec) W.cint2006

let table1 t =
  let rows =
    per_bench t (fun spec ->
        let r = run_spec t spec qemu in
        let pct n = Table.percent (float_of_int n /. float_of_int r.guest) in
        [ spec.W.name; pct r.sys_helper_calls; pct r.mmu_accesses; pct r.irq_polls ])
  in
  let geo idx =
    Table.geomean
      (per_bench t (fun spec ->
           let r = run_spec t spec qemu in
           let v =
             match idx with
             | 0 -> r.sys_helper_calls
             | 1 -> r.mmu_accesses
             | _ -> r.irq_polls
           in
           float_of_int v /. float_of_int r.guest))
  in
  {
    title = "Table I: coordination-trigger frequencies (measured, QEMU mode)";
    header = [ "benchmark"; "system-level"; "memory"; "irq checks" ];
    rows =
      rows
      @ [
          [ "GEOMEAN"; Table.percent (geo 0); Table.percent (geo 1); Table.percent (geo 2) ];
        ];
  }

let avg xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let fig8 t =
  let per_op level =
    avg
      (per_bench t (fun spec ->
           let r = run_spec t spec (rules level) in
           if r.sync_ops = 0 then 0.
           else float_of_int r.sync_insns /. float_of_int r.sync_ops))
  in
  {
    title = "Fig 8: host instructions per coordination operation (paper: 14 -> 3)";
    header = [ "design"; "insns/coordination" ];
    rows =
      [
        [ "unoptimized (parse one-to-many)"; Table.fixed 1 (per_op D.Opt.base) ];
        [ "+ reduction (packed CCR)"; Table.fixed 1 (per_op D.Opt.reduction_only) ];
      ];
  }

let speedup t spec mode =
  let q = run_spec t spec qemu in
  let r = run_spec t spec mode in
  float_of_int q.host /. float_of_int r.host

let fig14 t =
  let rows =
    per_bench t (fun spec ->
        [
          spec.W.name;
          Table.fixed 2 (speedup t spec (rules D.Opt.base));
          Table.fixed 2 (speedup t spec (rules D.Opt.full));
        ])
  in
  let geo mode = Table.geomean (per_bench t (fun spec -> speedup t spec mode)) in
  {
    title = "Fig 14: speedup over QEMU (paper: 0.95x unoptimized, 1.36x full)";
    header = [ "benchmark"; "rules (unopt)"; "rules (full opt)" ];
    rows =
      rows
      @ [
          [
            "GEOMEAN";
            Table.fixed 2 (geo (rules D.Opt.base));
            Table.fixed 2 (geo (rules D.Opt.full));
          ];
        ];
  }

let fig15 t =
  let rows =
    per_bench t (fun spec ->
        let q = run_spec t spec qemu in
        let r = run_spec t spec (rules D.Opt.full) in
        [ spec.W.name; Table.fixed 2 (host_per_guest q); Table.fixed 2 (host_per_guest r) ])
  in
  let geo mode =
    Table.geomean (per_bench t (fun spec -> host_per_guest (run_spec t spec mode)))
  in
  {
    title = "Fig 15: host insns per guest insn (paper: QEMU 17.39, rules 15.40)";
    header = [ "benchmark"; "qemu"; "rules (full opt)" ];
    rows =
      rows
      @ [
          [
            "GEOMEAN";
            Table.fixed 2 (geo qemu);
            Table.fixed 2 (geo (rules D.Opt.full));
          ];
        ];
  }

let fig16 t =
  let geo mode = Table.geomean (per_bench t (fun spec -> speedup t spec mode)) in
  {
    title = "Fig 16: cumulative speedup (paper: 0.95 -> 1.22 -> 1.30 -> 1.36)";
    header = [ "configuration"; "geomean speedup vs qemu" ];
    rows =
      List.map
        (fun (name, opt) -> [ name; Table.fixed 2 (geo (rules opt)) ])
        D.Opt.levels;
  }

let fig17 t =
  let per_level opt =
    avg (per_bench t (fun spec -> sync_per_guest (run_spec t spec (rules opt))))
  in
  {
    title =
      "Fig 17: coordination host insns per guest insn (paper: 8.36 -> 1.79 -> 1.33 -> 0.89)";
    header = [ "configuration"; "sync insns / guest insn" ];
    rows =
      List.map
        (fun (name, opt) -> [ name; Table.fixed 2 (per_level opt) ])
        D.Opt.levels;
  }

let fig18 t =
  (* Native execution = the guest program on real hardware; with host
     instructions as the cycle proxy, slowdown = host insns per native
     guest insn. *)
  let rows =
    per_bench t (fun spec ->
        let q = run_spec t spec qemu in
        let r = run_spec t spec (rules D.Opt.full) in
        [
          spec.W.name;
          Table.fixed 2 (host_per_guest q) ^ "x";
          Table.fixed 2 (host_per_guest r) ^ "x";
        ])
  in
  let geo mode =
    Table.geomean (per_bench t (fun spec -> host_per_guest (run_spec t spec mode)))
  in
  {
    title = "Fig 18: slowdown vs native (paper: QEMU 18.73x, rules 13.83x; lower is better)";
    header = [ "benchmark"; "qemu"; "rules (full opt)" ];
    rows =
      rows
      @ [
          [
            "GEOMEAN";
            Table.fixed 2 (geo qemu) ^ "x";
            Table.fixed 2 (geo (rules D.Opt.full)) ^ "x";
          ];
        ];
  }

let fig19 t =
  let app_speedup app =
    let q = run_app t app qemu in
    let r = run_app t app (rules D.Opt.full) in
    float_of_int q.host /. float_of_int r.host
  in
  let rows =
    List.map
      (fun app -> [ app.W.app_name; Table.fixed 2 (app_speedup app) ])
      W.apps
  in
  let geo = Table.geomean (List.map app_speedup W.apps) in
  {
    title = "Fig 19: real-world application speedup (paper: 1.15x geomean)";
    header = [ "application"; "speedup vs qemu" ];
    rows = rows @ [ [ "GEOMEAN"; Table.fixed 2 geo ] ];
  }

let coverage t =
  let rows =
    per_bench t (fun spec ->
        (* fresh system to read per-benchmark translator counters *)
        let image =
          K.build ~timer_period:t.timer_period ~user_program:(spec_program t spec) ()
        in
        let sys = D.System.create ~ruleset:t.ruleset (rules D.Opt.full) in
        K.load image (fun base words -> D.System.load_image sys base words);
        ignore (D.System.run ~max_guest_insns:(40 * t.target_insns) sys);
        match sys.D.System.rule_translator with
        | None -> [ spec.W.name; "-"; "-" ]
        | Some tr ->
          let cov = D.Translator_rule.stats_rule_covered tr in
          let fb = D.Translator_rule.stats_fallback tr in
          [
            spec.W.name;
            string_of_int cov;
            string_of_int fb;
          ])
  in
  {
    title = "Extension: static rule coverage vs fallback (translated insns, full opt)";
    header = [ "benchmark"; "rule-covered"; "fallback" ];
    rows;
  }

(* ---------- ablations (extensions beyond the paper) ---------- *)

let ablation_chaining t =
  let benches = [ "gcc"; "perlbench"; "hmmer" ] in
  let rows =
    List.map
      (fun name ->
        let spec = W.find name in
        let prog = spec_program t spec in
        let q = execute t ~bench:name ~mode_name:"qemu" qemu prog in
        let with_chain =
          execute t ~bench:name ~mode_name:"rules:full" (rules D.Opt.full) prog
        in
        let without =
          execute ~chaining:false t ~bench:name ~mode_name:"rules:full"
            (rules D.Opt.full) prog
        in
        [
          name;
          Table.fixed 2 (float_of_int q.host /. float_of_int with_chain.host);
          Table.fixed 2 (float_of_int q.host /. float_of_int without.host);
        ])
      benches
  in
  {
    title = "Ablation: block chaining (III-C-3's substrate)";
    header = [ "benchmark"; "full opt"; "full opt, chaining off" ];
    rows;
  }

let ablation_timer t =
  let spec = W.find "gcc" in
  let prog = spec_program t spec in
  let rows =
    List.map
      (fun period ->
        let r =
          execute ~timer_period:period t ~bench:"gcc" ~mode_name:"rules:+reduction"
            (rules D.Opt.reduction_only) prog
        in
        [
          string_of_int period;
          string_of_int r.irqs_delivered;
          Table.fixed 2 (sync_per_guest r);
        ])
      [ 500; 5_000; 50_000 ]
  in
  {
    title =
      "Ablation: timer period vs coordination cost (lazy parse keeps checks cheap, Fig 7)";
    header = [ "timer period"; "irqs delivered"; "sync insns / guest insn" ];
    rows;
  }

let ablation_ruleset t =
  let spec = W.find "gcc" in
  let prog = spec_program t spec in
  let q = execute t ~bench:"gcc" ~mode_name:"qemu" qemu prog in
  let all_rules = Repro_rules.Ruleset.rules t.ruleset in
  let n = List.length all_rules in
  let rows =
    List.map
      (fun pct ->
        let keep = max 1 (n * pct / 100) in
        let truncated =
          Repro_rules.Ruleset.of_list (List.filteri (fun i _ -> i < keep) all_rules)
        in
        let r =
          execute ~ruleset:truncated t ~bench:"gcc"
            ~mode_name:(Printf.sprintf "rules:full/%d%%" pct)
            (rules D.Opt.full) prog
        in
        [
          Printf.sprintf "%d%% (%d rules)" pct keep;
          Table.fixed 2 (float_of_int q.host /. float_of_int r.host);
        ])
      [ 10; 25; 50; 100 ]
  in
  {
    title = "Ablation: rule-set coverage vs speedup";
    header = [ "rule set kept"; "speedup vs qemu" ];
    rows;
  }

let ablation_inline_mmu t =
  let rows =
    per_bench t (fun spec ->
        let prog = spec_program t spec in
        let q = execute t ~bench:spec.W.name ~mode_name:"qemu" qemu prog in
        let full =
          execute t ~bench:spec.W.name ~mode_name:"rules:full" (rules D.Opt.full) prog
        in
        let fut =
          execute t ~bench:spec.W.name ~mode_name:"rules:future" (rules D.Opt.future)
            prog
        in
        [
          spec.W.name;
          Table.fixed 2 (float_of_int q.host /. float_of_int full.host);
          Table.fixed 2 (float_of_int q.host /. float_of_int fut.host);
        ])
  in
  let geo mode =
    Table.geomean (per_bench t (fun spec -> speedup t spec mode))
  in
  ignore geo;
  let geo_of col =
    Table.geomean
      (List.map (fun row -> float_of_string (List.nth row col)) rows)
  in
  {
    title =
      "Ablation: inline softMMU fast path for rules (the paper's future work on address translation)";
    header = [ "benchmark"; "full opt"; "full + inline mmu" ];
    rows =
      rows @ [ [ "GEOMEAN"; Table.fixed 2 (geo_of 1); Table.fixed 2 (geo_of 2) ] ];
  }

let ablation_cost_model t =
  (* Robustness of the shape claims under perturbation of the modelled
     (non-operational) half of the cost model: emitted host code is
     always counted operationally, so the scale stresses exactly the
     engine/helper-side calibration constants of DESIGN.md §5. *)
  let spec = W.find "gcc" in
  let prog = spec_program t spec in
  let run_at pct mode_name mode =
    T.Costs.set_scale_pct pct;
    Fun.protect
      ~finally:(fun () -> T.Costs.set_scale_pct 100)
      (fun () ->
        execute t ~bench:"gcc"
          ~mode_name:(Printf.sprintf "%s@%d%%" mode_name pct)
          mode prog)
  in
  let rows =
    List.map
      (fun pct ->
        let q = run_at pct "qemu" qemu in
        let base = run_at pct "rules:base" (rules D.Opt.base) in
        let full = run_at pct "rules:full" (rules D.Opt.full) in
        let fut = run_at pct "rules:future" (rules D.Opt.future) in
        [
          Printf.sprintf "%d%%" pct;
          Table.fixed 2 (float_of_int q.host /. float_of_int base.host);
          Table.fixed 2 (float_of_int q.host /. float_of_int full.host);
          Table.fixed 2 (float_of_int q.host /. float_of_int fut.host);
        ])
      [ 50; 100; 200 ]
  in
  {
    title =
      "Ablation: modelled-cost scale vs speedup (robustness of the shape claims, gcc)";
    header =
      [ "helper-cost scale"; "rules:base"; "rules:full"; "rules:full+inline-mmu" ];
    rows;
  }

(* The paper's §IV-B bottleneck analysis: group executed host
   instructions by functionality. Requires fresh (un-memoized) runs to
   read the per-tag counters. *)
let breakdown t =
  let tags = Repro_x86.Insn.all_tags in
  let row mode_name mode =
    let spec = W.find "gcc" in
    let image =
      K.build ~timer_period:t.timer_period ~user_program:(spec_program t spec) ()
    in
    let sys = D.System.create ~ruleset:t.ruleset mode in
    K.load image (fun base words -> D.System.load_image sys base words);
    ignore (D.System.run ~max_guest_insns:(40 * t.target_insns) sys);
    let s = D.System.stats sys in
    let g = float_of_int s.Repro_x86.Stats.guest_insns in
    mode_name
    :: List.map
         (fun tag ->
           Table.fixed 2 (float_of_int (Stats.tag_count s tag) /. g))
         tags
  in
  {
    title =
      "Extension (paper SIV-B): host insns per guest insn by functionality (gcc)";
    header = "engine" :: List.map Repro_x86.Insn.tag_name tags;
    rows =
      [
        row "qemu" qemu;
        row "rules:base" (rules D.Opt.base);
        row "rules:full" (rules D.Opt.full);
        row "rules:future" (rules D.Opt.future);
      ];
  }

let ablations t =
  [
    breakdown t;
    ablation_chaining t;
    ablation_timer t;
    ablation_ruleset t;
    ablation_inline_mmu t;
    ablation_cost_model t;
  ]

let all t =
  [
    table1 t; fig8 t; fig14 t; fig15 t; fig16 t; fig17 t; fig18 t; fig19 t; coverage t;
  ]
  @ ablations t
