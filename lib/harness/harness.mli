(** The experiment harness: one entry point per table/figure of the
    paper's evaluation (see DESIGN.md §4 for the experiment index).

    A session memoizes full-system runs — each benchmark × engine
    configuration boots the mini kernel, runs the calibrated workload
    to completion and collects the dynamic counters every figure is
    derived from. Absolute numbers are not expected to match the
    paper's testbed; the shapes (who wins, by how much, where the
    bottleneck is) are the reproduction target (EXPERIMENTS.md). *)

type t

val create :
  ?ruleset:Repro_rules.Ruleset.t ->
  ?target_insns:int ->
  ?timer_period:int ->
  unit ->
  t
(** [ruleset] defaults to the learned set ({!Repro_learn.Learn});
    [target_insns] (default 200_000) sizes each workload;
    [timer_period] (default 5_000 guest instructions) drives the
    interrupt load. *)

type run = {
  bench : string;
  mode : string;
  guest : int;
  host : int;
  sync_insns : int;
  sync_ops : int;
  mmu_accesses : int;
  irq_polls : int;
  irqs_delivered : int;
  sys_helper_calls : int;
  exit_code : Repro_common.Word32.t;
  shadow_replays : int;
  shadow_divergences : int;
  rules_quarantined : int;
  quarantine_fallbacks : int;
  faults_injected : int;
      (** faults actually fired by the injector across the whole run
          (0 when no injector was armed) *)
}

exception Did_not_halt of string
(** A benchmark exhausted its instruction budget without reaching the
    power-off register — the typed replacement for a harness abort. *)

val host_per_guest : run -> float
val sync_per_guest : run -> float

val modes : (string * Repro_dbt.System.mode) list
(** qemu, rules:base, rules:+reduction, rules:+elimination, rules:full. *)

val run_spec :
  ?inject:Repro_faultinject.Faultinject.t ->
  ?shadow_depth:int ->
  ?quarantine_threshold:int ->
  t ->
  Repro_workloads.Workloads.spec ->
  Repro_dbt.System.mode ->
  run
(** Run one benchmark spec. [inject]/[shadow_depth]/
    [quarantine_threshold] are forwarded to
    {!Repro_dbt.System.create} (and folded into the memo key). *)

val run_app : t -> Repro_workloads.Workloads.app -> Repro_dbt.System.mode -> run

(** {2 Experiments} *)

type table = { title : string; header : string list; rows : string list list }

val render : table -> string

val table1 : t -> table
(** Measured per-benchmark coordination-trigger frequencies (paper
    Table I). *)

val fig8 : t -> table
(** Host instructions per coordination operation, unoptimized vs
    III-B reduction (paper Fig. 8: 14 → 3). *)

val fig14 : t -> table
(** Per-benchmark speedup over QEMU: unoptimized rules and full
    optimization (paper Fig. 14). *)

val fig15 : t -> table
(** Host instructions per guest instruction, QEMU vs optimized rules
    (paper Fig. 15: 17.39 vs 15.40). *)

val fig16 : t -> table
(** Cumulative speedup per optimization level (paper Fig. 16:
    0.95 → 1.22 → 1.30 → 1.36). *)

val fig17 : t -> table
(** Coordination host instructions per guest instruction per level
    (paper Fig. 17: 8.36 → 1.79 → 1.33 → 0.89). *)

val fig18 : t -> table
(** Slowdown relative to native execution (paper Fig. 18: 18.73x vs
    13.83x). *)

val fig19 : t -> table
(** Real-world application speedups (paper Fig. 19: ≈1.15x geomean). *)

val coverage : t -> table
(** Extension: dynamic rule coverage and fallback counts per
    benchmark (full opt). *)

val ablation_chaining : t -> table
(** Extension: full-opt speedup with block chaining disabled. *)

val ablation_timer : t -> table
(** Extension: coordination cost across interrupt loads (the lazy
    one-to-many parse argument of paper Fig. 7). *)

val ablation_ruleset : t -> table
(** Extension: speedup as the rule set is truncated. *)

val breakdown : t -> table
(** Extension (paper §IV-B): executed host instructions grouped by
    functionality (compute / sync / mmu / irq-check / glue) per guest
    instruction — the analysis behind the paper's "address translation
    is the bottleneck" conclusion. *)

val ablation_inline_mmu : t -> table
(** Extension: the paper's future work — an inline TLB fast path for
    the rule-based engine, removing the per-access context switch. *)

val ablation_cost_model : t -> table
(** Extension: the headline comparisons re-run with the modelled
    engine/helper-side costs scaled to 50% and 200% of nominal
    ({!Repro_tcg.Costs.set_scale_pct}) — evidence that the shape
    claims do not hinge on the calibration constants. *)

val ablations : t -> table list

val all : t -> table list
(** Every experiment (paper order), then the ablations. *)
