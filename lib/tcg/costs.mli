(** Modelled host-instruction costs for operations whose bodies are
    OCaml (QEMU's C side). Everything emitted as host code is counted
    operationally by the interpreter; only these engine/helper-side
    constants are modelled, and they are the single calibration point
    of the reproduction (see DESIGN.md §5). *)

val set_scale_pct : int -> unit
(** Set the global cost scale as a percentage of nominal (100 =
    calibrated values) — the knob of the cost-model sensitivity
    ablation. Emitted host code is counted operationally and is {e not}
    scaled, so this perturbs exactly the modelled half of the cost
    model. Raises [Invalid_argument] when non-positive. *)

val get_scale_pct : unit -> int

val engine_dispatch : unit -> int
(** cpu_exec loop iteration: TB lookup (tb_jmp_cache hit path),
    chaining bookkeeping — paid on every unchained TB transition. *)

val chain_jump : unit -> int
(** A patched direct jump between chained TBs. *)

val helper_call_overhead : unit -> int
(** Call/return linkage and C prologue of any helper. *)

val interp_one : unit -> int
(** Emulating one guest instruction inside QEMU (the rule-based
    engine's fallback for uncovered and system-level instructions). *)

val mmu_slow_path : unit -> int
(** Page-table walk + TLB fill on a softMMU miss. *)

val mmu_helper_hit : unit -> int
(** C-side TLB-hit lookup in the full MMU helper — what a rule-mode
    memory access pays per access (the paper's ≈20-host-insn address
    translation, together with the call overhead). *)

val io_access : unit -> int
(** Device dispatch for an MMIO access. *)

val irq_deliver : unit -> int
(** Exception entry performed by QEMU (mode switch, banking, vector). *)

val exception_entry : unit -> int
(** Same work triggered by svc/udf/aborts. *)

val translation_per_guest_insn : unit -> int
(** Amortized translation cost charged per translated guest insn. *)

val region_form_per_guest_insn : unit -> int
(** Amortized cost of fusing a hot chained trace into a superblock,
    charged per constituent guest insn when the region is installed. *)

val all : (string * (unit -> int) * string) list
(** Every modelled cost as (name, scaled value, attributed phase name
    per {!Repro_perfscope.Phase}) — the model's self-description. *)

val to_json : unit -> string
(** The current cost model (names, scaled values, attributed phases,
    global scale) as one JSON object, embedded in perf exports so a
    profile records the model it was measured under. *)
