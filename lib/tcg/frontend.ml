open Repro_common
module A = Repro_arm.Insn
module Cond = Repro_arm.Cond
module Covscope = Repro_covscope

type ctx = {
  mutable rev_ops : Ir.t list;
  mutable n_temp : int;
  mutable n_label : int;
  alloc_direct : Word32.t -> int;
  alloc_indirect : unit -> int;
}

let create ~alloc_direct ~alloc_indirect () =
  { rev_ops = []; n_temp = 0; n_label = 0; alloc_direct; alloc_indirect }

let ops ctx = List.rev ctx.rev_ops
let emit ctx op = ctx.rev_ops <- op :: ctx.rev_ops

let temp ctx =
  let t = ctx.n_temp in
  ctx.n_temp <- t + 1;
  (* The backend maps temps directly onto a pool of host registers; a
     block that would overflow the pool is retried shorter. *)
  if t >= 11 then raise Tb.Tb_too_complex;
  t

let label ctx =
  let l = ctx.n_label in
  ctx.n_label <- l + 1;
  l

let reset_temps ctx = ctx.n_temp <- 0

(* Load a guest register into a temp (PC reads as insn address + 8). *)
let ld_reg ctx ~pc r =
  let t = temp ctx in
  if r = 15 then emit ctx (Ir.Movi (t, Word32.add pc 8)) else emit ctx (Ir.Ld_env (t, r));
  t

let st_reg ctx r t = emit ctx (Ir.St_env (r, t))

(* Branch to [skip] when [cond] does NOT hold, reading the parsed flag
   slots from env. *)
let emit_cond_guard ctx cond ~skip =
  let ld_flag f =
    let t = temp ctx in
    emit ctx (Ir.Ld_env (t, Envspec.flag_slot f));
    t
  in
  let br_if_zero t = emit ctx (Ir.Brcondi (Ir.Eq, t, 0, skip)) in
  let br_if_nonzero t = emit ctx (Ir.Brcondi (Ir.Ne, t, 0, skip)) in
  match cond with
  | Cond.AL -> ()
  | Cond.EQ -> br_if_zero (ld_flag `Z)
  | Cond.NE -> br_if_nonzero (ld_flag `Z)
  | Cond.CS -> br_if_zero (ld_flag `C)
  | Cond.CC -> br_if_nonzero (ld_flag `C)
  | Cond.MI -> br_if_zero (ld_flag `N)
  | Cond.PL -> br_if_nonzero (ld_flag `N)
  | Cond.VS -> br_if_zero (ld_flag `V)
  | Cond.VC -> br_if_nonzero (ld_flag `V)
  | Cond.HI ->
    (* c ∧ ¬z : fail when c=0 or z=1 *)
    br_if_zero (ld_flag `C);
    br_if_nonzero (ld_flag `Z)
  | Cond.LS ->
    (* ¬c ∨ z : fail when c=1 ∧ z=0, i.e. (c & ~z) ≠ 0 *)
    let c = ld_flag `C in
    let z = ld_flag `Z in
    let nz = temp ctx in
    emit ctx (Ir.Binopi (Ir.Xor, nz, z, 1));
    let both = temp ctx in
    emit ctx (Ir.Binop (Ir.And, both, c, nz));
    br_if_nonzero both
  | Cond.GE ->
    let n = ld_flag `N in
    let v = ld_flag `V in
    let x = temp ctx in
    emit ctx (Ir.Binop (Ir.Xor, x, n, v));
    br_if_nonzero x
  | Cond.LT ->
    let n = ld_flag `N in
    let v = ld_flag `V in
    let x = temp ctx in
    emit ctx (Ir.Binop (Ir.Xor, x, n, v));
    br_if_zero x
  | Cond.GT ->
    br_if_nonzero (ld_flag `Z);
    let n = ld_flag `N in
    let v = ld_flag `V in
    let x = temp ctx in
    emit ctx (Ir.Binop (Ir.Xor, x, n, v));
    br_if_nonzero x
  | Cond.LE ->
    (* z ∨ n≠v : fail when z=0 ∧ n=v *)
    let z = ld_flag `Z in
    let n = ld_flag `N in
    let v = ld_flag `V in
    let x = temp ctx in
    emit ctx (Ir.Binop (Ir.Xor, x, n, v));
    let u = temp ctx in
    emit ctx (Ir.Binop (Ir.Or, u, z, x));
    br_if_zero u

(* Evaluate operand2 into a temp. Shifter carry-out is not modelled
   (logical S-ops set C:=0; see DESIGN.md). *)
let eval_op2 ctx ~pc op2 =
  match op2 with
  | A.Imm { imm8; rot } ->
    let t = temp ctx in
    emit ctx (Ir.Movi (t, Word32.rotate_right imm8 (2 * rot)));
    t
  | A.Reg_shift_imm { rm; kind; amount } ->
    let t = ld_reg ctx ~pc rm in
    if amount <> 0 then begin
      let op =
        match kind with
        | A.LSL -> Ir.Shl
        | A.LSR -> Ir.Shr
        | A.ASR -> Ir.Sar
        | A.ROR -> Ir.Ror
      in
      emit ctx (Ir.Binopi (op, t, t, amount))
    end;
    t
  | A.Reg_shift_reg { rm; kind; rs } ->
    let t = ld_reg ctx ~pc rm in
    let amt = ld_reg ctx ~pc rs in
    emit ctx (Ir.Binopi (Ir.And, amt, amt, 31));
    let op =
      match kind with
      | A.LSL -> Ir.Shl
      | A.LSR -> Ir.Shr
      | A.ASR -> Ir.Sar
      | A.ROR -> Ir.Ror
    in
    emit ctx (Ir.Binop (op, t, t, amt));
    t

let store_nz ctx r =
  (* One scratch temp reused for both flags to stay inside the
     backend's register pool. *)
  let t = temp ctx in
  emit ctx (Ir.Binopi (Ir.Shr, t, r, 31));
  emit ctx (Ir.St_env (Envspec.cc_n, t));
  emit ctx (Ir.Setcondi (Ir.Eq, t, r, 0));
  emit ctx (Ir.St_env (Envspec.cc_z, t))

let clear_cv ctx =
  emit ctx (Ir.Sti_env (Envspec.cc_c, 0));
  emit ctx (Ir.Sti_env (Envspec.cc_v, 0))

let mark_parsed ctx = emit ctx (Ir.Sti_env (Envspec.ccr_tag, 0))

let store_v_add ctx a b r =
  (* v = (~(a^b) & (a^r)) >> 31 *)
  let t1 = temp ctx in
  emit ctx (Ir.Binop (Ir.Xor, t1, a, b));
  emit ctx (Ir.Not (t1, t1));
  let t2 = temp ctx in
  emit ctx (Ir.Binop (Ir.Xor, t2, a, r));
  emit ctx (Ir.Binop (Ir.And, t1, t1, t2));
  emit ctx (Ir.Binopi (Ir.Shr, t1, t1, 31));
  emit ctx (Ir.St_env (Envspec.cc_v, t1))

let store_v_sub ctx a b r =
  (* v = ((a^b) & (a^r)) >> 31 *)
  let t1 = temp ctx in
  emit ctx (Ir.Binop (Ir.Xor, t1, a, b));
  let t2 = temp ctx in
  emit ctx (Ir.Binop (Ir.Xor, t2, a, r));
  emit ctx (Ir.Binop (Ir.And, t1, t1, t2));
  emit ctx (Ir.Binopi (Ir.Shr, t1, t1, 31));
  emit ctx (Ir.St_env (Envspec.cc_v, t1))

(* Arithmetic flag generators. [a]/[b] are the operand temps and [r]
   the result; all still live. *)
let add_flags ctx a b r ~carry_in =
  store_nz ctx r;
  (match carry_in with
  | None ->
    let tc = temp ctx in
    emit ctx (Ir.Setcond (Ir.Ltu, tc, r, a));
    emit ctx (Ir.St_env (Envspec.cc_c, tc))
  | Some cin ->
    (* carry = (a+b <u a) | (r <u cin) *)
    let s = temp ctx in
    emit ctx (Ir.Binop (Ir.Add, s, a, b));
    let c1 = temp ctx in
    emit ctx (Ir.Setcond (Ir.Ltu, c1, s, a));
    let c2 = temp ctx in
    emit ctx (Ir.Setcond (Ir.Ltu, c2, r, cin));
    emit ctx (Ir.Binop (Ir.Or, c1, c1, c2));
    emit ctx (Ir.St_env (Envspec.cc_c, c1)));
  store_v_add ctx a b r;
  mark_parsed ctx

let sub_flags ctx a b r ~borrow_in =
  store_nz ctx r;
  (match borrow_in with
  | None ->
    let tc = temp ctx in
    emit ctx (Ir.Setcond (Ir.Geu, tc, a, b));
    emit ctx (Ir.St_env (Envspec.cc_c, tc))
  | Some bin ->
    (* borrow = (a <u b) | (a = b & bin); ARM C = ¬borrow *)
    let b1 = temp ctx in
    emit ctx (Ir.Setcond (Ir.Ltu, b1, a, b));
    let b2 = temp ctx in
    emit ctx (Ir.Setcond (Ir.Eq, b2, a, b));
    emit ctx (Ir.Binop (Ir.And, b2, b2, bin));
    emit ctx (Ir.Binop (Ir.Or, b1, b1, b2));
    emit ctx (Ir.Binopi (Ir.Xor, b1, b1, 1));
    emit ctx (Ir.St_env (Envspec.cc_c, b1)));
  store_v_sub ctx a b r;
  mark_parsed ctx

let logic_flags ctx r =
  store_nz ctx r;
  clear_cv ctx;
  mark_parsed ctx

let ld_carry ctx =
  let t = temp ctx in
  emit ctx (Ir.Ld_env (t, Envspec.cc_c));
  t

(* Data-processing body (unconditional part). Returns true if it ended
   the TB (PC write, handled via the interp helper upstream). *)
let dp ctx ~pc op ~s ~rd ~rn ~op2 =
  let a = if A.dp_op_is_test op then ld_reg ctx ~pc rn
          else match op with A.MOV | A.MVN -> -1 | _ -> ld_reg ctx ~pc rn in
  let b = eval_op2 ctx ~pc op2 in
  let sets = s || A.dp_op_is_test op in
  let result_to rd r = if rd >= 0 then st_reg ctx rd r in
  let dest = if A.dp_op_is_test op then -1 else rd in
  match op with
  | A.AND | A.TST ->
    let r = temp ctx in
    emit ctx (Ir.Binop (Ir.And, r, a, b));
    result_to dest r;
    if sets then logic_flags ctx r
  | A.EOR | A.TEQ ->
    let r = temp ctx in
    emit ctx (Ir.Binop (Ir.Xor, r, a, b));
    result_to dest r;
    if sets then logic_flags ctx r
  | A.ORR ->
    let r = temp ctx in
    emit ctx (Ir.Binop (Ir.Or, r, a, b));
    result_to dest r;
    if sets then logic_flags ctx r
  | A.BIC ->
    let nb = temp ctx in
    emit ctx (Ir.Not (nb, b));
    let r = temp ctx in
    emit ctx (Ir.Binop (Ir.And, r, a, nb));
    result_to dest r;
    if sets then logic_flags ctx r
  | A.MOV ->
    result_to dest b;
    if sets then logic_flags ctx b
  | A.MVN ->
    let r = temp ctx in
    emit ctx (Ir.Not (r, b));
    result_to dest r;
    if sets then logic_flags ctx r
  | A.ADD | A.CMN ->
    let r = temp ctx in
    emit ctx (Ir.Binop (Ir.Add, r, a, b));
    result_to dest r;
    if sets then add_flags ctx a b r ~carry_in:None
  | A.ADC ->
    let cin = ld_carry ctx in
    let r = temp ctx in
    emit ctx (Ir.Binop (Ir.Add, r, a, b));
    emit ctx (Ir.Binop (Ir.Add, r, r, cin));
    result_to dest r;
    if sets then add_flags ctx a b r ~carry_in:(Some cin)
  | A.SUB | A.CMP ->
    let r = temp ctx in
    emit ctx (Ir.Binop (Ir.Sub, r, a, b));
    result_to dest r;
    if sets then sub_flags ctx a b r ~borrow_in:None
  | A.RSB ->
    let r = temp ctx in
    emit ctx (Ir.Binop (Ir.Sub, r, b, a));
    result_to dest r;
    if sets then sub_flags ctx b a r ~borrow_in:None
  | A.SBC ->
    let cin = ld_carry ctx in
    let bin = temp ctx in
    emit ctx (Ir.Binopi (Ir.Xor, bin, cin, 1));
    let r = temp ctx in
    emit ctx (Ir.Binop (Ir.Sub, r, a, b));
    emit ctx (Ir.Binop (Ir.Sub, r, r, bin));
    result_to dest r;
    if sets then sub_flags ctx a b r ~borrow_in:(Some bin)
  | A.RSC ->
    let cin = ld_carry ctx in
    let bin = temp ctx in
    emit ctx (Ir.Binopi (Ir.Xor, bin, cin, 1));
    let r = temp ctx in
    emit ctx (Ir.Binop (Ir.Sub, r, b, a));
    emit ctx (Ir.Binop (Ir.Sub, r, r, bin));
    result_to dest r;
    if sets then sub_flags ctx b a r ~borrow_in:(Some bin)

let mem_offset_temp ctx ~pc off =
  match off with
  | A.Imm_off n ->
    let t = temp ctx in
    emit ctx (Ir.Movi (t, Word32.of_signed n));
    t
  | A.Reg_off { rm; kind; amount; subtract } ->
    let t = eval_op2 ctx ~pc (A.Reg_shift_imm { rm; kind; amount }) in
    if subtract then begin
      let z = temp ctx in
      emit ctx (Ir.Movi (z, 0));
      emit ctx (Ir.Binop (Ir.Sub, z, z, t));
      z
    end
    else t

let ir_width = function A.Word -> Ir.W32 | A.Byte -> Ir.W8 | A.Half -> Ir.W16

(* After a Qemu_ld/st the only live temp is the op's dst; recompute the
   writeback address from env (registers there are still pre-insn). *)
let emit_writeback ctx ~pc rn off =
  let base = ld_reg ctx ~pc rn in
  let offv = mem_offset_temp ctx ~pc off in
  emit ctx (Ir.Binop (Ir.Add, base, base, offv));
  st_reg ctx rn base

(* Fallback: emulate the instruction at [pc] inside QEMU. *)
let emit_interp_call ctx ~pc =
  emit ctx (Ir.Sti_env (Envspec.pc, pc));
  emit ctx (Ir.Call { helper = Helpers.h_interp_one; args = []; ret = None })

let translate_unconditional ctx ~pc (insn : A.t) =
  match insn.A.op with
  | A.Dp { rd = 15; _ } ->
    (* Any PC-writing data-processing op (branches, exception returns)
       goes through the emulation helper; it updates env.pc. *)
    emit_interp_call ctx ~pc;
    emit ctx (Ir.Exit_indirect (ctx.alloc_indirect ()));
    true
  | A.Dp { op; s; rd; rn; op2 } ->
    dp ctx ~pc op ~s ~rd ~rn ~op2;
    false
  | A.Mul { s; rd; rn; rm; acc } ->
    let a = ld_reg ctx ~pc rm in
    let b = ld_reg ctx ~pc rn in
    let r = temp ctx in
    emit ctx (Ir.Binop (Ir.Mul, r, a, b));
    (match acc with
    | Some ra ->
      let c = ld_reg ctx ~pc ra in
      emit ctx (Ir.Binop (Ir.Add, r, r, c))
    | None -> ());
    st_reg ctx rd r;
    if s then logic_flags ctx r;
    false
  | A.Ldr { width; rd; rn; off; index } ->
    let base = ld_reg ctx ~pc rn in
    let addr =
      match index with
      | A.Offset | A.Pre_indexed ->
        let offv = mem_offset_temp ctx ~pc off in
        emit ctx (Ir.Binop (Ir.Add, base, base, offv));
        base
      | A.Post_indexed -> base
    in
    let dst = temp ctx in
    emit ctx (Ir.Qemu_ld { dst; addr; width = ir_width width; insn_pc = pc });
    (match index with
    | A.Pre_indexed | A.Post_indexed -> emit_writeback ctx ~pc rn off
    | A.Offset -> ());
    if rd = 15 then begin
      st_reg ctx Envspec.pc dst;
      emit ctx (Ir.Exit_indirect (ctx.alloc_indirect ()));
      true
    end
    else begin
      st_reg ctx rd dst;
      false
    end
  | A.Ldrs { half; rd; rn; off; index } ->
    let base = ld_reg ctx ~pc rn in
    let addr =
      match index with
      | A.Offset | A.Pre_indexed ->
        let offv = mem_offset_temp ctx ~pc off in
        emit ctx (Ir.Binop (Ir.Add, base, base, offv));
        base
      | A.Post_indexed -> base
    in
    let dst = temp ctx in
    emit ctx
      (Ir.Qemu_ld
         { dst; addr; width = (if half then Ir.W16 else Ir.W8); insn_pc = pc });
    (* sign-extend the zero-extended load *)
    let k = if half then 16 else 24 in
    emit ctx (Ir.Binopi (Ir.Shl, dst, dst, k));
    emit ctx (Ir.Binopi (Ir.Sar, dst, dst, k));
    (match index with
    | A.Pre_indexed | A.Post_indexed -> emit_writeback ctx ~pc rn off
    | A.Offset -> ());
    st_reg ctx rd dst;
    false
  | A.Str { width; rd; rn; off; index } ->
    let base = ld_reg ctx ~pc rn in
    let addr =
      match index with
      | A.Offset | A.Pre_indexed ->
        let offv = mem_offset_temp ctx ~pc off in
        emit ctx (Ir.Binop (Ir.Add, base, base, offv));
        base
      | A.Post_indexed -> base
    in
    let src = ld_reg ctx ~pc rd in
    emit ctx (Ir.Qemu_st { src; addr; width = ir_width width; insn_pc = pc });
    (match index with
    | A.Pre_indexed | A.Post_indexed -> emit_writeback ctx ~pc rn off
    | A.Offset -> ());
    false
  | A.Ldm { kind; rn; writeback; regs } ->
    if regs land (1 lsl rn) <> 0 then begin
      (* Base register in the list: rare and fiddly — emulate. *)
      emit_interp_call ctx ~pc;
      if regs land 0x8000 <> 0 then begin
        emit ctx (Ir.Exit_indirect (ctx.alloc_indirect ()));
        true
      end
      else false
    end
    else begin
      let count = ref 0 in
      for r = 0 to 15 do
        if regs land (1 lsl r) <> 0 then incr count
      done;
      let start_off = match kind with A.IA -> 0 | A.DB -> -4 * !count in
      let k = ref 0 in
      let loads_pc = regs land 0x8000 <> 0 in
      for r = 0 to 15 do
        if regs land (1 lsl r) <> 0 then begin
          reset_temps ctx;
          let base = ld_reg ctx ~pc rn in
          emit ctx (Ir.Binopi (Ir.Add, base, base, start_off + (4 * !k)));
          let dst = temp ctx in
          emit ctx (Ir.Qemu_ld { dst; addr = base; width = Ir.W32; insn_pc = pc });
          st_reg ctx (if r = 15 then Envspec.pc else r) dst;
          incr k
        end
      done;
      if writeback then begin
        reset_temps ctx;
        let base = ld_reg ctx ~pc rn in
        emit ctx (Ir.Binopi (Ir.Add, base, base, 4 * !count * (match kind with A.IA -> 1 | A.DB -> -1)));
        st_reg ctx rn base
      end;
      if loads_pc then begin
        emit ctx (Ir.Exit_indirect (ctx.alloc_indirect ()));
        true
      end
      else false
    end
  | A.Stm { kind; rn; writeback; regs } ->
    let count = ref 0 in
    for r = 0 to 15 do
      if regs land (1 lsl r) <> 0 then incr count
    done;
    let start_off = match kind with A.IA -> 0 | A.DB -> -4 * !count in
    let k = ref 0 in
    for r = 0 to 15 do
      if regs land (1 lsl r) <> 0 then begin
        reset_temps ctx;
        let base = ld_reg ctx ~pc rn in
        emit ctx (Ir.Binopi (Ir.Add, base, base, start_off + (4 * !k)));
        let src = ld_reg ctx ~pc r in
        emit ctx (Ir.Qemu_st { src; addr = base; width = Ir.W32; insn_pc = pc });
        incr k
      end
    done;
    if writeback then begin
      reset_temps ctx;
      let base = ld_reg ctx ~pc rn in
      emit ctx
        (Ir.Binopi (Ir.Add, base, base, 4 * !count * (match kind with A.IA -> 1 | A.DB -> -1)));
      st_reg ctx rn base
    end;
    false
  | A.B { link; offset } ->
    if link then begin
      let t = temp ctx in
      emit ctx (Ir.Movi (t, Word32.add pc 4));
      st_reg ctx 14 t
    end;
    let target = Word32.add pc (Word32.of_signed ((offset * 4) + 8)) in
    let slot = ctx.alloc_direct target in
    emit ctx (Ir.Goto_tb { slot; target_pc = target });
    true
  | A.Bx rm ->
    let t = ld_reg ctx ~pc rm in
    emit ctx (Ir.Binopi (Ir.And, t, t, 0xFFFF_FFFC));
    st_reg ctx Envspec.pc t;
    emit ctx (Ir.Exit_indirect (ctx.alloc_indirect ()));
    true
  | A.Movw { rd; imm16 } ->
    let t = temp ctx in
    emit ctx (Ir.Movi (t, imm16));
    st_reg ctx rd t;
    false
  | A.Movt { rd; imm16 } ->
    let t = ld_reg ctx ~pc rd in
    emit ctx (Ir.Binopi (Ir.And, t, t, 0xFFFF));
    let hi = temp ctx in
    emit ctx (Ir.Movi (hi, imm16 lsl 16));
    emit ctx (Ir.Binop (Ir.Or, t, t, hi));
    st_reg ctx rd t;
    false
  | A.Mull _ | A.Clz _ ->
    (* No direct 32-bit IR lowering (64-bit product / bit scan); QEMU
       emulates these via a helper (and the rule engine falls back for
       the same reason). *)
    emit_interp_call ctx ~pc;
    false
  | A.Mrs _ | A.Mrc _ | A.Vmsr _ | A.Vmrs _ | A.Msr { write_control = false; _ } ->
    (* System-level but control-flow/privilege neutral: emulate and
       continue the block. *)
    emit_interp_call ctx ~pc;
    false
  | A.Msr _ | A.Cps _ | A.Mcr _ ->
    (* May change privilege, MMU state or the I-bit: emulate and end
       the block so translation-time assumptions stay valid. *)
    emit_interp_call ctx ~pc;
    let next = Word32.add pc 4 in
    let slot = ctx.alloc_direct next in
    emit ctx (Ir.Goto_tb { slot; target_pc = next });
    true
  | A.Svc _ | A.Udf _ ->
    (* The helper takes the guest exception and stops the TB; the
       trailing goto is the (unreachable) architectural fallthrough. *)
    emit_interp_call ctx ~pc;
    let next = Word32.add pc 4 in
    let slot = ctx.alloc_direct next in
    emit ctx (Ir.Goto_tb { slot; target_pc = next });
    true
  | A.Nop -> false

let translate_insn ctx ~pc (insn : A.t) =
  reset_temps ctx;
  (* Baseline-TCG tier: every instruction this frontend translates
     retires under the baseline attribution; rule translators stamp
     their own words at their own retirement points. *)
  emit ctx (Ir.Insn_start (Covscope.Attr.pack ~tier:Covscope.Attr.Baseline insn));
  match insn.A.cond with
  | Cond.AL -> translate_unconditional ctx ~pc insn
  | cond ->
    (match insn.A.op with
    | A.B { link; offset } ->
      (* Conditional direct branch: two chainable exits. *)
      let skip = label ctx in
      emit_cond_guard ctx cond ~skip;
      reset_temps ctx;
      if link then begin
        let t = temp ctx in
        emit ctx (Ir.Movi (t, Word32.add pc 4));
        st_reg ctx 14 t
      end;
      let target = Word32.add pc (Word32.of_signed ((offset * 4) + 8)) in
      let slot_taken = ctx.alloc_direct target in
      emit ctx (Ir.Goto_tb { slot = slot_taken; target_pc = target });
      emit ctx (Ir.Set_label skip);
      let next = Word32.add pc 4 in
      let slot_fall = ctx.alloc_direct next in
      emit ctx (Ir.Goto_tb { slot = slot_fall; target_pc = next });
      true
    | _ ->
      let skip = label ctx in
      emit_cond_guard ctx cond ~skip;
      reset_temps ctx;
      let ended = translate_unconditional ctx ~pc insn in
      emit ctx (Ir.Set_label skip);
      if ended then begin
        (* The skipped path falls through to the next instruction. *)
        let next = Word32.add pc 4 in
        let slot = ctx.alloc_direct next in
        emit ctx (Ir.Goto_tb { slot; target_pc = next })
      end;
      ended)

let emit_goto ctx pc =
  let slot = ctx.alloc_direct pc in
  emit ctx (Ir.Goto_tb { slot; target_pc = pc })
