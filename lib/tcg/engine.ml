open Repro_common
module Exec = Repro_x86.Exec
module X = Repro_x86.Insn
module Stats = Repro_x86.Stats
module Bus = Repro_machine.Bus
module Cpu = Repro_arm.Cpu
module Trace = Repro_observe.Trace
module Ledger = Repro_observe.Ledger
module Phase = Repro_perfscope.Phase
module Scope = Repro_perfscope.Scope

type translator = Runtime.t -> Tb.Cache.t -> pc:Word32.t -> (Tb.t, Repro_arm.Mem.fault) result

type result = {
  reason :
    [ `Halted of Word32.t | `Insn_limit | `Livelock of Word32.t | `Deadline ];
  executed_guest_insns : int;
}

type resume = {
  rpc : Word32.t;
  rprivileged : bool;
  rmmu_on : bool;
  rneeds_enter : bool;
}

let tb_fuel = 20_000

(* Executions of a plain TB before the engine offers it to [on_hot]
   for superblock fusion. Low enough that hot loop heads fuse early in
   a benchmark window, high enough that one-shot code never does. *)
let hot_threshold = 32

let run (rt : Runtime.t) cache ~translate ?(link_hook = fun ~pred:_ ~slot:_ ~succ:_ -> ())
    ?(on_enter = fun _ -> ())
    ?(on_executed = fun _ ~outcome:_ ~guest:_ -> `Continue)
    ?(chaining = true) ?profile ?(max_guest_insns = max_int) ?deadline
    ?(checkpoint_every = 0) ?on_checkpoint ?resume ?(on_irq = fun _ -> ())
    ?on_hot () =
  let stats = Runtime.stats rt in
  let env = Runtime.env rt in
  let start_insns = stats.Stats.guest_insns in
  (match resume with
  | None ->
    Runtime.sync_cpu_to_env rt;
    Runtime.refresh_irq_pending rt
  | Some _ ->
    (* Snapshot restore: env, the mirror CPU and the host flag state
       were restored verbatim (including the lazy packed-CCR tag that
       a cpu->env sync would clobber); resuming must not resync. *)
    ());
  let last_ticked = ref stats.Stats.guest_insns in
  let tick () =
    let d = stats.Stats.guest_insns - !last_ticked in
    if d > 0 then begin
      Bus.tick rt.Runtime.bus d;
      last_ticked := stats.Stats.guest_insns
    end;
    Runtime.refresh_irq_pending rt;
    (* Fault point: an interrupt asserted with no device source. Only
       deliverable when the guest has IRQs unmasked, in which case its
       handler runs like any hardware interrupt's. *)
    match rt.Runtime.inject with
    | Some inj
      when Repro_faultinject.Faultinject.fire inj
             Repro_faultinject.Faultinject.Spurious_irq ->
      if not (Cpu.irq_masked rt.Runtime.cpu) then env.(Envspec.irq_pending) <- 1
    | _ -> ()
  in
  let charge_glue n = Stats.charge_tag stats X.Tag_glue n in
  (* Phase attribution: per-tag host-insn cursors, drained into the
     scope at every phase transition. Every charge goes through
     [Stats.charge_tag], so the drained deltas partition this run's
     host_insns delta exactly (watchdog rollbacks excepted: stats are
     rolled back, the observational scope keeps what it saw). The
     cursors are run-local and resync at every drain, so restored runs
     attribute their own window only. *)
  let scope = rt.Runtime.scope in
  let want_split = scope <> None || profile <> None in
  let split_tags =
    [| X.Tag_compute; X.Tag_sync; X.Tag_mmu; X.Tag_irq_check; X.Tag_glue |]
  in
  let cursor = Array.map (fun tag -> Stats.tag_count stats tag) split_tags in
  let split () =
    let d = Array.make 5 0 in
    Array.iteri
      (fun i tag ->
        let now = Stats.tag_count stats tag in
        d.(i) <- now - cursor.(i);
        cursor.(i) <- now)
      split_tags;
    d
  in
  (* Engine-side glue site: everything since the last drain belongs to
     one phase (dispatch, translation, delivery...). *)
  let drain_to phase ~page ~privileged =
    match scope with
    | None -> ()
    | Some sc ->
      let d = split () in
      Scope.charge sc phase ~page ~privileged (d.(0) + d.(1) + d.(2) + d.(3) + d.(4))
  in
  (* Mixed site (TB run windows and entry hooks): the tag names the
     phase — Compute is emitted guest work, Sync and irq polls are
     coordination, Mmu is the softMMU, glue is helper machinery.
     Returns the Phase-indexed split for the per-TB profile. *)
  let drain_mixed ~page ~privileged =
    if not want_split then None
    else begin
      let d = split () in
      (match scope with
      | Some sc ->
        Scope.charge sc Phase.Execute ~page ~privileged d.(0);
        Scope.charge sc Phase.Coordinate ~page ~privileged (d.(1) + d.(3));
        Scope.charge sc Phase.Softmmu ~page ~privileged d.(2);
        Scope.charge sc Phase.Helper ~page ~privileged d.(4)
      | None -> ());
      Some [| 0; d.(0); d.(1) + d.(3); d.(2); d.(4); 0; 0 |]
    end
  in
  (* Purely observational: emits nothing and costs nothing when the
     runtime carries no trace. *)
  let trace_emit ?a ?b cat name =
    match rt.Runtime.trace with
    | Some tr -> Trace.emit tr ?a ?b cat name
    | None -> ()
  in
  (* Direct-mapped jump cache in front of the Hashtbl lookup (QEMU's
     tb_jmp_cache): the dispatch fast path for the overwhelmingly
     common case of re-dispatching a PC looked up before. Entries are
     validated against the cache generation (every flush bumps it, so
     flushed translations can never be returned) and the lookup
     regime; run-local, so restored runs simply start cold. *)
  let jc_bits = 10 in
  let jc_size = 1 lsl jc_bits in
  let jc_pc = Array.make jc_size (-1) in
  let jc_tb : Tb.t option array = Array.make jc_size None in
  let jc_gen = Array.make jc_size (-1) in
  let jc_index pc = (pc lsr 2) land (jc_size - 1) in
  let jc_invalidate pc =
    let i = jc_index pc in
    jc_pc.(i) <- -1;
    jc_tb.(i) <- None
  in
  let rec lookup_or_translate pc =
    (* Fault point: a forced whole-cache flush before the lookup —
       every resident translation is dropped and rebuilt on demand. *)
    (match rt.Runtime.inject with
    | Some inj
      when Repro_faultinject.Faultinject.fire inj Repro_faultinject.Faultinject.Tb_flush
      ->
      Tb.Cache.flush cache
    | _ -> ());
    let privileged = Runtime.privileged rt in
    let mmu_on = Cpu.mmu_enabled rt.Runtime.cpu in
    let i = jc_index pc in
    let jc_hit =
      match jc_tb.(i) with
      | Some tb
        when jc_pc.(i) = pc
             && jc_gen.(i) = Tb.Cache.generation cache
             && tb.Tb.privileged = privileged && tb.Tb.mmu_on = mmu_on -> Some tb
      | _ -> None
    in
    match jc_hit with
    | Some tb -> tb
    | None -> lookup_slow pc ~privileged ~mmu_on ~i
  and lookup_slow pc ~privileged ~mmu_on ~i =
    let fill tb =
      jc_pc.(i) <- pc;
      jc_tb.(i) <- Some tb;
      jc_gen.(i) <- Tb.Cache.generation cache;
      tb
    in
    match Tb.Cache.find cache ~pc ~privileged ~mmu_on with
    | Some tb -> fill tb
    | None -> (
      match translate rt cache ~pc with
      | Ok tb ->
        stats.Stats.tb_translations <- stats.Stats.tb_translations + 1;
        trace_emit ~a:pc ~b:tb.Tb.guest_len Trace.Exec "translate";
        charge_glue (Costs.translation_per_guest_insn () * tb.Tb.guest_len);
        Tb.Cache.add cache tb;
        (* write-protect the TB's pages: stores to them must take the
           slow path so self-modifying code is detected *)
        Repro_mmu.Mmu.Tlb.clear_write_tag rt.Runtime.ctx.Runtime.Exec.tlb tb.Tb.guest_pc;
        Repro_mmu.Mmu.Tlb.clear_write_tag rt.Runtime.ctx.Runtime.Exec.tlb
          (tb.Tb.guest_pc + (4 * tb.Tb.guest_len) - 4);
        (match scope with
        | Some sc ->
          Scope.note_translated sc ~id:tb.Tb.id ~at:stats.Stats.guest_insns
        | None -> ());
        drain_to Phase.Translate ~page:(tb.Tb.guest_pc lsr 12)
          ~privileged:tb.Tb.privileged;
        fill tb
      | Error fault ->
        (* Prefetch abort: enter the guest's handler and translate
           there instead. *)
        trace_emit ~a:fault.Repro_arm.Mem.vaddr Trace.Exec "prefetch_abort";
        charge_glue (Costs.exception_entry ());
        Runtime.take_guest_exception rt Cpu.Prefetch_abort
          ~pc_of_faulting_insn:fault.Repro_arm.Mem.vaddr;
        drain_to Phase.Translate
          ~page:(fault.Repro_arm.Mem.vaddr lsr 12)
          ~privileged:true;
        lookup_or_translate env.(Envspec.pc))
  in
  let finish reason =
    Runtime.sync_env_to_cpu rt;
    { reason; executed_guest_insns = stats.Stats.guest_insns - start_insns }
  in
  (* The dispatch state is (current TB, does it still need its engine
     entry callback). Chained TB->TB transfers keep host state live
     and skip [on_enter]; every transition that goes back through the
     engine re-arms it. Checkpoints capture exactly this pair so a
     restored run re-enters the loop in the same phase. *)
  let current, needs_enter =
    match resume with
    | Some r -> (
      match
        Tb.Cache.find cache ~pc:r.rpc ~privileged:r.rprivileged ~mmu_on:r.rmmu_on
      with
      | Some tb -> (ref tb, ref r.rneeds_enter)
      | None ->
        (* The captured TB was not reconstructible; fall back to a
           fresh dispatch at the recorded PC. *)
        (ref (lookup_or_translate r.rpc), ref true))
    | None -> (ref (lookup_or_translate env.(Envspec.pc)), ref true)
  in
  let checkpoint () =
    match on_checkpoint with
    | Some f ->
      let tb = !current in
      f
        {
          rpc = tb.Tb.guest_pc;
          rprivileged = tb.Tb.privileged;
          rmmu_on = tb.Tb.mmu_on;
          rneeds_enter = !needs_enter;
        }
    | None -> ()
  in
  let next_checkpoint =
    ref
      (if checkpoint_every > 0 then stats.Stats.guest_insns + checkpoint_every
       else max_int)
  in
  (* Per-request deadline on the retired-guest-insn clock: an absolute
     value of [stats.guest_insns] past which the run stops with the
     typed [`Deadline] result. Unlike the instruction budget it takes
     no checkpoint — a timed-out request is discarded, not resumed. *)
  let deadline = match deadline with Some d -> d | None -> max_int in
  let result = ref None in
  while !result = None do
    if stats.Stats.guest_insns >= deadline then
      result := Some (finish `Deadline)
    else if stats.Stats.guest_insns - start_insns >= max_guest_insns then begin
      (* Capture the stopping point too, so a saved snapshot resumes
         exactly here (including mid-chain dispatch state). *)
      checkpoint ();
      result := Some (finish `Insn_limit)
    end
    else begin
      (* Periodic checkpoints happen at a TB boundary, before the
         entry callback fires, so translator shadow state (pending
         verifications) is quiescent. *)
      if stats.Stats.guest_insns >= !next_checkpoint then begin
        checkpoint ();
        next_checkpoint := stats.Stats.guest_insns + checkpoint_every
      end;
      (* Hot-region formation: count executions of plain TBs and, at
         the threshold, offer the TB to the translator for superblock
         fusion. On success the freshly-installed region replaces the
         head for this very dispatch (guest state is at the head PC
         either way), and the jump-cache entry for the head is dropped
         so future dispatches can't bypass the region. One attempt per
         TB: past the threshold the counter never equals it again. *)
      (match on_hot with
      | Some form when not (Tb.is_region !current) ->
        let tb = !current in
        tb.Tb.hot <- tb.Tb.hot + 1;
        if tb.Tb.hot = hot_threshold then begin
          match form tb with
          | Some region ->
            trace_emit ~a:tb.Tb.guest_pc ~b:region.Tb.guest_len Trace.Chain
              "region_form";
            jc_invalidate tb.Tb.guest_pc;
            drain_to Phase.Region ~page:(tb.Tb.guest_pc lsr 12)
              ~privileged:tb.Tb.privileged;
            current := region;
            needs_enter := true
          | None -> ()
        end
      | _ -> ());
      let tb = !current in
      if !needs_enter then begin
        on_enter tb;
        needs_enter := false
      end;
      (* Entry-hook charges (inter-TB flag restore -> coordinate,
         shadow replay -> helper) drain before the run window opens so
         the window split attributes only the TB's own execution. *)
      ignore
        (drain_mixed ~page:(tb.Tb.guest_pc lsr 12) ~privileged:tb.Tb.privileged);
      let guest0 = stats.Stats.guest_insns and host0 = stats.Stats.host_insns in
      rt.Runtime.fault_producers <- tb.Tb.fault_producers;
      match Exec.run rt.Runtime.ctx tb.Tb.prog ~fuel:tb_fuel with
      | exception Exec.Fuel_exhausted _ ->
        (* Runaway host loop (corrupted emitted code): abandon the TB.
           Guest state is mid-block garbage — the caller must roll
           back to a checkpoint (System's livelock watchdog) or give
           up on the run. *)
        rt.Runtime.suppress_code_write <- false;
        trace_emit ~a:tb.Tb.guest_pc Trace.Watchdog "fuel_exhausted";
        result := Some (finish (`Livelock tb.Tb.guest_pc))
      | outcome ->
        let phases =
          drain_mixed ~page:(tb.Tb.guest_pc lsr 12) ~privileged:tb.Tb.privileged
        in
        (match profile with
        | Some p ->
          Profile.record p tb
            ~guest:(stats.Stats.guest_insns - guest0)
            ~host:(stats.Stats.host_insns - host0)
            ?phases ()
        | None -> ());
        (match rt.Runtime.ledger with
        | Some l -> Ledger.record_exec l tb.Tb.prov
        | None -> ());
        (* the one-shot code-write suppression never outlives the TB it
           was armed for *)
        rt.Runtime.suppress_code_write <- false;
        tick ();
        let verdict = on_executed tb ~outcome ~guest:(stats.Stats.guest_insns - guest0) in
        (match Bus.halted rt.Runtime.bus with
        | Some code ->
          trace_emit ~a:code Trace.Exec "halt";
          result := Some (finish (`Halted code))
        | None -> (
          match verdict with
          | `Invalidate ->
            (* Shadow verification diverged: guest state has already been
               repaired from the reference replay. Drop every translation
               (the divergent TB's PC re-translates through the fallback
               ladder) and re-dispatch at the repaired PC. *)
            Exec.poison_caller_saved rt.Runtime.ctx;
            Tb.Cache.flush cache;
            stats.Stats.engine_returns <- stats.Stats.engine_returns + 1;
            charge_glue (Costs.engine_dispatch ());
            drain_to Phase.Execute
              ~page:(env.(Envspec.pc) lsr 12)
              ~privileged:(Runtime.privileged rt);
            current := lookup_or_translate env.(Envspec.pc);
            needs_enter := true
          | `Continue -> (
            match outcome with
            | Exec.Exited slot -> (
              match tb.Tb.exits.(slot) with
              | Tb.Direct target -> (
                match tb.Tb.links.(slot) with
                | Some next ->
                  stats.Stats.chained_jumps <- stats.Stats.chained_jumps + 1;
                  trace_emit ~a:tb.Tb.guest_pc ~b:next.Tb.guest_pc Trace.Chain
                    "jump";
                  charge_glue (Costs.chain_jump ());
                  drain_to Phase.Execute
                    ~page:(next.Tb.guest_pc lsr 12)
                    ~privileged:next.Tb.privileged;
                  current := next
                | None ->
                  Exec.poison_caller_saved rt.Runtime.ctx;
                  stats.Stats.engine_returns <- stats.Stats.engine_returns + 1;
                  charge_glue (Costs.engine_dispatch ());
                  drain_to Phase.Execute ~page:(target lsr 12)
                    ~privileged:tb.Tb.privileged;
                  let next = lookup_or_translate target in
                  if chaining then begin
                    tb.Tb.links.(slot) <- Some next;
                    trace_emit ~a:tb.Tb.guest_pc ~b:next.Tb.guest_pc Trace.Chain
                      "link";
                    (match scope with
                    | Some sc ->
                      Scope.note_chained sc ~id:next.Tb.id
                        ~at:stats.Stats.guest_insns
                    | None -> ());
                    link_hook ~pred:tb ~slot ~succ:next
                  end;
                  current := next;
                  needs_enter := true)
              | Tb.Indirect ->
                Exec.poison_caller_saved rt.Runtime.ctx;
                stats.Stats.engine_returns <- stats.Stats.engine_returns + 1;
                charge_glue (Costs.engine_dispatch ());
                drain_to Phase.Execute
                  ~page:(env.(Envspec.pc) lsr 12)
                  ~privileged:(Runtime.privileged rt);
                current := lookup_or_translate env.(Envspec.pc);
                needs_enter := true
              | Tb.Irq_deliver ->
                Exec.poison_caller_saved rt.Runtime.ctx;
                stats.Stats.irqs_delivered <- stats.Stats.irqs_delivered + 1;
                trace_emit ~a:env.(Envspec.pc) Trace.Irq "deliver";
                charge_glue (Costs.irq_deliver ());
                (* The lazy one-to-many parse happens here, when QEMU
                   actually needs the condition codes (paper Fig. 7). *)
                let parse_cost = Envspec.parse_packed env in
                Stats.charge_tag stats X.Tag_sync parse_cost;
                if parse_cost > 0 then begin
                  trace_emit ~b:parse_cost Trace.Sync "lazy_parse";
                  (* The deferred parse is the runtime price of III-B's
                     packed flag format — a negative dynamic saving. *)
                  match rt.Runtime.ledger with
                  | Some l ->
                    Ledger.add_dynamic l Ledger.Reduction ~ops:0
                      ~insns:(-parse_cost)
                  | None -> ()
                end;
                (match scope with
                | Some sc ->
                  Scope.note_irq_delivered sc ~at:stats.Stats.guest_insns
                | None -> ());
                on_irq env.(Envspec.pc);
                Runtime.take_guest_exception rt Cpu.Irq
                  ~pc_of_faulting_insn:env.(Envspec.pc);
                drain_to Phase.Deliver
                  ~page:(env.(Envspec.pc) lsr 12)
                  ~privileged:true;
                current := lookup_or_translate env.(Envspec.pc);
                needs_enter := true)
            | Exec.Stopped { code; _ } ->
              if code = Runtime.stop_code_write then begin
                (* Self-modifying code: drop every translation (QEMU
                   invalidates per page; the whole-cache flush is the
                   simple sound variant) and resume at env.pc. The
                   resumed instruction is retranslated as a singleton TB
                   whose (idempotent, re-executed) store is allowed to
                   complete — QEMU's current-TB-modified protocol. *)
                Exec.poison_caller_saved rt.Runtime.ctx;
                Tb.Cache.flush cache;
                trace_emit ~a:env.(Envspec.pc) Trace.Exec "smc_flush";
                charge_glue (Costs.engine_dispatch () + Costs.exception_entry ());
                drain_to Phase.Execute
                  ~page:(env.(Envspec.pc) lsr 12)
                  ~privileged:(Runtime.privileged rt);
                rt.Runtime.tb_override <- Some 1;
                rt.Runtime.suppress_code_write <- true;
                let tb = lookup_or_translate env.(Envspec.pc) in
                rt.Runtime.tb_override <- None;
                current := tb;
                needs_enter := true
              end
              else if code = Runtime.stop_halt then begin
                trace_emit Trace.Exec "halt";
                result :=
                  Some
                    (finish
                       (`Halted
                         (match Bus.halted rt.Runtime.bus with Some c -> c | None -> 0)))
              end
              else begin
                (* A guest exception was taken inside a helper; continue at
                   the vector. *)
                Exec.poison_caller_saved rt.Runtime.ctx;
                stats.Stats.engine_returns <- stats.Stats.engine_returns + 1;
                charge_glue (Costs.engine_dispatch ());
                drain_to Phase.Execute
                  ~page:(env.(Envspec.pc) lsr 12)
                  ~privileged:(Runtime.privileged rt);
                current := lookup_or_translate env.(Envspec.pc);
                needs_enter := true
              end)))
    end
  done;
  match !result with Some r -> r | None -> assert false
