(** The shared execution engine (QEMU's cpu_exec loop): code-cache
    lookup, translation, block chaining, interrupt delivery, device
    time, and the modelled cost of every transition that leaves the
    code cache.

    The engine is parameterized over a translator, so the baseline and
    the rule-based system run under identical system-level conditions
    — the comparison the paper's evaluation makes. *)

open Repro_common

type translator = Runtime.t -> Tb.Cache.t -> pc:Word32.t -> (Tb.t, Repro_arm.Mem.fault) result

type result = {
  reason :
    [ `Halted of Word32.t | `Insn_limit | `Livelock of Word32.t | `Deadline ];
      (** [`Livelock pc]: the TB at [pc] exhausted its host fuel (a
          runaway loop in corrupted emitted code). Guest state is
          mid-block and unusable — roll back to a checkpoint.

          [`Deadline]: the per-request deadline (an absolute retired-
          guest-insn clock value) passed — the typed timeout the
          supervision layer turns into a request-level result. Guest
          state is consistent (the stop happens at a TB boundary) but
          no checkpoint is taken: a timed-out request is discarded. *)
  executed_guest_insns : int;
}

type resume = {
  rpc : Word32.t;  (** guest PC of the TB about to execute *)
  rprivileged : bool;
  rmmu_on : bool;
  rneeds_enter : bool;
      (** whether the engine still owes the TB its [on_enter]
          callback — false when the checkpoint was taken mid-chain
          (the TB was reached by a chained jump, with host state
          live) *)
}
(** The engine-loop phase captured by a checkpoint: enough, together
    with the machine state proper, to re-enter {!run} exactly where
    the checkpointed run stood. *)

val run :
  Runtime.t ->
  Tb.Cache.t ->
  translate:translator ->
  ?link_hook:(pred:Tb.t -> slot:int -> succ:Tb.t -> unit) ->
  ?on_enter:(Tb.t -> unit) ->
  ?on_executed:
    (Tb.t -> outcome:Repro_x86.Exec.outcome -> guest:int -> [ `Continue | `Invalidate ]) ->
  ?chaining:bool ->
  ?profile:Profile.t ->
  ?max_guest_insns:int ->
  ?deadline:int ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(resume -> unit) ->
  ?resume:resume ->
  ?on_irq:(Word32.t -> unit) ->
  ?on_hot:(Tb.t -> Tb.t option) ->
  unit ->
  result
(** Run from the mirror CPU's current state until the guest powers off
    or [max_guest_insns] (default [max_int]) guest instructions have
    retired. On return the mirror CPU and [env] are consistent.

    [chaining] (default true) enables TB→TB block chaining; disabling
    it forces an engine dispatch on every TB transition (the ablation
    of the common optimization the paper's §III-C-3 builds on).

    [deadline] (default none) is an absolute retired-guest-insn clock
    value ([stats.guest_insns]); once reached the run stops with
    [`Deadline] at the next loop iteration. It is checked before the
    instruction budget, takes no checkpoint, and composes with
    [max_guest_insns] (whichever trips first wins).

    [profile], when given, receives one {!Profile.record} per TB
    execution with exact guest/host instruction attribution.

    [on_enter tb] fires on every entry to [tb] that goes through the
    engine (initial dispatch, unlinked/indirect transitions, exception
    and interrupt re-entry) — {e not} on chained TB→TB jumps. The
    rule-based engine uses it to restore host-resident state that the
    inter-TB optimization assumes live.

    [on_executed tb ~outcome ~guest] fires after every TB execution
    (chained or not) with the raw {!Repro_x86.Exec.outcome} and the
    number of guest instructions the execution retired. Returning
    [`Invalidate] tells the engine the caller repaired guest state
    (shadow-verification divergence): the whole code cache is flushed
    and execution re-dispatches at the repaired [env] PC. A halted
    machine takes precedence over the verdict.

    [checkpoint_every] (default 0 = off) arms periodic checkpoints:
    every time at least that many guest instructions have retired
    since the last one, [on_checkpoint] fires at the next TB boundary
    — before the pending [on_enter], so translator shadow state is
    quiescent — with the {!resume} record describing the loop phase.
    [on_checkpoint] also fires once when the run stops at
    [max_guest_insns], so a saved snapshot captures the exact
    stopping point.

    [resume] (from a restored snapshot) starts the loop at the
    recorded TB in the recorded phase instead of dispatching at the
    mirror CPU's PC; the initial cpu->env sync is skipped because the
    restored [env] (including lazy-flag state no sync can recreate)
    is already authoritative.

    [on_irq pc] fires on each delivered interrupt with the guest PC
    it preempted (the event journal's IRQ record). *)

val hot_threshold : int
(** Executions of a plain TB before the engine offers it to [on_hot]
    (32). [on_hot tb], when given, is called exactly once per TB at
    that threshold; returning [Some region] dispatches the
    freshly-installed superblock in the TB's place and drops the head's
    jump-cache entry. Counters live in {!Tb.t.hot} and are serialized
    in snapshots, so formation fires at the same retired-instruction
    point after a restore. *)
