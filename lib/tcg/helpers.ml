open Repro_common
module Exec = Repro_x86.Exec
module X = Repro_x86.Insn
module Stats = Repro_x86.Stats
module Cpu = Repro_arm.Cpu
module Mem = Repro_arm.Mem
module Interp = Repro_arm.Interp
module Bus = Repro_machine.Bus
module Mmu = Repro_mmu.Mmu

(* Helper argument registers. rdx/rcx rather than SysV's rdi/rsi:
   the rule engine pins guest r1/r2 into rsi/rdi, and argument setup
   must not clobber pinned state. *)
let arg0_reg = X.rdx
let arg1_reg = X.rcx

let h_interp_one = 0
let h_mmu_load_w = 1
let h_mmu_load_b = 2
let h_mmu_store_w = 3
let h_mmu_store_b = 4
let h_mmu_load_h = 5
let h_mmu_store_h = 6

let charge (rt : Runtime.t) tag n =
  Stats.charge_tag (Runtime.stats rt) tag n;
  (Runtime.stats rt).Stats.helper_insns <- (Runtime.stats rt).Stats.helper_insns + n

let stop_exception () = raise (Exec.Helper_stop { code = Runtime.stop_exception; arg = 0 })
let stop_halt () = raise (Exec.Helper_stop { code = Runtime.stop_halt; arg = 0 })

let stop_code_write () =
  raise (Exec.Helper_stop { code = Runtime.stop_code_write; arg = 0 })

let check_halt (rt : Runtime.t) =
  match Bus.halted rt.Runtime.bus with Some _ -> stop_halt () | None -> ()

(* Emulate one guest instruction on the architectural mirror. env is
   synced in (registers/PC/flags; lazy flag parse is part of the env
   read), the reference interpreter steps once, and the result is
   synced back. A taken guest exception ends the TB. *)
let interp_one (rt : Runtime.t) =
  let env = Runtime.env rt in
  charge rt X.Tag_glue (Envspec.parse_packed env);
  Runtime.sync_env_to_cpu rt;
  charge rt X.Tag_glue (Costs.interp_one ());
  (* classify for the Table I profile: emulated system-level vs merely
     uncovered computational instructions *)
  (match rt.Runtime.mem.Mem.fetch ~privileged:(Runtime.privileged rt) env.(Envspec.pc) with
  | Ok word -> (
    match Repro_arm.Encode.decode word with
    | Ok insn ->
      if Repro_arm.Insn.is_system_level insn then
        (Runtime.stats rt).Stats.sys_insns <- (Runtime.stats rt).Stats.sys_insns + 1
    | Error _ -> ())
  | Error _ -> ());
  (match Interp.step rt.Runtime.cpu rt.Runtime.mem ~irq:false with
  | Interp.Stepped ->
    Runtime.sync_cpu_to_env rt;
    Runtime.refresh_irq_pending rt;
    check_halt rt;
    if rt.Runtime.pending_code_write then begin
      rt.Runtime.pending_code_write <- false;
      if rt.Runtime.suppress_code_write then rt.Runtime.suppress_code_write <- false
      else
        (* the instruction completed and env.pc points past it, so the
           engine resumes cleanly after the flush *)
        stop_code_write ()
    end
  | Interp.Took_exception _ ->
    charge rt X.Tag_glue (Costs.exception_entry ());
    Runtime.sync_cpu_to_env rt;
    Runtime.refresh_irq_pending rt;
    stop_exception ()
  | Interp.Decode_error _ ->
    (* Undecodable word (e.g. a jump into data): architecturally an
       UNDEF. Enter the guest's undefined-instruction vector instead of
       killing the process. *)
    charge rt X.Tag_glue (Costs.exception_entry ());
    Runtime.take_guest_exception rt Cpu.Undefined_insn
      ~pc_of_faulting_insn:env.(Envspec.pc);
    stop_exception ());
  0

let data_abort (rt : Runtime.t) (f : Mem.fault) =
  let status =
    match f.Mem.kind with
    | Mem.Translation -> 5
    | Mem.Permission -> 13
    | Mem.Alignment -> 1
    | Mem.Bus -> 8
  in
  Cpu.set_dfar rt.Runtime.cpu f.Mem.vaddr;
  Cpu.set_dfsr rt.Runtime.cpu status;
  charge rt X.Tag_glue (Costs.exception_entry ());
  (* env registers are up to date (coordination happened before the
     call); sync them into the mirror so exception entry banks the
     right values, then resync. *)
  Runtime.sync_env_to_cpu rt;
  let pc = (Runtime.env rt).(Envspec.pc) in
  (* If the translator scheduled this access ahead of
     architecturally-earlier instructions (define-before-use
     hoisting), those have not executed in host order yet. Replay them
     through the interpreter so exception entry banks program-order
     state; independence of the hoisted block guarantees their inputs
     are still intact. *)
  (match
     Array.find_opt (fun (fpc, _) -> fpc = pc) rt.Runtime.fault_producers
   with
  | Some (_, producers) ->
    Array.iter
      (fun ppc ->
        Cpu.set_reg rt.Runtime.cpu 15 ppc;
        charge rt X.Tag_glue (Costs.interp_one ());
        ignore (Interp.step rt.Runtime.cpu rt.Runtime.mem ~irq:false))
      producers
  | None -> ());
  Cpu.take_exception rt.Runtime.cpu Cpu.Data_abort ~pc_of_faulting_insn:pc;
  Runtime.sync_cpu_to_env rt;
  Runtime.refresh_irq_pending rt;
  stop_exception ()

(* Full softMMU translation in "C": TLB probe, walk + fill on miss,
   MMIO dispatch. Returns the physical address for RAM pages, or
   performs the device access directly. *)
type resolved = Ram_at of int | Device_done of int

let mmu_resolve (rt : Runtime.t) ~(access : Mem.access) ~width vaddr value =
  let privileged = Runtime.privileged rt in
  let cpu = rt.Runtime.cpu in
  let bus = rt.Runtime.bus in
  let tlb = rt.Runtime.ctx.Exec.tlb in
  let write = access = Mem.Store in
  let aligned =
    match width with
    | Mem.W8 -> true
    | Mem.W16 -> vaddr land 1 = 0
    | Mem.W32 -> vaddr land 3 = 0
  in
  if not aligned then data_abort rt { Mem.vaddr; access; kind = Mem.Alignment }
  else begin
    charge rt X.Tag_mmu (Costs.mmu_helper_hit ());
    (* Fault point: a spurious TLB invalidation right before the probe
       forces the miss path — guest-invisible, cost-only. *)
    (match rt.Runtime.inject with
    | Some inj
      when Repro_faultinject.Faultinject.fire inj Repro_faultinject.Faultinject.Tlb_flush
      ->
      Mmu.Tlb.flush tlb
    | _ -> ());
    match Mmu.Tlb.lookup tlb ~privileged ~write vaddr with
    | Some paddr -> Ram_at paddr
    | None ->
      (* Miss path: translate (or identity when the MMU is off). *)
      (Runtime.stats rt).Stats.tlb_misses <- (Runtime.stats rt).Stats.tlb_misses + 1;
      (match rt.Runtime.trace with
      | Some tr ->
        Repro_observe.Trace.emit tr ~a:vaddr
          ~b:(if write then 1 else 0)
          Repro_observe.Trace.Tlb "miss"
      | None -> ());
      charge rt X.Tag_mmu (Costs.mmu_slow_path ());
      let compute_entry () =
        if Cpu.mmu_enabled cpu then
          match Mmu.walk bus ~ttbr:(Cpu.get_ttbr cpu) vaddr with
          | Error kind -> Error kind
          | Ok entry -> (
            match Mmu.check_perms entry ~access ~privileged with
            | Error kind -> Error kind
            | Ok () -> Ok entry)
        else
          Ok { Mmu.page_pa = vaddr land Mmu.page_mask; writable = true; user = true }
      in
      let entry_result = compute_entry () in
      (* Fault point: the walk result comes back corrupted; detection
         (modelled table-entry parity) discards it and re-walks. *)
      let entry_result =
        match rt.Runtime.inject with
        | Some inj
          when Repro_faultinject.Faultinject.fire inj
                 Repro_faultinject.Faultinject.Walk_corrupt ->
          charge rt X.Tag_mmu (Costs.mmu_slow_path ());
          compute_entry ()
        | _ -> entry_result
      in
      (match entry_result with
      | Error kind -> data_abort rt { Mem.vaddr; access; kind }
      | Ok entry ->
        let paddr = entry.Mmu.page_pa lor (vaddr land (Mmu.page_size - 1)) in
        if Bus.is_ram bus entry.Mmu.page_pa then begin
          (* translated-code pages stay write-protected in the TLB so
             every store to them takes this slow path and triggers
             invalidation *)
          let fill_entry =
            if rt.Runtime.is_code_page (vaddr lsr 12) then
              { entry with Mmu.writable = false }
            else entry
          in
          Mmu.Tlb.fill tlb ~privileged ~vaddr fill_entry;
          Ram_at paddr
        end
        else begin
          (* MMIO: never cached in the TLB; dispatch through the bus. *)
          charge rt X.Tag_mmu (Costs.io_access ());
          let r =
            match (access, width) with
            | Mem.Store, Mem.W32 -> Result.map (fun () -> 0) (Bus.write32 bus paddr value)
            | Mem.Store, Mem.W8 -> Result.map (fun () -> 0) (Bus.write8 bus paddr value)
            | Mem.Store, Mem.W16 -> (
              match Bus.write8 bus paddr (value land 0xFF) with
              | Ok () ->
                Result.map
                  (fun () -> 0)
                  (Bus.write8 bus (paddr + 1) ((value lsr 8) land 0xFF))
              | Error () -> Error ())
            | (Mem.Load | Mem.Fetch), Mem.W32 -> Bus.read32 bus paddr
            | (Mem.Load | Mem.Fetch), Mem.W8 -> Bus.read8 bus paddr
            | (Mem.Load | Mem.Fetch), Mem.W16 -> (
              match (Bus.read8 bus paddr, Bus.read8 bus (paddr + 1)) with
              | Ok lo, Ok hi -> Ok (lo lor (hi lsl 8))
              | Error (), _ | _, Error () -> Error ())
          in
          match r with
          | Ok v ->
            check_halt rt;
            Device_done v
          | Error () -> data_abort rt { Mem.vaddr; access; kind = Mem.Bus }
        end)
  end

let mmu_load (rt : Runtime.t) ~width vaddr =
  match mmu_resolve rt ~access:Mem.Load ~width vaddr 0 with
  | Ram_at paddr -> (
    match width with
    | Mem.W8 -> Exec.read_ram8 rt.Runtime.ctx paddr
    | Mem.W16 -> Exec.read_ram16 rt.Runtime.ctx paddr
    | Mem.W32 -> Exec.read_ram32 rt.Runtime.ctx paddr)
  | Device_done v -> v

let mmu_store (rt : Runtime.t) ~width vaddr value =
  (match mmu_resolve rt ~access:Mem.Store ~width vaddr value with
  | Ram_at paddr -> (
    (match width with
    | Mem.W8 -> Exec.write_ram8 rt.Runtime.ctx paddr value
    | Mem.W16 -> Exec.write_ram16 rt.Runtime.ctx paddr (value land 0xFFFF)
    | Mem.W32 -> Exec.write_ram32 rt.Runtime.ctx paddr (Word32.mask value));
    (* self-modifying code: the store completed; make the engine drop
       the (now stale) translations and resume at this very store,
       whose re-execution is idempotent *)
    if rt.Runtime.is_code_page (vaddr lsr 12) then
      if rt.Runtime.suppress_code_write then
        (* this store belongs to the singleton TB just retranslated
           after an invalidation — let it complete *)
        rt.Runtime.suppress_code_write <- false
      else begin
        charge rt X.Tag_glue (Costs.exception_entry ());
        stop_code_write ()
      end)
  | Device_done _ -> ());
  0

let install (rt : Runtime.t) =
  let dispatch (ctx : Exec.t) id =
    charge rt X.Tag_glue (Costs.helper_call_overhead ());
    let arg0 = ctx.Exec.regs.(arg0_reg) and arg1 = ctx.Exec.regs.(arg1_reg) in
    if id = h_interp_one then interp_one rt
    else if id = h_mmu_load_w then mmu_load rt ~width:Mem.W32 arg0
    else if id = h_mmu_load_b then mmu_load rt ~width:Mem.W8 arg0
    else if id = h_mmu_store_w then mmu_store rt ~width:Mem.W32 arg0 arg1
    else if id = h_mmu_store_b then mmu_store rt ~width:Mem.W8 arg0 arg1
    else if id = h_mmu_load_h then mmu_load rt ~width:Mem.W16 arg0
    else if id = h_mmu_store_h then mmu_store rt ~width:Mem.W16 arg0 arg1
    else failwith (Printf.sprintf "Helpers.dispatch: unknown helper %d" id)
  in
  rt.Runtime.ctx.Exec.helper <- dispatch

let mmu_access_cost_estimate () = Costs.helper_call_overhead () + Costs.mmu_helper_hit ()
