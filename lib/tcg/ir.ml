type temp = int
type cmp = Eq | Ne | Ltu | Geu | Lts | Ges

let cmp_to_cc : cmp -> Repro_x86.Insn.cc = function
  | Eq -> Repro_x86.Insn.E
  | Ne -> Repro_x86.Insn.NE
  | Ltu -> Repro_x86.Insn.B
  | Geu -> Repro_x86.Insn.AE
  | Lts -> Repro_x86.Insn.L
  | Ges -> Repro_x86.Insn.GE

type binop = Add | Sub | And | Or | Xor | Mul | Shl | Shr | Sar | Ror
type width = W8 | W16 | W32

type t =
  | Insn_start of int
  | Movi of temp * int
  | Mov of temp * temp
  | Ld_env of temp * int
  | St_env of int * temp
  | Sti_env of int * int
  | Binop of binop * temp * temp * temp
  | Binopi of binop * temp * temp * int
  | Not of temp * temp
  | Setcond of cmp * temp * temp * temp
  | Setcondi of cmp * temp * temp * int
  | Brcondi of cmp * temp * int * int
  | Br of int
  | Set_label of int
  | Qemu_ld of { dst : temp; addr : temp; width : width; insn_pc : int }
  | Qemu_st of { src : temp; addr : temp; width : width; insn_pc : int }
  | Call of { helper : int; args : temp list; ret : temp option }
  | Goto_tb of { slot : int; target_pc : int }
  | Exit_indirect of int

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Mul -> "mul"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"
  | Ror -> "ror"

let cmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Ltu -> "ltu"
  | Geu -> "geu"
  | Lts -> "lt"
  | Ges -> "ge"

let pp ppf = function
  | Insn_start attr -> Format.fprintf ppf "-- insn (attr %d) --" attr
  | Movi (d, v) -> Format.fprintf ppf "t%d = %#x" d v
  | Mov (d, s) -> Format.fprintf ppf "t%d = t%d" d s
  | Ld_env (d, slot) -> Format.fprintf ppf "t%d = env[%d]" d slot
  | St_env (slot, s) -> Format.fprintf ppf "env[%d] = t%d" slot s
  | Sti_env (slot, v) -> Format.fprintf ppf "env[%d] = %#x" slot v
  | Binop (op, d, a, b) -> Format.fprintf ppf "t%d = %s t%d, t%d" d (binop_name op) a b
  | Binopi (op, d, a, v) -> Format.fprintf ppf "t%d = %s t%d, %#x" d (binop_name op) a v
  | Not (d, s) -> Format.fprintf ppf "t%d = not t%d" d s
  | Setcond (c, d, a, b) ->
    Format.fprintf ppf "t%d = setcond_%s t%d, t%d" d (cmp_name c) a b
  | Setcondi (c, d, a, v) ->
    Format.fprintf ppf "t%d = setcond_%s t%d, %#x" d (cmp_name c) a v
  | Brcondi (c, a, v, l) ->
    Format.fprintf ppf "brcond_%s t%d, %#x -> L%d" (cmp_name c) a v l
  | Br l -> Format.fprintf ppf "br L%d" l
  | Set_label l -> Format.fprintf ppf "L%d:" l
  | Qemu_ld { dst; addr; width; _ } ->
    Format.fprintf ppf "t%d = qemu_ld%s [t%d]" dst
      (match width with W8 -> "8" | W16 -> "16" | W32 -> "32")
      addr
  | Qemu_st { src; addr; width; _ } ->
    Format.fprintf ppf "qemu_st%s [t%d] = t%d"
      (match width with W8 -> "8" | W16 -> "16" | W32 -> "32")
      addr src
  | Call { helper; args; ret } ->
    Format.fprintf ppf "%scall h%d(%s)"
      (match ret with Some t -> Printf.sprintf "t%d = " t | None -> "")
      helper
      (String.concat ", " (List.map (Printf.sprintf "t%d") args))
  | Goto_tb { slot; target_pc } ->
    Format.fprintf ppf "goto_tb %d (pc=%#x)" slot target_pc
  | Exit_indirect s -> Format.fprintf ppf "exit_indirect (slot %d)" s
