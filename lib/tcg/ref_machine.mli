(** The interpreter-driven reference machine: the same platform (bus,
    devices, MMU) executed by the architectural interpreter. It
    provides the ground truth for differential testing of both DBT
    engines, and the "native execution" instruction counts of the
    paper's Fig. 18. *)

open Repro_common
module Cpu = Repro_arm.Cpu
module Bus = Repro_machine.Bus

type t = { cpu : Cpu.t; bus : Bus.t; mem : Repro_arm.Mem.iface }

val create : ?ram_kib:int -> unit -> t

val load_image : t -> Word32.t -> Word32.t array -> unit
(** Raises {!Runtime.Load_error} when the image falls outside RAM. *)

type outcome = Halted of Word32.t | Step_limit | Decode_error of string

val run : t -> max_steps:int -> outcome * int
(** Execute until power-off or [max_steps]; returns the outcome and
    the number of retired guest instructions. Device time advances one
    tick per instruction, as in the DBT engines. *)
