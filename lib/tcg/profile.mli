(** Per-TB execution profiling — the moral equivalent of QEMU's
    [-d exec] plus a perf-style hot-block report, measured in the same
    operational host-instruction units as every experiment.

    A profile attributes each engine loop iteration (exactly one TB
    execution) to the TB's guest PC: executions, guest instructions
    retired, and host instructions spent (including modelled helper
    costs incurred {e during} the TB's run). Everything charged
    outside that window is deliberately not attributed to any TB:
    engine dispatch, chain jumps, interrupt delivery and its lazy flag
    parse, translation cost, exception entries, shadow-replay modelled
    cost, and TB runs abandoned by the fuel watchdog (their host
    instructions are spent but never recorded). {!total_host} is
    therefore a lower bound on {!Repro_x86.Stats.t.host_insns} —
    asserted by the profile tests. *)

open Repro_common

type entry = {
  guest_pc : Word32.t;
  privileged : bool;  (** kernel- vs user-mode translation *)
  region : bool;      (** a fused superblock (profiled apart from the
                          plain TB sharing its head PC) *)
  guest_len : int;    (** static guest instructions in the TB *)
  insns : Repro_arm.Insn.t array;  (** the TB's guest code (for dumps) *)
  mutable execs : int;            (** completed executions *)
  mutable guest_retired : int;    (** dynamic guest instructions *)
  mutable host_spent : int;       (** dynamic host instructions *)
  phases : int array;
      (** {!Repro_perfscope.Phase}-indexed split of [host_spent]
          (execute / coordinate / softmmu / helper within the TB's
          run windows); all zero when the engine ran without a scope
          or profile phase splitting *)
}

type t

val create : unit -> t

val record : t -> Tb.t -> guest:int -> host:int -> ?phases:int array -> unit -> unit
(** Attribute one execution of [tb] that retired [guest] guest
    instructions and spent [host] host instructions. [phases], when
    given, is the {!Repro_perfscope.Phase}-indexed split of [host]
    (summing to it) and accumulates elementwise. Entries aggregate
    over cache flushes: retranslations of the same (pc, privilege,
    region?) accumulate into one entry. *)

val entries : t -> entry list
(** All entries, unordered. *)

val top : ?by:[ `Host | `Execs ] -> int -> t -> entry list
(** The [n] hottest entries, by attributed host instructions (default)
    or by execution count. *)

val total_host : t -> int
(** Sum of attributed host instructions over all entries. *)

val total_guest : t -> int
(** Sum of attributed retired guest instructions over all entries. *)

val pp_entry : Format.formatter -> entry -> unit
(** One-line summary: pc, mode, executions, expansion. *)

val pp_report : ?top:int -> Format.formatter -> t -> unit
(** A hot-block table (default: 10 rows) with per-TB host/guest
    expansion and each TB's share of total attributed host cost,
    plus a phase-split footer when phase attribution ran. *)

val pp_disasm : Format.formatter -> entry -> unit
(** The entry's guest code, one instruction per line with PCs. *)
