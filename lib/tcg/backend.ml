
module X = Repro_x86.Insn
module Prog = Repro_x86.Prog
module Mmu = Repro_mmu.Mmu

let temp_pool =
  [| X.rax; X.rdx; X.rbx; X.rsi; X.rdi; X.r8; X.r9; X.r10; X.r11; X.r12; X.r13 |]

(* Scratch registers for the inline TLB probe; disjoint from the pool. *)
let mmu_s1 = X.r14
let mmu_s2 = X.r15

let host_of_temp t =
  if t < 0 || t >= Array.length temp_pool then
    failwith (Printf.sprintf "Backend: temp %d outside pool" t)
  else temp_pool.(t)

let env_op slot = X.Mem (X.env_slot slot)

let binop_to_x86 : Ir.binop -> [ `Alu of X.alu_op | `Shift of X.shift_op | `Mul ] =
  function
  | Ir.Add -> `Alu X.Add
  | Ir.Sub -> `Alu X.Sub
  | Ir.And -> `Alu X.And
  | Ir.Or -> `Alu X.Or
  | Ir.Xor -> `Alu X.Xor
  | Ir.Mul -> `Mul
  | Ir.Shl -> `Shift X.Shl
  | Ir.Shr -> `Shift X.Shr
  | Ir.Sar -> `Shift X.Sar
  | Ir.Ror -> `Shift X.Ror

type stub =
  | Slow_load of { label : int; done_ : int; addr : X.reg; dst : X.reg; width : Ir.width; insn_pc : int }
  | Slow_store of { label : int; done_ : int; addr : X.reg; src : X.reg; width : Ir.width; insn_pc : int }

let lower b ~privileged ~tb_pc ops =
  let stubs = ref [] in
  (* IR label id → prog label id. *)
  let lbl_map = Hashtbl.create 8 in
  let prog_label ir_l =
    match Hashtbl.find_opt lbl_map ir_l with
    | Some l -> l
    | None ->
      let l = Prog.fresh_label b in
      Hashtbl.replace lbl_map ir_l l;
      l
  in
  let bank_disp = 4 * Mmu.Tlb.bank_offset_words ~privileged in

  (* TB head: poll the interrupt line (paper Fig. 4). *)
  let irq_label = Prog.fresh_label b in
  Prog.emit b ~tag:X.Tag_irq_check (X.Count X.Cnt_irq_poll);
  Prog.emit b ~tag:X.Tag_irq_check
    (X.Alu { op = X.Cmp; dst = env_op Envspec.irq_pending; src = X.Imm 0 });
  Prog.emit b ~tag:X.Tag_irq_check (X.Jcc { cc = X.NE; target = irq_label });

  let emit_alu op dst a b_op =
    (* dst := a <op> b; allow dst = a in place, else move first. *)
    if dst = a then Prog.emit b (X.Alu { op; dst = X.Reg dst; src = b_op })
    else begin
      (match b_op with
      | X.Reg r when r = dst ->
        failwith "Backend: binop dst aliases second source"
      | _ -> ());
      Prog.emit b (X.Mov { width = X.W32; dst = X.Reg dst; src = X.Reg a });
      Prog.emit b (X.Alu { op; dst = X.Reg dst; src = b_op })
    end
  in
  let emit_shift op dst a amount =
    if dst <> a then begin
      (match amount with
      | X.Sh_cl -> ()
      | X.Sh_imm _ -> ());
      Prog.emit b (X.Mov { width = X.W32; dst = X.Reg dst; src = X.Reg a })
    end;
    Prog.emit b (X.Shift { op; dst = X.Reg dst; amount })
  in

  let emit_qemu_ld ~dst ~addr ~width ~insn_pc =
    Prog.emit b ~tag:X.Tag_mmu (X.Count X.Cnt_mmu_access);
    let slow = Prog.fresh_label b in
    let done_ = Prog.fresh_label b in
    let t = X.Tag_mmu in
    (* Set index: s1 = ((addr >> 12) & 0xFF) * 16 bytes *)
    Prog.emit b ~tag:t (X.Mov { width = X.W32; dst = X.Reg mmu_s1; src = X.Reg addr });
    Prog.emit b ~tag:t (X.Shift { op = X.Shr; dst = X.Reg mmu_s1; amount = X.Sh_imm 12 });
    Prog.emit b ~tag:t (X.Alu { op = X.And; dst = X.Reg mmu_s1; src = X.Imm 0xFF });
    Prog.emit b ~tag:t (X.Shift { op = X.Shl; dst = X.Reg mmu_s1; amount = X.Sh_imm 4 });
    (* Tag compare *)
    Prog.emit b ~tag:t (X.Mov { width = X.W32; dst = X.Reg mmu_s2; src = X.Reg addr });
    Prog.emit b ~tag:t (X.Alu { op = X.And; dst = X.Reg mmu_s2; src = X.Imm Mmu.page_mask });
    Prog.emit b ~tag:t
      (X.Alu
         {
           op = X.Cmp;
           dst = X.Mem { seg = X.Tlb; base = Some mmu_s1; index = None; scale = 1; disp = bank_disp };
           src = X.Reg mmu_s2;
         });
    Prog.emit b ~tag:t (X.Jcc { cc = X.NE; target = slow });
    (* Hit: paddr = tlb.paddr_page | (addr & 0xFFF) *)
    Prog.emit b ~tag:t
      (X.Mov
         {
           width = X.W32;
           dst = X.Reg mmu_s2;
           src = X.Mem { seg = X.Tlb; base = Some mmu_s1; index = None; scale = 1; disp = bank_disp + 8 };
         });
    Prog.emit b ~tag:t (X.Mov { width = X.W32; dst = X.Reg X.rcx; src = X.Reg addr });
    Prog.emit b ~tag:t (X.Alu { op = X.And; dst = X.Reg X.rcx; src = X.Imm 0xFFF });
    Prog.emit b ~tag:t (X.Alu { op = X.Add; dst = X.Reg mmu_s2; src = X.Reg X.rcx });
    let ram = X.Mem { seg = X.Ram; base = Some mmu_s2; index = None; scale = 1; disp = 0 } in
    (match width with
    | Ir.W32 -> Prog.emit b ~tag:t (X.Mov { width = X.W32; dst = X.Reg dst; src = ram })
    | Ir.W16 -> Prog.emit b ~tag:t (X.Movzx16 { dst; src = ram })
    | Ir.W8 -> Prog.emit b ~tag:t (X.Movzx8 { dst; src = ram }));
    Prog.emit b (X.Label done_);
    stubs := Slow_load { label = slow; done_; addr; dst; width; insn_pc } :: !stubs
  in
  let emit_qemu_st ~src ~addr ~width ~insn_pc =
    Prog.emit b ~tag:X.Tag_mmu (X.Count X.Cnt_mmu_access);
    let slow = Prog.fresh_label b in
    let done_ = Prog.fresh_label b in
    let t = X.Tag_mmu in
    Prog.emit b ~tag:t (X.Mov { width = X.W32; dst = X.Reg mmu_s1; src = X.Reg addr });
    Prog.emit b ~tag:t (X.Shift { op = X.Shr; dst = X.Reg mmu_s1; amount = X.Sh_imm 12 });
    Prog.emit b ~tag:t (X.Alu { op = X.And; dst = X.Reg mmu_s1; src = X.Imm 0xFF });
    Prog.emit b ~tag:t (X.Shift { op = X.Shl; dst = X.Reg mmu_s1; amount = X.Sh_imm 4 });
    Prog.emit b ~tag:t (X.Mov { width = X.W32; dst = X.Reg mmu_s2; src = X.Reg addr });
    Prog.emit b ~tag:t (X.Alu { op = X.And; dst = X.Reg mmu_s2; src = X.Imm Mmu.page_mask });
    Prog.emit b ~tag:t
      (X.Alu
         {
           op = X.Cmp;
           (* write tag is the second word of the set *)
           dst = X.Mem { seg = X.Tlb; base = Some mmu_s1; index = None; scale = 1; disp = bank_disp + 4 };
           src = X.Reg mmu_s2;
         });
    Prog.emit b ~tag:t (X.Jcc { cc = X.NE; target = slow });
    Prog.emit b ~tag:t
      (X.Mov
         {
           width = X.W32;
           dst = X.Reg mmu_s2;
           src = X.Mem { seg = X.Tlb; base = Some mmu_s1; index = None; scale = 1; disp = bank_disp + 8 };
         });
    Prog.emit b ~tag:t (X.Mov { width = X.W32; dst = X.Reg X.rcx; src = X.Reg addr });
    Prog.emit b ~tag:t (X.Alu { op = X.And; dst = X.Reg X.rcx; src = X.Imm 0xFFF });
    Prog.emit b ~tag:t (X.Alu { op = X.Add; dst = X.Reg mmu_s2; src = X.Reg X.rcx });
    let ram = X.Mem { seg = X.Ram; base = Some mmu_s2; index = None; scale = 1; disp = 0 } in
    (match width with
    | Ir.W32 -> Prog.emit b ~tag:t (X.Mov { width = X.W32; dst = ram; src = X.Reg src })
    | Ir.W16 -> Prog.emit b ~tag:t (X.Mov { width = X.W16; dst = ram; src = X.Reg src })
    | Ir.W8 -> Prog.emit b ~tag:t (X.Mov { width = X.W8; dst = ram; src = X.Reg src }));
    Prog.emit b (X.Label done_);
    stubs := Slow_store { label = slow; done_; addr; src; width; insn_pc } :: !stubs
  in

  let lower_op op =
    match op with
    | Ir.Insn_start attr -> Prog.emit b (X.Count (X.Cnt_guest_insn attr))
    | Ir.Movi (d, v) ->
      Prog.emit b (X.Mov { width = X.W32; dst = X.Reg (host_of_temp d); src = X.Imm v })
    | Ir.Mov (d, s) ->
      Prog.emit b
        (X.Mov { width = X.W32; dst = X.Reg (host_of_temp d); src = X.Reg (host_of_temp s) })
    | Ir.Ld_env (d, slot) ->
      Prog.emit b (X.Mov { width = X.W32; dst = X.Reg (host_of_temp d); src = env_op slot })
    | Ir.St_env (slot, s) ->
      Prog.emit b (X.Mov { width = X.W32; dst = env_op slot; src = X.Reg (host_of_temp s) })
    | Ir.Sti_env (slot, v) ->
      Prog.emit b (X.Mov { width = X.W32; dst = env_op slot; src = X.Imm v })
    | Ir.Binop (bop, d, a, bb) -> (
      let d = host_of_temp d and a = host_of_temp a and bb = host_of_temp bb in
      match binop_to_x86 bop with
      | `Alu op -> emit_alu op d a (X.Reg bb)
      | `Mul ->
        if d <> a then Prog.emit b (X.Mov { width = X.W32; dst = X.Reg d; src = X.Reg a });
        Prog.emit b (X.Imul { dst = d; src = X.Reg bb })
      | `Shift op ->
        Prog.emit b (X.Mov { width = X.W32; dst = X.Reg X.rcx; src = X.Reg bb });
        emit_shift op d a X.Sh_cl)
    | Ir.Binopi (bop, d, a, v) -> (
      let d = host_of_temp d and a = host_of_temp a in
      match binop_to_x86 bop with
      | `Alu op -> emit_alu op d a (X.Imm v)
      | `Mul ->
        if d <> a then Prog.emit b (X.Mov { width = X.W32; dst = X.Reg d; src = X.Reg a });
        Prog.emit b (X.Imul { dst = d; src = X.Imm v })
      | `Shift op -> emit_shift op d a (X.Sh_imm (v land 31)))
    | Ir.Not (d, s) ->
      let d = host_of_temp d and s = host_of_temp s in
      if d <> s then Prog.emit b (X.Mov { width = X.W32; dst = X.Reg d; src = X.Reg s });
      Prog.emit b (X.Not (X.Reg d))
    | Ir.Setcond (c, d, a, bb) ->
      Prog.emit b
        (X.Alu { op = X.Cmp; dst = X.Reg (host_of_temp a); src = X.Reg (host_of_temp bb) });
      Prog.emit b (X.Setcc { cc = Ir.cmp_to_cc c; dst = host_of_temp d })
    | Ir.Setcondi (c, d, a, v) ->
      Prog.emit b (X.Alu { op = X.Cmp; dst = X.Reg (host_of_temp a); src = X.Imm v });
      Prog.emit b (X.Setcc { cc = Ir.cmp_to_cc c; dst = host_of_temp d })
    | Ir.Brcondi (c, a, v, l) ->
      Prog.emit b (X.Alu { op = X.Cmp; dst = X.Reg (host_of_temp a); src = X.Imm v });
      Prog.emit b (X.Jcc { cc = Ir.cmp_to_cc c; target = prog_label l })
    | Ir.Br l -> Prog.emit b (X.Jmp (prog_label l))
    | Ir.Set_label l -> Prog.emit b (X.Label (prog_label l))
    | Ir.Qemu_ld { dst; addr; width; insn_pc } ->
      emit_qemu_ld ~dst:(host_of_temp dst) ~addr:(host_of_temp addr) ~width ~insn_pc
    | Ir.Qemu_st { src; addr; width; insn_pc } ->
      emit_qemu_st ~src:(host_of_temp src) ~addr:(host_of_temp addr) ~width ~insn_pc
    | Ir.Call { helper; args; ret } ->
      let arg_regs = [| Helpers.arg0_reg; Helpers.arg1_reg |] in
      List.iteri
        (fun i a ->
          Prog.emit b ~tag:X.Tag_glue
            (X.Mov { width = X.W32; dst = X.Reg arg_regs.(i); src = X.Reg (host_of_temp a) }))
        args;
      Prog.emit b ~tag:X.Tag_glue (X.Call_helper { id = helper });
      (match ret with
      | Some d ->
        Prog.emit b ~tag:X.Tag_glue
          (X.Mov { width = X.W32; dst = X.Reg (host_of_temp d); src = X.Reg X.rax })
      | None -> ())
    | Ir.Goto_tb { slot; target_pc } ->
      Prog.emit b ~tag:X.Tag_glue
        (X.Mov { width = X.W32; dst = env_op Envspec.pc; src = X.Imm target_pc });
      Prog.emit b ~tag:X.Tag_glue (X.Exit { slot })
    | Ir.Exit_indirect slot -> Prog.emit b ~tag:X.Tag_glue (X.Exit { slot })
  in
  (* Pseudo guest-insn boundary markers are interleaved by the
     translator via Count ops in the IR? No — the translator emits them
     directly; here we only lower the ops. *)
  List.iter lower_op ops;

  (* Stubs: softMMU slow paths, then the interrupt-exit stub. *)
  List.iter
    (fun stub ->
      match stub with
      | Slow_load { label; done_; addr; dst; width; insn_pc } ->
        Prog.emit b (X.Label label);
        Prog.emit b ~tag:X.Tag_mmu
          (X.Mov { width = X.W32; dst = env_op Envspec.pc; src = X.Imm insn_pc });
        Prog.emit b ~tag:X.Tag_mmu
          (X.Mov { width = X.W32; dst = X.Reg Helpers.arg0_reg; src = X.Reg addr });
        Prog.emit b ~tag:X.Tag_mmu
          (X.Call_helper
             { id = (match width with
              | Ir.W32 -> Helpers.h_mmu_load_w
              | Ir.W16 -> Helpers.h_mmu_load_h
              | Ir.W8 -> Helpers.h_mmu_load_b) });
        Prog.emit b ~tag:X.Tag_mmu
          (X.Mov { width = X.W32; dst = X.Reg dst; src = X.Reg X.rax });
        Prog.emit b ~tag:X.Tag_mmu (X.Jmp done_)
      | Slow_store { label; done_; addr; src; width; insn_pc } ->
        Prog.emit b (X.Label label);
        Prog.emit b ~tag:X.Tag_mmu
          (X.Mov { width = X.W32; dst = env_op Envspec.pc; src = X.Imm insn_pc });
        (* value first: src may alias the address register rdx *)
        Prog.emit b ~tag:X.Tag_mmu
          (X.Mov { width = X.W32; dst = X.Reg Helpers.arg1_reg; src = X.Reg src });
        Prog.emit b ~tag:X.Tag_mmu
          (X.Mov { width = X.W32; dst = X.Reg Helpers.arg0_reg; src = X.Reg addr });
        Prog.emit b ~tag:X.Tag_mmu
          (X.Call_helper
             { id = (match width with
              | Ir.W32 -> Helpers.h_mmu_store_w
              | Ir.W16 -> Helpers.h_mmu_store_h
              | Ir.W8 -> Helpers.h_mmu_store_b) });
        Prog.emit b ~tag:X.Tag_mmu (X.Jmp done_))
    (List.rev !stubs);

  (* Interrupt exit stub: record the TB's own PC so delivery computes
     the right return address, then leave through the reserved slot. *)
  Prog.emit b (X.Label irq_label);
  Prog.emit b ~tag:X.Tag_irq_check
    (X.Mov { width = X.W32; dst = env_op Envspec.pc; src = X.Imm tb_pc });
  Prog.emit b ~tag:X.Tag_irq_check (X.Exit { slot = Tb.slot_irq })
