open Repro_common
module Exec = Repro_x86.Exec
module Bus = Repro_machine.Bus
module Cpu = Repro_arm.Cpu
module Mem = Repro_arm.Mem
module Mmu = Repro_mmu.Mmu
module Trace = Repro_observe.Trace
module Ledger = Repro_observe.Ledger
module Scope = Repro_perfscope.Scope

type t = {
  ctx : Exec.t;
  bus : Bus.t;
  cpu : Cpu.t;
  mutable mem : Mem.iface;
  mutable is_code_page : Word32.t -> bool;
  mutable pending_code_write : bool;
  mutable tb_override : int option;
  mutable suppress_code_write : bool;
  inject : Repro_faultinject.Faultinject.t option;
  mutable fault_producers : (Word32.t * Word32.t array) array;
  mutable corrupt_override : [ `None | `Rule_corrupt | `Livelock ] option;
  mutable trace : Trace.t option;
  mutable ledger : Ledger.t option;
  mutable scope : Scope.t option;
}

exception Load_error of Word32.t

let stop_exception = 1
let stop_halt = 2
let stop_code_write = 3

let create ?(ram_kib = 4096) ?inject ?trace ?ledger ?scope () =
  let ctx =
    Exec.create ~env_slots:Envspec.n_slots ~ram_size:(ram_kib * 1024)
      ~tlb_words:Mmu.Tlb.words ()
  in
  (* Trace timestamps are retired guest instructions — deterministic,
     comparable across runs, and free when tracing is off. *)
  (match trace with
  | Some tr ->
      Trace.set_clock tr (fun () ->
          ctx.Exec.stats.Repro_x86.Stats.guest_insns)
  | None -> ());
  Mmu.Tlb.flush ctx.Exec.tlb;
  let bus = Bus.create ~ram:ctx.Exec.ram in
  let cpu = Cpu.create () in
  let mem = Mmu.iface ?inject bus cpu in
  (* cp15 c8 writes must drop stale softMMU entries. *)
  let mem =
    {
      mem with
      Mem.flush_tlb =
        (fun () ->
          (match trace with
          | Some tr -> Trace.emit tr Trace.Tlb "flush"
          | None -> ());
          Mmu.Tlb.flush ctx.Exec.tlb);
    }
  in
  let rt =
    {
      ctx;
      bus;
      cpu;
      mem;
      is_code_page = (fun _ -> false);
      pending_code_write = false;
      tb_override = None;
      suppress_code_write = false;
      inject;
      fault_producers = [||];
      corrupt_override = None;
      trace;
      ledger;
      scope;
    }
  in
  (* Interpreter-path stores (helpers emulating whole instructions)
     must also notice writes into translated code. *)
  let store width ~privileged vaddr v =
    let r = mem.Mem.store width ~privileged vaddr v in
    (match r with
    | Ok () -> if rt.is_code_page (vaddr lsr 12) then rt.pending_code_write <- true
    | Error _ -> ());
    r
  in
  rt.mem <- { mem with Mem.store };
  rt

let env t = t.ctx.Exec.env
let stats t = t.ctx.Exec.stats
let privileged t = Cpu.mode_is_privileged (Cpu.mode t.cpu)

let load_image t origin words =
  Array.iteri
    (fun i w ->
      let addr = Word32.add origin (4 * i) in
      match Bus.write32 t.bus addr w with
      | Ok () -> ()
      | Error () -> raise (Load_error addr))
    words

let sync_env_to_cpu t = Envspec.env_to_cpu (env t) t.cpu
let sync_cpu_to_env t = Envspec.cpu_to_env t.cpu (env t)

let refresh_irq_pending t =
  let pending = Bus.irq_line t.bus && not (Cpu.irq_masked t.cpu) in
  (env t).(Envspec.irq_pending) <- (if pending then 1 else 0);
  (* Raise->deliver latency starts ticking the first time the line is
     deliverable; purely observational (clock = retired guest insns). *)
  match t.scope with
  | Some sc when pending ->
    Scope.note_irq_raised sc ~at:(stats t).Repro_x86.Stats.guest_insns
  | _ -> ()

let take_guest_exception t kind ~pc_of_faulting_insn =
  sync_env_to_cpu t;
  Cpu.take_exception t.cpu kind ~pc_of_faulting_insn;
  sync_cpu_to_env t;
  refresh_irq_pending t
