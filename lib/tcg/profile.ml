open Repro_common
module Phase = Repro_perfscope.Phase

type entry = {
  guest_pc : Word32.t;
  privileged : bool;
  region : bool;
  guest_len : int;
  insns : Repro_arm.Insn.t array;
  mutable execs : int;
  mutable guest_retired : int;
  mutable host_spent : int;
  phases : int array;
}

type t = { table : (Word32.t * bool * bool, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 256 }

let record t (tb : Tb.t) ~guest ~host ?phases () =
  (* a region shares its head PC with the plain head TB: keep the
     two profiles apart *)
  let key = (tb.Tb.guest_pc, tb.Tb.privileged, Tb.is_region tb) in
  let e =
    match Hashtbl.find_opt t.table key with
    | Some e -> e
    | None ->
      let e =
        {
          guest_pc = tb.Tb.guest_pc;
          privileged = tb.Tb.privileged;
          region = Tb.is_region tb;
          guest_len = tb.Tb.guest_len;
          insns = Array.sub tb.Tb.guest_insns 0 tb.Tb.guest_len;
          execs = 0;
          guest_retired = 0;
          host_spent = 0;
          phases = Array.make Phase.n 0;
        }
      in
      Hashtbl.add t.table key e;
      e
  in
  e.execs <- e.execs + 1;
  e.guest_retired <- e.guest_retired + guest;
  e.host_spent <- e.host_spent + host;
  match phases with
  | Some p -> Array.iteri (fun i n -> e.phases.(i) <- e.phases.(i) + n) p
  | None -> ()

let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.table []

let top ?(by = `Host) n t =
  let weight e = match by with `Host -> e.host_spent | `Execs -> e.execs in
  let sorted =
    List.sort (fun a b -> compare (weight b, a.guest_pc) (weight a, b.guest_pc)) (entries t)
  in
  List.filteri (fun i _ -> i < n) sorted

let total_host t = List.fold_left (fun acc e -> acc + e.host_spent) 0 (entries t)
let total_guest t = List.fold_left (fun acc e -> acc + e.guest_retired) 0 (entries t)

let expansion e =
  if e.guest_retired = 0 then 0. else float_of_int e.host_spent /. float_of_int e.guest_retired

let pp_entry ppf e =
  Format.fprintf ppf "%08x %s len=%-2d execs=%-8d host/guest=%.2f" e.guest_pc
    (if e.privileged then "krnl" else "user")
    e.guest_len e.execs (expansion e)

let pp_report ?(top = 10) ppf t =
  let total = total_host t in
  let rows = top in
  let hot =
    let weight e = e.host_spent in
    let sorted =
      List.sort
        (fun a b -> compare (weight b, a.guest_pc) (weight a, b.guest_pc))
        (entries t)
    in
    List.filteri (fun i _ -> i < rows) sorted
  in
  Format.fprintf ppf "@[<v>%-8s  %-4s  %3s  %9s  %11s  %11s  %10s  %6s@ " "guest pc"
    "mode" "len" "execs" "guest insns" "host insns" "host/guest" "%total";
  List.iter
    (fun e ->
      Format.fprintf ppf "%08x  %-4s  %3d  %9d  %11d  %11d  %10.2f  %5.1f%%@ " e.guest_pc
        (if e.privileged then "krnl" else "user")
        e.guest_len e.execs e.guest_retired e.host_spent (expansion e)
        (if total = 0 then 0. else 100. *. float_of_int e.host_spent /. float_of_int total);
      ())
    hot;
  Format.fprintf ppf "(%d TBs profiled, %d host insns attributed)"
    (Hashtbl.length t.table) total;
  let phase_totals = Array.make Phase.n 0 in
  List.iter
    (fun e ->
      Array.iteri (fun i n -> phase_totals.(i) <- phase_totals.(i) + n) e.phases)
    (entries t);
  if Array.exists (fun n -> n > 0) phase_totals then begin
    Format.fprintf ppf "@ phase split:";
    List.iter
      (fun p ->
        Format.fprintf ppf " %s=%d" (Phase.name p) phase_totals.(Phase.index p))
      Phase.all
  end;
  Format.fprintf ppf "@]"

let pp_disasm ppf e =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i insn ->
      Format.fprintf ppf "%08x:  %a@ " (e.guest_pc + (4 * i)) Repro_arm.Insn.pp insn)
    e.insns;
  Format.fprintf ppf "@]"
