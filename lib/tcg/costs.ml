(* Nominal host-instruction costs of the engine's OCaml-side ("C
   side") work, calibrated in DESIGN.md Â§5. A global percentage scale
   supports the cost-model sensitivity ablation: emitted host code is
   counted operationally and never scaled, so the scale perturbs
   exactly the modelled (non-operational) half of the cost model. *)

(* Atomic rather than [ref]: the scale is read on hot engine paths
   from every serving domain, and the ablation harness writes it from
   the coordinator. A plain ref would be a data race under
   [Domain.spawn]; an atomic read costs the same on amd64. *)
let scale_pct = Atomic.make 100

let set_scale_pct p =
  if p <= 0 then invalid_arg "Costs.set_scale_pct" else Atomic.set scale_pct p

let get_scale_pct () = Atomic.get scale_pct
let apply base = base * Atomic.get scale_pct / 100
let engine_dispatch () = apply 22
let chain_jump () = apply 2
let helper_call_overhead () = apply 4
let interp_one () = apply 30
let mmu_slow_path () = apply 38
let mmu_helper_hit () = apply 9
let io_access () = apply 20
let irq_deliver () = apply 46
let exception_entry () = apply 40
let translation_per_guest_insn () = apply 60
let region_form_per_guest_insn () = apply 8

(* Every modelled cost with the phase the engine attributes it to, for
   embedding in machine-readable perf output: a profile is only
   comparable to another taken under the same model and scale. *)
let all =
  [
    ("engine_dispatch", engine_dispatch, "execute");
    ("chain_jump", chain_jump, "execute");
    ("helper_call_overhead", helper_call_overhead, "helper");
    ("interp_one", interp_one, "helper");
    ("mmu_slow_path", mmu_slow_path, "softmmu");
    ("mmu_helper_hit", mmu_helper_hit, "softmmu");
    ("io_access", io_access, "softmmu");
    ("irq_deliver", irq_deliver, "deliver");
    ("exception_entry", exception_entry, "translate");
    ("translation_per_guest_insn", translation_per_guest_insn, "translate");
    ("region_form_per_guest_insn", region_form_per_guest_insn, "region");
  ]

let to_json () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"scale_pct\":%d" (Atomic.get scale_pct));
  List.iter
    (fun (name, cost, phase) ->
      Buffer.add_string buf
        (Printf.sprintf ",%S:{\"insns\":%d,\"phase\":%S}" name (cost ()) phase))
    all;
  Buffer.add_char buf '}';
  Buffer.contents buf
