(** The QEMU-style baseline translator: decode a guest basic block at
    a PC, lift it through {!Frontend}, lower through {!Backend}. This
    is the system the paper's speedups are measured against. *)

open Repro_common

val max_tb_insns : int

val fetch_block : ?cap:int -> Runtime.t -> pc:Word32.t -> Repro_arm.Insn.t list
(** Decode one guest basic block at [pc] under the current privilege:
    stops at branches, system-level TB enders, the length limit, page
    boundaries or undecodable words. [cap] overrides the length limit
    (used by the bailout ladder); it defaults to the runtime's
    [tb_override] or {!max_tb_insns}. Shared with the rule-based
    translator. *)

val emulate_one_tb : ?insn:Repro_arm.Insn.t -> Runtime.t -> Tb.Cache.t -> pc:Word32.t -> Tb.t
(** A TB that executes the single guest instruction at [pc] through
    the interpreter helper — the last rung of the bailout ladder, also
    covering undecodable words (which take their Undefined_insn
    exception inside the helper). [insn], when the caller already
    decoded the word, supplies the opcode class of the interpreter-tier
    coverage attribution; omitted, the retirement is charged to the
    undefined-instruction class. *)

val translate :
  Runtime.t -> Tb.Cache.t -> pc:Word32.t -> (Tb.t, Repro_arm.Mem.fault) result
(** Build a TB for the current privilege/MMU configuration. [Error]
    is a fetch fault on the first instruction (prefetch abort).
    Resource overflows ({!Tb.Tb_too_complex}) are retried internally
    with shorter blocks, bottoming out at {!emulate_one_tb} — the
    function never raises on guest-controlled input. *)
