(** The assembled virtual machine: host execution context, guest
    physical bus, the architectural CPU mirror that helpers operate
    on, and the softMMU view — shared by the QEMU-style baseline and
    the rule-based engine. *)

open Repro_common
module Exec = Repro_x86.Exec
module Bus = Repro_machine.Bus
module Cpu = Repro_arm.Cpu
module Mem = Repro_arm.Mem

type t = {
  ctx : Exec.t;
  bus : Bus.t;
  cpu : Cpu.t;  (** system-state mirror (modes, banks, cp15, FPSCR) *)
  mutable mem : Mem.iface;  (** reference-style translated view over bus+cpu *)
  mutable is_code_page : Word32.t -> bool;
      (** installed by the execution engine: virtual pages containing
          translated code; guest stores into them must invalidate *)
  mutable pending_code_write : bool;
      (** set when a store hit a code page via the interpreter path *)
  mutable tb_override : int option;
      (** translation-length override for the next block (the engine's
          singleton-TB protocol for same-page self-modification) *)
  mutable suppress_code_write : bool;
      (** one-shot: the next code-page store does not stop (it belongs
          to the freshly retranslated singleton TB) *)
  inject : Repro_faultinject.Faultinject.t option;
      (** fault injector shared by the engine, the helpers and the
          translators; [None] disables every injection point *)
  mutable fault_producers : (Word32.t * Word32.t array) array;
      (** the executing TB's {!Tb.t.fault_producers} table, published
          by the engine before each TB run: consulted on a guest data
          abort to replay instructions the translator scheduled after
          the faulting access but that architecturally precede it *)
  mutable corrupt_override : [ `None | `Rule_corrupt | `Livelock ] option;
      (** snapshot cache rebuild: [Some k] forces the rule translator
          to apply (or skip, for [`None]) exactly the recorded code
          corruption instead of drawing from the injector, so the
          reconstructed TB is bit-identical to the captured one *)
  mutable trace : Repro_observe.Trace.t option;
      (** structured event ring shared by the engine, devices, MMU
          helpers and the rule translator; [None] disables emission
          everywhere (the purely observational path — host-instruction
          counts are bit-identical with tracing on or off) *)
  mutable ledger : Repro_observe.Ledger.t option;
      (** coordination ledger the engine feeds per-TB provenance into
          at dispatch time; [None] disables dynamic attribution *)
  mutable scope : Repro_perfscope.Scope.t option;
      (** performance scope the engine drains per-phase host-insn
          deltas and latency observations into; [None] disables
          attribution (purely observational either way) *)
}

exception Load_error of Word32.t
(** Raised by {!load_image} (and [Ref_machine.load_image]) when part
    of the image falls outside guest RAM — the offending physical
    address. Typed so front ends can report it with a distinct exit
    code instead of dying on [Failure]. *)

(** Helper stop codes (the payload of {!Exec.Helper_stop}). *)

val stop_exception : int
(** A guest exception was taken; [env] is already at the vector. *)

val stop_halt : int
(** The guest wrote the system controller's power-off register. *)

val stop_code_write : int
(** The guest wrote into a page holding translated code: the engine
    must flush the code cache and retranslate (self-modifying code). *)

val create :
  ?ram_kib:int ->
  ?inject:Repro_faultinject.Faultinject.t ->
  ?trace:Repro_observe.Trace.t ->
  ?ledger:Repro_observe.Ledger.t ->
  ?scope:Repro_perfscope.Scope.t ->
  unit ->
  t
(** Fresh machine with RAM zeroed, CPU at reset, TLB invalid. The
    helper dispatcher is installed by {!Helpers.install}. [inject]
    arms the MMU/engine/translator fault points; the bus's own
    injection point is armed separately at run time (see
    {!Repro_machine.Bus.t}) so image loading is never perturbed.
    [trace] installs the event ring (its clock becomes retired guest
    instructions); [ledger] enables dynamic coordination attribution;
    [scope] enables per-phase cost attribution and the latency
    histograms. *)

val env : t -> int array
val stats : t -> Repro_x86.Stats.t

val privileged : t -> bool
(** Current privilege of the mirror CPU. *)

val load_image : t -> Word32.t -> Word32.t array -> unit
(** Copy an assembled image into guest physical memory. *)

val sync_env_to_cpu : t -> unit
val sync_cpu_to_env : t -> unit
val refresh_irq_pending : t -> unit
(** [env.irq_pending := bus line && not CPSR.I] — engine-maintained. *)

val take_guest_exception : t -> Cpu.exn_kind -> pc_of_faulting_insn:Word32.t -> unit
(** Full exception entry on the mirror, then resync to [env]. *)
