(** The QEMU-style intermediate representation.

    The baseline is a faithful two-step translator: ARM guest
    instructions are lifted to these IR ops ({!Frontend}) and the ops
    are lowered to host code ({!Backend}) — the "many-to-many"
    structure whose n×m expansion the learned rules bypass. Temps are
    virtual registers with per-guest-instruction lifetimes. *)

type temp = int

type cmp = Eq | Ne | Ltu | Geu | Lts | Ges

val cmp_to_cc : cmp -> Repro_x86.Insn.cc

type binop = Add | Sub | And | Or | Xor | Mul | Shl | Shr | Sar | Ror

type width = W8 | W16 | W32

type t =
  | Insn_start of int
      (** retired-guest-instruction marker (zero-cost Count); the
          argument is the packed coverage-attribution word the marker
          lowers to (see [Repro_covscope.Attr]) *)
  | Movi of temp * int
  | Mov of temp * temp
  | Ld_env of temp * int        (** temp := env slot *)
  | St_env of int * temp
  | Sti_env of int * int        (** env slot := constant *)
  | Binop of binop * temp * temp * temp  (** dst, a, b *)
  | Binopi of binop * temp * temp * int
  | Not of temp * temp
  | Setcond of cmp * temp * temp * temp  (** dst := a <cmp> b ? 1 : 0 *)
  | Setcondi of cmp * temp * temp * int
  | Brcondi of cmp * temp * int * int    (** if (a <cmp> const) goto label *)
  | Br of int
  | Set_label of int
  | Qemu_ld of { dst : temp; addr : temp; width : width; insn_pc : int }
      (** softMMU load: inline TLB fast path + slow-path helper.
          [insn_pc] is stored to env before the slow call so a fault
          reports the right guest PC. *)
  | Qemu_st of { src : temp; addr : temp; width : width; insn_pc : int }
  | Call of { helper : int; args : temp list; ret : temp option }
  | Goto_tb of { slot : int; target_pc : int }   (** chainable direct exit *)
  | Exit_indirect of int  (** slot; guest PC already stored to env *)

val pp : Format.formatter -> t -> unit
