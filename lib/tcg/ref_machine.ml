open Repro_common
module Cpu = Repro_arm.Cpu
module Bus = Repro_machine.Bus
module Interp = Repro_arm.Interp
module Mmu = Repro_mmu.Mmu

type t = { cpu : Cpu.t; bus : Bus.t; mem : Repro_arm.Mem.iface }

let create ?(ram_kib = 4096) () =
  let ram = Bytes.make (ram_kib * 1024) '\000' in
  let bus = Bus.create ~ram in
  let cpu = Cpu.create () in
  let mem = Mmu.iface bus cpu in
  { cpu; bus; mem }

let load_image t origin words =
  Array.iteri
    (fun i w ->
      let addr = Word32.add origin (4 * i) in
      match Bus.write32 t.bus addr w with
      | Ok () -> ()
      | Error () -> raise (Runtime.Load_error addr))
    words

type outcome = Halted of Word32.t | Step_limit | Decode_error of string

let run t ~max_steps =
  let iterations = ref 0 in
  let rec loop n =
    incr iterations;
    if n >= max_steps || !iterations > 4 * max_steps then (Step_limit, n)
    else
      match Bus.halted t.bus with
      | Some code -> (Halted code, n)
      | None -> (
        match Interp.step t.cpu t.mem ~irq:(Bus.irq_line t.bus) with
        | Interp.Stepped ->
          Bus.tick t.bus 1;
          loop (n + 1)
        | Interp.Took_exception k ->
          (* IRQ delivery and prefetch aborts happen before the
             instruction executes; everything else retires it — the
             same counting the DBT engines' Count markers produce. *)
          let retired =
            match k with
            | Cpu.Irq | Cpu.Prefetch_abort -> 0
            | Cpu.Reset | Cpu.Undefined_insn | Cpu.Supervisor_call | Cpu.Data_abort -> 1
          in
          Bus.tick t.bus retired;
          loop (n + retired)
        | Interp.Decode_error e -> (Decode_error e, n))
  in
  loop 0
