open Repro_common
module Prog = Repro_x86.Prog

type exit_kind = Direct of Word32.t | Indirect | Irq_deliver

exception Tb_too_complex

type t = {
  id : int;
  guest_pc : Word32.t;
  privileged : bool;
  mmu_on : bool;
  mutable prog : Prog.t;
  exits : exit_kind array;
  links : t option array;
  guest_insns : Repro_arm.Insn.t array;
  guest_len : int;
  fault_producers : (Word32.t * Word32.t array) array;
  translated_override : int option;
  mutable injected : [ `None | `Rule_corrupt | `Livelock ];
  mutable prov : int array;
  mutable hot : int;
  region_ids : int array;
}

let exit_slots = 4
let slot_irq = 3
let region_exit_slots = 12
let is_region tb = Array.length tb.region_ids > 0

module Cache = struct
  type tb = t

  (* Virtual pages span a 32-bit address space: 2^20 pages, one byte
     each in the code bitmap — the O(1) "is this a code page?" check
     the hot store path performs on every write. *)
  let n_pages = 1 lsl 20

  type nonrec t = {
    table : (int * bool * bool, tb) Hashtbl.t;
    regions : (int * bool * bool, tb) Hashtbl.t;
        (* fused superblocks, keyed by head PC; consulted before
           [table] so dispatch at a hot head enters the region *)
    pages : (int, int) Hashtbl.t;  (* virtual page -> overlapping TB count *)
    code_bitmap : Bytes.t;         (* page-indexed mirror of [pages] membership *)
    capacity : int;
    mutable full_flushes : int;
    mutable ids : int;
    mutable generation : int;
        (* bumped on every flush; direct-mapped dispatch caches in
           front of [find] key their entries on it so a flush
           invalidates them without a scan *)
  }

  let create ?(capacity = 4096) () =
    if capacity <= 0 then invalid_arg "Tb.Cache.create";
    {
      table = Hashtbl.create 1024;
      regions = Hashtbl.create 64;
      pages = Hashtbl.create 64;
      code_bitmap = Bytes.make n_pages '\000';
      capacity;
      full_flushes = 0;
      ids = 0;
      generation = 0;
    }

  let find t ~pc ~privileged ~mmu_on =
    let key = (pc, privileged, mmu_on) in
    if Hashtbl.length t.regions > 0 then
      match Hashtbl.find_opt t.regions key with
      | Some _ as r -> r
      | None -> Hashtbl.find_opt t.table key
    else Hashtbl.find_opt t.table key

  let find_plain t ~pc ~privileged ~mmu_on =
    Hashtbl.find_opt t.table (pc, privileged, mmu_on)

  let tb_pages tb =
    let first = tb.guest_pc lsr 12 in
    let last = (tb.guest_pc + (4 * tb.guest_len) - 1) lsr 12 in
    if first = last then [ first ] else [ first; last ]

  let flush t =
    Hashtbl.iter (fun p _ -> Bytes.unsafe_set t.code_bitmap (p land (n_pages - 1)) '\000') t.pages;
    Hashtbl.reset t.table;
    Hashtbl.reset t.regions;
    Hashtbl.reset t.pages;
    t.generation <- t.generation + 1

  let register_pages t ps =
    List.iter
      (fun p ->
        let n = try Hashtbl.find t.pages p with Not_found -> 0 in
        Hashtbl.replace t.pages p (n + 1);
        Bytes.unsafe_set t.code_bitmap (p land (n_pages - 1)) '\001')
      ps

  let add t tb =
    (* QEMU's policy when the code-generation buffer fills: drop every
       translation and start over. Safe mid-run because eviction only
       happens between TB executions; flushed TBs become unreachable
       (fresh TBs start unlinked, and lookups go through the table). *)
    if Hashtbl.length t.table >= t.capacity then begin
      flush t;
      t.full_flushes <- t.full_flushes + 1
    end;
    Hashtbl.replace t.table (tb.guest_pc, tb.privileged, tb.mmu_on) tb;
    register_pages t (tb_pages tb)

  (* Snapshot rebuild inserts a live set that fit the cache when it
     was captured; the capacity check in [add] would spuriously flush
     when that set is exactly at capacity. *)
  let add_exact t tb =
    Hashtbl.replace t.table (tb.guest_pc, tb.privileged, tb.mmu_on) tb;
    register_pages t (tb_pages tb)

  let size t = Hashtbl.length t.table
  let region_count t = Hashtbl.length t.regions
  let full_flushes t = t.full_flushes
  let set_full_flushes t n = t.full_flushes <- n
  let ids t = t.ids
  let set_ids t n = t.ids <- n
  let generation t = t.generation

  let is_code_page t page =
    Bytes.unsafe_get t.code_bitmap (page land (n_pages - 1)) <> '\000'

  let code_pages t = Hashtbl.fold (fun p _ acc -> p :: acc) t.pages []

  let next_id t =
    t.ids <- t.ids + 1;
    t.ids

  let near_capacity t = Hashtbl.length t.table >= t.capacity - 8

  (* Install a fused superblock. Never triggers the capacity flush (a
     flush here would drop the constituents the region was just formed
     from — and, during snapshot rebuild, TBs the recipe still
     references). [pages] is every virtual page a constituent chunk
     touches, so self-modifying stores anywhere in the trace are
     detected. The caller must clear links targeting the head TB so
     the next transfer re-dispatches into the region. *)
  let add_region t tb ~pages =
    Hashtbl.replace t.regions (tb.guest_pc, tb.privileged, tb.mmu_on) tb;
    register_pages t pages

  let to_list t =
    Hashtbl.fold (fun _ tb acc -> tb :: acc) t.table []
    |> List.sort (fun a b -> compare a.guest_pc b.guest_pc)

  let regions_list t =
    Hashtbl.fold (fun _ tb acc -> tb :: acc) t.regions []
    |> List.sort (fun a b -> compare a.guest_pc b.guest_pc)

  (* Null every chain link that targets [target] (physical equality),
     across plain TBs and regions: after a region is installed over
     [target], stale chained jumps would keep bypassing it. *)
  let unlink_target t target =
    let scan _ tb =
      Array.iteri
        (fun i l -> match l with
          | Some succ when succ == target -> tb.links.(i) <- None
          | _ -> ())
        tb.links
    in
    Hashtbl.iter scan t.table;
    Hashtbl.iter scan t.regions
end
