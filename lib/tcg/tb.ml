open Repro_common
module Prog = Repro_x86.Prog

type exit_kind = Direct of Word32.t | Indirect | Irq_deliver

exception Tb_too_complex

type t = {
  id : int;
  guest_pc : Word32.t;
  privileged : bool;
  mmu_on : bool;
  mutable prog : Prog.t;
  exits : exit_kind array;
  links : t option array;
  guest_insns : Repro_arm.Insn.t array;
  guest_len : int;
  fault_producers : (Word32.t * Word32.t array) array;
  translated_override : int option;
  mutable injected : [ `None | `Rule_corrupt | `Livelock ];
  mutable prov : int array;
}

let exit_slots = 4
let slot_irq = 3

module Cache = struct
  type tb = t

  type nonrec t = {
    table : (int * bool * bool, tb) Hashtbl.t;
    pages : (int, int) Hashtbl.t;  (* virtual page -> overlapping TB count *)
    capacity : int;
    mutable full_flushes : int;
    mutable ids : int;
  }

  let create ?(capacity = 4096) () =
    if capacity <= 0 then invalid_arg "Tb.Cache.create";
    {
      table = Hashtbl.create 1024;
      pages = Hashtbl.create 64;
      capacity;
      full_flushes = 0;
      ids = 0;
    }

  let find t ~pc ~privileged ~mmu_on = Hashtbl.find_opt t.table (pc, privileged, mmu_on)

  let tb_pages tb =
    let first = tb.guest_pc lsr 12 in
    let last = (tb.guest_pc + (4 * tb.guest_len) - 1) lsr 12 in
    if first = last then [ first ] else [ first; last ]

  let flush t =
    Hashtbl.reset t.table;
    Hashtbl.reset t.pages

  let add t tb =
    (* QEMU's policy when the code-generation buffer fills: drop every
       translation and start over. Safe mid-run because eviction only
       happens between TB executions; flushed TBs become unreachable
       (fresh TBs start unlinked, and lookups go through the table). *)
    if Hashtbl.length t.table >= t.capacity then begin
      flush t;
      t.full_flushes <- t.full_flushes + 1
    end;
    Hashtbl.replace t.table (tb.guest_pc, tb.privileged, tb.mmu_on) tb;
    List.iter
      (fun p ->
        let n = try Hashtbl.find t.pages p with Not_found -> 0 in
        Hashtbl.replace t.pages p (n + 1))
      (tb_pages tb)

  (* Snapshot rebuild inserts a live set that fit the cache when it
     was captured; the capacity check in [add] would spuriously flush
     when that set is exactly at capacity. *)
  let add_exact t tb =
    Hashtbl.replace t.table (tb.guest_pc, tb.privileged, tb.mmu_on) tb;
    List.iter
      (fun p ->
        let n = try Hashtbl.find t.pages p with Not_found -> 0 in
        Hashtbl.replace t.pages p (n + 1))
      (tb_pages tb)

  let size t = Hashtbl.length t.table
  let full_flushes t = t.full_flushes
  let set_full_flushes t n = t.full_flushes <- n
  let ids t = t.ids
  let set_ids t n = t.ids <- n
  let is_code_page t page = Hashtbl.mem t.pages page
  let code_pages t = Hashtbl.fold (fun p _ acc -> p :: acc) t.pages []

  let next_id t =
    t.ids <- t.ids + 1;
    t.ids

  let to_list t =
    Hashtbl.fold (fun _ tb acc -> tb :: acc) t.table []
    |> List.sort (fun a b -> compare a.guest_pc b.guest_pc)
end
