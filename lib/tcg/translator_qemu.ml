open Repro_common
module A = Repro_arm.Insn
module X = Repro_x86.Insn
module Mem = Repro_arm.Mem
module Prog = Repro_x86.Prog
module Attr = Repro_covscope.Attr

let max_tb_insns = 48

(* Shared by both translators: fetch and decode up to a TB's worth of
   guest instructions starting at [pc]. Stops at TB enders, the length
   limit, a page boundary, or an undecodable word. *)
let fetch_block ?cap (rt : Runtime.t) ~pc =
  let privileged = Runtime.privileged rt in
  let cap =
    match cap with
    | Some n -> n
    | None -> (
      match rt.Runtime.tb_override with Some n -> n | None -> max_tb_insns)
  in
  let rec grab acc pc_cur n =
    if n >= cap then List.rev acc
    else
      match rt.Runtime.mem.Mem.fetch ~privileged pc_cur with
      | Error _ -> List.rev acc
      | Ok word -> (
        match Repro_arm.Encode.decode word with
        | Error _ -> List.rev acc
        | Ok insn ->
          let acc = insn :: acc in
          let ends =
            A.is_branch insn
            || (match insn.A.op with
               | A.Svc _ | A.Udf _ | A.Cps _ | A.Mcr _
               | A.Msr { write_control = true; _ } -> true
               | A.Ldm { regs; _ } -> regs land 0x8000 <> 0
               | _ -> false)
            || (Word32.add pc_cur 4) land 0xFFF = 0
          in
          if ends then List.rev acc else grab acc (Word32.add pc_cur 4) (n + 1))
  in
  grab [] pc 0

(* Last rung of the bailout ladder: a TB that hands the single guest
   instruction at [pc] to the interpreter helper. Undecodable words
   take their Undefined_insn exception inside the helper; over-complex
   instructions execute one at a time. Keeps the TB-head interrupt
   poll so delivery latency matches ordinary blocks. *)
let emulate_one_tb ?insn (rt : Runtime.t) cache ~pc =
  let privileged = Runtime.privileged rt in
  (* Interpreter tier; the decoded instruction (when the word was
     decodable) supplies the opcode class, otherwise the retirement is
     charged to the undefined-instruction class. *)
  let attr =
    match insn with
    | Some i -> Attr.pack ~tier:Attr.Interp i
    | None -> Attr.pack_undecodable ~tier:Attr.Interp
  in
  let b = Prog.builder () in
  let irq_label = Prog.fresh_label b in
  Prog.emit b ~tag:X.Tag_irq_check (X.Count X.Cnt_irq_poll);
  Prog.emit b ~tag:X.Tag_irq_check
    (X.Alu { op = X.Cmp; dst = X.Mem (X.env_slot Envspec.irq_pending); src = X.Imm 0 });
  Prog.emit b ~tag:X.Tag_irq_check (X.Jcc { cc = X.NE; target = irq_label });
  Prog.emit b (X.Count (X.Cnt_guest_insn attr));
  Prog.emit b ~tag:X.Tag_glue
    (X.Mov { width = X.W32; dst = X.Mem (X.env_slot Envspec.pc); src = X.Imm pc });
  Prog.emit b ~tag:X.Tag_glue (X.Call_helper { id = Helpers.h_interp_one });
  Prog.emit b ~tag:X.Tag_glue (X.Exit { slot = 0 });
  Prog.emit b (X.Label irq_label);
  Prog.emit b ~tag:X.Tag_irq_check
    (X.Mov { width = X.W32; dst = X.Mem (X.env_slot Envspec.pc); src = X.Imm pc });
  Prog.emit b ~tag:X.Tag_irq_check (X.Exit { slot = Tb.slot_irq });
  let exits = Array.make Tb.exit_slots Tb.Indirect in
  exits.(Tb.slot_irq) <- Tb.Irq_deliver;
  {
    Tb.id = Tb.Cache.next_id cache;
    guest_pc = pc;
    privileged;
    mmu_on = Repro_arm.Cpu.mmu_enabled rt.Runtime.cpu;
    prog = Prog.finalize b;
    exits;
    links = Array.make Tb.exit_slots None;
    guest_insns = [||];
    guest_len = 1;
    fault_producers = [||];
    translated_override = rt.Runtime.tb_override;
    injected = `None;
    prov = [||];
    hot = 0;
    region_ids = [||];
  }

let build (rt : Runtime.t) cache ~pc ~insns =
  let privileged = Runtime.privileged rt in
  let exits = Array.make Tb.exit_slots Tb.Indirect in
  exits.(Tb.slot_irq) <- Tb.Irq_deliver;
  let used = ref [] in
  let alloc_direct target =
    match List.find_opt (fun (_, t) -> t = Some target) !used with
    | Some (slot, _) -> slot
    | None ->
      let slot = List.length !used in
      if slot >= Tb.slot_irq then raise Tb.Tb_too_complex;
      exits.(slot) <- Tb.Direct target;
      used := !used @ [ (slot, Some target) ];
      slot
  in
  let alloc_indirect () =
    match List.find_opt (fun (_, t) -> t = None) !used with
    | Some (slot, _) -> slot
    | None ->
      let slot = List.length !used in
      if slot >= Tb.slot_irq then raise Tb.Tb_too_complex;
      exits.(slot) <- Tb.Indirect;
      used := !used @ [ (slot, None) ];
      slot
  in
  let fctx = Frontend.create ~alloc_direct ~alloc_indirect () in
  let rec go pc_cur = function
    | [] -> Frontend.emit_goto fctx pc_cur
    | insn :: rest ->
      let ended = Frontend.translate_insn fctx ~pc:pc_cur insn in
      if ended then assert (rest = []) else go (Word32.add pc_cur 4) rest
  in
  go pc insns;
  let builder = Prog.builder () in
  Backend.lower builder ~privileged ~tb_pc:pc (Frontend.ops fctx);
  let prog = Prog.finalize builder in
  {
    Tb.id = Tb.Cache.next_id cache;
    guest_pc = pc;
    privileged;
    mmu_on = Repro_arm.Cpu.mmu_enabled rt.Runtime.cpu;
    prog;
    exits;
    links = Array.make Tb.exit_slots None;
    guest_insns = Array.of_list insns;
    guest_len = List.length insns;
    fault_producers = [||];
    translated_override = rt.Runtime.tb_override;
    injected = `None;
    prov = [||];
    hot = 0;
    region_ids = [||];
  }

let translate (rt : Runtime.t) cache ~pc =
  let privileged = Runtime.privileged rt in
  match rt.Runtime.mem.Mem.fetch ~privileged pc with
  | Error f -> Error f
  | Ok first_word ->
    let insn =
      match Repro_arm.Encode.decode first_word with Ok i -> Some i | Error _ -> None
    in
    let start_cap =
      match rt.Runtime.tb_override with Some n -> n | None -> max_tb_insns
    in
    (* Resource overflows (exit slots, temps) retry with a shorter
       block; a single undecodable or still-too-complex instruction
       falls back to the interpreter-helper TB. *)
    let rec attempt cap =
      match fetch_block rt ~cap ~pc with
      | [] -> Ok (emulate_one_tb ?insn rt cache ~pc)
      | insns -> (
        match build rt cache ~pc ~insns with
        | tb -> Ok tb
        | exception Tb.Tb_too_complex ->
          if cap <= 1 then Ok (emulate_one_tb ?insn rt cache ~pc)
          else attempt (max 1 (cap / 2)))
    in
    attempt start_cap
