(** Translation blocks and the code cache. *)

open Repro_common
module Prog = Repro_x86.Prog

type exit_kind =
  | Direct of Word32.t  (** chainable direct branch to a guest PC *)
  | Indirect            (** guest PC is in env *)
  | Irq_deliver         (** TB-head interrupt check fired *)

exception Tb_too_complex
(** Raised mid-translation when a block exceeds a per-TB resource
    budget (exit slots, per-insn temporaries). Translators catch it
    and retry with a shorter block — never guest-visible. *)

type t = {
  id : int;
  guest_pc : Word32.t;
  privileged : bool;
  mmu_on : bool;
  mutable prog : Prog.t;          (** re-emitted by inter-TB optimization *)
  exits : exit_kind array;        (** indexed by exit slot *)
  links : t option array;         (** chained successors, same indexing *)
  guest_insns : Repro_arm.Insn.t array;
  guest_len : int;
  fault_producers : (Word32.t * Word32.t array) array;
      (** Memory accesses the translator scheduled {e ahead} of
          architecturally-earlier instructions: the access's guest PC
          paired with the skipped instructions' PCs in program order.
          If such an access takes a guest fault, the runtime replays
          the skipped instructions through the interpreter before
          delivering the exception, so the guest observes
          program-order state ([[||]] for translators that do not
          reorder). *)
  translated_override : int option;
      (** The {!Runtime.t.tb_override} in effect when this TB was
          translated (the SMC singleton protocol). Recorded so a
          snapshot restore can re-translate the live set under the
          same length cap and obtain bit-identical host code. *)
  mutable injected : [ `None | `Rule_corrupt | `Livelock ];
      (** Which fault-injection corruption (if any) was applied to
          this TB's emitted code — replayed verbatim on snapshot
          restore so the rebuilt cache matches the captured one. *)
  mutable prov : int array;
      (** Coordination-savings provenance
          ({!Repro_observe.Ledger.prov_len} slots) recorded by the
          rule emitter; [[||]] for baseline translations. Purely
          observational: never serialized, never affects emitted code
          or modelled cost. *)
  mutable hot : int;
      (** Engine-side execution counter driving hot-region formation.
          Serialized in snapshots so region formation fires at the
          same retired-instruction point after a restore. *)
  region_ids : int array;
      (** Non-empty iff this TB is a fused superblock: the ids of its
          constituent TBs, in trace order. *)
}

val exit_slots : int
(** Maximum exit slots per TB (4). *)

val slot_irq : int
(** The reserved TB-head interrupt-check exit slot (3). *)

val region_exit_slots : int
(** Maximum exit slots of a fused superblock (12); slot {!slot_irq}
    stays reserved for the region-head interrupt check. *)

val is_region : t -> bool

module Cache : sig
  type tb := t
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] (default 4096) bounds the number of cached TBs — the
      stand-in for QEMU's fixed code-generation buffer. Raises
      [Invalid_argument] when non-positive. *)

  val find : t -> pc:Word32.t -> privileged:bool -> mmu_on:bool -> tb option
  (** Fused superblocks are consulted first: once a region is
      installed over a head PC, lookups there dispatch the region. *)

  val find_plain : t -> pc:Word32.t -> privileged:bool -> mmu_on:bool -> tb option
  (** Like {!find} but never returns a region — the constituent-TB
      view (snapshot rebuild, region formation). *)

  val add : t -> tb -> unit
  (** Insert a TB. When the cache is at capacity this first drops every
      translation (QEMU's whole-buffer flush policy) — safe between TB
      executions because flushed TBs become unreachable. *)

  val add_exact : t -> tb -> unit
  (** Insert without the capacity check — snapshot rebuild only, where
      the inserted set is known to have fit the captured cache. *)

  val add_region : t -> tb -> pages:int list -> unit
  (** Install a fused superblock (keyed by its head PC, preferred by
      {!find}). Never capacity-flushes; registers [pages] — every
      virtual page a constituent chunk touches — so self-modifying
      stores anywhere in the trace invalidate. The caller clears
      chain links targeting the head TB (see {!unlink_target}). *)

  val unlink_target : t -> tb -> unit
  (** Null every chain link (plain TBs and regions) that points at the
      given TB, forcing the next transfer there through dispatch. *)

  val near_capacity : t -> bool
  (** Within a few insertions of the capacity flush — region
      formation is skipped here so installing one never drops the
      constituents it was formed from. *)

  val flush : t -> unit
  val size : t -> int

  val region_count : t -> int

  val generation : t -> int
  (** Bumped on every flush. Direct-mapped dispatch caches in front of
      {!find} key entries on it, so a flush invalidates them without a
      scan. *)

  val full_flushes : t -> int
  (** Number of capacity-triggered whole-cache flushes so far. *)

  val set_full_flushes : t -> int -> unit
  val next_id : t -> int

  val ids : t -> int
  (** Current value of the TB id counter (snapshot state). *)

  val set_ids : t -> int -> unit

  val to_list : t -> tb list
  (** All cached plain TBs, ordered by guest PC (diagnostics). *)

  val regions_list : t -> tb list
  (** All installed superblocks, ordered by head guest PC. *)

  val is_code_page : t -> int -> bool
  (** Does any cached TB overlap the given virtual page? Guest stores
      into such pages must invalidate (self-modifying code). *)

  val code_pages : t -> int list
end
