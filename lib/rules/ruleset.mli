(** An indexed collection of translation rules with longest-match
    lookup, keyed by the shape of a pattern's first instruction. *)

module A := Repro_arm.Insn

type t

val create : unit -> t
val add : t -> Rule.t -> unit
val of_list : Rule.t list -> t
val size : t -> int
val rules : t -> Rule.t list

val match_at : t -> A.t list -> (Rule.t * Rule.binding) option
(** Find the rule whose guest pattern matches the longest prefix of
    the (condition-stripped) instruction list; ties break toward the
    earliest-added rule. Quarantined rules never match. The caller is
    responsible for condition handling and for checking the
    instructions share a condition when a multi-instruction rule
    matches. *)

(** {2 Quarantine}

    Runtime defense against wrong rules: shadow verification (see
    {!Repro_dbt.Translator_rule}) strikes every rule involved in a
    divergent translation; at [threshold] strikes the rule is
    permanently excluded from matching. *)

val strike : t -> Rule.t -> threshold:int -> bool
(** Record one divergence strike; [true] iff this strike newly
    quarantined the rule. No-op on already-quarantined rules. *)

val is_quarantined : t -> Rule.t -> bool
val strikes : t -> Rule.t -> int
val quarantined_count : t -> int

val quarantined_ids : t -> int list
(** Sorted quarantined rule ids — what a fleet circuit breaker diffs
    to learn of new local demotions. *)

val quarantine_by_id : t -> int -> bool
(** Quarantine a rule by id without a strike history — the fleet-wide
    demotion broadcast (the strikes happened on another machine).
    [true] iff the id names a known, not-yet-quarantined rule. The
    caller must flush any code cache holding translations made under
    the old quarantine set. *)

val export_health : t -> (int * int) list * int list
(** [(strikes, quarantined)] — per-rule strike counts and quarantined
    rule ids, sorted (snapshot payload). *)

val restore_health : t -> strikes:(int * int) list -> quarantined:int list -> unit
(** Replace the health state with a captured one (snapshot restore —
    also the rollback path of the livelock watchdog). *)

val coverage : t -> A.t list -> int
(** Static count of instructions in the list matched by some rule
    (diagnostics for the coverage experiments). *)
