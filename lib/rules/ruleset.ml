module A = Repro_arm.Insn

(* Index key: shape of the first pattern element. *)
type key = K_dp of A.dp_op * bool | K_mul of bool * bool | K_movw | K_movt

let keys_of_rule (r : Rule.t) =
  match r.Rule.guest with
  | [] -> []
  | first :: _ -> (
    match first with
    | Rule.G_dp { ops; s; _ } -> List.map (fun op -> K_dp (op, s)) ops
    | Rule.G_mul { s; acc; _ } -> [ K_mul (s, acc <> None) ]
    | Rule.G_movw _ -> [ K_movw ]
    | Rule.G_movt _ -> [ K_movt ])

let key_of_insn (i : A.t) =
  match i.A.op with
  | A.Dp { op; s; _ } -> Some (K_dp (op, s))
  | A.Mul { s; acc; _ } -> Some (K_mul (s, acc <> None))
  | A.Movw _ -> Some K_movw
  | A.Movt _ -> Some K_movt
  | A.Mull _ | A.Clz _ | A.Ldr _ | A.Ldrs _ | A.Str _ | A.Ldm _ | A.Stm _ | A.B _
  | A.Bx _ | A.Mrs _
  | A.Msr _ | A.Svc _ | A.Cps _ | A.Mcr _ | A.Mrc _ | A.Vmsr _ | A.Vmrs _ | A.Nop
  | A.Udf _ -> None

type t = {
  table : (key, Rule.t list ref) Hashtbl.t;
  active : (key, Rule.t list) Hashtbl.t;
      (* [table] minus quarantined rules, same longest-first order —
         what [match_at] scans, so the hot lookup loop pays no
         per-rule quarantine Hashtbl probe *)
  mutable all : Rule.t list;
  mutable count : int;  (* O(1) [size]; [all] is kept for [rules] *)
  strikes : (int, int) Hashtbl.t;  (* rule id → divergence strikes *)
  quarantined : (int, unit) Hashtbl.t;
}

let create () =
  {
    table = Hashtbl.create 64;
    active = Hashtbl.create 64;
    all = [];
    count = 0;
    strikes = Hashtbl.create 8;
    quarantined = Hashtbl.create 8;
  }

let is_quarantined t (rule : Rule.t) = Hashtbl.mem t.quarantined rule.Rule.id
let quarantined_count t = Hashtbl.length t.quarantined

let quarantined_ids t =
  Hashtbl.fold (fun id () acc -> id :: acc) t.quarantined [] |> List.sort compare

let refresh_active_bucket t k =
  match Hashtbl.find_opt t.table k with
  | None -> Hashtbl.remove t.active k
  | Some bucket ->
    Hashtbl.replace t.active k
      (List.filter (fun r -> not (is_quarantined t r)) !bucket)

let refresh_active t = Hashtbl.iter (fun k _ -> refresh_active_bucket t k) t.table

let add t rule =
  t.all <- t.all @ [ rule ];
  t.count <- t.count + 1;
  List.iter
    (fun k ->
      let bucket =
        match Hashtbl.find_opt t.table k with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.replace t.table k b;
          b
      in
      (* Keep longest patterns first so lookup is longest-match. *)
      bucket :=
        List.stable_sort
          (fun a b ->
            compare (Rule.guest_pattern_length b) (Rule.guest_pattern_length a))
          (!bucket @ [ rule ]);
      refresh_active_bucket t k)
    (keys_of_rule rule)

let of_list rules =
  let t = create () in
  List.iter (add t) rules;
  t

let size t = t.count
let rules t = t.all

let strike t (rule : Rule.t) ~threshold =
  if is_quarantined t rule then false
  else begin
    let n = (match Hashtbl.find_opt t.strikes rule.Rule.id with Some n -> n | None -> 0) + 1 in
    Hashtbl.replace t.strikes rule.Rule.id n;
    if n >= threshold then begin
      Hashtbl.replace t.quarantined rule.Rule.id ();
      List.iter (refresh_active_bucket t) (keys_of_rule rule);
      true
    end
    else false
  end

let strikes t (rule : Rule.t) =
  match Hashtbl.find_opt t.strikes rule.Rule.id with Some n -> n | None -> 0

(* The fleet circuit breaker's demotion lever: quarantine by id without
   a local strike history (the strikes happened on another machine). *)
let quarantine_by_id t id =
  if Hashtbl.mem t.quarantined id then false
  else
    match List.find_opt (fun (r : Rule.t) -> r.Rule.id = id) t.all with
    | None -> false
    | Some rule ->
      Hashtbl.replace t.quarantined id ();
      List.iter (refresh_active_bucket t) (keys_of_rule rule);
      true

(* Snapshot support: the ruleset's mutable health state (strikes and
   quarantined ids), sorted for stable encodings. The rules themselves
   ride in snapshots as {!Serialize} text. *)
let export_health t =
  let strikes =
    Hashtbl.fold (fun id n acc -> (id, n) :: acc) t.strikes [] |> List.sort compare
  in
  let quarantined =
    Hashtbl.fold (fun id () acc -> id :: acc) t.quarantined [] |> List.sort compare
  in
  (strikes, quarantined)

let restore_health t ~strikes ~quarantined =
  Hashtbl.reset t.strikes;
  List.iter (fun (id, n) -> Hashtbl.replace t.strikes id n) strikes;
  Hashtbl.reset t.quarantined;
  List.iter (fun id -> Hashtbl.replace t.quarantined id ()) quarantined;
  refresh_active t

let match_at t insns =
  match insns with
  | [] -> None
  | first :: _ -> (
    match key_of_insn first with
    | None -> None
    | Some k -> (
      match Hashtbl.find_opt t.active k with
      | None -> None
      | Some bucket ->
        List.find_map
          (fun rule ->
            match Rule.match_sequence rule insns with
            | Some b -> Some (rule, b)
            | None -> None)
          bucket))

let coverage t insns =
  let arr = Array.of_list insns in
  let n = Array.length arr in
  let covered = ref 0 in
  let i = ref 0 in
  while !i < n do
    let rest = Array.to_list (Array.sub arr !i (n - !i)) in
    match match_at t rest with
    | Some (rule, _) ->
      let len = Rule.guest_pattern_length rule in
      covered := !covered + len;
      i := !i + len
    | None -> incr i
  done;
  !covered
