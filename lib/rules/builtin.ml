module A = Repro_arm.Insn
module X = Repro_x86.Insn
open Rule

(* [mk] leaves the id at 0; [all] numbers the finished list by
   position. Ids are a pure function of the builder, so two domains
   building rulesets concurrently get identical, collide-free ids —
   there is no shared counter to race on or leave mid-sequence. *)
let mk ?(imms = 0) ?(flags = { guest_writes = false; host_clobbers = false; convention = None })
    ?carry_in ?(distinct = []) name ~regs guest host =
  {
    id = 0;
    name;
    guest;
    host;
    n_reg_params = regs;
    n_imm_params = imms;
    flags;
    carry_in;
    require_distinct = distinct;
    source = `Builtin;
  }

let _no_flags = { guest_writes = false; host_clobbers = false; convention = None }
let clobbers = { guest_writes = false; host_clobbers = true; convention = None }
let sets_by_op = { guest_writes = true; host_clobbers = true; convention = None }
let sets_logic = { guest_writes = true; host_clobbers = true; convention = Some Flagconv.Logic_like }
let sets_sub = { guest_writes = true; host_clobbers = true; convention = Some Flagconv.Sub_like }
let sets_add = { guest_writes = true; host_clobbers = true; convention = Some Flagconv.Add_like }

let p0 = H_param 0
let p1 = H_param 1
let p2 = H_param 2
let s0 = H_scratch 0
let i0 = P_imm 0

(* Opcode classes that share the mov+alu shape. *)
let alu_class = [ A.ADD; A.SUB; A.AND; A.ORR; A.EOR ]

let all () =
  List.mapi
    (fun i r -> { r with id = i + 1 })
    [
    (* --- moves --- *)
    mk "mov_imm" ~regs:1 ~imms:1
      [ G_dp { ops = [ A.MOV ]; s = false; rd = 0; rn = 0; op2 = G_imm i0 } ]
      [ H_mov { dst = p0; src = H_imm i0 } ];
    mk "mov_reg" ~regs:2
      [ G_dp { ops = [ A.MOV ]; s = false; rd = 0; rn = 0; op2 = G_reg 1 } ]
      [ H_mov { dst = p0; src = p1 } ];
    mk "movs_imm" ~regs:1 ~imms:1 ~flags:sets_logic
      [ G_dp { ops = [ A.MOV ]; s = true; rd = 0; rn = 0; op2 = G_imm i0 } ]
      [ H_mov { dst = p0; src = H_imm i0 };
        H_alu { op = `Fixed X.Test; dst = p0; src = p0 } ];
    mk "movs_reg" ~regs:2 ~flags:sets_logic
      [ G_dp { ops = [ A.MOV ]; s = true; rd = 0; rn = 0; op2 = G_reg 1 } ]
      [ H_mov { dst = p0; src = p1 };
        H_alu { op = `Fixed X.Test; dst = p0; src = p0 } ];
    mk "mvn_reg" ~regs:2
      [ G_dp { ops = [ A.MVN ]; s = false; rd = 0; rn = 0; op2 = G_reg 1 } ]
      [ H_mov { dst = p0; src = p1 }; H_not p0 ];
    mk "mvn_imm" ~regs:1 ~imms:1
      [ G_dp { ops = [ A.MVN ]; s = false; rd = 0; rn = 0; op2 = G_imm i0 } ]
      [ H_mov { dst = p0; src = H_imm i0 }; H_not p0 ];
    mk "movw" ~regs:1 ~imms:1
      [ G_movw { rd = 0; imm = i0 } ]
      [ H_mov { dst = p0; src = H_imm i0 } ];
    mk "movt" ~regs:1 ~imms:1 ~flags:clobbers
      [ G_movt { rd = 0; imm = i0 } ]
      [ H_alu { op = `Fixed X.And; dst = p0; src = H_imm (Fixed 0xFFFF) };
        H_alu { op = `Fixed X.Or; dst = p0; src = H_imm (P_imm_shl (0, 16)) } ];
    (* --- flag-preserving adds (lea) --- *)
    mk "add_imm_lea" ~regs:2 ~imms:1
      [ G_dp { ops = [ A.ADD ]; s = false; rd = 0; rn = 1; op2 = G_imm i0 } ]
      [ H_lea_imm { dst = p0; a = p1; imm = i0 } ];
    mk "add_reg_lea" ~regs:3
      [ G_dp { ops = [ A.ADD ]; s = false; rd = 0; rn = 1; op2 = G_reg 2 } ]
      [ H_lea2 { dst = p0; a = p1; b = p2 } ];
    (* --- two-operand ALU class, aliased (rd = rn) --- *)
    mk "alu_alias_reg" ~regs:2 ~flags:clobbers
      [ G_dp { ops = alu_class; s = false; rd = 0; rn = 0; op2 = G_reg 1 } ]
      [ H_alu { op = `Matched; dst = p0; src = p1 } ];
    mk "alu_alias_imm" ~regs:1 ~imms:1 ~flags:clobbers
      [ G_dp { ops = alu_class; s = false; rd = 0; rn = 0; op2 = G_imm i0 } ]
      [ H_alu { op = `Matched; dst = p0; src = H_imm i0 } ];
    mk "alus_alias_reg" ~regs:2 ~flags:sets_by_op
      [ G_dp { ops = alu_class; s = true; rd = 0; rn = 0; op2 = G_reg 1 } ]
      [ H_alu { op = `Matched; dst = p0; src = p1 } ];
    mk "alus_alias_imm" ~regs:1 ~imms:1 ~flags:sets_by_op
      [ G_dp { ops = alu_class; s = true; rd = 0; rn = 0; op2 = G_imm i0 } ]
      [ H_alu { op = `Matched; dst = p0; src = H_imm i0 } ];
    (* --- three-operand ALU class (mov + alu) --- *)
    mk "alu_3op_reg" ~regs:3 ~flags:clobbers ~distinct:[ (0, 2) ]
      [ G_dp { ops = alu_class; s = false; rd = 0; rn = 1; op2 = G_reg 2 } ]
      [ H_mov { dst = p0; src = p1 }; H_alu { op = `Matched; dst = p0; src = p2 } ];
    mk "alu_3op_imm" ~regs:2 ~imms:1 ~flags:clobbers
      [ G_dp { ops = alu_class; s = false; rd = 0; rn = 1; op2 = G_imm i0 } ]
      [ H_mov { dst = p0; src = p1 };
        H_alu { op = `Matched; dst = p0; src = H_imm i0 } ];
    mk "alus_3op_reg" ~regs:3 ~flags:sets_by_op ~distinct:[ (0, 2) ]
      [ G_dp { ops = alu_class; s = true; rd = 0; rn = 1; op2 = G_reg 2 } ]
      [ H_mov { dst = p0; src = p1 }; H_alu { op = `Matched; dst = p0; src = p2 } ];
    mk "alus_3op_imm" ~regs:2 ~imms:1 ~flags:sets_by_op
      [ G_dp { ops = alu_class; s = true; rd = 0; rn = 1; op2 = G_imm i0 } ]
      [ H_mov { dst = p0; src = p1 };
        H_alu { op = `Matched; dst = p0; src = H_imm i0 } ];
    (* --- shifted second operands (class, via scratch) --- *)
    mk "alu_3op_shift" ~regs:3 ~imms:1 ~flags:clobbers
      [ G_dp { ops = alu_class; s = false; rd = 0; rn = 1;
               op2 = G_shift { rm = 2; kind = A.LSL; amount = i0 } } ]
      [ H_mov { dst = s0; src = p2 };
        H_shift { op = X.Shl; dst = s0; amount = i0 };
        H_mov { dst = p0; src = p1 };
        H_alu { op = `Matched; dst = p0; src = s0 } ];
    mk "alus_3op_shift" ~regs:3 ~imms:1 ~flags:sets_by_op
      [ G_dp { ops = alu_class; s = true; rd = 0; rn = 1;
               op2 = G_shift { rm = 2; kind = A.LSL; amount = i0 } } ]
      [ H_mov { dst = s0; src = p2 };
        H_shift { op = X.Shl; dst = s0; amount = i0 };
        H_mov { dst = p0; src = p1 };
        H_alu { op = `Matched; dst = p0; src = s0 } ];
    (* --- shifts as mov-with-shift --- *)
    mk "lsl_imm" ~regs:2 ~imms:1 ~flags:clobbers
      [ G_dp { ops = [ A.MOV ]; s = false; rd = 0; rn = 0;
               op2 = G_shift { rm = 1; kind = A.LSL; amount = i0 } } ]
      [ H_mov { dst = p0; src = p1 }; H_shift { op = X.Shl; dst = p0; amount = i0 } ];
    mk "lsr_imm" ~regs:2 ~imms:1 ~flags:clobbers
      [ G_dp { ops = [ A.MOV ]; s = false; rd = 0; rn = 0;
               op2 = G_shift { rm = 1; kind = A.LSR; amount = i0 } } ]
      [ H_mov { dst = p0; src = p1 }; H_shift { op = X.Shr; dst = p0; amount = i0 } ];
    mk "asr_imm" ~regs:2 ~imms:1 ~flags:clobbers
      [ G_dp { ops = [ A.MOV ]; s = false; rd = 0; rn = 0;
               op2 = G_shift { rm = 1; kind = A.ASR; amount = i0 } } ]
      [ H_mov { dst = p0; src = p1 }; H_shift { op = X.Sar; dst = p0; amount = i0 } ];
    mk "ror_imm" ~regs:2 ~imms:1 ~flags:clobbers
      [ G_dp { ops = [ A.MOV ]; s = false; rd = 0; rn = 0;
               op2 = G_shift { rm = 1; kind = A.ROR; amount = i0 } } ]
      [ H_mov { dst = p0; src = p1 }; H_shift { op = X.Ror; dst = p0; amount = i0 } ];
    mk "lsls_imm" ~regs:2 ~imms:1 ~flags:sets_logic
      [ G_dp { ops = [ A.MOV ]; s = true; rd = 0; rn = 0;
               op2 = G_shift { rm = 1; kind = A.LSL; amount = i0 } } ]
      [ H_mov { dst = p0; src = p1 }; H_shift { op = X.Shl; dst = p0; amount = i0 } ];
    mk "lsrs_imm" ~regs:2 ~imms:1 ~flags:sets_logic
      [ G_dp { ops = [ A.MOV ]; s = true; rd = 0; rn = 0;
               op2 = G_shift { rm = 1; kind = A.LSR; amount = i0 } } ]
      [ H_mov { dst = p0; src = p1 }; H_shift { op = X.Shr; dst = p0; amount = i0 } ];
    (* --- compares and tests --- *)
    mk "cmp_imm" ~regs:1 ~imms:1 ~flags:sets_sub
      [ G_dp { ops = [ A.CMP ]; s = false; rd = 0; rn = 0; op2 = G_imm i0 } ]
      [ H_alu { op = `Fixed X.Cmp; dst = p0; src = H_imm i0 } ];
    mk "cmp_reg" ~regs:2 ~flags:sets_sub
      [ G_dp { ops = [ A.CMP ]; s = false; rd = 0; rn = 0; op2 = G_reg 1 } ]
      [ H_alu { op = `Fixed X.Cmp; dst = p0; src = p1 } ];
    mk "tst_imm" ~regs:1 ~imms:1 ~flags:sets_logic
      [ G_dp { ops = [ A.TST ]; s = false; rd = 0; rn = 0; op2 = G_imm i0 } ]
      [ H_alu { op = `Fixed X.Test; dst = p0; src = H_imm i0 } ];
    mk "tst_reg" ~regs:2 ~flags:sets_logic
      [ G_dp { ops = [ A.TST ]; s = false; rd = 0; rn = 0; op2 = G_reg 1 } ]
      [ H_alu { op = `Fixed X.Test; dst = p0; src = p1 } ];
    mk "teq_reg" ~regs:2 ~flags:sets_logic
      [ G_dp { ops = [ A.TEQ ]; s = false; rd = 0; rn = 0; op2 = G_reg 1 } ]
      [ H_mov { dst = s0; src = p0 };
        H_alu { op = `Fixed X.Xor; dst = s0; src = p1 } ];
    mk "cmn_reg" ~regs:2 ~flags:sets_add
      [ G_dp { ops = [ A.CMN ]; s = false; rd = 0; rn = 0; op2 = G_reg 1 } ]
      [ H_mov { dst = s0; src = p0 };
        H_alu { op = `Fixed X.Add; dst = s0; src = p1 } ];
    (* --- carry-consuming arithmetic --- *)
    mk "adc_reg" ~regs:3 ~flags:sets_add ~carry_in:`Direct ~distinct:[ (0, 2) ]
      [ G_dp { ops = [ A.ADC ]; s = true; rd = 0; rn = 1; op2 = G_reg 2 } ]
      [ H_mov { dst = p0; src = p1 };
        H_alu { op = `Fixed X.Adc; dst = p0; src = p2 } ];
    mk "adc_imm" ~regs:2 ~imms:1 ~flags:sets_add ~carry_in:`Direct
      [ G_dp { ops = [ A.ADC ]; s = true; rd = 0; rn = 1; op2 = G_imm i0 } ]
      [ H_mov { dst = p0; src = p1 };
        H_alu { op = `Fixed X.Adc; dst = p0; src = H_imm i0 } ];
    mk "sbc_reg" ~regs:3 ~flags:sets_sub ~carry_in:`Inverted ~distinct:[ (0, 2) ]
      [ G_dp { ops = [ A.SBC ]; s = true; rd = 0; rn = 1; op2 = G_reg 2 } ]
      [ H_mov { dst = p0; src = p1 };
        H_alu { op = `Fixed X.Sbb; dst = p0; src = p2 } ];
    (* --- rsb / bic --- *)
    mk "rsb_imm0_neg" ~regs:2 ~flags:clobbers
      [ G_dp { ops = [ A.RSB ]; s = false; rd = 0; rn = 1; op2 = G_imm (Fixed 0) } ]
      [ H_mov { dst = p0; src = p1 }; H_neg p0 ];
    mk "rsb_imm" ~regs:2 ~imms:1 ~flags:clobbers
      [ G_dp { ops = [ A.RSB ]; s = false; rd = 0; rn = 1; op2 = G_imm i0 } ]
      [ H_mov { dst = s0; src = H_imm i0 };
        H_alu { op = `Fixed X.Sub; dst = s0; src = p1 };
        H_mov { dst = p0; src = s0 } ];
    mk "bic_reg" ~regs:3 ~flags:clobbers ~distinct:[ (0, 2) ]
      [ G_dp { ops = [ A.BIC ]; s = false; rd = 0; rn = 1; op2 = G_reg 2 } ]
      [ H_mov { dst = s0; src = p2 };
        H_not s0;
        H_mov { dst = p0; src = p1 };
        H_alu { op = `Fixed X.And; dst = p0; src = s0 } ];
    (* --- multiply --- *)
    mk "mul" ~regs:3 ~flags:clobbers ~distinct:[ (0, 2) ]
      [ G_mul { s = false; rd = 0; rn = 2; rm = 1; acc = None } ]
      [ H_mov { dst = p0; src = p1 }; H_imul { dst = p0; src = p2 } ];
    mk "muls" ~regs:3 ~flags:sets_logic ~distinct:[ (0, 2) ]
      [ G_mul { s = true; rd = 0; rn = 2; rm = 1; acc = None } ]
      [ H_mov { dst = p0; src = p1 };
        H_imul { dst = p0; src = p2 };
        H_alu { op = `Fixed X.Test; dst = p0; src = p0 } ];
    mk "mla" ~regs:4 ~flags:clobbers ~distinct:[]
      [ G_mul { s = false; rd = 0; rn = 2; rm = 1; acc = Some 3 } ]
      [ H_mov { dst = s0; src = p1 };
        H_imul { dst = s0; src = p2 };
        H_lea2 { dst = p0; a = s0; b = H_param 3 } ];
  ]

let ruleset () = Ruleset.of_list (all ())
