open Repro_common
module A = Repro_arm.Insn
module X = Repro_x86.Insn

type preg = int
type pimm = P_imm of int | P_imm_shl of int * int | Fixed of int

type g_op2 =
  | G_imm of pimm
  | G_reg of preg
  | G_shift of { rm : preg; kind : A.shift_kind; amount : pimm }
  | G_shift_reg of { rm : preg; kind : A.shift_kind; rs : preg }

type g_insn =
  | G_dp of { ops : A.dp_op list; s : bool; rd : preg; rn : preg; op2 : g_op2 }
  | G_mul of { s : bool; rd : preg; rn : preg; rm : preg; acc : preg option }
  | G_movw of { rd : preg; imm : pimm }
  | G_movt of { rd : preg; imm : pimm }

let host_alu_of_dp (op : A.dp_op) : X.alu_op option =
  match op with
  | A.AND -> Some X.And
  | A.EOR -> Some X.Xor
  | A.ORR -> Some X.Or
  | A.ADD -> Some X.Add
  | A.SUB -> Some X.Sub
  | A.ADC -> Some X.Adc
  | A.SBC -> Some X.Sbb
  | A.TST -> Some X.Test
  | A.CMP -> Some X.Cmp
  | A.RSB | A.RSC | A.TEQ | A.CMN | A.MOV | A.MVN | A.BIC -> None

let conv_of_dp (op : A.dp_op) : Flagconv.t =
  match op with
  | A.ADD | A.ADC | A.CMN -> Flagconv.Add_like
  | A.SUB | A.SBC | A.RSB | A.RSC | A.CMP -> Flagconv.Sub_like
  | A.AND | A.EOR | A.ORR | A.BIC | A.MOV | A.MVN | A.TST | A.TEQ ->
    Flagconv.Logic_like

type h_operand = H_param of int | H_scratch of int | H_imm of pimm

type h_insn =
  | H_mov of { dst : h_operand; src : h_operand }
  | H_lea2 of { dst : h_operand; a : h_operand; b : h_operand }
  | H_lea_imm of { dst : h_operand; a : h_operand; imm : pimm }
  | H_alu of { op : [ `Fixed of X.alu_op | `Matched ]; dst : h_operand; src : h_operand }
  | H_shift of { op : X.shift_op; dst : h_operand; amount : pimm }
  | H_shift_cl of { op : X.shift_op; dst : h_operand; amount_src : h_operand }
  | H_not of h_operand
  | H_neg of h_operand
  | H_imul of { dst : h_operand; src : h_operand }

type flag_effect = {
  guest_writes : bool;
  host_clobbers : bool;
  convention : Flagconv.t option;
}

type t = {
  id : int;
  name : string;
  guest : g_insn list;
  host : h_insn list;
  n_reg_params : int;
  n_imm_params : int;
  flags : flag_effect;
  carry_in : [ `Direct | `Inverted ] option;
  require_distinct : (preg * preg) list;
  source : [ `Builtin | `Learned of string ];
}

type binding = { regs : int array; imms : int array; mutable matched : A.dp_op option }

let empty_binding rule =
  {
    regs = Array.make (max rule.n_reg_params 1) (-1);
    imms = Array.make (max rule.n_imm_params 1) (-1);
    matched = None;
  }

let bind_reg b p r =
  if b.regs.(p) = -1 then begin
    b.regs.(p) <- r;
    true
  end
  else b.regs.(p) = r

let bind_imm b pi v =
  match pi with
  | Fixed f -> f = v
  | P_imm_shl _ -> invalid_arg "Rule: P_imm_shl cannot appear in a guest pattern"
  | P_imm i ->
    if b.imms.(i) = -1 then begin
      b.imms.(i) <- v;
      true
    end
    else b.imms.(i) = v

let match_op2 pattern (op2 : A.operand2) b =
  match (pattern, op2) with
  | G_imm pi, A.Imm { imm8; rot } -> bind_imm b pi (Word32.rotate_right imm8 (2 * rot))
  | G_reg p, A.Reg_shift_imm { rm; kind = A.LSL; amount = 0 } -> bind_reg b p rm
  | G_shift { rm = prm; kind; amount }, A.Reg_shift_imm { rm; kind = k'; amount = a' }
    ->
    (* Plain registers are matched by G_reg, not as a 0-shift — and a
       zero-amount shift of any kind is left to the generic TCG path:
       a host shift by 0 does not update host flags, so an S-variant
       shift rule would extract whatever flags the previous host
       instruction left behind. *)
    a' <> 0 && kind = k' && bind_reg b prm rm && bind_imm b amount a'
  | G_shift_reg { rm = prm; kind; rs = prs }, A.Reg_shift_reg { rm; kind = k'; rs } ->
    kind = k' && bind_reg b prm rm && bind_reg b prs rs
  | ( (G_imm _ | G_reg _ | G_shift _ | G_shift_reg _),
      (A.Imm _ | A.Reg_shift_imm _ | A.Reg_shift_reg _) ) ->
    false

let match_insn pattern (op : A.op) b =
  match (pattern, op) with
  | G_dp { ops; s; rd; rn; op2 }, A.Dp { op = dop; s = s'; rd = rd'; rn = rn'; op2 = op2' }
    ->
    List.mem dop ops && s = s'
    && (A.dp_op_is_test dop || bind_reg b rd rd')
    && ((match dop with A.MOV | A.MVN -> true | _ -> bind_reg b rn rn'))
    && match_op2 op2 op2' b
    &&
    (if List.length ops > 1 then b.matched <- Some dop else b.matched <- Some dop;
     true)
  | G_mul { s; rd; rn; rm; acc }, A.Mul { s = s'; rd = rd'; rn = rn'; rm = rm'; acc = acc' }
    ->
    s = s' && bind_reg b rd rd' && bind_reg b rn rn' && bind_reg b rm rm'
    && (match (acc, acc') with
       | None, None -> true
       | Some p, Some r -> bind_reg b p r
       | None, Some _ | Some _, None -> false)
  | G_movw { rd; imm }, A.Movw { rd = rd'; imm16 } -> bind_reg b rd rd' && bind_imm b imm imm16
  | G_movt { rd; imm }, A.Movt { rd = rd'; imm16 } -> bind_reg b rd rd' && bind_imm b imm imm16
  | (G_dp _ | G_mul _ | G_movw _ | G_movt _), _ -> false

let distinct_ok rule b =
  List.for_all
    (fun (p, q) -> b.regs.(p) = -1 || b.regs.(q) = -1 || b.regs.(p) <> b.regs.(q))
    rule.require_distinct

let match_sequence rule insns =
  let b = empty_binding rule in
  let rec go pats (insns : A.t list) =
    match (pats, insns) with
    | [], _ -> true
    | _ :: _, [] -> false
    | p :: ps, i :: is -> match_insn p i.A.op b && go ps is
  in
  if go rule.guest insns && distinct_ok rule b then Some b else None

let resolve_imm b = function
  | Fixed v -> v
  | P_imm i -> b.imms.(i)
  | P_imm_shl (i, k) -> Repro_common.Word32.shift_left b.imms.(i) k

let instantiate rule b ~pin_of_guest_reg ~scratch =
  let exception Unpinned in
  let operand = function
    | H_param i -> (
      match pin_of_guest_reg b.regs.(i) with
      | Some hr -> X.Reg hr
      | None -> raise Unpinned)
    | H_scratch k -> X.Reg scratch.(k)
    | H_imm pi -> X.Imm (resolve_imm b pi)
  in
  let reg_operand o =
    match operand o with
    | X.Reg r -> r
    | X.Imm _ | X.Mem _ -> invalid_arg "Rule.instantiate: register operand expected"
  in
  let lower = function
    | H_mov { dst; src } -> [ X.Mov { width = X.W32; dst = operand dst; src = operand src } ]
    | H_lea2 { dst; a; b = bb } ->
      [ X.Lea
          {
            dst = reg_operand dst;
            addr =
              {
                X.seg = X.Ram;
                base = Some (reg_operand a);
                index = Some (reg_operand bb);
                scale = 1;
                disp = 0;
              };
          } ]
    | H_lea_imm { dst; a; imm } ->
      [ X.Lea
          {
            dst = reg_operand dst;
            addr =
              {
                X.seg = X.Ram;
                base = Some (reg_operand a);
                index = None;
                scale = 1;
                disp = Word32.signed (resolve_imm b imm);
              };
          } ]
    | H_alu { op; dst; src } ->
      let op =
        match op with
        | `Fixed o -> o
        | `Matched -> (
          match b.matched with
          | Some dop -> (
            match host_alu_of_dp dop with
            | Some o -> o
            | None -> invalid_arg "Rule.instantiate: matched op has no host ALU")
          | None -> invalid_arg "Rule.instantiate: no matched op recorded")
      in
      [ X.Alu { op; dst = operand dst; src = operand src } ]
    | H_shift { op; dst; amount } ->
      [ X.Shift { op; dst = operand dst; amount = X.Sh_imm (resolve_imm b amount) } ]
    | H_shift_cl { op; dst; amount_src } ->
      [
        X.Mov { width = X.W32; dst = X.Reg X.rcx; src = operand amount_src };
        X.Shift { op; dst = operand dst; amount = X.Sh_cl };
      ]
    | H_not o -> [ X.Not (operand o) ]
    | H_neg o -> [ X.Neg (operand o) ]
    | H_imul { dst; src } -> [ X.Imul { dst = reg_operand dst; src = operand src } ]
  in
  try Some (List.concat_map lower rule.host) with Unpinned -> None

let convention_after rule b =
  if not rule.flags.guest_writes then None
  else
    match rule.flags.convention with
    | Some c -> Some c
    | None -> (
      match b.matched with Some dop -> Some (conv_of_dp dop) | None -> None)

let guest_pattern_length rule = List.length rule.guest

let pp_pimm ppf = function
  | P_imm i -> Format.fprintf ppf "i%d" i
  | P_imm_shl (i, k) -> Format.fprintf ppf "(i%d lsl %d)" i k
  | Fixed v -> Format.fprintf ppf "#%d" v

let pp_g ppf = function
  | G_dp { ops; s; rd; rn; op2 } ->
    Format.fprintf ppf "%s%s p%d, p%d, %s"
      (String.concat "|" (List.map A.dp_op_to_string ops))
      (if s then "s" else "")
      rd rn
      (match op2 with
      | G_imm pi -> Format.asprintf "%a" pp_pimm pi
      | G_reg p -> Printf.sprintf "p%d" p
      | G_shift { rm; kind; amount } ->
        Format.asprintf "p%d %s %a" rm (A.shift_kind_to_string kind) pp_pimm amount
      | G_shift_reg { rm; kind; rs } ->
        Printf.sprintf "p%d %s p%d" rm (A.shift_kind_to_string kind) rs)
  | G_mul { s; rd; rn; rm; acc } ->
    Format.fprintf ppf "%s%s p%d, p%d, p%d%s"
      (match acc with Some _ -> "mla" | None -> "mul")
      (if s then "s" else "")
      rd rm rn
      (match acc with Some a -> Printf.sprintf ", p%d" a | None -> "")
  | G_movw { rd; imm } -> Format.fprintf ppf "movw p%d, %a" rd pp_pimm imm
  | G_movt { rd; imm } -> Format.fprintf ppf "movt p%d, %a" rd pp_pimm imm

let pp ppf t =
  Format.fprintf ppf "@[<v>rule %d (%s, %s):@ guest: %a@ host: %d insns@]" t.id t.name
    (match t.source with `Builtin -> "builtin" | `Learned s -> "learned:" ^ s)
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_g)
    t.guest (List.length t.host)
