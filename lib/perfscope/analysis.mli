(** Offline analysis over the toolchain's JSON artifacts: phase
    breakdowns and A/B diffs of [--stats-json] files, and the
    benchmark-regression gate over consolidated [BENCH_<rev>.json]
    files. The [repro-dbt-analyze] CLI is a thin printer over these
    functions; the tests drive them directly. *)

module Jsonx := Repro_observe.Jsonx

val phase_totals : Jsonx.value -> (string * int) list
(** Per-phase host-instruction totals of one stats-json value: the
    ["perf"]["phases"] section when the run carried a scope, else the
    per-tag ["host_*"] split from the bare stats. *)

val stat_int : Jsonx.value -> string -> int option
(** An integer field of the ["stats"] section. *)

val check_kind : ?require:bool -> expect:string -> Jsonx.value -> (unit, string) result
(** Validate the ["meta"] document-kind tag of a parsed artifact
    against the kind a consumer expects: [Ok ()] when the tag equals
    [expect], or when it is absent and [require] is false (legacy
    artifacts predate the tagging; default). [Error reason] carries a
    one-line diagnosis naming both kinds. *)

type diff_row = {
  d_phase : string;
  d_a : int;
  d_b : int;
  d_pct : float;  (** (b - a) / a * 100; exactly 0 when [a = b] *)
}

val diff : Jsonx.value -> Jsonx.value -> diff_row list
(** Per-phase A/B comparison of two stats-json values. Two same-seed
    same-config runs produce all-zero deltas. *)

val max_abs_pct : diff_row list -> float

(** {2 The regression gate} *)

type slice = {
  sl_name : string;
  sl_figure : string;
  sl_mode : string;
  sl_bench : string;
  sl_rule_enabled : bool;
  sl_guest : int;
  sl_host : int;
  sl_host_per_guest : float;
  sl_sync : int;
  sl_wall_ms : float option;
}

type bench_file = { bf_rev : string; bf_target : int; bf_slices : slice list }

val bench_of_json : Jsonx.value -> bench_file option
(** Decode a consolidated BENCH file; [None] if any slice is
    malformed. *)

type gate_status =
  | Gate_ok
  | Gate_regressed of float
  | Gate_missing
  | Gate_empty

type gate_row = {
  g_name : string;
  g_base : float;
  g_cur : float;
  g_pct : float;
  g_status : gate_status;
}

val gate :
  ?threshold_pct:float -> baseline:bench_file -> current:bench_file -> unit ->
  bool * gate_row list
(** Compare a current BENCH file against the committed baseline: every
    rule-enabled baseline slice must be present, retire a nonzero
    guest-instruction count, and not regress host-insn/guest-insn by
    more than [threshold_pct] (default 5%). Returns (all-ok, rows). *)

(** {2 File loading} *)

val read_file : string -> string
val load_json : string -> Jsonx.value
val load_jsonl : string -> Jsonx.value list
(** One value per non-empty line. *)
