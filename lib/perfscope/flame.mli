(** Brendan Gregg collapsed-stack ("folded") flamegraph accumulator.

    Feed it frame stacks (outermost first) with host-instruction
    weights; {!write_folded} emits ["frame;frame;frame N"] lines,
    sorted by stack, ready for flamegraph.pl, inferno or speedscope.
    Deterministic: identical samples produce identical files. *)

type t

val create : unit -> t

val add : t -> string list -> int -> unit
(** [add t stack weight] accumulates one sample. Frames are scrubbed
    of [';'] and newlines; empty stacks and non-positive weights are
    ignored. *)

val fold : t -> (string * int) list
(** The folded lines as (stack, weight), sorted by stack. *)

val write_folded : out_channel -> t -> unit
