(* The per-run performance scope: deterministic phase attribution plus
   the latency histograms. One of these hangs off the runtime (like
   the trace ring and the ledger) and the engine drains host-insn
   deltas into it at every phase transition.

   Everything is keyed to the retired-guest-insn clock and to exact
   host-instruction counts, so two same-seed runs produce
   byte-identical [to_json] output — the property `dbt_analyze diff`
   and the regression gate build on. Purely observational: attaching a
   scope never perturbs guest-visible state or any cost counter. *)

module Jsonx = Repro_observe.Jsonx

type t = {
  phase_total : int array;  (* Phase.n counters *)
  regions : (int * bool, int array) Hashtbl.t;
      (* (guest page, privileged) -> per-phase host insns *)
  irq_latency : Histo.t;
  chain_latency : Histo.t;
  checkpoint_interval : Histo.t;
  mutable irq_raised_at : int;  (* -1 = no raise outstanding *)
  translated_at : (int, int) Hashtbl.t;  (* tb id -> clock at translation *)
  mutable last_checkpoint_at : int;  (* -1 = none yet *)
}

let create () =
  {
    phase_total = Array.make Phase.n 0;
    regions = Hashtbl.create 64;
    irq_latency = Histo.create ();
    chain_latency = Histo.create ();
    checkpoint_interval = Histo.create ();
    irq_raised_at = -1;
    translated_at = Hashtbl.create 256;
    last_checkpoint_at = -1;
  }

let charge t phase ~page ~privileged n =
  if n > 0 then begin
    let i = Phase.index phase in
    t.phase_total.(i) <- t.phase_total.(i) + n;
    let key = (page, privileged) in
    let row =
      match Hashtbl.find_opt t.regions key with
      | Some row -> row
      | None ->
        let row = Array.make Phase.n 0 in
        Hashtbl.add t.regions key row;
        row
    in
    row.(i) <- row.(i) + n
  end

let phase_count t phase = t.phase_total.(Phase.index phase)
let total t = Array.fold_left ( + ) 0 t.phase_total
let phase_vector t = Array.copy t.phase_total
let irq_latency t = t.irq_latency
let chain_latency t = t.chain_latency
let checkpoint_interval t = t.checkpoint_interval

(* A raise is the first moment the IRQ line is deliverable (asserted
   and unmasked); re-notifications while it stays outstanding keep the
   original timestamp so the histogram measures raise->deliver. *)
let note_irq_raised t ~at = if t.irq_raised_at < 0 then t.irq_raised_at <- at

let note_irq_delivered t ~at =
  if t.irq_raised_at >= 0 then begin
    Histo.record t.irq_latency (at - t.irq_raised_at);
    t.irq_raised_at <- -1
  end

let note_translated t ~id ~at =
  if not (Hashtbl.mem t.translated_at id) then Hashtbl.add t.translated_at id at

(* First time [id] becomes the target of a chained link: the
   lookup->chain latency of that translation. *)
let note_chained t ~id ~at =
  match Hashtbl.find_opt t.translated_at id with
  | Some t0 ->
    Histo.record t.chain_latency (at - t0);
    Hashtbl.remove t.translated_at id
  | None -> ()

let note_checkpoint t ~at =
  if t.last_checkpoint_at >= 0 then
    Histo.record t.checkpoint_interval (at - t.last_checkpoint_at);
  t.last_checkpoint_at <- at

let phases_json totals =
  Jsonx.obj
    (List.map (fun p -> (Phase.name p, Jsonx.int totals.(Phase.index p))) Phase.all
    @ [ ("total", Jsonx.int (Array.fold_left ( + ) 0 totals)) ])

let regions_sorted t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.regions []
  |> List.sort (fun ((pa, va), _) ((pb, vb), _) -> compare (pa, va) (pb, vb))

let to_json t =
  let regions =
    List.map
      (fun ((page, privileged), row) ->
        Jsonx.obj
          [
            ("page", Jsonx.str (Printf.sprintf "0x%05x" page));
            ("privileged", Jsonx.bool privileged);
            ("phases", phases_json row);
          ])
      (regions_sorted t)
  in
  Jsonx.obj
    [
      ("phases", phases_json t.phase_total);
      ("regions", Jsonx.arr regions);
      ( "histograms",
        Jsonx.obj
          [
            ("irq_latency", Histo.to_json t.irq_latency);
            ("chain_latency", Histo.to_json t.chain_latency);
            ("checkpoint_interval", Histo.to_json t.checkpoint_interval);
          ] );
    ]

let pp ppf t =
  let total = total t in
  Format.fprintf ppf "@[<v>%-12s %12s %7s@ " "phase" "host insns" "share";
  List.iter
    (fun p ->
      let n = phase_count t p in
      Format.fprintf ppf "%-12s %12d %6.1f%%@ " (Phase.name p) n
        (if total = 0 then 0. else 100. *. float_of_int n /. float_of_int total))
    Phase.all;
  Format.fprintf ppf "%-12s %12d@ @ " "total" total;
  Format.fprintf ppf "irq raise->deliver    %a@ " Histo.pp t.irq_latency;
  Format.fprintf ppf "tb lookup->chain      %a@ " Histo.pp t.chain_latency;
  Format.fprintf ppf "checkpoint interval   %a@]" Histo.pp t.checkpoint_interval
