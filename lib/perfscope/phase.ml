(* The cost-attribution phases. Every retired host instruction the
   engine charges lands in exactly one of these, so the per-phase
   totals partition [Stats.host_insns] (the exactness invariant the
   perfscope tests assert). *)

type t = Translate | Execute | Coordinate | Softmmu | Helper | Deliver | Region

let all = [ Translate; Execute; Coordinate; Softmmu; Helper; Deliver; Region ]
let n = 7

let index = function
  | Translate -> 0
  | Execute -> 1
  | Coordinate -> 2
  | Softmmu -> 3
  | Helper -> 4
  | Deliver -> 5
  | Region -> 6

let name = function
  | Translate -> "translate"
  | Execute -> "execute"
  | Coordinate -> "coordinate"
  | Softmmu -> "softmmu"
  | Helper -> "helper"
  | Deliver -> "deliver"
  | Region -> "region"

let of_name = function
  | "translate" -> Some Translate
  | "execute" -> Some Execute
  | "coordinate" -> Some Coordinate
  | "softmmu" -> Some Softmmu
  | "helper" -> Some Helper
  | "deliver" -> Some Deliver
  | "region" -> Some Region
  | _ -> None
