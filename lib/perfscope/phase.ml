(* The cost-attribution phases. Every retired host instruction the
   engine charges lands in exactly one of these, so the per-phase
   totals partition [Stats.host_insns] (the exactness invariant the
   perfscope tests assert). *)

type t = Translate | Execute | Coordinate | Softmmu | Helper | Deliver

let all = [ Translate; Execute; Coordinate; Softmmu; Helper; Deliver ]
let n = 6

let index = function
  | Translate -> 0
  | Execute -> 1
  | Coordinate -> 2
  | Softmmu -> 3
  | Helper -> 4
  | Deliver -> 5

let name = function
  | Translate -> "translate"
  | Execute -> "execute"
  | Coordinate -> "coordinate"
  | Softmmu -> "softmmu"
  | Helper -> "helper"
  | Deliver -> "deliver"

let of_name = function
  | "translate" -> Some Translate
  | "execute" -> Some Execute
  | "coordinate" -> Some Coordinate
  | "softmmu" -> Some Softmmu
  | "helper" -> Some Helper
  | "deliver" -> Some Deliver
  | _ -> None
