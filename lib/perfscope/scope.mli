(** The per-run performance scope: deterministic per-phase /
    per-region cost attribution plus the three latency histograms
    (IRQ raise->deliver, TB lookup->chain, checkpoint intervals), all
    on the retired-guest-insn clock.

    A scope attaches to the runtime like the trace ring and the
    coordination ledger: purely observational (attached runs are
    bit-identical to bare ones) and deliberately excluded from
    snapshots. Over any engine run without watchdog rollbacks the
    phase totals partition the run's
    {!Repro_x86.Stats.t.host_insns} delta exactly. *)

type t

val create : unit -> t

val charge : t -> Phase.t -> page:int -> privileged:bool -> int -> unit
(** Attribute host instructions to a phase and a guest-PC region
    (4 KiB page, kernel/user). Non-positive charges are ignored. *)

val phase_count : t -> Phase.t -> int
val total : t -> int

val phase_vector : t -> int array
(** A fresh copy of the per-phase totals in {!Phase.index} layout —
    the per-machine cost signature fleet telemetry aggregates and
    scores for anomalies. Monotone across restores and watchdog
    rollbacks (the scope never rewinds), unlike the snapshot-restored
    {!Repro_x86.Stats} counters. *)

val irq_latency : t -> Histo.t
val chain_latency : t -> Histo.t
val checkpoint_interval : t -> Histo.t

val note_irq_raised : t -> at:int -> unit
(** First deliverable assertion of the IRQ line; re-notifications
    while the raise is outstanding keep the original timestamp. *)

val note_irq_delivered : t -> at:int -> unit
(** Records raise->deliver latency (no-op without an outstanding
    raise, e.g. an injected spurious interrupt). *)

val note_translated : t -> id:int -> at:int -> unit
val note_chained : t -> id:int -> at:int -> unit
(** First time TB [id] becomes the target of a chained link; records
    its translation->chain latency once. *)

val note_checkpoint : t -> at:int -> unit

val to_json : t -> string
(** [{"phases":{...},"regions":[...],"histograms":{...}}] — the
    ["perf"] section of [--stats-json]; byte-identical across
    same-seed runs. *)

val pp : Format.formatter -> t -> unit
