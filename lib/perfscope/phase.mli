(** Cost-attribution phases for the performance observatory.

    Every host instruction the engine retires is attributed to exactly
    one phase:

    - [Translate] — guest-to-host translation (including prefetch
      aborts taken while translating)
    - [Execute] — emitted compute code, engine dispatch, chained jumps
      and SMC recovery
    - [Coordinate] — Sync-tagged flag save/restore code, interrupt
      polling, and engine-side inter-TB flag restores
    - [Softmmu] — emitted TLB probes and the MMU helper slow path
    - [Helper] — helper-call glue, interpreter fallbacks and shadow
      verification replays
    - [Deliver] — interrupt delivery (bank switch, vectoring, and
      III-B's lazy flag parse)
    - [Region] — hot-region superblock formation (trace selection and
      the fused re-emission of the constituent TBs)

    The per-phase totals therefore partition
    {!Repro_x86.Stats.t.host_insns} over any engine run without
    watchdog rollbacks. *)

type t = Translate | Execute | Coordinate | Softmmu | Helper | Deliver | Region

val all : t list
(** In canonical (index) order. *)

val n : int
(** Number of phases (length of {!all}). *)

val index : t -> int
(** Position in {!all}; the layout of every per-phase [int array]. *)

val name : t -> string
val of_name : string -> t option
