(* Brendan Gregg collapsed-stack accumulator.

   Each sample is a frame stack (outermost first) with an integer
   weight; [write_folded] emits the classic "frame;frame;frame N"
   lines flamegraph.pl / speedscope / inferno all consume. Output is
   sorted by stack so identical profiles fold to identical files. *)

type t = { samples : (string, int) Hashtbl.t }

let create () = { samples = Hashtbl.create 64 }

(* ';' separates frames and a newline terminates the record in the
   folded format; scrub both out of frame names. *)
let clean frame =
  String.map (fun c -> if c = ';' || c = '\n' || c = '\r' then '_' else c) frame

let add t stack weight =
  if weight > 0 && stack <> [] then begin
    let key = String.concat ";" (List.map clean stack) in
    let prev = match Hashtbl.find_opt t.samples key with Some n -> n | None -> 0 in
    Hashtbl.replace t.samples key (prev + weight)
  end

let fold t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.samples []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let write_folded oc t =
  List.iter (fun (stack, n) -> Printf.fprintf oc "%s %d\n" stack n) (fold t)
