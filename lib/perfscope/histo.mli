(** HDR-style log-bucketed histogram over nonnegative integers
    (latencies and intervals on the retired-guest-insn clock).

    Eight sub-buckets per octave (~12.5% relative resolution), exact
    integer counts, deterministic: identical recordings produce
    byte-identical {!to_json} output. Negative values clamp to 0. *)

type t

val create : unit -> t
val record : t -> int -> unit

val merge : into:t -> t -> unit
(** [merge ~into src] adds [src]'s recordings into [into] bucket-wise.
    Merging N histograms equals the histogram of the concatenated
    recordings (same buckets, count, sum, min, max — hence identical
    {!to_json} and quantiles), regardless of merge order. [src] is
    unchanged. *)

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int

val mean : t -> float

val percentile : t -> float -> int
(** [percentile t p] is the lower bound of the bucket holding the
    rank-[ceil(p% * count)] recording — a value v such that at least
    p% of recordings are <= the bucket containing v. 0 when empty. *)

val to_json : t -> string
(** [{"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,
    "p90":..,"p99":..,"buckets":[{"lo":..,"n":..},...]}] with only
    occupied buckets listed, in ascending order. *)

val pp : Format.formatter -> t -> unit

(**/**)

val bucket_index : int -> int
val lower_bound : int -> int
