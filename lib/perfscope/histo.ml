(* HDR-style log-bucketed histogram over nonnegative integers.

   Buckets have ~12.5% relative width (8 sub-buckets per octave), so
   a latency distribution spanning microseconds to seconds fits in a
   few hundred counters. Everything is integer arithmetic on exact
   counts: recording the same values in the same order always produces
   the same histogram, and percentiles are bucket lower bounds — no
   interpolation, no floating-point accumulation order to worry
   about. *)

module Jsonx = Repro_observe.Jsonx

(* Values 0..7 get exact buckets; from 8 up, each octave [2^o, 2^(o+1))
   splits into 8 sub-buckets. Index 8*(o-2)+sub is contiguous from 8.
   An OCaml int has at most 62 value bits, so 488 buckets cover it. *)
let n_buckets = 488

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { buckets = Array.make n_buckets 0; count = 0; sum = 0; min_v = max_int; max_v = 0 }

let bucket_index v =
  if v < 8 then v
  else begin
    let rec msb n acc = if n <= 1 then acc else msb (n lsr 1) (acc + 1) in
    let o = msb v 0 in
    (8 * (o - 2)) + ((v lsr (o - 3)) land 7)
  end

let lower_bound i =
  if i < 8 then i
  else
    let o = (i / 8) + 2 and sub = i mod 8 in
    (8 + sub) lsl (o - 3)

let record t v =
  let v = if v < 0 then 0 else v in
  t.buckets.(bucket_index v) <- t.buckets.(bucket_index v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

(* Bucket-wise accumulation of [src] into [dst]: because recording
   only ever increments the value's bucket and the scalar summaries,
   merging N histograms is exactly the histogram of the concatenated
   recordings — the property fleet-level telemetry (per-machine
   latency histograms folded into one fleet view) depends on. *)
let merge ~into:dst src =
  for i = 0 to n_buckets - 1 do
    dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
  done;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum;
  if src.count > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

(* The smallest recorded value v such that at least p% of recordings
   are <= v — reported as v's bucket lower bound. *)
let percentile t p =
  if t.count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let rec walk i cum =
      let cum = cum + t.buckets.(i) in
      if cum >= rank then lower_bound i else walk (i + 1) cum
    in
    walk 0 0
  end

let to_json t =
  let buckets =
    let acc = ref [] in
    for i = n_buckets - 1 downto 0 do
      if t.buckets.(i) > 0 then
        acc :=
          Jsonx.obj
            [ ("lo", Jsonx.int (lower_bound i)); ("n", Jsonx.int t.buckets.(i)) ]
          :: !acc
    done;
    !acc
  in
  Jsonx.obj
    [
      ("count", Jsonx.int t.count);
      ("sum", Jsonx.int t.sum);
      ("min", Jsonx.int (min_value t));
      ("max", Jsonx.int t.max_v);
      ("mean", Jsonx.float (mean t));
      ("p50", Jsonx.int (percentile t 50.));
      ("p90", Jsonx.int (percentile t 90.));
      ("p99", Jsonx.int (percentile t 99.));
      ("buckets", Jsonx.arr buckets);
    ]

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.1f min=%d p50=%d p90=%d p99=%d max=%d" t.count
      (mean t) (min_value t) (percentile t 50.) (percentile t 90.)
      (percentile t 99.) t.max_v
