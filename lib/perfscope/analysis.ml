(* Offline analysis over the JSON the toolchain writes: stats-json
   files from repro-dbt-run (phase breakdowns, A/B diffs) and the
   consolidated BENCH_<rev>.json from the bench harness (the
   regression gate). Library code so the tests can assert the two
   load-bearing properties directly: same-seed diffs are exactly zero,
   and a synthetic regression trips the gate. *)

module Jsonx = Repro_observe.Jsonx

let ( let* ) = Option.bind

(* ---- phase breakdowns from a stats-json file ---- *)

(* The ["perf"]["phases"] section when the run carried a scope;
   otherwise fall back to the per-tag host-instruction split the bare
   stats always record. Deterministic either way. *)
let phase_totals json =
  match
    let* perf = Jsonx.member "perf" json in
    let* phases = Jsonx.member "phases" perf in
    match phases with
    | Jsonx.Obj fields ->
      Some
        (List.filter_map
           (fun (k, v) ->
             if k = "total" then None
             else match Jsonx.to_int v with Some n -> Some (k, n) | None -> None)
           fields)
    | _ -> None
  with
  | Some l -> l
  | None -> (
    match Jsonx.member "stats" json with
    | Some (Jsonx.Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          if String.length k > 5 && String.sub k 0 5 = "host_" && k <> "host_insns"
             && k <> "host_per_guest"
          then match Jsonx.to_int v with Some n -> Some (k, n) | None -> None
          else None)
        fields
    | _ -> [])

let stat_int json field =
  let* stats = Jsonx.member "stats" json in
  let* v = Jsonx.member field stats in
  Jsonx.to_int v

(* ---- document-kind validation ---- *)

(* Every JSON artifact the toolchain writes carries a ["meta"] kind
   tag ("dbt-stats", "dbt-coverage", "fleet-telemetry", "bench",
   "trace", ...). Feeding one artifact to another artifact's consumer
   used to produce confusing empty tables; the kind check turns it
   into a one-line diagnosis. Documents without the tag pass unless
   [require] — older artifacts predate the tagging. *)
let check_kind ?(require = false) ~expect json =
  match Jsonx.member "meta" json with
  | None ->
    if require then
      Error (Printf.sprintf "missing \"meta\" document-kind tag (expected %S)" expect)
    else Ok ()
  | Some m -> (
    match Jsonx.to_string m with
    | Some k when k = expect -> Ok ()
    | Some k -> Error (Printf.sprintf "document kind %S, expected %S" k expect)
    | None -> Error (Printf.sprintf "malformed \"meta\" tag (expected %S)" expect))

(* ---- A/B diff ---- *)

type diff_row = {
  d_phase : string;
  d_a : int;
  d_b : int;
  d_pct : float;  (* (b - a) / a * 100; 0 when both are 0 *)
}

let pct_delta a b =
  if a = b then 0.
  else if a = 0 then infinity
  else 100. *. float_of_int (b - a) /. float_of_int a

let diff a b =
  let pa = phase_totals a and pb = phase_totals b in
  let keys =
    List.map fst pa @ List.filter (fun k -> not (List.mem_assoc k pa)) (List.map fst pb)
  in
  List.map
    (fun k ->
      let va = match List.assoc_opt k pa with Some n -> n | None -> 0 in
      let vb = match List.assoc_opt k pb with Some n -> n | None -> 0 in
      { d_phase = k; d_a = va; d_b = vb; d_pct = pct_delta va vb })
    keys

let max_abs_pct rows =
  List.fold_left (fun acc r -> Float.max acc (Float.abs r.d_pct)) 0. rows

(* ---- the benchmark-regression gate ---- *)

type slice = {
  sl_name : string;
  sl_figure : string;
  sl_mode : string;
  sl_bench : string;
  sl_rule_enabled : bool;
  sl_guest : int;
  sl_host : int;
  sl_host_per_guest : float;
  sl_sync : int;
  sl_wall_ms : float option;
}

type bench_file = { bf_rev : string; bf_target : int; bf_slices : slice list }

let slice_of_json v =
  let str k = match Jsonx.member k v with Some s -> Jsonx.to_string s | None -> None in
  let num k = match Jsonx.member k v with Some n -> Jsonx.to_int n | None -> None in
  let* sl_name = str "name" in
  let* sl_figure = str "figure" in
  let* sl_mode = str "mode" in
  let* sl_bench = str "bench" in
  let* sl_rule_enabled =
    match Jsonx.member "rule_enabled" v with Some b -> Jsonx.to_bool b | None -> None
  in
  let* sl_guest = num "guest_insns" in
  let* sl_host = num "host_insns" in
  let* sl_host_per_guest =
    match Jsonx.member "host_per_guest" v with Some f -> Jsonx.to_float f | None -> None
  in
  let* sl_sync = num "sync_insns" in
  let sl_wall_ms =
    match Jsonx.member "wall_ms" v with Some f -> Jsonx.to_float f | None -> None
  in
  Some
    {
      sl_name;
      sl_figure;
      sl_mode;
      sl_bench;
      sl_rule_enabled;
      sl_guest;
      sl_host;
      sl_host_per_guest;
      sl_sync;
      sl_wall_ms;
    }

let bench_of_json json =
  let* rev = Jsonx.member "rev" json in
  let* bf_rev = Jsonx.to_string rev in
  let* target = Jsonx.member "target" json in
  let* bf_target = Jsonx.to_int target in
  let* slices = Jsonx.member "slices" json in
  let* items = Jsonx.to_list slices in
  let parsed = List.filter_map slice_of_json items in
  if List.length parsed <> List.length items then None
  else Some { bf_rev; bf_target; bf_slices = parsed }

type gate_status =
  | Gate_ok
  | Gate_regressed of float  (* host/guest delta % over the threshold *)
  | Gate_missing  (* baseline slice absent from the current run *)
  | Gate_empty  (* zero retired guest instructions *)

type gate_row = {
  g_name : string;
  g_base : float;  (* baseline host insns per guest insn *)
  g_cur : float;
  g_pct : float;
  g_status : gate_status;
}

(* Rule-enabled baseline slices must not regress host-insn/guest-insn
   by more than [threshold_pct]; qemu-baseline slices are reported but
   never gate (they are the reference the speedups are measured
   against, not the optimized artifact under protection). *)
let gate ?(threshold_pct = 5.) ~baseline ~current () =
  let rows =
    List.map
      (fun b ->
        match
          List.find_opt (fun c -> c.sl_name = b.sl_name) current.bf_slices
        with
        | None ->
          {
            g_name = b.sl_name;
            g_base = b.sl_host_per_guest;
            g_cur = 0.;
            g_pct = 0.;
            g_status = (if b.sl_rule_enabled then Gate_missing else Gate_ok);
          }
        | Some c ->
          let pct =
            if b.sl_host_per_guest = 0. then 0.
            else
              100. *. (c.sl_host_per_guest -. b.sl_host_per_guest)
              /. b.sl_host_per_guest
          in
          let status =
            if c.sl_guest = 0 then Gate_empty
            else if b.sl_rule_enabled && pct > threshold_pct then Gate_regressed pct
            else Gate_ok
          in
          {
            g_name = b.sl_name;
            g_base = b.sl_host_per_guest;
            g_cur = c.sl_host_per_guest;
            g_pct = pct;
            g_status = status;
          })
      baseline.bf_slices
  in
  let ok = List.for_all (fun r -> r.g_status = Gate_ok) rows in
  (ok, rows)

(* ---- file loading ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_json path = Jsonx.parse (read_file path)

(* JSONL: one value per non-empty line (the trace/metrics exports). *)
let load_jsonl path =
  read_file path
  |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         if String.trim line = "" then None else Some (Jsonx.parse line))
