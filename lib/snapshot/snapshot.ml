(* Versioned, checksummed machine snapshots. See the interface for
   the container layout; the machine-core capture covers everything
   below the translation cache, which [Repro_dbt.System] layers on as
   further sections of the same container. *)

module Rt = Repro_tcg.Runtime
module Exec = Repro_x86.Exec
module Stats = Repro_x86.Stats
module Cpu = Repro_arm.Cpu
module Bus = Repro_machine.Bus
module Devices = Repro_machine.Devices
module Tlb = Repro_mmu.Mmu.Tlb
module Fi = Repro_faultinject.Faultinject

let magic = "DBTSNAP\x01"
let format_version = 2

exception Corrupt of string
exception Load_error of { section : string; reason : string }

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let load_error section fmt =
  Printf.ksprintf (fun reason -> raise (Load_error { section; reason })) fmt

let fnv1a32 s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFF_FFFF)
    s;
  !h

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 1024
  let u64 b v = Buffer.add_int64_le b v
  let int b v = u64 b (Int64.of_int v)
  let bool b v = int b (if v then 1 else 0)

  let string b s =
    int b (String.length s);
    Buffer.add_string b s

  let int_array b a =
    int b (Array.length a);
    Array.iter (int b) a

  let i64_array b a =
    int b (Array.length a);
    Array.iter (u64 b) a

  let contents = Buffer.contents
end

module Dec = struct
  type t = { src : string; mutable pos : int; name : string }

  let of_string ?(name = "payload") src = { src; pos = 0; name }

  let u64 d =
    if d.pos + 8 > String.length d.src then
      corrupt "%s: truncated at byte %d" d.name d.pos;
    let v = String.get_int64_le d.src d.pos in
    d.pos <- d.pos + 8;
    v

  let int d = Int64.to_int (u64 d)
  let bool d = int d <> 0

  let string d =
    let n = int d in
    if n < 0 || d.pos + n > String.length d.src then
      corrupt "%s: bad string length %d at byte %d" d.name n d.pos;
    let s = String.sub d.src d.pos n in
    d.pos <- d.pos + n;
    s

  let array d elt =
    let n = int d in
    if n < 0 || d.pos + (8 * n) > String.length d.src then
      corrupt "%s: bad array length %d at byte %d" d.name n d.pos;
    Array.init n (fun _ -> elt d)

  let int_array d = array d int
  let i64_array d = array d u64
  let finished d = d.pos = String.length d.src
end

(* ---- the section container ---- *)

type t = { mutable sections : (string * string) list (* reversed *) }

let create () = { sections = [] }

let add t name payload =
  if List.mem_assoc name t.sections then
    invalid_arg (Printf.sprintf "Snapshot.add: duplicate section %s" name);
  t.sections <- (name, payload) :: t.sections

let find_opt t name = List.assoc_opt name t.sections

let find t name =
  match find_opt t name with
  | Some p -> p
  | None -> corrupt "missing section %s" name

let mem t name = List.mem_assoc name t.sections
let names t = List.rev_map fst t.sections

let to_string t =
  let body = Enc.create () in
  let ordered = List.rev t.sections in
  Enc.int body (List.length ordered);
  List.iter
    (fun (name, payload) ->
      Enc.string body name;
      Enc.string body payload;
      (* per-section checksum (format v2): a flipped bit is attributed
         to the section it corrupts, not just "somewhere in the body" *)
      Enc.int body (fnv1a32 payload))
    ordered;
  let body = Enc.contents body in
  let out = Buffer.create (String.length body + 24) in
  Buffer.add_string out magic;
  Buffer.add_int64_le out (Int64.of_int format_version);
  Buffer.add_int64_le out (Int64.of_int (fnv1a32 body));
  Buffer.add_string out body;
  Buffer.contents out

(* Loading is total over arbitrary byte strings: every failure mode —
   truncation, bit flips, bad lengths, version skew — surfaces as
   [Load_error] naming the innermost section being decoded ("container"
   for damage outside any section). The decoder primitives raise
   [Corrupt]; the handlers below translate, so no exception other than
   [Load_error] can escape. *)
let of_string s =
  let guard section f =
    try f () with
    | Corrupt reason -> raise (Load_error { section; reason })
    | Invalid_argument reason -> raise (Load_error { section; reason })
  in
  if String.length s < 24 then
    load_error "container" "shorter than its header (%d bytes)"
      (String.length s);
  if String.sub s 0 8 <> magic then load_error "container" "bad magic";
  let hdr = Dec.of_string ~name:"header" (String.sub s 8 16) in
  let version = guard "container" (fun () -> Dec.int hdr) in
  if version <> format_version then
    load_error "container" "format version %d, expected %d" version
      format_version;
  let sum = guard "container" (fun () -> Dec.int hdr) in
  let body = String.sub s 24 (String.length s - 24) in
  let d = Dec.of_string ~name:"body" body in
  let n = guard "container" (fun () -> Dec.int d) in
  if n < 0 then load_error "container" "negative section count";
  let t = create () in
  for _ = 1 to n do
    let name = guard "container" (fun () -> Dec.string d) in
    guard name (fun () ->
        let payload = Dec.string d in
        let stored = Dec.int d in
        let computed = fnv1a32 payload in
        if stored <> computed then
          corrupt "section checksum mismatch (stored %#x, computed %#x)"
            stored computed;
        add t name payload)
  done;
  if not (Dec.finished d) then
    load_error "container" "trailing bytes after last section";
  (* The whole-body checksum runs last so damage inside a section is
     attributed to that section first; what reaches this check is
     framing damage the per-section sums cannot see (a flipped name
     byte that still parses, a rewritten length that re-frames
     cleanly). *)
  let actual = fnv1a32 body in
  if sum <> actual then
    load_error "container" "body checksum mismatch (stored %#x, computed %#x)"
      sum actual;
  t

let save_file path t = Repro_common.Atomicio.write path (to_string t)

let load_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error e ->
    raise (Load_error { section = "container"; reason = e })

(* ---- machine-core capture ---- *)

let ints a =
  let b = Enc.create () in
  Enc.int_array b a;
  Enc.contents b

let dec_ints name payload =
  let d = Dec.of_string ~name payload in
  let a = Dec.int_array d in
  if not (Dec.finished d) then corrupt "%s: trailing bytes" name;
  a

let capture_machine (rt : Rt.t) t =
  let ctx = rt.Rt.ctx in
  add t "cpu" (ints (Cpu.save_words rt.Rt.cpu));
  add t "env" (ints (Array.copy ctx.Exec.env));
  let host = Enc.create () in
  Enc.int_array host ctx.Exec.regs;
  Enc.bool host ctx.Exec.cf;
  Enc.bool host ctx.Exec.zf;
  Enc.bool host ctx.Exec.sf;
  Enc.bool host ctx.Exec.o_f;
  Enc.int host ctx.Exec.poison_counter;
  add t "host" (Enc.contents host);
  add t "ram" (Bytes.to_string ctx.Exec.ram);
  add t "tlb" (ints (Tlb.save ctx.Exec.tlb));
  add t "timer" (ints (Devices.Timer.export rt.Rt.bus.Bus.timer));
  let uart = Enc.create () in
  Enc.string uart (Devices.Uart.output rt.Rt.bus.Bus.uart);
  add t "uart" (Enc.contents uart);
  let syscon = Enc.create () in
  (match Devices.Syscon.halted rt.Rt.bus.Bus.syscon with
  | None -> Enc.bool syscon false
  | Some code ->
    Enc.bool syscon true;
    Enc.int syscon code);
  add t "syscon" (Enc.contents syscon);
  (match rt.Rt.inject with
  | None -> ()
  | Some inj ->
    let b = Enc.create () in
    Enc.i64_array b (Fi.export inj);
    add t "inject" (Enc.contents b));
  add t "stats" (ints (Stats.to_array (Rt.stats rt)))

let restore_machine (rt : Rt.t) t =
  let ctx = rt.Rt.ctx in
  (try Cpu.load_words rt.Rt.cpu (dec_ints "cpu" (find t "cpu"))
   with Invalid_argument e -> corrupt "cpu: %s" e);
  let env = dec_ints "env" (find t "env") in
  if Array.length env <> Array.length ctx.Exec.env then
    corrupt "env: %d slots, machine has %d" (Array.length env)
      (Array.length ctx.Exec.env);
  Array.blit env 0 ctx.Exec.env 0 (Array.length env);
  let host = Dec.of_string ~name:"host" (find t "host") in
  let regs = Dec.int_array host in
  if Array.length regs <> Array.length ctx.Exec.regs then
    corrupt "host: %d registers, machine has %d" (Array.length regs)
      (Array.length ctx.Exec.regs);
  Array.blit regs 0 ctx.Exec.regs 0 (Array.length regs);
  ctx.Exec.cf <- Dec.bool host;
  ctx.Exec.zf <- Dec.bool host;
  ctx.Exec.sf <- Dec.bool host;
  ctx.Exec.o_f <- Dec.bool host;
  ctx.Exec.poison_counter <- Dec.int host;
  if not (Dec.finished host) then corrupt "host: trailing bytes";
  let ram = find t "ram" in
  if String.length ram <> Bytes.length ctx.Exec.ram then
    corrupt "ram: %d bytes, machine has %d" (String.length ram)
      (Bytes.length ctx.Exec.ram);
  Bytes.blit_string ram 0 ctx.Exec.ram 0 (String.length ram);
  (try Tlb.restore ctx.Exec.tlb (dec_ints "tlb" (find t "tlb"))
   with Invalid_argument e -> corrupt "tlb: %s" e);
  (try Devices.Timer.import rt.Rt.bus.Bus.timer (dec_ints "timer" (find t "timer"))
   with Invalid_argument e -> corrupt "timer: %s" e);
  let uart = Dec.of_string ~name:"uart" (find t "uart") in
  Devices.Uart.import rt.Rt.bus.Bus.uart (Dec.string uart);
  let syscon = Dec.of_string ~name:"syscon" (find t "syscon") in
  Devices.Syscon.import rt.Rt.bus.Bus.syscon
    (if Dec.bool syscon then Some (Dec.int syscon) else None);
  (match (rt.Rt.inject, find_opt t "inject") with
  | None, None -> ()
  | Some inj, Some payload -> (
    let d = Dec.of_string ~name:"inject" payload in
    try Fi.import inj (Dec.i64_array d)
    with Invalid_argument e -> corrupt "inject: %s" e)
  | Some _, None -> corrupt "machine has a fault injector, snapshot has none"
  | None, Some _ -> corrupt "snapshot has injector state, machine has none");
  (try Stats.load_array (Rt.stats rt) (dec_ints "stats" (find t "stats"))
   with Invalid_argument e -> corrupt "stats: %s" e);
  (* engine-transient runtime fields: between-TB defaults *)
  rt.Rt.pending_code_write <- false;
  rt.Rt.suppress_code_write <- false;
  rt.Rt.tb_override <- None;
  rt.Rt.corrupt_override <- None;
  rt.Rt.fault_producers <- [||]
