(** Lightweight event journal for deterministic record/replay.

    Between two checkpoints the machine is deterministic given its
    snapshot — devices advance on retired-instruction counts and the
    injector PRNG cursor is part of the capture — so the journal is
    not needed to {e drive} a replay, only to {e check} one: it
    records everything externally visible (delivered IRQs, injected
    faults, MMIO reads, divergences, the halt) at retired-instruction
    timestamps, and a replay that produces a different journal has
    diverged. The text format is line-oriented and stable, so dumps
    are diffable post-mortems as well as machine-checkable traces. *)

open Repro_common

type event =
  | Irq of { at : int; pc : Word32.t }
      (** interrupt delivered while the guest was at [pc] *)
  | Fault of { at : int; site : string }
      (** injected fault fired at site [site] (see
          {!Repro_faultinject.Faultinject.site_name}) *)
  | Dev_read of { at : int; paddr : Word32.t; value : Word32.t }
      (** successful MMIO read observed by the guest *)
  | Diverge of { at : int; pc : Word32.t; detail : string }
      (** shadow verification repaired a divergence at [pc] *)
  | Halt of { at : int; code : Word32.t }  (** machine powered off *)

val at : event -> int
(** The retired-guest-instruction timestamp. *)

type t

val create : unit -> t
val record : t -> event -> unit
val clear : t -> unit

val events : t -> event list
(** In recording order. *)

val length : t -> int

val string_of_event : event -> string
val event_of_string : string -> event
(** Raises [Failure] on an unparseable line. *)

val to_string : t -> string
(** One event per line, newline-terminated; empty for an empty
    journal. *)

val of_string : string -> t
(** Blank lines ignored. Raises [Failure] on a malformed line. *)

val pp : Format.formatter -> t -> unit
