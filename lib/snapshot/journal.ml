open Repro_common

type event =
  | Irq of { at : int; pc : Word32.t }
  | Fault of { at : int; site : string }
  | Dev_read of { at : int; paddr : Word32.t; value : Word32.t }
  | Diverge of { at : int; pc : Word32.t; detail : string }
  | Halt of { at : int; code : Word32.t }

let at = function
  | Irq { at; _ } | Fault { at; _ } | Dev_read { at; _ }
  | Diverge { at; _ } | Halt { at; _ } ->
    at

type t = { mutable rev_events : event list; mutable n : int }

let create () = { rev_events = []; n = 0 }

let record t e =
  t.rev_events <- e :: t.rev_events;
  t.n <- t.n + 1

let clear t =
  t.rev_events <- [];
  t.n <- 0

let events t = List.rev t.rev_events
let length t = t.n

let string_of_event = function
  | Irq { at; pc } -> Printf.sprintf "irq %d 0x%08x" at pc
  | Fault { at; site } -> Printf.sprintf "fault %d %s" at site
  | Dev_read { at; paddr; value } ->
    Printf.sprintf "devr %d 0x%08x 0x%08x" at paddr value
  | Diverge { at; pc; detail } ->
    Printf.sprintf "diverge %d 0x%08x %s" at pc detail
  | Halt { at; code } -> Printf.sprintf "halt %d 0x%08x" at code

let event_of_string line =
  let num s =
    try int_of_string s
    with Failure _ -> failwith (Printf.sprintf "Journal: bad number %S in %S" s line)
  in
  match String.split_on_char ' ' line with
  | [ "irq"; at; pc ] -> Irq { at = num at; pc = num pc }
  | [ "fault"; at; site ] -> Fault { at = num at; site }
  | [ "devr"; at; paddr; value ] ->
    Dev_read { at = num at; paddr = num paddr; value = num value }
  | "diverge" :: at :: pc :: rest ->
    Diverge { at = num at; pc = num pc; detail = String.concat " " rest }
  | [ "halt"; at; code ] -> Halt { at = num at; code = num code }
  | _ -> failwith (Printf.sprintf "Journal: unparseable event %S" line)

let to_string t =
  let b = Buffer.create 256 in
  List.iter
    (fun e ->
      Buffer.add_string b (string_of_event e);
      Buffer.add_char b '\n')
    (events t);
  Buffer.contents b

let of_string s =
  let t = create () in
  List.iter
    (fun line -> if String.trim line <> "" then record t (event_of_string line))
    (String.split_on_char '\n' s);
  t

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%s@." (string_of_event e)) (events t)
