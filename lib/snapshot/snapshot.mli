(** Crash-consistent machine snapshots.

    A snapshot is an ordered list of named binary sections inside a
    versioned, checksummed container:

    {v
      bytes 0..7    magic "DBTSNAP\x01"
      bytes 8..15   u64 LE format version (currently 2)
      bytes 16..23  u64 LE FNV-1a-32 checksum of the body (low 32 bits)
      bytes 24..    body: u64 section count, then per section a
                    length-prefixed name, a length-prefixed payload,
                    and a u64 FNV-1a-32 checksum of the payload
    v}

    All integers are little-endian u64 ({!Enc}/{!Dec}); section order
    is preserved so save -> load -> save is byte-identical. The
    machine-core sections (CPU, env, RAM, TLB, devices, injector,
    stats) are produced and consumed here; engine-level sections
    (translation-cache records, ruleset health, resume cursor,
    journal) are layered on by [Repro_dbt.System]. *)

exception Corrupt of string
(** A semantic problem in an already-loaded snapshot: missing or
    malformed section payload, shape mismatch against the machine
    being restored into. *)

exception Load_error of { section : string; reason : string }
(** Container-integrity failure while {e loading} raw bytes
    ({!of_string} / {!load_file}): truncation, bad magic, version
    skew, a checksum mismatch. [section] names the innermost section
    being decoded when the damage surfaced — ["container"] when it
    lies outside any section (header, framing, the whole-body
    checksum). Loading raises nothing else, whatever the input
    bytes. *)

val format_version : int

(** {2 Primitive little-endian encoders} *)

module Enc : sig
  type t

  val create : unit -> t
  val u64 : t -> int64 -> unit
  val int : t -> int -> unit
  val bool : t -> bool -> unit
  val string : t -> string -> unit
  val int_array : t -> int array -> unit
  val i64_array : t -> int64 array -> unit
  val contents : t -> string
end

module Dec : sig
  type t

  val of_string : ?name:string -> string -> t
  (** [name] labels {!Corrupt} messages. *)

  val u64 : t -> int64
  val int : t -> int
  val bool : t -> bool
  val string : t -> string
  val int_array : t -> int array
  val i64_array : t -> int64 array

  val finished : t -> bool
  (** All input consumed — decoders should end on [true]. *)
end

(** {2 The section container} *)

type t

val create : unit -> t

val add : t -> string -> string -> unit
(** Append section [name] with the given payload. Raises
    [Invalid_argument] on a duplicate name. *)

val find : t -> string -> string
(** Raises {!Corrupt} when the section is absent. *)

val find_opt : t -> string -> string option
val mem : t -> string -> bool
val names : t -> string list

val to_string : t -> string
(** Serialize to the checksummed container format. *)

val of_string : string -> t
(** Parse and validate magic, version, every per-section checksum and
    the whole-body checksum. Raises {!Load_error} (and nothing else)
    on any failure, naming the damaged section. *)

val save_file : string -> t -> unit
(** Crash-atomic: write-to-temp + fsync + rename
    ({!Repro_common.Atomicio}) — a crash leaves the previous file (or
    none), never a torn snapshot. *)

val load_file : string -> t
(** Raises {!Load_error} also when the file cannot be read
    ([section = "container"]). *)

(** {2 Machine-core capture}

    These cover everything below the translation cache: architectural
    CPU (current view, banked registers, CP15, FPSCR), the lazy-flag
    env array, host register file and EFLAGS, guest RAM, softMMU TLB,
    the three devices, the fault injector's PRNG cursor and counters,
    and the statistics block. *)

val capture_machine : Repro_tcg.Runtime.t -> t -> unit
(** Append the machine-core sections to [t]. *)

val restore_machine : Repro_tcg.Runtime.t -> t -> unit
(** Write a capture back into a machine created with the same shape
    (RAM size, injector presence). Engine-transient runtime fields
    (pending code write, TB override, fault producers) are reset to
    their between-TB defaults. Raises {!Corrupt} on shape mismatch —
    including a snapshot that carries injector state restored into a
    machine without an injector, or vice versa. *)

(** {2 Checksum} *)

val fnv1a32 : string -> int
(** The body checksum (FNV-1a, 32-bit). *)
