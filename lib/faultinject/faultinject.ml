open Repro_common

type site =
  | Bus_read
  | Bus_write
  | Tlb_flush
  | Walk_corrupt
  | Spurious_irq
  | Tb_flush
  | Rule_corrupt

type behavior = Transient | Surface

let all_sites =
  [ Bus_read; Bus_write; Tlb_flush; Walk_corrupt; Spurious_irq; Tb_flush; Rule_corrupt ]

let n_sites = List.length all_sites

let index = function
  | Bus_read -> 0
  | Bus_write -> 1
  | Tlb_flush -> 2
  | Walk_corrupt -> 3
  | Spurious_irq -> 4
  | Tb_flush -> 5
  | Rule_corrupt -> 6

let site_name = function
  | Bus_read -> "bus-read"
  | Bus_write -> "bus-write"
  | Tlb_flush -> "tlb-flush"
  | Walk_corrupt -> "walk-corrupt"
  | Spurious_irq -> "spurious-irq"
  | Tb_flush -> "tb-flush"
  | Rule_corrupt -> "rule-corrupt"

type t = {
  prng : Prng.t;
  rates : float array;
  events : int array;
  fired : int array;
  behavior : behavior;
}

let create ?(seed = 1) ?(rate = 0.001) ?(behavior = Transient) () =
  {
    prng = Prng.create ~seed;
    rates = Array.make n_sites rate;
    events = Array.make n_sites 0;
    fired = Array.make n_sites 0;
    behavior;
  }

let set_rate t site r = t.rates.(index site) <- r

let fire t site =
  let i = index site in
  t.events.(i) <- t.events.(i) + 1;
  let r = t.rates.(i) in
  if r <= 0. then false
  else begin
    let hit = Prng.chance t.prng r in
    if hit then t.fired.(i) <- t.fired.(i) + 1;
    hit
  end

let surfaces t = t.behavior = Surface
let events t site = t.events.(index site)
let fired t site = t.fired.(index site)
let total_events t = Array.fold_left ( + ) 0 t.events
let total_fired t = Array.fold_left ( + ) 0 t.fired

let pp ppf t =
  Format.fprintf ppf "@[<v>fault injection (%s bus faults): %d fired / %d events"
    (match t.behavior with Transient -> "transient" | Surface -> "surfaced")
    (total_fired t) (total_events t);
  List.iter
    (fun s ->
      let i = index s in
      if t.events.(i) > 0 && t.rates.(i) > 0. then
        Format.fprintf ppf "@   %-12s %6d / %d" (site_name s) t.fired.(i) t.events.(i))
    all_sites;
  Format.fprintf ppf "@]"
