open Repro_common

type site =
  | Bus_read
  | Bus_write
  | Tlb_flush
  | Walk_corrupt
  | Spurious_irq
  | Tb_flush
  | Rule_corrupt
  | Host_livelock
  | Depot_torn
  | Depot_trunc
  | Depot_flip

type behavior = Transient | Surface

let all_sites =
  [ Bus_read; Bus_write; Tlb_flush; Walk_corrupt; Spurious_irq; Tb_flush; Rule_corrupt;
    Host_livelock; Depot_torn; Depot_trunc; Depot_flip ]

let n_sites = List.length all_sites

let index = function
  | Bus_read -> 0
  | Bus_write -> 1
  | Tlb_flush -> 2
  | Walk_corrupt -> 3
  | Spurious_irq -> 4
  | Tb_flush -> 5
  | Rule_corrupt -> 6
  | Host_livelock -> 7
  | Depot_torn -> 8
  | Depot_trunc -> 9
  | Depot_flip -> 10

let site_name = function
  | Bus_read -> "bus-read"
  | Bus_write -> "bus-write"
  | Tlb_flush -> "tlb-flush"
  | Walk_corrupt -> "walk-corrupt"
  | Spurious_irq -> "spurious-irq"
  | Tb_flush -> "tb-flush"
  | Rule_corrupt -> "rule-corrupt"
  | Host_livelock -> "host-livelock"
  | Depot_torn -> "depot-torn"
  | Depot_trunc -> "depot-trunc"
  | Depot_flip -> "depot-flip"

let site_of_name n = List.find_opt (fun s -> site_name s = n) all_sites

type t = {
  prng : Prng.t;
  rates : float array;
  events : int array;
  fired : int array;
  behavior : behavior;
  mutable fire_hook : (site -> unit) option;
  mutable trace : Repro_observe.Trace.t option;
      (* observational only: not part of [export] — the PRNG stream is
         identical with or without it *)
}

let create ?(seed = 1) ?(rate = 0.001) ?(behavior = Transient) () =
  let rates = Array.make n_sites rate in
  (* Host_livelock sabotages emitted code into a host infinite loop —
     strictly opt-in (watchdog drills), never part of the blanket
     background rate. *)
  rates.(index Host_livelock) <- 0.;
  {
    prng = Prng.create ~seed;
    rates;
    events = Array.make n_sites 0;
    fired = Array.make n_sites 0;
    behavior;
    fire_hook = None;
    trace = None;
  }

let set_rate t site r = t.rates.(index site) <- r

let fire t site =
  let i = index site in
  t.events.(i) <- t.events.(i) + 1;
  let r = t.rates.(i) in
  if r <= 0. then false
  else begin
    let hit = Prng.chance t.prng r in
    if hit then begin
      t.fired.(i) <- t.fired.(i) + 1;
      (match t.fire_hook with Some h -> h site | None -> ());
      match t.trace with
      | Some tr ->
        Repro_observe.Trace.emit tr ~a:t.fired.(i) Repro_observe.Trace.Fault
          (site_name site)
      | None -> ()
    end;
    hit
  end

let set_fire_hook t h = t.fire_hook <- h
let set_trace t tr = t.trace <- tr

(* Snapshot support: the injector is the machine's only runtime entropy
   source, so its complete state rides in every snapshot. Layout:
   [prng state; behavior; n_sites; rates (float bits); events; fired]. *)
let export t =
  Array.concat
    [
      [| Prng.state t.prng;
         (match t.behavior with Transient -> 0L | Surface -> 1L);
         Int64.of_int n_sites |];
      Array.map Int64.bits_of_float t.rates;
      Array.map Int64.of_int t.events;
      Array.map Int64.of_int t.fired;
    ]

let import t words =
  if Array.length words < 3 then invalid_arg "Faultinject.import: truncated state";
  let n = Int64.to_int words.(2) in
  if n <> n_sites || Array.length words <> 3 + (3 * n) then
    invalid_arg "Faultinject.import: site count mismatch";
  Prng.set_state t.prng words.(0);
  (* behavior is immutable per injector; a snapshot restored into an
     injector with the other behavior would not replay faithfully *)
  let b = match words.(1) with 0L -> Transient | _ -> Surface in
  if b <> t.behavior then invalid_arg "Faultinject.import: behavior mismatch";
  for i = 0 to n - 1 do
    t.rates.(i) <- Int64.float_of_bits words.(3 + i);
    t.events.(i) <- Int64.to_int words.(3 + n + i);
    t.fired.(i) <- Int64.to_int words.(3 + (2 * n) + i)
  done

let of_export words =
  if Array.length words < 2 then
    invalid_arg "Faultinject.of_export: truncated state";
  let behavior = match words.(1) with 0L -> Transient | _ -> Surface in
  let t = create ~behavior () in
  import t words;
  t

let behavior t = t.behavior
let rate t site = t.rates.(index site)

let reseed t ~seed = Prng.set_state t.prng (Prng.state (Prng.create ~seed))

(* Fleet chaos-drill orchestration: one deterministic plan decides
   which k of N machines run faulty and with what per-machine injector
   seed, so a drill replays bit-identically from the fleet seed alone. *)
module Plan = struct
  type assignment = { a_machine : int; a_faulty : bool; a_seed : int }

  type t = {
    p_seed : int;
    p_faults : (site * float) list;
    p_assign : assignment array;
  }

  let make ~seed ~machines ~faulty faults =
    if machines <= 0 then invalid_arg "Faultinject.Plan.make: machines <= 0";
    if faulty < 0 || faulty > machines then
      invalid_arg "Faultinject.Plan.make: faulty out of range";
    List.iter
      (fun (_, r) ->
        if r < 0. then invalid_arg "Faultinject.Plan.make: negative rate")
      faults;
    let prng = Prng.create ~seed in
    let seeds = Array.init machines (fun _ -> 1 + Prng.int prng 0x3FFF_FFFF) in
    (* Fisher–Yates over the machine indices; the first [faulty] are it *)
    let order = Array.init machines (fun i -> i) in
    for i = machines - 1 downto 1 do
      let j = Prng.int prng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    let is_faulty = Array.make machines false in
    for i = 0 to faulty - 1 do
      is_faulty.(order.(i)) <- true
    done;
    {
      p_seed = seed;
      p_faults = faults;
      p_assign =
        Array.init machines (fun m ->
            { a_machine = m; a_faulty = is_faulty.(m); a_seed = seeds.(m) });
    }

  let seed t = t.p_seed
  let machines t = Array.length t.p_assign
  let is_faulty t m = t.p_assign.(m).a_faulty
  let machine_seed t m = t.p_assign.(m).a_seed

  let faulty_machines t =
    Array.to_list t.p_assign
    |> List.filter_map (fun a -> if a.a_faulty then Some a.a_machine else None)

  let arm t m inj =
    reseed inj ~seed:t.p_assign.(m).a_seed;
    List.iter (fun s -> set_rate inj s 0.) all_sites;
    if t.p_assign.(m).a_faulty then
      List.iter (fun (s, r) -> set_rate inj s r) t.p_faults
end

let surfaces t = t.behavior = Surface
let events t site = t.events.(index site)
let fired t site = t.fired.(index site)
let total_events t = Array.fold_left ( + ) 0 t.events
let total_fired t = Array.fold_left ( + ) 0 t.fired

let pp ppf t =
  Format.fprintf ppf "@[<v>fault injection (%s bus faults): %d fired / %d events"
    (match t.behavior with Transient -> "transient" | Surface -> "surfaced")
    (total_fired t) (total_events t);
  List.iter
    (fun s ->
      let i = index s in
      if t.events.(i) > 0 && t.rates.(i) > 0. then
        Format.fprintf ppf "@   %-12s %6d / %d" (site_name s) t.fired.(i) t.events.(i))
    all_sites;
  Format.fprintf ppf "@]"
