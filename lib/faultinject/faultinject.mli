(** Deterministic fault injection.

    A single injector is threaded through the machine model (bus
    errors), the softMMU (spurious TLB invalidations, corrupted page
    walks), the execution engine (spurious interrupts, forced
    TB-cache flushes) and the rule-based translator (corrupted rule
    output). Every potential injection point calls {!fire}, which
    counts the event and draws from a seeded {!Repro_common.Prng} —
    runs are bit-reproducible for a given seed and set of rates.

    Faults split into two classes. {e Absorbable} faults (TLB or
    TB-cache invalidations, detected-and-retried walk corruption,
    spurious interrupts) must never change the guest-visible outcome,
    only its cost. {e Surfaceable} faults (bus errors under the
    {!Surface} behavior, rule corruption) are allowed to become
    architecturally visible and exercise the guest's abort paths and
    the translator's shadow-verification/quarantine defenses. *)

type site =
  | Bus_read      (** physical bus read error *)
  | Bus_write     (** physical bus write error *)
  | Tlb_flush     (** spurious software-TLB invalidation *)
  | Walk_corrupt  (** corrupted page-walk result (detected, re-walked) *)
  | Spurious_irq  (** interrupt asserted with no device source *)
  | Tb_flush      (** forced translation-cache flush *)
  | Rule_corrupt  (** corrupted rule-generated host code *)
  | Host_livelock
      (** rule-generated host code sabotaged into an infinite host
          loop — exercises the engine's fuel watchdog. Defaults to
          rate 0 (opt-in) even when [create ~rate] arms every other
          site, because it hangs the TB rather than perturbing it. *)
  | Depot_torn
      (** AOT depot blob torn mid-write: only a prefix of the bytes
          reach disk, yet the manifest still commits — models fsync
          lies and bit rot between write and crash. Caught at the next
          load by the container checksums. *)
  | Depot_trunc
      (** AOT depot blob truncated on the read path (tail lost). *)
  | Depot_flip
      (** one bit of the AOT depot blob flipped on the read path. *)

type behavior =
  | Transient  (** bus faults are counted but the access proceeds *)
  | Surface    (** bus faults surface as bus errors (guest aborts) *)

type t

val create : ?seed:int -> ?rate:float -> ?behavior:behavior -> unit -> t
(** Defaults: seed 1, every site at [rate] (default 0.001 = one fault
    per thousand events), [Transient] bus behavior. *)

val set_rate : t -> site -> float -> unit
(** Override the firing probability of one site (0.0 disables it). *)

val fire : t -> site -> bool
(** Record one event at [site] and decide whether a fault fires. *)

val surfaces : t -> bool
(** Whether bus faults should surface as bus errors. *)

val events : t -> site -> int
val fired : t -> site -> int
val total_events : t -> int
val total_fired : t -> int
val all_sites : site list
val site_name : site -> string
val site_of_name : string -> site option
val pp : Format.formatter -> t -> unit

val set_fire_hook : t -> (site -> unit) option -> unit
(** Observer called on every {e fired} fault (after the counters are
    bumped). Used by the event journal; the hook itself is transient
    run state and is never serialized. *)

val set_trace : t -> Repro_observe.Trace.t option -> unit
(** Attach the event ring: every fired fault emits a [Fault] event
    named after its site. Does not perturb the PRNG stream and is
    never serialized. *)

val export : t -> int64 array
(** Complete injector state — PRNG cursor, behavior, per-site rates
    and counters — for embedding in a machine snapshot. *)

val import : t -> int64 array -> unit
(** Restore state captured by {!export} into an injector created with
    the same behavior. Raises [Invalid_argument] on layout or behavior
    mismatch. *)

val of_export : int64 array -> t
(** Build a fresh injector from an {!export}ed state — the replay
    driver's way to reconstruct an injector whose behavior it does not
    know ahead of time. Raises [Invalid_argument] on a malformed
    capture. *)

val behavior : t -> behavior
val rate : t -> site -> float

val reseed : t -> seed:int -> unit
(** Reset the PRNG cursor to the stream of a fresh [create ~seed] —
    how a fleet gives each machine restored from one shared warm
    snapshot its own deterministic entropy stream. Counters and rates
    are untouched. *)

(** {2 Fleet chaos-drill plans}

    One deterministic plan, derived entirely from a fleet seed,
    decides which k of N machines run faulty, with which fault sites
    and rates, and which per-machine injector seed each machine gets —
    so a drill replays bit-identically from the seed alone. *)

module Plan : sig
  type injector := t
  type t

  val make :
    seed:int -> machines:int -> faulty:int -> (site * float) list -> t
  (** [make ~seed ~machines ~faulty faults]: choose a uniform [faulty]
      -sized subset of the [machines] and a derived injector seed per
      machine. Raises [Invalid_argument] on [machines <= 0], [faulty]
      outside [0, machines], or a negative rate. *)

  val seed : t -> int
  val machines : t -> int
  val is_faulty : t -> int -> bool
  val machine_seed : t -> int -> int

  val faulty_machines : t -> int list
  (** Ascending machine indices chosen to run faulty. *)

  val arm : t -> int -> injector -> unit
  (** [arm t m inj]: {!reseed} [inj] to machine [m]'s derived seed,
      zero every site's rate, then arm the plan's fault sites iff [m]
      is one of the faulty machines. Call after each snapshot restore
      (the restore overwrote cursor and rates with the captured
      ones). *)
end
