(** Deterministic fault injection.

    A single injector is threaded through the machine model (bus
    errors), the softMMU (spurious TLB invalidations, corrupted page
    walks), the execution engine (spurious interrupts, forced
    TB-cache flushes) and the rule-based translator (corrupted rule
    output). Every potential injection point calls {!fire}, which
    counts the event and draws from a seeded {!Repro_common.Prng} —
    runs are bit-reproducible for a given seed and set of rates.

    Faults split into two classes. {e Absorbable} faults (TLB or
    TB-cache invalidations, detected-and-retried walk corruption,
    spurious interrupts) must never change the guest-visible outcome,
    only its cost. {e Surfaceable} faults (bus errors under the
    {!Surface} behavior, rule corruption) are allowed to become
    architecturally visible and exercise the guest's abort paths and
    the translator's shadow-verification/quarantine defenses. *)

type site =
  | Bus_read      (** physical bus read error *)
  | Bus_write     (** physical bus write error *)
  | Tlb_flush     (** spurious software-TLB invalidation *)
  | Walk_corrupt  (** corrupted page-walk result (detected, re-walked) *)
  | Spurious_irq  (** interrupt asserted with no device source *)
  | Tb_flush      (** forced translation-cache flush *)
  | Rule_corrupt  (** corrupted rule-generated host code *)

type behavior =
  | Transient  (** bus faults are counted but the access proceeds *)
  | Surface    (** bus faults surface as bus errors (guest aborts) *)

type t

val create : ?seed:int -> ?rate:float -> ?behavior:behavior -> unit -> t
(** Defaults: seed 1, every site at [rate] (default 0.001 = one fault
    per thousand events), [Transient] bus behavior. *)

val set_rate : t -> site -> float -> unit
(** Override the firing probability of one site (0.0 disables it). *)

val fire : t -> site -> bool
(** Record one event at [site] and decide whether a fault fires. *)

val surfaces : t -> bool
(** Whether bus faults should surface as bus errors. *)

val events : t -> site -> int
val fired : t -> site -> int
val total_events : t -> int
val total_fired : t -> int
val all_sites : site list
val site_name : site -> string
val pp : Format.formatter -> t -> unit
