(** Domain-parallel fleet dispatcher: serve a drill's requests across
    OCaml 5 domains with a report that is byte-identical to the
    single-domain run.

    Machines are sharded over the domains by id; each epoch (the next
    [machines] requests) is assigned round-robin over the serving set
    fixed at the epoch barrier, served in parallel, then {e replayed}
    into the fleet's books on the coordinator in request order — the
    counters, the fleet-ring events, the [after_each] telemetry hook
    and the circuit-breaker sweep all advance deterministically,
    whatever the domain count or scheduling. See the implementation
    header for the full argument. *)

val run :
  ?after_each:(unit -> unit) ->
  ?domains:int ->
  Repro_resilience.Fleet.t ->
  requests:int ->
  unit
(** [run ~domains fleet ~requests] serves [requests] requests across
    [domains] domains (default 1 — same dispatcher, no spawns). The
    fleet's report ({!Repro_resilience.Fleet.metrics_json}) after this
    call is a pure function of (seed, base snapshot, requests) — the
    domain count never shows. Detaches every supervisor from the
    shared fleet ring (supervision events keep riding the per-machine
    rings; the fleet ring is written only by the coordinator). Raises
    [Invalid_argument] when [domains < 1] or [requests < 0].

    [after_each] runs on the coordinator once per request, during the
    epoch replay — the telemetry collector's sampling hook observes
    end-of-epoch machine state at deterministic sample points.

    Callers may pass any [domains >= 1] regardless of
    [Domain.recommended_domain_count] — extra domains cost scheduling,
    never correctness. The [repro-dbt-fleet] CLI clamps, the library
    does not. *)
