(* Domain-parallel fleet dispatcher.

   The fleet's machines are already self-contained — every machine
   owns its System, ruleset copy, TB cache, injector, health, backoff,
   perfscope and trace ring, and the base snapshot and fault plan are
   only ever read — so machines can serve on different domains without
   sharing any mutable state. What still couples them is the
   cross-machine policy: admission control, dispatch, the fleet-wide
   circuit breaker, the fleet event ring and the telemetry sampling
   hook. This module moves all of that coupling to deterministic
   epoch barriers, which is what makes the merged report independent
   of the domain count and of domain scheduling:

   - An {e epoch} is the next [machines] requests. At the barrier the
     coordinator takes the serving set (machine-id order) and assigns
     the epoch's requests round-robin over it — deterministic
     failover: a machine that died last epoch simply drops out of the
     rotation, so availability tracks the serving set, not the fleet
     size.
   - Machines are sharded over the domains by id ([id mod domains]);
     shard 0 serves on the coordinator's own domain, the rest on
     spawned domains. A machine is touched by exactly one domain, and
     the per-request outcomes land in disjoint slots of one array, so
     [Domain.join] is the only synchronisation needed.
   - After the join the coordinator {e replays} the epoch in request
     order: the fleet's offered/served/shed counters, the fleet-ring
     [req:assign]/[req:shed] events and the [after_each] telemetry
     hook all advance exactly as they would have, one request at a
     time — the sample points of two drills line up whatever the
     domain count.
   - The circuit-breaker sweep runs once per epoch at the barrier,
     over all machines in id order, while no machine is serving.

   Every per-machine number is computed by the machine's own
   deterministic serve sequence, and every cross-machine decision is
   taken at a barrier from id-ordered state — so the drill report
   after the volatile strip is byte-identical for any [domains] >= 1.

   Supervisors are detached from the shared fleet ring up front
   (including at [domains = 1], so the report is dispatcher-invariant,
   not domain-count-invariant only): a ring is not safe for concurrent
   writers. Supervision events keep riding each machine's own ring. *)

module Fleet = Repro_resilience.Fleet
module Supervisor = Repro_resilience.Supervisor
module Trace = Repro_observe.Trace

(* Serve one epoch's share of machines on one domain: the requests
   assigned to machines of shard [d], in request order. Touches only
   machine-owned state; results go to disjoint [outcomes] slots. *)
let serve_shard ~fleet ~reference ~assignment ~request0 ~outcomes ~domains d =
  Array.iteri
    (fun k machine ->
      if machine mod domains = d then begin
        let s = Fleet.supervisor fleet machine in
        let request = request0 + k in
        (* the causal anchor on the machine's own track, emitted (as in
           sequential dispatch) on the machine's work clock just before
           the serve *)
        Trace.emit (Supervisor.trace_ring s) ~a:request ~b:machine
          Trace.Request "req:assign";
        outcomes.(k) <- Some (Supervisor.serve ~reference s ~request ())
      end)
    assignment

let run ?after_each ?(domains = 1) fleet ~requests =
  if domains < 1 then invalid_arg "Parfleet.run: domains < 1";
  if requests < 0 then invalid_arg "Parfleet.run: requests < 0";
  let machines = Fleet.machines fleet in
  for i = 0 to machines - 1 do
    Supervisor.detach_shared_ring (Fleet.supervisor fleet i)
  done;
  let reference = Fleet.reference fleet in
  let epoch = machines in
  let after_each () = match after_each with Some f -> f () | None -> () in
  (* round-robin cursor over serving-set positions, persistent across
     epochs so a long drill spreads load like sequential dispatch *)
  let cursor = ref 0 in
  let remaining = ref requests in
  while !remaining > 0 do
    let n = min epoch !remaining in
    let serving = Array.of_list (Fleet.serving_ids fleet) in
    let live = Array.length serving in
    if live = 0 || live < Fleet.min_healthy fleet then begin
      (* admission control, at epoch granularity: nobody (or not
         enough machines) is willing to serve, so the whole epoch is
         shed — replayed one request at a time for the sampling hook *)
      for _ = 1 to n do
        Fleet.account_shed fleet;
        after_each ()
      done
    end
    else begin
      let assignment =
        Array.init n (fun k -> serving.((!cursor + k) mod live))
      in
      cursor := (!cursor + n) mod live;
      let outcomes = Array.make n None in
      let request0 = Fleet.offered fleet in
      let workers =
        List.init (domains - 1) (fun i ->
            let d = i + 1 in
            Domain.spawn (fun () ->
                serve_shard ~fleet ~reference ~assignment ~request0 ~outcomes
                  ~domains d))
      in
      serve_shard ~fleet ~reference ~assignment ~request0 ~outcomes ~domains 0;
      List.iter Domain.join workers;
      (* replay: book the epoch into the fleet's counters and ring in
         request order — identical for every domain count *)
      Array.iteri
        (fun k machine ->
          (match outcomes.(k) with
          | Some result -> Fleet.account_assigned fleet ~machine result
          | None ->
            (* unreachable: every slot's shard serves before the join *)
            Fleet.account_shed fleet);
          after_each ())
        assignment;
      Fleet.breaker_sweep_all fleet
    end;
    remaining := !remaining - n
  done
