open Repro_common
module A = Repro_arm.Insn
module Asm = Repro_arm.Asm
module Cond = Repro_arm.Cond
module Bus = Repro_machine.Bus

let kernel_base = 0x0000_0000
let user_code_base = 0x0010_0000
let user_data_base = 0x0020_0000
let user_stack_top = 0x002F_0000
let page_table_base = 0x0030_0000
let l2_main_base = page_table_base + 0x1000
let l2_dev_base = page_table_base + 0x2000
let svc_stack_top = 0x003F_0000
let irq_stack_top = 0x003E_0000
let tick_counter_addr = 0x0000_1F00 (* kernel data page, away from code *)
let task1_code_base = 0x0018_0000
let task1_stack_top = 0x002E_0000

(* Cooperative scheduler state, all on the kernel-only data page:
   two task control blocks (r0-r12, sp, lr, pc, cpsr = 17 words) plus
   the current-task index and the task count. *)
let tcb0_addr = 0x0000_1E00
let tcb_stride_shift = 7 (* 0x80 bytes per TCB *)
let cur_task_addr = 0x0000_1F04
let nr_tasks_addr = 0x0000_1F08
let tcb_off_sp = 52
let tcb_off_lr = 56
let tcb_off_pc = 60
let tcb_off_cpsr = 64
let sys_exit = 0
let sys_putchar = 1
let sys_ticks = 2
let sys_yield = 3
let sys_flags = 4

type image = {
  segments : (Word32.t * Word32.t array) list;
  syms : (Word32.t * string) list;
}

let mode_bits_svc = 0xD3 (* supervisor, IRQ+FIQ masked *)
let mode_bits_irq = 0xD2
let mode_bits_user = 0x10 (* user, IRQs enabled *)

let mode_bits_sys = 0xDF (* system: user-bank registers, IRQs masked *)

let build ?(timer_period = 0) ?(preempt = false) ?user_program2 ~user_program () =
  if preempt && user_program2 = None then
    invalid_arg "Kernel.build: preempt requires user_program2";
  let a = Asm.create ~origin:kernel_base () in
  (* --- vector table --- *)
  Asm.branch_to a "boot";             (* 0x00 reset *)
  Asm.branch_to a "panic_undef";      (* 0x04 undefined *)
  Asm.branch_to a "svc_handler";      (* 0x08 svc *)
  Asm.branch_to a "panic_pabt";       (* 0x0C prefetch abort *)
  Asm.branch_to a "panic_dabt";       (* 0x10 data abort *)
  Asm.nop a;                          (* 0x14 reserved *)
  Asm.branch_to a "irq_handler";      (* 0x18 irq *)

  (* --- boot --- *)
  Asm.label a "boot";
  (* per-mode stacks: hop through IRQ mode to set its banked sp *)
  Asm.mov32 a 0 mode_bits_irq;
  Asm.msr a ~control:true 0;
  Asm.mov32 a A.sp irq_stack_top;
  Asm.mov32 a 0 mode_bits_svc;
  Asm.msr a ~control:true 0;
  Asm.mov32 a A.sp svc_stack_top;
  (* tick counter := 0 *)
  Asm.mov32 a 0 tick_counter_addr;
  Asm.mov a 1 0;
  Asm.str a 1 0 0;
  (* zero the L1 table *)
  Asm.mov32 a 0 page_table_base;
  Asm.mov a 1 0;
  Asm.mov32 a 2 1024;
  Asm.label a "zero_l1";
  Asm.str a ~index:A.Post_indexed 1 0 4;
  Asm.sub a ~s:true 2 2 1;
  Asm.branch_to a ~cond:Cond.NE "zero_l1";
  (* L1[0] -> main L2; L1[960] -> device L2 *)
  Asm.mov32 a 0 page_table_base;
  Asm.mov32 a 1 (l2_main_base lor 1);
  Asm.str a 1 0 0;
  Asm.mov32 a 1 (l2_dev_base lor 1);
  Asm.str a 1 0 (4 * (Bus.timer_base lsr 22));
  (* main L2: identity map 4 MiB; first 1 MiB kernel-only *)
  Asm.mov32 a 0 l2_main_base;
  Asm.mov a 2 0;
  Asm.label a "fill_l2";
  Asm.emit a
    (A.make
       (A.Dp
          { op = A.MOV; s = false; rd = 1; rn = 0;
            op2 = A.Reg_shift_imm { rm = 2; kind = A.LSL; amount = 12 } }));
  Asm.cmp a 2 256;
  Asm.orr a ~cond:Cond.CC 1 1 3;  (* kernel page: valid|writable *)
  Asm.orr a ~cond:Cond.CS 1 1 7;  (* user page: +user *)
  Asm.str a ~index:A.Post_indexed 1 0 4;
  Asm.add a 2 2 1;
  Asm.cmp a 2 1024;
  Asm.branch_to a ~cond:Cond.NE "fill_l2";
  (* device L2: three MMIO pages, kernel-only *)
  Asm.mov32 a 0 l2_dev_base;
  Asm.mov32 a 1 (Bus.timer_base lor 3);
  Asm.str a 1 0 0;
  Asm.mov32 a 1 (Bus.uart_base lor 3);
  Asm.str a 1 0 4;
  Asm.mov32 a 1 (Bus.syscon_base lor 3);
  Asm.str a 1 0 8;
  (* install translation table, flush stale TLB entries, MMU on *)
  Asm.mov32 a 0 page_table_base;
  Asm.mcr a ~crn:2 0;
  Asm.mcr a ~crn:8 0;
  Asm.mov a 0 1;
  Asm.mcr a ~crn:1 0;
  (* timer *)
  if timer_period > 0 then begin
    Asm.mov32 a 0 Bus.timer_base;
    Asm.mov32 a 1 timer_period;
    Asm.str a 1 0 4;
    Asm.mov a 1 1;
    Asm.str a 1 0 0
  end;
  (* scheduler state: task 0 runs first; task 1 (if any) starts from
     its TCB on the first yield *)
  Asm.mov32 a 0 cur_task_addr;
  Asm.mov a 1 0;
  Asm.str a 1 0 0;
  Asm.mov32 a 0 nr_tasks_addr;
  Asm.mov a 1 (match user_program2 with Some _ -> 2 | None -> 1);
  Asm.str a 1 0 0;
  (match user_program2 with
  | None -> ()
  | Some _ ->
    let tcb1 = tcb0_addr + (1 lsl tcb_stride_shift) in
    Asm.mov32 a 0 tcb1;
    Asm.mov32 a 1 task1_code_base;
    Asm.str a 1 0 tcb_off_pc;
    Asm.mov a 1 mode_bits_user;
    Asm.str a 1 0 tcb_off_cpsr;
    Asm.mov32 a 1 task1_stack_top;
    Asm.str a 1 0 tcb_off_sp);
  (* enter user mode at the user program with IRQs enabled *)
  Asm.mov a 0 mode_bits_user;
  Asm.msr a ~spsr:true ~flags:true ~control:true 0;
  Asm.mov32 a A.lr user_code_base;
  Asm.emit a
    (A.make
       (A.Dp
          { op = A.MOV; s = true; rd = 15; rn = 0;
            op2 = A.Reg_shift_imm { rm = A.lr; kind = A.LSL; amount = 0 } }));

  (* --- svc handler: r7 = number, r0 = arg/result --- *)
  Asm.label a "svc_handler";
  Asm.push a (Asm.reg_mask [ 1; 2 ]);
  Asm.cmp a 7 sys_exit;
  Asm.branch_to a ~cond:Cond.EQ "do_exit";
  Asm.cmp a 7 sys_putchar;
  Asm.branch_to a ~cond:Cond.EQ "do_putchar";
  Asm.cmp a 7 sys_ticks;
  Asm.branch_to a ~cond:Cond.EQ "do_ticks";
  Asm.cmp a 7 sys_flags;
  Asm.branch_to a ~cond:Cond.EQ "do_flags";
  Asm.cmp a 7 sys_yield;
  Asm.branch_to a ~cond:Cond.EQ "do_yield";
  Asm.label a "svc_out";
  Asm.pop a (Asm.reg_mask [ 1; 2 ]);
  Asm.emit a
    (A.make
       (A.Dp
          { op = A.MOV; s = true; rd = 15; rn = 0;
            op2 = A.Reg_shift_imm { rm = A.lr; kind = A.LSL; amount = 0 } }));
  Asm.label a "do_exit";
  Asm.mov32 a 1 Bus.syscon_base;
  Asm.str a 0 1 0;
  Asm.branch_to a "svc_out";
  Asm.label a "do_putchar";
  Asm.mov32 a 1 Bus.uart_base;
  Asm.str a 0 1 0;
  Asm.branch_to a "svc_out";
  Asm.label a "do_ticks";
  Asm.mov32 a 1 tick_counter_addr;
  Asm.ldr a 0 1 0;
  Asm.branch_to a "svc_out";
  (* the caller's CPSR, as banked on exception entry: returns the
     interrupted condition flags — the state the paper's lazy
     one-to-many parse must deliver correctly (Fig 7) *)
  Asm.label a "do_flags";
  Asm.mrs a ~spsr:true 0;
  Asm.mov32 a 1 0xF0000000;
  Asm.and_r a 0 0 1;
  Asm.lsr_ a 0 0 28;
  Asm.branch_to a "svc_out";

  (* --- cooperative round-robin: save the caller's full user context
     into its TCB, switch to the other task's. A no-op on single-task
     images (the CINT workloads use sys_yield as a kernel round-trip,
     so its cost must not depend on the scheduler). --- *)
  let exception_return () =
    (* movs pc, lr — mode/flags restored from SPSR *)
    Asm.emit a
      (A.make
         (A.Dp
            { op = A.MOV; s = true; rd = 15; rn = 0;
              op2 = A.Reg_shift_imm { rm = A.lr; kind = A.LSL; amount = 0 } }))
  in
  let stm_ia rn regs =
    Asm.emit a (A.make (A.Stm { kind = A.IA; rn; writeback = false; regs }))
  in
  let ldm_ia rn regs =
    Asm.emit a (A.make (A.Ldm { kind = A.IA; rn; writeback = false; regs }))
  in
  (* The switch body is straight-line code shared by the cooperative
     (svc) and preemptive (irq) paths; [return_mode_bits] restores the
     caller's exception mode after the System-mode bank excursions so
     the final [movs pc, lr] uses the right banked lr/SPSR. Assumes all
     user registers pristine, lr = resume pc, SPSR = user CPSR. *)
  let emit_switch ~return_mode_bits =
    (* park the registers the switch code needs as scratch *)
    Asm.push a (Asm.reg_mask [ 4; 5; 6; 7 ]);
    Asm.mov32 a 4 cur_task_addr;
    Asm.ldr a 5 4 0;
    Asm.mov32 a 6 tcb0_addr;
    Asm.emit a
      (A.make
         (A.Dp
            { op = A.ADD; s = false; rd = 6; rn = 6;
              op2 = A.Reg_shift_imm { rm = 5; kind = A.LSL; amount = tcb_stride_shift } }));
    (* bulk-save r0-r12; the r4-r7 slots get kernel scratch, fixed next *)
    stm_ia 6 0x1FFF;
    Asm.pop a (Asm.reg_mask [ 0; 1; 2; 3 ]); (* the parked user r4-r7 *)
    Asm.str a 0 6 16;
    Asm.str a 1 6 20;
    Asm.str a 2 6 24;
    Asm.str a 3 6 28;
    (* user-bank sp/lr, reachable from System mode *)
    Asm.mov32 a 0 mode_bits_sys;
    Asm.msr a ~control:true 0;
    Asm.mov_r a 1 A.sp;
    Asm.mov_r a 2 A.lr;
    Asm.mov32 a 0 return_mode_bits;
    Asm.msr a ~control:true 0;
    Asm.str a 1 6 tcb_off_sp;
    Asm.str a 2 6 tcb_off_lr;
    (* resume point and flags *)
    Asm.str a A.lr 6 tcb_off_pc;
    Asm.mrs a ~spsr:true 0;
    Asm.str a 0 6 tcb_off_cpsr;
    (* flip and locate the other TCB *)
    Asm.emit a
      (A.make (A.Dp { op = A.EOR; s = false; rd = 5; rn = 5; op2 = A.imm_operand_exn 1 }));
    Asm.str a 5 4 0;
    Asm.mov32 a 6 tcb0_addr;
    Asm.emit a
      (A.make
         (A.Dp
            { op = A.ADD; s = false; rd = 6; rn = 6;
              op2 = A.Reg_shift_imm { rm = 5; kind = A.LSL; amount = tcb_stride_shift } }));
    (* incoming task: flags, user sp/lr, then registers *)
    Asm.ldr a 0 6 tcb_off_cpsr;
    Asm.msr a ~spsr:true ~flags:true ~control:true 0;
    Asm.ldr a 1 6 tcb_off_sp;
    Asm.ldr a 2 6 tcb_off_lr;
    Asm.mov32 a 0 mode_bits_sys;
    Asm.msr a ~control:true 0;
    Asm.mov_r a A.sp 1;
    Asm.mov_r a A.lr 2;
    Asm.mov32 a 0 return_mode_bits;
    Asm.msr a ~control:true 0;
    (* bulk-restore with the base parked in lr (not in the list) *)
    Asm.mov_r a A.lr 6;
    ldm_ia A.lr 0x1FFF;
    Asm.ldr a A.lr A.lr tcb_off_pc;
    exception_return ()
  in
  Asm.label a "do_yield";
  Asm.pop a (Asm.reg_mask [ 1; 2 ]); (* undo the common-entry push *)
  (* single task: plain return *)
  Asm.push a (Asm.reg_mask [ 4 ]);
  Asm.mov32 a 4 nr_tasks_addr;
  Asm.ldr a 4 4 0;
  Asm.cmp a 4 2;
  Asm.pop a (Asm.reg_mask [ 4 ]);
  Asm.branch_to a ~cond:Cond.NE "yield_return";
  emit_switch ~return_mode_bits:mode_bits_svc;
  Asm.label a "yield_return";
  exception_return ();

  (* --- irq handler: ack the timer, bump the tick counter; under a
     preemptive build, also round-robin to the other task --- *)
  Asm.label a "irq_handler";
  Asm.push a (Asm.reg_mask [ 0; 1 ]);
  Asm.mov32 a 0 Bus.timer_base;
  Asm.mov a 1 0;
  Asm.str a 1 0 0xC;
  Asm.mov32 a 0 tick_counter_addr;
  Asm.ldr a 1 0 0;
  Asm.add a 1 1 1;
  Asm.str a 1 0 0;
  Asm.pop a (Asm.reg_mask [ 0; 1 ]);
  if preempt then begin
    (* lr_irq points one past the interrupted instruction: adjust it so
       the switch body's "lr = resume pc" invariant holds, then the
       shared straight-line switch does the rest in IRQ mode. *)
    Asm.emit a
      (A.make
         (A.Dp { op = A.SUB; s = false; rd = A.lr; rn = A.lr; op2 = A.imm_operand_exn 4 }));
    emit_switch ~return_mode_bits:mode_bits_irq
  end
  else
    Asm.emit a
      (A.make
         (A.Dp
            { op = A.SUB; s = true; rd = 15; rn = A.lr; op2 = A.imm_operand_exn 4 }));

  (* --- panics: exit code identifies the exception --- *)
  let panic label code =
    Asm.label a label;
    Asm.mov32 a 0 code;
    Asm.mov32 a 1 Bus.syscon_base;
    Asm.str a 0 1 0;
    Asm.branch_to a label
  in
  panic "panic_undef" 0xDEAD0001;
  panic "panic_pabt" 0xDEAD0002;
  panic "panic_dabt" 0xDEAD0003;

  let origin, kernel_words = Asm.assemble a in
  assert (origin = kernel_base);
  assert (4 * Array.length kernel_words < 0x1000);
  let segments =
    [ (kernel_base, kernel_words); (user_code_base, user_program) ]
    @ match user_program2 with Some p -> [ (task1_code_base, p) ] | None -> []
  in
  (* Kernel labels plus one sentinel per user segment: user programs
     are generated word streams with no labels of their own, so the
     whole segment symbolizes to its region name. *)
  let syms =
    ((kernel_base, "vectors") :: Asm.labels a)
    @ [ (user_code_base, "user") ]
    @ (match user_program2 with Some _ -> [ (task1_code_base, "task1") ] | None -> [])
  in
  { segments; syms }

let load image f = List.iter (fun (base, words) -> f base words) image.segments

(* Greatest symbol at or below [pc]; symbols are sorted ascending, so
   keep the last match. Addresses below every symbol (only possible
   for pc < 0, i.e. never for real guest PCs) fall back to "?". *)
let symbolize image pc =
  let rec best acc = function
    | (addr, name) :: rest when addr <= pc -> best (Some name) rest
    | _ -> acc
  in
  match best None image.syms with Some name -> name | None -> "?"

let user_epilogue_exit a ~exit_code_reg =
  if exit_code_reg <> 0 then Asm.mov_r a 0 exit_code_reg;
  Asm.mov a 7 sys_exit;
  Asm.svc a 0
