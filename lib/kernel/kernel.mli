(** The mini guest operating system.

    A small privileged kernel written against the ARM assembler that
    exercises every system-level path the paper's evaluation depends
    on: exception vectors, two-level page tables with user/kernel
    permissions, the platform timer programmed over MMIO with an IRQ
    handler, a syscall interface, and an exception-return drop into an
    unprivileged user program. Runs identically (by construction and
    by differential test) on the reference interpreter and both DBT
    engines. *)

open Repro_common

(** {2 Memory map (virtual = physical, identity-mapped)} *)

val kernel_base : Word32.t
(** 0x0 — vectors + kernel text/data (kernel-only pages). *)

val user_code_base : Word32.t
(** 0x0010_0000 — user text. *)

val user_data_base : Word32.t
(** 0x0020_0000 — user heap. *)

val user_stack_top : Word32.t
(** 0x002F_0000. *)

val page_table_base : Word32.t
(** 0x0030_0000 — L1 + L2 tables. *)

val tick_counter_addr : Word32.t
val task1_code_base : Word32.t
(** Entry point of the second task (multitask images only). *)

val task1_stack_top : Word32.t
(** Kernel variable incremented by the timer IRQ handler. Lives on a
    kernel {e data} page (separate from kernel text, which is
    write-protected by the DBT's self-modifying-code machinery); user
    code must read it through {!sys_ticks}. *)

(** {2 Syscalls (via [svc], number in r7)} *)

val sys_exit : int
(** r0 = exit code; powers off. *)

val sys_putchar : int
(** r0 = byte for the UART. *)

val sys_ticks : int
(** Returns the timer tick count in r0. *)

val sys_yield : int
(** No-op kernel round trip. *)

val sys_flags : int
(** Returns the caller's NZCV (from the banked SPSR) in r0 bits 3..0 —
    the flags the kernel observed at the exception boundary. *)

(** {2 Image construction} *)

type image = {
  segments : (Word32.t * Word32.t array) list;
  syms : (Word32.t * string) list;
      (** symbol table: kernel assembler labels plus one sentinel per
          user segment ([user], [task1]), sorted by address —
          deterministic input for profiler symbolization *)
}
(** Load each [(base, words)] segment into guest memory. *)

val build :
  ?timer_period:int ->
  ?preempt:bool ->
  ?user_program2:Word32.t array ->
  user_program:Word32.t array ->
  unit ->
  image
(** Kernel at 0, the user program at {!user_code_base}. The boot code
    builds the page tables in guest code, enables the MMU, programs
    the timer ([timer_period] in guest instructions; [0] = disabled,
    the default) and exception-returns into user mode at
    {!user_code_base}.

    [user_program2], when given, is loaded at {!task1_code_base} and
    run as a second task under the kernel's cooperative round-robin
    scheduler: each [sys_yield] saves the caller's full user context
    (r0-r12, banked sp/lr, pc, CPSR) into its task control block and
    exception-returns into the other task's. On single-task images
    [sys_yield] is a plain kernel round trip.

    [preempt] (default false; requires [user_program2]) additionally
    round-robins on every timer interrupt, i.e. tasks are switched at
    arbitrary user instructions — asynchronous full-context switches
    through the DBT's interrupt machinery. *)

val load : image -> (Word32.t -> Word32.t array -> unit) -> unit
(** [load image f] calls [f base words] per segment. *)

val symbolize : image -> Word32.t -> string
(** Name of the greatest symbol at or below [pc] — the enclosing
    kernel routine for kernel text, the region name ([user]/[task1])
    for user code. Used to fold TB hotness into flamegraph stacks. *)

(** {2 User-side helpers} *)

val user_epilogue_exit : Repro_arm.Asm.t -> exit_code_reg:int -> unit
(** Emit the [svc]-based exit sequence a user program ends with. *)
