(** Crash-atomic file writes.

    Every durable artifact this codebase produces (machine snapshots,
    the AOT code depot, metrics/bench JSON) goes through {!write}:
    the bytes land in a temporary file in the destination directory,
    are fsync'd, and only then renamed over the target. A crash at any
    point leaves either the old file or the new one — never a torn
    half-write that poisons the next reader. *)

val write : ?fsync:bool -> string -> string -> unit
(** [write path data]: write [data] to [path] atomically
    (temp file + optional fsync + rename). [fsync] defaults to [true];
    pass [false] for throwaway outputs where durability across a power
    cut does not matter but torn writes still must not be visible.
    Raises [Sys_error] / [Unix.Unix_error] on I/O failure, after
    removing the temporary file (best effort). *)

val write_channel : string -> (out_channel -> unit) -> unit
(** [write_channel path f]: stream into a temp file via [f], then
    commit with fsync + rename — {!write} for producers that emit
    incrementally instead of building the whole string first. *)
