(** Deterministic pseudo-random generator (splitmix64 core).

    Workload generation and randomized equivalence testing must be
    reproducible across runs and machines, so nothing in the repository
    uses [Random]; everything draws from a seeded {!t}. *)

type t

val create : seed:int -> t

val of_string : string -> t
(** Seed derived from a string (e.g. a benchmark name), stable across
    runs. *)

val next : t -> int
(** Uniform 62-bit non-negative integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val word : t -> Word32.t
(** Uniform 32-bit word. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [0,1]). *)

val state : t -> int64
(** The full generator state (the splitmix64 cursor). Saving the state
    and later {!set_state}-ing it resumes the exact same stream —
    machine snapshots depend on this to keep restored runs
    bit-identical to uninterrupted ones. *)

val set_state : t -> int64 -> unit
