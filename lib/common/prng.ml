type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let of_string s =
  (* FNV-1a over the bytes gives a stable, well-spread seed. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  { state = !h }

(* splitmix64: passes BigCrush, tiny state, fully deterministic. *)
let next_u64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next_u64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next t mod bound

let word t = Int64.to_int (Int64.logand (next_u64 t) 0xFFFFFFFFL)
let bool t = Int64.logand (next_u64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let chance t p =
  if p <= 0. then false
  else if p >= 1. then true
  else float_of_int (int t 1_000_000) < p *. 1_000_000.

let state t = t.state
let set_state t s = t.state <- s
