(* The temp file must live in the same directory as the target:
   rename(2) is only atomic within a filesystem. The pid suffix keeps
   concurrent writers (e.g. two fleet drills sharing a metrics dir)
   from trampling each other's temp files; the rename still serializes
   them to last-writer-wins, which is the pre-existing semantics of a
   plain open_out. *)
let tmp_path path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

let commit ?(fsync = true) path tmp oc =
  (match
     flush oc;
     if fsync then Unix.fsync (Unix.descr_of_out_channel oc)
   with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  match Sys.rename tmp path with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write_channel path f =
  let tmp = tmp_path path in
  let oc = open_out_bin tmp in
  (match f oc with
  | () -> ()
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  commit path tmp oc

let write ?fsync path data =
  let tmp = tmp_path path in
  let oc = open_out_bin tmp in
  (match output_string oc data with
  | () -> ()
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  commit ?fsync path tmp oc
